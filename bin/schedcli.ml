(* schedcli — command-line front end for the one-port scheduling library.

   Subcommands:
     run         schedule one testbed and print metrics (optionally a Gantt)
     figures     regenerate the paper's experiments (all or a subset)
     analyze     print the structural summary of a testbed graph
     dot         emit Graphviz for a testbed (optionally coloured by mapping)
     robustness  Monte-Carlo jitter analysis of a heuristic's schedule
     online      rolling-horizon event-driven scheduling with re-planning
     serve       run the scheduld scheduler-as-a-service daemon
     client      submit/status/watch/drain against a running daemon
     list        enumerate testbeds, heuristics, models and experiments *)

open Cmdliner
module O = Onesched

let model_conv =
  let parse s =
    match O.Comm_model.of_name s with
    | m -> Ok m
    | exception Invalid_argument msg -> Error (`Msg msg)
  in
  Arg.conv (parse, fun fmt m -> Format.pp_print_string fmt (O.Comm_model.name m))

let model_arg =
  let doc =
    Printf.sprintf "Communication model: %s."
      (String.concat ", " (List.map O.Comm_model.name O.Comm_model.all))
  in
  Arg.(value & opt model_conv O.Comm_model.one_port & info [ "model" ] ~doc)

let testbed_arg =
  let doc =
    Printf.sprintf "Testbed: %s, or layered:LAYERS:WIDTH for a random layered DAG."
      (String.concat ", " O.Suite.names)
  in
  (* Validate eagerly through [Suite.find] so an unknown name or a
     malformed layered:L:W spec is a parse error, not a crash later. *)
  let testbed_conv =
    let parse s =
      match O.Suite.find s with
      | (_ : O.Suite.t) -> Ok s
      | exception Invalid_argument msg -> Error (`Msg msg)
    in
    Arg.conv (parse, Format.pp_print_string)
  in
  Arg.(value & opt testbed_conv "lu" & info [ "testbed"; "t" ] ~doc)

let size_arg =
  Arg.(value & opt int 50 & info [ "size"; "n" ] ~doc:"Problem size n.")

let ccr_arg =
  Arg.(
    value & opt float 10.
    & info [ "ccr"; "c" ] ~doc:"Communication-to-computation ratio (paper: 10).")

let heuristic_arg =
  let doc =
    Printf.sprintf "Heuristic: %s." (String.concat ", " O.Registry.names)
  in
  Arg.(value & opt string "ilha" & info [ "heuristic"; "H" ] ~doc)

let b_arg =
  Arg.(
    value & opt (some int) None
    & info [ "b" ] ~doc:"ILHA chunk size B (default: the platform's perfect-balance chunk).")

let policy_arg =
  Arg.(
    value
    & opt
        (enum [ ("insertion", O.Engine.Insertion); ("append", O.Engine.Append) ])
        O.Engine.Insertion
    & info [ "policy" ]
        ~doc:"Slot-search policy: insertion (fill idle gaps) or append.")

let scan_arg =
  Arg.(
    value
    & opt
        (enum
           [ ("0comm", O.Params.Scan_zero_comm);
             ("1comm", O.Params.Scan_one_comm) ])
        O.Params.Scan_zero_comm
    & info [ "scan" ]
        ~doc:"ILHA placement scan: 0comm (paper) or 1comm (par. 4.4 refinement).")

let reschedule_arg =
  Arg.(
    value & flag
    & info [ "reschedule" ] ~doc:"Enable ILHA's par. 4.4 chunk-rescheduling step.")

let averaging_arg =
  Arg.(
    value
    & opt
        (enum
           [ ("balanced", O.Ranking.Balanced);
             ("arithmetic", O.Ranking.Arithmetic);
             ("optimistic", O.Ranking.Optimistic) ])
        O.Ranking.Balanced
    & info [ "averaging" ]
        ~doc:"HEFT rank-averaging rule: balanced (par. 4.1), arithmetic, optimistic.")

let duplication_arg =
  let limit_conv =
    let parse s =
      match int_of_string_opt s with
      | Some d when d >= 0 -> Ok d
      | _ ->
          Error
            (`Msg
               (Printf.sprintf
                  "invalid duplication limit %S (expected a non-negative \
                   integer)"
                  s))
    in
    Arg.conv (parse, Format.pp_print_int)
  in
  Arg.(
    value
    & opt ~vopt:(Some 1) (some limit_conv) None
    & info [ "duplication" ] ~docv:"LIMIT"
        ~doc:"Allow task duplication, with at most $(docv) extra copies per \
              task (defaults to 1 when given without a value).  Only \
              duplication-aware heuristics such as heft-dup use it; 0 \
              disables duplication.")

(* One Params.t value assembled from the shared flags; every subcommand
   that schedules takes this single term. *)
let params_term =
  let make model policy averaging b scan reschedule duplication =
    let p = O.Params.make ~model ~policy ~averaging ?b ~scan ~reschedule () in
    match duplication with None -> p | Some d -> O.Params.with_dup_limit p d
  in
  Term.(
    const make $ model_arg $ policy_arg $ averaging_arg $ b_arg $ scan_arg
    $ reschedule_arg $ duplication_arg)

let stats_arg =
  Arg.(
    value & flag
    & info [ "stats" ]
        ~doc:"Print engine counters and per-phase timings after scheduling.")

let jobs_arg =
  Arg.(
    value
    & opt int (O.Pool.default_jobs ())
    & info [ "jobs"; "j" ] ~docv:"N"
        ~doc:
          "Shard the sweep over $(docv) domains (default: the machine's \
           recommended domain count, capped at 8).  Output is byte-identical \
           to --jobs 1.")

let trace_arg =
  Arg.(
    value & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:"Write a Chrome-trace (chrome://tracing, Perfetto) JSON of the \
              scheduler run itself to $(docv).")

(* Flip the observability switches on when the run asks for them; returns
   the scheduler's result plus the scoped report. *)
let with_observability ~stats ~trace f =
  let observing = stats || trace <> None in
  if observing then begin
    O.Obs_counters.enable ();
    O.Obs_counters.reset ();
    O.Obs_span.enable ();
    O.Obs_span.reset ()
  end;
  let x, report = O.Obs_report.capture f in
  (match trace with
  | Some path ->
      O.Obs_trace.write
        ~counters:report.O.Obs_report.counters
        path (O.Obs_span.events ());
      Printf.printf "wrote trace %s\n" path
  | None -> ());
  if stats then Format.printf "%a@." O.Obs_report.pp report;
  x

let gantt_arg =
  Arg.(value & flag & info [ "gantt" ] ~doc:"Also print an ASCII Gantt chart.")

let homogeneous_arg =
  Arg.(
    value & opt (some int) None
    & info [ "homogeneous" ]
        ~doc:"Use P same-speed processors instead of the paper's 10-processor platform.")

let graph_file_arg =
  Arg.(
    value & opt (some file) None
    & info [ "graph" ]
        ~doc:"Load the task graph from a text file (see Graph_io) instead of \
              building a testbed.")

let platform_file_arg =
  Arg.(
    value & opt (some file) None
    & info [ "platform" ]
        ~doc:"Load the platform from a text description instead of the \
              built-in ones.")

let build_graph testbed n ccr =
  let suite = O.Suite.find testbed in
  suite.O.Suite.build ~n:(max n suite.O.Suite.min_n) ~ccr

let resolve_graph graph_file testbed n ccr =
  match graph_file with
  | Some path -> O.Graph_io.load path
  | None -> build_graph testbed n ccr

let resolve_platform platform_file homogeneous =
  match platform_file with
  | Some path ->
      let ic = open_in path in
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () ->
          O.Platform.of_description
            (really_input_string ic (in_channel_length ic)))
  | None -> (
      match homogeneous with
      | Some p -> O.Platform.homogeneous ~p ~link_cost:1.
      | None -> O.Platform.paper_platform ())

let run_cmd =
  let refine_arg =
    Arg.(
      value & flag
      & info [ "refine" ] ~doc:"Apply the allocation local-search post-pass.")
  in
  let anneal_arg =
    Arg.(
      value & flag
      & info [ "anneal" ]
          ~doc:"Apply the simulated-annealing allocation post-pass (after \
                --refine if both are given).")
  in
  let anneal_steps_arg =
    Arg.(
      value
      & opt int O.Anneal.default_params.O.Anneal.steps
      & info [ "anneal-steps" ] ~docv:"N"
          ~doc:"Number of annealing proposals for --anneal.")
  in
  let seed_arg =
    Arg.(
      value
      & opt int O.Anneal.default_params.O.Anneal.seed
      & info [ "seed" ] ~docv:"SEED"
          ~doc:"RNG seed for --anneal (runs are deterministic per seed).")
  in
  let util_arg =
    Arg.(
      value & flag
      & info [ "utilization" ] ~doc:"Print per-resource utilization profiles.")
  in
  let fingerprint_arg =
    Arg.(
      value & flag
      & info [ "fingerprint" ]
          ~doc:
            "Print the schedule's MD5 fingerprint (bit-exact plan digest; \
             what scheduld reports for the same submission).")
  in
  let action testbed n ccr heuristic params homogeneous gantt refine anneal
      anneal_steps seed util fingerprint stats trace graph_file platform_file =
    let plat = resolve_platform platform_file homogeneous in
    let g = resolve_graph graph_file testbed n ccr in
    let entry = O.Registry.find heuristic in
    let t0 = Sys.time () in
    (* The improvers run inside the observed scope so that --stats and
       --trace account for their rollback/replay work, and the improved
       schedule flows through the same validation/metrics/gantt printing
       as an unimproved one. *)
    let sched =
      with_observability ~stats ~trace (fun () ->
          let sched = entry.O.Registry.scheduler params plat g in
          (* the allocation improvers move whole tasks and do not
             understand copy-sets; skip them on duplicated schedules *)
          let sched =
            if not refine then sched
            else if O.Schedule.has_dups sched then begin
              print_endline
                "refine: skipped (schedule holds duplicate copies)";
              sched
            end
            else begin
              let r = O.Refine.improve sched in
              Printf.printf "refine: %g -> %g (%d moves, %d evaluations)\n"
                r.O.Refine.initial_makespan r.O.Refine.final_makespan
                r.O.Refine.accepted_moves r.O.Refine.evaluations;
              r.O.Refine.schedule
            end
          in
          if not anneal then sched
          else if O.Schedule.has_dups sched then begin
            print_endline "anneal: skipped (schedule holds duplicate copies)";
            sched
          end
          else begin
            let aparams =
              { O.Anneal.default_params with
                O.Anneal.steps = anneal_steps;
                O.Anneal.seed = seed;
              }
            in
            let r = O.Anneal.improve ~params:aparams sched in
            Printf.printf "anneal: %g -> %g (%d accepted, %d improved)\n"
              r.O.Anneal.initial_makespan r.O.Anneal.final_makespan
              r.O.Anneal.accepted r.O.Anneal.improved;
            r.O.Anneal.schedule
          end)
    in
    let dt = Sys.time () -. t0 in
    let metrics = O.Metrics.compute sched in
    Format.printf "%s on %s (%s), scheduled in %.2fs@.%a@."
      entry.O.Registry.name (O.Graph.name g)
      (O.Comm_model.name params.O.Params.model)
      dt O.Metrics.pp metrics;
    Printf.printf "lower-bound quality: %.3fx (1.0 = provably optimal)\n"
      (O.Bounds.quality sched);
    (match O.Validate.check sched with
    | Ok () -> print_endline "schedule: VALID"
    | Error es ->
        Printf.printf "schedule: INVALID (%d violations)\n" (List.length es);
        List.iteri (fun i e -> if i < 5 then print_endline ("  " ^ e)) es);
    if fingerprint then
      Printf.printf "fingerprint: %s\n" (O.Export.fingerprint sched);
    if gantt then print_string (O.Gantt.render sched);
    if util then print_string (O.Utilization.render (O.Utilization.profile sched))
  in
  let term =
    Term.(
      const action $ testbed_arg $ size_arg $ ccr_arg $ heuristic_arg
      $ params_term $ homogeneous_arg $ gantt_arg $ refine_arg $ anneal_arg
      $ anneal_steps_arg $ seed_arg $ util_arg $ fingerprint_arg $ stats_arg
      $ trace_arg $ graph_file_arg $ platform_file_arg)
  in
  Cmd.v
    (Cmd.info "run"
       ~doc:"Schedule a testbed (or --graph/--platform files) and print metrics.")
    term

let export_cmd =
  let format_arg =
    Arg.(
      value
      & opt (enum [ ("chrome", `Chrome); ("csv", `Csv); ("svg", `Svg) ]) `Chrome
      & info [ "format" ]
          ~doc:"Output format: chrome (trace JSON), csv, or svg (Gantt).")
  in
  let output_arg =
    Arg.(
      value & opt (some string) None
      & info [ "o"; "output" ] ~doc:"Output file (default: stdout).")
  in
  let action testbed n ccr heuristic params format output =
    let plat = O.Platform.paper_platform () in
    let g = build_graph testbed n ccr in
    let entry = O.Registry.find heuristic in
    let sched = entry.O.Registry.scheduler params plat g in
    let contents =
      match format with
      | `Chrome -> O.Export.to_chrome_trace sched
      | `Csv -> O.Export.to_csv sched
      | `Svg -> O.Svg.render sched
    in
    match output with
    | None -> print_string contents
    | Some path ->
        O.Export.write_file path contents;
        Printf.printf "wrote %s (%d bytes)\n" path (String.length contents)
  in
  Cmd.v
    (Cmd.info "export"
       ~doc:"Export a schedule as a Chrome trace (chrome://tracing) or CSV.")
    Term.(
      const action $ testbed_arg $ size_arg $ ccr_arg $ heuristic_arg
      $ params_term $ format_arg $ output_arg)

let autob_cmd =
  let action testbed n ccr model =
    let plat = O.Platform.paper_platform () in
    let g = build_graph testbed n ccr in
    let r = O.Auto_b.search ~params:(O.Params.of_model model) plat g in
    print_endline "B     makespan";
    List.iter
      (fun (b, m) ->
        Printf.printf "%-5d %g%s\n" b m
          (if b = r.O.Auto_b.best_b then "   <- best" else ""))
      r.O.Auto_b.trials
  in
  Cmd.v
    (Cmd.info "auto-b" ~doc:"Search ILHA's chunk size B (the §5.3 tuning loop).")
    Term.(const action $ testbed_arg $ size_arg $ ccr_arg $ model_arg)

let figures_cmd =
  let only =
    Arg.(
      value & opt_all string []
      & info [ "only" ] ~doc:"Run only this experiment id (repeatable).")
  in
  let scale =
    Arg.(
      value & opt float 1.0
      & info [ "scale" ]
          ~doc:"Scale the paper's problem sizes (0.2 turns 100-500 into 20-100).")
  in
  let action only scale =
    let cfg = O.Config.paper ~scale () in
    let figs =
      match only with [] -> O.Figures.all | ids -> List.map O.Figures.find ids
    in
    List.iter
      (fun f ->
        Printf.printf "[%s] %s\npaper: %s\n\n%s\n" f.O.Figures.id
          f.O.Figures.title f.O.Figures.paper_claim (f.O.Figures.render cfg))
      figs
  in
  Cmd.v
    (Cmd.info "figures" ~doc:"Regenerate the paper's tables and figures.")
    Term.(const action $ only $ scale)

let analyze_cmd =
  let action testbed n ccr =
    let g = build_graph testbed n ccr in
    Format.printf "%a@.%a@." O.Graph.pp g O.Analysis.pp_summary
      (O.Analysis.summarize g)
  in
  Cmd.v
    (Cmd.info "analyze" ~doc:"Print the structural summary of a testbed graph.")
    Term.(const action $ testbed_arg $ size_arg $ ccr_arg)

let dot_cmd =
  let mapped =
    Arg.(
      value & flag
      & info [ "mapped" ] ~doc:"Colour tasks by the processor ILHA assigns them.")
  in
  let action testbed n ccr mapped =
    let g = build_graph testbed n ccr in
    if mapped then begin
      let plat = O.Platform.paper_platform () in
      let sched = O.Ilha.schedule plat g in
      print_string
        (O.Dot.with_allocation g ~proc_of:(fun v ->
             (O.Schedule.placement_exn sched v).O.Schedule.proc))
    end
    else print_string (O.Dot.to_string g)
  in
  Cmd.v
    (Cmd.info "dot" ~doc:"Emit Graphviz for a testbed graph.")
    Term.(const action $ testbed_arg $ size_arg $ ccr_arg $ mapped)

let robustness_cmd =
  let jitter =
    Arg.(value & opt float 0.3 & info [ "jitter" ] ~doc:"Relative duration jitter.")
  in
  let trials =
    Arg.(value & opt int 100 & info [ "trials" ] ~doc:"Monte-Carlo trials.")
  in
  let task_jitter =
    Arg.(
      value & opt (some float) None
      & info [ "task-jitter" ]
          ~doc:"Task-duration jitter (default: --jitter; 0 in --fault mode).")
  in
  let comm_jitter =
    Arg.(
      value & opt (some float) None
      & info [ "comm-jitter" ]
          ~doc:"Communication-duration jitter (default: --jitter; 0 in --fault mode).")
  in
  let fault_conv =
    let parse s =
      match O.Fault.of_string s with
      | (_ : O.Fault.spec) -> Ok s
      | exception Invalid_argument msg -> Error (`Msg msg)
    in
    Arg.conv (parse, Format.pp_print_string)
  in
  let faults =
    Arg.(
      value & opt_all fault_conv []
      & info [ "fault" ]
          ~doc:
            "Inject a fault (repeatable): crash:P\\@T, outage:P\\@T1-T2, \
             degrade:PxF, or flaky:PROB[:RETRIES[:BACKOFF]].  Times are \
             absolute or a percentage of the nominal makespan (25%).  \
             Crashes are repaired online; the repaired schedule is \
             validated and executed under the scenario.")
  in
  let describe label = function
    | O.Faulty_executor.Completed { trace; stats } ->
        Printf.printf "%s: completed, makespan %g" label
          trace.O.Executor.makespan;
        if stats.O.Faulty_executor.retries > 0 then
          Printf.printf " (retries %d, backoff time %g)"
            stats.O.Faulty_executor.retries
            stats.O.Faulty_executor.backoff_time;
        if stats.O.Faulty_executor.deferred > 0 then
          Printf.printf " (%d dispatches deferred)"
            stats.O.Faulty_executor.deferred;
        print_newline ()
    | O.Faulty_executor.Stranded
        { stranded; events_fired; total_events; partial_makespan; _ } ->
        Printf.printf
          "%s: STRANDED %d tasks (%d/%d events fired, partial makespan %g)\n"
          label (List.length stranded) events_fired total_events
          partial_makespan
  in
  let seed_arg =
    Arg.(
      value & opt int 42
      & info [ "seed" ] ~docv:"SEED"
          ~doc:"RNG seed for the Monte-Carlo trials (deterministic per seed).")
  in
  let fault_mode params trials task_jitter comm_jitter specs seed sched =
    let nominal = O.Schedule.makespan sched in
    let faults =
      List.map
        (fun s -> O.Fault.resolve ~makespan:nominal (O.Fault.of_string s))
        specs
    in
    let p = O.Platform.p (O.Schedule.platform sched) in
    List.iter (O.Fault.validate ~p) faults;
    Printf.printf "nominal makespan: %g\n" nominal;
    Printf.printf "faults:           %s\n"
      (String.concat " " (List.map O.Fault.to_string faults));
    describe "without repair" (O.Faulty_executor.run ~faults sched);
    let crashes =
      List.filter_map
        (function O.Fault.Crash { proc; at } -> Some (proc, at) | _ -> None)
        faults
      |> List.sort (fun (_, a) (_, b) -> compare (a : float) b)
    in
    let all_dead = List.map fst crashes in
    let final =
      List.fold_left
        (fun s (proc, at) ->
          let dead = List.filter (fun q -> q <> proc) all_dead in
          let r = O.Repair.crash ~params ~dead ~proc ~at s in
          Format.printf "%a@." O.Repair.pp_result r;
          r.O.Repair.schedule)
        sched crashes
    in
    if crashes <> [] then begin
      (match O.Validate.check final with
      | Ok () -> print_endline "repaired schedule: valid"
      | Error es ->
          Printf.printf "repaired schedule: INVALID (%s)\n" (List.hd es));
      describe "with repair" (O.Faulty_executor.run ~faults final)
    end;
    (* Monte-Carlo over the scenario: flaky draws and (optional) jitter. *)
    let tj = Option.value task_jitter ~default:0. in
    let cj = Option.value comm_jitter ~default:0. in
    let rng = O.Rng.create ~seed in
    let survived = ref 0 in
    let retries = ref 0 in
    let backoff = ref 0. in
    let makespans = ref [] in
    for _ = 1 to trials do
      match
        O.Faulty_executor.run ~rng ~task_jitter:tj ~comm_jitter:cj ~faults
          final
      with
      | O.Faulty_executor.Completed { trace; stats } ->
          incr survived;
          makespans := trace.O.Executor.makespan :: !makespans;
          retries := !retries + stats.O.Faulty_executor.retries;
          backoff := !backoff +. stats.O.Faulty_executor.backoff_time
      | O.Faulty_executor.Stranded { stats; _ } ->
          retries := !retries + stats.O.Faulty_executor.retries;
          backoff := !backoff +. stats.O.Faulty_executor.backoff_time
    done;
    Printf.printf "monte-carlo:      %d trials, survived %d (unschedulable rate %.0f%%)\n"
      trials !survived
      (100. *. float_of_int (trials - !survived) /. float_of_int trials);
    if !makespans <> [] then
      Printf.printf "makespan:         mean %g  p95 %g  worst %g\n"
        (O.Stats.mean !makespans)
        (O.Stats.percentile 95. !makespans)
        (O.Stats.maximum !makespans);
    if !retries > 0 then
      Printf.printf "retries:          %d total, backoff time %g total\n"
        !retries !backoff
  in
  let action testbed n ccr heuristic params jitter trials task_jitter
      comm_jitter faults jobs seed homogeneous graph_file platform_file =
    let plat = resolve_platform platform_file homogeneous in
    let g = resolve_graph graph_file testbed n ccr in
    let entry = O.Registry.find heuristic in
    let sched = entry.O.Registry.scheduler params plat g in
    match faults with
    | [] ->
        let rng = O.Rng.create ~seed in
        Format.printf "%a@." O.Robustness.pp_stats
          (O.Robustness.monte_carlo ?task_jitter ?comm_jitter ~jobs sched rng
             ~jitter ~trials)
    | specs -> (
        try fault_mode params trials task_jitter comm_jitter specs seed sched
        with Invalid_argument msg ->
          Printf.eprintf "schedcli: %s\n" msg;
          exit 2)
  in
  Cmd.v
    (Cmd.info "robustness"
       ~doc:
         "Monte-Carlo jitter analysis and fault injection on a schedule.  \
          The jitter Monte-Carlo shards its trials over --jobs domains; \
          every statistic is bit-identical to --jobs 1.")
    Term.(
      const action $ testbed_arg $ size_arg $ ccr_arg $ heuristic_arg
      $ params_term $ jitter $ trials $ task_jitter $ comm_jitter $ faults
      $ jobs_arg $ seed_arg $ homogeneous_arg $ graph_file_arg
      $ platform_file_arg)

let online_cmd =
  let trace_file_arg =
    Arg.(
      value & opt (some file) None
      & info [ "trace-file" ] ~docv:"FILE"
          ~doc:
            "Read the event trace from $(docv) (one event per line; see \
             doc/online.md).  Overrides --arrival.")
  in
  let arrival_arg =
    Arg.(
      value & opt (some string) None
      & info [ "arrival" ] ~docv:"PROC"
          ~doc:
            "Generate arrivals of the template job (-t/-n/-c): \
             poisson:RATE[:COUNT] or bursty:RATE:BURST[:COUNT] (COUNT \
             defaults to 5).  Deterministic per --seed.  Without \
             --trace-file and --arrival, a single job arrives at t = 0.")
  in
  let fault_conv =
    let parse s =
      match O.Fault.of_string s with
      | (_ : O.Fault.spec) -> Ok s
      | exception Invalid_argument msg -> Error (`Msg msg)
    in
    Arg.conv (parse, Format.pp_print_string)
  in
  let faults_arg =
    Arg.(
      value & opt_all fault_conv []
      & info [ "fault" ]
          ~doc:
            "Inject a fault as trace events (repeatable): crash:P\\@T, \
             outage:P\\@T1-T2 (becomes down + rejoin), or rejoin:P\\@T.  \
             Times must be absolute — there is no nominal makespan to \
             anchor percentages against in an online run.")
  in
  let deadline_arg =
    Arg.(
      value & opt (some float) None
      & info [ "deadline" ] ~docv:"D"
          ~doc:
            "Deadline for generated arrivals, relative to each job's \
             arrival instant.")
  in
  let seed_arg =
    Arg.(
      value & opt int 42
      & info [ "seed" ] ~docv:"SEED"
          ~doc:"RNG seed for --arrival (runs are deterministic per seed).")
  in
  let max_active_arg =
    Arg.(
      value & opt int O.Online_driver.default_config.O.Online_driver.max_active
      & info [ "max-active" ] ~doc:"Admission control: concurrent job cap.")
  in
  let queue_arg =
    Arg.(
      value & opt int O.Online_driver.default_config.O.Online_driver.queue_cap
      & info [ "queue" ] ~doc:"FIFO backlog capacity beyond --max-active.")
  in
  let budget_arg =
    Arg.(
      value
      & opt int O.Online_driver.default_config.O.Online_driver.replan_budget
      & info [ "replan-budget" ]
          ~doc:"Re-plans allowed before arrivals are rejected.")
  in
  let retries_arg =
    Arg.(
      value & opt int O.Online_driver.default_config.O.Online_driver.max_retries
      & info [ "retries" ]
          ~doc:"Probes before a down processor is declared dead.")
  in
  let backoff_arg =
    Arg.(
      value & opt float O.Online_driver.default_config.O.Online_driver.backoff
      & info [ "backoff" ]
          ~doc:"First probe delay for a down processor; doubles per retry.")
  in
  let from_scratch_arg =
    Arg.(
      value & flag
      & info [ "from-scratch" ]
          ~doc:
            "Rebuild every re-plan from scratch instead of rewinding the \
             commit log (the bench baseline).")
  in
  let parse_arrival spec rng job =
    let num what conv s =
      match conv s with
      | Some v -> v
      | None ->
          invalid_arg
            (Printf.sprintf "--arrival: bad %s %S in %S" what s spec)
    in
    match String.split_on_char ':' spec with
    | [ "poisson"; rate ] | [ "poisson"; rate; "" ] ->
        O.Online_event.poisson ~rng
          ~rate:(num "rate" float_of_string_opt rate)
          ~count:5 job
    | [ "poisson"; rate; count ] ->
        O.Online_event.poisson ~rng
          ~rate:(num "rate" float_of_string_opt rate)
          ~count:(num "count" int_of_string_opt count)
          job
    | [ "bursty"; rate; burst ] ->
        O.Online_event.bursty ~rng
          ~rate:(num "rate" float_of_string_opt rate)
          ~burst:(num "burst" int_of_string_opt burst)
          ~count:5 job
    | [ "bursty"; rate; burst; count ] ->
        O.Online_event.bursty ~rng
          ~rate:(num "rate" float_of_string_opt rate)
          ~burst:(num "burst" int_of_string_opt burst)
          ~count:(num "count" int_of_string_opt count)
          job
    | _ ->
        invalid_arg
          (Printf.sprintf
             "--arrival: expected poisson:RATE[:COUNT] or \
              bursty:RATE:BURST[:COUNT], got %S"
             spec)
  in
  let action testbed n ccr heuristic params trace_file arrival faults deadline
      seed max_active queue_cap replan_budget max_retries backoff from_scratch
      stats trace =
    try
      let job = O.Online_event.job ~ccr ?deadline testbed n in
      let arrivals =
        match (trace_file, arrival) with
        | Some path, _ -> O.Online_event.load path
        | None, Some spec ->
            parse_arrival spec (O.Rng.create ~seed) job
        | None, None ->
            [ { O.Online_event.at = 0.; kind = O.Online_event.Arrive job } ]
      in
      let fault_events =
        List.concat_map
          (fun s ->
            let f =
              try O.Fault.resolve ~makespan:0. (O.Fault.of_string s)
              with Invalid_argument _ ->
                invalid_arg
                  (Printf.sprintf
                     "--fault: online fault times must be absolute, got %S" s)
            in
            O.Online_event.of_fault f)
          faults
      in
      let events = O.Online_event.sort (arrivals @ fault_events) in
      let config =
        {
          O.Online_driver.default_config with
          O.Online_driver.params;
          heuristic;
          max_active;
          queue_cap;
          replan_budget;
          max_retries;
          backoff;
          incremental = not from_scratch;
        }
      in
      let outcome =
        with_observability ~stats ~trace (fun () ->
            O.Online_driver.run ~config (O.Platform.paper_platform ()) events)
      in
      Format.printf "%a@." O.Online_driver.pp_outcome outcome;
      let n_replans = List.length outcome.O.Online_driver.replans in
      Printf.printf "validator:        ok (%d replans checked)\n" n_replans;
      if n_replans > 0 then begin
        let walls =
          List.map
            (fun r -> 1000. *. r.O.Online_driver.wall_s)
            outcome.O.Online_driver.replans
        in
        Printf.printf "replan latency:   p50 %.3f ms  p99 %.3f ms\n"
          (O.Stats.percentile 50. walls)
          (O.Stats.percentile 99. walls)
      end
    with Invalid_argument msg | Failure msg ->
      Printf.eprintf "schedcli: %s\n" msg;
      exit 2
  in
  Cmd.v
    (Cmd.info "online"
       ~doc:
         "Rolling-horizon online scheduling: consume an event trace (job \
          arrivals, crashes, outages, rejoins) against the template job, \
          re-planning the un-executed suffix after each disruption.  Every \
          re-plan is validated and the executed prefix is kept bit-identical; \
          see doc/online.md.")
    Term.(
      const action $ testbed_arg $ size_arg $ ccr_arg $ heuristic_arg
      $ params_term $ trace_file_arg $ arrival_arg $ faults_arg $ deadline_arg
      $ seed_arg $ max_active_arg $ queue_arg $ budget_arg $ retries_arg
      $ backoff_arg $ from_scratch_arg $ stats_arg $ trace_arg)

let compare_cmd =
  let against_arg =
    Arg.(
      value & opt string "heft"
      & info [ "against" ] ~doc:"Second heuristic to compare with.")
  in
  let action testbed n ccr heuristic against params =
    let plat = O.Platform.paper_platform () in
    let g = build_graph testbed n ccr in
    let sched_of name =
      (O.Registry.find name).O.Registry.scheduler params plat g
    in
    let a = sched_of heuristic and b = sched_of against in
    Format.printf "%s (a) vs %s (b) on %s@.%a@." heuristic against
      (O.Graph.name g) O.Compare.pp (O.Compare.diff a b);
    let d = O.Compare.diff a b in
    List.iteri
      (fun i (v, pa, pb) ->
        if i < 10 then Printf.printf "  task %d: P%d vs P%d\n" v pa pb)
      d.O.Compare.moved_tasks
  in
  Cmd.v
    (Cmd.info "compare" ~doc:"Diff the schedules of two heuristics.")
    Term.(
      const action $ testbed_arg $ size_arg $ ccr_arg $ heuristic_arg
      $ against_arg $ params_term)

(* One implementation behind two names: `batch` (primary) and `grid`
   (the historical name, kept for scripts).  --jobs shards the grid
   cells over a domain pool; the CSV is byte-identical to --jobs 1
   except the per-row wall_s timing column. *)
let batch_term =
  let scale =
    Arg.(value & opt float 0.2 & info [ "scale" ] ~doc:"Problem-size scale.")
  in
  let output_arg =
    Arg.(
      value & opt (some string) None
      & info [ "o"; "output" ] ~doc:"CSV output file (default: stdout).")
  in
  let models_arg =
    Arg.(
      value & opt_all string []
      & info [ "model" ] ~docv:"MODEL"
          ~doc:
            "Sweep this communication model (repeatable); the special value \
             'all' sweeps every rung of the model ladder.  Default: the \
             macro-dataflow baseline only.")
  in
  let testbeds_arg =
    Arg.(
      value & opt_all string []
      & info [ "testbed"; "t" ] ~docv:"NAME"
          ~doc:"Restrict the sweep to this testbed (repeatable; default: all).")
  in
  let heuristics_arg =
    Arg.(
      value & opt_all string []
      & info [ "heuristic"; "H" ] ~docv:"NAME"
          ~doc:
            "Restrict the sweep to this heuristic (repeatable; default: every \
             scalable heuristic).")
  in
  let action scale output jobs stats models testbeds heuristics =
    if stats then begin
      O.Obs_counters.enable ();
      O.Obs_counters.reset ()
    end;
    let cfg = O.Config.paper ~scale () in
    let spec =
      try
        let spec = O.Batch.default_spec cfg in
        {
          spec with
          O.Batch.models =
            (match models with
            | [] -> spec.O.Batch.models
            | ms when List.mem "all" ms -> O.Comm_model.all
            | ms -> List.map O.Comm_model.of_name ms);
          testbeds =
            (match testbeds with
            | [] -> spec.O.Batch.testbeds
            | ts -> List.map O.Suite.find ts);
          heuristics =
            (match heuristics with
            | [] -> spec.O.Batch.heuristics
            | hs -> List.map O.Registry.find hs);
        }
      with Invalid_argument msg ->
        Printf.eprintf "schedcli: %s\n" msg;
        exit 2
    in
    let rows = O.Batch.run ~jobs cfg spec in
    let csv = O.Batch.to_csv rows in
    (match output with
    | None -> print_string csv
    | Some path ->
        O.Export.write_file path csv;
        Printf.printf "wrote %s (%d rows)\n" path (List.length rows));
    if stats then begin
      (* Worker-domain counters merged at the pool barrier: the totals
         below are independent of --jobs (the cram tests pin this). *)
      Format.printf "%a@." O.Obs_counters.pp (O.Obs_counters.snapshot ());
      O.Obs_counters.disable ()
    end
  in
  Term.(
    const action $ scale $ output_arg $ jobs_arg $ stats_arg $ models_arg
    $ testbeds_arg $ heuristics_arg)

let batch_cmd =
  Cmd.v
    (Cmd.info "batch"
       ~doc:
         "Run the full heuristic x testbed x size grid (sharded over --jobs \
          domains) and emit CSV.")
    batch_term

let grid_cmd =
  Cmd.v
    (Cmd.info "grid"
       ~doc:"Run the full heuristic x testbed x size grid and emit CSV.")
    batch_term

let reproduce_cmd =
  let out_arg =
    Arg.(
      value & opt string "reproduction"
      & info [ "out" ] ~doc:"Output directory (created if missing).")
  in
  let scale =
    Arg.(value & opt float 1.0 & info [ "scale" ] ~doc:"Problem-size scale.")
  in
  let action out scale =
    if not (Sys.file_exists out) then Sys.mkdir out 0o755;
    let cfg = O.Config.paper ~scale () in
    let path name = Filename.concat out name in
    (* 1. every experiment, one text report *)
    let buf = Buffer.create (1 lsl 16) in
    List.iter
      (fun f ->
        Buffer.add_string buf
          (Printf.sprintf "[%s] %s\npaper: %s\n\n%s\n" f.O.Figures.id
             f.O.Figures.title f.O.Figures.paper_claim (f.O.Figures.render cfg));
        Printf.printf "rendered %s\n%!" f.O.Figures.id)
      O.Figures.all;
    O.Export.write_file (path "experiments.txt") (Buffer.contents buf);
    (* 2. the raw grid as CSV *)
    let rows = O.Batch.run cfg (O.Batch.default_spec cfg) in
    O.Export.write_file (path "grid.csv") (O.Batch.to_csv rows);
    (* 3. one SVG Gantt + Chrome trace per testbed (small instances) *)
    List.iter
      (fun suite ->
        let n = max 20 suite.O.Suite.min_n in
        let g = suite.O.Suite.build ~n ~ccr:cfg.O.Config.ccr in
        let sched =
          O.Ilha.schedule
            ~params:
              (O.Params.with_b cfg.O.Config.params (Some suite.O.Suite.paper_b))
            cfg.O.Config.platform g
        in
        O.Export.write_file
          (path (Printf.sprintf "%s.svg" suite.O.Suite.name))
          (O.Svg.render sched);
        O.Export.write_file
          (path (Printf.sprintf "%s.trace.json" suite.O.Suite.name))
          (O.Export.to_chrome_trace sched))
      O.Suite.all;
    Printf.printf "wrote %s/{experiments.txt, grid.csv, <testbed>.svg, <testbed>.trace.json}\n"
      out
  in
  Cmd.v
    (Cmd.info "reproduce"
       ~doc:"Regenerate every experiment and write all artifacts to a directory.")
    Term.(const action $ out_arg $ scale)

let list_cmd =
  let action () =
    print_endline "testbeds:";
    List.iter (fun n -> print_endline ("  " ^ n)) O.Suite.names;
    print_endline "heuristics:";
    List.iter
      (fun e ->
        Printf.printf "  %-8s %s\n" e.O.Registry.name e.O.Registry.description)
      O.Registry.all;
    print_endline "models:";
    List.iter (fun m -> print_endline ("  " ^ O.Comm_model.name m)) O.Comm_model.all;
    print_endline "experiments:";
    List.iter
      (fun f -> Printf.printf "  %-11s %s\n" f.O.Figures.id f.O.Figures.title)
      O.Figures.all
  in
  Cmd.v
    (Cmd.info "list" ~doc:"Enumerate testbeds, heuristics, models, experiments.")
    Term.(const action $ const ())

(* ---------------- scheduld: serve + client ---------------- *)

let socket_arg =
  Arg.(
    value & opt string "scheduld.sock"
    & info [ "socket"; "s" ] ~docv:"PATH"
        ~doc:"Unix-domain socket path the daemon listens on.")

let port_arg =
  Arg.(
    value & opt (some int) None
    & info [ "port"; "p" ] ~docv:"PORT"
        ~doc:"Listen on loopback TCP $(docv) instead of a Unix socket.")

let endpoint_of socket port =
  match port with
  | Some p -> O.Scheduld.Tcp p
  | None -> O.Scheduld.Unix_path socket

let serve_cmd =
  let queue_arg =
    Arg.(
      value & opt int O.Scheduld.default_config.O.Scheduld.queue_cap
      & info [ "queue" ] ~doc:"Backlog capacity before shedding kicks in.")
  in
  let max_batch_arg =
    Arg.(
      value & opt int O.Scheduld.default_config.O.Scheduld.max_batch
      & info [ "max-batch" ] ~doc:"Submissions coalesced into one re-plan.")
  in
  let window_arg =
    Arg.(
      value & opt float O.Scheduld.default_config.O.Scheduld.batch_window
      & info [ "batch-window" ] ~docv:"SECONDS"
          ~doc:"Coalescing window: a batch runs this long after its first \
                pending submission arrived.")
  in
  let budget_arg =
    Arg.(
      value & opt int O.Scheduld.default_config.O.Scheduld.replan_budget
      & info [ "replan-budget" ]
          ~doc:"Batches allowed before submissions get budget errors.")
  in
  let serve_jobs_arg =
    Arg.(
      value & opt int 1
      & info [ "jobs"; "j" ] ~docv:"N"
          ~doc:"Schedule each batch's jobs across $(docv) domains \
                (placements are byte-identical at any value).")
  in
  let action socket port heuristic params jobs queue_cap max_batch
      batch_window replan_budget stats =
    try
      let config =
        {
          O.Scheduld.default_config with
          O.Scheduld.params;
          heuristic;
          jobs;
          max_batch;
          queue_cap;
          replan_budget;
          batch_window;
        }
      in
      let endpoint = endpoint_of socket port in
      if stats then begin
        O.Obs_counters.enable ();
        O.Obs_counters.reset ()
      end;
      let final =
        O.Scheduld.serve ~config
          ~ready:(fun () ->
            Printf.printf "scheduld: listening on %s (heuristic %s, %d jobs)\n%!"
              (O.Scheduld.endpoint_to_string endpoint)
              heuristic jobs)
          endpoint
          (O.Platform.paper_platform ())
      in
      Printf.printf
        "scheduld: served %d jobs in %d batches (%d submitted, %d shed, %d \
         failed, %d cancelled, %d errors)\n"
        final.O.Scheduld_proto.completed final.O.Scheduld_proto.batches
        final.O.Scheduld_proto.submitted final.O.Scheduld_proto.shed
        final.O.Scheduld_proto.failed final.O.Scheduld_proto.cancelled
        final.O.Scheduld_proto.errors;
      if stats then begin
        Format.printf "%a@." O.Obs_counters.pp (O.Obs_counters.snapshot ());
        O.Obs_counters.disable ()
      end
    with Invalid_argument msg | Failure msg ->
      Printf.eprintf "schedcli: %s\n" msg;
      exit 2
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the scheduld daemon: accept task-graph submissions over a \
          newline-delimited JSON protocol, coalesce them into batched \
          re-plans and stream placement events back (see doc/scheduld.md).")
    Term.(
      const action $ socket_arg $ port_arg $ heuristic_arg $ params_term
      $ serve_jobs_arg $ queue_arg $ max_batch_arg $ window_arg $ budget_arg
      $ stats_arg)

let client_connect socket port =
  try O.Scheduld_client.connect (endpoint_of socket port)
  with Failure msg ->
    Printf.eprintf "schedcli: %s\n" msg;
    exit 2

let die_error code msg =
  Printf.eprintf "schedcli: %s: %s\n"
    (O.Scheduld_proto.error_code_to_string code)
    msg;
  exit 2

let print_event (resp : O.Scheduld_proto.response) =
  match resp with
  | Accepted { id; queued } -> Printf.printf "accepted job %d (queued %d)\n" id queued
  | Placed { id; makespan; tasks; valid; fingerprint; batch; placements } ->
      Printf.printf "placed job %d: makespan %g tasks %d %s (batch of %d)\n" id
        makespan tasks
        (if valid then "valid" else "INVALID")
        batch;
      Printf.printf "fingerprint: %s\n" fingerprint;
      Option.iter
        (List.iter (fun (r : O.Scheduld_proto.placement_row) ->
             Printf.printf "  task %d -> P%d @ %g..%g\n" r.task r.proc r.start
               r.finish))
        placements
  | Done { id; makespan; missed } ->
      Printf.printf "done job %d: makespan %g%s\n" id makespan
        (if missed then " (deadline missed)" else "")
  | Failed { id; msg } -> Printf.printf "failed job %d: %s\n" id msg
  | Shed { id; by } -> Printf.printf "shed job %d in favour of job %d\n" id by
  | Cancelled_reply { id } -> Printf.printf "cancelled job %d\n" id
  | Status_reply jobs ->
      List.iter
        (fun (v : O.Scheduld_proto.job_view) ->
          Printf.printf "job %d: %s %s%s%s\n" v.id
            (O.Scheduld_proto.job_state_to_string v.state)
            v.spec
            (if v.priority = 0 then ""
             else Printf.sprintf " prio=%d" v.priority)
            (match v.makespan with
            | None -> ""
            | Some m -> Printf.sprintf " makespan %g" m))
        jobs
  | Stats_reply s ->
      Printf.printf "requests:    %d\n" s.requests;
      Printf.printf "submitted:   %d\n" s.submitted;
      Printf.printf "completed:   %d\n" s.completed;
      Printf.printf "cancelled:   %d\n" s.cancelled;
      Printf.printf "shed:        %d\n" s.shed;
      Printf.printf "failed:      %d\n" s.failed;
      Printf.printf "errors:      %d\n" s.errors;
      Printf.printf "batches:     %d\n" s.batches;
      Printf.printf "queue depth: %d\n" s.queue_depth;
      Printf.printf "queue peak:  %d\n" s.queue_peak;
      Printf.printf "clients:     %d\n" s.clients;
      (match (s.p50_ms, s.p99_ms) with
      | Some p50, Some p99 ->
          Printf.printf "latency:     p50 %.3f ms  p99 %.3f ms\n" p50 p99
      | _ -> Printf.printf "latency:     -\n")
  | Draining_reply { pending } -> Printf.printf "draining (%d pending)\n" pending
  | Watching -> print_endline "watching"
  | Bye -> print_endline "bye"
  | Pong -> print_endline "pong"
  | Error { code; msg } -> die_error code msg

let client_cmd =
  let submit_cmd =
    let job_arg =
      Arg.(
        value & opt (some string) None
        & info [ "job" ] ~docv:"SPEC"
            ~doc:"Job spec TESTBED:N[:CCR] (layered:L:W:N[:CCR] for a \
                  random layered DAG).")
    in
    let graph_arg =
      Arg.(
        value & opt (some file) None
        & info [ "graph" ] ~docv:"FILE"
            ~doc:"Submit the task graph in $(docv) (Graph_io text format) \
                  instead of a testbed spec.")
    in
    let heuristic_opt_arg =
      Arg.(
        value & opt (some string) None
        & info [ "heuristic"; "H" ]
            ~doc:"Registry heuristic (default: the daemon's).")
    in
    let model_opt_arg =
      Arg.(
        value & opt (some string) None
        & info [ "model" ] ~doc:"Communication model (default: the daemon's).")
    in
    let prio_arg =
      Arg.(
        value & opt int 0
        & info [ "prio" ] ~doc:"Shedding rank: higher survives longer.")
    in
    let deadline_arg =
      Arg.(
        value & opt (some float) None
        & info [ "deadline" ] ~docv:"D" ~doc:"Report a miss past this makespan.")
    in
    let placements_arg =
      Arg.(
        value & flag
        & info [ "placements" ] ~doc:"Print the full placement table.")
    in
    let action socket port job graph heuristic model prio deadline placements =
      let spec =
        match (job, graph) with
        | Some j, None -> O.Scheduld_proto.Testbed j
        | None, Some path ->
            O.Scheduld_proto.Inline
              (O.Graph_io.to_string (O.Graph_io.load path))
        | Some _, Some _ ->
            Printf.eprintf "schedcli: --job and --graph are exclusive\n";
            exit 2
        | None, None ->
            Printf.eprintf "schedcli: submit needs --job SPEC or --graph FILE\n";
            exit 2
      in
      let c = client_connect socket port in
      O.Scheduld_client.send c
        (O.Scheduld_proto.Submit
           { spec; heuristic; model; priority = prio; deadline; placements });
      let rec wait id =
        match O.Scheduld_client.recv c with
        | O.Scheduld_proto.Done _ as r when id >= 0 ->
            print_event r;
            O.Scheduld_client.close c
        | (O.Scheduld_proto.Failed _ | O.Scheduld_proto.Shed _) as r
          when id >= 0 ->
            print_event r;
            O.Scheduld_client.close c;
            exit 1
        | O.Scheduld_proto.Accepted { id; _ } as r ->
            print_event r;
            wait id
        | r ->
            print_event r;
            wait id
      in
      wait (-1)
    in
    Cmd.v
      (Cmd.info "submit"
         ~doc:"Submit a job and wait for its placement events.")
      Term.(
        const action $ socket_arg $ port_arg $ job_arg $ graph_arg
        $ heuristic_opt_arg $ model_opt_arg $ prio_arg $ deadline_arg
        $ placements_arg)
  in
  let simple name doc req ~wait_bye =
    let action socket port =
      let c = client_connect socket port in
      print_event (O.Scheduld_client.request c req);
      if wait_bye then begin
        let rec loop () =
          match O.Scheduld_client.recv c with
          | O.Scheduld_proto.Bye ->
              print_endline "bye";
              O.Scheduld_client.close c
          | r ->
              print_event r;
              loop ()
          | exception End_of_file -> ()
        in
        loop ()
      end
      else O.Scheduld_client.close c
    in
    Cmd.v (Cmd.info name ~doc) Term.(const action $ socket_arg $ port_arg)
  in
  let status_cmd =
    let id_arg =
      Arg.(
        value & opt (some int) None
        & info [ "id" ] ~doc:"Show one job instead of all.")
    in
    let action socket port id =
      let c = client_connect socket port in
      print_event (O.Scheduld_client.request c (O.Scheduld_proto.Status id));
      O.Scheduld_client.close c
    in
    Cmd.v
      (Cmd.info "status" ~doc:"List submitted jobs and their states.")
      Term.(const action $ socket_arg $ port_arg $ id_arg)
  in
  let cancel_cmd =
    let id_arg =
      Arg.(
        required & opt (some int) None
        & info [ "id" ] ~doc:"Job to cancel (queued jobs only).")
    in
    let action socket port id =
      let c = client_connect socket port in
      print_event (O.Scheduld_client.request c (O.Scheduld_proto.Cancel id));
      O.Scheduld_client.close c
    in
    Cmd.v
      (Cmd.info "cancel" ~doc:"Cancel a queued job.")
      Term.(const action $ socket_arg $ port_arg $ id_arg)
  in
  Cmd.group
    (Cmd.info "client" ~doc:"Talk to a running scheduld daemon.")
    [
      submit_cmd;
      status_cmd;
      cancel_cmd;
      simple "watch"
        "Subscribe to every job's placement events until the daemon drains."
        O.Scheduld_proto.Watch ~wait_bye:true;
      simple "drain"
        "Ask the daemon to finish its backlog and shut down; waits for bye."
        O.Scheduld_proto.Drain ~wait_bye:true;
      simple "stats" "Print the daemon's service counters."
        O.Scheduld_proto.Stats ~wait_bye:false;
      simple "ping" "Check the daemon is alive." O.Scheduld_proto.Ping
        ~wait_bye:false;
    ]

let () =
  let info =
    Cmd.info "schedcli" ~version:"1.0.0"
      ~doc:"One-port task-graph scheduling with heterogeneous processors"
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            run_cmd; figures_cmd; analyze_cmd; dot_cmd; robustness_cmd;
            online_cmd; export_cmd; autob_cmd; compare_cmd; batch_cmd;
            grid_cmd; reproduce_cmd; serve_cmd; client_cmd; list_cmd;
          ]))
