(* Benchmark harness.

   Two halves, both driven from this one executable:

   1. {b Reproduction} — regenerate every table and figure of the paper
      (the same experiment registry the CLI exposes): the §2.3 example,
      the §4.4 toy, the §5.2 bound, Figures 7-12, the ablations and the
      NP-hardness checks.  Each report prints the paper's claim next to
      the measured series.

   2. {b Micro-benchmarks} — one Bechamel [Test.make] per figure/table,
      measuring the scheduling throughput of the heuristic pair that
      produces it (HEFT and ILHA at the figure's B on a mid-size
      instance), plus the engine-level hot path.

   Usage:
     dune exec bench/main.exe                  -- full-scale reproduction + micro
     dune exec bench/main.exe -- --quick       -- 1/5-scale problem sizes
     dune exec bench/main.exe -- --scale 0.4   -- custom scale
     dune exec bench/main.exe -- --only fig8 --only e1
     dune exec bench/main.exe -- --no-bechamel / --no-figures *)

module O = Onesched

type options = {
  scale : float;
  only : string list;
  run_figures : bool;
  run_bechamel : bool;
  run_probes : bool;
}

let parse_args () =
  let scale = ref 1.0 in
  let only = ref [] in
  let run_figures = ref true in
  let run_bechamel = ref true in
  let run_probes = ref true in
  let rec eat = function
    | [] -> ()
    | "--quick" :: rest ->
        scale := 0.2;
        eat rest
    | "--scale" :: v :: rest ->
        scale := float_of_string v;
        eat rest
    | "--only" :: id :: rest ->
        only := id :: !only;
        eat rest
    | "--no-figures" :: rest ->
        run_figures := false;
        eat rest
    | "--no-bechamel" :: rest ->
        run_bechamel := false;
        eat rest
    | "--no-probes" :: rest ->
        run_probes := false;
        eat rest
    | arg :: _ ->
        Printf.eprintf
          "unknown argument %s\n\
           usage: main.exe [--quick] [--scale F] [--only ID]* [--no-figures] \
           [--no-bechamel] [--no-probes]\n\
           experiment ids: %s\n"
          arg
          (String.concat ", " O.Figures.ids);
        exit 2
  in
  eat (List.tl (Array.to_list Sys.argv));
  {
    scale = !scale;
    only = List.rev !only;
    run_figures = !run_figures;
    run_bechamel = !run_bechamel;
    run_probes = !run_probes;
  }

(* ------------------------------------------------------------------ *)
(* Part 1: regenerate the paper's tables and figures                    *)
(* ------------------------------------------------------------------ *)

let run_figures opts =
  let cfg = O.Config.paper ~scale:opts.scale () in
  let figures =
    match opts.only with
    | [] -> O.Figures.all
    | ids -> List.map O.Figures.find ids
  in
  Printf.printf
    "=== reproduction (scale %.2f: problem sizes %s) ===\n\n" opts.scale
    (String.concat "," (List.map string_of_int cfg.O.Config.sizes));
  List.iter
    (fun f ->
      let t0 = Sys.time () in
      let body = f.O.Figures.render cfg in
      Printf.printf "[%s] %s   (%.1fs)\npaper: %s\n\n%s\n%!" f.O.Figures.id
        f.O.Figures.title (Sys.time () -. t0) f.O.Figures.paper_claim body)
    figures

(* ------------------------------------------------------------------ *)
(* Part 2: Bechamel micro-benchmarks (one Test.make per table/figure)   *)
(* ------------------------------------------------------------------ *)

open Bechamel
open Toolkit

let bench_size = 40
let plat = O.Platform.paper_platform ()

let schedule_test name scheduler =
  Test.make ~name (Staged.stage (fun () -> ignore (scheduler ())))

(* One benchmark per figure: scheduling the figure's testbed (HEFT and
   ILHA at the figure's B) at a fixed mid-size instance, so the numbers
   compare the cost of producing each figure's data points. *)
let figure_benches =
  List.concat_map
    (fun (fig, testbed) ->
      let suite = O.Suite.find testbed in
      let g = suite.O.Suite.build ~n:bench_size ~ccr:10. in
      let b = suite.O.Suite.paper_b in
      [
        schedule_test
          (Printf.sprintf "%s/heft" fig)
          (fun () -> O.Heft.schedule plat g);
        schedule_test
          (Printf.sprintf "%s/ilha[b=%d]" fig b)
          (fun () -> O.Ilha.schedule ~params:(O.Params.make ~b ()) plat g);
      ])
    [
      ("fig7", "fork-join"); ("fig8", "lu"); ("fig9", "laplace");
      ("fig10", "ldmt"); ("fig11", "doolittle"); ("fig12", "stencil");
    ]

(* The supporting experiments: E1's exact fork solver, E3's load
   balancing, the Theorem 1/2 decision procedures, and the PERT replay
   behind the robustness table. *)
let support_benches =
  let fork_inst =
    Option.get (O.Fork_exact.of_graph (O.Fork.example_fig1 ()))
  in
  let partition = O.Two_partition.create [| 3; 5; 2; 7; 1 |] in
  let lu = O.Kernels.lu ~n:bench_size ~ccr:10. in
  let lu_sched = O.Heft.schedule plat lu in
  let pert = O.Pert.build lu_sched in
  [
    schedule_test "e1/fork-exact" (fun () ->
        O.Fork_exact.optimal_makespan ~max_procs:5 fork_inst);
    schedule_test "e3/load-balance" (fun () ->
        O.Load_balance.distribute plat ~n:38);
    schedule_test "reductions/thm1-decide" (fun () ->
        O.Fork_sched.decide (O.Fork_sched.reduce partition));
    schedule_test "reductions/thm2-decide" (fun () ->
        O.Comm_sched.decide (O.Comm_sched.reduce partition));
    schedule_test "robustness/pert-retime" (fun () ->
        O.Pert.retime pert
          ~task_duration:(fun _ d -> d *. 1.1)
          ~hop_duration:(fun _ d -> d));
    schedule_test "engine/upward-rank" (fun () -> O.Ranking.upward lu plat);
  ]

let run_bechamel () =
  Printf.printf "=== micro-benchmarks (Bechamel, n = %d per testbed) ===\n%!"
    bench_size;
  let test =
    Test.make_grouped ~name:"onesched" (figure_benches @ support_benches)
  in
  let cfg =
    Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~kde:None
      ~stabilize:false ()
  in
  let raw = Benchmark.all cfg Instance.[ monotonic_clock ] test in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows =
    Hashtbl.fold
      (fun name ols acc ->
        let ns_per_run =
          match Analyze.OLS.estimates ols with
          | Some (est :: _) -> est
          | Some [] | None -> nan
        in
        (name, ns_per_run) :: acc)
      results []
  in
  let table = O.Table.create ~columns:[ "benchmark"; "time/run"; "runs/s" ] in
  let pretty_time ns =
    if ns >= 1e9 then Printf.sprintf "%.2f s" (ns /. 1e9)
    else if ns >= 1e6 then Printf.sprintf "%.2f ms" (ns /. 1e6)
    else if ns >= 1e3 then Printf.sprintf "%.2f us" (ns /. 1e3)
    else Printf.sprintf "%.0f ns" ns
  in
  List.iter
    (fun (name, ns) ->
      O.Table.add_row table
        [ name; pretty_time ns; Printf.sprintf "%.1f" (1e9 /. ns) ])
    (List.sort compare rows);
  print_string (O.Table.to_string table)

(* ------------------------------------------------------------------ *)
(* Part 3: engine-probe accounting via the obs counters                 *)
(* ------------------------------------------------------------------ *)

(* How much engine work each heuristic spends per task it schedules:
   (task, proc) evaluations, earliest-gap searches (single + joint) and
   tentative communication hops, counted by the obs layer and divided by
   the task count. *)
let run_probes () =
  Printf.printf "\n=== engine probes per scheduled task (n = %d) ===\n%!"
    bench_size;
  O.Obs_counters.enable ();
  let table =
    O.Table.create
      ~columns:
        [ "testbed"; "heuristic"; "tasks"; "evals/task"; "gap probes/task";
          "tentative hops/task" ]
  in
  List.iter
    (fun suite ->
      let g = suite.O.Suite.build ~n:bench_size ~ccr:10. in
      let tasks = O.Graph.n_tasks g in
      let probe name schedule =
        O.Obs_counters.reset ();
        ignore (schedule () : O.Schedule.t);
        let c = O.Obs_counters.snapshot () in
        let per x = Printf.sprintf "%.1f" (float_of_int x /. float_of_int tasks) in
        O.Table.add_row table
          [
            suite.O.Suite.name; name; string_of_int tasks;
            per c.O.Obs_counters.evaluations;
            per
              (c.O.Obs_counters.gap_probes + c.O.Obs_counters.joint_gap_probes);
            per c.O.Obs_counters.tentative_hops;
          ]
      in
      probe "heft" (fun () -> O.Heft.schedule plat g);
      let b = suite.O.Suite.paper_b in
      probe
        (Printf.sprintf "ilha[b=%d]" b)
        (fun () -> O.Ilha.schedule ~params:(O.Params.make ~b ()) plat g))
    O.Suite.all;
  O.Obs_counters.disable ();
  print_string (O.Table.to_string table)

let () =
  let opts = parse_args () in
  if opts.run_figures then run_figures opts;
  if opts.run_probes && opts.only = [] then run_probes ();
  if opts.run_bechamel && opts.only = [] then run_bechamel ()
