(* Benchmark harness.

   Two halves, both driven from this one executable:

   1. {b Reproduction} — regenerate every table and figure of the paper
      (the same experiment registry the CLI exposes): the §2.3 example,
      the §4.4 toy, the §5.2 bound, Figures 7-12, the ablations and the
      NP-hardness checks.  Each report prints the paper's claim next to
      the measured series.

   2. {b Micro-benchmarks} — one Bechamel [Test.make] per figure/table,
      measuring the scheduling throughput of the heuristic pair that
      produces it (HEFT and ILHA at the figure's B on a mid-size
      instance), plus the engine-level hot path.

   Usage:
     dune exec bench/main.exe                  -- full-scale reproduction + micro
     dune exec bench/main.exe -- --quick       -- 1/5-scale problem sizes
     dune exec bench/main.exe -- --scale 0.4   -- custom scale
     dune exec bench/main.exe -- --only fig8 --only e1
     dune exec bench/main.exe -- --no-bechamel / --no-figures
     dune exec bench/main.exe -- --json FILE   -- machine-readable results
                                                  ("-" for stdout); see
                                                  doc/performance.md and the
                                                  committed BENCH_*.json
                                                  baselines *)

module O = Onesched

type options = {
  scale : float;
  only : string list;
  run_figures : bool;
  run_bechamel : bool;
  run_probes : bool;
  run_grid : bool;
  run_improvers : bool;
  run_models : bool;
  run_online : bool;
  run_scale : bool;
  run_serve : bool;
  run_dup : bool;
  scale_targets : int list;
  jobs : int;
  json : string option;
}

let parse_args () =
  let scale = ref 1.0 in
  let only = ref [] in
  let run_figures = ref true in
  let run_bechamel = ref true in
  let run_probes = ref true in
  let run_grid = ref true in
  let run_improvers = ref true in
  let run_models = ref true in
  let run_online = ref true in
  let run_scale = ref true in
  let run_serve = ref true in
  let run_dup = ref true in
  let scale_targets = ref [] in
  let jobs = ref (O.Pool.default_jobs ()) in
  let json = ref None in
  let rec eat = function
    | [] -> ()
    | "--quick" :: rest ->
        scale := 0.2;
        eat rest
    | "--scale" :: v :: rest ->
        scale := float_of_string v;
        eat rest
    | "--only" :: id :: rest ->
        only := id :: !only;
        eat rest
    | "--no-figures" :: rest ->
        run_figures := false;
        eat rest
    | "--no-bechamel" :: rest ->
        run_bechamel := false;
        eat rest
    | "--no-probes" :: rest ->
        run_probes := false;
        eat rest
    | "--no-grid" :: rest ->
        run_grid := false;
        eat rest
    | "--no-improvers" :: rest ->
        run_improvers := false;
        eat rest
    | "--no-models" :: rest ->
        run_models := false;
        eat rest
    | "--no-online" :: rest ->
        run_online := false;
        eat rest
    | "--no-scale" :: rest ->
        run_scale := false;
        eat rest
    | "--no-serve" :: rest ->
        run_serve := false;
        eat rest
    | "--no-dup" :: rest ->
        run_dup := false;
        eat rest
    | "--scale-tasks" :: v :: rest ->
        scale_targets := int_of_string v :: !scale_targets;
        eat rest
    | "--jobs" :: v :: rest ->
        jobs := int_of_string v;
        eat rest
    | "--json" :: file :: rest ->
        json := Some file;
        eat rest
    | arg :: _ ->
        Printf.eprintf
          "unknown argument %s\n\
           usage: main.exe [--quick] [--scale F] [--only ID]* [--no-figures] \
           [--no-bechamel] [--no-probes] [--no-grid] [--no-improvers] \
           [--no-models] [--no-online] [--no-scale] [--no-serve] [--no-dup] \
           [--scale-tasks N]* [--jobs N] [--json FILE]\n\
           experiment ids: %s\n"
          arg
          (String.concat ", " O.Figures.ids);
        exit 2
  in
  eat (List.tl (Array.to_list Sys.argv));
  {
    scale = !scale;
    only = List.rev !only;
    run_figures = !run_figures;
    run_bechamel = !run_bechamel;
    run_probes = !run_probes;
    run_grid = !run_grid;
    run_improvers = !run_improvers;
    run_models = !run_models;
    run_online = !run_online;
    run_scale = !run_scale;
    run_serve = !run_serve;
    run_dup = !run_dup;
    scale_targets =
      (match List.rev !scale_targets with
      | [] -> [ 100_000; 500_000; 1_000_000 ]
      | ts -> ts);
    jobs = max 1 !jobs;
    json = !json;
  }

(* ------------------------------------------------------------------ *)
(* Part 1: regenerate the paper's tables and figures                    *)
(* ------------------------------------------------------------------ *)

let run_figures opts =
  let cfg = O.Config.paper ~scale:opts.scale () in
  let figures =
    match opts.only with
    | [] -> O.Figures.all
    | ids -> List.map O.Figures.find ids
  in
  Printf.printf
    "=== reproduction (scale %.2f: problem sizes %s) ===\n\n" opts.scale
    (String.concat "," (List.map string_of_int cfg.O.Config.sizes));
  List.iter
    (fun f ->
      let t0 = Sys.time () in
      let body = f.O.Figures.render cfg in
      Printf.printf "[%s] %s   (%.1fs)\npaper: %s\n\n%s\n%!" f.O.Figures.id
        f.O.Figures.title (Sys.time () -. t0) f.O.Figures.paper_claim body)
    figures

(* ------------------------------------------------------------------ *)
(* Part 2: Bechamel micro-benchmarks (one Test.make per table/figure)   *)
(* ------------------------------------------------------------------ *)

open Bechamel
open Toolkit

let bench_size = 40
let plat = O.Platform.paper_platform ()

let schedule_test name scheduler =
  Test.make ~name (Staged.stage (fun () -> ignore (scheduler ())))

(* One benchmark per figure: scheduling the figure's testbed (HEFT and
   ILHA at the figure's B) at a fixed mid-size instance, so the numbers
   compare the cost of producing each figure's data points. *)
let figure_benches =
  List.concat_map
    (fun (fig, testbed) ->
      let suite = O.Suite.find testbed in
      let g = suite.O.Suite.build ~n:bench_size ~ccr:10. in
      let b = suite.O.Suite.paper_b in
      [
        schedule_test
          (Printf.sprintf "%s/heft" fig)
          (fun () -> O.Heft.schedule plat g);
        schedule_test
          (Printf.sprintf "%s/ilha[b=%d]" fig b)
          (fun () -> O.Ilha.schedule ~params:(O.Params.make ~b ()) plat g);
      ])
    [
      ("fig7", "fork-join"); ("fig8", "lu"); ("fig9", "laplace");
      ("fig10", "ldmt"); ("fig11", "doolittle"); ("fig12", "stencil");
    ]

(* The supporting experiments: E1's exact fork solver, E3's load
   balancing, the Theorem 1/2 decision procedures, and the PERT replay
   behind the robustness table. *)
let support_benches =
  let fork_inst =
    Option.get (O.Fork_exact.of_graph (O.Fork.example_fig1 ()))
  in
  let partition = O.Two_partition.create [| 3; 5; 2; 7; 1 |] in
  let lu = O.Kernels.lu ~n:bench_size ~ccr:10. in
  let lu_sched = O.Heft.schedule plat lu in
  let pert = O.Pert.build lu_sched in
  [
    schedule_test "e1/fork-exact" (fun () ->
        O.Fork_exact.optimal_makespan ~max_procs:5 fork_inst);
    schedule_test "e3/load-balance" (fun () ->
        O.Load_balance.distribute plat ~n:38);
    schedule_test "reductions/thm1-decide" (fun () ->
        O.Fork_sched.decide (O.Fork_sched.reduce partition));
    schedule_test "reductions/thm2-decide" (fun () ->
        O.Comm_sched.decide (O.Comm_sched.reduce partition));
    schedule_test "robustness/pert-retime" (fun () ->
        O.Pert.retime pert
          ~task_duration:(fun _ d -> d *. 1.1)
          ~hop_duration:(fun _ d -> d));
    schedule_test "engine/upward-rank" (fun () -> O.Ranking.upward lu plat);
  ]

(* The evaluation hot path itself: a full HEFT run (its cost is the
   n_tasks x p evaluation grid) on the arena engine versus the same run
   forced through the pre-arena [Engine.Reference] evaluator.  The ratio
   of the two rows is the headline number tracked in BENCH_*.json. *)
let engine_benches =
  let lu = O.Kernels.lu ~n:bench_size ~ccr:10. in
  [
    schedule_test "engine/eval-grid" (fun () -> O.Heft.schedule plat lu);
    schedule_test "engine/eval-grid-ref" (fun () ->
        O.Engine.with_reference (fun () -> O.Heft.schedule plat lu));
  ]

(* The ready-set representation on its own: pushing and draining every
   task of the LU instance in priority order through the int-keyed
   monomorphic heap versus the generic closure-compared Pqueue over
   (rank, id) float pairs it replaced.  The ratio is the per-decision
   overhead the schedulers shed (boxing one float pair per push plus a
   closure call per sift step). *)
let heap_benches =
  let lu = O.Kernels.lu ~n:bench_size ~ccr:10. in
  let n = O.Graph.n_tasks lu in
  let ranks = O.Ranking.upward lu plat in
  let ord = O.Ranking.priority_order ranks in
  [
    schedule_test "engine/ready-heap" (fun () ->
        let h = O.Pqueue.Int_heap.create ~rank:ord () in
        for v = 0 to n - 1 do
          O.Pqueue.Int_heap.add h v
        done;
        while not (O.Pqueue.Int_heap.is_empty h) do
          ignore (O.Pqueue.Int_heap.pop_exn h : int)
        done);
    schedule_test "engine/ready-heap-ref" (fun () ->
        let compare (ra, va) (rb, vb) =
          match Float.compare (rb : float) ra with
          | 0 -> Int.compare va vb
          | c -> c
        in
        let h = O.Pqueue.create ~compare in
        for v = 0 to n - 1 do
          O.Pqueue.add h (ranks.(v), v)
        done;
        while not (O.Pqueue.is_empty h) do
          ignore (O.Pqueue.pop_exn h : float * int)
        done);
  ]

(* Runs the Bechamel suite, prints the human table (unless [echo] is
   off — [--json -] keeps stdout pure JSON), and returns the sorted
   [(name, ns_per_run)] rows for the JSON export. *)
let run_bechamel ~echo () =
  if echo then
    Printf.printf "=== micro-benchmarks (Bechamel, n = %d per testbed) ===\n%!"
      bench_size;
  let test =
    Test.make_grouped ~name:"onesched"
      (figure_benches @ support_benches @ engine_benches @ heap_benches)
  in
  let cfg =
    Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~kde:None
      ~stabilize:false ()
  in
  let raw = Benchmark.all cfg Instance.[ monotonic_clock ] test in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows =
    Hashtbl.fold
      (fun name ols acc ->
        let ns_per_run =
          match Analyze.OLS.estimates ols with
          | Some (est :: _) -> est
          | Some [] | None -> nan
        in
        (name, ns_per_run) :: acc)
      results []
  in
  let rows = List.sort compare rows in
  let table = O.Table.create ~columns:[ "benchmark"; "time/run"; "runs/s" ] in
  let pretty_time ns =
    if ns >= 1e9 then Printf.sprintf "%.2f s" (ns /. 1e9)
    else if ns >= 1e6 then Printf.sprintf "%.2f ms" (ns /. 1e6)
    else if ns >= 1e3 then Printf.sprintf "%.2f us" (ns /. 1e3)
    else Printf.sprintf "%.0f ns" ns
  in
  List.iter
    (fun (name, ns) ->
      O.Table.add_row table
        [ name; pretty_time ns; Printf.sprintf "%.1f" (1e9 /. ns) ])
    rows;
  if echo then begin
    print_string (O.Table.to_string table);
    match
      ( List.assoc_opt "onesched/engine/eval-grid" rows,
        List.assoc_opt "onesched/engine/eval-grid-ref" rows )
    with
    | Some fast, Some slow when fast > 0. ->
        Printf.printf "\nengine/eval-grid speedup over reference: %.2fx\n%!"
          (slow /. fast)
    | _ -> ()
  end;
  rows

(* ------------------------------------------------------------------ *)
(* Part 3: engine-probe accounting via the obs counters                 *)
(* ------------------------------------------------------------------ *)

type probe_row = {
  testbed : string;
  heuristic : string;
  tasks : int;
  counters : O.Obs_counters.snapshot;
}

(* How much engine work each heuristic spends per task it schedules:
   (task, proc) evaluations (and how many candidates the lower-bound
   prune skipped), earliest-gap searches (single + joint) and tentative
   communication hops, counted by the obs layer and divided by the task
   count.  Returns the raw per-run counter snapshots for the JSON
   export. *)
let run_probes ~echo () =
  if echo then
    Printf.printf "\n=== engine probes per scheduled task (n = %d) ===\n%!"
      bench_size;
  O.Obs_counters.enable ();
  let table =
    O.Table.create
      ~columns:
        [ "testbed"; "heuristic"; "tasks"; "evals/task"; "pruned/task";
          "gap probes/task"; "tentative hops/task" ]
  in
  let rows = ref [] in
  List.iter
    (fun suite ->
      let g = suite.O.Suite.build ~n:bench_size ~ccr:10. in
      let tasks = O.Graph.n_tasks g in
      let probe name schedule =
        O.Obs_counters.reset ();
        ignore (schedule () : O.Schedule.t);
        let c = O.Obs_counters.snapshot () in
        rows :=
          { testbed = suite.O.Suite.name; heuristic = name; tasks; counters = c }
          :: !rows;
        let per x = Printf.sprintf "%.1f" (float_of_int x /. float_of_int tasks) in
        O.Table.add_row table
          [
            suite.O.Suite.name; name; string_of_int tasks;
            per c.O.Obs_counters.evaluations;
            per c.O.Obs_counters.pruned_evaluations;
            per
              (c.O.Obs_counters.gap_probes + c.O.Obs_counters.joint_gap_probes);
            per c.O.Obs_counters.tentative_hops;
          ]
      in
      probe "heft" (fun () -> O.Heft.schedule plat g);
      let b = suite.O.Suite.paper_b in
      probe
        (Printf.sprintf "ilha[b=%d]" b)
        (fun () -> O.Ilha.schedule ~params:(O.Params.make ~b ()) plat g))
    O.Suite.all;
  O.Obs_counters.disable ();
  if echo then print_string (O.Table.to_string table);
  List.rev !rows

(* ------------------------------------------------------------------ *)
(* Part 4: domain-parallel eval-grid wall-clock timing                  *)
(* ------------------------------------------------------------------ *)

type grid_timing = {
  grid_jobs : int;
  cores : int;
  grid_rows : int;
  serial_s : float;
  parallel_s : float;
  identical : bool;
}

(* Wall-clock time of the mid-size LU grid (every scalable heuristic at
   the run's scaled sizes), serial vs sharded over [opts.jobs] domains.
   The same sweep also checks the headline guarantee end to end: modulo
   the per-row wall_s timing column, the parallel rows must be
   byte-identical to the serial ones.  The serial/parallel ratio is the
   [grid_speedup] tracked in BENCH_*.json (bounded by physical cores —
   the [cores] field says what the recording machine had). *)
let run_grid_timing ~echo opts =
  let cfg = O.Config.paper ~scale:opts.scale () in
  let spec =
    { (O.Batch.default_spec cfg) with O.Batch.testbeds = [ O.Suite.find "lu" ] }
  in
  let time f =
    let t0 = Unix.gettimeofday () in
    let x = f () in
    (x, Unix.gettimeofday () -. t0)
  in
  let serial_rows, serial_s = time (fun () -> O.Batch.run ~jobs:1 cfg spec) in
  let parallel_rows, parallel_s =
    time (fun () -> O.Batch.run ~jobs:opts.jobs cfg spec)
  in
  let strip rows =
    O.Batch.to_csv
      (List.map (fun r -> { r with O.Runner.wall_s = 0. }) rows)
  in
  let identical = strip serial_rows = strip parallel_rows in
  let t =
    {
      grid_jobs = opts.jobs;
      cores = Domain.recommended_domain_count ();
      grid_rows = List.length serial_rows;
      serial_s;
      parallel_s;
      identical;
    }
  in
  if echo then begin
    Printf.printf
      "\n=== eval grid wall clock (lu x %d sizes x %d heuristics) ===\n"
      (List.length spec.O.Batch.sizes)
      (List.length spec.O.Batch.heuristics);
    Printf.printf "jobs=1: %.3fs   jobs=%d: %.3fs   speedup %.2fx (%d cores)\n"
      serial_s opts.jobs parallel_s
      (if parallel_s > 0. then serial_s /. parallel_s else nan)
      t.cores;
    Printf.printf "rows identical to serial (wall_s excluded): %s\n%!"
      (if identical then "yes" else "NO")
  end;
  t

(* ------------------------------------------------------------------ *)
(* Part 5: incremental vs from-scratch improver throughput              *)
(* ------------------------------------------------------------------ *)

type improver_row = {
  imp_testbed : string;
  imp_n : int;
  imp_tasks : int;
  imp_steps : int;
  incremental_s : float;
  reference_s : float;
}

(* Simulated annealing prices one single-task reallocation per step.
   The incremental path ({!Anneal.improve}) rewinds the engine's commit
   log to the moved task and replays only the suffix; the from-scratch
   path ({!Anneal.Reference.improve}) rebuilds the whole schedule per
   step.  Both produce bit-identical results (the test suite proves it),
   so the steps/second ratio is pure kernel speedup — the headline
   [incremental_speedup] tracked in BENCH_*.json. *)
let run_improvers ~echo opts =
  let steps = 40 in
  let seed = 20020422 in
  let sizes =
    List.filter_map
      (fun n ->
        let n = int_of_float (float_of_int n *. opts.scale) in
        if n >= 10 then Some n else None)
      [ 100; 200; 300 ]
  in
  if echo then
    Printf.printf
      "\n=== improvers: incremental vs from-scratch anneal (%d steps) ===\n%!"
      steps;
  let table =
    O.Table.create
      ~columns:
        [ "testbed"; "n"; "tasks"; "incremental"; "reference"; "inc steps/s";
          "ref steps/s"; "speedup" ]
  in
  let rows =
    List.map
      (fun n ->
        let g = O.Kernels.lu ~n ~ccr:10. in
        let sched = O.Heft.schedule plat g in
        let params = { O.Anneal.default_params with O.Anneal.steps; seed } in
        let time f =
          let t0 = Unix.gettimeofday () in
          let r = f () in
          (r, Unix.gettimeofday () -. t0)
        in
        let inc, incremental_s =
          time (fun () -> O.Anneal.improve ~params sched)
        in
        let slow, reference_s =
          time (fun () -> O.Anneal.Reference.improve ~params sched)
        in
        if inc.O.Anneal.final_makespan <> slow.O.Anneal.final_makespan then
          Printf.eprintf
            "WARNING: improvers disagree on lu n=%d: %g vs %g\n%!" n
            inc.O.Anneal.final_makespan slow.O.Anneal.final_makespan;
        let r =
          {
            imp_testbed = "lu";
            imp_n = n;
            imp_tasks = O.Graph.n_tasks g;
            imp_steps = steps;
            incremental_s;
            reference_s;
          }
        in
        let per_s t =
          if t > 0. then Printf.sprintf "%.1f" (float_of_int steps /. t)
          else "-"
        in
        O.Table.add_row table
          [
            r.imp_testbed; string_of_int n; string_of_int r.imp_tasks;
            Printf.sprintf "%.3fs" incremental_s;
            Printf.sprintf "%.3fs" reference_s;
            per_s incremental_s; per_s reference_s;
            (if incremental_s > 0. then
               Printf.sprintf "%.1fx" (reference_s /. incremental_s)
             else "-");
          ];
        r)
      sizes
  in
  if echo then print_string (O.Table.to_string table);
  rows

(* ------------------------------------------------------------------ *)
(* Part 6: the communication-model ladder                               *)
(* ------------------------------------------------------------------ *)

type model_row = {
  mdl_name : string;
  mdl_wall_s : float;
  mdl_makespan : float;
  mdl_comms : int;
  mdl_phases : int;
  mdl_valid : bool;
}

(* HEFT on the mid-size LU instance under every rung of the ladder:
   what each refinement of the communication model costs to schedule
   and what it does to the makespan.  Every rung is re-validated, so
   the table doubles as a ladder smoke test on the bench machine. *)
let run_models ~echo () =
  if echo then
    Printf.printf "\n=== model ladder (heft on lu, n = %d) ===\n%!" bench_size;
  let g = O.Kernels.lu ~n:bench_size ~ccr:10. in
  let table =
    O.Table.create
      ~columns:[ "model"; "wall"; "makespan"; "comms"; "phases"; "valid" ]
  in
  let rows =
    List.map
      (fun model ->
        let params = O.Params.of_model model in
        let t0 = Unix.gettimeofday () in
        let sched = O.Heft.schedule ~params plat g in
        let wall = Unix.gettimeofday () -. t0 in
        let r =
          {
            mdl_name = O.Comm_model.name model;
            mdl_wall_s = wall;
            mdl_makespan = O.Schedule.makespan sched;
            mdl_comms = O.Schedule.n_comm_events sched;
            mdl_phases = O.Schedule.n_phases sched;
            mdl_valid = O.Validate.is_valid sched;
          }
        in
        O.Table.add_row table
          [
            r.mdl_name;
            Printf.sprintf "%.4fs" wall;
            Printf.sprintf "%.0f" r.mdl_makespan;
            string_of_int r.mdl_comms;
            string_of_int r.mdl_phases;
            (if r.mdl_valid then "yes" else "NO");
          ];
        r)
      O.Comm_model.all
  in
  if echo then print_string (O.Table.to_string table);
  rows

(* ------------------------------------------------------------------ *)
(* Part 7: online rolling-horizon replan latency                        *)
(* ------------------------------------------------------------------ *)

type online_row = {
  onl_n : int;
  onl_tasks : int;
  onl_replans : int;  (* steady-state replans per run (initial plan excluded) *)
  onl_inc_p50_ms : float;
  onl_inc_p99_ms : float;
  onl_scr_p50_ms : float;
  onl_scr_p99_ms : float;
  onl_inc_total_s : float;
  onl_scr_total_s : float;
  onl_identical : bool;
}

(* The online driver under a crash + outage + rejoin trace against an LU
   job, timed twice: with the commit-log rewind (incremental) and with
   every re-plan rebuilt from scratch.  The initial plan is excluded
   (both paths build it the same way); the remaining steady-state
   re-plans give the p50/p99 latency columns and their total-time ratio
   is the [incremental_replan_speedup] tracked in BENCH_*.json.  The
   [identical] column checks the two paths agree on every intermediate
   and final makespan — the bit-identical guarantee the test suite
   proves in full. *)
let run_online ~echo opts =
  let repeats = 3 in
  let sizes =
    List.filter_map
      (fun n ->
        let n = int_of_float (float_of_int n *. opts.scale) in
        if n >= 10 then Some n else None)
      [ 100; 200; 300 ]
  in
  if echo then
    Printf.printf
      "\n=== online: steady-state replan latency, incremental vs \
       from-scratch (best of %d) ===\n%!"
      repeats;
  let table =
    O.Table.create
      ~columns:
        [ "testbed"; "n"; "tasks"; "replans"; "inc p50"; "inc p99";
          "scratch p50"; "scratch p99"; "speedup"; "identical" ]
  in
  let rows =
    List.map
      (fun n ->
        let g = O.Kernels.lu ~n ~ccr:10. in
        let nominal = O.Schedule.makespan (O.Heft.schedule plat g) in
        let job = O.Online_event.job ~ccr:10. "lu" n in
        let ev at kind = { O.Online_event.at; kind } in
        let events =
          [
            ev 0. (O.Online_event.Arrive job);
            ev (0.55 *. nominal) (O.Online_event.Crash 1);
            ev (0.65 *. nominal) (O.Online_event.Down 2);
            ev (0.72 *. nominal) (O.Online_event.Rejoin 2);
            ev (0.80 *. nominal) (O.Online_event.Crash 3);
            ev (0.90 *. nominal) (O.Online_event.Rejoin 3);
          ]
        in
        let run incremental =
          let config =
            { O.Online_driver.default_config with O.Online_driver.incremental }
          in
          let best = ref None in
          for _ = 1 to repeats do
            let o = O.Online_driver.run ~config plat events in
            let walls =
              match o.O.Online_driver.replans with
              | [] -> []
              | _initial :: steady ->
                  List.map (fun r -> r.O.Online_driver.wall_s) steady
            in
            let total = List.fold_left ( +. ) 0. walls in
            match !best with
            | Some (_, t, _) when t <= total -> ()
            | _ -> best := Some (o, total, walls)
          done;
          match !best with Some b -> b | None -> assert false
        in
        let inc_o, inc_total, inc_walls = run true in
        let scr_o, scr_total, scr_walls = run false in
        let makespans (o : O.Online_driver.outcome) =
          List.map
            (fun (r : O.Online_driver.replan_report) ->
              r.O.Online_driver.makespan)
            o.O.Online_driver.replans
        in
        let identical =
          inc_o.O.Online_driver.makespan = scr_o.O.Online_driver.makespan
          && makespans inc_o = makespans scr_o
        in
        let ms p = function
          | [] -> nan
          | walls -> 1000. *. O.Stats.percentile p walls
        in
        let r =
          {
            onl_n = n;
            onl_tasks = O.Graph.n_tasks g;
            onl_replans = List.length inc_walls;
            onl_inc_p50_ms = ms 50. inc_walls;
            onl_inc_p99_ms = ms 99. inc_walls;
            onl_scr_p50_ms = ms 50. scr_walls;
            onl_scr_p99_ms = ms 99. scr_walls;
            onl_inc_total_s = inc_total;
            onl_scr_total_s = scr_total;
            onl_identical = identical;
          }
        in
        let pms x = Printf.sprintf "%.2f ms" x in
        O.Table.add_row table
          [
            "lu"; string_of_int n; string_of_int r.onl_tasks;
            string_of_int r.onl_replans;
            pms r.onl_inc_p50_ms; pms r.onl_inc_p99_ms;
            pms r.onl_scr_p50_ms; pms r.onl_scr_p99_ms;
            (if inc_total > 0. then
               Printf.sprintf "%.1fx" (scr_total /. inc_total)
             else "-");
            (if identical then "yes" else "NO");
          ];
        r)
      sizes
  in
  if echo then print_string (O.Table.to_string table);
  rows

(* ------------------------------------------------------------------ *)
(* Part 8: million-task scale                                           *)
(* ------------------------------------------------------------------ *)

type scale_row = {
  scl_heuristic : string;
  scl_n : int;
  scl_tasks : int;
  scl_edges : int;
  scl_build_s : float;
  scl_schedule_s : float;
  scl_tasks_per_s : float;
  scl_makespan : float;
  scl_peak_rss_kb : int;
}

(* Peak resident set in kB: the kernel's VmHWM high-water mark where
   /proc exists, otherwise the GC's top-of-heap high-water — a lower
   bound that still tracks the schedule arenas, which dominate at 10^6
   tasks.  Both are process-lifetime maxima, so within one bench run the
   column is non-decreasing and the last (largest) row is the ceiling
   that matters. *)
let peak_rss_kb () =
  let from_proc () =
    let ic = open_in "/proc/self/status" in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () ->
        let rec go () =
          let line = input_line ic in
          match Scanf.sscanf line "VmHWM: %d kB" Fun.id with
          | kb -> kb
          | exception _ -> go ()
        in
        go ())
  in
  match from_proc () with
  | kb -> kb
  | exception _ ->
      (Gc.quick_stat ()).Gc.top_heap_words / 1024 * (Sys.word_size / 8)

(* Smallest LU size whose triangle holds at least [target] tasks
   (tasks = n (n - 1) / 2). *)
let lu_n_for ~target =
  let n =
    int_of_float
      (Float.ceil ((1. +. sqrt (1. +. (8. *. float_of_int target))) /. 2.))
  in
  max n 2

(* Everything the scheduler sees at once is fingerprinted: makespan,
   every placement, every communication event — the same contract the
   eval_jobs determinism tests assert, hashed so that two 10^5-task
   schedules compare in one string. *)
let schedule_digest sched =
  let buf = Buffer.create (1 lsl 16) in
  let g = O.Schedule.graph sched in
  Buffer.add_string buf (Printf.sprintf "m=%h" (O.Schedule.makespan sched));
  for v = 0 to O.Graph.n_tasks g - 1 do
    Buffer.add_string buf
      (Printf.sprintf ";%d:%h:%h"
         (O.Schedule.proc_of_exn sched v)
         (O.Schedule.start_of_exn sched v)
         (O.Schedule.finish_of_exn sched v))
  done;
  O.Schedule.iter_comms sched ~f:(fun (c : O.Schedule.comm) ->
      Buffer.add_string buf
        (Printf.sprintf ";c%d=%d>%d:%h:%h" c.edge c.src_proc c.dst_proc c.start
           c.finish));
  Digest.to_hex (Digest.string (Buffer.contents buf))

(* HEFT and ILHA on LU instances sized to [opts.scale_targets] tasks
   (default 10^5 / 5x10^5 / 10^6): wall-clock to build the CSR graph,
   wall-clock to schedule, scheduling throughput in tasks/second and the
   process RSS high-water.  The [identical] flag re-runs the smallest
   instance with the candidate scan sharded over domains
   ([Params.eval_jobs]) and checks the schedule digest against the
   serial run — the bit-identical guarantee the test suite proves, here
   checked at scale-bench size. *)
let run_scale ~echo opts =
  let targets = List.sort_uniq compare opts.scale_targets in
  let suite = O.Suite.find "lu" in
  let b = suite.O.Suite.paper_b in
  if echo then
    Printf.printf
      "\n=== scale: heft / ilha[b=%d] on lu at %s tasks (ccr 10) ===\n%!" b
      (String.concat " / " (List.map string_of_int targets));
  let table =
    O.Table.create
      ~columns:
        [ "heuristic"; "n"; "tasks"; "edges"; "build"; "schedule"; "tasks/s";
          "peak rss" ]
  in
  let time f =
    let t0 = Unix.gettimeofday () in
    let x = f () in
    (x, Unix.gettimeofday () -. t0)
  in
  let ilha_params = O.Params.make ~b () in
  let rows =
    List.concat_map
      (fun target ->
        let n = lu_n_for ~target in
        let g, build_s = time (fun () -> O.Kernels.lu ~n ~ccr:10.) in
        let tasks = O.Graph.n_tasks g in
        let edges = O.Graph.n_edges g in
        let row name schedule =
          let sched, schedule_s = time schedule in
          let r =
            {
              scl_heuristic = name;
              scl_n = n;
              scl_tasks = tasks;
              scl_edges = edges;
              scl_build_s = build_s;
              scl_schedule_s = schedule_s;
              scl_tasks_per_s =
                (if schedule_s > 0. then float_of_int tasks /. schedule_s
                 else nan);
              scl_makespan = O.Schedule.makespan sched;
              scl_peak_rss_kb = peak_rss_kb ();
            }
          in
          O.Table.add_row table
            [
              name; string_of_int n; string_of_int tasks; string_of_int edges;
              Printf.sprintf "%.2fs" build_s;
              Printf.sprintf "%.2fs" schedule_s;
              Printf.sprintf "%.0f" r.scl_tasks_per_s;
              Printf.sprintf "%d MB" (r.scl_peak_rss_kb / 1024);
            ];
          r
        in
        (* Bind in sequence: list literals evaluate right to left, and
           the rows must run (and read the RSS high-water) in order. *)
        let heft_row = row "heft" (fun () -> O.Heft.schedule plat g) in
        let ilha_row =
          row
            (Printf.sprintf "ilha[b=%d]" b)
            (fun () -> O.Ilha.schedule ~params:ilha_params plat g)
        in
        [ heft_row; ilha_row ])
      targets
  in
  if echo then print_string (O.Table.to_string table);
  let identical =
    let n = lu_n_for ~target:(List.hd targets) in
    let g = O.Kernels.lu ~n ~ccr:10. in
    let jobs = max 2 opts.jobs in
    let pair serial parallel = schedule_digest serial = schedule_digest parallel in
    pair
      (O.Heft.schedule plat g)
      (O.Heft.schedule ~params:(O.Params.make ~eval_jobs:jobs ()) plat g)
    && pair
         (O.Ilha.schedule ~params:ilha_params plat g)
         (O.Ilha.schedule
            ~params:(O.Params.with_eval_jobs ilha_params jobs)
            plat g)
  in
  if echo then
    Printf.printf "parallel candidate scan identical to serial: %s\n%!"
      (if identical then "yes" else "NO");
  (rows, identical)

(* ------------------------------------------------------------------ *)
(* Part 9: scheduld offered load vs throughput                          *)
(* ------------------------------------------------------------------ *)

type serve_row = {
  srv_clients : int;
  srv_jobs : int;
  srv_batches : int;
  srv_wall_s : float;
  srv_jobs_per_s : float;
  srv_p50_ms : float;
  srv_p99_ms : float;
  srv_all_valid : bool;
}

let serve_jobs_per_client = 4

(* The layered generator's size is fixed by the L:W prefix (the N field
   is ignored for layered specs), so [--quick] shrinks the width. *)
let serve_spec opts =
  let width = max 8 (int_of_float (24. *. opts.scale)) in
  Printf.sprintf "layered:6:%d:%d" width (6 * width)

(* The daemon's pure core over an in-memory loopback (no sockets, so
   the numbers are the scheduler's, not the kernel's): [c] concurrent
   clients each submit [serve_jobs_per_client] layered jobs, then the
   backlog is flushed in coalesced batches of up to [c] jobs priced on
   the domain team.  Service latency (submit to first placement) comes
   from the daemon's own stats reply — the same percentiles a [Stats]
   request reports in production. *)
let run_serve ~echo opts =
  let spec = serve_spec opts in
  let client_counts =
    if opts.scale < 1. then [ 10; 50 ] else [ 10; 25; 50; 100 ]
  in
  if echo then
    Printf.printf
      "\n=== serve: scheduld loopback, %d x %s per client (heft, %d jobs) \
       ===\n%!"
      serve_jobs_per_client spec opts.jobs;
  let table =
    O.Table.create
      ~columns:
        [ "clients"; "jobs"; "batches"; "wall"; "jobs/s"; "p50"; "p99";
          "valid" ]
  in
  let rows =
    List.map
      (fun c ->
        let config =
          {
            O.Scheduld.default_config with
            O.Scheduld.jobs = opts.jobs;
            max_batch = c;
            queue_cap = c * serve_jobs_per_client;
            replan_budget = max_int;
          }
        in
        let t = O.Scheduld.create ~config plat in
        let clients = List.init c (fun _ -> O.Scheduld.connect t) in
        let line =
          O.Scheduld_proto.print_request
            (O.Scheduld_proto.Submit
               {
                 O.Scheduld_proto.spec = O.Scheduld_proto.Testbed spec;
                 heuristic = None;
                 model = None;
                 priority = 0;
                 deadline = None;
                 placements = false;
               })
        in
        let t0 = Unix.gettimeofday () in
        for _ = 1 to serve_jobs_per_client do
          List.iter (fun cid -> O.Scheduld.input t ~client:cid line) clients
        done;
        while O.Scheduld.pending t > 0 do
          ignore (O.Scheduld.flush t)
        done;
        let wall_s = Unix.gettimeofday () -. t0 in
        let all_valid = ref true in
        let placed = ref 0 in
        List.iter
          (fun (_, l) ->
            match O.Scheduld_proto.response_of_line l with
            | Ok (O.Scheduld_proto.Placed { valid; _ }) ->
                incr placed;
                if not valid then all_valid := false
            | Ok _ | Error _ -> ())
          (O.Scheduld.take_outputs t);
        let st = O.Scheduld.stats t in
        O.Scheduld.shutdown t;
        let total = c * serve_jobs_per_client in
        if !placed <> total then all_valid := false;
        let ms = function Some x -> x | None -> nan in
        let r =
          {
            srv_clients = c;
            srv_jobs = total;
            srv_batches = st.O.Scheduld_proto.batches;
            srv_wall_s = wall_s;
            srv_jobs_per_s =
              (if wall_s > 0. then float_of_int total /. wall_s else nan);
            srv_p50_ms = ms st.O.Scheduld_proto.p50_ms;
            srv_p99_ms = ms st.O.Scheduld_proto.p99_ms;
            srv_all_valid = !all_valid;
          }
        in
        O.Table.add_row table
          [
            string_of_int c; string_of_int total;
            string_of_int r.srv_batches;
            Printf.sprintf "%.2fs" wall_s;
            Printf.sprintf "%.0f" r.srv_jobs_per_s;
            Printf.sprintf "%.1f ms" r.srv_p50_ms;
            Printf.sprintf "%.1f ms" r.srv_p99_ms;
            (if r.srv_all_valid then "yes" else "NO");
          ];
        r)
      client_counts
  in
  if echo then print_string (O.Table.to_string table);
  rows

(* ------------------------------------------------------------------ *)
(* Part 10: task duplication — HEFT vs heft-dup on FORK-JOIN            *)
(* ------------------------------------------------------------------ *)

type dup_row = {
  dup_n : int;
  dup_tasks : int;
  dup_heft_makespan : float;
  dup_dup_makespan : float;
  dup_copies : int;
  dup_heft_wall_s : float;
  dup_dup_wall_s : float;
  dup_heft_valid : bool;
  dup_dup_valid : bool;
}

(* FORK-JOIN at ccr 1 is duplication's home turf: every join edge
   crosses processors, so replicating the fork root next to its children
   deletes whole bottleneck communications.  The makespan ratio
   (heft-dup / heft, < 1 is a win) is the headline number tracked in
   BENCH_*.json; at ccr 10 the copies no longer pay and heft-dup falls
   back to plain HEFT. *)
let run_dup ~echo () =
  if echo then
    Printf.printf
      "\n=== duplication: HEFT vs heft-dup, FORK-JOIN ccr 1 ===\n%!";
  let table =
    O.Table.create
      ~columns:
        [ "n"; "tasks"; "heft"; "heft-dup"; "ratio"; "copies"; "wall";
          "valid" ]
  in
  let tb = O.Suite.find "fork-join" in
  let params = O.Params.with_dup_limit O.Params.default 1 in
  let rows =
    List.map
      (fun n ->
        let g = tb.O.Suite.build ~n ~ccr:1. in
        let time f =
          let t0 = Unix.gettimeofday () in
          let s = f () in
          (s, Unix.gettimeofday () -. t0)
        in
        let heft, heft_s = time (fun () -> O.Heft.schedule ~params plat g) in
        let dup, dup_s = time (fun () -> O.Heft_dup.schedule ~params plat g)
        in
        let valid s = O.Validate.check s = Ok () in
        let r =
          {
            dup_n = n;
            dup_tasks = O.Graph.n_tasks g;
            dup_heft_makespan = O.Schedule.makespan heft;
            dup_dup_makespan = O.Schedule.makespan dup;
            dup_copies = O.Schedule.n_dup_copies dup;
            dup_heft_wall_s = heft_s;
            dup_dup_wall_s = dup_s;
            dup_heft_valid = valid heft;
            dup_dup_valid = valid dup;
          }
        in
        O.Table.add_row table
          [
            string_of_int n; string_of_int r.dup_tasks;
            Printf.sprintf "%g" r.dup_heft_makespan;
            Printf.sprintf "%g" r.dup_dup_makespan;
            Printf.sprintf "%.3f" (r.dup_dup_makespan /. r.dup_heft_makespan);
            string_of_int r.dup_copies;
            Printf.sprintf "%.3fs" (heft_s +. dup_s);
            (if r.dup_heft_valid && r.dup_dup_valid then "yes" else "NO");
          ];
        r)
      [ 100; 300; 500 ]
  in
  if echo then print_string (O.Table.to_string table);
  rows

(* ------------------------------------------------------------------ *)
(* JSON export                                                          *)
(* ------------------------------------------------------------------ *)

(* Hand-rolled writer (no JSON dependency): the schema is documented in
   doc/performance.md and the committed BENCH_*.json baselines follow
   it. *)
let emit_json opts ~bech_rows ~probe_rows ~grid ~improver_rows ~model_rows
    ~online_rows ~scale ~serve_rows ~dup_rows file =
  let buf = Buffer.create 4096 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let json_float x =
    if Float.is_nan x then "null" else Printf.sprintf "%.3f" x
  in
  add "{\n";
  (* /2: the problem-size factor moved from "scale" to "figure_scale";
     "scale" is now the million-task throughput object. *)
  add "  \"schema\": \"onesched-bench/2\",\n";
  add "  \"bench_size\": %d,\n" bench_size;
  add "  \"figure_scale\": %s,\n" (json_float opts.scale);
  add "  \"bechamel\": [\n";
  List.iteri
    (fun i (name, ns) ->
      add "    {\"name\": %S, \"ns_per_run\": %s}%s\n" name (json_float ns)
        (if i = List.length bech_rows - 1 then "" else ","))
    bech_rows;
  add "  ],\n";
  (match
     ( List.assoc_opt "onesched/engine/eval-grid" bech_rows,
       List.assoc_opt "onesched/engine/eval-grid-ref" bech_rows )
   with
  | Some fast, Some slow when fast > 0. && not (Float.is_nan slow) ->
      add "  \"eval_grid_speedup\": %s,\n" (json_float (slow /. fast))
  | _ -> ());
  (match grid with
  | Some (g : grid_timing) ->
      add
        "  \"grid\": {\"jobs\": %d, \"cores\": %d, \"rows\": %d, \
         \"serial_s\": %s, \"parallel_s\": %s, \"grid_speedup\": %s, \
         \"identical\": %b},\n"
        g.grid_jobs g.cores g.grid_rows (json_float g.serial_s)
        (json_float g.parallel_s)
        (json_float
           (if g.parallel_s > 0. then g.serial_s /. g.parallel_s else nan))
        g.identical
  | None -> ());
  if improver_rows <> [] then begin
    add "  \"improvers\": {\"cores\": %d, \"rows\": [\n"
      (Domain.recommended_domain_count ());
    List.iteri
      (fun i r ->
        let per_s t =
          if t > 0. then json_float (float_of_int r.imp_steps /. t)
          else "null"
        in
        add
          "    {\"testbed\": %S, \"n\": %d, \"tasks\": %d, \"steps\": %d, \
           \"incremental_s\": %s, \"reference_s\": %s, \
           \"incremental_steps_per_s\": %s, \"reference_steps_per_s\": %s, \
           \"incremental_speedup\": %s}%s\n"
          r.imp_testbed r.imp_n r.imp_tasks r.imp_steps
          (json_float r.incremental_s)
          (json_float r.reference_s)
          (per_s r.incremental_s) (per_s r.reference_s)
          (json_float
             (if r.incremental_s > 0. then r.reference_s /. r.incremental_s
              else nan))
          (if i = List.length improver_rows - 1 then "" else ","))
      improver_rows;
    add "  ]},\n"
  end;
  if model_rows <> [] then begin
    add "  \"models\": {\"cores\": %d, \"testbed\": \"lu\", \"heuristic\": \
         \"heft\", \"rows\": [\n"
      (Domain.recommended_domain_count ());
    List.iteri
      (fun i r ->
        add
          "    {\"model\": %S, \"wall_s\": %s, \"makespan\": %s, \"comms\": \
           %d, \"phases\": %d, \"valid\": %b}%s\n"
          r.mdl_name
          (Printf.sprintf "%.4f" r.mdl_wall_s)
          (json_float r.mdl_makespan) r.mdl_comms r.mdl_phases r.mdl_valid
          (if i = List.length model_rows - 1 then "" else ","))
      model_rows;
    add "  ]},\n"
  end;
  if online_rows <> [] then begin
    add "  \"online\": {\"cores\": %d, \"testbed\": \"lu\", \"heuristic\": \
         %S, \"rows\": [\n"
      (Domain.recommended_domain_count ())
      O.Online_driver.default_config.O.Online_driver.heuristic;
    List.iteri
      (fun i r ->
        add
          "    {\"n\": %d, \"tasks\": %d, \"replans\": %d, \
           \"incremental_p50_ms\": %s, \"incremental_p99_ms\": %s, \
           \"scratch_p50_ms\": %s, \"scratch_p99_ms\": %s, \
           \"incremental_total_s\": %s, \"scratch_total_s\": %s, \
           \"incremental_replan_speedup\": %s, \"identical\": %b}%s\n"
          r.onl_n r.onl_tasks r.onl_replans
          (json_float r.onl_inc_p50_ms)
          (json_float r.onl_inc_p99_ms)
          (json_float r.onl_scr_p50_ms)
          (json_float r.onl_scr_p99_ms)
          (json_float r.onl_inc_total_s)
          (json_float r.onl_scr_total_s)
          (json_float
             (if r.onl_inc_total_s > 0. then
                r.onl_scr_total_s /. r.onl_inc_total_s
              else nan))
          r.onl_identical
          (if i = List.length online_rows - 1 then "" else ","))
      online_rows;
    add "  ]},\n"
  end;
  (match scale with
  | Some (rows, identical) when rows <> [] ->
      add
        "  \"scale\": {\"cores\": %d, \"testbed\": \"lu\", \"ccr\": 10, \
         \"identical\": %b, \"rows\": [\n"
        (Domain.recommended_domain_count ())
        identical;
      List.iteri
        (fun i r ->
          add
            "    {\"heuristic\": %S, \"n\": %d, \"tasks\": %d, \"edges\": %d, \
             \"build_s\": %s, \"schedule_s\": %s, \"tasks_per_s\": %s, \
             \"makespan\": %s, \"peak_rss_kb\": %d}%s\n"
            r.scl_heuristic r.scl_n r.scl_tasks r.scl_edges
            (json_float r.scl_build_s)
            (json_float r.scl_schedule_s)
            (json_float r.scl_tasks_per_s)
            (json_float r.scl_makespan)
            r.scl_peak_rss_kb
            (if i = List.length rows - 1 then "" else ","))
        rows;
      add "  ]},\n"
  | _ -> ());
  if serve_rows <> [] then begin
    add
      "  \"serve\": {\"cores\": %d, \"sched_jobs\": %d, \"spec\": %S, \
       \"jobs_per_client\": %d, \"heuristic\": \"heft\", \"rows\": [\n"
      (Domain.recommended_domain_count ())
      opts.jobs (serve_spec opts) serve_jobs_per_client;
    List.iteri
      (fun i r ->
        add
          "    {\"clients\": %d, \"jobs\": %d, \"batches\": %d, \"wall_s\": \
           %s, \"jobs_per_s\": %s, \"p50_ms\": %s, \"p99_ms\": %s, \
           \"all_valid\": %b}%s\n"
          r.srv_clients r.srv_jobs r.srv_batches
          (json_float r.srv_wall_s)
          (json_float r.srv_jobs_per_s)
          (json_float r.srv_p50_ms)
          (json_float r.srv_p99_ms)
          r.srv_all_valid
          (if i = List.length serve_rows - 1 then "" else ","))
      serve_rows;
    add "  ]},\n"
  end;
  if dup_rows <> [] then begin
    add
      "  \"duplication\": {\"testbed\": \"fork-join\", \"ccr\": 1, \
       \"dup_limit\": 1, \"rows\": [\n";
    List.iteri
      (fun i r ->
        add
          "    {\"n\": %d, \"tasks\": %d, \"heft_makespan\": %s, \
           \"heft_dup_makespan\": %s, \"makespan_ratio\": %s, \"copies\": \
           %d, \"heft_wall_s\": %s, \"heft_dup_wall_s\": %s, \
           \"heft_valid\": %b, \"heft_dup_valid\": %b}%s\n"
          r.dup_n r.dup_tasks
          (json_float r.dup_heft_makespan)
          (json_float r.dup_dup_makespan)
          (json_float (r.dup_dup_makespan /. r.dup_heft_makespan))
          r.dup_copies
          (Printf.sprintf "%.4f" r.dup_heft_wall_s)
          (Printf.sprintf "%.4f" r.dup_dup_wall_s)
          r.dup_heft_valid r.dup_dup_valid
          (if i = List.length dup_rows - 1 then "" else ","))
      dup_rows;
    add "  ]},\n"
  end;
  add "  \"probes\": [\n";
  List.iteri
    (fun i r ->
      let c = r.counters in
      add
        "    {\"testbed\": %S, \"heuristic\": %S, \"tasks\": %d, \
         \"evaluations\": %d, \"pruned_evaluations\": %d, \
         \"route_cache_hits\": %d, \"gap_probes\": %d, \
         \"joint_gap_probes\": %d, \"tentative_hops\": %d, \"commits\": \
         %d}%s\n"
        r.testbed r.heuristic r.tasks c.O.Obs_counters.evaluations
        c.O.Obs_counters.pruned_evaluations c.O.Obs_counters.route_cache_hits
        c.O.Obs_counters.gap_probes c.O.Obs_counters.joint_gap_probes
        c.O.Obs_counters.tentative_hops c.O.Obs_counters.commits
        (if i = List.length probe_rows - 1 then "" else ","))
    probe_rows;
  add "  ]\n";
  add "}\n";
  if file = "-" then print_string (Buffer.contents buf)
  else begin
    let oc = open_out file in
    output_string oc (Buffer.contents buf);
    close_out oc;
    Printf.printf "\nwrote %s\n%!" file
  end

let () =
  let opts = parse_args () in
  (* [--json -] reserves stdout for the JSON document. *)
  let echo = opts.json <> Some "-" in
  if opts.run_figures && echo then run_figures opts;
  let probe_rows =
    if opts.run_probes && opts.only = [] then run_probes ~echo () else []
  in
  let bech_rows =
    if opts.run_bechamel && opts.only = [] then run_bechamel ~echo () else []
  in
  let grid =
    if opts.run_grid && opts.only = [] then Some (run_grid_timing ~echo opts)
    else None
  in
  let improver_rows =
    if opts.run_improvers && opts.only = [] then run_improvers ~echo opts
    else []
  in
  let model_rows =
    if opts.run_models && opts.only = [] then run_models ~echo () else []
  in
  let online_rows =
    if opts.run_online && opts.only = [] then run_online ~echo opts else []
  in
  let scale =
    if opts.run_scale && opts.only = [] then Some (run_scale ~echo opts)
    else None
  in
  let serve_rows =
    if opts.run_serve && opts.only = [] then run_serve ~echo opts else []
  in
  let dup_rows =
    if opts.run_dup && opts.only = [] then run_dup ~echo () else []
  in
  Option.iter
    (emit_json opts ~bech_rows ~probe_rows ~grid ~improver_rows ~model_rows
       ~online_rows ~scale ~serve_rows ~dup_rows)
    opts.json
