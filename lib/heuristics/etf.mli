(** ETF — Earliest Task First (Hwang, Chow, Anger, Lee).

    A classical greedy the literature often contrasts with list scheduling:
    at each step, examine {e every} (ready task, processor) pair and start
    the pair with the globally earliest execution start time, breaking ties
    by higher static level, then by task id and processor index.  Under
    one-port models the start time already accounts for port contention
    through the shared engine.

    Like GDL this is quadratic in the ready-set size — a strong but slow
    baseline for the tournament bench. *)

val schedule :
  ?params:Params.t -> Platform.t -> Taskgraph.Graph.t -> Sched.Schedule.t
