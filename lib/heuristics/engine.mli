(** Shared earliest-finish-time machinery for all list heuristics.

    The one-port adaptation of §4.3 in executable form: to evaluate placing
    a ready task on a candidate processor, the engine greedily schedules
    every incoming communication into the earliest joint free interval of
    the involved ports (hop by hop along the platform route), derives the
    earliest execution start on the candidate's compute timeline, and
    reports the finish time.  Evaluation never mutates committed state —
    tentative slots ride along as "extra busy" intervals — so a heuristic
    can compare all processors and commit only the winner.

    Under the macro-dataflow model the very same code runs with empty port
    busy-sets, reproducing the classical unrestricted behaviour. *)

(** Slot-search policy: [Insertion] may fill idle gaps between committed
    work (classical insertion-based HEFT); [Append] only considers slots
    after the last committed event of each involved timeline. *)
type policy = Insertion | Append

type t

(** One planned hop of an incoming communication. *)
type hop = { edge : int; src_proc : int; dst_proc : int; start : float }

(** The outcome of evaluating a candidate processor. *)
type eval = {
  proc : int;
  est : float;  (** execution start *)
  eft : float;  (** execution finish *)
  hops : hop list;  (** communications to commit, in order *)
}

val create : ?policy:policy -> Sched.Schedule.t -> t
val schedule : t -> Sched.Schedule.t
val policy : t -> policy

(** [evaluate t ~task ~proc] — all predecessors of [task] must already be
    placed.  Incoming communications are considered in increasing order of
    predecessor finish time (ties by task id) and placed greedily.
    [floor] (default 0) lower-bounds every planned event: neither a hop
    nor the execution may start before it.  Online repair uses it to keep
    new decisions at or after the crash instant. *)
val evaluate : ?floor:float -> t -> task:int -> proc:int -> eval

(** [best_proc t ~task] — minimum [eft] over all processors, ties to the
    lowest processor index (the paper's tie-break in §4.4's toy example). *)
val best_proc : ?floor:float -> t -> task:int -> eval

(** [best_proc_among t ~task procs] — same restricted to a candidate list.
    @raise Invalid_argument on an empty list. *)
val best_proc_among : ?floor:float -> t -> task:int -> int list -> eval

(** [commit t ~task ev] places the task and its communications. *)
val commit : t -> task:int -> eval -> unit

(** [schedule_on t ~task ~proc] = evaluate + commit on a forced processor. *)
val schedule_on : ?floor:float -> t -> task:int -> proc:int -> unit

(** [schedule_best t ~task] = {!best_proc} + commit; returns the chosen
    evaluation. *)
val schedule_best : ?floor:float -> t -> task:int -> eval
