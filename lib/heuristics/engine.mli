(** Shared earliest-finish-time machinery for all list heuristics.

    The one-port adaptation of §4.3 in executable form: to evaluate placing
    a ready task on a candidate processor, the engine greedily schedules
    every incoming communication into the earliest joint free interval of
    the involved ports (hop by hop along the platform route), derives the
    earliest execution start on the candidate's compute timeline, and
    reports the finish time.  Evaluation never mutates committed state —
    tentative slots ride along as "extra busy" intervals — so a heuristic
    can compare all processors and commit only the winner.

    Under the macro-dataflow model the very same code runs with empty port
    busy-sets, reproducing the classical unrestricted behaviour.

    The default implementation is allocation-conscious: the engine owns a
    reusable arena of tentative busy intervals keyed by stable resource
    ids, caches platform routes per processor pair and the incoming-edge
    table per task, and prunes candidates in {!best_proc_among} whose
    finish-time lower bound cannot beat the incumbent ({!Obs.Counters}
    reports [pruned evaluations] and [route-cache hits]).  The original
    list-based evaluator survives as {!Reference}, and
    {!with_reference} re-routes the public API through it; both produce
    bit-identical schedules. *)

(** Slot-search policy: [Insertion] may fill idle gaps between committed
    work (classical insertion-based HEFT); [Append] only considers slots
    after the last committed event of each involved timeline. *)
type policy = Insertion | Append

type t

(** One planned hop of an incoming communication. *)
type hop = { edge : int; src_proc : int; dst_proc : int; start : float }

(** The outcome of evaluating a candidate processor. *)
type eval = {
  proc : int;
  est : float;  (** execution start *)
  eft : float;  (** execution finish *)
  hops : hop list;  (** communications to commit, in order *)
  phase : (float * float) option;
      (** under BSP, the fresh comm phase the hops travel in ([None]
          when the task has no remote inputs, and in every other
          regime) *)
}

(** [create ?policy ?eval_jobs sched] — an engine over [sched].
    [eval_jobs] (default 1) is the number of domains used to evaluate
    candidate processors inside one decision: above 1,
    {!best_proc_among} and {!best_pending} shard their candidate scans
    over the process-wide {!Prelude.Pool.Team} with per-worker scratch
    engines (built lazily, sharing [sched]) and reduce with an
    index-ordered argmin, so placements are bit-identical to the serial
    scan at any job count.  Only the [evaluations]/[pruned evaluations]
    counters may differ — each shard prunes against its own incumbent.
    @raise Invalid_argument when [eval_jobs < 1]. *)
val create : ?policy:policy -> ?eval_jobs:int -> Sched.Schedule.t -> t
val schedule : t -> Sched.Schedule.t
val policy : t -> policy

(** [evaluate t ~task ~proc] — all predecessors of [task] must already be
    placed.  Incoming communications are considered in increasing order of
    predecessor finish time (ties by task id) and placed greedily.
    [floor] (default 0) lower-bounds every planned event: neither a hop
    nor the execution may start before it.  Online repair uses it to keep
    new decisions at or after the crash instant. *)
val evaluate : ?floor:float -> t -> task:int -> proc:int -> eval

(** [best_proc t ~task] — minimum [eft] over all processors, ties to the
    lowest processor index (the paper's tie-break in §4.4's toy example). *)
val best_proc : ?floor:float -> t -> task:int -> eval

(** [best_proc_among t ~task procs] — same restricted to a candidate list.
    Candidates that are already strictly sorted (every current caller)
    are used as-is; otherwise the list is sorted and de-duplicated
    first.  Candidates whose finish-time lower bound — latest
    predecessor finish (or [floor]) plus execution time — cannot beat
    the incumbent are pruned without a full evaluation; pruning never
    changes the result because ties keep the incumbent.
    @raise Invalid_argument on an empty list. *)
val best_proc_among : ?floor:float -> t -> task:int -> int list -> eval

(** [best_pending t ~tasks ~procs ~alive] — the earliest alive row [i]
    minimising [evaluate ~task:tasks.(i) ~proc:procs.(i)].eft] (ties to
    the lowest index), or [None] when no row is alive.  ILHA's
    reschedule step calls this once per commit over its whole ready
    chunk; with [eval_jobs > 1] the rows are priced in parallel, with
    the same result.
    @raise Invalid_argument on mismatched array lengths. *)
val best_pending :
  ?floor:float ->
  t ->
  tasks:int array ->
  procs:int array ->
  alive:bool array ->
  (int * eval) option

(** [commit t ~task ev] places the task and its communications, and
    appends an entry to the engine's {e commit log}, enabling
    {!rewind}. *)
val commit : t -> task:int -> eval -> unit

(** [commit_copy t ~task ev] places a {e duplicate} copy of an
    already-placed task on [ev.proc] (with the communications feeding
    that copy) and logs a copy entry, rewound with
    {!Sched.Schedule.unplace_copy}.  Cached incoming tables are
    invalidated on this engine and its clones — the task's feeding copy
    set just changed.
    @raise Invalid_argument if the task has no primary copy yet or the
    evaluation carries a BSP phase (duplication is port-regime only). *)
val commit_copy : t -> task:int -> eval -> unit

(** Number of commits performed through this engine — the length of the
    commit log, and the upper bound for {!rewind}'s [to_]. *)
val n_commits : t -> int

(** [commit_task_at t i] is the task of the [i]-th commit (0-based). *)
val commit_task_at : t -> int -> int

(** [commit_proc_at t i] is [-1] for a whole-task commit and the copy's
    processor for a {!commit_copy} entry. *)
val commit_proc_at : t -> int -> int

(** [rewind t ~to_:k] retracts commits [k, k+1, ...] in reverse order,
    returning the schedule to its state after the first [k] commits, in
    time proportional to the work undone.  Only valid when every mutation
    of the schedule since engine creation went through {!commit} (the
    improver and search builders satisfy this; code calling
    [Schedule.place_task]/[add_comm] directly does not).  Bumps the
    [rollbacks] counter.
    @raise Invalid_argument unless [0 <= to_ <= n_commits t]. *)
val rewind : t -> to_:int -> unit

(** [schedule_on t ~task ~proc] = evaluate + commit on a forced processor. *)
val schedule_on : ?floor:float -> t -> task:int -> proc:int -> unit

(** [schedule_best t ~task] = {!best_proc} + commit; returns the chosen
    evaluation. *)
val schedule_best : ?floor:float -> t -> task:int -> eval

(** [with_reference f] runs [f] with {!evaluate}, {!best_proc} and
    {!best_proc_among} re-routed through the {!Reference} evaluator
    (restoring the previous mode on exit, including on exceptions).
    Used by equivalence tests and benchmarks to run whole heuristics on
    the pre-arena implementation. *)
val with_reference : (unit -> 'a) -> 'a

(** The straightforward list-based evaluator the arena engine replaced —
    the executable specification.  Same semantics, no caches, no
    pruning; produces bit-identical schedules. *)
module Reference : sig
  val evaluate : ?floor:float -> t -> task:int -> proc:int -> eval
  val best_proc : ?floor:float -> t -> task:int -> eval
  val best_proc_among : ?floor:float -> t -> task:int -> int list -> eval
end
