(** The generic list-scheduling loop shared by the one-task-at-a-time
    heuristics (HEFT, PCT, CPOP, BIL): pop the highest-priority ready task,
    let the heuristic's [handle] place it, release newly ready successors.
    Priorities are static; ties break on task id ({!Ranking.compare_priority}),
    keeping every heuristic deterministic.

    When span tracing is enabled the drain loop is wrapped in a ["map"]
    span with one ["place"] span per task. *)

(** [decision_order ~priority g] is the exact order in which {!run} hands
    tasks to [handle]: the Kahn drain by descending priority (ties on
    task id).  It depends only on the graph and the priorities — not on
    any placement decision — which is what lets the prefix-replay
    improvers rebuild only a suffix of it.
    @raise Invalid_argument on a cyclic graph. *)
val decision_order : priority:float array -> Taskgraph.Graph.t -> int array

(** [run ?params ~priority ?handle plat g] — [handle] places one ready
    task (default: {!Engine.schedule_best}'s earliest-finish-time rule);
    model and slot policy come from [params].  Returns the completed
    schedule. *)
val run :
  ?params:Params.t ->
  priority:float array ->
  ?handle:(Engine.t -> int -> unit) ->
  Platform.t ->
  Taskgraph.Graph.t ->
  Sched.Schedule.t
