(** PCT — minimum Partial Completion Time static priority (Maheswaran &
    Siegel).

    Baseline from the paper's comparison set (§4.2).  Static priorities are
    bottom levels charged at the {e fastest} processor's cycle-time (the
    optimistic partial completion time to an exit); mapping follows the
    earliest-finish-time rule.  Reimplemented from the original description
    and adapted to the one-port model via the shared engine. *)

val schedule :
  ?params:Params.t -> Platform.t -> Taskgraph.Graph.t -> Sched.Schedule.t
