open Prelude
module Graph = Taskgraph.Graph
module Schedule = Sched.Schedule
module Resource = Sched.Resource
module Comm_model = Commmodel.Comm_model

type policy = Insertion | Append
type hop = { edge : int; src_proc : int; dst_proc : int; start : float }

type eval = {
  proc : int;
  est : float;
  eft : float;
  hops : hop list;
  phase : (float * float) option;
}

(* One direct hop of a cached route: endpoints, per-item cost, and the
   joint busy set as parallel timeline/resource-id arrays.  The separate
   send-side/recv-side sets serve the latency+overhead regime, whose
   endpoint overheads occupy the two sides over different windows. *)
type hop_set = {
  h_src : int;
  h_dst : int;
  h_cost : float;
  h_tls : Timeline.t array;
  h_ids : int array;
  h_send_tls : Timeline.t array;
  h_send_ids : int array;
  h_recv_tls : Timeline.t array;
  h_recv_ids : int array;
}

(* The engine owns every scratch structure the evaluation grid needs, so
   that pricing one (task, processor) candidate allocates nothing beyond
   the [eval] it returns:

   - [routes] caches, per ordered processor pair, the platform route with
     each hop's busy set and per-item cost ([route_cache_hits] counts
     reuse);
   - the {e arena} ([buf_s]/[buf_f]/[buf_len]) holds tentative busy
     intervals per stable resource id, reset in O(dirty ids) between
     candidates;
   - [ext_s]/[ext_f] stage the merged, start-sorted extras of one probe
     and [idx] is the joint-gap cursor scratch;
   - the [inc_*] arrays cache the incoming-communication table of the
     task being priced (predecessor finish, source, edge, source
     processor, edge data — sorted by the §4.3 greedy order), computed
     once per task rather than once per candidate. *)
type t = {
  sched : Schedule.t;
  policy : policy;
  p : int;
  all_procs : int list;
  regime : Comm_model.regime;
  routes : hop_set array option array;
  comp_tls : Timeline.t array array;
  comp_ids : int array array;
  (* the BSP phase busy set (barrier + every compute); empty otherwise *)
  phase_tls : Timeline.t array;
  phase_ids : int array;
  (* arena: tentative intervals per resource id *)
  mutable buf_s : float array array;
  mutable buf_f : float array array;
  mutable buf_len : int array;
  mutable dirty : int array;
  mutable n_dirty : int;
  (* merged extras of the probe in flight *)
  mutable ext_s : float array;
  mutable ext_f : float array;
  mutable ext_len : int;
  mutable idx : int array;
  (* incoming-edge table of the task being priced *)
  mutable inc_task : int;
  mutable inc_len : int;
  mutable inc_fin : float array;
  mutable inc_src : int array;
  mutable inc_edge : int array;
  mutable inc_proc : int array;
  mutable inc_data : float array;
  mutable inc_max_fin : float;
  (* commit log: per commit, the task and the schedule's comm-event and
     phase counts before the commit — enough to rewind any suffix of
     commits in reverse order *)
  mutable log_task : int array;
  mutable log_comms : int array;
  mutable log_phases : int array;
  (* -1 for a whole-task commit; the copy's processor for a
     [commit_copy] entry (rewound with [Schedule.unplace_copy]) *)
  mutable log_proc : int array;
  mutable log_len : int;
  (* parallel candidate evaluation: worker count and the lazily-built
     per-helper scratch engines (sharing [sched]; see [ensure_clones]) *)
  eval_jobs : int;
  mutable clones : t array;
}

let create ?(policy = Insertion) ?(eval_jobs = 1) sched =
  if eval_jobs < 1 then invalid_arg "Engine.create: eval_jobs < 1";
  let plat = Schedule.platform sched in
  let res = Schedule.resource sched in
  let p = Platform.p plat in
  let nid = Resource.id_bound res in
  let regime = (Schedule.model sched).Comm_model.regime in
  let phase_tls, phase_ids =
    match regime with
    | Comm_model.Bsp _ ->
        let pairs = Resource.phase_busy_ids res in
        (Array.of_list (List.map fst pairs), Array.of_list (List.map snd pairs))
    | Comm_model.Port | Comm_model.Latency_overhead _ -> ([||], [||])
  in
  {
    sched;
    policy;
    p;
    all_procs = List.init p Fun.id;
    regime;
    routes = Array.make (p * p) None;
    comp_tls = Array.init p (fun i -> [| Resource.compute res i |]);
    comp_ids = Array.init p (fun i -> [| Resource.compute_id res i |]);
    phase_tls;
    phase_ids;
    buf_s = Array.make (max nid 1) [||];
    buf_f = Array.make (max nid 1) [||];
    buf_len = Array.make (max nid 1) 0;
    dirty = Array.make (max nid 1) 0;
    n_dirty = 0;
    ext_s = Array.make 16 0.;
    ext_f = Array.make 16 0.;
    ext_len = 0;
    idx = Array.make 8 0;
    inc_task = -1;
    inc_len = 0;
    inc_fin = [||];
    inc_src = [||];
    inc_edge = [||];
    inc_proc = [||];
    inc_data = [||];
    inc_max_fin = 0.;
    log_task = [||];
    log_comms = [||];
    log_phases = [||];
    log_proc = [||];
    log_len = 0;
    eval_jobs;
    clones = [||];
  }

let schedule t = t.sched
let policy t = t.policy

(* ------------------------------------------------------------------ *)
(* Arena                                                               *)
(* ------------------------------------------------------------------ *)

(* Link-contention models hand out fresh resource ids lazily; the arena
   grows to cover them. *)
let ensure_id t id =
  let cap = Array.length t.buf_len in
  if id >= cap then begin
    let cap' = max (id + 1) (max 4 (2 * cap)) in
    let bs = Array.make cap' [||] in
    let bf = Array.make cap' [||] in
    let bl = Array.make cap' 0 in
    let d = Array.make cap' 0 in
    Array.blit t.buf_s 0 bs 0 cap;
    Array.blit t.buf_f 0 bf 0 cap;
    Array.blit t.buf_len 0 bl 0 cap;
    Array.blit t.dirty 0 d 0 t.n_dirty;
    t.buf_s <- bs;
    t.buf_f <- bf;
    t.buf_len <- bl;
    t.dirty <- d
  end

let arena_reset t =
  for i = 0 to t.n_dirty - 1 do
    t.buf_len.(t.dirty.(i)) <- 0
  done;
  t.n_dirty <- 0

(* Record [[s, f)] as tentatively busy on resource [id], keeping the
   per-id buffer sorted by start (probes of later messages may slot in
   front of earlier tentative intervals).  Zero-length intervals block
   nothing and are dropped, mirroring [Timeline.add]. *)
let arena_add t id s f =
  if f > s then begin
    ensure_id t id;
    let n = t.buf_len.(id) in
    if n = 0 then begin
      t.dirty.(t.n_dirty) <- id;
      t.n_dirty <- t.n_dirty + 1
    end;
    if n = Array.length t.buf_s.(id) then begin
      let cap' = max 4 (2 * n) in
      let bs = Array.make cap' 0. in
      let bf = Array.make cap' 0. in
      Array.blit t.buf_s.(id) 0 bs 0 n;
      Array.blit t.buf_f.(id) 0 bf 0 n;
      t.buf_s.(id) <- bs;
      t.buf_f.(id) <- bf
    end;
    let bs = t.buf_s.(id) and bf = t.buf_f.(id) in
    let pos = ref n in
    while !pos > 0 && bs.(!pos - 1) > s do
      bs.(!pos) <- bs.(!pos - 1);
      bf.(!pos) <- bf.(!pos - 1);
      decr pos
    done;
    bs.(!pos) <- s;
    bf.(!pos) <- f;
    t.buf_len.(id) <- n + 1
  end

(* Stage one extra into the probe's merged, start-sorted extras. *)
let push_extra t s f =
  let n = t.ext_len in
  if n = Array.length t.ext_s then begin
    let cap' = 2 * n in
    let es = Array.make cap' 0. in
    let ef = Array.make cap' 0. in
    Array.blit t.ext_s 0 es 0 n;
    Array.blit t.ext_f 0 ef 0 n;
    t.ext_s <- es;
    t.ext_f <- ef
  end;
  let es = t.ext_s and ef = t.ext_f in
  let pos = ref n in
  while !pos > 0 && es.(!pos - 1) > s do
    es.(!pos) <- es.(!pos - 1);
    ef.(!pos) <- ef.(!pos - 1);
    decr pos
  done;
  es.(!pos) <- s;
  ef.(!pos) <- f;
  t.ext_len <- n + 1

(* Earliest slot of [duration] on the joint busy set of [tls] plus the
   arena's tentative intervals for [ids], at or after [after], honouring
   the policy. *)
let probe t ~tls ~ids ~after ~duration =
  let k = Array.length tls in
  let after =
    match t.policy with
    | Insertion -> after
    | Append ->
        let a = ref after in
        for j = 0 to k - 1 do
          let lf = Timeline.last_finish tls.(j) in
          if lf > !a then a := lf;
          let id = ids.(j) in
          if id < Array.length t.buf_len then begin
            let n = t.buf_len.(id) in
            (* sorted by start and disjoint per id: the last finish is
               the max *)
            if n > 0 && t.buf_f.(id).(n - 1) > !a then
              a := t.buf_f.(id).(n - 1)
          end
        done;
        !a
  in
  t.ext_len <- 0;
  for j = 0 to k - 1 do
    let id = ids.(j) in
    if id < Array.length t.buf_len then begin
      let n = t.buf_len.(id) in
      let bs = t.buf_s.(id) and bf = t.buf_f.(id) in
      for i = 0 to n - 1 do
        push_extra t bs.(i) bf.(i)
      done
    end
  done;
  if k > Array.length t.idx then t.idx <- Array.make (max k (2 * Array.length t.idx)) 0;
  Timeline.earliest_gap_joint_arr tls ~k ~extra_s:t.ext_s ~extra_f:t.ext_f
    ~extra_len:t.ext_len ~idx:t.idx ~after ~duration

(* ------------------------------------------------------------------ *)
(* Route and incoming caches                                           *)
(* ------------------------------------------------------------------ *)

let route_for t ~src ~dst =
  let key = (src * t.p) + dst in
  match t.routes.(key) with
  | Some r ->
      Obs.Counters.route_cache_hit ();
      r
  | None ->
      let plat = Schedule.platform t.sched in
      let res = Schedule.resource t.sched in
      let r =
        Array.of_list
          (List.map
             (fun (a, b) ->
               let pairs = Resource.comm_busy_ids res ~src:a ~dst:b in
               let send_pairs = Resource.send_busy_ids res a in
               let recv_pairs = Resource.recv_busy_ids res b in
               {
                 h_src = a;
                 h_dst = b;
                 h_cost = Platform.hop_cost plat ~src:a ~dst:b;
                 h_tls = Array.of_list (List.map fst pairs);
                 h_ids = Array.of_list (List.map snd pairs);
                 h_send_tls = Array.of_list (List.map fst send_pairs);
                 h_send_ids = Array.of_list (List.map snd send_pairs);
                 h_recv_tls = Array.of_list (List.map fst recv_pairs);
                 h_recv_ids = Array.of_list (List.map snd recv_pairs);
               })
             (Platform.route plat ~src ~dst))
      in
      t.routes.(key) <- Some r;
      r

(* The copy of [src] that feeds remote consumers: the earliest-finishing
   one, ties to the lowest processor.  For single-copy schedules this is
   exactly the primary placement — same floats, no allocation. *)
let rep_fin_proc sched src =
  let fin = Schedule.finish_of_exn sched src in
  let proc = Schedule.proc_of_exn sched src in
  if not (Schedule.has_dups sched) then (fin, proc)
  else
    List.fold_left
      (fun ((bf, bp) as acc) (c : Schedule.placement) ->
        if c.finish < bf || (c.finish = bf && c.proc < bp) then
          (c.finish, c.proc)
        else acc)
      (fin, proc)
      (Schedule.dup_copies sched src)

(* The finish of a copy of [src] local to [proc], if any — consulted by
   the port evaluators before pricing a remote transfer.  [None] on every
   single-copy schedule (the primary case is handled by the [q = proc]
   test), keeping the historical path branch-for-branch identical. *)
let dup_local_finish sched ~src ~proc =
  if not (Schedule.has_dups sched) then None
  else
    match Schedule.copy_on sched ~task:src ~proc with
    | Some c -> Some c.Schedule.finish
    | None -> None

(* Fill the [inc_*] table for [task]: one row per incoming edge, sorted
   by (source finish, source id, edge id) — the greedy order in which
   §4.3 serialises incoming communications.  The table only depends on
   committed predecessor placements (immutable once made), so it is
   computed once per task and reused across all candidate processors. *)
let prepare_incoming t ~task =
  if t.inc_task <> task then begin
    let g = Schedule.graph t.sched in
    let deg = Graph.in_degree g task in
    if deg > Array.length t.inc_fin then begin
      let cap = max deg (max 8 (2 * Array.length t.inc_fin)) in
      t.inc_fin <- Array.make cap 0.;
      t.inc_src <- Array.make cap 0;
      t.inc_edge <- Array.make cap 0;
      t.inc_proc <- Array.make cap 0;
      t.inc_data <- Array.make cap 0.
    end;
    let n = ref 0 in
    Graph.fold_pred_edges g task ~init:() ~f:(fun () e ->
        let src = Graph.edge_src g e in
        let i = !n in
        let fin, proc = rep_fin_proc t.sched src in
        t.inc_fin.(i) <- fin;
        t.inc_src.(i) <- src;
        t.inc_edge.(i) <- e;
        t.inc_proc.(i) <- proc;
        t.inc_data.(i) <- Graph.edge_data g e;
        incr n);
    let n = !n in
    (* insertion sort of the parallel rows by (fin, src, edge) *)
    for i = 1 to n - 1 do
      let fin = t.inc_fin.(i)
      and src = t.inc_src.(i)
      and edge = t.inc_edge.(i)
      and proc = t.inc_proc.(i)
      and data = t.inc_data.(i) in
      let pos = ref i in
      while
        !pos > 0
        &&
        let j = !pos - 1 in
        t.inc_fin.(j) > fin
        || (t.inc_fin.(j) = fin
           && (t.inc_src.(j) > src
              || (t.inc_src.(j) = src && t.inc_edge.(j) > edge)))
      do
        let j = !pos - 1 in
        t.inc_fin.(!pos) <- t.inc_fin.(j);
        t.inc_src.(!pos) <- t.inc_src.(j);
        t.inc_edge.(!pos) <- t.inc_edge.(j);
        t.inc_proc.(!pos) <- t.inc_proc.(j);
        t.inc_data.(!pos) <- t.inc_data.(j);
        decr pos
      done;
      t.inc_fin.(!pos) <- fin;
      t.inc_src.(!pos) <- src;
      t.inc_edge.(!pos) <- edge;
      t.inc_proc.(!pos) <- proc;
      t.inc_data.(!pos) <- data
    done;
    let mx = ref 0. in
    for i = 0 to n - 1 do
      if t.inc_fin.(i) > !mx then mx := t.inc_fin.(i)
    done;
    t.inc_len <- n;
    t.inc_max_fin <- !mx;
    t.inc_task <- task
  end

(* ------------------------------------------------------------------ *)
(* Reference evaluator                                                 *)
(* ------------------------------------------------------------------ *)

(* The straightforward list-based evaluator the arena engine replaced,
   kept as the executable specification: [with_reference] re-routes the
   whole public API through it, and the test suite proves both engines
   produce bit-identical schedules. *)
module Reference = struct
  (* Tentative busy intervals per physical timeline (physical equality:
     distinct resources are distinct Timeline.t values). *)
  type scratch = (Timeline.t * (float * float) list) list

  let scratch_for (scratch : scratch) tls =
    List.concat_map
      (fun tl ->
        match List.find_opt (fun (tl', _) -> tl' == tl) scratch with
        | Some (_, ivs) -> ivs
        | None -> [])
      tls

  let scratch_add (scratch : scratch) tls iv : scratch =
    List.fold_left
      (fun acc tl ->
        let rec update = function
          | [] -> [ (tl, [ iv ]) ]
          | (tl', ivs) :: rest when tl' == tl -> (tl', iv :: ivs) :: rest
          | entry :: rest -> entry :: update rest
        in
        update acc)
      scratch tls

  (* Earliest slot of [duration] on the joint busy set of [tls] plus the
     tentative intervals, at or after [after], honouring the policy. *)
  let slot t ~tls ~scratch ~after ~duration =
    let extra = scratch_for scratch tls in
    let after =
      match t.policy with
      | Insertion -> after
      | Append ->
          let last =
            List.fold_left
              (fun acc tl -> max acc (Timeline.last_finish tl))
              after tls
          in
          List.fold_left (fun acc (_, f) -> max acc f) last extra
    in
    Timeline.earliest_gap_joint ~extra tls ~after ~duration

  (* Incoming edges of [task], ordered by (source finish, source id): the
     greedy order in which §4.3 serialises incoming communications. *)
  let incoming t task =
    let g = Schedule.graph t.sched in
    let edges =
      Graph.fold_pred_edges g task ~init:[] ~f:(fun acc e ->
          let src = Graph.edge_src g e in
          let fin, _ = rep_fin_proc t.sched src in
          (fin, src, e) :: acc)
    in
    List.sort compare edges

  let evaluate_port ~floor t ~task ~proc =
    let g = Schedule.graph t.sched in
    let plat = Schedule.platform t.sched in
    let res = Schedule.resource t.sched in
    let hops = ref [] in
    let scratch = ref ([] : scratch) in
    let ready =
      List.fold_left
        (fun ready (fin, src, e) ->
          let _, q = rep_fin_proc t.sched src in
          let data = Graph.edge_data g e in
          if q = proc || data = 0. then max ready fin
          else
            match dup_local_finish t.sched ~src ~proc with
            | Some f -> max ready f
            | None ->
                let arrival =
                  List.fold_left
                    (fun data_ready (a, b) ->
                      let duration =
                        data *. Platform.hop_cost plat ~src:a ~dst:b
                      in
                      let tls = Resource.comm_busy res ~src:a ~dst:b in
                      let start =
                        slot t ~tls ~scratch:!scratch ~after:data_ready
                          ~duration
                      in
                      Obs.Counters.tentative_hop ();
                      hops :=
                        { edge = e; src_proc = a; dst_proc = b; start }
                        :: !hops;
                      scratch :=
                        scratch_add !scratch tls (start, start +. duration);
                      start +. duration)
                    (max fin floor)
                    (Platform.route plat ~src:q ~dst:proc)
                in
                max ready arrival)
        floor (incoming t task)
    in
    let duration = Schedule.exec_duration t.sched ~task ~proc in
    let compute = Resource.compute res proc in
    let est = slot t ~tls:[ compute ] ~scratch:!scratch ~after:ready ~duration in
    { proc; est; eft = est +. duration; hops = List.rev !hops; phase = None }

  (* BSP: the task's remote inputs travel in one fresh comm phase priced
     [g·h + L] from the h-relation [h] (total remote data), placed on the
     platform-wide phase busy set; local and zero-data inputs only
     constrain readiness. *)
  let evaluate_bsp ~floor t ~task ~proc ~g:gp ~l:lp =
    let g = Schedule.graph t.sched in
    let res = Schedule.resource t.sched in
    let local_ready = ref floor in
    let remote_ready = ref floor in
    let h = ref 0. in
    let remote = ref [] in
    List.iter
      (fun (fin, _src, e) ->
        let q = Schedule.proc_of_exn t.sched (Graph.edge_src g e) in
        let data = Graph.edge_data g e in
        if q = proc || data = 0. then begin
          if fin > !local_ready then local_ready := fin
        end
        else begin
          h := !h +. data;
          if fin > !remote_ready then remote_ready := fin;
          remote := (e, q) :: !remote
        end)
      (incoming t task);
    let duration = Schedule.exec_duration t.sched ~task ~proc in
    let compute = Resource.compute res proc in
    match List.rev !remote with
    | [] ->
        let est =
          slot t ~tls:[ compute ] ~scratch:[] ~after:!local_ready ~duration
        in
        { proc; est; eft = est +. duration; hops = []; phase = None }
    | remote ->
        let d = (gp *. !h) +. lp in
        let phase_tls = Resource.phase_busy res in
        let c =
          slot t ~tls:phase_tls ~scratch:[] ~after:!remote_ready ~duration:d
        in
        let f = c +. d in
        let scratch = scratch_add [] phase_tls (c, f) in
        let hops =
          List.map
            (fun (e, q) ->
              Obs.Counters.tentative_hop ();
              { edge = e; src_proc = q; dst_proc = proc; start = c })
            remote
        in
        let ready = if !local_ready > f then !local_ready else f in
        let est = slot t ~tls:[ compute ] ~scratch ~after:ready ~duration in
        { proc; est; eft = est +. duration; hops; phase = Some (c, f) }

  (* Latency+overhead: a hop's event spans [2o + data·hop_cost + l]; only
     the endpoint overheads occupy ports, exactly the sub-intervals
     [Resource.commit_comm] will commit.  The send and receive windows
     are coupled, so the placement alternates between the two sides until
     both are free (strictly increasing candidate starts, hence
     terminating). *)
  let evaluate_latency ~floor t ~task ~proc ~o ~l =
    let g = Schedule.graph t.sched in
    let plat = Schedule.platform t.sched in
    let res = Schedule.resource t.sched in
    let hops = ref [] in
    let scratch = ref ([] : scratch) in
    let ready =
      List.fold_left
        (fun ready (fin, _src, e) ->
          let q = Schedule.proc_of_exn t.sched (Graph.edge_src g e) in
          let data = Graph.edge_data g e in
          if q = proc || data = 0. then max ready fin
          else begin
            let arrival =
              List.fold_left
                (fun data_ready (a, b) ->
                  let span =
                    (2. *. o) +. (data *. Platform.hop_cost plat ~src:a ~dst:b)
                    +. l
                  in
                  let send_tls = Resource.send_busy res a in
                  let recv_tls = Resource.recv_busy res b in
                  let rec place after =
                    let s =
                      slot t ~tls:send_tls ~scratch:!scratch ~after ~duration:o
                    in
                    let f = s +. span in
                    let r0 = max (f -. o) s in
                    let r =
                      slot t ~tls:recv_tls ~scratch:!scratch ~after:r0
                        ~duration:o
                    in
                    if r <= r0 then (s, f, r0)
                    else
                      let a' = (r -. span) +. o in
                      place (if a' > s then a' else f)
                  in
                  let s, f, r0 = place data_ready in
                  Obs.Counters.tentative_hop ();
                  hops :=
                    { edge = e; src_proc = a; dst_proc = b; start = s } :: !hops;
                  let s1 = min (s +. o) f in
                  if s1 > s then
                    scratch := scratch_add !scratch send_tls (s, s1);
                  if f > r0 then scratch := scratch_add !scratch recv_tls (r0, f);
                  f)
                (max fin floor)
                (Platform.route plat ~src:q ~dst:proc)
            in
            max ready arrival
          end)
        floor (incoming t task)
    in
    let duration = Schedule.exec_duration t.sched ~task ~proc in
    let compute = Resource.compute res proc in
    let est = slot t ~tls:[ compute ] ~scratch:!scratch ~after:ready ~duration in
    { proc; est; eft = est +. duration; hops = List.rev !hops; phase = None }

  let evaluate ?(floor = 0.) t ~task ~proc =
    Obs.Counters.evaluation ();
    match t.regime with
    | Comm_model.Port -> evaluate_port ~floor t ~task ~proc
    | Comm_model.Bsp { g; l } -> evaluate_bsp ~floor t ~task ~proc ~g ~l
    | Comm_model.Latency_overhead { o; l } ->
        evaluate_latency ~floor t ~task ~proc ~o ~l

  let best_proc_among ?floor t ~task procs =
    match procs with
    | [] -> invalid_arg "Engine.best_proc_among: no candidates"
    | procs ->
        let best = ref None in
        List.iter
          (fun proc ->
            let ev = evaluate ?floor t ~task ~proc in
            match !best with
            | Some b when b.eft <= ev.eft -> ()
            | _ -> best := Some ev)
          (List.sort_uniq compare procs);
        Option.get !best

  let best_proc ?floor t ~task = best_proc_among ?floor t ~task t.all_procs
end

let use_reference = ref false

let with_reference f =
  let prev = !use_reference in
  use_reference := true;
  Fun.protect ~finally:(fun () -> use_reference := prev) f

(* ------------------------------------------------------------------ *)
(* Optimized evaluation                                                *)
(* ------------------------------------------------------------------ *)

let evaluate_port_opt ~floor t ~task ~proc =
  prepare_incoming t ~task;
  arena_reset t;
  let hops = ref [] in
  let ready = ref floor in
  for i = 0 to t.inc_len - 1 do
    let fin = t.inc_fin.(i) in
    let q = t.inc_proc.(i) in
    let data = t.inc_data.(i) in
    if q = proc || data = 0. then begin
      if fin > !ready then ready := fin
    end
    else begin
      match dup_local_finish t.sched ~src:t.inc_src.(i) ~proc with
      | Some f -> if f > !ready then ready := f
      | None ->
          let e = t.inc_edge.(i) in
          let route = route_for t ~src:q ~dst:proc in
          let data_ready = ref (if fin > floor then fin else floor) in
          for h = 0 to Array.length route - 1 do
            let hs = route.(h) in
            let duration = data *. hs.h_cost in
            let start =
              probe t ~tls:hs.h_tls ~ids:hs.h_ids ~after:!data_ready ~duration
            in
            Obs.Counters.tentative_hop ();
            hops :=
              { edge = e; src_proc = hs.h_src; dst_proc = hs.h_dst; start }
              :: !hops;
            let finish = start +. duration in
            for j = 0 to Array.length hs.h_ids - 1 do
              arena_add t hs.h_ids.(j) start finish
            done;
            data_ready := finish
          done;
          if !data_ready > !ready then ready := !data_ready
    end
  done;
  let duration = Schedule.exec_duration t.sched ~task ~proc in
  let est =
    probe t ~tls:t.comp_tls.(proc) ~ids:t.comp_ids.(proc) ~after:!ready
      ~duration
  in
  { proc; est; eft = est +. duration; hops = List.rev !hops; phase = None }

(* Arena mirror of [Reference.evaluate_bsp]: same arithmetic in the same
   order, so both engines stay bit-identical. *)
let evaluate_bsp_opt ~floor t ~task ~proc ~g:gp ~l:lp =
  prepare_incoming t ~task;
  arena_reset t;
  let local_ready = ref floor in
  let remote_ready = ref floor in
  let h = ref 0. in
  let any_remote = ref false in
  for i = 0 to t.inc_len - 1 do
    let fin = t.inc_fin.(i) in
    let q = t.inc_proc.(i) in
    let data = t.inc_data.(i) in
    if q = proc || data = 0. then begin
      if fin > !local_ready then local_ready := fin
    end
    else begin
      any_remote := true;
      h := !h +. data;
      if fin > !remote_ready then remote_ready := fin
    end
  done;
  let duration = Schedule.exec_duration t.sched ~task ~proc in
  if not !any_remote then begin
    let est =
      probe t ~tls:t.comp_tls.(proc) ~ids:t.comp_ids.(proc)
        ~after:!local_ready ~duration
    in
    { proc; est; eft = est +. duration; hops = []; phase = None }
  end
  else begin
    let d = (gp *. !h) +. lp in
    let c =
      probe t ~tls:t.phase_tls ~ids:t.phase_ids ~after:!remote_ready
        ~duration:d
    in
    let f = c +. d in
    for j = 0 to Array.length t.phase_ids - 1 do
      arena_add t t.phase_ids.(j) c f
    done;
    let hops = ref [] in
    for i = 0 to t.inc_len - 1 do
      let q = t.inc_proc.(i) in
      let data = t.inc_data.(i) in
      if q <> proc && data <> 0. then begin
        Obs.Counters.tentative_hop ();
        hops :=
          { edge = t.inc_edge.(i); src_proc = q; dst_proc = proc; start = c }
          :: !hops
      end
    done;
    let ready = if !local_ready > f then !local_ready else f in
    let est =
      probe t ~tls:t.comp_tls.(proc) ~ids:t.comp_ids.(proc) ~after:ready
        ~duration
    in
    { proc; est; eft = est +. duration; hops = List.rev !hops; phase = Some (c, f) }
  end

(* Arena mirror of [Reference.evaluate_latency]. *)
let evaluate_latency_opt ~floor t ~task ~proc ~o ~l =
  prepare_incoming t ~task;
  arena_reset t;
  let hops = ref [] in
  let ready = ref floor in
  for i = 0 to t.inc_len - 1 do
    let fin = t.inc_fin.(i) in
    let q = t.inc_proc.(i) in
    let data = t.inc_data.(i) in
    if q = proc || data = 0. then begin
      if fin > !ready then ready := fin
    end
    else begin
      let e = t.inc_edge.(i) in
      let route = route_for t ~src:q ~dst:proc in
      let data_ready = ref (if fin > floor then fin else floor) in
      for hh = 0 to Array.length route - 1 do
        let hs = route.(hh) in
        let span = (2. *. o) +. (data *. hs.h_cost) +. l in
        let rec place after =
          let s =
            probe t ~tls:hs.h_send_tls ~ids:hs.h_send_ids ~after ~duration:o
          in
          let f = s +. span in
          let r0 = max (f -. o) s in
          let r =
            probe t ~tls:hs.h_recv_tls ~ids:hs.h_recv_ids ~after:r0 ~duration:o
          in
          if r <= r0 then (s, f, r0)
          else
            let a' = (r -. span) +. o in
            place (if a' > s then a' else f)
        in
        let s, f, r0 = place !data_ready in
        Obs.Counters.tentative_hop ();
        hops := { edge = e; src_proc = hs.h_src; dst_proc = hs.h_dst; start = s } :: !hops;
        let s1 = min (s +. o) f in
        for j = 0 to Array.length hs.h_send_ids - 1 do
          arena_add t hs.h_send_ids.(j) s s1
        done;
        for j = 0 to Array.length hs.h_recv_ids - 1 do
          arena_add t hs.h_recv_ids.(j) r0 f
        done;
        data_ready := f
      done;
      if !data_ready > !ready then ready := !data_ready
    end
  done;
  let duration = Schedule.exec_duration t.sched ~task ~proc in
  let est =
    probe t ~tls:t.comp_tls.(proc) ~ids:t.comp_ids.(proc) ~after:!ready
      ~duration
  in
  { proc; est; eft = est +. duration; hops = List.rev !hops; phase = None }

let evaluate_opt ~floor t ~task ~proc =
  Obs.Counters.evaluation ();
  match t.regime with
  | Comm_model.Port -> evaluate_port_opt ~floor t ~task ~proc
  | Comm_model.Bsp { g; l } -> evaluate_bsp_opt ~floor t ~task ~proc ~g ~l
  | Comm_model.Latency_overhead { o; l } ->
      evaluate_latency_opt ~floor t ~task ~proc ~o ~l

let evaluate ?(floor = 0.) t ~task ~proc =
  if !use_reference then Reference.evaluate ~floor t ~task ~proc
  else evaluate_opt ~floor t ~task ~proc

let rec is_sorted_strict = function
  | a :: (b :: _ as rest) -> a < b && is_sorted_strict rest
  | _ -> true

(* ------------------------------------------------------------------ *)
(* Parallel candidate evaluation                                       *)
(* ------------------------------------------------------------------ *)

(* [ensure_clones t] lazily builds the per-helper scratch engines.  Each
   clone shares [t.sched] — evaluation reads only committed schedule
   state and mutates private scratch, so concurrent clones never race —
   but the shared [Resource] hands out link timelines lazily, so every
   route is materialised on the calling domain first; afterwards helper
   domains only read the resource tables. *)
let ensure_clones t =
  if Array.length t.clones < t.eval_jobs - 1 then begin
    for src = 0 to t.p - 1 do
      for dst = 0 to t.p - 1 do
        if src <> dst then ignore (route_for t ~src ~dst : hop_set array)
      done
    done;
    t.clones <-
      Array.init (t.eval_jobs - 1) (fun _ -> create ~policy:t.policy t.sched)
  end

(* Below this many live candidates a parallel scan cannot win: the
   barrier costs more than the evaluations. *)
let parallel_min_candidates = 4

(* Earliest-best scan of candidates [procs.(lo .. hi-1)], with the same
   lower-bound pruning and keep-the-incumbent tie-break as the serial
   loop.  Returns the winning candidate index alongside its eval so the
   reduction can break ties by index. *)
let scan_candidates ~floor t ~task ~ready_lb procs lo hi =
  let best = ref None in
  for i = lo to hi - 1 do
    let proc = procs.(i) in
    match !best with
    | Some (_, b)
      when ready_lb +. Schedule.exec_duration t.sched ~task ~proc >= b.eft ->
        Obs.Counters.pruned_evaluation ()
    | _ -> (
        let ev = evaluate_opt ~floor t ~task ~proc in
        match !best with
        | Some (_, b) when b.eft <= ev.eft -> ()
        | _ -> best := Some (i, ev))
  done;
  !best

(* Reduce per-chunk winners in ascending chunk order with a strict
   improvement test: chunk ranges are ascending, so the global winner is
   the earliest candidate index achieving the minimum EFT — exactly the
   serial scan's keep-the-incumbent rule.  Chunk boundaries depend on the
   worker count, but the argmin does not, so any [eval_jobs] places
   identically (only the pruning {e counters} may differ). *)
let reduce_chunks slots =
  let best = ref None in
  Array.iter
    (fun s ->
      match (s, !best) with
      | None, _ -> ()
      | Some _, None -> best := s
      | Some (_, ev), Some (_, b) -> if ev.eft < b.eft then best := s)
    slots;
  !best

let clone_engine t ~worker = if worker = 0 then t else t.clones.(worker - 1)

(* Parallel argmin over a sorted candidate array; [None] when the shared
   team is unavailable (the caller then runs the serial scan, which by
   construction computes the same winner). *)
let best_proc_among_parallel ~floor t ~task procs =
  match Pool.Team.try_acquire_shared ~jobs:t.eval_jobs with
  | None -> None
  | Some team ->
      Fun.protect
        ~finally:(fun () -> Pool.Team.release_shared team)
        (fun () ->
          ensure_clones t;
          prepare_incoming t ~task;
          let ready_lb =
            if t.inc_max_fin > floor then t.inc_max_fin else floor
          in
          let n = Array.length procs in
          let w = min t.eval_jobs n in
          let slots = Array.make w None in
          Pool.Team.run team ~jobs:w ~n:w (fun ~worker k ->
              let eng = clone_engine t ~worker in
              slots.(k) <-
                scan_candidates ~floor eng ~task ~ready_lb procs (k * n / w)
                  ((k + 1) * n / w));
          Option.map snd (reduce_chunks slots))

let best_proc_among ?(floor = 0.) t ~task procs =
  if !use_reference then Reference.best_proc_among ~floor t ~task procs
  else
    match procs with
    | [] -> invalid_arg "Engine.best_proc_among: no candidates"
    | procs ->
        (* Candidates are almost always handed over sorted (processor
           ranges, filtered survivor lists); only re-sort when not. *)
        let procs =
          if is_sorted_strict procs then procs
          else List.sort_uniq compare procs
        in
        let par =
          if
            t.eval_jobs > 1
            && List.compare_length_with procs parallel_min_candidates >= 0
          then
            best_proc_among_parallel ~floor t ~task (Array.of_list procs)
          else None
        in
        match par with
        | Some ev -> ev
        | None ->
            prepare_incoming t ~task;
            (* A candidate cannot start before any predecessor finishes
               (nor before the floor), whatever the communications do, so
               [ready_lb + execution] lower-bounds its EFT.  Ties keep
               the incumbent, exactly like the full scan. *)
            let ready_lb =
              if t.inc_max_fin > floor then t.inc_max_fin else floor
            in
            let best = ref None in
            List.iter
              (fun proc ->
                match !best with
                | Some b
                  when ready_lb +. Schedule.exec_duration t.sched ~task ~proc
                       >= b.eft ->
                    Obs.Counters.pruned_evaluation ()
                | _ -> (
                    let ev = evaluate_opt ~floor t ~task ~proc in
                    match !best with
                    | Some b when b.eft <= ev.eft -> ()
                    | _ -> best := Some ev))
              procs;
            Option.get !best

let best_proc ?floor t ~task = best_proc_among ?floor t ~task t.all_procs

(* Earliest-best scan over the alive rows of a pending (task, proc)
   table — ILHA's reschedule step.  Same shape as [scan_candidates]
   minus the pruning (rows price different tasks, whose lower bounds are
   unrelated). *)
let scan_pending ~floor t ~tasks ~procs ~alive lo hi =
  let best = ref None in
  for i = lo to hi - 1 do
    if alive.(i) then begin
      let ev = evaluate_opt ~floor t ~task:tasks.(i) ~proc:procs.(i) in
      match !best with
      | Some (_, b) when b.eft <= ev.eft -> ()
      | _ -> best := Some (i, ev)
    end
  done;
  !best

let best_pending ?(floor = 0.) t ~tasks ~procs ~alive =
  let n = Array.length tasks in
  if Array.length procs <> n || Array.length alive <> n then
    invalid_arg "Engine.best_pending: array length mismatch";
  let n_alive = ref 0 in
  for i = 0 to n - 1 do
    if alive.(i) then incr n_alive
  done;
  let serial () =
    let best = ref None in
    for i = 0 to n - 1 do
      if alive.(i) then begin
        let ev = evaluate ~floor t ~task:tasks.(i) ~proc:procs.(i) in
        match !best with
        | Some (_, b) when b.eft <= ev.eft -> ()
        | _ -> best := Some (i, ev)
      end
    done;
    !best
  in
  if
    t.eval_jobs > 1
    && (not !use_reference)
    && !n_alive >= parallel_min_candidates
  then
    match Pool.Team.try_acquire_shared ~jobs:t.eval_jobs with
    | None -> serial ()
    | Some team ->
        Fun.protect
          ~finally:(fun () -> Pool.Team.release_shared team)
          (fun () ->
            ensure_clones t;
            let w = min t.eval_jobs n in
            let slots = Array.make w None in
            Pool.Team.run team ~jobs:w ~n:w (fun ~worker k ->
                let eng = clone_engine t ~worker in
                slots.(k) <-
                  scan_pending ~floor eng ~tasks ~procs ~alive (k * n / w)
                    ((k + 1) * n / w));
            reduce_chunks slots)
  else serial ()

let log_push t ~task ~proc ~comms_before ~phases_before =
  if t.log_len = Array.length t.log_task then begin
    let cap = Array.length t.log_task in
    let cap' = if cap = 0 then 16 else 2 * cap in
    let lt = Array.make cap' 0
    and lc = Array.make cap' 0
    and lp = Array.make cap' 0
    and lq = Array.make cap' 0 in
    Array.blit t.log_task 0 lt 0 t.log_len;
    Array.blit t.log_comms 0 lc 0 t.log_len;
    Array.blit t.log_phases 0 lp 0 t.log_len;
    Array.blit t.log_proc 0 lq 0 t.log_len;
    t.log_task <- lt;
    t.log_comms <- lc;
    t.log_phases <- lp;
    t.log_proc <- lq
  end;
  t.log_task.(t.log_len) <- task;
  t.log_comms.(t.log_len) <- comms_before;
  t.log_phases.(t.log_len) <- phases_before;
  t.log_proc.(t.log_len) <- proc;
  t.log_len <- t.log_len + 1

let commit t ~task ev =
  Obs.Counters.commit ();
  log_push t ~task ~proc:(-1)
    ~comms_before:(Schedule.n_comm_events t.sched)
    ~phases_before:(Schedule.n_phases t.sched);
  (match ev.phase with
  | Some (c, f) ->
      (* BSP: the phase window was chosen during evaluation; every hop
         event spans it. *)
      Schedule.add_phase t.sched ~start:c ~finish:f;
      List.iter
        (fun h ->
          let (_ : float) =
            Schedule.add_comm_in_window t.sched ~edge:h.edge
              ~src_proc:h.src_proc ~dst_proc:h.dst_proc ~start:h.start
              ~finish:f
          in
          ())
        ev.hops
  | None ->
      (* Within one evaluation each edge contributes one route-following
         chain, so an edge's first hop here is a chain head — stated
         explicitly because with duplication a new chain may begin on the
         processor where a previous chain of the same edge ended. *)
      let seen = ref [] in
      List.iter
        (fun h ->
          let head = not (List.mem h.edge !seen) in
          if head then seen := h.edge :: !seen;
          let (_ : float) =
            Schedule.add_comm ~head t.sched ~edge:h.edge ~src_proc:h.src_proc
              ~dst_proc:h.dst_proc ~start:h.start
          in
          ())
        ev.hops);
  Schedule.place_task t.sched ~task ~proc:ev.proc ~start:ev.est

(* Drop every cached incoming table that might mention [task] as a
   predecessor — its feeding copy set just changed.  Clones share the
   schedule, so their caches go stale too. *)
let invalidate_incoming t =
  t.inc_task <- -1;
  Array.iter (fun c -> c.inc_task <- -1) t.clones

let commit_copy t ~task ev =
  if not (Schedule.is_placed t.sched task) then
    invalid_arg "Engine.commit_copy: task has no primary copy yet";
  (match ev.phase with
  | Some _ -> invalid_arg "Engine.commit_copy: duplication is port-regime only"
  | None -> ());
  Obs.Counters.commit ();
  log_push t ~task ~proc:ev.proc
    ~comms_before:(Schedule.n_comm_events t.sched)
    ~phases_before:(Schedule.n_phases t.sched);
  let seen = ref [] in
  List.iter
    (fun h ->
      let head = not (List.mem h.edge !seen) in
      if head then seen := h.edge :: !seen;
      let (_ : float) =
        Schedule.add_comm ~head t.sched ~edge:h.edge ~src_proc:h.src_proc
          ~dst_proc:h.dst_proc ~start:h.start
      in
      ())
    ev.hops;
  Schedule.place_copy t.sched ~task ~proc:ev.proc ~start:ev.est;
  invalidate_incoming t

let n_commits t = t.log_len
let commit_task_at t i = t.log_task.(i)
let commit_proc_at t i = t.log_proc.(i)

let rewind t ~to_ =
  if to_ < 0 || to_ > t.log_len then invalid_arg "Engine.rewind: bad index";
  if to_ < t.log_len then begin
    Obs.Counters.rollback ();
    let had_dups = Schedule.has_dups t.sched in
    while t.log_len > to_ do
      let i = t.log_len - 1 in
      if t.log_proc.(i) >= 0 then
        Schedule.unplace_copy t.sched ~task:t.log_task.(i)
          ~proc:t.log_proc.(i)
      else Schedule.unplace_task t.sched t.log_task.(i);
      Schedule.truncate_comms t.sched ~down_to:t.log_comms.(i);
      Schedule.truncate_phases t.sched ~down_to:t.log_phases.(i);
      t.log_len <- i
    done;
    (* The incoming table depends on predecessor placements, which the
       rewind may just have retracted. *)
    t.inc_task <- -1;
    if had_dups then invalidate_incoming t
  end

let schedule_on ?floor t ~task ~proc =
  let ev = evaluate ?floor t ~task ~proc in
  commit t ~task ev

let schedule_best ?floor t ~task =
  let ev = best_proc ?floor t ~task in
  commit t ~task ev;
  ev
