open Prelude
module Graph = Taskgraph.Graph
module Schedule = Sched.Schedule
module Resource = Sched.Resource

type policy = Insertion | Append
type hop = { edge : int; src_proc : int; dst_proc : int; start : float }
type eval = { proc : int; est : float; eft : float; hops : hop list }

type t = { sched : Schedule.t; policy : policy }

let create ?(policy = Insertion) sched = { sched; policy }
let schedule t = t.sched
let policy t = t.policy

(* Tentative busy intervals per physical timeline (physical equality:
   distinct resources are distinct Timeline.t values). *)
type scratch = (Timeline.t * (float * float) list) list

let scratch_for (scratch : scratch) tls =
  List.concat_map
    (fun tl ->
      match List.find_opt (fun (tl', _) -> tl' == tl) scratch with
      | Some (_, ivs) -> ivs
      | None -> [])
    tls

let scratch_add (scratch : scratch) tls iv : scratch =
  List.fold_left
    (fun acc tl ->
      let rec update = function
        | [] -> [ (tl, [ iv ]) ]
        | (tl', ivs) :: rest when tl' == tl -> (tl', iv :: ivs) :: rest
        | entry :: rest -> entry :: update rest
      in
      update acc)
    scratch tls

(* Earliest slot of [duration] on the joint busy set of [tls] plus the
   tentative intervals, at or after [after], honouring the policy. *)
let slot t ~tls ~scratch ~after ~duration =
  let extra = scratch_for scratch tls in
  let after =
    match t.policy with
    | Insertion -> after
    | Append ->
        let last =
          List.fold_left (fun acc tl -> max acc (Timeline.last_finish tl)) after tls
        in
        List.fold_left (fun acc (_, f) -> max acc f) last extra
  in
  Timeline.earliest_gap_joint ~extra tls ~after ~duration

(* Incoming edges of [task], ordered by (source finish, source id): the
   greedy order in which §4.3 serialises incoming communications. *)
let incoming t task =
  let g = Schedule.graph t.sched in
  let edges =
    Graph.fold_pred_edges g task ~init:[] ~f:(fun acc e ->
        let src = Graph.edge_src g e in
        let fin = Schedule.finish_of_exn t.sched src in
        (fin, src, e) :: acc)
  in
  List.sort compare edges

let evaluate ?(floor = 0.) t ~task ~proc =
  Obs.Counters.evaluation ();
  let g = Schedule.graph t.sched in
  let plat = Schedule.platform t.sched in
  let res = Schedule.resource t.sched in
  let hops = ref [] in
  let scratch = ref ([] : scratch) in
  let ready =
    List.fold_left
      (fun ready (fin, _src, e) ->
        let q = Schedule.proc_of_exn t.sched (Graph.edge_src g e) in
        let data = Graph.edge_data g e in
        if q = proc || data = 0. then max ready fin
        else begin
          let arrival =
            List.fold_left
              (fun data_ready (a, b) ->
                let duration = data *. Platform.hop_cost plat ~src:a ~dst:b in
                let tls = Resource.comm_busy res ~src:a ~dst:b in
                let start =
                  slot t ~tls ~scratch:!scratch ~after:data_ready ~duration
                in
                Obs.Counters.tentative_hop ();
                hops := { edge = e; src_proc = a; dst_proc = b; start } :: !hops;
                scratch := scratch_add !scratch tls (start, start +. duration);
                start +. duration)
              (max fin floor)
              (Platform.route plat ~src:q ~dst:proc)
          in
          max ready arrival
        end)
      floor (incoming t task)
  in
  let duration = Schedule.exec_duration t.sched ~task ~proc in
  let compute = Resource.compute res proc in
  let est = slot t ~tls:[ compute ] ~scratch:!scratch ~after:ready ~duration in
  { proc; est; eft = est +. duration; hops = List.rev !hops }

let best_proc_among ?floor t ~task procs =
  match procs with
  | [] -> invalid_arg "Engine.best_proc_among: no candidates"
  | procs ->
      let best = ref None in
      List.iter
        (fun proc ->
          let ev = evaluate ?floor t ~task ~proc in
          match !best with
          | Some b when b.eft <= ev.eft -> ()
          | _ -> best := Some ev)
        (List.sort_uniq compare procs);
      Option.get !best

let best_proc ?floor t ~task =
  let p = Platform.p (Schedule.platform t.sched) in
  best_proc_among ?floor t ~task (List.init p Fun.id)

let commit t ~task ev =
  Obs.Counters.commit ();
  List.iter
    (fun h ->
      let (_ : float) =
        Schedule.add_comm t.sched ~edge:h.edge ~src_proc:h.src_proc
          ~dst_proc:h.dst_proc ~start:h.start
      in
      ())
    ev.hops;
  Schedule.place_task t.sched ~task ~proc:ev.proc ~start:ev.est

let schedule_on ?floor t ~task ~proc =
  let ev = evaluate ?floor t ~task ~proc in
  commit t ~task ev

let schedule_best ?floor t ~task =
  let ev = best_proc ?floor t ~task in
  commit t ~task ev;
  ev
