(** Automated chunk-size selection for ILHA.

    §5.3: "the best results for ILHA have been obtained by trying several
    values for B.  Unfortunately, we have not found any systematic
    technique to predict the optimal value" — but the search space is
    bounded: [1 .. M] where [M] is the perfect-balance chunk.  This module
    packages that tuning loop: sample candidate chunk sizes (geometric
    ladder over [1, max(M, p)], always including [p], [M] and the paper's
    well-performing middle ground), schedule with each, keep the best
    makespan.  Deterministic; cost is one full schedule per candidate. *)

type result = {
  best_b : int;
  best_makespan : float;
  trials : (int * float) list;  (** every (B, makespan) tried, ascending B *)
}

(** [candidates plat] — the sampled ladder (sorted, duplicate-free). *)
val candidates : Platform.t -> int list

(** [search ?params plat g] — run ILHA once per candidate chunk size
    ([params.candidates], defaulting to {!candidates}); [params.b] is
    overridden per trial.  Ties prefer the smaller B (cheaper critical-path
    reactivity, per §5.3's trade-off discussion). *)
val search : ?params:Params.t -> Platform.t -> Taskgraph.Graph.t -> result

(** [schedule ?params plat g] — the winning schedule (re-runs ILHA at
    [best_b]). *)
val schedule :
  ?params:Params.t -> Platform.t -> Taskgraph.Graph.t -> Sched.Schedule.t
