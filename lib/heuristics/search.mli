(** Exhaustive branch-and-bound scheduling for tiny instances.

    Searches every interleaving of (ready-task choice × processor choice),
    placing communications with the same greedy earliest-slot rule as
    {!Engine}.  Every list heuristic in this library makes exactly one
    sequence of such choices, so the returned makespan is a valid lower
    bound for all of them — the property tests rely on this.  (It is not
    always the true optimum under one-port models: Theorem 2 shows even
    fixing the allocation leaves an NP-complete communication-ordering
    problem, and the greedy comm rule is one fixed policy.  For fork graphs
    use {!Fork_exact}, which is exact.)

    The DFS is undo-based: one schedule and one engine serve the whole
    search, with each decision retracted through the engine's commit log
    ({!Engine.rewind}) on the way back up instead of copying the schedule
    at every node.  Nodes cut by the incumbent bound are counted in the
    [search pruned] observability counter.

    Guarded to at most 10 tasks; the search space is [O(n! p^n)], so
    instances near the guard should have narrow ready sets (chains,
    in-trees) for the bound to bite early. *)

(** [best_schedule ?params plat g] — the best schedule found.
    @raise Invalid_argument beyond 10 tasks. *)
val best_schedule :
  ?params:Params.t -> Platform.t -> Taskgraph.Graph.t -> Sched.Schedule.t

val best_makespan : ?params:Params.t -> Platform.t -> Taskgraph.Graph.t -> float
