(** Name-indexed scheduler registry used by the CLI, the experiment harness
    and the tournament bench.

    Every entry exposes the same uniform signature: a {!Params.t} record
    carrying all tuning knobs (model, slot policy, averaging, ILHA's chunk
    parameters), then platform and graph.  Heuristics read the fields they
    understand and ignore the rest, so callers configure any heuristic the
    same way — there are no per-heuristic escape hatches.  Pass
    {!Params.default} for the paper's setting. *)

type scheduler =
  Params.t -> Platform.t -> Taskgraph.Graph.t -> Sched.Schedule.t

type entry = {
  name : string;
  description : string;
  scheduler : scheduler;
  scalable : bool;
      (** [false] for quadratic-in-ready-set heuristics (GDL, ETF) that
          should be skipped on very large graphs *)
}

(** All registered heuristics.  ILHA variants (chunk size, scans,
    rescheduling) are selected through {!Params.t}, not separate
    entries. *)
val all : entry list

val names : string list

(** Online crash repair, available uniformly for every registered
    heuristic: whatever produced the schedule, [repair ~proc ~at] freezes
    the decisions already acted on and re-maps the rest onto the
    survivors with the shared engine (= {!Repair.crash}).  [params]
    configures the re-mapping pass exactly like a scheduler run. *)
val repair :
  ?params:Params.t -> proc:int -> at:float -> Sched.Schedule.t -> Repair.result

(** @raise Invalid_argument on an unknown name. *)
val find : string -> entry
