module Graph = Taskgraph.Graph
module Schedule = Sched.Schedule

let check_shape costs g plat =
  if
    Array.length costs <> Graph.n_tasks g
    || Array.exists (fun row -> Array.length row <> Platform.p plat) costs
  then invalid_arg "Unrelated: cost matrix shape mismatch"

let ranks costs g plat =
  check_shape costs g plat;
  let p = float_of_int (Platform.p plat) in
  let avg_link = Platform.avg_link_cost plat in
  let mean v = Array.fold_left ( +. ) 0. costs.(v) /. p in
  let n = Graph.n_tasks g in
  let rank = Array.make n 0. in
  let order = Graph.topological_order g in
  for i = n - 1 downto 0 do
    let v = order.(i) in
    let best = ref 0. in
    Graph.iter_succ_edges g v ~f:(fun e ->
        let u = Graph.edge_dst g e in
        let c = (Graph.edge_data g e *. avg_link) +. rank.(u) in
        if c > !best then best := c);
    rank.(v) <- mean v +. !best
  done;
  rank

let heft ?(params = Params.default) ~costs plat g =
  Obs.Span.with_ "heft-unrelated" @@ fun () ->
  check_shape costs g plat;
  let sched =
    Schedule.create
      ~exec_time:(fun v q -> costs.(v).(q))
      ~graph:g ~platform:plat ~model:params.Params.model ()
  in
  let engine = Engine.create ~policy:params.Params.policy sched in
  let priority = ranks costs g plat in
  let ready = Prelude.Pqueue.create ~compare:(Ranking.compare_priority priority) in
  let remaining = Array.init (Graph.n_tasks g) (Graph.in_degree g) in
  for v = 0 to Graph.n_tasks g - 1 do
    if remaining.(v) = 0 then Prelude.Pqueue.add ready v
  done;
  let rec drain () =
    match Prelude.Pqueue.pop ready with
    | None -> ()
    | Some v ->
        let (_ : Engine.eval) = Engine.schedule_best engine ~task:v in
        Graph.iter_succ_edges g v ~f:(fun e ->
            let u = Graph.edge_dst g e in
            remaining.(u) <- remaining.(u) - 1;
            if remaining.(u) = 0 then Prelude.Pqueue.add ready u);
        drain ()
  in
  drain ();
  sched

(* The HEFT paper's Figure 2 example: computation costs w(task, proc) and
   communication volumes on the edges (unit links make volume = cost). *)
let topcuoglu_example () =
  let costs =
    [|
      [| 14.; 16.; 9. |];
      [| 13.; 19.; 18. |];
      [| 11.; 13.; 19. |];
      [| 13.; 8.; 17. |];
      [| 12.; 13.; 10. |];
      [| 13.; 16.; 9. |];
      [| 7.; 15.; 11. |];
      [| 5.; 11.; 14. |];
      [| 18.; 12.; 20. |];
      [| 21.; 7.; 16. |];
    |]
  in
  let edges =
    [
      (0, 1, 18.); (0, 2, 12.); (0, 3, 9.); (0, 4, 11.); (0, 5, 14.);
      (1, 7, 19.); (1, 8, 16.); (2, 6, 23.); (3, 7, 27.); (3, 8, 23.);
      (4, 8, 13.); (5, 7, 15.); (6, 9, 17.); (7, 9, 11.); (8, 9, 13.);
    ]
  in
  let weights =
    Array.map (fun row -> Array.fold_left ( +. ) 0. row /. 3.) costs
  in
  let g = Graph.create ~name:"topcuoglu-fig2" ~weights ~edges () in
  let plat =
    Platform.fully_connected ~name:"topcuoglu-3" ~cycle_times:[| 1.; 1.; 1. |]
      ~link_cost:1. ()
  in
  (g, plat, costs)
