(** HEFT — Heterogeneous Earliest Finish Time (Topcuoglu et al.), under any
    communication model.

    The classical algorithm (§4.1): rank tasks by bottom level computed
    with averaged execution and communication costs, then repeatedly take
    the highest-priority ready task and place it on the processor giving
    the earliest finish time.  Under the one-port model (§4.3) the finish
    time accounts for serialising the incoming communications through the
    senders' and receiver's ports — {!Engine} does that uniformly, so this
    module is the paper's one-port HEFT when given
    {!Commmodel.Comm_model.one_port} and the classical HEFT when given
    [macro_dataflow]. *)

(** [schedule ?params plat g] builds a complete valid schedule.  Reads
    [params.model], [params.policy] and [params.averaging] (the §4.1
    rank-averaging rule). *)
val schedule :
  ?params:Params.t -> Platform.t -> Taskgraph.Graph.t -> Sched.Schedule.t
