(** Post-pass allocation refinement (the improvement direction §6 leaves
    open).

    A complete schedule fixes an allocation [task -> processor].  This
    module hill-climbs on that allocation: rebuild the schedule by list
    scheduling in bottom-level priority order with the allocation {e
    forced} (communications still placed greedily under the model), then
    repeatedly try moving one task — chosen from the tasks that finish
    last, the bottleneck — to each other processor, keeping any move that
    shrinks the rebuilt makespan.  Deterministic; stops after
    [max_rounds] rounds without improvement or [max_moves] accepted
    moves. *)

type result = {
  schedule : Sched.Schedule.t;
  initial_makespan : float;  (** of the input schedule *)
  final_makespan : float;
  accepted_moves : int;
  evaluations : int;  (** allocations priced (initial build included) *)
  moves : (int * int * float) list;
      (** accepted moves in order: task, new processor, resulting
          makespan — the incumbent trace the equivalence suite compares *)
}

(** [rebuild ?params ~alloc plat g] — list-schedule with the given
    forced allocation (priority = upward rank).  The building block for
    refinement, exposed for tests and for evaluating externally-computed
    allocations. *)
val rebuild :
  ?params:Params.t ->
  alloc:(int -> int) ->
  Platform.t ->
  Taskgraph.Graph.t ->
  Sched.Schedule.t

(** [improve ?policy ?max_rounds ?max_moves sched] — refine the schedule's
    allocation.  The result's schedule is never worse than the better of
    the input and its rebuild.

    Candidate moves are priced incrementally on a {!Prefix_replay}
    driver: moving a task rewinds to its decision position and replays
    only the suffix, instead of paying a full rebuild per step.  The
    result — schedule, move trace, every count — is bit-identical to
    {!Reference.improve}. *)
val improve :
  ?policy:Engine.policy -> ?max_rounds:int -> ?max_moves:int -> Sched.Schedule.t -> result

(** The original from-scratch hill climber (one full rebuild per priced
    move), kept as the executable specification for [improve]. *)
module Reference : sig
  val improve :
    ?policy:Engine.policy ->
    ?max_rounds:int ->
    ?max_moves:int ->
    Sched.Schedule.t ->
    result
end
