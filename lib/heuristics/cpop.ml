module Graph = Taskgraph.Graph

(* The critical path: start from the entry task of maximal (upward +
   downward) priority and repeatedly follow the successor of maximal
   priority.  With float priorities we compare with a relative epsilon. *)
let critical_path g priority =
  let close a b = Prelude.Stats.fequal ~eps:1e-9 a b in
  let cp_len = Array.fold_left max neg_infinity priority in
  let on_cp = Array.make (Graph.n_tasks g) false in
  let entry =
    List.filter (fun v -> close priority.(v) cp_len) (Graph.entry_tasks g)
  in
  (match entry with
  | [] -> ()
  | start :: _ ->
      let rec follow v =
        on_cp.(v) <- true;
        let next = ref None in
        Graph.iter_succ_edges g v ~f:(fun e ->
            let u = Graph.edge_dst g e in
            if close priority.(u) cp_len && !next = None then next := Some u);
        match !next with Some u -> follow u | None -> ()
      in
      follow start);
  on_cp

let schedule ?(params = Params.default) plat g =
  Obs.Span.with_ "cpop" @@ fun () ->
  let up = Ranking.upward g plat in
  let down = Ranking.downward g plat in
  let priority = Array.init (Graph.n_tasks g) (fun v -> up.(v) +. down.(v)) in
  let on_cp = critical_path g priority in
  (* The processor executing the whole critical path fastest (with uniform
     task speeds this is simply the fastest processor; ties to the lowest
     index). *)
  let cp_proc = ref 0 in
  for q = 1 to Platform.p plat - 1 do
    if Platform.cycle_time plat q < Platform.cycle_time plat !cp_proc then
      cp_proc := q
  done;
  let handle engine v =
    if on_cp.(v) then Engine.schedule_on engine ~task:v ~proc:!cp_proc
    else begin
      let (_ : Engine.eval) = Engine.schedule_best engine ~task:v in
      ()
    end
  in
  List_loop.run ~params ~priority ~handle plat g
