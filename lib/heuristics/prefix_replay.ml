module Graph = Taskgraph.Graph
module Schedule = Sched.Schedule

(* The decision order of a forced-allocation rebuild (Refine.rebuild) is
   the Kahn drain by static upward rank — it depends only on the graph
   and platform, never on the allocation.  So a rebuild after changing
   task [v]'s processor agrees with the previous build on every decision
   before [v]'s position: rewind there and replay only the suffix. *)
type t = {
  engine : Engine.t;
  order : int array; (* decision index -> task *)
  pos : int array; (* task -> decision index *)
  alloc : int array;
  n : int;
  mutable dirty : int; (* first decision index to rebuild; [n] = clean *)
}

let commit_suffix t ~from ~count_replays =
  for i = from to t.n - 1 do
    let v = t.order.(i) in
    if count_replays then Obs.Counters.replayed_task ();
    Engine.schedule_on t.engine ~task:v ~proc:t.alloc.(v)
  done;
  t.dirty <- t.n

let create ?policy ~model ~alloc plat g =
  let sched = Schedule.create ~graph:g ~platform:plat ~model () in
  let engine = Engine.create ?policy sched in
  let order = List_loop.decision_order ~priority:(Ranking.upward g plat) g in
  let n = Graph.n_tasks g in
  let pos = Array.make n 0 in
  Array.iteri (fun i v -> pos.(v) <- i) order;
  let t =
    { engine; order; pos; alloc = Array.copy alloc; n; dirty = 0 }
  in
  commit_suffix t ~from:0 ~count_replays:false;
  t

let alloc t v = t.alloc.(v)
let alloc_array t = Array.copy t.alloc

let set_alloc t v q =
  if q <> t.alloc.(v) then begin
    t.alloc.(v) <- q;
    if t.pos.(v) < t.dirty then t.dirty <- t.pos.(v)
  end

let replay t =
  if t.dirty < t.n then begin
    Engine.rewind t.engine ~to_:t.dirty;
    commit_suffix t ~from:t.dirty ~count_replays:true
  end

let schedule t =
  replay t;
  Engine.schedule t.engine

let makespan t = Schedule.makespan (schedule t)
