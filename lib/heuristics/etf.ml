module Graph = Taskgraph.Graph
module Schedule = Sched.Schedule

let schedule ?(params = Params.default) plat g =
  Obs.Span.with_ "etf" @@ fun () ->
  let sl = Ranking.static_level g plat in
  let p = Platform.p plat in
  let sched = Schedule.create ~graph:g ~platform:plat ~model:params.Params.model () in
  let engine = Engine.create ~policy:params.Params.policy sched in
  let remaining = Array.init (Graph.n_tasks g) (Graph.in_degree g) in
  let ready = ref [] in
  for v = Graph.n_tasks g - 1 downto 0 do
    if remaining.(v) = 0 then ready := v :: !ready
  done;
  while !ready <> [] do
    (* Globally earliest start; ties by higher static level, then scan
       order (ascending task id, processor index). *)
    let best = ref None in
    List.iter
      (fun v ->
        for q = 0 to p - 1 do
          let ev = Engine.evaluate engine ~task:v ~proc:q in
          let better =
            match !best with
            | None -> true
            | Some (est', sl', _, _) ->
                ev.Engine.est < est' -. 1e-12
                || (Prelude.Stats.fequal ev.Engine.est est' && sl.(v) > sl' +. 1e-12)
          in
          if better then best := Some (ev.Engine.est, sl.(v), v, ev)
        done)
      (List.sort compare !ready);
    match !best with
    | None -> assert false
    | Some (_, _, v, ev) ->
        Engine.commit engine ~task:v ev;
        ready := List.filter (( <> ) v) !ready;
        Graph.iter_succ_edges g v ~f:(fun e ->
            let u = Graph.edge_dst g e in
            remaining.(u) <- remaining.(u) - 1;
            if remaining.(u) = 0 then ready := u :: !ready)
  done;
  sched
