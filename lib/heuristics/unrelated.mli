(** Unrelated-machines scheduling — the original HEFT setting.

    The paper's model is {e related} machines (execution time
    [w(v) * t_i]); the HEFT paper it builds on uses a fully general cost
    matrix [w(v, P_i)].  Supplying {!Sched.Schedule.create}'s [exec_time]
    override runs the entire engine under unrelated costs; this module
    packages the matching rank computation (mean cost over processors, as
    in the HEFT paper) and a ready-made HEFT, plus the paper's canonical
    10-task example as executable data — our regression test against the
    original publication (schedule length 80).

    The platform's cycle-times are ignored for execution (the matrix
    rules) but its link structure still prices communications. *)

(** [ranks costs g plat] — upward ranks with task cost = mean over
    processors of [costs.(v).(q)] and the usual averaged communication
    term.
    @raise Invalid_argument if the matrix shape does not match. *)
val ranks : float array array -> Taskgraph.Graph.t -> Platform.t -> float array

(** [heft ?params ~costs plat g] — HEFT over the cost matrix
    [costs.(task).(proc)]. *)
val heft :
  ?params:Params.t ->
  costs:float array array ->
  Platform.t ->
  Taskgraph.Graph.t ->
  Sched.Schedule.t

(** The worked example of the HEFT paper (Topcuoglu, Hariri, Wu; Fig. 2
    there): 10 tasks, 3 processors, the published cost matrix and
    communication volumes.  Returns [(graph, platform, costs)].  Task ids
    are the paper's minus one; the platform is fully connected with unit
    links, so edge volumes equal the published communication costs.
    Weights are set to each task's mean cost so weight-based metrics stay
    meaningful. *)
val topcuoglu_example : unit -> Taskgraph.Graph.t * Platform.t * float array array
