(** GDL — Generalized Dynamic Level (Sih & Lee).

    Baseline from the paper's comparison set (§4.2).  At every step the
    scheduler examines {e all} (ready task, processor) pairs and picks the
    one maximising the dynamic level

    [DL(v,q) = SL(v) - max(DA(v,q), TF(q)) + Δ(v,q)]

    where [SL] is the communication-free static level, [max(DA, TF)] is
    the earliest execution start (data availability vs. processor ready
    time — under one-port models this includes port contention), and
    [Δ(v,q) = w̄(v) - w(v) t_q] rewards faster-than-average processors.
    Quadratic in the ready-set size; intended for moderate graphs.
    Reimplemented from the original description and adapted to the
    one-port model via the shared engine. *)

val schedule :
  ?params:Params.t -> Platform.t -> Taskgraph.Graph.t -> Sched.Schedule.t
