(** ILHA — Iso-Level Heterogeneous Allocation (§4.2, §4.4).

    Instead of mapping one task at a time, ILHA grabs the [B] ready tasks
    of highest bottom level and maps the chunk with an explicit
    load-balancing target: processor [P_i] may take at most the fraction
    [c_i] (§4.1) of the chunk's total weight.  Two scans follow (§4.4):

    - {b Step 1}: tasks whose parents all live on one processor are placed
      there — generating {e zero} communications — as long as that
      processor's chunk quota is not exceeded;
    - {b Step 2}: the remaining tasks fall back to HEFT's
      earliest-finish-time rule.

    §4.4 sketches two refinements, both implemented here and selected
    through {!Params.t}: an additional scan accepting placements that cost
    a {e single} communication ([Params.Scan_one_comm]), and a third step
    that keeps only the chunk's {e allocation} and re-schedules chunk
    tasks greedily by globally smallest finish time
    ([params.reschedule = true]; the underlying decision problem is
    NP-complete — Theorem 2 — hence a greedy). *)

(** [schedule ?params plat g] — reads [params.model], [params.policy],
    [params.b], [params.scan] and [params.reschedule].

    [params.b = None] defaults to the platform's perfect-balance chunk
    {!Load_balance.perfect_chunk} when cycle-times are integral (38 on the
    paper platform, the default used in §5.3) and to the processor count
    otherwise; values below the processor count are allowed but §4.2 notes
    they waste processors.
    @raise Invalid_argument if [b < 1]. *)
val schedule :
  ?params:Params.t -> Platform.t -> Taskgraph.Graph.t -> Sched.Schedule.t

(** The default chunk size for a platform (see above). *)
val default_b : Platform.t -> int
