module Graph = Taskgraph.Graph
module Schedule = Sched.Schedule
module Comm_model = Commmodel.Comm_model

(* The copy of [u] feeding consumers by default: earliest finish, ties to
   the lowest processor — the engine's representative-copy rule. *)
let rep_copy sched u =
  match Schedule.copies sched u with
  | [] -> invalid_arg "Heft_dup: predecessor not placed"
  | c :: rest ->
      List.fold_left
        (fun (b : Schedule.placement) (c : Schedule.placement) ->
          if c.finish < b.finish || (c.finish = b.finish && c.proc < b.proc)
          then c
          else b)
        c rest

(* The predecessor of [v] whose remote delivery onto [proc] looks most
   expensive: maximum representative finish plus direct-link price, ties
   to the lowest task id.  Predecessors already running on [proc] (any
   copy) and zero-data edges feed locally/freely and are skipped. *)
let critical_remote_pred sched plat g v ~proc =
  Graph.fold_pred_edges g v ~init:None ~f:(fun acc e ->
      let u = Graph.edge_src g e in
      let data = Graph.edge_data g e in
      if data <= 0. || Schedule.copy_on sched ~task:u ~proc <> None then acc
      else
        let rep = rep_copy sched u in
        let price =
          List.fold_left
            (fun acc (s, d) -> acc +. Platform.hop_cost plat ~src:s ~dst:d)
            0.
            (Platform.route plat ~src:rep.proc ~dst:proc)
        in
        let key = rep.finish +. (data *. price) in
        match acc with
        | Some (k, u') when k > key || (k = key && u' <= u) -> acc
        | _ -> Some (key, u))

(* Evaluate [v] on [q], then greedily duplicate up to [limit] critical
   remote predecessors onto [q] while each copy strictly lowers v's EFT.
   Kept duplications stay committed (the caller rewinds to its own mark
   when merely exploring); a failed attempt is rewound here. *)
let explore engine sched plat g limit v q =
  let ev = ref (Engine.evaluate engine ~task:v ~proc:q) in
  (try
     for _ = 1 to limit do
       match critical_remote_pred sched plat g v ~proc:q with
       | None -> raise Exit
       | Some (_, u) ->
           let mark = Engine.n_commits engine in
           let evu = Engine.evaluate engine ~task:u ~proc:q in
           Engine.commit_copy engine ~task:u evu;
           let ev' = Engine.evaluate engine ~task:v ~proc:q in
           if ev'.Engine.eft < !ev.Engine.eft then ev := ev'
           else begin
             Engine.rewind engine ~to_:mark;
             raise Exit
           end
     done
   with Exit -> ());
  !ev

let schedule ?(params = Params.default) plat g =
  match params.Params.model.Comm_model.regime with
  | Comm_model.Bsp _ | Comm_model.Latency_overhead _ ->
      (* phase accounting has no provenance rule for replicated producers;
         fall back to the single-copy algorithm *)
      Heft.schedule ~params plat g
  | Comm_model.Port ->
      Obs.Span.with_ "heft-dup" (fun () ->
          let priority =
            Obs.Span.with_ "rank" (fun () ->
                Ranking.upward ~averaging:params.Params.averaging g plat)
          in
          let limit = max 1 params.Params.dup_limit in
          let sched =
            Schedule.create ~graph:g ~platform:plat ~model:params.Params.model
              ()
          in
          let engine = Engine.create ~policy:params.Params.policy sched in
          let order = List_loop.decision_order ~priority g in
          let p = Platform.p plat in
          Obs.Span.with_ "map" (fun () ->
              Array.iter
                (fun v ->
                  let best = ref None in
                  for q = 0 to p - 1 do
                    let mark = Engine.n_commits engine in
                    let ev = explore engine sched plat g limit v q in
                    Engine.rewind engine ~to_:mark;
                    match !best with
                    | Some (b : Engine.eval) when b.eft <= ev.Engine.eft -> ()
                    | _ -> best := Some ev
                  done;
                  let bq =
                    match !best with
                    | Some b -> b.Engine.proc
                    | None -> assert false
                  in
                  (* replay the winning exploration, keeping its copies *)
                  let ev = explore engine sched plat g limit v bq in
                  Engine.commit engine ~task:v ev)
                order);
          (* duplication must never lose to plain single-copy HEFT *)
          let plain = Heft.schedule ~params plat g in
          if Schedule.makespan plain < Schedule.makespan sched then plain
          else sched)
