module Graph = Taskgraph.Graph

let levels g plat =
  let n = Graph.n_tasks g and p = Platform.p plat in
  let avg_link = Platform.avg_link_cost plat in
  let bil = Array.make_matrix n p 0. in
  (* Two smallest BIL values per task, to answer min over r <> q in O(1). *)
  let min1 = Array.make n 0.
  and arg1 = Array.make n 0
  and min2 = Array.make n 0. in
  let order = Graph.topological_order g in
  for i = n - 1 downto 0 do
    let v = order.(i) in
    for q = 0 to p - 1 do
      let downstream = ref 0. in
      Graph.iter_succ_edges g v ~f:(fun e ->
          let s = Graph.edge_dst g e in
          let remote =
            (if arg1.(s) <> q then min1.(s) else min2.(s))
            +. (Graph.edge_data g e *. avg_link)
          in
          let c = min bil.(s).(q) remote in
          if c > !downstream then downstream := c);
      bil.(v).(q) <- (Graph.weight g v *. Platform.cycle_time plat q) +. !downstream
    done;
    (* Refresh the two-minima cache for [v]. *)
    min1.(v) <- infinity;
    min2.(v) <- infinity;
    for q = 0 to p - 1 do
      if bil.(v).(q) < min1.(v) then begin
        min2.(v) <- min1.(v);
        min1.(v) <- bil.(v).(q);
        arg1.(v) <- q
      end
      else if bil.(v).(q) < min2.(v) then min2.(v) <- bil.(v).(q)
    done
  done;
  bil

let schedule ?(params = Params.default) plat g =
  Obs.Span.with_ "bil" @@ fun () ->
  let bil = levels g plat in
  let p = Platform.p plat in
  let priority =
    Array.init (Graph.n_tasks g) (fun v ->
        Array.fold_left min infinity bil.(v))
  in
  let handle engine v =
    let best = ref None in
    for q = 0 to p - 1 do
      let ev = Engine.evaluate engine ~task:v ~proc:q in
      let score = ev.Engine.est +. bil.(v).(q) in
      match !best with
      | Some (s, _) when s <= score -> ()
      | _ -> best := Some (score, ev)
    done;
    match !best with
    | Some (_, ev) -> Engine.commit engine ~task:v ev
    | None -> assert false
  in
  List_loop.run ~params ~priority ~handle plat g
