module Graph = Taskgraph.Graph

let bottom_up g ~task_cost ~edge_cost =
  let n = Graph.n_tasks g in
  let rank = Array.make n 0. in
  let order = Graph.topological_order g in
  for i = n - 1 downto 0 do
    let v = order.(i) in
    let best = ref 0. in
    Graph.iter_succ_edges g v ~f:(fun e ->
        let u = Graph.edge_dst g e in
        let c = edge_cost e +. rank.(u) in
        if c > !best then best := c);
    rank.(v) <- task_cost v +. !best
  done;
  rank

type averaging = Balanced | Arithmetic | Optimistic

let upward ?(averaging = Balanced) g plat =
  let avg_link = Platform.avg_link_cost plat in
  let task_cost =
    match averaging with
    | Balanced -> fun v -> Platform.avg_execution_time plat (Graph.weight g v)
    | Arithmetic ->
        let mean_ct =
          Prelude.Stats.mean (Array.to_list (Platform.cycle_times plat))
        in
        fun v -> Graph.weight g v *. mean_ct
    | Optimistic ->
        let tmin = Platform.min_cycle_time plat in
        fun v -> Graph.weight g v *. tmin
  in
  bottom_up g ~task_cost ~edge_cost:(fun e -> Graph.edge_data g e *. avg_link)

let downward g plat =
  let avg_link = Platform.avg_link_cost plat in
  let n = Graph.n_tasks g in
  let rank = Array.make n 0. in
  let order = Graph.topological_order g in
  Array.iter
    (fun v ->
      Graph.iter_pred_edges g v ~f:(fun e ->
          let u = Graph.edge_src g e in
          let c =
            rank.(u)
            +. Platform.avg_execution_time plat (Graph.weight g u)
            +. (Graph.edge_data g e *. avg_link)
          in
          if c > rank.(v) then rank.(v) <- c))
    order;
  rank

let upward_min g plat =
  let avg_link = Platform.avg_link_cost plat in
  let tmin = Platform.min_cycle_time plat in
  bottom_up g
    ~task_cost:(fun v -> Graph.weight g v *. tmin)
    ~edge_cost:(fun e -> Graph.edge_data g e *. avg_link)

let static_level g plat =
  bottom_up g
    ~task_cost:(fun v -> Platform.avg_execution_time plat (Graph.weight g v))
    ~edge_cost:(fun _ -> 0.)

let compare_priority ranks a b =
  match compare ranks.(b) ranks.(a) with 0 -> compare a b | c -> c

let priority_order ranks =
  let n = Array.length ranks in
  let idx = Array.init n (fun v -> v) in
  Array.sort
    (fun a b ->
      match Float.compare ranks.(b) ranks.(a) with
      | 0 -> Int.compare a b
      | c -> c)
    idx;
  let ord = Array.make n 0 in
  Array.iteri (fun pos v -> ord.(v) <- pos) idx;
  ord
