module Graph = Taskgraph.Graph
module Schedule = Sched.Schedule

let default_b plat =
  match Load_balance.perfect_chunk plat with
  | b -> b
  | exception Invalid_argument _ -> Platform.p plat

let quota_eps = 1e-9

(* The processor hosting every parent of [task], when unique; [None] for
   entry tasks or scattered parents. *)
let common_parent_proc sched g task =
  match Graph.preds g task with
  | [] -> None
  | first :: rest ->
      let q = Schedule.proc_of_exn sched first in
      if List.for_all (fun u -> Schedule.proc_of_exn sched u = q) rest then Some q
      else None

(* Processors [q] reachable at the price of exactly one communication:
   parents span several processors but only one parent edge crosses when
   the task runs on [q]. *)
let one_comm_procs sched g task =
  match Graph.preds g task with
  | [] | [ _ ] -> []
  | parents ->
      let procs = List.sort_uniq compare (List.map (Schedule.proc_of_exn sched) parents) in
      List.filter
        (fun q ->
          let crossing =
            Graph.fold_pred_edges g task ~init:0 ~f:(fun acc e ->
                if Schedule.proc_of_exn sched (Graph.edge_src g e) <> q then acc + 1
                else acc)
          in
          crossing = 1)
        procs

(* Map one chunk of independent ready tasks (already in priority order)
   onto [engine], honouring per-processor weight quotas in the scans. *)
let map_chunk ~scan engine g plat chunk =
  let sched = Engine.schedule engine in
  let p = Platform.p plat in
  let total = List.fold_left (fun acc v -> acc +. Graph.weight g v) 0. chunk in
  let quota = Array.init p (fun i -> Platform.balanced_fraction plat i *. total) in
  let load = Array.make p 0. in
  let fits q w = load.(q) +. w <= quota.(q) +. quota_eps in
  let place v q =
    Engine.schedule_on engine ~task:v ~proc:q;
    load.(q) <- load.(q) +. Graph.weight g v
  in
  (* [sieve f l] keeps the elements [f] declines, applying [f] strictly
     left to right (placements mutate state, so order matters). *)
  let sieve f l =
    List.rev (List.fold_left (fun acc v -> if f v then acc else v :: acc) [] l)
  in
  (* Step 1: zero-communication placements under quota. *)
  let rest =
    let placeable v =
      match common_parent_proc sched g v with
      | Some q when fits q (Graph.weight g v) ->
          place v q;
          true
      | Some _ | None -> false
    in
    sieve placeable chunk
  in
  (* Optional scan: single-communication placements under quota. *)
  let rest =
    match scan with
    | Params.Scan_zero_comm -> rest
    | Params.Scan_one_comm ->
        let placeable v =
          let candidates =
            List.filter (fun q -> fits q (Graph.weight g v)) (one_comm_procs sched g v)
          in
          match candidates with
          | [] -> false
          | cs ->
              let ev = Engine.best_proc_among engine ~task:v cs in
              Engine.commit engine ~task:v ev;
              load.(ev.proc) <- load.(ev.proc) +. Graph.weight g v;
              true
        in
        sieve placeable rest
  in
  (* Step 2: HEFT rule for whatever remains. *)
  List.iter
    (fun v ->
      let (_ : Engine.eval) = Engine.schedule_best engine ~task:v in
      ())
    rest

(* Reschedule variant: run the two scans on a scratch copy to learn the
   allocation, then commit chunk tasks for real in order of globally
   smallest finish time on their allocated processor.  The pending set is
   a flat (task, proc) table with alive flags — [Engine.best_pending]
   scans it in chunk order (in parallel under [eval_jobs]), which keeps
   the earliest-row tie-break of the original list walk. *)
let map_chunk_reschedule ~scan ~policy engine g plat chunk =
  let scratch_sched = Schedule.copy (Engine.schedule engine) in
  let scratch = Engine.create ~policy scratch_sched in
  map_chunk ~scan scratch g plat chunk;
  let tasks = Array.of_list chunk in
  let n = Array.length tasks in
  let procs = Array.map (Schedule.proc_of_exn scratch_sched) tasks in
  let alive = Array.make n true in
  for _ = 1 to n do
    match Engine.best_pending engine ~tasks ~procs ~alive with
    | None -> ()
    | Some (i, ev) ->
        Engine.commit engine ~task:tasks.(i) ev;
        alive.(i) <- false
  done

let schedule ?(params = Params.default) plat g =
  let { Params.model; policy; scan; reschedule; _ } = params in
  let b = match params.Params.b with Some b -> b | None -> default_b plat in
  if b < 1 then invalid_arg "Ilha.schedule: b < 1";
  Obs.Span.with_ "ilha" (fun () ->
      let sched = Schedule.create ~graph:g ~platform:plat ~model () in
      let engine =
        Engine.create ~policy ~eval_jobs:params.Params.eval_jobs sched
      in
      let rank = Obs.Span.with_ "rank" (fun () -> Ranking.upward g plat) in
      let ord = Ranking.priority_order rank in
      let ready = Prelude.Pqueue.Int_heap.create ~rank:ord () in
      let remaining = Array.init (Graph.n_tasks g) (Graph.in_degree g) in
      for v = 0 to Graph.n_tasks g - 1 do
        if remaining.(v) = 0 then Prelude.Pqueue.Int_heap.add ready v
      done;
      while not (Prelude.Pqueue.Int_heap.is_empty ready) do
        let chunk = ref [] in
        let len = ref 0 in
        while !len < b && not (Prelude.Pqueue.Int_heap.is_empty ready) do
          chunk := Prelude.Pqueue.Int_heap.pop_exn ready :: !chunk;
          incr len
        done;
        let chunk = List.rev !chunk in
        Obs.Span.with_ "chunk" (fun () ->
            if reschedule then map_chunk_reschedule ~scan ~policy engine g plat chunk
            else map_chunk ~scan engine g plat chunk);
        (* Newly ready tasks join the pool for the next chunk. *)
        List.iter
          (fun v ->
            Graph.iter_succ_edges g v ~f:(fun e ->
                let u = Graph.edge_dst g e in
                remaining.(u) <- remaining.(u) - 1;
                if remaining.(u) = 0 then Prelude.Pqueue.Int_heap.add ready u))
          chunk
      done;
      sched)
