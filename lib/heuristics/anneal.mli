(** Simulated annealing over allocations.

    A second §6-style improver, complementing {!Refine}'s hill climbing:
    anneal the allocation map [task -> processor], evaluating each
    candidate by rebuilding the schedule (priority order and greedy
    communication placement fixed, as in {!Refine.rebuild}).  Moves pick a
    random task and a random new processor; acceptance follows the
    Metropolis rule with a geometric cooling schedule.  Fully
    deterministic given the seed.

    Annealing explores worse intermediate allocations, so unlike pure hill
    climbing it can cross the valleys that one-port port contention
    creates (moving one task often requires moving a neighbourhood).  It
    costs one full rebuild per step — use on small/medium instances. *)

type params = {
  steps : int;  (** total proposals (default 400) *)
  initial_temperature : float;
      (** as a fraction of the initial makespan (default 0.05) *)
  cooling : float;  (** per-step geometric factor (default 0.99) *)
  seed : int;
}

val default_params : params

type result = {
  schedule : Sched.Schedule.t;
  initial_makespan : float;
  final_makespan : float;
  accepted : int;
  improved : int;  (** accepted moves that strictly improved the incumbent *)
  moves : (int * int * float) list;
      (** accepted moves in order: task, new processor, resulting
          makespan — the move trace the equivalence suite compares *)
}

(** [improve ?policy ?params sched] — anneal from the schedule's
    allocation.  The returned schedule is the best ever seen (never worse
    than the better of the input and its rebuild).

    Proposals are priced incrementally on a {!Prefix_replay} driver (one
    rollback + suffix replay per step instead of a full rebuild);
    results are bit-identical to {!Reference.improve}. *)
val improve : ?policy:Engine.policy -> ?params:params -> Sched.Schedule.t -> result

(** The original from-scratch annealer (one full rebuild per proposal),
    kept as the executable specification for [improve]. *)
module Reference : sig
  val improve :
    ?policy:Engine.policy -> ?params:params -> Sched.Schedule.t -> result
end
