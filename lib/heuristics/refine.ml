module Graph = Taskgraph.Graph
module Schedule = Sched.Schedule

type result = {
  schedule : Sched.Schedule.t;
  initial_makespan : float;
  final_makespan : float;
  accepted_moves : int;
  evaluations : int;
  moves : (int * int * float) list;
}

let rebuild ?(params = Params.default) ~alloc plat g =
  let handle engine v = Engine.schedule_on engine ~task:v ~proc:(alloc v) in
  List_loop.run ~params ~priority:(Ranking.upward g plat) ~handle plat g

(* The tasks defining the makespan: those finishing within epsilon of the
   last finish time (usually one exit task, possibly several). *)
let bottleneck_tasks sched =
  let g = Schedule.graph sched in
  let makespan = Schedule.makespan sched in
  List.filter
    (fun v ->
      Prelude.Stats.fequal (Schedule.finish_of_exn sched v) makespan)
    (List.init (Graph.n_tasks g) Fun.id)

(* Moving only the final task rarely helps (its predecessors are the real
   constraint), so the candidate set is the bottleneck tasks plus
   everything on a backward critical chain from them: repeatedly step to
   the predecessor (or same-processor forerunner) whose finish equals the
   task's start. *)
let candidate_tasks sched =
  let g = Schedule.graph sched in
  let seen = Hashtbl.create 32 in
  let rec chase v =
    if not (Hashtbl.mem seen v) then begin
      Hashtbl.add seen v ();
      let start = (Schedule.placement_exn sched v).Schedule.start in
      Graph.iter_pred_edges g v ~f:(fun e ->
          let u = Graph.edge_src g e in
          (* a predecessor is binding if the task starts right after the
             edge's data becomes available *)
          if Prelude.Stats.fequal (Schedule.edge_available_at sched ~edge:e) start
          then chase u)
    end
  in
  List.iter chase (bottleneck_tasks sched);
  Hashtbl.fold (fun v () acc -> v :: acc) seen [] |> List.sort compare

(* The from-scratch hill climber: every candidate move pays one full
   rebuild.  Kept verbatim as the executable specification — the test
   suite proves [improve] below replays its way to bit-identical results
   (same move trace, same counts, same final schedule). *)
module Reference = struct
  let improve ?policy ?(max_rounds = 3) ?(max_moves = 25) sched0 =
    let g = Schedule.graph sched0 in
    let plat = Schedule.platform sched0 in
    let model = Schedule.model sched0 in
    let p = Platform.p plat in
    let alloc = Array.init (Graph.n_tasks g) (fun v -> Schedule.proc_of_exn sched0 v) in
    let evaluations = ref 0 in
    let run () =
      incr evaluations;
      rebuild ~params:(Params.make ?policy ~model ()) ~alloc:(fun v -> alloc.(v)) plat g
    in
    let initial_makespan = Schedule.makespan sched0 in
    let best_sched = ref (run ()) in
    let best = ref (Schedule.makespan !best_sched) in
    if initial_makespan < !best then begin
      best_sched := sched0;
      best := initial_makespan
    end;
    let accepted = ref 0 in
    let moves = ref [] in
    let rounds_left = ref max_rounds in
    while !rounds_left > 0 && !accepted < max_moves do
      let improved_this_round = ref false in
      let candidates = candidate_tasks !best_sched in
      List.iter
        (fun v ->
          if !accepted < max_moves then begin
            let home = alloc.(v) in
            let best_move = ref None in
            for q = 0 to p - 1 do
              if q <> home then begin
                alloc.(v) <- q;
                let sched = run () in
                let m = Schedule.makespan sched in
                let better =
                  match !best_move with
                  | None -> m < !best -. 1e-9
                  | Some (m', _, _) -> m < m' -. 1e-9
                in
                if better then best_move := Some (m, q, sched)
              end
            done;
            match !best_move with
            | Some (m, q, sched) ->
                alloc.(v) <- q;
                best := m;
                best_sched := sched;
                incr accepted;
                moves := (v, q, m) :: !moves;
                improved_this_round := true
            | None -> alloc.(v) <- home
          end)
        candidates;
      if not !improved_this_round then decr rounds_left
    done;
    {
      schedule = !best_sched;
      initial_makespan;
      final_makespan = !best;
      accepted_moves = !accepted;
      evaluations = !evaluations;
      moves = List.rev !moves;
    }
end

(* The incremental climber: same control flow as {!Reference.improve},
   but candidate moves are priced by a {!Prefix_replay} driver — rewind
   to the moved task's decision position, replay the suffix — instead of
   a from-scratch rebuild.  Every comparison (and its epsilon) matches
   the reference line for line, which is what makes the two
   bit-identical. *)
let improve ?policy ?(max_rounds = 3) ?(max_moves = 25) sched0 =
  let g = Schedule.graph sched0 in
  let plat = Schedule.platform sched0 in
  let model = Schedule.model sched0 in
  let p = Platform.p plat in
  let alloc0 =
    Array.init (Graph.n_tasks g) (fun v -> Schedule.proc_of_exn sched0 v)
  in
  let evaluations = ref 1 (* the initial build *) in
  let d = Prefix_replay.create ?policy ~model ~alloc:alloc0 plat g in
  let initial_makespan = Schedule.makespan sched0 in
  let best = ref (Prefix_replay.makespan d) in
  (* When the input schedule beats its own rebuild, the input is the
     incumbent (and, if no move ever improves on it, the result). *)
  let use_input = ref false in
  if initial_makespan < !best then begin
    use_input := true;
    best := initial_makespan
  end;
  let accepted = ref 0 in
  let moves = ref [] in
  let rounds_left = ref max_rounds in
  while !rounds_left > 0 && !accepted < max_moves do
    let improved_this_round = ref false in
    let candidates =
      if !use_input then candidate_tasks sched0
      else candidate_tasks (Prefix_replay.schedule d)
    in
    List.iter
      (fun v ->
        if !accepted < max_moves then begin
          let home = Prefix_replay.alloc d v in
          let best_move = ref None in
          for q = 0 to p - 1 do
            if q <> home then begin
              Prefix_replay.set_alloc d v q;
              incr evaluations;
              let m = Prefix_replay.makespan d in
              let better =
                match !best_move with
                | None -> m < !best -. 1e-9
                | Some (m', _) -> m < m' -. 1e-9
              in
              if better then best_move := Some (m, q)
            end
          done;
          match !best_move with
          | Some (m, q) ->
              Prefix_replay.set_alloc d v q;
              best := m;
              use_input := false;
              incr accepted;
              moves := (v, q, m) :: !moves;
              improved_this_round := true
          | None -> Prefix_replay.set_alloc d v home
        end)
      candidates;
    if not !improved_this_round then decr rounds_left
  done;
  let schedule = if !use_input then sched0 else Prefix_replay.schedule d in
  {
    schedule;
    initial_makespan;
    final_makespan = !best;
    accepted_moves = !accepted;
    evaluations = !evaluations;
    moves = List.rev !moves;
  }
