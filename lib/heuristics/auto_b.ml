module Schedule = Sched.Schedule

type result = {
  best_b : int;
  best_makespan : float;
  trials : (int * float) list;
}

let candidates plat =
  let p = Platform.p plat in
  let m =
    match Load_balance.perfect_chunk plat with
    | m -> m
    | exception Invalid_argument _ -> 4 * p
  in
  let top = max m p in
  (* geometric ladder 1, 2, 4, ... plus the landmarks *)
  let rec ladder b acc = if b > top then acc else ladder (2 * b) (b :: acc) in
  List.sort_uniq compare (ladder 1 [ p; m; top; (m / 2) + 1 ] |> List.filter (fun b -> b >= 1))

let search ?(params = Params.default) plat g =
  let cands =
    match params.Params.candidates with
    | Some c -> List.sort_uniq compare c
    | None -> candidates plat
  in
  if cands = [] then invalid_arg "Auto_b.search: no candidates";
  let trials =
    List.map
      (fun b ->
        let sched = Ilha.schedule ~params:(Params.with_b params (Some b)) plat g in
        (b, Schedule.makespan sched))
      cands
  in
  let best_b, best_makespan =
    List.fold_left
      (fun (bb, bm) (b, m) -> if m < bm -. 1e-12 then (b, m) else (bb, bm))
      (List.hd trials) (List.tl trials)
  in
  { best_b; best_makespan; trials }

let schedule ?(params = Params.default) plat g =
  Obs.Span.with_ "ilha-auto" @@ fun () ->
  let r = search ~params plat g in
  Ilha.schedule ~params:(Params.with_b params (Some r.best_b)) plat g
