(** The incremental kernel behind the allocation improvers.

    A driver holds one schedule built with a {e forced} allocation in
    {!Refine.rebuild}'s fixed decision order (upward-rank Kahn drain,
    {!List_loop.decision_order}).  Changing task [v]'s processor marks
    the build dirty from [v]'s decision position; the next query rewinds
    the engine's commit log to that position ({!Engine.rewind}) and
    replays only the suffix.  Because the decision order is
    allocation-independent, the result is {e bit-identical} to a
    from-scratch rebuild of the same allocation — the property the
    [Refine]/[Anneal] Reference equivalence suite pins down.

    A move at decision position [k] therefore costs O(n - k) decisions
    instead of O(n), plus the rollback's O(work undone); on average half
    the schedule, and much less when the improver touches sink-side
    tasks.  The [rollbacks] / [replayed tasks] counters make the saving
    observable. *)

type t

(** [create ?policy ~model ~alloc plat g] builds the initial schedule for
    [alloc] (which is copied).  Equivalent to
    [Refine.rebuild ~alloc:(Array.get alloc)] — same model, policy,
    priority and decision order. *)
val create :
  ?policy:Engine.policy ->
  model:Commmodel.Comm_model.t ->
  alloc:int array ->
  Platform.t ->
  Taskgraph.Graph.t ->
  t

(** Current processor of [v] in the driver's allocation. *)
val alloc : t -> int -> int

(** A copy of the whole current allocation. *)
val alloc_array : t -> int array

(** [set_alloc t v q] moves task [v] to processor [q] in the allocation.
    O(1): the rebuild is deferred to the next {!schedule}/{!makespan}. *)
val set_alloc : t -> int -> int -> unit

(** The schedule of the current allocation, rebuilding the dirty suffix
    if needed.  The returned schedule is owned by the driver: it is
    mutated in place by later [set_alloc] + query cycles, so callers
    that need to keep it must {!Sched.Schedule.copy} it. *)
val schedule : t -> Sched.Schedule.t

(** Makespan of {!schedule}. *)
val makespan : t -> float
