(** Duplication-aware HEFT: HEFT's decision order, plus task duplication.

    For each task, every candidate processor is priced as in HEFT, then
    improved by {e duplicating} the task's critical remote predecessor
    onto the candidate whenever the extra copy strictly lowers the task's
    earliest finish time (repeated up to [max 1 params.dup_limit] times
    per decision) — the insertion-based duplication move of Wang–Sinnen's
    survey of duplication heuristics.  The winning candidate keeps its
    copies; losing candidates are rewound through the engine's commit
    log.  The result is compared against plain single-copy HEFT and the
    better of the two schedules is returned, so heft-dup never loses to
    HEFT.

    Duplication is port-regime only: under BSP or latency–overhead
    models this module falls back to {!Heft.schedule}.  Candidate
    evaluation is serial ([params.eval_jobs] is ignored). *)

(** [schedule ?params plat g] builds a complete valid schedule, possibly
    placing some tasks as several copies ({!Sched.Schedule.has_dups}).
    Reads [params.model], [params.policy], [params.averaging] and
    [params.dup_limit] (0 = one duplication per decision). *)
val schedule :
  ?params:Params.t -> Platform.t -> Taskgraph.Graph.t -> Sched.Schedule.t
