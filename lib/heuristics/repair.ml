module Graph = Taskgraph.Graph
module Schedule = Sched.Schedule

type result = {
  schedule : Sched.Schedule.t;
  crash_proc : int;
  crash_time : float;
  frozen : int;
  remapped : int list;
  nominal_makespan : float;
  repaired_makespan : float;
}

(* The suffix re-mapper shared by [crash] and the rolling-horizon online
   driver: HEFT-style Kahn loop over the [todo] set — upward-rank
   priority, earliest finish over [candidates], every decision floored —
   committed through the engine so the commit log stays rewindable. *)
let schedule_suffix ?(params = Params.default) ~floor ~candidates engine ~todo =
  let sched = Engine.schedule engine in
  let g = Schedule.graph sched in
  let plat = Schedule.platform sched in
  if candidates = [] then
    invalid_arg "Repair.schedule_suffix: no candidate processor";
  let n = Graph.n_tasks g in
  let ranks = Ranking.upward ~averaging:params.Params.averaging g plat in
  (* Int-keyed ready heap in [compare_priority] order — the same total
     order the old list fold selected by, without the O(ready²) scans. *)
  let ord = Ranking.priority_order ranks in
  let ready = Prelude.Pqueue.Int_heap.create ~rank:ord () in
  let remaining = Array.make n 0 in
  for v = 0 to n - 1 do
    if todo.(v) then begin
      let r =
        Graph.fold_pred_edges g v ~init:0 ~f:(fun acc e ->
            if todo.(Graph.edge_src g e) then acc + 1 else acc)
      in
      remaining.(v) <- r;
      if r = 0 then Prelude.Pqueue.Int_heap.add ready v
    end
  done;
  let remapped = ref [] in
  while not (Prelude.Pqueue.Int_heap.is_empty ready) do
    let task = Prelude.Pqueue.Int_heap.pop_exn ready in
    let ev = Engine.best_proc_among ~floor engine ~task candidates in
    Engine.commit engine ~task ev;
    Obs.Counters.repair ();
    remapped := task :: !remapped;
    Graph.iter_succ_edges g task ~f:(fun e ->
        let u = Graph.edge_dst g e in
        if todo.(u) then begin
          remaining.(u) <- remaining.(u) - 1;
          if remaining.(u) = 0 then Prelude.Pqueue.Int_heap.add ready u
        end)
  done;
  List.sort compare !remapped

(* Frozen tasks are closed under precedence: a predecessor of a task that
   started before [at] finished — hence started — even earlier, and a
   predecessor that ran on the dead processor finished before the
   successor started, i.e. before [at].  So replaying the frozen
   placements plus the communications feeding them is always a valid
   schedule prefix, and no re-mapped task ever precedes a frozen one. *)
let crash ?(params = Params.default) ?(dead = []) ~proc ~at sched =
  let g = Schedule.graph sched in
  let plat = Schedule.platform sched in
  let p = Platform.p plat in
  if proc < 0 || proc >= p then
    invalid_arg
      (Printf.sprintf "Repair.crash: processor %d out of range (platform has %d)"
         proc p);
  if at < 0. then invalid_arg "Repair.crash: negative crash time";
  if not (Schedule.all_placed sched) then
    invalid_arg "Repair.crash: schedule is not fully placed";
  let survivors =
    List.filter
      (fun q -> q <> proc && not (List.mem q dead))
      (List.init p Fun.id)
  in
  if survivors = [] then
    invalid_arg "Repair.crash: no surviving processor to re-map onto";
  let n = Graph.n_tasks g in
  let nominal_makespan = Schedule.makespan sched in
  let is_dead q = q = proc || List.mem q dead in
  (* A copy is lost when it had not started by the crash instant, or was
     mid-flight on a dead processor.  A task must be re-mapped only when
     {e every} copy is lost — a surviving duplicate satisfies the task. *)
  let copy_lost (c : Schedule.placement) =
    c.start >= at || (is_dead c.proc && c.finish > at)
  in
  let remap = Array.make n false in
  if not (Schedule.has_dups sched) then
    for v = 0 to n - 1 do
      if
        Schedule.start_of_exn sched v >= at
        || (Schedule.proc_of_exn sched v = proc
           && Schedule.finish_of_exn sched v > at)
      then remap.(v) <- true
    done
  else
    for v = 0 to n - 1 do
      remap.(v) <- List.for_all copy_lost (Schedule.copies sched v)
    done;
  (* Keep the frozen prefix by copying the schedule and retracting the
     non-frozen suffix in place — the communications feeding re-mapped
     tasks and the re-mapped placements — instead of replaying every
     frozen decision into a fresh schedule.  The retained interval sets
     (and hence every re-mapping decision below) are identical either
     way; the cost drops from O(whole schedule) to
     O(frozen copy + work undone). *)
  let fresh = Schedule.copy sched in
  if not (Schedule.has_dups sched) then
    Schedule.filter_comms fresh ~keep:(fun (c : Schedule.comm) ->
        not remap.(Graph.edge_dst g c.edge))
  else begin
    (* Copy-set schedules drop whole provenance chains: a chain is dead
       when its destination task is re-mapped, or when the copy it feeds
       or the copy it departs from is lost. *)
    let lost_on ~task ~p =
      match Schedule.copy_on fresh ~task ~proc:p with
      | Some c -> copy_lost c
      | None -> true
    in
    let m = Schedule.n_comms fresh in
    let keep = Array.make m true in
    let i = ref 0 in
    while !i < m do
      let first = !i in
      incr i;
      while !i < m && not (Schedule.comm_head_at fresh !i) do
        incr i
      done;
      let h0 = Schedule.comm_at fresh first in
      let hk = Schedule.comm_at fresh (!i - 1) in
      let u = Graph.edge_src g h0.Schedule.edge in
      let v = Graph.edge_dst g h0.Schedule.edge in
      let dead_chain =
        remap.(v)
        || lost_on ~task:v ~p:hk.Schedule.dst_proc
        || lost_on ~task:u ~p:h0.Schedule.src_proc
      in
      if dead_chain then
        for j = first to !i - 1 do
          keep.(j) <- false
        done
    done;
    Schedule.filter_commsi fresh ~keep:(fun j _ -> keep.(j))
  end;
  for v = 0 to n - 1 do
    if remap.(v) then begin
      List.iter
        (fun (c : Schedule.placement) ->
          Schedule.unplace_copy fresh ~task:v ~proc:c.proc)
        (Schedule.dup_copies fresh v);
      Schedule.unplace_task fresh v
    end
    else
      List.iter
        (fun (c : Schedule.placement) ->
          if copy_lost c then Schedule.unplace_copy fresh ~task:v ~proc:c.proc)
        (Schedule.copies fresh v)
  done;
  (* Re-map the rest HEFT-style onto the survivors, every new decision
     floored at the crash instant. *)
  let engine = Engine.create ~policy:params.Params.policy fresh in
  let remapped =
    schedule_suffix ~params ~floor:at ~candidates:survivors engine ~todo:remap
  in
  {
    schedule = fresh;
    crash_proc = proc;
    crash_time = at;
    frozen = n - List.length remapped;
    remapped;
    nominal_makespan;
    repaired_makespan = Schedule.makespan fresh;
  }

let pp_result fmt r =
  Format.fprintf fmt
    "@[<v>crash:            proc %d @@ %g@,\
     frozen tasks:     %d@,\
     re-mapped tasks:  %d@,\
     nominal makespan: %g@,\
     repaired makespan:%g (+%.1f%%)@]"
    r.crash_proc r.crash_time r.frozen
    (List.length r.remapped)
    r.nominal_makespan r.repaired_makespan
    (if r.nominal_makespan > 0. then
       (r.repaired_makespan -. r.nominal_makespan) /. r.nominal_makespan *. 100.
     else 0.)
