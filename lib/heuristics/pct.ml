let schedule ?(params = Params.default) plat g =
  Obs.Span.with_ "pct" @@ fun () ->
  List_loop.run ~params ~priority:(Ranking.upward_min g plat) plat g
