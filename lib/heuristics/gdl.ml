module Graph = Taskgraph.Graph
module Schedule = Sched.Schedule

let schedule ?(params = Params.default) plat g =
  Obs.Span.with_ "gdl" @@ fun () ->
  let sl = Ranking.static_level g plat in
  let p = Platform.p plat in
  let sched = Schedule.create ~graph:g ~platform:plat ~model:params.Params.model () in
  let engine = Engine.create ~policy:params.Params.policy sched in
  let remaining = Array.init (Graph.n_tasks g) (Graph.in_degree g) in
  let ready = ref [] in
  for v = Graph.n_tasks g - 1 downto 0 do
    if remaining.(v) = 0 then ready := v :: !ready
  done;
  let delta v q =
    Platform.avg_execution_time plat (Graph.weight g v)
    -. (Graph.weight g v *. Platform.cycle_time plat q)
  in
  while !ready <> [] do
    (* Highest dynamic level among all (ready task, processor) pairs; ties
       break towards the smaller task id, then processor index, because we
       scan in that order with strict improvement. *)
    let best = ref None in
    List.iter
      (fun v ->
        for q = 0 to p - 1 do
          let ev = Engine.evaluate engine ~task:v ~proc:q in
          let dl = sl.(v) -. ev.Engine.est +. delta v q in
          match !best with
          | Some (dl', _, _) when dl' >= dl -> ()
          | _ -> best := Some (dl, v, ev)
        done)
      (List.sort compare !ready);
    match !best with
    | None -> assert false
    | Some (_, v, ev) ->
        Engine.commit engine ~task:v ev;
        ready := List.filter (fun u -> u <> v) !ready;
        Graph.iter_succ_edges g v ~f:(fun e ->
            let u = Graph.edge_dst g e in
            remaining.(u) <- remaining.(u) - 1;
            if remaining.(u) = 0 then ready := u :: !ready)
  done;
  sched
