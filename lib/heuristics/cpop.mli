(** CPOP — Critical Path On a Processor (Topcuoglu, Hariri, Wu).

    One of the macro-dataflow baselines the paper's ILHA was compared
    against (§4.2, via its reference [3]); reimplemented from the original
    description and additionally usable under the one-port model through
    the shared engine.

    Priority of a task is [upward + downward] rank; the tasks of maximal
    priority form a critical path, which is pinned in its entirety to the
    single processor minimising the path's execution time.  Non-critical
    tasks follow HEFT's earliest-finish-time rule. *)

val schedule :
  ?params:Params.t -> Platform.t -> Taskgraph.Graph.t -> Sched.Schedule.t
