type scheduler =
  Params.t -> Platform.t -> Taskgraph.Graph.t -> Sched.Schedule.t

type entry = {
  name : string;
  description : string;
  scheduler : scheduler;
  scalable : bool;
}

let all =
  [
    {
      name = "heft";
      description = "Heterogeneous Earliest Finish Time (Topcuoglu et al.)";
      scheduler = (fun params -> Heft.schedule ~params);
      scalable = true;
    };
    {
      name = "ilha";
      description = "Iso-Level Heterogeneous Allocation (Beaumont et al.)";
      scheduler = (fun params -> Ilha.schedule ~params);
      scalable = true;
    };
    {
      name = "cpop";
      description = "Critical Path On a Processor (Topcuoglu et al.)";
      scheduler = (fun params -> Cpop.schedule ~params);
      scalable = true;
    };
    {
      name = "pct";
      description = "minimum Partial Completion Time priority (Maheswaran-Siegel)";
      scheduler = (fun params -> Pct.schedule ~params);
      scalable = true;
    };
    {
      name = "bil";
      description = "Best Imaginary Level (Oh-Ha)";
      scheduler = (fun params -> Bil.schedule ~params);
      scalable = true;
    };
    {
      name = "gdl";
      description = "Generalized Dynamic Level (Sih-Lee)";
      scheduler = (fun params -> Gdl.schedule ~params);
      scalable = false;
    };
    {
      name = "etf";
      description = "Earliest Task First (Hwang et al.)";
      scheduler = (fun params -> Etf.schedule ~params);
      scalable = false;
    };
    {
      name = "ilha-auto";
      description = "ILHA with automated chunk-size search";
      scheduler = (fun params -> Auto_b.schedule ~params);
      scalable = true;
    };
    {
      name = "heft-dup";
      description = "HEFT with task duplication (Wang-Sinnen style)";
      scheduler = (fun params -> Heft_dup.schedule ~params);
      scalable = true;
    };
  ]

let names = List.map (fun e -> e.name) all

let repair ?params ~proc ~at sched = Repair.crash ?params ~proc ~at sched

let find name =
  match List.find_opt (fun e -> e.name = name) all with
  | Some e -> e
  | None ->
      invalid_arg
        (Printf.sprintf "Registry.find: unknown heuristic %S (known: %s)" name
           (String.concat ", " names))
