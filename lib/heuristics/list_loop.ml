module Graph = Taskgraph.Graph
module Schedule = Sched.Schedule

let default_handle engine v =
  let (_ : Engine.eval) = Engine.schedule_best engine ~task:v in
  ()

(* The Kahn drain below visits tasks in an order that depends only on the
   graph and the priorities — never on where tasks end up.  Materializing
   it lets the prefix-replay improvers fix the decision order once and
   rebuild arbitrary suffixes of it. *)
let decision_order ~priority g =
  let n = Graph.n_tasks g in
  let ord = Ranking.priority_order priority in
  let ready = Prelude.Pqueue.Int_heap.create ~rank:ord () in
  let remaining = Array.init n (Graph.in_degree g) in
  for v = 0 to n - 1 do
    if remaining.(v) = 0 then Prelude.Pqueue.Int_heap.add ready v
  done;
  let order = Array.make n 0 in
  let k = ref 0 in
  let rec drain () =
    match Prelude.Pqueue.Int_heap.pop ready with
    | None -> ()
    | Some v ->
        order.(!k) <- v;
        incr k;
        Graph.iter_succ_edges g v ~f:(fun e ->
            let u = Graph.edge_dst g e in
            remaining.(u) <- remaining.(u) - 1;
            if remaining.(u) = 0 then Prelude.Pqueue.Int_heap.add ready u);
        drain ()
  in
  drain ();
  if !k <> n then invalid_arg "List_loop.decision_order: cyclic graph";
  order

let run ?(params = Params.default) ~priority ?(handle = default_handle) plat g =
  let sched =
    Schedule.create ~graph:g ~platform:plat ~model:params.Params.model ()
  in
  let engine =
    Engine.create ~policy:params.Params.policy
      ~eval_jobs:params.Params.eval_jobs sched
  in
  let order = decision_order ~priority g in
  Obs.Span.with_ "map" (fun () ->
      Array.iter
        (fun v -> Obs.Span.with_ "place" (fun () -> handle engine v))
        order);
  sched
