module Graph = Taskgraph.Graph
module Schedule = Sched.Schedule

let default_handle engine v =
  let (_ : Engine.eval) = Engine.schedule_best engine ~task:v in
  ()

let run ?(params = Params.default) ~priority ?(handle = default_handle) plat g =
  let sched =
    Schedule.create ~graph:g ~platform:plat ~model:params.Params.model ()
  in
  let engine = Engine.create ~policy:params.Params.policy sched in
  let ready = Prelude.Pqueue.create ~compare:(Ranking.compare_priority priority) in
  let remaining = Array.init (Graph.n_tasks g) (Graph.in_degree g) in
  for v = 0 to Graph.n_tasks g - 1 do
    if remaining.(v) = 0 then Prelude.Pqueue.add ready v
  done;
  let rec drain () =
    match Prelude.Pqueue.pop ready with
    | None -> ()
    | Some v ->
        Obs.Span.with_ "place" (fun () -> handle engine v);
        Graph.iter_succ_edges g v ~f:(fun e ->
            let u = Graph.edge_dst g e in
            remaining.(u) <- remaining.(u) - 1;
            if remaining.(u) = 0 then Prelude.Pqueue.add ready u);
        drain ()
  in
  Obs.Span.with_ "map" drain;
  sched
