type scan = Scan_zero_comm | Scan_one_comm

type t = {
  model : Commmodel.Comm_model.t;
  policy : Engine.policy;
  averaging : Ranking.averaging;
  b : int option;
  scan : scan;
  reschedule : bool;
  candidates : int list option;
}

let default =
  {
    model = Commmodel.Comm_model.one_port;
    policy = Engine.Insertion;
    averaging = Ranking.Balanced;
    b = None;
    scan = Scan_zero_comm;
    reschedule = false;
    candidates = None;
  }

let make ?(model = default.model) ?(policy = default.policy)
    ?(averaging = default.averaging) ?b ?(scan = default.scan)
    ?(reschedule = default.reschedule) ?candidates () =
  { model; policy; averaging; b; scan; reschedule; candidates }

let of_model model = { default with model }
let with_model t model = { t with model }
let with_policy t policy = { t with policy }
let with_averaging t averaging = { t with averaging }
let with_b t b = { t with b }
let with_scan t scan = { t with scan }
let with_reschedule t reschedule = { t with reschedule }

let to_string t =
  String.concat ","
    (List.concat
       [
         (if Commmodel.Comm_model.equal t.model default.model then []
          else [ Commmodel.Comm_model.name t.model ]);
         (match t.policy with Engine.Insertion -> [] | Engine.Append -> [ "append" ]);
         (match t.averaging with
         | Ranking.Balanced -> []
         | Ranking.Arithmetic -> [ "avg=arith" ]
         | Ranking.Optimistic -> [ "avg=opt" ]);
         (match t.b with Some b -> [ Printf.sprintf "b=%d" b ] | None -> []);
         (match t.scan with Scan_zero_comm -> [] | Scan_one_comm -> [ "scan=1comm" ]);
         (if t.reschedule then [ "resched" ] else []);
       ])
