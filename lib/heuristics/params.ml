type scan = Scan_zero_comm | Scan_one_comm

type t = {
  model : Commmodel.Comm_model.t;
  policy : Engine.policy;
  averaging : Ranking.averaging;
  b : int option;
  scan : scan;
  reschedule : bool;
  candidates : int list option;
  eval_jobs : int;
  dup_limit : int;
}

let default =
  {
    model = Commmodel.Comm_model.one_port;
    policy = Engine.Insertion;
    averaging = Ranking.Balanced;
    b = None;
    scan = Scan_zero_comm;
    reschedule = false;
    candidates = None;
    eval_jobs = 1;
    dup_limit = 0;
  }

let make ?(model = default.model) ?(policy = default.policy)
    ?(averaging = default.averaging) ?b ?(scan = default.scan)
    ?(reschedule = default.reschedule) ?candidates
    ?(eval_jobs = default.eval_jobs) ?(dup_limit = default.dup_limit) () =
  if eval_jobs < 1 then invalid_arg "Params.make: eval_jobs < 1";
  if dup_limit < 0 then invalid_arg "Params.make: dup_limit < 0";
  {
    model;
    policy;
    averaging;
    b;
    scan;
    reschedule;
    candidates;
    eval_jobs;
    dup_limit;
  }

let of_model model = { default with model }
let with_model t model = { t with model }
let with_policy t policy = { t with policy }
let with_averaging t averaging = { t with averaging }
let with_b t b = { t with b }
let with_scan t scan = { t with scan }
let with_reschedule t reschedule = { t with reschedule }

let with_eval_jobs t eval_jobs =
  if eval_jobs < 1 then invalid_arg "Params.with_eval_jobs: eval_jobs < 1";
  { t with eval_jobs }

let with_dup_limit t dup_limit =
  if dup_limit < 0 then invalid_arg "Params.with_dup_limit: dup_limit < 0";
  { t with dup_limit }

let to_string t =
  String.concat ","
    (List.concat
       [
         (if Commmodel.Comm_model.equal t.model default.model then []
          else [ Commmodel.Comm_model.name t.model ]);
         (match t.policy with Engine.Insertion -> [] | Engine.Append -> [ "append" ]);
         (match t.averaging with
         | Ranking.Balanced -> []
         | Ranking.Arithmetic -> [ "avg=arith" ]
         | Ranking.Optimistic -> [ "avg=opt" ]);
         (match t.b with Some b -> [ Printf.sprintf "b=%d" b ] | None -> []);
         (match t.scan with Scan_zero_comm -> [] | Scan_one_comm -> [ "scan=1comm" ]);
         (if t.reschedule then [ "resched" ] else []);
         (if t.dup_limit = 0 then []
          else [ Printf.sprintf "dup=%d" t.dup_limit ]);
       ])
