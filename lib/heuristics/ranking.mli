(** Task ranks over heterogeneous resources (§4.1).

    Path lengths mix computation and communication, so the paper averages
    both: a task of weight [w] counts as [p * w / sum(1/t_i)] (the time the
    whole platform needs per unit of balanced work) and an edge of volume
    [d] counts as [d * H] where [H] is the harmonic-average link cost.
    Communication costs are {e always} charged — the paper deliberately
    assumes communications cannot be avoided when ranking. *)

(** How to average a task's execution time over heterogeneous processors
    when computing ranks.  The paper (§4.1) derives {!Balanced} — the time
    per unit of perfectly balanced work, [p * w / Σ(1/t_i)], equivalent to
    the harmonic-mean cycle-time; the original HEFT paper uses the
    {!Arithmetic} mean; {!Optimistic} prices every task at the fastest
    processor.  The [ranking] experiment measures the difference. *)
type averaging =
  | Balanced  (** the paper's §4.1 rule (default) *)
  | Arithmetic  (** mean of [w * t_i] — classic HEFT *)
  | Optimistic  (** [w * min t_i] *)

(** [upward ?averaging g plat] — bottom levels: [bl(v) = w̄(v) + max over
    (v,u) of (c̄(v,u) + bl(u))], 0-based at exit tasks' own weight.  The
    HEFT/ILHA priority. *)
val upward : ?averaging:averaging -> Taskgraph.Graph.t -> Platform.t -> float array

(** [downward g plat] — top levels: longest averaged path ending strictly
    before [v]; entry tasks have 0.  Used by CPOP. *)
val downward : Taskgraph.Graph.t -> Platform.t -> float array

(** [upward_min g plat] — bottom levels charging computation at the fastest
    processor's cycle-time and no averaging on edges beyond [avg_link_cost];
    the "minimum partial completion time" static priority used by the PCT
    baseline. *)
val upward_min : Taskgraph.Graph.t -> Platform.t -> float array

(** [static_level g plat] — bottom levels ignoring communication costs
    entirely (GDL's static level). *)
val static_level : Taskgraph.Graph.t -> Platform.t -> float array

(** [compare_priority ranks a b] orders by decreasing rank, breaking ties by
    increasing task id — the deterministic order every list heuristic in
    this library uses. *)
val compare_priority : float array -> int -> int -> int

(** [priority_order ranks] maps each task to its position in the total
    order of {!compare_priority}: [ord.(v) < ord.(u)] iff
    [compare_priority ranks v u < 0].  Computed once (an [O(n log n)]
    index sort), it lets the ready set run on {!Prelude.Pqueue.Int_heap}
    with pure int comparisons — no float is re-boxed per push. *)
val priority_order : float array -> int array
