open Prelude
module Graph = Taskgraph.Graph
module Schedule = Sched.Schedule

type params = {
  steps : int;
  initial_temperature : float;
  cooling : float;
  seed : int;
}

let default_params =
  { steps = 400; initial_temperature = 0.05; cooling = 0.99; seed = 2002 }

type result = {
  schedule : Sched.Schedule.t;
  initial_makespan : float;
  final_makespan : float;
  accepted : int;
  improved : int;
}

let improve ?policy ?(params = default_params) sched0 =
  if params.steps < 0 then invalid_arg "Anneal.improve: negative steps";
  let g = Schedule.graph sched0 in
  let plat = Schedule.platform sched0 in
  let model = Schedule.model sched0 in
  let n = Graph.n_tasks g in
  let p = Platform.p plat in
  let rng = Rng.create ~seed:params.seed in
  let alloc = Array.init n (fun v -> Schedule.proc_of_exn sched0 v) in
  let rebuild () =
    Refine.rebuild
      ~params:(Params.make ?policy ~model ())
      ~alloc:(fun v -> alloc.(v))
      plat g
  in
  let initial_makespan = Schedule.makespan sched0 in
  let current_sched = ref (rebuild ()) in
  let current = ref (Schedule.makespan !current_sched) in
  let best_sched = ref !current_sched in
  let best = ref !current in
  if initial_makespan < !best then begin
    best_sched := sched0;
    best := initial_makespan
  end;
  let temperature = ref (params.initial_temperature *. initial_makespan) in
  let accepted = ref 0 and improved = ref 0 in
  if n > 0 && p > 1 then
    for _ = 1 to params.steps do
      let v = Rng.int rng n in
      let old_proc = alloc.(v) in
      let new_proc = (old_proc + 1 + Rng.int rng (p - 1)) mod p in
      alloc.(v) <- new_proc;
      let sched = rebuild () in
      let m = Schedule.makespan sched in
      let delta = m -. !current in
      let accept =
        delta <= 0.
        || (!temperature > 0. && Rng.float rng 1. < exp (-.delta /. !temperature))
      in
      if accept then begin
        incr accepted;
        current := m;
        current_sched := sched;
        if m < !best -. 1e-9 then begin
          best := m;
          best_sched := sched;
          incr improved
        end
      end
      else alloc.(v) <- old_proc;
      temperature := !temperature *. params.cooling
    done;
  {
    schedule = !best_sched;
    initial_makespan;
    final_makespan = !best;
    accepted = !accepted;
    improved = !improved;
  }
