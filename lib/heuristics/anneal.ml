open Prelude
module Graph = Taskgraph.Graph
module Schedule = Sched.Schedule

type params = {
  steps : int;
  initial_temperature : float;
  cooling : float;
  seed : int;
}

let default_params =
  { steps = 400; initial_temperature = 0.05; cooling = 0.99; seed = 2002 }

type result = {
  schedule : Sched.Schedule.t;
  initial_makespan : float;
  final_makespan : float;
  accepted : int;
  improved : int;
  moves : (int * int * float) list;
}

(* The from-scratch annealer: one full rebuild per proposal.  Kept
   verbatim as the executable specification for the incremental
   [improve] below — same RNG consumption, same acceptance rule, same
   epsilon, so the move traces are bit-identical. *)
module Reference = struct
  let improve ?policy ?(params = default_params) sched0 =
    if params.steps < 0 then invalid_arg "Anneal.improve: negative steps";
    let g = Schedule.graph sched0 in
    let plat = Schedule.platform sched0 in
    let model = Schedule.model sched0 in
    let n = Graph.n_tasks g in
    let p = Platform.p plat in
    let rng = Rng.create ~seed:params.seed in
    let alloc = Array.init n (fun v -> Schedule.proc_of_exn sched0 v) in
    let rebuild () =
      Refine.rebuild
        ~params:(Params.make ?policy ~model ())
        ~alloc:(fun v -> alloc.(v))
        plat g
    in
    let initial_makespan = Schedule.makespan sched0 in
    let current_sched = ref (rebuild ()) in
    let current = ref (Schedule.makespan !current_sched) in
    let best_sched = ref !current_sched in
    let best = ref !current in
    if initial_makespan < !best then begin
      best_sched := sched0;
      best := initial_makespan
    end;
    let temperature = ref (params.initial_temperature *. initial_makespan) in
    let accepted = ref 0 and improved = ref 0 in
    let moves = ref [] in
    if n > 0 && p > 1 then
      for _ = 1 to params.steps do
        let v = Rng.int rng n in
        let old_proc = alloc.(v) in
        let new_proc = (old_proc + 1 + Rng.int rng (p - 1)) mod p in
        alloc.(v) <- new_proc;
        let sched = rebuild () in
        let m = Schedule.makespan sched in
        let delta = m -. !current in
        let accept =
          delta <= 0.
          || (!temperature > 0. && Rng.float rng 1. < exp (-.delta /. !temperature))
        in
        if accept then begin
          incr accepted;
          current := m;
          current_sched := sched;
          moves := (v, new_proc, m) :: !moves;
          if m < !best -. 1e-9 then begin
            best := m;
            best_sched := sched;
            incr improved
          end
        end
        else alloc.(v) <- old_proc;
        temperature := !temperature *. params.cooling
      done;
    {
      schedule = !best_sched;
      initial_makespan;
      final_makespan = !best;
      accepted = !accepted;
      improved = !improved;
      moves = List.rev !moves;
    }
end

(* The incremental annealer: proposals are priced on a {!Prefix_replay}
   driver — rewind to the moved task's decision position, replay the
   suffix.  The best-ever allocation is remembered as an array (the
   driver's working schedule keeps moving), and the result schedule is
   materialized from it at the end. *)
let improve ?policy ?(params = default_params) sched0 =
  if params.steps < 0 then invalid_arg "Anneal.improve: negative steps";
  let g = Schedule.graph sched0 in
  let plat = Schedule.platform sched0 in
  let model = Schedule.model sched0 in
  let n = Graph.n_tasks g in
  let p = Platform.p plat in
  let rng = Rng.create ~seed:params.seed in
  let alloc0 = Array.init n (fun v -> Schedule.proc_of_exn sched0 v) in
  let d = Prefix_replay.create ?policy ~model ~alloc:alloc0 plat g in
  let initial_makespan = Schedule.makespan sched0 in
  let current = ref (Prefix_replay.makespan d) in
  let best = ref !current in
  let best_alloc = ref alloc0 in
  let use_input = ref false in
  if initial_makespan < !best then begin
    use_input := true;
    best := initial_makespan
  end;
  let temperature = ref (params.initial_temperature *. initial_makespan) in
  let accepted = ref 0 and improved = ref 0 in
  let moves = ref [] in
  if n > 0 && p > 1 then
    for _ = 1 to params.steps do
      let v = Rng.int rng n in
      let old_proc = Prefix_replay.alloc d v in
      let new_proc = (old_proc + 1 + Rng.int rng (p - 1)) mod p in
      Prefix_replay.set_alloc d v new_proc;
      let m = Prefix_replay.makespan d in
      let delta = m -. !current in
      let accept =
        delta <= 0.
        || (!temperature > 0. && Rng.float rng 1. < exp (-.delta /. !temperature))
      in
      if accept then begin
        incr accepted;
        current := m;
        moves := (v, new_proc, m) :: !moves;
        if m < !best -. 1e-9 then begin
          best := m;
          best_alloc := Prefix_replay.alloc_array d;
          use_input := false;
          incr improved
        end
      end
      else Prefix_replay.set_alloc d v old_proc;
      temperature := !temperature *. params.cooling
    done;
  let schedule =
    if !use_input then sched0
    else begin
      Array.iteri (fun v q -> Prefix_replay.set_alloc d v q) !best_alloc;
      Prefix_replay.schedule d
    end
  in
  {
    schedule;
    initial_makespan;
    final_makespan = !best;
    accepted = !accepted;
    improved = !improved;
    moves = List.rev !moves;
  }
