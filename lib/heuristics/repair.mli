(** Online repair after a fail-stop processor crash.

    When processor [q] dies at time [t] mid-execution, the decisions the
    platform has already acted on cannot be taken back — but everything
    that has not started yet is still ours to re-plan.  [crash] splits
    the nominal schedule accordingly:

    - {e frozen}: every task that started before [t] on a survivor, and
      every task on [q] that {e finished} by [t].  The crash model is
      fail-stop of the compute element only: ports and memory survive,
      so outputs completed on [q] before the crash remain fetchable
      through its ports (checkpoint-on-completion — see
      [doc/robustness.md]).  Frozen placements are replayed verbatim,
      along with the communications feeding them.
    - {e re-mapped}: every task that had not started by [t], plus the
      task running on [q] at the crash instant (its work is lost).
      These are re-scheduled HEFT-style — upward-rank priority order,
      earliest finish time over the {e surviving} processors, same
      one-port engine as the original run ({!Engine}), honouring
      [params] — with every new decision floored at [t].

    The frozen set is closed under precedence (a predecessor of a
    started task must have finished, hence started, earlier), so the
    replay is always a valid prefix and repair always succeeds on any
    valid schedule with at least two processors.

    Repair plans against the {e nominal} durations recorded in the
    schedule; re-executing the repaired schedule under
    [Simkit.Faulty_executor] with the same crash then completes, because
    every event either finishes by [t] or starts at or after [t] on a
    survivor. *)

type result = {
  schedule : Sched.Schedule.t;  (** the repaired schedule, fully placed *)
  crash_proc : int;
  crash_time : float;
  frozen : int;  (** tasks whose nominal decisions were kept *)
  remapped : int list;  (** tasks re-scheduled onto survivors, ascending *)
  nominal_makespan : float;
  repaired_makespan : float;
}

(** [crash ?params ?dead ~proc ~at sched] — repair [sched] (fully
    placed) after processor [proc] fails at time [at].  [params]
    supplies the engine policy and rank averaging for the re-mapping
    pass (default {!Params.default}); the communication model and
    execution-time rule are inherited from [sched].  [dead] lists
    further processors re-mapping must avoid (used when folding repairs
    over several crashes).  [sched] itself is not mutated.
    @raise Invalid_argument if [proc] is out of range, [at] is negative,
    [sched] is not fully placed, or the platform has no survivor. *)
val crash :
  ?params:Params.t ->
  ?dead:int list ->
  proc:int ->
  at:float ->
  Sched.Schedule.t ->
  result

(** [schedule_suffix ?params ~floor ~candidates engine ~todo] — the
    suffix re-mapper [crash] is built on, exposed for the rolling-horizon
    online driver ([lib/online]).  Schedules exactly the tasks with
    [todo.(v) = true] — which must be unplaced in the engine's schedule,
    with every predecessor either already placed or itself in [todo] —
    in upward-rank priority order, each onto its earliest-finish
    processor among [candidates], no event starting before [floor].
    Every decision goes through {!Engine.commit}, so the commit log
    stays rewindable, and bumps the [repairs] counter.  Returns the
    scheduled tasks in ascending order.
    @raise Invalid_argument if [candidates] is empty. *)
val schedule_suffix :
  ?params:Params.t ->
  floor:float ->
  candidates:int list ->
  Engine.t ->
  todo:bool array ->
  int list

val pp_result : Format.formatter -> result -> unit
