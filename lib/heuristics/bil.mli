(** BIL — Best Imaginary Level (Oh & Ha).

    Baseline from the paper's comparison set (§4.2).  The best imaginary
    level of a task on a processor is the optimistic time to finish the
    whole downstream graph when the task runs there:

    [BIL(v,q) = w(v) t_q + max over children s of
       min(BIL(s,q), min over r<>q of BIL(s,r) + c̄(v,s))]

    Tasks are ranked by their best (minimum over processors) imaginary
    level; the mapping picks the processor minimising [EST + BIL].
    Reimplemented from the original description and adapted to the one-port
    model via the shared engine. *)

val schedule :
  ?params:Params.t -> Platform.t -> Taskgraph.Graph.t -> Sched.Schedule.t

(** The BIL matrix [bil.(v).(q)], exposed for tests. *)
val levels : Taskgraph.Graph.t -> Platform.t -> float array array
