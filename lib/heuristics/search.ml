module Graph = Taskgraph.Graph
module Schedule = Sched.Schedule

let best_schedule ?(params = Params.default) plat g =
  let { Params.model; policy; _ } = params in
  let n = Graph.n_tasks g in
  if n > 8 then invalid_arg "Search.best_schedule: more than 8 tasks";
  let p = Platform.p plat in
  (* Start from HEFT so pruning has a good incumbent. *)
  let incumbent = ref (Heft.schedule ~params plat g) in
  let incumbent_makespan = ref (Schedule.makespan !incumbent) in
  let rec explore sched remaining ready current_max =
    if ready = [] then begin
      if remaining = 0 && current_max < !incumbent_makespan then begin
        incumbent := sched;
        incumbent_makespan := current_max
      end
    end
    else
      List.iter
        (fun v ->
          for q = 0 to p - 1 do
            let sched' = Schedule.copy sched in
            let engine = Engine.create ~policy sched' in
            let ev = Engine.evaluate engine ~task:v ~proc:q in
            let current_max' = max current_max ev.Engine.eft in
            if current_max' < !incumbent_makespan then begin
              Engine.commit engine ~task:v ev;
              let ready' =
                List.filter (( <> ) v) ready
                @ List.filter
                    (fun u ->
                      (not (Schedule.is_placed sched' u))
                      && Graph.fold_pred_edges g u ~init:true ~f:(fun ok e ->
                             ok && Schedule.is_placed sched' (Graph.edge_src g e)))
                    (Graph.succs g v)
              in
              explore sched' (remaining - 1) ready' current_max'
            end
          done)
        ready
  in
  let sched0 = Schedule.create ~graph:g ~platform:plat ~model () in
  let ready0 = Graph.entry_tasks g in
  explore sched0 n ready0 0.;
  !incumbent

let best_makespan ?params plat g =
  Schedule.makespan (best_schedule ?params plat g)
