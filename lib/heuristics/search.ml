module Graph = Taskgraph.Graph
module Schedule = Sched.Schedule

let best_schedule ?(params = Params.default) plat g =
  let { Params.model; policy; _ } = params in
  let n = Graph.n_tasks g in
  if n > 10 then invalid_arg "Search.best_schedule: more than 10 tasks";
  let p = Platform.p plat in
  (* Start from HEFT so pruning has a good incumbent. *)
  let incumbent = ref (Heft.schedule ~params plat g) in
  let incumbent_makespan = ref (Schedule.makespan !incumbent) in
  (* One schedule and one engine for the whole search: descending an edge
     of the DFS tree commits a decision, returning retracts it through
     the engine's commit log — no per-node schedule copy. *)
  let sched = Schedule.create ~graph:g ~platform:plat ~model () in
  let engine = Engine.create ~policy sched in
  let rec explore remaining ready current_max =
    if ready = [] then begin
      if remaining = 0 && current_max < !incumbent_makespan then begin
        incumbent := Schedule.copy sched;
        incumbent_makespan := current_max
      end
    end
    else
      List.iter
        (fun v ->
          for q = 0 to p - 1 do
            let ev = Engine.evaluate engine ~task:v ~proc:q in
            let current_max' = max current_max ev.Engine.eft in
            if current_max' < !incumbent_makespan then begin
              let mark = Engine.n_commits engine in
              Engine.commit engine ~task:v ev;
              let ready' =
                List.filter (( <> ) v) ready
                @ List.filter
                    (fun u ->
                      (not (Schedule.is_placed sched u))
                      && Graph.fold_pred_edges g u ~init:true ~f:(fun ok e ->
                             ok && Schedule.is_placed sched (Graph.edge_src g e)))
                    (Graph.succs g v)
              in
              explore (remaining - 1) ready' current_max';
              Engine.rewind engine ~to_:mark
            end
            else Obs.Counters.search_pruned_node ()
          done)
        ready
  in
  explore n (Graph.entry_tasks g) 0.;
  !incumbent

let best_makespan ?params plat g =
  Schedule.makespan (best_schedule ?params plat g)
