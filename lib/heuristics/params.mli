(** The typed scheduler-parameter record every heuristic accepts.

    One value of {!t} carries everything a scheduler run depends on
    besides the platform and the graph: the communication model, the
    engine's slot-search policy, HEFT's rank-averaging rule, and ILHA's
    chunk size / scan / reschedule knobs.  Heuristics read the fields
    they care about and ignore the rest, so the registry exposes a
    single uniform scheduler type

    {[ Params.t -> Platform.t -> Taskgraph.Graph.t -> Sched.Schedule.t ]}

    with no per-heuristic escape hatches.  {!default} is the paper's
    setting (bi-directional one-port, insertion-based slots, balanced
    averaging, platform-default chunk); use {!make} or the [with_*]
    updaters to deviate. *)

(** ILHA's placement scans (§4.4): the paper's zero-communication scan
    alone, or followed by a scan accepting single-communication
    placements. *)
type scan = Scan_zero_comm | Scan_one_comm

type t = {
  model : Commmodel.Comm_model.t;  (** default [one_port] *)
  policy : Engine.policy;  (** default [Insertion] *)
  averaging : Ranking.averaging;
      (** HEFT's rank-averaging rule; default [Balanced] (§4.1) *)
  b : int option;
      (** ILHA chunk size; [None] = the platform's perfect-balance
          chunk ({!Ilha.default_b}) *)
  scan : scan;  (** default [Scan_zero_comm] *)
  reschedule : bool;  (** ILHA's §4.4 third step; default [false] *)
  candidates : int list option;
      (** ilha-auto's chunk ladder; [None] = {!Auto_b.candidates} *)
  eval_jobs : int;
      (** domains used to evaluate candidate processors inside one
          scheduling decision (default 1 = serial).  Placements are
          bit-identical at any value — the engine's parallel argmin
          reduces with the same index-ordered tie-break as the serial
          scan — so, like the sweep-level [--jobs], this knob is
          excluded from {!to_string} labels. *)
  dup_limit : int;
      (** maximum duplicate copies a duplication-aware heuristic may add
          per scheduling decision (default 0 = duplication off; heft-dup
          treats 0 as "one duplication per decision").  Ignored by the
          single-copy heuristics. *)
}

val default : t

(** [make ()] = {!default}; each argument overrides one field. *)
val make :
  ?model:Commmodel.Comm_model.t ->
  ?policy:Engine.policy ->
  ?averaging:Ranking.averaging ->
  ?b:int ->
  ?scan:scan ->
  ?reschedule:bool ->
  ?candidates:int list ->
  ?eval_jobs:int ->
  ?dup_limit:int ->
  unit ->
  t

val of_model : Commmodel.Comm_model.t -> t
val with_model : t -> Commmodel.Comm_model.t -> t
val with_policy : t -> Engine.policy -> t
val with_averaging : t -> Ranking.averaging -> t
val with_b : t -> int option -> t
val with_scan : t -> scan -> t
val with_reschedule : t -> bool -> t

(** @raise Invalid_argument when [eval_jobs < 1]. *)
val with_eval_jobs : t -> int -> t

(** @raise Invalid_argument when [dup_limit < 0]. *)
val with_dup_limit : t -> int -> t

(** Compact label of the non-default fields, e.g. ["b=4,scan=1comm"];
    [""] for {!default}.  Used in experiment rows and traces. *)
val to_string : t -> string
