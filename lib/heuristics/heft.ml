let schedule ?(params = Params.default) plat g =
  Obs.Span.with_ "heft" (fun () ->
      let priority =
        Obs.Span.with_ "rank" (fun () ->
            Ranking.upward ~averaging:params.Params.averaging g plat)
      in
      List_loop.run ~params ~priority plat g)
