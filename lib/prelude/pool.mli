(** Work-stealing domain pool for embarrassingly parallel sweeps.

    The evaluation grids of {!Experiments.Batch}, the Monte-Carlo
    replays of {!Simkit.Robustness} and the bench timing loops are all
    "run [n] independent cells" workloads.  [iter] fans a cell-index
    range out over OCaml 5 domains: each worker owns a deque of
    contiguous indices (one atomic int packing the [lo, hi) range, so a
    chunked front-take by the owner and a back-half steal by an idle
    thief are both single CAS operations), and the spawning domain
    participates as a worker, so [jobs = 1] never spawns a domain and
    degrades to the plain serial loop.

    {b Determinism.}  The pool schedules {e which domain} runs a cell,
    never {e what} a cell computes: callers index results by cell, and
    any per-cell randomness must come from a pre-split {!Rng} stream.
    Under that discipline the output is byte-identical for any [jobs]
    — the property the test harness pins down.

    {b Observability.}  {!Obs.Counters} accumulate in domain-local
    scratch; at the barrier every worker's snapshot is
    {!Obs.Counters.merge}d into the spawning domain, so [--stats]
    totals are independent of [jobs].  Spans ({!Obs.Span}) are only
    recorded by the main domain.

    {b Exceptions.}  The first exception raised by any worker is
    captured with its backtrace, the sweep is cancelled (workers stop
    at the next chunk boundary), and the exception is re-raised in the
    calling domain after the barrier. *)

(** Default job count: [Domain.recommended_domain_count ()], capped at
    8 — evaluation cells are cache-hungry and the grids are short
    enough that more domains only add merge latency. *)
val default_jobs : unit -> int

(** [iter ?jobs n f] runs [f 0 .. f (n-1)], sharded over [jobs] domains
    ([default_jobs ()] when omitted; clamped to 64).  [f] must be safe
    to run from any domain and must only write to cell-indexed state.
    @raise Invalid_argument if [jobs < 1], [n < 0] or [n >= 2^30]. *)
val iter : ?jobs:int -> int -> (int -> unit) -> unit

(** [map ?jobs f l] — parallel [List.map f l]; order is preserved and
    worker exceptions propagate. *)
val map : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list

(** [map_array ?jobs f a] — parallel [Array.map f a]. *)
val map_array : ?jobs:int -> ('a -> 'b) -> 'a array -> 'b array

(** Persistent helper team for fine-grained parallel regions.

    {!iter} spawns domains per call — fine for sweeps, prohibitive inside
    a scheduler decision.  A team parks long-lived helper domains on a
    condition variable; {!Team.run} publishes an index range, wakes them,
    and waits at a barrier while the caller participates as worker 0.

    The split is {e static}: worker [k] of [w] owns
    [\[k*n/w, (k+1)*n/w)], so which worker computes an index depends only
    on [(jobs, n)] — callers that write results into cell-indexed slots
    get byte-identical output at any team size.  Helper counter
    increments are merged into the caller's domain at the barrier. *)
module Team : sig
  type t

  (** [create ~helpers] spawns [helpers] parked domains (the caller makes
      it [helpers + 1] workers).
      @raise Invalid_argument on a negative count. *)
  val create : helpers:int -> t

  (** Workers available including the caller: [helpers + 1]. *)
  val size : t -> int

  (** [run t ~jobs ~n f] applies [f ~worker i] for [i] in [0, n), sharded
      statically over [min jobs (size t)] workers; [worker] is the worker
      index (0 = caller), which callers use to select per-worker scratch.
      Serial (caller-only) when the effective worker count is 1.  The
      first exception from any worker is re-raised after the barrier.
      Not reentrant: [f] must not call [run] on the same team. *)
  val run : t -> jobs:int -> n:int -> (worker:int -> int -> unit) -> unit

  (** [stop t] wakes and joins every helper; further [run]s are an
      error. *)
  val stop : t -> unit

  (** [try_acquire_shared ~jobs] — the process-wide team, grown to at
      least [jobs] workers on first use ([None] when [jobs <= 1] after
      clamping, or when the team is already held by another region —
      callers then run serially, which computes the same answer).  Pair
      with {!release_shared}. *)
  val try_acquire_shared : jobs:int -> t option

  val release_shared : t -> unit
end
