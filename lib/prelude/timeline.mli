(** Busy-interval timelines with earliest-gap search.

    A timeline records the busy intervals of one resource (a processor's
    compute unit, its send port, or its receive port) as a sorted sequence
    of disjoint half-open intervals [[start, finish)].  Two queries drive
    all scheduling decisions in this library:

    - {!earliest_gap}: the earliest start time [>= after] at which the
      resource is continuously free for [duration] time units — the
      insertion-based slot search used by HEFT-style list scheduling;
    - {!earliest_gap_joint}: the same over the {e union} of several
      timelines, which is exactly the one-port constraint of the paper
      (§4.3): a message from [Pq] to [Pr] needs a common free interval of
      [Pq]'s send port and [Pr]'s receive port.

    Both queries accept [extra] busy intervals so that a heuristic can
    evaluate a candidate placement (including the communications it would
    trigger) without mutating any committed state. *)

type t

val create : unit -> t

(** [add t ~start ~finish] marks [[start, finish)] busy.
    @raise Invalid_argument if [finish < start] or the interval overlaps an
    existing busy interval (touching endpoints are allowed).  Zero-length
    intervals are accepted and ignored. *)
val add : t -> start:float -> finish:float -> unit

(** [remove t ~start ~finish] deletes the busy interval [[start, finish)],
    the exact inverse of {!add} (a zero-length interval is a no-op, as in
    {!add}).
    @raise Invalid_argument if no busy interval equals [[start, finish)]. *)
val remove : t -> start:float -> finish:float -> unit

(** A position in the add journal, as returned by {!checkpoint}. *)
type mark

(** [checkpoint t] records the current state so a later {!rollback} can
    undo every {!add} performed after this point.  Checkpoints nest; the
    cost is O(1). *)
val checkpoint : t -> mark

(** The mark a freshly created timeline starts from: rolling back to
    [origin] empties a timeline that has only ever been {!add}ed to. *)
val origin : mark

(** [rollback t m] removes every interval added since [checkpoint] returned
    [m], in O(adds-since-mark · log n).  Marks taken after [m] are
    invalidated.  Intervals {!remove}d since the mark are {e not}
    resurrected — rollback undoes adds only.
    @raise Invalid_argument if [m] was invalidated by an earlier rollback
    to a point before it. *)
val rollback : t -> mark -> unit

val n_intervals : t -> int

(** Sorted busy intervals as [(start, finish)] pairs. *)
val intervals : t -> (float * float) list

(** [last_finish t] is the finish time of the last busy interval, or [0.]
    for an empty timeline. *)
val last_finish : t -> float

(** Total busy time. *)
val total_busy : t -> float

(** [earliest_gap t ~after ~duration] is the earliest [s >= after] such
    that [[s, s + duration)] intersects no busy interval.  [extra] adds
    tentative busy intervals (in any order; zero-length ones are ignored,
    as in {!add}) to the busy set.  A non-positive [duration] yields
    [after]. *)
val earliest_gap :
  ?extra:(float * float) list -> t -> after:float -> duration:float -> float

(** [earliest_gap_joint ts ~after ~duration] is the earliest gap in the
    union of the busy sets of all timelines in [ts] plus [extra].  Used for
    one-port communication slots (sender send-port + receiver recv-port,
    plus compute timelines under no-overlap variants). *)
val earliest_gap_joint :
  ?extra:(float * float) list ->
  t list ->
  after:float ->
  duration:float ->
  float

(** [earliest_gap_joint_arr ts ~k ~extra_s ~extra_f ~extra_len ~idx ~after
    ~duration] is the non-allocating core behind {!earliest_gap_joint}:
    the joint busy set is the first [k] timelines of [ts] plus the
    tentative intervals [[extra_s.(i), extra_f.(i))] for
    [i < extra_len].  The caller owns every array; [idx] is cursor
    scratch of length at least [k] whose contents are overwritten.

    Preconditions (unchecked — this is the hot path): extras are sorted
    by start and contain no zero-length intervals, [Array.length ts >= k].
    The scheduling engine's arena satisfies both by construction. *)
val earliest_gap_joint_arr :
  t array ->
  k:int ->
  extra_s:float array ->
  extra_f:float array ->
  extra_len:int ->
  idx:int array ->
  after:float ->
  duration:float ->
  float

(** [free_at t ~start ~finish] is [true] when [[start, finish)] intersects
    no busy interval — an independent check used by the validator. *)
val free_at : t -> start:float -> finish:float -> bool

val copy : t -> t
