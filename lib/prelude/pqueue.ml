type 'a t = { compare : 'a -> 'a -> int; heap : 'a Vec.t }

let create ~compare = { compare; heap = Vec.create () }
let length q = Vec.length q.heap
let is_empty q = Vec.is_empty q.heap

let swap h i j =
  let tmp = Vec.get h i in
  Vec.set h i (Vec.get h j);
  Vec.set h j tmp

let rec sift_up q i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if q.compare (Vec.get q.heap i) (Vec.get q.heap parent) < 0 then begin
      swap q.heap i parent;
      sift_up q parent
    end
  end

let rec sift_down q i =
  let n = Vec.length q.heap in
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < n && q.compare (Vec.get q.heap l) (Vec.get q.heap !smallest) < 0 then
    smallest := l;
  if r < n && q.compare (Vec.get q.heap r) (Vec.get q.heap !smallest) < 0 then
    smallest := r;
  if !smallest <> i then begin
    swap q.heap i !smallest;
    sift_down q !smallest
  end

let add q x =
  Vec.push q.heap x;
  sift_up q (Vec.length q.heap - 1)

let peek q = if is_empty q then None else Some (Vec.get q.heap 0)

let pop_exn q =
  if is_empty q then invalid_arg "Pqueue.pop_exn: empty";
  let top = Vec.get q.heap 0 in
  let tail = Vec.pop q.heap in
  if not (is_empty q) then begin
    Vec.set q.heap 0 tail;
    sift_down q 0
  end;
  top

let pop q = if is_empty q then None else Some (pop_exn q)

let of_list ~compare l =
  let q = create ~compare in
  List.iter (add q) l;
  q

let to_sorted_list q =
  let q' = { compare = q.compare; heap = Vec.copy q.heap } in
  let rec drain acc =
    match pop q' with None -> List.rev acc | Some x -> drain (x :: acc)
  in
  drain []

(* A monomorphic min-heap of small ints ordered by a precomputed integer
   key array: one int comparison per sift step, no closure call and no
   float (un)boxing.  The schedulers' ready sets live here — the key array
   is the task's position in the (priority desc, id asc) order, so the heap
   order is exactly [Ranking.compare_priority] at a fraction of the cost. *)
module Int_heap = struct
  type t = { rank : int array option; mutable heap : int array; mutable len : int }

  let create ?rank () = { rank; heap = Array.make 16 0; len = 0 }

  let length q = q.len
  let is_empty q = q.len = 0

  let key q v = match q.rank with None -> v | Some r -> r.(v)

  let add q x =
    if q.len = Array.length q.heap then begin
      let bigger = Array.make (2 * q.len) 0 in
      Array.blit q.heap 0 bigger 0 q.len;
      q.heap <- bigger
    end;
    let h = q.heap in
    (* Sift up in place: move the hole, write once. *)
    let kx = key q x in
    let i = ref q.len in
    q.len <- q.len + 1;
    let continue = ref true in
    while !continue && !i > 0 do
      let parent = (!i - 1) / 2 in
      if key q h.(parent) > kx then begin
        h.(!i) <- h.(parent);
        i := parent
      end
      else continue := false
    done;
    h.(!i) <- x

  let peek q = if q.len = 0 then None else Some q.heap.(0)

  let pop_exn q =
    if q.len = 0 then invalid_arg "Pqueue.Int_heap.pop_exn: empty";
    let h = q.heap in
    let top = h.(0) in
    q.len <- q.len - 1;
    if q.len > 0 then begin
      let x = h.(q.len) in
      let kx = key q x in
      let i = ref 0 in
      let continue = ref true in
      while !continue do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let smallest = ref !i and ks = ref kx in
        if l < q.len then begin
          let kl = key q h.(l) in
          if kl < !ks then begin
            smallest := l;
            ks := kl
          end
        end;
        if r < q.len then begin
          let kr = key q h.(r) in
          if kr < !ks then begin
            smallest := r;
            ks := kr
          end
        end;
        if !smallest = !i then begin
          h.(!i) <- x;
          continue := false
        end
        else begin
          h.(!i) <- h.(!smallest);
          i := !smallest
        end
      done
    end;
    top

  let pop q = if q.len = 0 then None else Some (pop_exn q)
end
