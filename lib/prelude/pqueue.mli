(** Binary-heap priority queue (min-heap under a user ordering).

    Used by the list schedulers for the ready set and by the event
    simulator for its event queue.  Ties are resolved by the comparison
    function itself, so callers embed their tie-breaking rule in [compare]
    (the schedulers compare [(priority, task id)] pairs to stay
    deterministic). *)

type 'a t

(** [create ~compare] is an empty queue; the minimum element according to
    [compare] is served first. *)
val create : compare:('a -> 'a -> int) -> 'a t

val length : 'a t -> int
val is_empty : 'a t -> bool
val add : 'a t -> 'a -> unit

(** [peek q] returns the minimum without removing it. *)
val peek : 'a t -> 'a option

(** [pop q] removes and returns the minimum. *)
val pop : 'a t -> 'a option

(** [pop_exn q]
    @raise Invalid_argument on an empty queue. *)
val pop_exn : 'a t -> 'a

val of_list : compare:('a -> 'a -> int) -> 'a list -> 'a t

(** [to_sorted_list q] drains a copy of [q] in priority order. *)
val to_sorted_list : 'a t -> 'a list

(** Monomorphic min-heap of non-negative ints ordered by a precomputed
    integer key array — one int comparison per sift step, no closure call,
    no float re-boxing per push.  This is the ready-set representation of
    the list schedulers at scale: keys come from
    [Ranking.priority_order], whose positions encode the full
    (priority desc, id asc) order, so popping reproduces
    [Ranking.compare_priority] bit for bit. *)
module Int_heap : sig
  type t

  (** [create ?rank ()] — elements [v] are served in increasing
      [rank.(v)]; without [rank], in increasing [v] itself.  The key array
      is read on every heap operation and must not be mutated while the
      heap is non-empty. *)
  val create : ?rank:int array -> unit -> t

  val length : t -> int
  val is_empty : t -> bool
  val add : t -> int -> unit
  val peek : t -> int option
  val pop : t -> int option

  (** @raise Invalid_argument on an empty heap. *)
  val pop_exn : t -> int
end
