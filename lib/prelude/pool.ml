(* Work-stealing domain pool for embarrassingly parallel index sweeps.

   Each worker owns a deque of contiguous cell indices, packed into one
   atomic int (lo in the high half, hi in the low half) so both the
   owner's chunked front-take and a thief's back-half steal are single
   CAS operations.  The spawning domain participates as worker 0, so
   [jobs = 1] (or a single cell) never spawns a domain and runs the
   plain serial loop — the determinism baseline the parallel paths are
   tested against. *)

(* 30 bits per half: sweeps are bounded well below 2^30 cells. *)
let half_bits = 30
let half_mask = (1 lsl half_bits) - 1
let max_cells = half_mask
let pack lo hi = (lo lsl half_bits) lor hi
let lo_of r = r lsr half_bits
let hi_of r = r land half_mask

let remaining d =
  let r = Atomic.get d in
  hi_of r - lo_of r

(* Owner side: take up to [chunk] indices from the front of [d].
   Returns the taken range as (lo, hi'), empty when lo >= hi'. *)
let rec take d ~chunk =
  let r = Atomic.get d in
  let lo = lo_of r and hi = hi_of r in
  if lo >= hi then (0, 0)
  else
    let hi' = min hi (lo + chunk) in
    if Atomic.compare_and_set d r (pack hi' hi) then (lo, hi')
    else take d ~chunk

(* Thief side: split off the back half of the victim's range.  Returns
   the stolen range, empty when there was nothing worth stealing. *)
let rec steal d =
  let r = Atomic.get d in
  let lo = lo_of r and hi = hi_of r in
  if hi - lo < 2 then (0, 0)
  else
    let mid = (lo + hi + 1) / 2 in
    if Atomic.compare_and_set d r (pack lo mid) then (mid, hi) else steal d

let default_jobs_cap = 8

let default_jobs () =
  max 1 (min default_jobs_cap (Domain.recommended_domain_count ()))

let clamp_jobs jobs =
  if jobs < 1 then invalid_arg "Pool.iter: jobs < 1";
  min jobs 64

let serial n f =
  for i = 0 to n - 1 do
    f i
  done

let parallel ~jobs n f =
  let w = min jobs n in
  (* Contiguous initial split keeps worker 0's share testbed-major-ish,
     but correctness never depends on who runs what: results land in
     caller-indexed slots and counters merge at the barrier. *)
  let deques =
    Array.init w (fun k -> Atomic.make (pack (k * n / w) ((k + 1) * n / w)))
  in
  (* Small chunks amortise the CAS without starving thieves. *)
  let chunk = max 1 (n / (w * 8)) in
  let failure = Atomic.make None in
  let stop = Atomic.make false in
  let record_failure exn bt =
    (* Keep the first failure; later ones lose the race and are dropped. *)
    ignore (Atomic.compare_and_set failure None (Some (exn, bt)) : bool);
    Atomic.set stop true
  in
  let run_range lo hi =
    let i = ref lo in
    (try
       while !i < hi && not (Atomic.get stop) do
         f !i;
         incr i
       done
     with exn -> record_failure exn (Printexc.get_raw_backtrace ()));
    Atomic.get stop
  in
  let worker me () =
    let own = deques.(me) in
    let rec loop () =
      let lo, hi = take own ~chunk in
      if lo < hi then begin
        if not (run_range lo hi) then loop ()
      end
      else begin
        (* Own deque drained: steal from the most loaded victim. *)
        let victim = ref (-1) and best = ref 0 in
        for k = 0 to w - 1 do
          if k <> me then begin
            let r = remaining deques.(k) in
            if r > !best then begin
              best := r;
              victim := k
            end
          end
        done;
        if !victim >= 0 && not (Atomic.get stop) then begin
          let lo, hi = steal deques.(!victim) in
          if lo < hi then begin
            (* Adopt the loot as our own deque, keep the first chunk. *)
            let hi' = min hi (lo + chunk) in
            Atomic.set own (pack hi' hi);
            if not (run_range lo hi') then loop ()
          end
          else loop ()
        end
        (* No stealable work left anywhere: taken chunks are no longer
           visible in any deque, so no new work can appear — done. *)
      end
    in
    loop ();
    (* Hand this worker's counter increments back to the spawner; the
       merge at the barrier makes totals independent of the sharding. *)
    Obs.Counters.snapshot ()
  in
  let spawned =
    Array.init (w - 1) (fun k -> Domain.spawn (worker (k + 1)))
  in
  (* The spawning domain is worker 0; its counters need no merge. *)
  let _ = worker 0 () in
  Array.iter
    (fun d -> Obs.Counters.merge (Domain.join d))
    spawned;
  match Atomic.get failure with
  | Some (exn, bt) -> Printexc.raise_with_backtrace exn bt
  | None -> ()

let iter ?jobs n f =
  if n < 0 then invalid_arg "Pool.iter: negative count";
  if n > max_cells then invalid_arg "Pool.iter: more than 2^30 cells";
  let jobs = clamp_jobs (match jobs with Some j -> j | None -> default_jobs ()) in
  if jobs = 1 || n <= 1 then serial n f else parallel ~jobs n f

let map_array ?jobs f a =
  let n = Array.length a in
  if n = 0 then [||]
  else begin
    let out = Array.make n None in
    iter ?jobs n (fun i -> out.(i) <- Some (f a.(i)));
    Array.map
      (function
        | Some y -> y
        | None -> assert false (* iter returned, so every slot is filled *))
      out
  end

let map ?jobs f l = Array.to_list (map_array ?jobs f (Array.of_list l))
