(* Work-stealing domain pool for embarrassingly parallel index sweeps.

   Each worker owns a deque of contiguous cell indices, packed into one
   atomic int (lo in the high half, hi in the low half) so both the
   owner's chunked front-take and a thief's back-half steal are single
   CAS operations.  The spawning domain participates as worker 0, so
   [jobs = 1] (or a single cell) never spawns a domain and runs the
   plain serial loop — the determinism baseline the parallel paths are
   tested against. *)

(* 30 bits per half: sweeps are bounded well below 2^30 cells. *)
let half_bits = 30
let half_mask = (1 lsl half_bits) - 1
let max_cells = half_mask
let pack lo hi = (lo lsl half_bits) lor hi
let lo_of r = r lsr half_bits
let hi_of r = r land half_mask

let remaining d =
  let r = Atomic.get d in
  hi_of r - lo_of r

(* Owner side: take up to [chunk] indices from the front of [d].
   Returns the taken range as (lo, hi'), empty when lo >= hi'. *)
let rec take d ~chunk =
  let r = Atomic.get d in
  let lo = lo_of r and hi = hi_of r in
  if lo >= hi then (0, 0)
  else
    let hi' = min hi (lo + chunk) in
    if Atomic.compare_and_set d r (pack hi' hi) then (lo, hi')
    else take d ~chunk

(* Thief side: split off the back half of the victim's range.  Returns
   the stolen range, empty when there was nothing worth stealing. *)
let rec steal d =
  let r = Atomic.get d in
  let lo = lo_of r and hi = hi_of r in
  if hi - lo < 2 then (0, 0)
  else
    let mid = (lo + hi + 1) / 2 in
    if Atomic.compare_and_set d r (pack lo mid) then (mid, hi) else steal d

let default_jobs_cap = 8

let default_jobs () =
  max 1 (min default_jobs_cap (Domain.recommended_domain_count ()))

let clamp_jobs jobs =
  if jobs < 1 then invalid_arg "Pool.iter: jobs < 1";
  min jobs 64

let serial n f =
  for i = 0 to n - 1 do
    f i
  done

let parallel ~jobs n f =
  let w = min jobs n in
  (* Contiguous initial split keeps worker 0's share testbed-major-ish,
     but correctness never depends on who runs what: results land in
     caller-indexed slots and counters merge at the barrier. *)
  let deques =
    Array.init w (fun k -> Atomic.make (pack (k * n / w) ((k + 1) * n / w)))
  in
  (* Small chunks amortise the CAS without starving thieves. *)
  let chunk = max 1 (n / (w * 8)) in
  let failure = Atomic.make None in
  let stop = Atomic.make false in
  let record_failure exn bt =
    (* Keep the first failure; later ones lose the race and are dropped. *)
    ignore (Atomic.compare_and_set failure None (Some (exn, bt)) : bool);
    Atomic.set stop true
  in
  let run_range lo hi =
    let i = ref lo in
    (try
       while !i < hi && not (Atomic.get stop) do
         f !i;
         incr i
       done
     with exn -> record_failure exn (Printexc.get_raw_backtrace ()));
    Atomic.get stop
  in
  let worker me () =
    let own = deques.(me) in
    let rec loop () =
      let lo, hi = take own ~chunk in
      if lo < hi then begin
        if not (run_range lo hi) then loop ()
      end
      else begin
        (* Own deque drained: steal from the most loaded victim. *)
        let victim = ref (-1) and best = ref 0 in
        for k = 0 to w - 1 do
          if k <> me then begin
            let r = remaining deques.(k) in
            if r > !best then begin
              best := r;
              victim := k
            end
          end
        done;
        if !victim >= 0 && not (Atomic.get stop) then begin
          let lo, hi = steal deques.(!victim) in
          if lo < hi then begin
            (* Adopt the loot as our own deque, keep the first chunk. *)
            let hi' = min hi (lo + chunk) in
            Atomic.set own (pack hi' hi);
            if not (run_range lo hi') then loop ()
          end
          else loop ()
        end
        (* No stealable work left anywhere: taken chunks are no longer
           visible in any deque, so no new work can appear — done. *)
      end
    in
    loop ();
    (* Hand this worker's counter increments back to the spawner; the
       merge at the barrier makes totals independent of the sharding. *)
    Obs.Counters.snapshot ()
  in
  let spawned =
    Array.init (w - 1) (fun k -> Domain.spawn (worker (k + 1)))
  in
  (* The spawning domain is worker 0; its counters need no merge. *)
  let _ = worker 0 () in
  Array.iter
    (fun d -> Obs.Counters.merge (Domain.join d))
    spawned;
  match Atomic.get failure with
  | Some (exn, bt) -> Printexc.raise_with_backtrace exn bt
  | None -> ()

let iter ?jobs n f =
  if n < 0 then invalid_arg "Pool.iter: negative count";
  if n > max_cells then invalid_arg "Pool.iter: more than 2^30 cells";
  let jobs = clamp_jobs (match jobs with Some j -> j | None -> default_jobs ()) in
  if jobs = 1 || n <= 1 then serial n f else parallel ~jobs n f

let map_array ?jobs f a =
  let n = Array.length a in
  if n = 0 then [||]
  else begin
    let out = Array.make n None in
    iter ?jobs n (fun i -> out.(i) <- Some (f a.(i)));
    Array.map
      (function
        | Some y -> y
        | None -> assert false (* iter returned, so every slot is filled *))
      out
  end

let map ?jobs f l = Array.to_list (map_array ?jobs f (Array.of_list l))

(* Persistent helper team for fine-grained parallelism.

   [iter] spawns domains per call, which is fine for sweeps that run for
   milliseconds but prohibitive inside a scheduler decision that takes
   microseconds.  A [Team.t] parks [helpers] long-lived domains on a
   condition variable; [run] publishes a job (an index range and a
   worker-indexed function), wakes them, and waits at a barrier.  The
   split is static — worker [k] of [w] owns [k*n/w, (k+1)*n/w) — so which
   worker computes which index is a pure function of [(jobs, n)]: callers
   that index results by cell get byte-identical output at any team size,
   the same contract as [iter].

   Counter increments made by helpers are snapshotted per run and merged
   into the caller's domain at the barrier. *)
module Team = struct
  type t = {
    helpers : int;
    mutex : Mutex.t;
    work_ready : Condition.t;
    work_done : Condition.t;
    (* Protected by [mutex].  [epoch] increments once per published job;
       helpers idle until they see a fresh epoch. *)
    mutable epoch : int;
    mutable active : int; (* helpers participating in the current job *)
    mutable job_n : int;
    mutable job_w : int;
    mutable job_f : worker:int -> int -> unit;
    mutable pending : int;
    mutable failure : (exn * Printexc.raw_backtrace) option;
    snaps : Obs.Counters.snapshot array;
    mutable stopped : bool;
    mutable domains : unit Domain.t array;
  }

  let size t = t.helpers + 1

  let worker_range ~n ~w k = (k * n / w, (k + 1) * n / w)

  let helper_loop t me () =
    let seen = ref 0 in
    let running = ref true in
    while !running do
      Mutex.lock t.mutex;
      while t.epoch = !seen && not t.stopped do
        Condition.wait t.work_ready t.mutex
      done;
      if t.stopped then begin
        Mutex.unlock t.mutex;
        running := false
      end
      else begin
        seen := t.epoch;
        let active = t.active
        and n = t.job_n
        and w = t.job_w
        and f = t.job_f in
        Mutex.unlock t.mutex;
        if me < active then begin
          Obs.Counters.reset ();
          (* Helper [me] is worker [me + 1]; the caller is worker 0. *)
          let lo, hi = worker_range ~n ~w (me + 1) in
          (try
             for i = lo to hi - 1 do
               f ~worker:(me + 1) i
             done
           with exn ->
             let bt = Printexc.get_raw_backtrace () in
             Mutex.lock t.mutex;
             if t.failure = None then t.failure <- Some (exn, bt);
             Mutex.unlock t.mutex);
          t.snaps.(me) <- Obs.Counters.snapshot ();
          Mutex.lock t.mutex;
          t.pending <- t.pending - 1;
          if t.pending = 0 then Condition.signal t.work_done;
          Mutex.unlock t.mutex
        end
      end
    done

  let create ~helpers =
    if helpers < 0 then invalid_arg "Pool.Team.create: negative helpers";
    let t =
      {
        helpers;
        mutex = Mutex.create ();
        work_ready = Condition.create ();
        work_done = Condition.create ();
        epoch = 0;
        active = 0;
        job_n = 0;
        job_w = 1;
        job_f = (fun ~worker:_ _ -> ());
        pending = 0;
        failure = None;
        snaps = Array.make (max helpers 1) Obs.Counters.zero;
        stopped = false;
        domains = [||];
      }
    in
    t.domains <- Array.init helpers (fun me -> Domain.spawn (helper_loop t me));
    t

  let stop t =
    Mutex.lock t.mutex;
    if not t.stopped then begin
      t.stopped <- true;
      Condition.broadcast t.work_ready
    end;
    Mutex.unlock t.mutex;
    Array.iter Domain.join t.domains;
    t.domains <- [||]

  let run t ~jobs ~n f =
    if n <= 0 then ()
    else begin
      let w = max 1 (min jobs (min n (t.helpers + 1))) in
      if w = 1 then
        for i = 0 to n - 1 do
          f ~worker:0 i
        done
      else begin
        Mutex.lock t.mutex;
        if t.stopped then begin
          Mutex.unlock t.mutex;
          invalid_arg "Pool.Team.run: stopped team"
        end;
        t.job_n <- n;
        t.job_w <- w;
        t.job_f <- f;
        t.active <- w - 1;
        t.pending <- w - 1;
        t.failure <- None;
        t.epoch <- t.epoch + 1;
        Condition.broadcast t.work_ready;
        Mutex.unlock t.mutex;
        (* The caller is worker 0. *)
        let caller_failure = ref None in
        (let lo, hi = worker_range ~n ~w 0 in
         try
           for i = lo to hi - 1 do
             f ~worker:0 i
           done
         with exn -> caller_failure := Some (exn, Printexc.get_raw_backtrace ()));
        Mutex.lock t.mutex;
        while t.pending > 0 do
          Condition.wait t.work_done t.mutex
        done;
        let helper_failure = t.failure in
        Mutex.unlock t.mutex;
        for me = 0 to w - 2 do
          Obs.Counters.merge t.snaps.(me)
        done;
        match (!caller_failure, helper_failure) with
        | Some (exn, bt), _ | None, Some (exn, bt) ->
            Printexc.raise_with_backtrace exn bt
        | None, None -> ()
      end
    end

  (* One shared team per process, grown on demand and guarded by a lock
     that doubles as the busy flag: a caller that finds the team in use
     (a nested parallel region, or another domain's scheduler) simply
     runs its scan serially — which by the determinism contract computes
     the same answer. *)
  let shared : t option ref = ref None
  let shared_lock = Mutex.create ()
  let at_exit_registered = ref false

  let try_acquire_shared ~jobs =
    let jobs = min (clamp_jobs jobs) (1 + Domain.recommended_domain_count ()) in
    if jobs <= 1 then None
    else if not (Mutex.try_lock shared_lock) then None
    else begin
      let t =
        match !shared with
        | Some t when size t >= jobs -> t
        | prev ->
            Option.iter stop prev;
            let t = create ~helpers:(jobs - 1) in
            shared := Some t;
            if not !at_exit_registered then begin
              at_exit_registered := true;
              Stdlib.at_exit (fun () ->
                  if Mutex.try_lock shared_lock then begin
                    Option.iter stop !shared;
                    shared := None;
                    Mutex.unlock shared_lock
                  end)
            end;
            t
      in
      Some t
    end

  let release_shared (_ : t) = Mutex.unlock shared_lock
end
