(* Flat growable float arrays keep intervals unboxed; [starts] and
   [finishes] are parallel and sorted (disjointness makes both sorted). *)
type t = {
  mutable starts : float array;
  mutable finishes : float array;
  mutable len : int;
}

let create () = { starts = [||]; finishes = [||]; len = 0 }
let n_intervals t = t.len

let intervals t =
  let rec loop i acc =
    if i < 0 then acc else loop (i - 1) ((t.starts.(i), t.finishes.(i)) :: acc)
  in
  loop (t.len - 1) []

let last_finish t = if t.len = 0 then 0. else t.finishes.(t.len - 1)

let total_busy t =
  let acc = ref 0. in
  for i = 0 to t.len - 1 do
    acc := !acc +. (t.finishes.(i) -. t.starts.(i))
  done;
  !acc

let grow t =
  let cap = Array.length t.starts in
  let cap' = if cap = 0 then 16 else 2 * cap in
  let starts = Array.make cap' 0. and finishes = Array.make cap' 0. in
  Array.blit t.starts 0 starts 0 t.len;
  Array.blit t.finishes 0 finishes 0 t.len;
  t.starts <- starts;
  t.finishes <- finishes

(* Smallest index whose finish is strictly greater than [x]: the first
   interval that can constrain a gap starting at [x]. *)
let first_relevant t x =
  let lo = ref 0 and hi = ref t.len in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if t.finishes.(mid) <= x then lo := mid + 1 else hi := mid
  done;
  !lo

let add t ~start ~finish =
  if finish < start then invalid_arg "Timeline.add: finish < start";
  if finish > start then begin
    if t.len = Array.length t.starts then grow t;
    let i = first_relevant t start in
    if i < t.len && t.starts.(i) < finish then
      invalid_arg "Timeline.add: overlapping busy interval";
    Array.blit t.starts i t.starts (i + 1) (t.len - i);
    Array.blit t.finishes i t.finishes (i + 1) (t.len - i);
    t.starts.(i) <- start;
    t.finishes.(i) <- finish;
    t.len <- t.len + 1
  end

let sort_extra extra =
  match extra with
  | [] | [ _ ] -> extra
  | l -> List.sort (fun (s1, _) (s2, _) -> compare s1 s2) l

let earliest_gap ?(extra = []) t ~after ~duration =
  Obs.Counters.gap_probe ();
  if duration <= 0. then after
  else begin
    let extra = sort_extra extra in
    let candidate = ref after in
    let i = ref (first_relevant t after) in
    let ex = ref extra in
    let progress = ref true in
    (* Advance over blocking intervals from both sources in start order. *)
    while !progress do
      progress := false;
      (* Committed intervals blocking [candidate, candidate+duration). *)
      while
        !i < t.len
        && t.starts.(!i) < !candidate +. duration
        && t.finishes.(!i) > !candidate
      do
        if t.finishes.(!i) > !candidate then candidate := t.finishes.(!i);
        incr i;
        progress := true
      done;
      (* Skip committed intervals now entirely before the candidate. *)
      while !i < t.len && t.finishes.(!i) <= !candidate do
        incr i
      done;
      (match !ex with
      | (s, f) :: rest when s < !candidate +. duration ->
          if f > !candidate then begin
            candidate := f;
            progress := true
          end;
          ex := rest;
          progress := true
      | _ -> ())
    done;
    !candidate
  end

let earliest_gap_joint ?(extra = []) ts ~after ~duration =
  Obs.Counters.joint_gap_probe ();
  if duration <= 0. then after
  else begin
    let ts = Array.of_list ts in
    let k = Array.length ts in
    let idx = Array.make k 0 in
    for j = 0 to k - 1 do
      idx.(j) <- first_relevant ts.(j) after
    done;
    let ex = ref (sort_extra extra) in
    let candidate = ref after in
    let progress = ref true in
    while !progress do
      progress := false;
      for j = 0 to k - 1 do
        let t = ts.(j) in
        (* Skip intervals that end at or before the candidate. *)
        while idx.(j) < t.len && t.finishes.(idx.(j)) <= !candidate do
          idx.(j) <- idx.(j) + 1
        done;
        if
          idx.(j) < t.len
          && t.starts.(idx.(j)) < !candidate +. duration
          && t.finishes.(idx.(j)) > !candidate
        then begin
          candidate := t.finishes.(idx.(j));
          idx.(j) <- idx.(j) + 1;
          progress := true
        end
      done;
      let rec eat () =
        match !ex with
        | (_, f) :: rest when f <= !candidate ->
            ex := rest;
            eat ()
        | (s, f) :: rest when s < !candidate +. duration ->
            candidate := f;
            ex := rest;
            progress := true;
            eat ()
        | _ -> ()
      in
      eat ()
    done;
    !candidate
  end

let free_at t ~start ~finish =
  if finish <= start then true
  else begin
    let i = first_relevant t start in
    i >= t.len || t.starts.(i) >= finish
  end

let copy t =
  {
    starts = Array.copy t.starts;
    finishes = Array.copy t.finishes;
    len = t.len;
  }
