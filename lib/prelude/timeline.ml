(* Flat growable float arrays keep intervals unboxed; [starts] and
   [finishes] are parallel and sorted (disjointness makes both sorted).

   [j_starts] is the add journal: the start of every interval ever added
   and not yet removed, in insertion order.  Disjointness makes a start a
   unique key, so the journal is all {!rollback} needs to undo a suffix
   of adds, and one float per add keeps the journal out of the way of the
   hot path. *)
type t = {
  mutable starts : float array;
  mutable finishes : float array;
  mutable len : int;
  mutable j_starts : float array;
  mutable j_len : int;
}

type mark = int

let create () =
  { starts = [||]; finishes = [||]; len = 0; j_starts = [||]; j_len = 0 }

let n_intervals t = t.len

let intervals t =
  let rec loop i acc =
    if i < 0 then acc else loop (i - 1) ((t.starts.(i), t.finishes.(i)) :: acc)
  in
  loop (t.len - 1) []

let last_finish t = if t.len = 0 then 0. else t.finishes.(t.len - 1)

let total_busy t =
  let acc = ref 0. in
  for i = 0 to t.len - 1 do
    acc := !acc +. (t.finishes.(i) -. t.starts.(i))
  done;
  !acc

let grow t =
  let cap = Array.length t.starts in
  let cap' = if cap = 0 then 16 else 2 * cap in
  let starts = Array.make cap' 0. and finishes = Array.make cap' 0. in
  Array.blit t.starts 0 starts 0 t.len;
  Array.blit t.finishes 0 finishes 0 t.len;
  t.starts <- starts;
  t.finishes <- finishes

(* Smallest index whose finish is strictly greater than [x]: the first
   interval that can constrain a gap starting at [x]. *)
let first_relevant t x =
  let lo = ref 0 and hi = ref t.len in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if t.finishes.(mid) <= x then lo := mid + 1 else hi := mid
  done;
  !lo

let journal_push t start =
  if t.j_len = Array.length t.j_starts then begin
    let cap = Array.length t.j_starts in
    let cap' = if cap = 0 then 16 else 2 * cap in
    let j = Array.make cap' 0. in
    Array.blit t.j_starts 0 j 0 t.j_len;
    t.j_starts <- j
  end;
  t.j_starts.(t.j_len) <- start;
  t.j_len <- t.j_len + 1

let add t ~start ~finish =
  if finish < start then invalid_arg "Timeline.add: finish < start";
  if finish > start then begin
    if t.len = Array.length t.starts then grow t;
    let i = first_relevant t start in
    if i < t.len && t.starts.(i) < finish then
      invalid_arg "Timeline.add: overlapping busy interval";
    Array.blit t.starts i t.starts (i + 1) (t.len - i);
    Array.blit t.finishes i t.finishes (i + 1) (t.len - i);
    t.starts.(i) <- start;
    t.finishes.(i) <- finish;
    t.len <- t.len + 1;
    journal_push t start
  end

(* Delete the interval at index [i] (blit the tail left). *)
let delete_at t i =
  Array.blit t.starts (i + 1) t.starts i (t.len - i - 1);
  Array.blit t.finishes (i + 1) t.finishes i (t.len - i - 1);
  t.len <- t.len - 1

(* Index of the (unique) interval starting at [start], or raise.  Because
   intervals are disjoint half-open and sorted, [first_relevant t start]
   lands exactly on it when it exists. *)
let find_start t start =
  let i = first_relevant t start in
  if i >= t.len || t.starts.(i) <> start then
    invalid_arg "Timeline: no busy interval with that start";
  i

let checkpoint t = t.j_len
let origin = 0

let rollback t mark =
  if mark < 0 || mark > t.j_len then invalid_arg "Timeline.rollback: bad mark";
  for k = t.j_len - 1 downto mark do
    delete_at t (find_start t t.j_starts.(k))
  done;
  t.j_len <- mark

let remove t ~start ~finish =
  if finish > start then begin
    let i = find_start t start in
    if t.finishes.(i) <> finish then
      invalid_arg "Timeline.remove: finish does not match the busy interval";
    delete_at t i;
    (* Drop the matching journal entry; retractions almost always undo the
       most recent adds, so scan backward. *)
    let k = ref (t.j_len - 1) in
    while !k >= 0 && t.j_starts.(!k) <> start do
      decr k
    done;
    if !k < 0 then invalid_arg "Timeline.remove: interval not journaled";
    Array.blit t.j_starts (!k + 1) t.j_starts !k (t.j_len - !k - 1);
    t.j_len <- t.j_len - 1
  end

(* Zero-length tentative intervals block nothing (mirroring [add], which
   ignores them); dropping them here keeps the gap walks below from
   mistaking an empty interval for a blocker. *)
let sort_extra extra =
  match List.filter (fun (s, f) -> f > s) extra with
  | ([] | [ _ ]) as l -> l
  | l -> List.sort (fun (s1, _) (s2, _) -> compare s1 s2) l

let earliest_gap ?(extra = []) t ~after ~duration =
  Obs.Counters.gap_probe ();
  if duration <= 0. then after
  else begin
    let extra = sort_extra extra in
    let candidate = ref after in
    let i = ref (first_relevant t after) in
    let ex = ref extra in
    let progress = ref true in
    (* Advance over blocking intervals from both sources in start order. *)
    while !progress do
      progress := false;
      (* Committed intervals blocking [candidate, candidate+duration). *)
      while
        !i < t.len
        && t.starts.(!i) < !candidate +. duration
        && t.finishes.(!i) > !candidate
      do
        if t.finishes.(!i) > !candidate then candidate := t.finishes.(!i);
        incr i;
        progress := true
      done;
      (* Skip committed intervals now entirely before the candidate. *)
      while !i < t.len && t.finishes.(!i) <= !candidate do
        incr i
      done;
      (match !ex with
      | (s, f) :: rest when s < !candidate +. duration ->
          if f > !candidate then begin
            candidate := f;
            progress := true
          end;
          ex := rest;
          progress := true
      | _ -> ())
    done;
    !candidate
  end

(* The non-allocating core of the joint search: timelines come as a
   caller-owned array prefix [ts.(0 .. k-1)], tentative blockers as flat
   parallel arrays [extra_s]/[extra_f] (prefix [extra_len], sorted by
   start, no zero-length intervals), and [idx] is caller-provided cursor
   scratch of length >= k.  The engine's arena calls this once per probe
   without building a single intermediate value. *)
let earliest_gap_joint_arr ts ~k ~extra_s ~extra_f ~extra_len ~idx ~after
    ~duration =
  Obs.Counters.joint_gap_probe ();
  if duration <= 0. then after
  else begin
    for j = 0 to k - 1 do
      idx.(j) <- first_relevant ts.(j) after
    done;
    let ex = ref 0 in
    let candidate = ref after in
    let progress = ref true in
    while !progress do
      progress := false;
      for j = 0 to k - 1 do
        let t = ts.(j) in
        (* Skip intervals that end at or before the candidate. *)
        while idx.(j) < t.len && t.finishes.(idx.(j)) <= !candidate do
          idx.(j) <- idx.(j) + 1
        done;
        if
          idx.(j) < t.len
          && t.starts.(idx.(j)) < !candidate +. duration
          && t.finishes.(idx.(j)) > !candidate
        then begin
          candidate := t.finishes.(idx.(j));
          idx.(j) <- idx.(j) + 1;
          progress := true
        end
      done;
      let rec eat () =
        if !ex < extra_len then begin
          if extra_f.(!ex) <= !candidate then begin
            incr ex;
            eat ()
          end
          else if extra_s.(!ex) < !candidate +. duration then begin
            candidate := extra_f.(!ex);
            incr ex;
            progress := true;
            eat ()
          end
        end
      in
      eat ()
    done;
    !candidate
  end

(* List front end: a thin (allocating) wrapper over the array core, kept
   for callers outside the hot path. *)
let earliest_gap_joint ?(extra = []) ts ~after ~duration =
  let ts = Array.of_list ts in
  let k = Array.length ts in
  let extra = sort_extra extra in
  let extra_len = List.length extra in
  let extra_s = Array.make (max extra_len 1) 0. in
  let extra_f = Array.make (max extra_len 1) 0. in
  List.iteri
    (fun i (s, f) ->
      extra_s.(i) <- s;
      extra_f.(i) <- f)
    extra;
  earliest_gap_joint_arr ts ~k ~extra_s ~extra_f ~extra_len
    ~idx:(Array.make (max k 1) 0) ~after ~duration

let free_at t ~start ~finish =
  if finish <= start then true
  else begin
    let i = first_relevant t start in
    i >= t.len || t.starts.(i) >= finish
  end

let copy t =
  {
    starts = Array.copy t.starts;
    finishes = Array.copy t.finishes;
    len = t.len;
    j_starts = Array.copy t.j_starts;
    j_len = t.j_len;
  }
