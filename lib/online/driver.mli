(** Rolling-horizon online scheduling: event-driven re-planning with
    fault recovery and graceful degradation.

    The offline heuristics of this library schedule a fixed DAG once;
    [run] keeps a schedule alive under an {!Event} trace — jobs arriving
    mid-execution, processors crashing, blacking out and rejoining, and
    deadlines forcing re-plans.  The driver advances simulated time event
    by event; at each disruption it

    - {e freezes} the executed prefix: every task that started before the
      current instant keeps its processor and time window, bit for bit
      (checked against a running ledger — see the determinism contract in
      [doc/online.md]);
    - kills work lost to the fault (tasks on a dead processor that had
      not finished, tasks whose inputs travelled through a down window,
      and their transitive dependents);
    - re-plans only the remaining suffix with {!Heuristics.Repair.schedule_suffix}
      — upward-rank order, earliest finish over the {e alive} processors,
      floored at the current instant.

    When the job mix is unchanged, the re-plan is {e incremental}: the
    engine's commit log is rewound to the longest all-frozen prefix
    ({!Heuristics.Engine.rewind}) and only the straggling frozen
    decisions are replayed — the path measured by bench part 7 against
    the from-scratch rebuild.  Admission and shedding recompose the
    composite graph and rebuild.

    Robustness policies:

    - {e retry with exponential backoff}: a [Down] processor is probed
      after [backoff], [2·backoff], [4·backoff], … up to [max_retries]
      times; work planned on it stalls optimistically.  A [Rejoin] before
      exhaustion triggers a catch-up re-plan that re-routes the work the
      window swallowed; exhaustion declares the processor dead and
      re-routes immediately;
    - {e admission control}: at most [max_active] jobs run concurrently;
      surplus arrivals queue (FIFO, capacity [queue_cap]) and are
      admitted as capacity frees; beyond that — or once the replan budget
      is exhausted — arrivals are rejected;
    - {e graceful degradation}: when a deadlined job's predicted finish
      slips past its deadline, the driver sheds the lowest-priority
      not-yet-started strictly-lower-priority job (newest first among
      equals) and re-plans, repeating until the deadline is met or no
      candidate remains.

    Every re-plan's output is {!Sched.Validate}-clean (checked when
    [validate] is set, outside the timed window) and the whole run is
    deterministic: no randomness, event ties broken by input order.
    Only port-regime communication models are supported. *)

type config = {
  params : Heuristics.Params.t;
      (** engine policy, rank averaging and communication model (port
          regimes only) for the initial plan and every re-plan *)
  heuristic : string;
      (** {!Heuristics.Registry} entry used for the initial plan when the
          trace opens at t = 0 on a healthy platform; re-plans are always
          repair-style *)
  max_active : int;  (** admission control: concurrent job cap *)
  queue_cap : int;  (** FIFO backlog capacity beyond [max_active] *)
  replan_budget : int;
      (** once this many re-plans have run, arrivals are rejected and
          optional re-plans skipped; safety re-plans (crash, give-up)
          still run *)
  max_retries : int;  (** probes before a [Down] processor is given up *)
  backoff : float;  (** first probe delay; doubles per retry *)
  incremental : bool;
      (** rewind the commit log instead of rebuilding (default [true];
          [false] forces the from-scratch path — the bench baseline) *)
  validate : bool;  (** check every re-plan with {!Sched.Validate} *)
  check_frozen : bool;
      (** enforce the bit-identical executed-prefix ledger *)
}

val default_config : config

type job_state = Queued | Active | Completed | Shed | Rejected

type job_report = {
  id : int;  (** arrival order, from 0 *)
  arrived : float;
  spec : Event.job;
  state : job_state;
  finish : float;  (** completion time; [nan] unless [Completed] *)
  missed : bool;  (** completed after its deadline *)
}

type replan_report = {
  at : float;
  trigger : string;
      (** ["arrive"], ["admit"], ["crash"], ["give-up"], ["rejoin"] or
          ["shed"] *)
  incremental : bool;  (** served by commit-log rewind, not a rebuild *)
  frozen : int;  (** executed-prefix tasks kept verbatim *)
  replanned : int;  (** suffix tasks re-scheduled *)
  wall_s : float;  (** wall-clock seconds of the re-plan core (validation
                       excluded) *)
  makespan : float;
}

type outcome = {
  schedule : Sched.Schedule.t option;  (** final plan ([None]: no job ever
                                           admitted) *)
  graph : Taskgraph.Graph.t option;  (** final composite graph *)
  makespan : float;
  events_processed : int;  (** external trace events consumed *)
  replans : replan_report list;  (** chronological *)
  jobs : job_report list;  (** arrival order *)
  completed : int;
  deadline_misses : int;
  shed : int;
  rejected : int;
  retries : int;  (** failed probes of down processors *)
  backoff_s : float;  (** simulated time spent between probes *)
  budget_exhausted : bool;
}

(** [run ?config plat events] — consume the trace against platform
    [plat].  Events are stably sorted by time first, so the input may be
    unordered; same-time events keep their input order.  After the last
    event the driver drains: queued jobs are admitted as running ones
    finish, then every active job completes.
    @raise Invalid_argument on a non-port communication model, a negative
    event time, an out-of-range processor, or an unknown heuristic /
    testbed name.
    @raise Failure if a re-plan is not Validate-clean, the frozen prefix
    changes ([check_frozen]), or every processor is dead at a re-plan. *)
val run : ?config:config -> Platform.t -> Event.t list -> outcome

val pp_state : Format.formatter -> job_state -> unit

(** Deterministic summary block (no wall-clock numbers). *)
val pp_outcome : Format.formatter -> outcome -> unit
