module Rng = Prelude.Rng

type job = {
  testbed : string;
  n : int;
  ccr : float;
  priority : int;
  deadline : float option;
}

type kind = Arrive of job | Crash of int | Down of int | Rejoin of int
type t = { at : float; kind : kind }

let grammar =
  "arrive T TESTBED:N[:CCR] [prio=K] [deadline=D] | crash T P | down T P | \
   rejoin T P (# starts a comment line)"

let fail line reason =
  invalid_arg
    (Printf.sprintf "Online.Event.of_string: %S: %s (grammar: %s)" line reason
       grammar)

let job ?(ccr = 1.) ?(priority = 0) ?deadline testbed n =
  if n <= 0 then invalid_arg "Online.Event.job: non-positive size";
  if ccr < 0. then invalid_arg "Online.Event.job: negative ccr";
  (match deadline with
  | Some d when d <= 0. -> invalid_arg "Online.Event.job: non-positive deadline"
  | _ -> ());
  { testbed; n; ccr; priority; deadline }

let parse_float line text =
  match float_of_string_opt text with
  | Some f -> f
  | None -> fail line (Printf.sprintf "bad number %S" text)

let parse_time line text =
  let t = parse_float line text in
  if t < 0. then fail line (Printf.sprintf "negative time %S" text) else t

let parse_proc line text =
  match int_of_string_opt text with
  | Some q when q >= 0 -> q
  | _ -> fail line (Printf.sprintf "bad processor id %S" text)

let parse_job line spec opts =
  let testbed, n, ccr =
    match String.split_on_char ':' spec with
    (* The layered generator's name itself contains colons
       (layered:<layers>:<width>), so its job specs carry two extra
       fields: layered:L:W:N[:CCR]. *)
    | "layered" :: rest -> (
        match rest with
        | [ l; w; n ] -> (Printf.sprintf "layered:%s:%s" l w, n, 1.)
        | [ l; w; n; ccr ] ->
            (Printf.sprintf "layered:%s:%s" l w, n, parse_float line ccr)
        | _ ->
            fail line
              (Printf.sprintf "expected layered:L:W:N[:CCR], got %S" spec))
    | [ tb; n ] -> (tb, n, 1.)
    | [ tb; n; ccr ] -> (tb, n, parse_float line ccr)
    | _ -> fail line (Printf.sprintf "expected TESTBED:N[:CCR], got %S" spec)
  in
  let n =
    match int_of_string_opt n with
    | Some k when k > 0 -> k
    | _ -> fail line (Printf.sprintf "bad job size %S" n)
  in
  if ccr < 0. then fail line "negative ccr";
  let priority = ref 0 and deadline = ref None in
  List.iter
    (fun opt ->
      match String.index_opt opt '=' with
      | Some i -> (
          let k = String.sub opt 0 i in
          let v = String.sub opt (i + 1) (String.length opt - i - 1) in
          match k with
          | "prio" -> (
              match int_of_string_opt v with
              | Some p -> priority := p
              | None -> fail line (Printf.sprintf "bad priority %S" v))
          | "deadline" ->
              let d = parse_float line v in
              if d <= 0. then fail line "non-positive deadline"
              else deadline := Some d
          | _ -> fail line (Printf.sprintf "unknown option %S" k))
      | None -> fail line (Printf.sprintf "unknown option %S" opt))
    opts;
  { testbed; n; ccr; priority = !priority; deadline = !deadline }

let job_of_spec spec = parse_job spec spec []

let spec_of_job j =
  if j.ccr = 1. then Printf.sprintf "%s:%d" j.testbed j.n
  else Printf.sprintf "%s:%d:%g" j.testbed j.n j.ccr

let of_string line =
  let parts =
    String.split_on_char ' ' (String.trim line)
    |> List.filter (fun s -> s <> "")
  in
  match parts with
  | kind :: at :: rest -> (
      let at = parse_time line at in
      match (kind, rest) with
      | "arrive", spec :: opts -> { at; kind = Arrive (parse_job line spec opts) }
      | "arrive", [] -> fail line "expected a TESTBED:N[:CCR] job spec"
      | "crash", [ q ] -> { at; kind = Crash (parse_proc line q) }
      | "down", [ q ] -> { at; kind = Down (parse_proc line q) }
      | "rejoin", [ q ] -> { at; kind = Rejoin (parse_proc line q) }
      | ("crash" | "down" | "rejoin"), _ ->
          fail line "expected exactly one processor id"
      | _ -> fail line (Printf.sprintf "unknown event kind %S" kind))
  | _ -> fail line "expected KIND T ..."

let job_to_string j =
  let spec = spec_of_job j in
  let prio = if j.priority = 0 then "" else Printf.sprintf " prio=%d" j.priority in
  let dl =
    match j.deadline with
    | None -> ""
    | Some d -> Printf.sprintf " deadline=%g" d
  in
  spec ^ prio ^ dl

let to_string e =
  match e.kind with
  | Arrive j -> Printf.sprintf "arrive %g %s" e.at (job_to_string j)
  | Crash q -> Printf.sprintf "crash %g %d" e.at q
  | Down q -> Printf.sprintf "down %g %d" e.at q
  | Rejoin q -> Printf.sprintf "rejoin %g %d" e.at q

let pp fmt e = Format.pp_print_string fmt (to_string e)

let of_trace_string text =
  String.split_on_char '\n' text
  |> List.filter_map (fun line ->
         let line = String.trim line in
         if line = "" || line.[0] = '#' then None else Some (of_string line))

let to_trace_string events =
  String.concat "" (List.map (fun e -> to_string e ^ "\n") events)

let load path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let len = in_channel_length ic in
      of_trace_string (really_input_string ic len))

let save path events =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_trace_string events))

let sort events =
  List.stable_sort (fun a b -> compare (a.at : float) b.at) events

(* Exponential inter-arrival draw; 1 - u keeps the argument of [log] in
   (0, 1] for u in [0, 1). *)
let exp_draw rng ~rate = -.log (1. -. Rng.float rng 1.) /. rate

let poisson ~rng ~rate ~count job_ =
  if rate <= 0. then invalid_arg "Online.Event.poisson: non-positive rate";
  if count < 0 then invalid_arg "Online.Event.poisson: negative count";
  let rec go i t acc =
    if i >= count then List.rev acc
    else
      let t = t +. exp_draw rng ~rate in
      go (i + 1) t ({ at = t; kind = Arrive job_ } :: acc)
  in
  go 0 0. []

let bursty ~rng ~rate ~burst ~count job_ =
  if rate <= 0. then invalid_arg "Online.Event.bursty: non-positive rate";
  if burst <= 0 then invalid_arg "Online.Event.bursty: non-positive burst";
  if count < 0 then invalid_arg "Online.Event.bursty: negative count";
  let rec go made t acc =
    if made >= count then List.rev acc
    else
      let t = t +. exp_draw rng ~rate in
      let k = min burst (count - made) in
      let acc = ref acc in
      for _ = 1 to k do
        acc := { at = t; kind = Arrive job_ } :: !acc
      done;
      go (made + k) t !acc
  in
  go 0 0. []

let of_fault = function
  | Simkit.Fault.Crash { proc; at } -> [ { at; kind = Crash proc } ]
  | Simkit.Fault.Rejoin { proc; at } -> [ { at; kind = Rejoin proc } ]
  | Simkit.Fault.Outage { proc; from_; until } ->
      { at = from_; kind = Down proc }
      :: (if until = infinity then []
          else [ { at = until; kind = Rejoin proc } ])
  | Simkit.Fault.Degrade _ ->
      invalid_arg "Online.Event.of_fault: degrade has no event-trace form"
  | Simkit.Fault.Flaky _ ->
      invalid_arg "Online.Event.of_fault: flaky has no event-trace form"
