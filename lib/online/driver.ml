module Graph = Taskgraph.Graph
module Schedule = Sched.Schedule
module Validate = Sched.Validate
module Comm_model = Commmodel.Comm_model
module Params = Heuristics.Params
module Engine = Heuristics.Engine
module Repair = Heuristics.Repair
module Registry = Heuristics.Registry
module Suite = Testbeds.Suite
module Pqueue = Prelude.Pqueue

type config = {
  params : Params.t;
  heuristic : string;
  max_active : int;
  queue_cap : int;
  replan_budget : int;
  max_retries : int;
  backoff : float;
  incremental : bool;
  validate : bool;
  check_frozen : bool;
}

let default_config =
  {
    params = Params.default;
    heuristic = "heft";
    max_active = 4;
    queue_cap = 16;
    replan_budget = 64;
    max_retries = 3;
    backoff = 20.;
    incremental = true;
    validate = true;
    check_frozen = true;
  }

type job_state = Queued | Active | Completed | Shed | Rejected

type job_report = {
  id : int;
  arrived : float;
  spec : Event.job;
  state : job_state;
  finish : float;  (** completion time; [nan] unless [Completed] *)
  missed : bool;
}

type replan_report = {
  at : float;
  trigger : string;
  incremental : bool;  (** served by commit-log rewind, not a rebuild *)
  frozen : int;
  replanned : int;
  wall_s : float;
  makespan : float;
}

type outcome = {
  schedule : Schedule.t option;
  graph : Graph.t option;
  makespan : float;
  events_processed : int;
  replans : replan_report list;
  jobs : job_report list;
  completed : int;
  deadline_misses : int;
  shed : int;
  rejected : int;
  retries : int;
  backoff_s : float;
  budget_exhausted : bool;
}

(* ---- internal state ---- *)

type pstate = P_up | P_down of { since : float; attempt : int } | P_dead

type jrec = {
  jid : int;
  jarrived : float;
  jspec : Event.job;
  jgraph : Graph.t;
  jdeadline : float option;  (** absolute *)
  mutable jstate : job_state;
  mutable jfinish : float;
  mutable jmissed : bool;
}

(* One frozen decision, keyed independently of composite task ids so it
   survives graph recomposition (admission and shedding shift offsets).
   Hops carry the edge's task endpoints as job-local ids; the edge id is
   re-derived per target graph. *)
type dhop = {
  h_src_local : int;
  h_dst_local : int;
  h_src_proc : int;
  h_dst_proc : int;
  h_start : float;
}

(* One surviving copy of a frozen task, with the provenance chains that
   fed it. *)
type dcopy = {
  c_proc : int;
  c_start : float;
  c_finish : float;
  c_hops : dhop list;
}

(* A frozen task may survive as several copies (duplication-aware plans);
   the head of [d_copies] is the primary the re-plan re-commits first. *)
type decision = { d_copies : dcopy list }

type plan = {
  pgraph : Graph.t;
  psched : Schedule.t;
  pengine : Engine.t option;  (** [None] right after the initial heuristic *)
  playout : (jrec * int) list;  (** members in admission order, offsets *)
  pgen : int;  (** membership generation this plan was built for *)
}

type qev = Ext of Event.kind | Probe of { p_proc : int; p_since : float }

let run ?(config = default_config) plat (events : Event.t list) =
  let params = config.params in
  let model = params.Params.model in
  (match model.Comm_model.regime with
  | Comm_model.Port -> ()
  | Comm_model.Bsp _ | Comm_model.Latency_overhead _ ->
      invalid_arg "Online.Driver.run: only port-regime models are supported");
  let p = Platform.p plat in
  let entry = Registry.find config.heuristic in
  List.iter
    (fun (e : Event.t) ->
      if e.Event.at < 0. then
        invalid_arg "Online.Driver.run: negative event time";
      match e.Event.kind with
      | Event.Crash q | Event.Down q | Event.Rejoin q ->
          if q < 0 || q >= p then
            invalid_arg
              (Printf.sprintf
                 "Online.Driver.run: processor %d out of range (platform has \
                  %d)"
                 q p)
      | Event.Arrive _ -> ())
    events;
  (* mutable run state *)
  let pstate = Array.make p P_up in
  let dead_since = Array.make p 0. in
  let members : jrec list ref = ref [] in
  let gen = ref 0 in
  let plan : plan option ref = ref None in
  let waitq : jrec list ref = ref [] in
  let all_jobs : jrec list ref = ref [] in
  let next_id = ref 0 in
  let executed : (int * int, int * float * float) Hashtbl.t =
    Hashtbl.create 256
  in
  let replans : replan_report list ref = ref [] in
  let n_replans = ref 0 in
  let retries = ref 0 in
  let backoff_s = ref 0. in
  let shed = ref 0 in
  let rejected = ref 0 in
  let misses = ref 0 in
  let completed = ref 0 in
  let events_processed = ref 0 in
  let last_now = ref 0. in
  let budget_exhausted () = !n_replans >= config.replan_budget in
  let candidates () =
    List.filter (fun q -> pstate.(q) = P_up) (List.init p Fun.id)
  in
  let down_kills () =
    List.init p Fun.id
    |> List.filter_map (fun q ->
           match pstate.(q) with
           | P_down { since; _ } -> Some (q, since)
           | P_dead -> Some (q, dead_since.(q))
           | P_up -> None)
  in
  let active_count () =
    List.length (List.filter (fun j -> j.jstate = Active) !members)
  in
  let job_tasks j = Graph.n_tasks j.jgraph in
  (* a duplicated task completes at its earliest copy's finish *)
  let job_finish pl (j, off) =
    let fin = ref 0. in
    for local = 0 to job_tasks j - 1 do
      let f = Schedule.earliest_finish pl.psched (off + local) in
      if f > !fin then fin := f
    done;
    !fin
  in
  let job_started pl (j, off) =
    let started = ref false in
    for local = 0 to job_tasks j - 1 do
      List.iter
        (fun (c : Schedule.placement) ->
          if c.start < !last_now then started := true)
        (Schedule.copies pl.psched (off + local))
    done;
    !started
  in
  (* ---- the re-planning core ---- *)
  let replan ~now ~trigger ?(extra_kills = []) () =
    if !members <> [] then begin
      incr n_replans;
      Obs.Counters.replan ();
      let wall0 = Unix.gettimeofday () in
      let report =
        Obs.Span.with_ "replan" @@ fun () ->
        let kills = extra_kills @ down_kills () in
        let cands = candidates () in
        if cands = [] then
          failwith "Online.Driver: no processor available to re-plan onto";
        (* -- split the old plan into frozen decisions and lost work -- *)
        let frozen_tbl : (int * int, decision) Hashtbl.t =
          Hashtbl.create 256
        in
        let old_remap = ref [||] in
        let old_kept : Schedule.placement list array ref = ref [||] in
        (match !plan with
        | None -> ()
        | Some pl ->
            let g = pl.pgraph and s = pl.psched in
            let n = Graph.n_tasks g in
            (* a copy survives when it started before [now] and no down
               window kills it; a task needs re-planning only when no copy
               survives — a live replica satisfies a crashed task *)
            let copy_kept (c : Schedule.placement) =
              c.start < now
              && not
                   (List.exists
                      (fun (k, since) -> c.proc = k && c.finish > since)
                      kills)
            in
            let kept = Array.make n [] in
            let remap = Array.make n false in
            for v = 0 to n - 1 do
              kept.(v) <- List.filter copy_kept (Schedule.copies s v);
              remap.(v) <- kept.(v) = []
            done;
            (* a hop that would have travelled through a down window never
               delivered: its destination must be re-planned too *)
            Schedule.iter_comms s ~f:(fun (c : Schedule.comm) ->
                if
                  List.exists
                    (fun (k, since) ->
                      (c.src_proc = k || c.dst_proc = k) && c.finish > since)
                    kills
                then remap.(Graph.edge_dst g c.edge) <- true);
            (* close under precedence: a forward successor scan over the
               topological order — marking propagates transitively because
               every task is visited before its successors *)
            Array.iter
              (fun v ->
                if remap.(v) then
                  Graph.iter_succ_edges g v ~f:(fun e ->
                      remap.(Graph.edge_dst g e) <- true))
              (Graph.topological_order g);
            for v = 0 to n - 1 do
              if remap.(v) then kept.(v) <- []
            done;
            old_remap := remap;
            old_kept := kept;
            (* provenance chains, assigned to the consumer copy they feed;
               chains are contiguous runs in commit order *)
            let chain_tbl : (int * int, (int * int * int * int * float) list list)
                Hashtbl.t =
              Hashtbl.create 64
            in
            let nc = Schedule.n_comms s in
            let i = ref 0 in
            while !i < nc do
              let first = !i in
              incr i;
              while !i < nc && not (Schedule.comm_head_at s !i) do
                incr i
              done;
              let h0 = Schedule.comm_at s first in
              let hk = Schedule.comm_at s (!i - 1) in
              let e = h0.Schedule.edge in
              let u = Graph.edge_src g e and v = Graph.edge_dst g e in
              let dst = hk.Schedule.dst_proc in
              (* a chain survives only when both endpoint copies do *)
              let chain_kept =
                (not remap.(v))
                && List.exists
                     (fun (c : Schedule.placement) -> c.proc = dst)
                     kept.(v)
                && List.exists
                     (fun (c : Schedule.placement) ->
                       c.proc = h0.Schedule.src_proc)
                     kept.(u)
              in
              if chain_kept then begin
                let chain = ref [] in
                for j = !i - 1 downto first do
                  let c = Schedule.comm_at s j in
                  chain :=
                    (u, v, c.Schedule.src_proc, c.Schedule.dst_proc,
                     c.Schedule.start)
                    :: !chain
                done;
                let key = (v, dst) in
                let prev =
                  try Hashtbl.find chain_tbl key with Not_found -> []
                in
                Hashtbl.replace chain_tbl key (!chain :: prev)
              end
            done;
            let copy_hops v q =
              match Hashtbl.find_opt chain_tbl (v, q) with
              | None -> []
              | Some chains -> List.concat (List.rev chains)
            in
            List.iter
              (fun ((j, off) : jrec * int) ->
                for local = 0 to job_tasks j - 1 do
                  let v = off + local in
                  let q = Schedule.placement_exn s v in
                  if remap.(v) then begin
                    (* started work killed by a crash/outage: its executed
                       record is void — the one legitimate removal *)
                    if q.Schedule.start < now then
                      Hashtbl.remove executed (j.jid, local)
                  end
                  else begin
                    (* the primary stays first when it survives; otherwise
                       the earliest surviving replica takes over and the
                       dead primary's executed record is void *)
                    let primary_kept =
                      List.exists
                        (fun (c : Schedule.placement) ->
                          c.proc = q.Schedule.proc)
                        kept.(v)
                    in
                    if (not primary_kept) && q.Schedule.start < now then
                      Hashtbl.remove executed (j.jid, local);
                    let to_copy (c : Schedule.placement) =
                      {
                        c_proc = c.proc;
                        c_start = c.start;
                        c_finish = c.finish;
                        c_hops =
                          List.map
                            (fun (src, dst, sp, dp, st) ->
                              {
                                h_src_local = src - off;
                                h_dst_local = dst - off;
                                h_src_proc = sp;
                                h_dst_proc = dp;
                                h_start = st;
                              })
                            (copy_hops v c.proc);
                      }
                    in
                    Hashtbl.replace frozen_tbl (j.jid, local)
                      { d_copies = List.map to_copy kept.(v) }
                  end
                done)
              pl.playout);
        let n_frozen = Hashtbl.length frozen_tbl in
        for _ = 1 to n_frozen do
          Obs.Counters.frozen_task ()
        done;
        (* rebuild an engine eval from one frozen copy, against [graph] *)
        let eval_of graph off (c : dcopy) =
          {
            Engine.proc = c.c_proc;
            est = c.c_start;
            eft = c.c_finish;
            hops =
              List.map
                (fun h ->
                  let edge =
                    Option.get
                      (Graph.find_edge graph ~src:(off + h.h_src_local)
                         ~dst:(off + h.h_dst_local))
                  in
                  {
                    Engine.edge = edge.Graph.id;
                    src_proc = h.h_src_proc;
                    dst_proc = h.h_dst_proc;
                    start = h.h_start;
                  })
                c.c_hops;
            phase = None;
          }
        in
        (* -- incremental: rewind the engine's commit log to the longest
           all-frozen prefix, replay the frozen stragglers, re-plan only
           the suffix.  Falls back to a from-scratch rebuild when the
           composite graph changed or no commit log exists. -- *)
        let use_incremental =
          config.incremental
          && match !plan with
             | Some pl -> pl.pgen = !gen && pl.pengine <> None
             | None -> false
        in
        let n_replanned = ref 0 in
        (if use_incremental then begin
           let pl = Option.get !plan in
           let e = Option.get pl.pengine in
           let remap = !old_remap in
           let kept = !old_kept in
           let s = pl.psched in
           (* a commit is dropped when its task is re-planned or the
              specific copy it placed did not survive *)
           let entry_dropped i =
             let v = Engine.commit_task_at e i in
             remap.(v)
             ||
             let q = Engine.commit_proc_at e i in
             let qq = if q >= 0 then q else Schedule.proc_of_exn s v in
             not
               (List.exists
                  (fun (c : Schedule.placement) -> c.proc = qq)
                  kept.(v))
           in
           let nc = Engine.n_commits e in
           let k = ref nc in
           (try
              for i = 0 to nc - 1 do
                if entry_dropped i then begin
                  k := i;
                  raise Exit
                end
              done
            with Exit -> ());
           (* surviving commits past the rewind point must be replayed,
              copy by copy, in their original order; capture them before
              the rewind erases their placements *)
           let suffix = ref [] in
           for i = nc - 1 downto !k do
             let v = Engine.commit_task_at e i in
             let q = Engine.commit_proc_at e i in
             let qq = if q >= 0 then q else Schedule.proc_of_exn s v in
             suffix := (v, qq) :: !suffix
           done;
           let owner v =
             List.find
               (fun (j, off) -> v >= off && v < off + job_tasks j)
               pl.playout
           in
           Engine.rewind e ~to_:!k;
           List.iter
             (fun (v, qq) ->
               if
                 (not remap.(v))
                 && List.exists
                      (fun (c : Schedule.placement) -> c.proc = qq)
                      kept.(v)
               then begin
                 let j, off = owner v in
                 let d = Hashtbl.find frozen_tbl (j.jid, v - off) in
                 let c =
                   List.find (fun (c : dcopy) -> c.c_proc = qq) d.d_copies
                 in
                 let ev = eval_of pl.pgraph off c in
                 (* the first surviving copy replayed becomes the primary *)
                 if Schedule.is_placed s v then Engine.commit_copy e ~task:v ev
                 else Engine.commit e ~task:v ev;
                 Obs.Counters.replayed_task ()
               end)
             !suffix;
           let remapped =
             Repair.schedule_suffix ~params ~floor:now ~candidates:cands e
               ~todo:remap
           in
           n_replanned := List.length remapped
         end
         else begin
           (* from-scratch rebuild over the current membership *)
           let ms = !members in
           let g', offs = Graph.disjoint_union (List.map (fun j -> j.jgraph) ms) in
           let layout' = List.mapi (fun i j -> (j, offs.(i))) ms in
           let initial = !plan = None in
           if initial && now <= 0. && List.length cands = p then begin
             (* the very first plan on a healthy platform belongs to the
                configured heuristic; later re-plans are repair-style *)
             let s' = entry.Registry.scheduler params plat g' in
             plan :=
               Some
                 {
                   pgraph = g';
                   psched = s';
                   pengine = None;
                   playout = layout';
                   pgen = !gen;
                 };
             n_replanned := Graph.n_tasks g'
           end
           else begin
             let s' = Schedule.create ~graph:g' ~platform:plat ~model () in
             let e' = Engine.create ~policy:params.Params.policy s' in
             let n' = Graph.n_tasks g' in
             let todo = Array.make n' true in
             let frozen_of = Array.make n' None in
             List.iter
               (fun (j, off) ->
                 for local = 0 to job_tasks j - 1 do
                   match Hashtbl.find_opt frozen_tbl (j.jid, local) with
                   | Some d ->
                       frozen_of.(off + local) <- Some (d, off);
                       todo.(off + local) <- false
                   | None -> ()
                 done)
               layout';
             Array.iter
               (fun v ->
                 match frozen_of.(v) with
                 | None -> ()
                 | Some (d, off) -> (
                     match d.d_copies with
                     | [] -> ()
                     | prim :: dups ->
                         Engine.commit e' ~task:v (eval_of g' off prim);
                         List.iter
                           (fun c ->
                             Engine.commit_copy e' ~task:v (eval_of g' off c))
                           dups;
                         Obs.Counters.replayed_task ()))
               (Graph.topological_order g');
             let remapped =
               Repair.schedule_suffix ~params ~floor:now ~candidates:cands e'
                 ~todo
             in
             n_replanned := List.length remapped;
             plan :=
               Some
                 {
                   pgraph = g';
                   psched = s';
                   pengine = Some e';
                   playout = layout';
                   pgen = !gen;
                 }
           end
         end);
        let pl = Option.get !plan in
        let wall_s = Unix.gettimeofday () -. wall0 in
        (* -- contracts: Validate-clean output, bit-identical executed
           prefix -- *)
        if config.validate then (
          match Validate.check pl.psched with
          | Ok () -> ()
          | Error msgs ->
              failwith
                (Printf.sprintf
                   "Online.Driver: re-plan at t=%g (%s) is invalid: %s" now
                   trigger (String.concat "; " msgs)));
        List.iter
          (fun (j, off) ->
            for local = 0 to job_tasks j - 1 do
              let q = Schedule.placement_exn pl.psched (off + local) in
              if q.Schedule.start < now then begin
                match Hashtbl.find_opt executed (j.jid, local) with
                | Some (pr, st, fi) ->
                    if
                      config.check_frozen
                      && not
                           (pr = q.Schedule.proc && st = q.Schedule.start
                          && fi = q.Schedule.finish)
                    then
                      failwith
                        (Printf.sprintf
                           "Online.Driver: frozen prefix changed at t=%g \
                            (%s): job %d task %d moved from p%d@[%g,%g] to \
                            p%d@[%g,%g]"
                           now trigger j.jid local pr st fi q.Schedule.proc
                           q.Schedule.start q.Schedule.finish)
                | None ->
                    Hashtbl.replace executed (j.jid, local)
                      (q.Schedule.proc, q.Schedule.start, q.Schedule.finish)
              end
            done)
          pl.playout;
        {
          at = now;
          trigger;
          incremental = use_incremental;
          frozen = n_frozen;
          replanned = !n_replanned;
          wall_s;
          makespan = Schedule.makespan pl.psched;
        }
      in
      replans := report :: !replans
    end
  in
  (* ---- graceful degradation: shed lowest-priority unstarted work
     instead of missing a higher-priority deadline ---- *)
  let rec enforce_deadlines ~now =
    match !plan with
    | None -> ()
    | Some pl -> (
        let missing =
          List.find_opt
            (fun (j, off) ->
              j.jstate = Active
              &&
              match j.jdeadline with
              | Some d -> job_finish pl (j, off) > d
              | None -> false)
            pl.playout
        in
        match missing with
        | None -> ()
        | Some (victim_of, _) -> (
            if budget_exhausted () then ()
            else
              (* lowest priority first; among equals drop the newest *)
              let candidates_to_shed =
                List.filter
                  (fun (j, off) ->
                    j.jstate = Active
                    && j.jspec.Event.priority < victim_of.jspec.Event.priority
                    && not (job_started pl (j, off)))
                  pl.playout
                |> List.sort (fun ((a : jrec), _) ((b : jrec), _) ->
                       match
                         compare a.jspec.Event.priority b.jspec.Event.priority
                       with
                       | 0 -> compare b.jid a.jid
                       | c -> c)
              in
              match candidates_to_shed with
              | [] -> ()
              | (j, _) :: _ ->
                  j.jstate <- Shed;
                  incr shed;
                  Obs.Counters.shed_job ();
                  members := List.filter (fun m -> m != j) !members;
                  incr gen;
                  replan ~now ~trigger:"shed" ();
                  enforce_deadlines ~now))
  in
  let complete_job (j, off) pl =
    let fin = job_finish pl (j, off) in
    j.jstate <- Completed;
    j.jfinish <- fin;
    incr completed;
    match j.jdeadline with
    | Some d when fin > d ->
        j.jmissed <- true;
        incr misses;
        Obs.Counters.deadline_miss ()
    | _ -> ()
  in
  let admit ~now ~trigger j =
    j.jstate <- Active;
    members := !members @ [ j ];
    incr gen;
    replan ~now ~trigger ();
    enforce_deadlines ~now
  in
  (* completion sweep + admission of queued jobs once capacity frees *)
  let advance ~now =
    (match !plan with
    | None -> ()
    | Some pl ->
        List.iter
          (fun (j, off) ->
            if j.jstate = Active then begin
              let fin = job_finish pl (j, off) in
              (* a job whose plan touches a processor in a pending down
                 window has not really finished — resolution (rejoin or
                 give-up) will re-plan it *)
              let blocked = ref false in
              for local = 0 to job_tasks j - 1 do
                List.iter
                  (fun (c : Schedule.placement) ->
                    match pstate.(c.proc) with
                    | P_down { since; _ } when c.finish > since ->
                        blocked := true
                    | _ -> ())
                  (Schedule.copies pl.psched (off + local))
              done;
              if (not !blocked) && fin <= now then complete_job (j, off) pl
            end)
          pl.playout);
    let rec admit_waiting () =
      match !waitq with
      | j :: rest
        when active_count () < config.max_active && not (budget_exhausted ())
        ->
          waitq := rest;
          admit ~now ~trigger:"admit" j;
          admit_waiting ()
      | _ -> ()
    in
    admit_waiting ()
  in
  (* ---- event handlers ---- *)
  let handle_arrival ~now spec =
    let tb = Suite.find spec.Event.testbed in
    let n = max spec.Event.n tb.Suite.min_n in
    let g = tb.Suite.build ~n ~ccr:spec.Event.ccr in
    let j =
      {
        jid = !next_id;
        jarrived = now;
        jspec = spec;
        jgraph = g;
        jdeadline = Option.map (fun d -> now +. d) spec.Event.deadline;
        jstate = Rejected;
        jfinish = nan;
        jmissed = false;
      }
    in
    incr next_id;
    all_jobs := j :: !all_jobs;
    if budget_exhausted () then incr rejected
    else if active_count () < config.max_active then
      admit ~now ~trigger:"arrive" j
    else if List.length !waitq < config.queue_cap then begin
      j.jstate <- Queued;
      waitq := !waitq @ [ j ]
    end
    else incr rejected
  in
  let queue =
    Pqueue.create ~compare:(fun (t1, s1, _) (t2, s2, _) ->
        match compare (t1 : float) t2 with 0 -> compare (s1 : int) s2 | c -> c)
  in
  let qseq = ref 0 in
  let push at ev =
    incr qseq;
    Pqueue.add queue (at, !qseq, ev)
  in
  let handle_crash ~now q =
    (match pstate.(q) with
    | P_down { since; _ } -> dead_since.(q) <- since
    | _ -> dead_since.(q) <- now);
    pstate.(q) <- P_dead;
    replan ~now ~trigger:"crash" ();
    enforce_deadlines ~now
  in
  let handle_down ~now q =
    match pstate.(q) with
    | P_up ->
        pstate.(q) <- P_down { since = now; attempt = 0 };
        backoff_s := !backoff_s +. config.backoff;
        Obs.Counters.backoff config.backoff;
        push (now +. config.backoff) (Probe { p_proc = q; p_since = now })
    | P_down _ | P_dead -> ()
  in
  let handle_probe ~now q since =
    match pstate.(q) with
    | P_down { since = s; attempt } when s = since ->
        (* the processor is still unreachable: that retry failed *)
        incr retries;
        Obs.Counters.retry ();
        let attempt = attempt + 1 in
        if attempt >= config.max_retries then begin
          (* give up: declare it dead and re-route its pending work *)
          dead_since.(q) <- since;
          pstate.(q) <- P_dead;
          replan ~now ~trigger:"give-up" ();
          enforce_deadlines ~now
        end
        else begin
          pstate.(q) <- P_down { since; attempt };
          let pause = config.backoff *. (2. ** float_of_int attempt) in
          backoff_s := !backoff_s +. pause;
          Obs.Counters.backoff pause;
          push (now +. pause) (Probe { p_proc = q; p_since = since })
        end
    | _ -> ()
  in
  let handle_rejoin ~now q =
    match pstate.(q) with
    | P_down { since; _ } ->
        (* transient outage resolved: work planned inside the window never
           ran — catch up with an explicit repair decision *)
        pstate.(q) <- P_up;
        replan ~now ~trigger:"rejoin" ~extra_kills:[ (q, since) ] ();
        enforce_deadlines ~now
    | P_dead ->
        pstate.(q) <- P_up;
        if not (budget_exhausted ()) then begin
          replan ~now ~trigger:"rejoin" ();
          enforce_deadlines ~now
        end
    | P_up -> ()
  in
  (* ---- main loop ---- *)
  List.iter (fun (e : Event.t) -> push e.Event.at (Ext e.Event.kind))
    (Event.sort events);
  let rec loop () =
    match Pqueue.pop queue with
    | None -> ()
    | Some (t, _, ev) ->
        last_now := max !last_now t;
        let t = !last_now in
        advance ~now:t;
        (match ev with
        | Ext (Event.Arrive spec) ->
            incr events_processed;
            handle_arrival ~now:t spec
        | Ext (Event.Crash q) ->
            incr events_processed;
            handle_crash ~now:t q
        | Ext (Event.Down q) ->
            incr events_processed;
            handle_down ~now:t q
        | Ext (Event.Rejoin q) ->
            incr events_processed;
            handle_rejoin ~now:t q
        | Probe { p_proc; p_since } -> handle_probe ~now:t p_proc p_since);
        loop ()
  in
  loop ();
  (* ---- drain: finish active work, admit what the queue still holds ---- *)
  let rec drain () =
    if !waitq <> [] && not (budget_exhausted ()) then begin
      let t =
        if active_count () < config.max_active then !last_now
        else
          match !plan with
          | None -> !last_now
          | Some pl ->
              List.fold_left
                (fun acc (j, off) ->
                  if j.jstate = Active then min acc (job_finish pl (j, off))
                  else acc)
                infinity pl.playout
      in
      let t = if t = infinity then !last_now else max t !last_now in
      last_now := t;
      advance ~now:t;
      enforce_deadlines ~now:t;
      drain ()
    end
  in
  drain ();
  List.iter
    (fun j ->
      if j.jstate = Queued then begin
        j.jstate <- Rejected;
        incr rejected
      end)
    !waitq;
  waitq := [];
  (match !plan with
  | None -> ()
  | Some pl ->
      List.iter
        (fun (j, off) -> if j.jstate = Active then complete_job (j, off) pl)
        pl.playout);
  let makespan =
    match !plan with None -> 0. | Some pl -> Schedule.makespan pl.psched
  in
  {
    schedule = Option.map (fun pl -> pl.psched) !plan;
    graph = Option.map (fun pl -> pl.pgraph) !plan;
    makespan;
    events_processed = !events_processed;
    replans = List.rev !replans;
    jobs =
      List.rev_map
        (fun j ->
          {
            id = j.jid;
            arrived = j.jarrived;
            spec = j.jspec;
            state = j.jstate;
            finish = j.jfinish;
            missed = j.jmissed;
          })
        !all_jobs;
    completed = !completed;
    deadline_misses = !misses;
    shed = !shed;
    rejected = !rejected;
    retries = !retries;
    backoff_s = !backoff_s;
    budget_exhausted = budget_exhausted ();
  }

let pp_state fmt = function
  | Queued -> Format.pp_print_string fmt "queued"
  | Active -> Format.pp_print_string fmt "active"
  | Completed -> Format.pp_print_string fmt "completed"
  | Shed -> Format.pp_print_string fmt "shed"
  | Rejected -> Format.pp_print_string fmt "rejected"

let pp_outcome fmt o =
  Format.fprintf fmt
    "@[<v>events processed: %d@,\
     jobs:             %d (%d completed, %d shed, %d rejected)@,\
     replans:          %d%s@,\
     deadline misses:  %d@,\
     retries:          %d@,\
     final makespan:   %g@]"
    o.events_processed (List.length o.jobs) o.completed o.shed o.rejected
    (List.length o.replans)
    (if o.budget_exhausted then " (budget exhausted)" else "")
    o.deadline_misses o.retries o.makespan
