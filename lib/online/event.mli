(** Events consumed by the rolling-horizon online driver.

    An event trace is the workload of a {e live} scheduling service: jobs
    (whole task graphs from the §5 testbeds) arriving over time, and
    processors failing, blacking out and rejoining underneath the running
    schedule.  {!Driver.run} consumes a trace in time order and re-plans
    the un-executed suffix after each disruption (see [doc/online.md]).

    Traces are plain text, one event per line ([#] starts a comment):

    {v
    # a 100-task LU job with ccr 0.5, priority 2, deadline 300 after arrival
    arrive 0 lu:100:0.5 prio=2 deadline=300
    crash 120 1          # processor 1 fail-stops at t = 120
    down 200 2           # processor 2 starts a transient outage
    rejoin 260 2         # ... and comes back at t = 260
    v}

    Times are absolute simulated time, non-negative.  [prio] ranks jobs
    for graceful degradation (higher = more important, default 0);
    [deadline] is {e relative to the arrival time}.  {!of_string} /
    {!to_string} round-trip ([to_string] uses [%g], so times that print
    exactly — e.g. quarter-integers — survive unchanged; this is
    property-tested). *)

type job = {
  testbed : string;  (** a {!Testbeds.Suite} name, e.g. ["lu"] *)
  n : int;  (** problem size passed to the testbed builder *)
  ccr : float;  (** communication-to-computation ratio (default 1) *)
  priority : int;  (** degradation rank, higher = more important *)
  deadline : float option;  (** relative to the arrival instant *)
}

type kind =
  | Arrive of job
  | Crash of int  (** fail-stop: the processor is gone until a rejoin *)
  | Down of int
      (** transient outage: the driver retries with exponential backoff
          before declaring the processor dead *)
  | Rejoin of int  (** the processor comes back with empty state *)

type t = { at : float; kind : kind }

(** [job ?ccr ?priority ?deadline testbed n] — a job spec with the
    defaults above.
    @raise Invalid_argument on a non-positive size or deadline, or a
    negative ccr. *)
val job : ?ccr:float -> ?priority:int -> ?deadline:float -> string -> int -> job

(** One-line help string for the trace grammar. *)
val grammar : string

(** [job_of_spec spec] parses a bare job spec ([TESTBED:N[:CCR]],
    including [layered:L:W:N[:CCR]]) with no trailing options — the form
    [scheduld] submissions and bench traces use.
    @raise Invalid_argument on a malformed spec. *)
val job_of_spec : string -> job

(** The spec part of {!to_string} alone, with no [prio=]/[deadline=]
    options; [job_of_spec (spec_of_job j)] recovers the job's testbed,
    size and (exactly-printing) ccr. *)
val spec_of_job : job -> string

(** [of_string line] parses one event line.
    @raise Invalid_argument with a grammar reminder on malformed input. *)
val of_string : string -> t

(** Round-trips through {!of_string}. *)
val to_string : t -> string

val pp : Format.formatter -> t -> unit

(** [of_trace_string text] parses a whole trace, skipping blank and [#]
    comment lines. *)
val of_trace_string : string -> t list

val to_trace_string : t list -> string
val load : string -> t list
val save : string -> t list -> unit

(** Stable sort by event time; same-time events keep their input order. *)
val sort : t list -> t list

(** [poisson ~rng ~rate ~count job] — [count] arrivals of [job] with
    i.i.d. exponential inter-arrival times of rate [rate] (mean gap
    [1/rate]), starting from time 0.  Deterministic for a given [rng].
    @raise Invalid_argument on a non-positive rate or negative count. *)
val poisson : rng:Prelude.Rng.t -> rate:float -> count:int -> job -> t list

(** [bursty ~rng ~rate ~burst ~count job] — arrivals come in bursts of
    [burst] simultaneous jobs at Poisson epochs of rate [rate], until
    [count] jobs have been emitted. *)
val bursty :
  rng:Prelude.Rng.t -> rate:float -> burst:int -> count:int -> job -> t list

(** Translate an absolute-time fault into trace events: a crash maps to
    [Crash], a rejoin to [Rejoin], and an outage window to [Down] at its
    start plus [Rejoin] at its end ([infinity] ends emit no rejoin).
    @raise Invalid_argument for [Degrade]/[Flaky], which have no
    event-trace counterpart. *)
val of_fault : Simkit.Fault.t -> t list
