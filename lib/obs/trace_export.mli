(** Chrome-trace (chrome://tracing / Perfetto) export of recorded spans.

    The writer emits the JSON array flavour of the Trace Event Format:
    one ["B"]/["E"] duration event per recorded {!Span} event, plus
    process/thread naming metadata, plus (optionally) a ["C"] counter
    event carrying the engine counters.  The output is always
    well-formed for the viewers:

    - spans are {e balanced}: an [End] with no open [Begin] is dropped,
      and [Begin]s still open when the buffer ends are closed at the
      final timestamp (ring overwrite can orphan either side);
    - timestamps are monotone non-decreasing (guaranteed at record time
      by {!Span}) and expressed in microseconds relative to the first
      event. *)

(** [to_chrome ?pid ?counters events] — the JSON text.  [pid] defaults
    to 0; [counters], when given, is attached as a counter track. *)
val to_chrome :
  ?pid:int -> ?counters:Counters.snapshot -> Span.event list -> string

(** [write path ?counters events] — {!to_chrome} to a file. *)
val write : ?counters:Counters.snapshot -> string -> Span.event list -> unit
