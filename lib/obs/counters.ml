type snapshot = {
  evaluations : int;
  gap_probes : int;
  joint_gap_probes : int;
  tentative_hops : int;
  commits : int;
  copies : int;
}

let zero : snapshot =
  {
    evaluations = 0;
    gap_probes = 0;
    joint_gap_probes = 0;
    tentative_hops = 0;
    commits = 0;
    copies = 0;
  }

(* One mutable record rather than six refs: a single cache line, and the
   field stores compile to plain [mov]s. *)
type state = {
  mutable evaluations : int;
  mutable gap_probes : int;
  mutable joint_gap_probes : int;
  mutable tentative_hops : int;
  mutable commits : int;
  mutable copies : int;
}

let s =
  {
    evaluations = 0;
    gap_probes = 0;
    joint_gap_probes = 0;
    tentative_hops = 0;
    commits = 0;
    copies = 0;
  }

let on = ref false
let enable () = on := true
let disable () = on := false
let enabled () = !on

let reset () =
  s.evaluations <- 0;
  s.gap_probes <- 0;
  s.joint_gap_probes <- 0;
  s.tentative_hops <- 0;
  s.commits <- 0;
  s.copies <- 0

let snapshot () : snapshot =
  {
    evaluations = s.evaluations;
    gap_probes = s.gap_probes;
    joint_gap_probes = s.joint_gap_probes;
    tentative_hops = s.tentative_hops;
    commits = s.commits;
    copies = s.copies;
  }

let diff (a : snapshot) (b : snapshot) : snapshot =
  {
    evaluations = b.evaluations - a.evaluations;
    gap_probes = b.gap_probes - a.gap_probes;
    joint_gap_probes = b.joint_gap_probes - a.joint_gap_probes;
    tentative_hops = b.tentative_hops - a.tentative_hops;
    commits = b.commits - a.commits;
    copies = b.copies - a.copies;
  }

let pp fmt (c : snapshot) =
  Format.fprintf fmt
    "@[<v>evaluations:      %d@,\
     gap probes:       %d@,\
     joint gap probes: %d@,\
     tentative hops:   %d@,\
     commits:          %d@,\
     copies:           %d@]"
    c.evaluations c.gap_probes c.joint_gap_probes c.tentative_hops c.commits
    c.copies

let evaluation () = if !on then s.evaluations <- s.evaluations + 1 [@@inline]
let gap_probe () = if !on then s.gap_probes <- s.gap_probes + 1 [@@inline]

let joint_gap_probe () =
  if !on then s.joint_gap_probes <- s.joint_gap_probes + 1
[@@inline]

let tentative_hop () =
  if !on then s.tentative_hops <- s.tentative_hops + 1
[@@inline]

let commit () = if !on then s.commits <- s.commits + 1 [@@inline]
let copy () = if !on then s.copies <- s.copies + 1 [@@inline]
