type snapshot = {
  evaluations : int;
  gap_probes : int;
  joint_gap_probes : int;
  tentative_hops : int;
  commits : int;
  copies : int;
  retries : int;
  repairs : int;
  backoff_s : float;
}

let zero : snapshot =
  {
    evaluations = 0;
    gap_probes = 0;
    joint_gap_probes = 0;
    tentative_hops = 0;
    commits = 0;
    copies = 0;
    retries = 0;
    repairs = 0;
    backoff_s = 0.;
  }

(* One mutable record rather than nine refs: a single cache line, and the
   field stores compile to plain [mov]s. *)
type state = {
  mutable evaluations : int;
  mutable gap_probes : int;
  mutable joint_gap_probes : int;
  mutable tentative_hops : int;
  mutable commits : int;
  mutable copies : int;
  mutable retries : int;
  mutable repairs : int;
  mutable backoff_s : float;
}

let s =
  {
    evaluations = 0;
    gap_probes = 0;
    joint_gap_probes = 0;
    tentative_hops = 0;
    commits = 0;
    copies = 0;
    retries = 0;
    repairs = 0;
    backoff_s = 0.;
  }

let on = ref false
let enable () = on := true
let disable () = on := false
let enabled () = !on

let reset () =
  s.evaluations <- 0;
  s.gap_probes <- 0;
  s.joint_gap_probes <- 0;
  s.tentative_hops <- 0;
  s.commits <- 0;
  s.copies <- 0;
  s.retries <- 0;
  s.repairs <- 0;
  s.backoff_s <- 0.

let snapshot () : snapshot =
  {
    evaluations = s.evaluations;
    gap_probes = s.gap_probes;
    joint_gap_probes = s.joint_gap_probes;
    tentative_hops = s.tentative_hops;
    commits = s.commits;
    copies = s.copies;
    retries = s.retries;
    repairs = s.repairs;
    backoff_s = s.backoff_s;
  }

let diff (a : snapshot) (b : snapshot) : snapshot =
  {
    evaluations = b.evaluations - a.evaluations;
    gap_probes = b.gap_probes - a.gap_probes;
    joint_gap_probes = b.joint_gap_probes - a.joint_gap_probes;
    tentative_hops = b.tentative_hops - a.tentative_hops;
    commits = b.commits - a.commits;
    copies = b.copies - a.copies;
    retries = b.retries - a.retries;
    repairs = b.repairs - a.repairs;
    backoff_s = b.backoff_s -. a.backoff_s;
  }

let pp fmt (c : snapshot) =
  Format.fprintf fmt
    "@[<v>evaluations:      %d@,\
     gap probes:       %d@,\
     joint gap probes: %d@,\
     tentative hops:   %d@,\
     commits:          %d@,\
     copies:           %d@]"
    c.evaluations c.gap_probes c.joint_gap_probes c.tentative_hops c.commits
    c.copies;
  (* fault-handling counters only appear once something bumped them, so
     fault-free runs keep their historical output *)
  if c.retries <> 0 || c.repairs <> 0 || c.backoff_s <> 0. then
    Format.fprintf fmt
      "@,@[<v>retries:          %d@,\
       repairs:          %d@,\
       backoff time:     %g@]"
      c.retries c.repairs c.backoff_s

let evaluation () = if !on then s.evaluations <- s.evaluations + 1 [@@inline]
let gap_probe () = if !on then s.gap_probes <- s.gap_probes + 1 [@@inline]

let joint_gap_probe () =
  if !on then s.joint_gap_probes <- s.joint_gap_probes + 1
[@@inline]

let tentative_hop () =
  if !on then s.tentative_hops <- s.tentative_hops + 1
[@@inline]

let commit () = if !on then s.commits <- s.commits + 1 [@@inline]
let copy () = if !on then s.copies <- s.copies + 1 [@@inline]
let retry () = if !on then s.retries <- s.retries + 1 [@@inline]
let repair () = if !on then s.repairs <- s.repairs + 1 [@@inline]
let backoff dt = if !on then s.backoff_s <- s.backoff_s +. dt [@@inline]
