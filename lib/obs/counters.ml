type snapshot = {
  evaluations : int;
  pruned_evaluations : int;
  route_cache_hits : int;
  gap_probes : int;
  joint_gap_probes : int;
  tentative_hops : int;
  commits : int;
  copies : int;
  retries : int;
  repairs : int;
  backoff_s : float;
  rollbacks : int;
  replayed_tasks : int;
  search_pruned_nodes : int;
  replans : int;
  shed_jobs : int;
  frozen_tasks : int;
  deadline_misses : int;
  requests : int;
  batched_replans : int;
  queued_jobs : int;
}

let zero : snapshot =
  {
    evaluations = 0;
    pruned_evaluations = 0;
    route_cache_hits = 0;
    gap_probes = 0;
    joint_gap_probes = 0;
    tentative_hops = 0;
    commits = 0;
    copies = 0;
    retries = 0;
    repairs = 0;
    backoff_s = 0.;
    rollbacks = 0;
    replayed_tasks = 0;
    search_pruned_nodes = 0;
    replans = 0;
    shed_jobs = 0;
    frozen_tasks = 0;
    deadline_misses = 0;
    requests = 0;
    batched_replans = 0;
    queued_jobs = 0;
  }

(* One mutable record rather than eleven refs: a single cache line, and
   the field stores compile to plain [mov]s. *)
type state = {
  mutable evaluations : int;
  mutable pruned_evaluations : int;
  mutable route_cache_hits : int;
  mutable gap_probes : int;
  mutable joint_gap_probes : int;
  mutable tentative_hops : int;
  mutable commits : int;
  mutable copies : int;
  mutable retries : int;
  mutable repairs : int;
  mutable backoff_s : float;
  mutable rollbacks : int;
  mutable replayed_tasks : int;
  mutable search_pruned_nodes : int;
  mutable replans : int;
  mutable shed_jobs : int;
  mutable frozen_tasks : int;
  mutable deadline_misses : int;
  mutable requests : int;
  mutable batched_replans : int;
  mutable queued_jobs : int;
}

(* Domain-local scratch: every domain bumps its own record, so workers of
   a {!Prelude.Pool} sweep never contend (or race) on shared counters.
   The pool merges worker snapshots into the spawning domain at its
   barrier, making totals independent of how the work was sharded. *)
let key : state Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      {
        evaluations = 0;
        pruned_evaluations = 0;
        route_cache_hits = 0;
        gap_probes = 0;
        joint_gap_probes = 0;
        tentative_hops = 0;
        commits = 0;
        copies = 0;
        retries = 0;
        repairs = 0;
        backoff_s = 0.;
        rollbacks = 0;
        replayed_tasks = 0;
        search_pruned_nodes = 0;
        replans = 0;
        shed_jobs = 0;
        frozen_tasks = 0;
        deadline_misses = 0;
        requests = 0;
        batched_replans = 0;
        queued_jobs = 0;
      })

let state () = Domain.DLS.get key

let on = ref false
let enable () = on := true
let disable () = on := false
let enabled () = !on

let reset () =
  let s = state () in
  s.evaluations <- 0;
  s.pruned_evaluations <- 0;
  s.route_cache_hits <- 0;
  s.gap_probes <- 0;
  s.joint_gap_probes <- 0;
  s.tentative_hops <- 0;
  s.commits <- 0;
  s.copies <- 0;
  s.retries <- 0;
  s.repairs <- 0;
  s.backoff_s <- 0.;
  s.rollbacks <- 0;
  s.replayed_tasks <- 0;
  s.search_pruned_nodes <- 0;
  s.replans <- 0;
  s.shed_jobs <- 0;
  s.frozen_tasks <- 0;
  s.deadline_misses <- 0;
  s.requests <- 0;
  s.batched_replans <- 0;
  s.queued_jobs <- 0

let snapshot () : snapshot =
  let s = state () in
  {
    evaluations = s.evaluations;
    pruned_evaluations = s.pruned_evaluations;
    route_cache_hits = s.route_cache_hits;
    gap_probes = s.gap_probes;
    joint_gap_probes = s.joint_gap_probes;
    tentative_hops = s.tentative_hops;
    commits = s.commits;
    copies = s.copies;
    retries = s.retries;
    repairs = s.repairs;
    backoff_s = s.backoff_s;
    rollbacks = s.rollbacks;
    replayed_tasks = s.replayed_tasks;
    search_pruned_nodes = s.search_pruned_nodes;
    replans = s.replans;
    shed_jobs = s.shed_jobs;
    frozen_tasks = s.frozen_tasks;
    deadline_misses = s.deadline_misses;
    requests = s.requests;
    batched_replans = s.batched_replans;
    queued_jobs = s.queued_jobs;
  }

let merge (d : snapshot) =
  let s = state () in
  s.evaluations <- s.evaluations + d.evaluations;
  s.pruned_evaluations <- s.pruned_evaluations + d.pruned_evaluations;
  s.route_cache_hits <- s.route_cache_hits + d.route_cache_hits;
  s.gap_probes <- s.gap_probes + d.gap_probes;
  s.joint_gap_probes <- s.joint_gap_probes + d.joint_gap_probes;
  s.tentative_hops <- s.tentative_hops + d.tentative_hops;
  s.commits <- s.commits + d.commits;
  s.copies <- s.copies + d.copies;
  s.retries <- s.retries + d.retries;
  s.repairs <- s.repairs + d.repairs;
  s.backoff_s <- s.backoff_s +. d.backoff_s;
  s.rollbacks <- s.rollbacks + d.rollbacks;
  s.replayed_tasks <- s.replayed_tasks + d.replayed_tasks;
  s.search_pruned_nodes <- s.search_pruned_nodes + d.search_pruned_nodes;
  s.replans <- s.replans + d.replans;
  s.shed_jobs <- s.shed_jobs + d.shed_jobs;
  s.frozen_tasks <- s.frozen_tasks + d.frozen_tasks;
  s.deadline_misses <- s.deadline_misses + d.deadline_misses;
  s.requests <- s.requests + d.requests;
  s.batched_replans <- s.batched_replans + d.batched_replans;
  s.queued_jobs <- s.queued_jobs + d.queued_jobs

let diff (a : snapshot) (b : snapshot) : snapshot =
  {
    evaluations = b.evaluations - a.evaluations;
    pruned_evaluations = b.pruned_evaluations - a.pruned_evaluations;
    route_cache_hits = b.route_cache_hits - a.route_cache_hits;
    gap_probes = b.gap_probes - a.gap_probes;
    joint_gap_probes = b.joint_gap_probes - a.joint_gap_probes;
    tentative_hops = b.tentative_hops - a.tentative_hops;
    commits = b.commits - a.commits;
    copies = b.copies - a.copies;
    retries = b.retries - a.retries;
    repairs = b.repairs - a.repairs;
    backoff_s = b.backoff_s -. a.backoff_s;
    rollbacks = b.rollbacks - a.rollbacks;
    replayed_tasks = b.replayed_tasks - a.replayed_tasks;
    search_pruned_nodes = b.search_pruned_nodes - a.search_pruned_nodes;
    replans = b.replans - a.replans;
    shed_jobs = b.shed_jobs - a.shed_jobs;
    frozen_tasks = b.frozen_tasks - a.frozen_tasks;
    deadline_misses = b.deadline_misses - a.deadline_misses;
    requests = b.requests - a.requests;
    batched_replans = b.batched_replans - a.batched_replans;
    queued_jobs = b.queued_jobs - a.queued_jobs;
  }

(* The print order below is part of the CLI contract (cram tests pin it):
   evaluations, pruned evaluations, route-cache hits, gap probes, joint
   gap probes, tentative hops, commits, copies — then the fault block
   (retries, repairs, backoff time) only when something bumped it. *)
let pp fmt (c : snapshot) =
  Format.fprintf fmt
    "@[<v>evaluations:      %d@,\
     pruned evaluations: %d@,\
     route-cache hits: %d@,\
     gap probes:       %d@,\
     joint gap probes: %d@,\
     tentative hops:   %d@,\
     commits:          %d@,\
     copies:           %d@]"
    c.evaluations c.pruned_evaluations c.route_cache_hits c.gap_probes
    c.joint_gap_probes c.tentative_hops c.commits c.copies;
  (* fault-handling counters only appear once something bumped them, so
     fault-free runs keep their historical output *)
  if c.retries <> 0 || c.repairs <> 0 || c.backoff_s <> 0. then
    Format.fprintf fmt
      "@,@[<v>retries:          %d@,\
       repairs:          %d@,\
       backoff time:     %g@]"
      c.retries c.repairs c.backoff_s;
  (* incremental-kernel counters follow the same convention: from-scratch
     builds never print them *)
  if c.rollbacks <> 0 || c.replayed_tasks <> 0 || c.search_pruned_nodes <> 0
  then
    Format.fprintf fmt
      "@,@[<v>rollbacks:        %d@,\
       replayed tasks:   %d@,\
       search pruned:    %d@]"
      c.rollbacks c.replayed_tasks c.search_pruned_nodes;
  (* rolling-horizon online counters: offline runs never print them *)
  if
    c.replans <> 0 || c.shed_jobs <> 0 || c.frozen_tasks <> 0
    || c.deadline_misses <> 0
  then
    Format.fprintf fmt
      "@,@[<v>replans:          %d@,\
       shed jobs:        %d@,\
       frozen tasks:     %d@,\
       deadline misses:  %d@]"
      c.replans c.shed_jobs c.frozen_tasks c.deadline_misses;
  (* scheduld daemon counters: anything else never prints them *)
  if c.requests <> 0 || c.batched_replans <> 0 || c.queued_jobs <> 0 then
    Format.fprintf fmt
      "@,@[<v>requests:         %d@,\
       batched replans:  %d@,\
       queued jobs:      %d@]"
      c.requests c.batched_replans c.queued_jobs

let evaluation () =
  if !on then
    let s = state () in
    s.evaluations <- s.evaluations + 1
[@@inline]

let pruned_evaluation () =
  if !on then
    let s = state () in
    s.pruned_evaluations <- s.pruned_evaluations + 1
[@@inline]

let route_cache_hit () =
  if !on then
    let s = state () in
    s.route_cache_hits <- s.route_cache_hits + 1
[@@inline]

let gap_probe () =
  if !on then
    let s = state () in
    s.gap_probes <- s.gap_probes + 1
[@@inline]

let joint_gap_probe () =
  if !on then
    let s = state () in
    s.joint_gap_probes <- s.joint_gap_probes + 1
[@@inline]

let tentative_hop () =
  if !on then
    let s = state () in
    s.tentative_hops <- s.tentative_hops + 1
[@@inline]

let commit () =
  if !on then
    let s = state () in
    s.commits <- s.commits + 1
[@@inline]

let copy () =
  if !on then
    let s = state () in
    s.copies <- s.copies + 1
[@@inline]

let retry () =
  if !on then
    let s = state () in
    s.retries <- s.retries + 1
[@@inline]

let repair () =
  if !on then
    let s = state () in
    s.repairs <- s.repairs + 1
[@@inline]

let backoff dt =
  if !on then
    let s = state () in
    s.backoff_s <- s.backoff_s +. dt
[@@inline]

let rollback () =
  if !on then
    let s = state () in
    s.rollbacks <- s.rollbacks + 1
[@@inline]

let replayed_task () =
  if !on then
    let s = state () in
    s.replayed_tasks <- s.replayed_tasks + 1
[@@inline]

let search_pruned_node () =
  if !on then
    let s = state () in
    s.search_pruned_nodes <- s.search_pruned_nodes + 1
[@@inline]

let replan () =
  if !on then
    let s = state () in
    s.replans <- s.replans + 1
[@@inline]

let shed_job () =
  if !on then
    let s = state () in
    s.shed_jobs <- s.shed_jobs + 1
[@@inline]

let frozen_task () =
  if !on then
    let s = state () in
    s.frozen_tasks <- s.frozen_tasks + 1
[@@inline]

let deadline_miss () =
  if !on then
    let s = state () in
    s.deadline_misses <- s.deadline_misses + 1
[@@inline]

let server_request () =
  if !on then
    let s = state () in
    s.requests <- s.requests + 1
[@@inline]

let batched_replan () =
  if !on then
    let s = state () in
    s.batched_replans <- s.batched_replans + 1
[@@inline]

let queued_job () =
  if !on then
    let s = state () in
    s.queued_jobs <- s.queued_jobs + 1
[@@inline]
