type kind = Begin | End
type event = { name : string; kind : kind; ts : float; seq : int }

let default_capacity = 65536

(* Parallel arrays so that pushing an event stores a pointer, a byte and
   an unboxed float — no allocation. *)
type ring = {
  mutable names : string array;
  mutable begins : Bytes.t;  (* 1 = Begin, 0 = End *)
  mutable tss : float array;
  mutable total : int;  (* events ever pushed; ring slot = total mod cap *)
}

let r = { names = [||]; begins = Bytes.empty; tss = [||]; total = 0 }
let on = ref false
let last_ts = ref neg_infinity

let ensure_capacity cap =
  if Array.length r.names <> cap then begin
    r.names <- Array.make cap "";
    r.begins <- Bytes.make cap '\000';
    r.tss <- Array.make cap 0.;
    r.total <- 0
  end

let enable ?(capacity = default_capacity) () =
  if capacity < 1 then invalid_arg "Span.enable: capacity < 1";
  ensure_capacity capacity;
  on := true

let disable () = on := false
let enabled () = !on

let reset () =
  r.total <- 0;
  last_ts := neg_infinity

let cursor () = r.total

let dropped () =
  let cap = Array.length r.names in
  if cap = 0 then 0 else max 0 (r.total - cap)

(* Wall clock, clamped so recorded timestamps never decrease. *)
let now () =
  let t = Unix.gettimeofday () in
  if t > !last_ts then last_ts := t;
  !last_ts

let push name kind =
  let cap = Array.length r.names in
  if cap > 0 then begin
    let i = r.total mod cap in
    r.names.(i) <- name;
    Bytes.unsafe_set r.begins i (match kind with Begin -> '\001' | End -> '\000');
    r.tss.(i) <- now ();
    r.total <- r.total + 1
  end

(* The ring is one shared buffer with no synchronisation, so only the
   main domain records; spans emitted inside Prelude.Pool workers are
   dropped (timings are wall-clock and inherently non-mergeable —
   counters, which are mergeable, stay per-domain in Counters). *)
let recording () = !on && Domain.is_main_domain ()
let begin_ name = if recording () then push name Begin
let end_ name = if recording () then push name End

let with_ name f =
  if not (recording ()) then f ()
  else begin
    push name Begin;
    Fun.protect ~finally:(fun () -> push name End) f
  end

let nth_event abs =
  let cap = Array.length r.names in
  let i = abs mod cap in
  {
    name = r.names.(i);
    kind = (if Bytes.get r.begins i = '\001' then Begin else End);
    ts = r.tss.(i);
    seq = abs;
  }

let events_from seq =
  let first = max seq (r.total - Array.length r.names) in
  let first = max first 0 in
  List.init (max 0 (r.total - first)) (fun k -> nth_event (first + k))

let events () = events_from 0
