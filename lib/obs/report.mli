(** Aggregated observability payload for one scheduler run: the counter
    deltas plus wall-time totals per span name.  This is what
    [Experiments.Runner] attaches to its rows and what the CLI prints
    under [--stats]. *)

type t = {
  counters : Counters.snapshot;
  phases : (string * float) list;
      (** total seconds per span name, first-seen order; nested spans
          are counted inside their parents *)
}

val empty : t

(** [phase_totals events] — fold balanced begin/end pairs into per-name
    wall-time totals (unmatched events are ignored). *)
val phase_totals : Span.event list -> (string * float) list

(** [capture f] — run [f] with counters and spans scoped: remembers the
    counter snapshot and span cursor, runs [f], and returns the report
    covering exactly that window.  Does {e not} toggle the global
    enabled flags; with observability disabled the report is
    {!empty}. *)
val capture : (unit -> 'a) -> 'a * t

val pp : Format.formatter -> t -> unit
