let json_escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* Balance the event stream: drop End events with no open Begin and
   close Begins left open at the end of the buffer (both can happen when
   the ring overwrote one half of a pair). *)
let balance (events : Span.event list) =
  let open_stack = ref [] in
  let kept =
    List.filter
      (fun (e : Span.event) ->
        match e.Span.kind with
        | Span.Begin ->
            open_stack := e :: !open_stack;
            true
        | Span.End -> (
            match !open_stack with
            | _ :: rest ->
                open_stack := rest;
                true
            | [] -> false))
      events
  in
  let last_ts =
    List.fold_left (fun acc (e : Span.event) -> max acc e.Span.ts) 0. kept
  in
  let closers =
    List.map
      (fun (e : Span.event) ->
        { e with Span.kind = Span.End; ts = last_ts })
      !open_stack
  in
  kept @ closers

let to_chrome ?(pid = 0) ?counters events =
  let events = balance events in
  let t0 =
    match events with [] -> 0. | e :: _ -> e.Span.ts
  in
  let us ts = (ts -. t0) *. 1e6 in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "[";
  let first = ref true in
  let emit line =
    if not !first then Buffer.add_string buf ",\n";
    first := false;
    Buffer.add_string buf line
  in
  emit
    (Printf.sprintf
       {|{"name":"process_name","ph":"M","pid":%d,"tid":0,"args":{"name":"scheduler"}}|}
       pid);
  emit
    (Printf.sprintf
       {|{"name":"thread_name","ph":"M","pid":%d,"tid":0,"args":{"name":"main"}}|}
       pid);
  List.iter
    (fun (e : Span.event) ->
      let ph = match e.Span.kind with Span.Begin -> "B" | Span.End -> "E" in
      emit
        (Printf.sprintf {|{"name":"%s","ph":"%s","ts":%.3f,"pid":%d,"tid":0}|}
           (json_escape e.Span.name) ph (us e.Span.ts) pid))
    events;
  (match counters with
  | None -> ()
  | Some (c : Counters.snapshot) ->
      let last =
        List.fold_left (fun acc (e : Span.event) -> max acc e.Span.ts) t0 events
      in
      emit
        (Printf.sprintf
           {|{"name":"engine probes","ph":"C","ts":%.3f,"pid":%d,"args":{"evaluations":%d,"pruned_evaluations":%d,"route_cache_hits":%d,"gap_probes":%d,"joint_gap_probes":%d,"tentative_hops":%d,"commits":%d,"copies":%d,"retries":%d,"repairs":%d,"backoff_s":%g,"rollbacks":%d,"replayed_tasks":%d,"search_pruned_nodes":%d,"replans":%d,"shed_jobs":%d,"frozen_tasks":%d,"deadline_misses":%d}}|}
           (us last) pid c.Counters.evaluations c.Counters.pruned_evaluations
           c.Counters.route_cache_hits c.Counters.gap_probes
           c.Counters.joint_gap_probes c.Counters.tentative_hops
           c.Counters.commits c.Counters.copies c.Counters.retries
           c.Counters.repairs c.Counters.backoff_s c.Counters.rollbacks
           c.Counters.replayed_tasks c.Counters.search_pruned_nodes
           c.Counters.replans c.Counters.shed_jobs c.Counters.frozen_tasks
           c.Counters.deadline_misses));
  Buffer.add_string buf "]\n";
  Buffer.contents buf

let write ?counters path events =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_chrome ?counters events))
