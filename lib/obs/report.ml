type t = {
  counters : Counters.snapshot;
  phases : (string * float) list;
}

let empty = { counters = Counters.zero; phases = [] }

let phase_totals events =
  (* Stack-match begin/end pairs; accumulate per name in first-seen
     order.  Unmatched ends (ring overwrite) are skipped; unmatched
     begins contribute nothing. *)
  let order = ref [] in
  let totals = Hashtbl.create 16 in
  let stack = ref [] in
  List.iter
    (fun (e : Span.event) ->
      match e.Span.kind with
      | Span.Begin -> stack := e :: !stack
      | Span.End -> (
          match !stack with
          | opener :: rest ->
              stack := rest;
              let dt = e.Span.ts -. opener.Span.ts in
              if not (Hashtbl.mem totals opener.Span.name) then
                order := opener.Span.name :: !order;
              Hashtbl.replace totals opener.Span.name
                (dt
                +.
                match Hashtbl.find_opt totals opener.Span.name with
                | Some acc -> acc
                | None -> 0.)
          | [] -> ()))
    events;
  List.rev_map (fun name -> (name, Hashtbl.find totals name)) !order

let capture f =
  if not (Counters.enabled () || Span.enabled ()) then (f (), empty)
  else begin
    let c0 = Counters.snapshot () in
    let cur = Span.cursor () in
    let x = f () in
    let counters = Counters.diff c0 (Counters.snapshot ()) in
    (* The span ring belongs to the main domain; a capture running in a
       pool worker must not attribute the main domain's events to
       itself. *)
    let phases =
      if Domain.is_main_domain () then phase_totals (Span.events_from cur)
      else []
    in
    (x, { counters; phases })
  end

let pp fmt r =
  Format.fprintf fmt "@[<v>%a" Counters.pp r.counters;
  List.iter
    (fun (name, s) -> Format.fprintf fmt "@,%-16s %.6fs" name s)
    r.phases;
  Format.fprintf fmt "@]"
