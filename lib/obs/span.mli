(** Begin/end span tracing with a fixed-capacity ring buffer.

    Instrumented code brackets interesting phases with {!with_} (or raw
    {!begin_}/{!end_}).  Events carry a name, a kind and a wall-clock
    timestamp; they land in a preallocated ring, so a long run overwrites
    its oldest events instead of growing without bound ({!dropped} says
    how many were lost).  Timestamps are clamped monotonic at record time
    — a trace never runs backwards even if the system clock does.

    Tracing is globally toggleable and off by default; a disabled
    {!with_} is one load-and-branch around the thunk.  Recording an
    event allocates nothing: names, kinds and timestamps live in three
    parallel preallocated arrays.

    {b Domains.}  The ring is a single unsynchronised buffer, so only
    the main domain records: spans emitted inside {!Prelude.Pool}
    workers are silently dropped (per-domain wall-clock phases are not
    meaningfully mergeable; the mergeable signal — {!Counters} — is
    kept per-domain instead). *)

type kind = Begin | End

type event = {
  name : string;
  kind : kind;
  ts : float;  (** seconds, monotonically non-decreasing *)
  seq : int;  (** absolute event number since the last {!reset} *)
}

(** [enable ?capacity ()] — start recording.  [capacity] (default 65536)
    resizes and clears the ring if it differs from the current one. *)
val enable : ?capacity:int -> unit -> unit

val disable : unit -> unit
val enabled : unit -> bool

(** Drop all recorded events (the enabled flag is untouched). *)
val reset : unit -> unit

(** Events still in the ring, oldest first. *)
val events : unit -> event list

(** [events_from seq] — the recorded events with [e.seq >= seq] (oldest
    first); pair with {!cursor} to scope a region of interest. *)
val events_from : int -> event list

(** The sequence number the next event will get. *)
val cursor : unit -> int

(** Events lost to ring overwrite since the last {!reset}. *)
val dropped : unit -> int

val begin_ : string -> unit
val end_ : string -> unit

(** [with_ name f] — [begin_ name], run [f], [end_ name]; the end event
    is recorded even if [f] raises. *)
val with_ : string -> (unit -> 'a) -> 'a
