(** Hot-path counters for the scheduling engine and the fault-handling
    machinery.

    Eight monotonic counters cover the per-decision costs that dominate
    every list heuristic in this library:

    - [evaluations]: calls to [Engine.evaluate] — one candidate
      (task, processor) pair priced;
    - [pruned_evaluations]: candidate processors skipped without a full
      evaluation because a lower bound on their finish time already met
      the incumbent ([Engine.best_proc_among]'s fast path);
    - [route_cache_hits]: per-(source, destination) route/busy-set
      lookups served from the engine's cache instead of recomputing
      [Platform.route] and the port busy sets;
    - [gap_probes]: single-timeline earliest-gap searches
      ([Timeline.earliest_gap]);
    - [joint_gap_probes]: joint (one-port) earliest-gap searches
      ([Timeline.earliest_gap_joint] and its array fast path);
    - [tentative_hops]: communication hops planned during evaluation
      (most are discarded — only the winning processor's hops commit);
    - [commits]: evaluations actually committed ([Engine.commit]);
    - [copies]: whole-schedule copies ([Schedule.copy] — the cost of
      ILHA's reschedule variant and of the improvers).

    Three further counters trace fault handling
    ([Simkit.Faulty_executor], [Heuristics.Repair]):

    - [retries]: communication hops re-executed after a transient
      failure;
    - [repairs]: tasks re-mapped by the online repair pass;
    - [backoff_s]: total {e simulated} time spent waiting in
      exponential backoff between retry attempts (a float — simulated
      time units, not wall seconds).

    Three more trace the incremental kernel ([Schedule.restore],
    [Engine.rewind], the prefix-replay improvers and the undo-based
    branch-and-bound search):

    - [rollbacks]: whole-schedule rewinds ([Schedule.restore],
      [Engine.rewind]);
    - [replayed_tasks]: tasks re-committed by a prefix-replay rebuild
      (the suffix work an incremental move actually pays for);
    - [search_pruned_nodes]: branch-and-bound nodes cut by the incumbent
      bound in [Search.best_schedule].

    Four more trace the rolling-horizon online driver
    ([Online.Driver]):

    - [replans]: suffix re-plans triggered by arrivals, failures,
      rejoins or predicted deadline misses;
    - [shed_jobs]: pending jobs dropped by graceful degradation to
      protect a higher-priority deadline;
    - [frozen_tasks]: executed-prefix tasks whose decisions a re-plan
      kept verbatim (summed over re-plans);
    - [deadline_misses]: jobs that completed after their deadline (or
      were shed while holding one).

    Three more trace the scheduler-as-a-service daemon
    ([Server.Scheduld]):

    - [requests]: protocol request lines processed (including malformed
      ones answered with an error reply);
    - [batched_replans]: coalesced re-plans — each one schedules a whole
      batch of queued submissions in a single pass;
    - [queued_jobs]: submissions admitted to the backlog.

    Counting is globally toggleable and off by default.  When disabled,
    every bump is a single load-and-branch; when enabled, a
    domain-local-storage lookup plus an in-place integer store — no
    allocation either way, so instrumented code can sit inside the
    innermost loops.

    {b Domains.}  Each domain accumulates into its own domain-local
    record, so parallel sweeps ({!Prelude.Pool}) never contend on shared
    state.  [reset]/[snapshot]/[merge] all act on the {e calling}
    domain's record; the pool snapshots every worker at its barrier and
    [merge]s the snapshots into the spawning domain, which makes
    [--stats] totals independent of the number of jobs. *)

(** An immutable reading of all counters. *)
type snapshot = {
  evaluations : int;
  pruned_evaluations : int;
  route_cache_hits : int;
  gap_probes : int;
  joint_gap_probes : int;
  tentative_hops : int;
  commits : int;
  copies : int;
  retries : int;
  repairs : int;
  backoff_s : float;
  rollbacks : int;
  replayed_tasks : int;
  search_pruned_nodes : int;
  replans : int;
  shed_jobs : int;
  frozen_tasks : int;
  deadline_misses : int;
  requests : int;
  batched_replans : int;
  queued_jobs : int;
}

val zero : snapshot

val enable : unit -> unit
val disable : unit -> unit
val enabled : unit -> bool

(** Reset all counters to zero (independent of the enabled flag). *)
val reset : unit -> unit

val snapshot : unit -> snapshot

(** [diff before after] — per-field [after - before]. *)
val diff : snapshot -> snapshot -> snapshot

(** [merge d] adds every field of [d] into the calling domain's
    counters (independent of the enabled flag).  Used by
    {!Prelude.Pool} to fold worker-domain counts into the spawning
    domain at the barrier; counters are monotonic event counts, so the
    merged totals equal a serial run's regardless of sharding. *)
val merge : snapshot -> unit

(** Pretty one-line-per-counter rendering.  The line order is stable and
    part of the CLI contract (cram tests pin it): evaluations, pruned
    evaluations, route-cache hits, gap probes, joint gap probes,
    tentative hops, commits, copies — then the fault block (retries,
    repairs, backoff time), the incremental-kernel block (rollbacks,
    replayed tasks, search pruned) and the online block (replans, shed
    jobs, frozen tasks, deadline misses) and the scheduld block
    (requests, batched replans, queued jobs), each printed only when
    nonzero. *)
val pp : Format.formatter -> snapshot -> unit

(** {2 Bump sites} — no-ops while disabled. *)

val evaluation : unit -> unit
val pruned_evaluation : unit -> unit
val route_cache_hit : unit -> unit
val gap_probe : unit -> unit
val joint_gap_probe : unit -> unit
val tentative_hop : unit -> unit
val commit : unit -> unit
val copy : unit -> unit
val retry : unit -> unit
val repair : unit -> unit

(** [backoff dt] accumulates [dt] simulated time units of retry
    backoff. *)
val backoff : float -> unit

val rollback : unit -> unit
val replayed_task : unit -> unit
val search_pruned_node : unit -> unit
val replan : unit -> unit
val shed_job : unit -> unit
val frozen_task : unit -> unit
val deadline_miss : unit -> unit
val server_request : unit -> unit
val batched_replan : unit -> unit
val queued_job : unit -> unit
