module Graph = Taskgraph.Graph
module Schedule = Sched.Schedule
module Comm_model = Commmodel.Comm_model

type trace = {
  makespan : float;
  task_starts : float array;
  events_fired : int;
}

type resource = Compute of int | Send of int | Recv of int | Link of int * int

(* Event nodes: tasks are [0, n); hops follow in commit order. *)
let run s =
  let g = Schedule.graph s in
  let model = Schedule.model s in
  let n = Graph.n_tasks g in
  let comms = Array.of_list (Schedule.comms s) in
  let k = Array.length comms in
  let total = n + k in
  let duration = Array.make total 0. in
  for v = 0 to n - 1 do
    let pl = Schedule.placement_exn s v in
    duration.(v) <- pl.Schedule.finish -. pl.Schedule.start
  done;
  Array.iteri (fun i (c : Schedule.comm) -> duration.(n + i) <- c.finish -. c.start) comms;
  (* --- data dependencies (same wiring as the PERT view) --- *)
  let dependents = Array.make total [] in
  let deps_remaining = Array.make total 0 in
  let add_dep a b =
    if a <> b then begin
      dependents.(a) <- b :: dependents.(a);
      deps_remaining.(b) <- deps_remaining.(b) + 1
    end
  in
  let per_edge = Array.make (max (Graph.n_edges g) 1) [] in
  Array.iteri (fun i (c : Schedule.comm) -> per_edge.(c.edge) <- (n + i) :: per_edge.(c.edge)) comms;
  List.iter
    (fun (e : Graph.edge) ->
      match List.rev per_edge.(e.id) with
      | [] -> add_dep e.src e.dst
      | hops ->
          let last =
            List.fold_left
              (fun prev hop ->
                add_dep prev hop;
                hop)
              e.src hops
          in
          add_dep last e.dst)
    (Graph.edges g);
  (* --- resource FIFOs in recorded start order --- *)
  let streams : (resource, (float * int) list ref) Hashtbl.t = Hashtbl.create 64 in
  let occupy resource node start =
    let q =
      match Hashtbl.find_opt streams resource with
      | Some q -> q
      | None ->
          let q = ref [] in
          Hashtbl.add streams resource q;
          q
    in
    q := (start, node) :: !q
  in
  for v = 0 to n - 1 do
    let pl = Schedule.placement_exn s v in
    occupy (Compute pl.Schedule.proc) v pl.Schedule.start
  done;
  (* Mirrors Pert: only port-regime events occupy whole-span resources;
     BSP / latency+overhead events stay pure dependency events. *)
  (match model.Comm_model.regime with
  | Comm_model.Bsp _ | Comm_model.Latency_overhead _ -> ()
  | Comm_model.Port ->
      Array.iteri
        (fun i (c : Schedule.comm) ->
          let node = n + i in
          (match model.Comm_model.ports with
          | Comm_model.Unlimited -> ()
          | Comm_model.One_port_bidirectional ->
              occupy (Send c.src_proc) node c.start;
              occupy (Recv c.dst_proc) node c.start
          | Comm_model.One_port_unidirectional ->
              occupy (Send c.src_proc) node c.start;
              occupy (Send c.dst_proc) node c.start);
          if model.Comm_model.link_contention then
            occupy (Link (min c.src_proc c.dst_proc, max c.src_proc c.dst_proc)) node c.start;
          if not model.Comm_model.overlap then begin
            occupy (Compute c.src_proc) node c.start;
            occupy (Compute c.dst_proc) node c.start
          end)
        comms);
  (* per-node resource list + per-resource FIFO (sorted by recorded start,
     ties by node id) and a cursor *)
  let node_resources = Array.make total [] in
  let fifo : (resource, int array) Hashtbl.t = Hashtbl.create 64 in
  let cursor : (resource, int ref) Hashtbl.t = Hashtbl.create 64 in
  let free_at : (resource, float ref) Hashtbl.t = Hashtbl.create 64 in
  Hashtbl.iter
    (fun resource q ->
      let arr = Array.of_list (List.sort compare !q) in
      let order = Array.map snd arr in
      Array.iter
        (fun node -> node_resources.(node) <- resource :: node_resources.(node))
        order;
      Hashtbl.add fifo resource order;
      Hashtbl.add cursor resource (ref 0);
      Hashtbl.add free_at resource (ref 0.))
    streams;
  (* --- simulation --- *)
  let ready_time = Array.make total 0. in
  let fired = Array.make total false in
  (* running events ordered by completion time (ties by node) *)
  let running =
    Prelude.Pqueue.create ~compare:(fun (t1, n1) (t2, n2) ->
        match compare (t1 : float) t2 with 0 -> compare n1 n2 | c -> c)
  in
  let events_fired = ref 0 in
  let task_starts = Array.make n 0. in
  let makespan = ref 0. in
  let can_fire node =
    (not fired.(node))
    && deps_remaining.(node) = 0
    && List.for_all
         (fun r ->
           let cur = !(Hashtbl.find cursor r) in
           let order = Hashtbl.find fifo r in
           cur < Array.length order && order.(cur) = node)
         node_resources.(node)
  in
  (* Firing a node frees the head position of each of its FIFOs, so only
     its resource-successors and (on completion) its data dependents can
     become enabled: a worklist keeps the simulation near-linear. *)
  let rec try_fire node =
    if can_fire node then begin
      fired.(node) <- true;
      incr events_fired;
      let start =
        List.fold_left
          (fun acc r -> max acc !(Hashtbl.find free_at r))
          ready_time.(node) node_resources.(node)
      in
      let finish = start +. duration.(node) in
      if node < n then begin
        task_starts.(node) <- start;
        if finish > !makespan then makespan := finish
      end;
      List.iter
        (fun r ->
          Hashtbl.find free_at r := finish;
          incr (Hashtbl.find cursor r))
        node_resources.(node);
      Prelude.Pqueue.add running (finish, node);
      (* the new heads of this node's FIFOs are now candidates *)
      List.iter
        (fun r ->
          let cur = !(Hashtbl.find cursor r) in
          let order = Hashtbl.find fifo r in
          if cur < Array.length order then try_fire order.(cur))
        node_resources.(node)
    end
  in
  for node = 0 to total - 1 do
    try_fire node
  done;
  let rec step () =
    match Prelude.Pqueue.pop running with
    | None -> ()
    | Some (finish, node) ->
        List.iter
          (fun b ->
            deps_remaining.(b) <- deps_remaining.(b) - 1;
            if ready_time.(b) < finish then ready_time.(b) <- finish)
          dependents.(node);
        List.iter try_fire dependents.(node);
        step ()
  in
  step ();
  if !events_fired <> total then
    failwith
      (Printf.sprintf "Executor.run: deadlock after %d/%d events" !events_fired
         total);
  { makespan = !makespan; task_starts; events_fired = !events_fired }
