module Graph = Taskgraph.Graph
module Schedule = Sched.Schedule
module Comm_model = Commmodel.Comm_model

type trace = {
  makespan : float;
  task_starts : float array;
  events_fired : int;
}

type resource = Compute of int | Send of int | Recv of int | Link of int * int

let feed_eps = 1e-9

(* Event nodes: tasks are [0, n); hops follow in commit order; duplicate
   copies (if any) come last. *)
let run s =
  let g = Schedule.graph s in
  let model = Schedule.model s in
  let n = Graph.n_tasks g in
  let comms = Array.of_list (Schedule.comms s) in
  let k = Array.length comms in
  let nd = Schedule.n_dup_copies s in
  let copy_task = if nd = 0 then [||] else Array.make nd 0 in
  let copy_pl = Array.make (max nd 1) { Schedule.task = 0; proc = 0; start = 0.; finish = 0. } in
  let copy_ix = Hashtbl.create 16 in
  if nd > 0 then begin
    let j = ref 0 in
    for v = 0 to n - 1 do
      List.iter
        (fun (c : Schedule.placement) ->
          copy_task.(!j) <- v;
          copy_pl.(!j) <- c;
          Hashtbl.add copy_ix (v, c.proc) (n + k + !j);
          incr j)
        (Schedule.dup_copies s v)
    done
  end;
  let copy_node v q =
    if (Schedule.placement_exn s v).proc = q then v
    else match Hashtbl.find_opt copy_ix (v, q) with Some node -> node | None -> v
  in
  let total = n + k + nd in
  let duration = Array.make total 0. in
  for v = 0 to n - 1 do
    let pl = Schedule.placement_exn s v in
    duration.(v) <- pl.Schedule.finish -. pl.Schedule.start
  done;
  Array.iteri (fun i (c : Schedule.comm) -> duration.(n + i) <- c.finish -. c.start) comms;
  for j = 0 to nd - 1 do
    duration.(n + k + j) <- copy_pl.(j).Schedule.finish -. copy_pl.(j).Schedule.start
  done;
  (* --- data dependencies (same wiring as the PERT view) --- *)
  let dependents = Array.make total [] in
  let deps_remaining = Array.make total 0 in
  let add_dep a b =
    if a <> b then begin
      dependents.(a) <- b :: dependents.(a);
      deps_remaining.(b) <- deps_remaining.(b) + 1
    end
  in
  if nd = 0 then begin
    let per_edge = Array.make (max (Graph.n_edges g) 1) [] in
    Array.iteri (fun i (c : Schedule.comm) -> per_edge.(c.edge) <- (n + i) :: per_edge.(c.edge)) comms;
    List.iter
      (fun (e : Graph.edge) ->
        match List.rev per_edge.(e.id) with
        | [] -> add_dep e.src e.dst
        | hops ->
            let last =
              List.fold_left
                (fun prev hop ->
                  add_dep prev hop;
                  hop)
                e.src hops
            in
            add_dep last e.dst)
      (Graph.edges g)
  end
  else begin
    (* Copy-set wiring: one provenance chain per remote delivery, running
       source copy -> hops -> destination copy; consumer copies also pick
       up their local / zero-data feeds. *)
    let per_edge = Array.make (max (Graph.n_edges g) 1) [] in
    Array.iteri
      (fun i (c : Schedule.comm) ->
        per_edge.(c.edge) <- (n + i, Schedule.comm_head_at s i) :: per_edge.(c.edge))
      comms;
    let chains_of e =
      List.fold_left
        (fun acc (node, head) ->
          match acc with
          | cur :: rest when not head -> (node :: cur) :: rest
          | _ -> [ node ] :: acc)
        []
        (List.rev per_edge.(e))
      |> List.rev_map List.rev
    in
    List.iter
      (fun (e : Graph.edge) ->
        List.iter
          (fun chain ->
            let first = comms.(List.hd chain - n) in
            let last_node = List.nth chain (List.length chain - 1) in
            let last = comms.(last_node - n) in
            add_dep (copy_node e.src first.Schedule.src_proc) (List.hd chain);
            let rec seq = function
              | a :: (b :: _ as rest) ->
                  add_dep a b;
                  seq rest
              | [ _ ] | [] -> ()
            in
            seq chain;
            add_dep last_node (copy_node e.dst last.Schedule.dst_proc))
          (chains_of e.id);
        let data = Graph.edge_data g e.id in
        List.iter
          (fun (cv : Schedule.placement) ->
            if data = 0. then begin
              let rep =
                match Schedule.copies s e.src with
                | c :: rest ->
                    List.fold_left
                      (fun (b : Schedule.placement) (c : Schedule.placement) ->
                        if
                          c.finish < b.finish
                          || (c.finish = b.finish && c.proc < b.proc)
                        then c
                        else b)
                      c rest
                | [] -> Schedule.placement_exn s e.src
              in
              add_dep (copy_node e.src rep.proc) (copy_node e.dst cv.proc)
            end
            else
              match Schedule.copy_on s ~task:e.src ~proc:cv.proc with
              | Some cu when cu.finish <= cv.start +. feed_eps ->
                  add_dep (copy_node e.src cu.proc) (copy_node e.dst cv.proc)
              | _ -> ())
          (Schedule.copies s e.dst))
      (Graph.edges g)
  end;
  (* --- resource FIFOs in recorded start order --- *)
  let streams : (resource, (float * int) list ref) Hashtbl.t = Hashtbl.create 64 in
  let occupy resource node start =
    let q =
      match Hashtbl.find_opt streams resource with
      | Some q -> q
      | None ->
          let q = ref [] in
          Hashtbl.add streams resource q;
          q
    in
    q := (start, node) :: !q
  in
  for v = 0 to n - 1 do
    let pl = Schedule.placement_exn s v in
    occupy (Compute pl.Schedule.proc) v pl.Schedule.start
  done;
  for j = 0 to nd - 1 do
    occupy (Compute copy_pl.(j).Schedule.proc) (n + k + j) copy_pl.(j).Schedule.start
  done;
  (* Mirrors Pert: only port-regime events occupy whole-span resources;
     BSP / latency+overhead events stay pure dependency events. *)
  (match model.Comm_model.regime with
  | Comm_model.Bsp _ | Comm_model.Latency_overhead _ -> ()
  | Comm_model.Port ->
      Array.iteri
        (fun i (c : Schedule.comm) ->
          let node = n + i in
          (match model.Comm_model.ports with
          | Comm_model.Unlimited -> ()
          | Comm_model.One_port_bidirectional ->
              occupy (Send c.src_proc) node c.start;
              occupy (Recv c.dst_proc) node c.start
          | Comm_model.One_port_unidirectional ->
              occupy (Send c.src_proc) node c.start;
              occupy (Send c.dst_proc) node c.start);
          if model.Comm_model.link_contention then
            occupy (Link (min c.src_proc c.dst_proc, max c.src_proc c.dst_proc)) node c.start;
          if not model.Comm_model.overlap then begin
            occupy (Compute c.src_proc) node c.start;
            occupy (Compute c.dst_proc) node c.start
          end)
        comms);
  (* per-node resource list + per-resource FIFO (sorted by recorded start,
     ties by node id) and a cursor *)
  let node_resources = Array.make total [] in
  let fifo : (resource, int array) Hashtbl.t = Hashtbl.create 64 in
  let cursor : (resource, int ref) Hashtbl.t = Hashtbl.create 64 in
  let free_at : (resource, float ref) Hashtbl.t = Hashtbl.create 64 in
  Hashtbl.iter
    (fun resource q ->
      let arr = Array.of_list (List.sort compare !q) in
      let order = Array.map snd arr in
      Array.iter
        (fun node -> node_resources.(node) <- resource :: node_resources.(node))
        order;
      Hashtbl.add fifo resource order;
      Hashtbl.add cursor resource (ref 0);
      Hashtbl.add free_at resource (ref 0.))
    streams;
  (* --- simulation --- *)
  let ready_time = Array.make total 0. in
  let fired = Array.make total false in
  (* running events ordered by completion time (ties by node) *)
  let running =
    Prelude.Pqueue.create ~compare:(fun (t1, n1) (t2, n2) ->
        match compare (t1 : float) t2 with 0 -> compare n1 n2 | c -> c)
  in
  let events_fired = ref 0 in
  let task_starts = Array.make n (if nd = 0 then 0. else infinity) in
  (* a duplicated task completes at its earliest copy's finish *)
  let task_fin = if nd = 0 then [||] else Array.make n infinity in
  let makespan = ref 0. in
  let can_fire node =
    (not fired.(node))
    && deps_remaining.(node) = 0
    && List.for_all
         (fun r ->
           let cur = !(Hashtbl.find cursor r) in
           let order = Hashtbl.find fifo r in
           cur < Array.length order && order.(cur) = node)
         node_resources.(node)
  in
  let task_of node =
    if node < n then Some node
    else if node >= n + k then Some copy_task.(node - n - k)
    else None
  in
  (* Firing a node frees the head position of each of its FIFOs, so only
     its resource-successors and (on completion) its data dependents can
     become enabled: a worklist keeps the simulation near-linear. *)
  let rec try_fire node =
    if can_fire node then begin
      fired.(node) <- true;
      incr events_fired;
      let start =
        List.fold_left
          (fun acc r -> max acc !(Hashtbl.find free_at r))
          ready_time.(node) node_resources.(node)
      in
      let finish = start +. duration.(node) in
      (match task_of node with
      | None -> ()
      | Some v ->
          if nd = 0 then begin
            task_starts.(v) <- start;
            if finish > !makespan then makespan := finish
          end
          else begin
            if start < task_starts.(v) then task_starts.(v) <- start;
            if finish < task_fin.(v) then task_fin.(v) <- finish
          end);
      List.iter
        (fun r ->
          Hashtbl.find free_at r := finish;
          incr (Hashtbl.find cursor r))
        node_resources.(node);
      Prelude.Pqueue.add running (finish, node);
      (* the new heads of this node's FIFOs are now candidates *)
      List.iter
        (fun r ->
          let cur = !(Hashtbl.find cursor r) in
          let order = Hashtbl.find fifo r in
          if cur < Array.length order then try_fire order.(cur))
        node_resources.(node)
    end
  in
  for node = 0 to total - 1 do
    try_fire node
  done;
  let rec step () =
    match Prelude.Pqueue.pop running with
    | None -> ()
    | Some (finish, node) ->
        List.iter
          (fun b ->
            deps_remaining.(b) <- deps_remaining.(b) - 1;
            if ready_time.(b) < finish then ready_time.(b) <- finish)
          dependents.(node);
        List.iter try_fire dependents.(node);
        step ()
  in
  step ();
  if !events_fired <> total then
    failwith
      (Printf.sprintf "Executor.run: deadlock after %d/%d events" !events_fired
         total);
  if nd > 0 then
    Array.iter (fun f -> if f > !makespan then makespan := f) task_fin;
  { makespan = !makespan; task_starts; events_fired = !events_fired }
