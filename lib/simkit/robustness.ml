open Prelude

type stats = {
  nominal : float;
  mean : float;
  stddev : float;
  worst : float;
  p95 : float;
  p99 : float;
  trials : int;
  task_jitter : float;
  comm_jitter : float;
}

let degraded_makespan pert rng ~task_jitter ~comm_jitter =
  Pert.retime pert
    ~task_duration:(fun _ d -> d *. (1. +. Rng.float rng task_jitter))
    ~hop_duration:(fun _ d -> d *. (1. +. Rng.float rng comm_jitter))

let monte_carlo ?task_jitter ?comm_jitter ?(jobs = 1) sched rng ~jitter ~trials
    =
  if trials < 1 then invalid_arg "Robustness.monte_carlo: trials < 1";
  let task_jitter = Option.value task_jitter ~default:jitter in
  let comm_jitter = Option.value comm_jitter ~default:jitter in
  let pert = Pert.build sched in
  (* Every trial draws from its own split of the caller's stream, taken
     up front in trial order: trial [i] consumes the same numbers
     whichever domain replays it, so the stats are [jobs]-independent.
     ([Pert.retime] allocates fresh scratch per call — safe to share
     [pert] across domains.) *)
  let rngs = Array.make trials rng in
  for i = 0 to trials - 1 do
    rngs.(i) <- Rng.split rng
  done;
  let draw = Array.make trials 0. in
  Pool.iter ~jobs trials (fun i ->
      draw.(i) <- degraded_makespan pert rngs.(i) ~task_jitter ~comm_jitter);
  let draws = Array.to_list draw in
  {
    nominal = Pert.compacted_makespan pert;
    mean = Stats.mean draws;
    stddev = Stats.stdev draws;
    worst = Stats.maximum draws;
    p95 = Stats.percentile 95. draws;
    p99 = Stats.percentile 99. draws;
    trials;
    task_jitter;
    comm_jitter;
  }

let pp_stats fmt s =
  let jitter_label =
    if s.task_jitter = s.comm_jitter then
      Printf.sprintf "jitter %.0f%%" (100. *. s.task_jitter)
    else
      Printf.sprintf "task jitter %.0f%%, comm jitter %.0f%%"
        (100. *. s.task_jitter) (100. *. s.comm_jitter)
  in
  Format.fprintf fmt
    "@[<v>nominal: %g@ mean: %g@ stddev: %g@ p95: %g@ p99: %g@ worst: %g@ (%d \
     trials, %s)@]"
    s.nominal s.mean s.stddev s.p95 s.p99 s.worst s.trials jitter_label
