type t =
  | Crash of { proc : int; at : float }
  | Outage of { proc : int; from_ : float; until : float }
  | Degrade of { proc : int; factor : float }
  | Flaky of { prob : float; max_retries : int; backoff : float }
  | Rejoin of { proc : int; at : float }

(* A time that may still be a fraction of the nominal makespan. *)
type reltime = Abs of float | Frac of float

type spec =
  | S_crash of { proc : int; at : reltime }
  | S_outage of { proc : int; from_ : reltime; until : reltime }
  | S_degrade of { proc : int; factor : float }
  | S_flaky of { prob : float; max_retries : int; backoff : float }
  | S_rejoin of { proc : int; at : reltime }

let grammar =
  "crash:P@T | outage:P@T1-T2 | degrade:PxF | flaky:PROB[:RETRIES[:BACKOFF]] \
   | rejoin:P@T (times: absolute like 120, or a percentage of the nominal \
   makespan like 25%)"

let fail s reason =
  invalid_arg (Printf.sprintf "Fault.of_string: %S: %s (grammar: %s)" s reason grammar)

let parse_reltime s text =
  let n = String.length text in
  if n = 0 then fail s "empty time"
  else if text.[n - 1] = '%' then
    match float_of_string_opt (String.sub text 0 (n - 1)) with
    | Some f when f >= 0. -> Frac (f /. 100.)
    | _ -> fail s (Printf.sprintf "bad percentage %S" text)
  else
    match float_of_string_opt text with
    | Some f when f >= 0. -> Abs f
    | _ -> fail s (Printf.sprintf "bad time %S" text)

let parse_int s text =
  match int_of_string_opt text with
  | Some i when i >= 0 -> i
  | _ -> fail s (Printf.sprintf "bad processor id %S" text)

let parse_float s text =
  match float_of_string_opt text with
  | Some f -> f
  | None -> fail s (Printf.sprintf "bad number %S" text)

let split2 s ~on text reason =
  match String.index_opt text on with
  | Some i ->
      ( String.sub text 0 i,
        String.sub text (i + 1) (String.length text - i - 1) )
  | None -> fail s reason

let of_string s =
  let s = String.trim s in
  match String.index_opt s ':' with
  | None -> fail s "missing ':'"
  | Some i -> (
      let kind = String.sub s 0 i in
      let rest = String.sub s (i + 1) (String.length s - i - 1) in
      match kind with
      | "crash" ->
          let proc, at = split2 s ~on:'@' rest "expected crash:P@T" in
          S_crash { proc = parse_int s proc; at = parse_reltime s at }
      | "outage" ->
          let proc, window = split2 s ~on:'@' rest "expected outage:P@T1-T2" in
          let from_, until = split2 s ~on:'-' window "expected a T1-T2 window" in
          S_outage
            {
              proc = parse_int s proc;
              from_ = parse_reltime s from_;
              until = parse_reltime s until;
            }
      | "degrade" ->
          let proc, factor = split2 s ~on:'x' rest "expected degrade:PxF" in
          let factor = parse_float s factor in
          if factor < 1. then fail s "degradation factor must be >= 1";
          S_degrade { proc = parse_int s proc; factor }
      | "flaky" -> (
          let prob_ok p = if p < 0. || p > 1. then fail s "probability out of [0,1]" else p in
          match String.split_on_char ':' rest with
          | [ prob ] ->
              S_flaky
                { prob = prob_ok (parse_float s prob); max_retries = 3; backoff = 1. }
          | [ prob; retries ] ->
              S_flaky
                {
                  prob = prob_ok (parse_float s prob);
                  max_retries = parse_int s retries;
                  backoff = 1.;
                }
          | [ prob; retries; backoff ] ->
              let backoff = parse_float s backoff in
              if backoff < 0. then fail s "negative backoff";
              S_flaky
                {
                  prob = prob_ok (parse_float s prob);
                  max_retries = parse_int s retries;
                  backoff;
                }
          | _ -> fail s "expected flaky:PROB[:RETRIES[:BACKOFF]]")
      | "rejoin" ->
          let proc, at = split2 s ~on:'@' rest "expected rejoin:P@T" in
          S_rejoin { proc = parse_int s proc; at = parse_reltime s at }
      | _ -> fail s (Printf.sprintf "unknown fault kind %S" kind))

let reltime_to_string = function
  | Abs t -> Printf.sprintf "%g" t
  | Frac f -> Printf.sprintf "%g%%" (f *. 100.)

let spec_to_string = function
  | S_crash { proc; at } ->
      Printf.sprintf "crash:%d@%s" proc (reltime_to_string at)
  | S_outage { proc; from_; until } ->
      Printf.sprintf "outage:%d@%s-%s" proc (reltime_to_string from_)
        (reltime_to_string until)
  | S_degrade { proc; factor } -> Printf.sprintf "degrade:%dx%g" proc factor
  | S_flaky { prob; max_retries; backoff } ->
      Printf.sprintf "flaky:%g:%d:%g" prob max_retries backoff
  | S_rejoin { proc; at } ->
      Printf.sprintf "rejoin:%d@%s" proc (reltime_to_string at)

let resolve ~makespan spec =
  let time = function
    | Abs t -> t
    | Frac f ->
        if makespan <= 0. then
          invalid_arg "Fault.resolve: relative time against a non-positive makespan";
        f *. makespan
  in
  match spec with
  | S_crash { proc; at } -> Crash { proc; at = time at }
  | S_outage { proc; from_; until } ->
      let from_ = time from_ and until = time until in
      if until < from_ then invalid_arg "Fault.resolve: outage window ends before it starts";
      Outage { proc; from_; until }
  | S_degrade { proc; factor } -> Degrade { proc; factor }
  | S_flaky { prob; max_retries; backoff } -> Flaky { prob; max_retries; backoff }
  | S_rejoin { proc; at } -> Rejoin { proc; at = time at }

let crash ~proc ~at = Crash { proc; at }

let flaky ?(max_retries = 3) ?(backoff = 1.) prob =
  if prob < 0. || prob > 1. then invalid_arg "Fault.flaky: probability out of [0,1]";
  Flaky { prob; max_retries; backoff }

let validate ~p fault =
  let proc_ok q =
    if q < 0 || q >= p then
      invalid_arg
        (Printf.sprintf "Fault.validate: processor %d out of range (platform has %d)" q p)
  in
  match fault with
  | Crash { proc; at } ->
      proc_ok proc;
      if at < 0. then invalid_arg "Fault.validate: negative crash time"
  | Outage { proc; from_; until } ->
      proc_ok proc;
      if from_ < 0. || until < from_ then
        invalid_arg "Fault.validate: bad outage window"
  | Degrade { proc; factor } ->
      proc_ok proc;
      if factor < 1. then invalid_arg "Fault.validate: degradation factor < 1"
  | Flaky { prob; max_retries; backoff } ->
      if prob < 0. || prob > 1. then invalid_arg "Fault.validate: probability out of [0,1]";
      if max_retries < 0 then invalid_arg "Fault.validate: negative retry budget";
      if backoff < 0. then invalid_arg "Fault.validate: negative backoff"
  | Rejoin { proc; at } ->
      proc_ok proc;
      if at < 0. then invalid_arg "Fault.validate: negative rejoin time"

let to_string = function
  | Crash { proc; at } -> Printf.sprintf "crash:%d@%g" proc at
  | Outage { proc; from_; until } -> Printf.sprintf "outage:%d@%g-%g" proc from_ until
  | Degrade { proc; factor } -> Printf.sprintf "degrade:%dx%g" proc factor
  | Flaky { prob; max_retries; backoff } ->
      Printf.sprintf "flaky:%g:%d:%g" prob max_retries backoff
  | Rejoin { proc; at } -> Printf.sprintf "rejoin:%d@%g" proc at

let pp fmt f = Format.pp_print_string fmt (to_string f)
