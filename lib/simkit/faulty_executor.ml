module Graph = Taskgraph.Graph
module Schedule = Sched.Schedule
module Comm_model = Commmodel.Comm_model
module Rng = Prelude.Rng

type stats = { retries : int; backoff_time : float; deferred : int }

type outcome =
  | Completed of { trace : Executor.trace; stats : stats }
  | Stranded of {
      stranded : int list;
      events_fired : int;
      total_events : int;
      partial_makespan : float;
      stats : stats;
    }

type resource = Compute of int | Send of int | Recv of int | Link of int * int

let feed_eps = 1e-9

(* Mirrors Executor.run event for event; the fault hooks sit exactly at
   the dispatch point, so an empty scenario replays the fault-free
   arithmetic bit for bit. *)
let run ?rng ?(task_jitter = 0.) ?(comm_jitter = 0.) ~faults s =
  let rng = match rng with Some r -> r | None -> Rng.create ~seed:0 in
  let g = Schedule.graph s in
  let model = Schedule.model s in
  let p = Platform.p (Schedule.platform s) in
  List.iter (Fault.validate ~p) faults;
  (* --- scenario tables --- *)
  let crashes = Array.make p [] in
  let rejoins = Array.make p [] in
  let degrade = Array.make p 1. in
  let outages = Array.make p [] in
  let flaky = ref None in
  List.iter
    (function
      | Fault.Crash { proc; at } -> crashes.(proc) <- at :: crashes.(proc)
      | Fault.Rejoin { proc; at } -> rejoins.(proc) <- at :: rejoins.(proc)
      | Fault.Outage { proc; from_; until } ->
          outages.(proc) <- (from_, until) :: outages.(proc)
      | Fault.Degrade { proc; factor } -> degrade.(proc) <- degrade.(proc) *. factor
      | Fault.Flaky { prob; max_retries; backoff } ->
          if !flaky = None then flaky := Some (prob, max_retries, backoff))
    faults;
  Array.iteri (fun q l -> outages.(q) <- List.sort compare l) outages;
  (* Down windows per processor: each crash opens [c, r) where r is the
     first rejoin strictly after c (or forever without one).  Crucially a
     rejoin closes the window for *new* work only — anything the static
     plan dispatched inside the window is lost, never silently resumed on
     the rejoined processor; recovering it takes an explicit repair
     decision (Repair / lib/online).  Without rejoins this degenerates to
     the historical single [min crash, +inf) window. *)
  let down = Array.make p [] in
  for q = 0 to p - 1 do
    let rec pair cs rs acc =
      match cs with
      | [] -> List.rev acc
      | c :: cs' -> (
          match List.filter (fun r -> r > c) rs with
          | [] -> List.rev ((c, infinity) :: acc)
          | r :: _ -> pair (List.filter (fun c2 -> c2 >= r) cs') rs ((c, r) :: acc))
    in
    down.(q) <- pair (List.sort compare crashes.(q)) (List.sort compare rejoins.(q)) []
  done;
  let n = Graph.n_tasks g in
  let comms = Array.of_list (Schedule.comms s) in
  let k = Array.length comms in
  let nd = Schedule.n_dup_copies s in
  let copy_task = if nd = 0 then [||] else Array.make nd 0 in
  let copy_pl = Array.make (max nd 1) { Schedule.task = 0; proc = 0; start = 0.; finish = 0. } in
  let copy_ix = Hashtbl.create 16 in
  if nd > 0 then begin
    let j = ref 0 in
    for v = 0 to n - 1 do
      List.iter
        (fun (c : Schedule.placement) ->
          copy_task.(!j) <- v;
          copy_pl.(!j) <- c;
          Hashtbl.add copy_ix (v, c.proc) (n + k + !j);
          incr j)
        (Schedule.dup_copies s v)
    done
  end;
  let copy_node v q =
    if (Schedule.placement_exn s v).proc = q then v
    else match Hashtbl.find_opt copy_ix (v, q) with Some node -> node | None -> v
  in
  let total = n + k + nd in
  let duration = Array.make total 0. in
  let task_proc = Array.make n 0 in
  for v = 0 to n - 1 do
    let pl = Schedule.placement_exn s v in
    duration.(v) <- pl.Schedule.finish -. pl.Schedule.start;
    task_proc.(v) <- pl.Schedule.proc
  done;
  Array.iteri (fun i (c : Schedule.comm) -> duration.(n + i) <- c.finish -. c.start) comms;
  for j = 0 to nd - 1 do
    duration.(n + k + j) <- copy_pl.(j).Schedule.finish -. copy_pl.(j).Schedule.start
  done;
  (* --- data dependencies (same wiring as Executor) --- *)
  let dependents = Array.make total [] in
  let deps_remaining = Array.make total 0 in
  let add_dep a b =
    if a <> b then begin
      dependents.(a) <- b :: dependents.(a);
      deps_remaining.(b) <- deps_remaining.(b) + 1
    end
  in
  if nd = 0 then begin
    let per_edge = Array.make (max (Graph.n_edges g) 1) [] in
    Array.iteri (fun i (c : Schedule.comm) -> per_edge.(c.edge) <- (n + i) :: per_edge.(c.edge)) comms;
    List.iter
      (fun (e : Graph.edge) ->
        match List.rev per_edge.(e.id) with
        | [] -> add_dep e.src e.dst
        | hops ->
            let last =
              List.fold_left
                (fun prev hop ->
                  add_dep prev hop;
                  hop)
                e.src hops
            in
            add_dep last e.dst)
      (Graph.edges g)
  end
  else begin
    (* Copy-set wiring: one provenance chain per remote delivery, running
       source copy -> hops -> destination copy; consumer copies also pick
       up their local / zero-data feeds. *)
    let per_edge = Array.make (max (Graph.n_edges g) 1) [] in
    Array.iteri
      (fun i (c : Schedule.comm) ->
        per_edge.(c.edge) <- (n + i, Schedule.comm_head_at s i) :: per_edge.(c.edge))
      comms;
    let chains_of e =
      List.fold_left
        (fun acc (node, head) ->
          match acc with
          | cur :: rest when not head -> (node :: cur) :: rest
          | _ -> [ node ] :: acc)
        []
        (List.rev per_edge.(e))
      |> List.rev_map List.rev
    in
    List.iter
      (fun (e : Graph.edge) ->
        List.iter
          (fun chain ->
            let first = comms.(List.hd chain - n) in
            let last_node = List.nth chain (List.length chain - 1) in
            let last = comms.(last_node - n) in
            add_dep (copy_node e.src first.Schedule.src_proc) (List.hd chain);
            let rec seq = function
              | a :: (b :: _ as rest) ->
                  add_dep a b;
                  seq rest
              | [ _ ] | [] -> ()
            in
            seq chain;
            add_dep last_node (copy_node e.dst last.Schedule.dst_proc))
          (chains_of e.id);
        let data = Graph.edge_data g e.id in
        List.iter
          (fun (cv : Schedule.placement) ->
            if data = 0. then begin
              let rep =
                match Schedule.copies s e.src with
                | c :: rest ->
                    List.fold_left
                      (fun (b : Schedule.placement) (c : Schedule.placement) ->
                        if
                          c.finish < b.finish
                          || (c.finish = b.finish && c.proc < b.proc)
                        then c
                        else b)
                      c rest
                | [] -> Schedule.placement_exn s e.src
              in
              add_dep (copy_node e.src rep.proc) (copy_node e.dst cv.proc)
            end
            else
              match Schedule.copy_on s ~task:e.src ~proc:cv.proc with
              | Some cu when cu.finish <= cv.start +. feed_eps ->
                  add_dep (copy_node e.src cu.proc) (copy_node e.dst cv.proc)
              | _ -> ())
          (Schedule.copies s e.dst))
      (Graph.edges g)
  end;
  (* --- resource FIFOs in recorded start order --- *)
  let streams : (resource, (float * int) list ref) Hashtbl.t = Hashtbl.create 64 in
  let occupy resource node start =
    let q =
      match Hashtbl.find_opt streams resource with
      | Some q -> q
      | None ->
          let q = ref [] in
          Hashtbl.add streams resource q;
          q
    in
    q := (start, node) :: !q
  in
  for v = 0 to n - 1 do
    let pl = Schedule.placement_exn s v in
    occupy (Compute pl.Schedule.proc) v pl.Schedule.start
  done;
  for j = 0 to nd - 1 do
    occupy (Compute copy_pl.(j).Schedule.proc) (n + k + j) copy_pl.(j).Schedule.start
  done;
  (* Mirrors Pert/Executor: only port-regime events occupy whole-span
     resources; BSP / latency+overhead events stay pure dependency
     events. *)
  (match model.Comm_model.regime with
  | Comm_model.Bsp _ | Comm_model.Latency_overhead _ -> ()
  | Comm_model.Port ->
      Array.iteri
        (fun i (c : Schedule.comm) ->
          let node = n + i in
          (match model.Comm_model.ports with
          | Comm_model.Unlimited -> ()
          | Comm_model.One_port_bidirectional ->
              occupy (Send c.src_proc) node c.start;
              occupy (Recv c.dst_proc) node c.start
          | Comm_model.One_port_unidirectional ->
              occupy (Send c.src_proc) node c.start;
              occupy (Send c.dst_proc) node c.start);
          if model.Comm_model.link_contention then
            occupy (Link (min c.src_proc c.dst_proc, max c.src_proc c.dst_proc)) node c.start;
          if not model.Comm_model.overlap then begin
            occupy (Compute c.src_proc) node c.start;
            occupy (Compute c.dst_proc) node c.start
          end)
        comms);
  let node_resources = Array.make total [] in
  let fifo : (resource, int array) Hashtbl.t = Hashtbl.create 64 in
  let cursor : (resource, int ref) Hashtbl.t = Hashtbl.create 64 in
  let free_at : (resource, float ref) Hashtbl.t = Hashtbl.create 64 in
  Hashtbl.iter
    (fun resource q ->
      let arr = Array.of_list (List.sort compare !q) in
      let order = Array.map snd arr in
      Array.iter
        (fun node -> node_resources.(node) <- resource :: node_resources.(node))
        order;
      Hashtbl.add fifo resource order;
      Hashtbl.add cursor resource (ref 0);
      Hashtbl.add free_at resource (ref 0.))
    streams;
  (* --- simulation --- *)
  let ready_time = Array.make total 0. in
  let fired = Array.make total false in
  let dead = Array.make total false in
  let running =
    Prelude.Pqueue.create ~compare:(fun (t1, n1) (t2, n2) ->
        match compare (t1 : float) t2 with 0 -> compare n1 n2 | c -> c)
  in
  let events_fired = ref 0 in
  let task_starts = Array.make n (if nd = 0 then 0. else infinity) in
  (* a duplicated task completes at its earliest surviving copy's finish *)
  let task_fin = if nd = 0 then [||] else Array.make n infinity in
  let makespan = ref 0. in
  let retries = ref 0 in
  let backoff_time = ref 0. in
  let deferred = ref 0 in
  let can_fire node =
    (not fired.(node))
    && deps_remaining.(node) = 0
    && List.for_all
         (fun r ->
           let cur = !(Hashtbl.find cursor r) in
           let order = Hashtbl.find fifo r in
           cur < Array.length order && order.(cur) = node)
         node_resources.(node)
  in
  let task_of node =
    if node < n then Some node
    else if node >= n + k then Some copy_task.(node - n - k)
    else None
  in
  (* The compute element a dispatch runs on, for crash windows. *)
  let compute_proc node =
    if node < n then Some task_proc.(node)
    else if node >= n + k then Some copy_pl.(node - n - k).Schedule.proc
    else None
  in
  (* Every processor a dispatch must find alive and out of blackout. *)
  let involved node =
    match compute_proc node with
    | Some q -> [ q ]
    | None ->
        let c = comms.(node - n) in
        [ c.Schedule.src_proc; c.Schedule.dst_proc ]
  in
  (* Outage deferral to a fixpoint: escaping one window may land inside
     another (possibly on the other endpoint of a hop). *)
  let rec defer procs t =
    let t' =
      List.fold_left
        (fun t q ->
          List.fold_left
            (fun t (a, b) -> if t >= a && t < b then b else t)
            t outages.(q))
        t procs
    in
    if t' > t then defer procs t' else t
  in
  let rec try_fire node =
    if can_fire node then begin
      let start0 =
        List.fold_left
          (fun acc r -> max acc !(Hashtbl.find free_at r))
          ready_time.(node) node_resources.(node)
      in
      let procs = involved node in
      let start = defer procs start0 in
      if start > start0 then incr deferred;
      (* duration under jitter and link degradation *)
      let is_compute = compute_proc node <> None in
      let d =
        if is_compute then
          if task_jitter > 0. then
            duration.(node) *. (1. +. Rng.float rng task_jitter)
          else duration.(node)
        else begin
          let c = comms.(node - n) in
          let d =
            if comm_jitter > 0. then
              duration.(node) *. (1. +. Rng.float rng comm_jitter)
            else duration.(node)
          in
          d *. degrade.(c.Schedule.src_proc) *. degrade.(c.Schedule.dst_proc)
        end
      in
      (* a crashed compute element kills whatever it is running when the
         crash hits and runs nothing dispatched inside a down window —
         even if the processor later rejoins, that work stays lost.  A
         duplicated task merely loses that copy; it completes as long as
         some replica survives. *)
      let killed =
        match compute_proc node with
        | None -> false
        | Some q ->
            List.exists
              (fun (a, b) ->
                (start >= a && start < b) || (start < a && start +. d > a))
              down.(q)
      in
      (* flaky transmission: bounded retries with exponential backoff;
         [None] = the hop exhausted its budget and the data is lost *)
      let transmission =
        if killed then None
        else if (not is_compute) && duration.(node) > 0. then
          match !flaky with
          | None -> Some (d, 0, 0.)
          | Some (prob, max_retries, backoff) ->
              let rec attempt i elapsed paused =
                if Rng.float rng 1. < prob then
                  if i >= max_retries then None
                  else begin
                    let pause = backoff *. (2. ** float_of_int i) in
                    attempt (i + 1) (elapsed +. d +. pause) (paused +. pause)
                  end
                else Some (elapsed +. d, i, paused)
              in
              attempt 0 0. 0.
        else Some (d, 0, 0.)
      in
      match transmission with
      | None ->
          (* lost work is cancelled: vacate every FIFO position without
             occupying time so unrelated traffic keeps flowing, but never
             complete — dependents stay blocked and strand *)
          fired.(node) <- true;
          dead.(node) <- true;
          List.iter (fun r -> incr (Hashtbl.find cursor r)) node_resources.(node);
          List.iter
            (fun r ->
              let cur = !(Hashtbl.find cursor r) in
              let order = Hashtbl.find fifo r in
              if cur < Array.length order then try_fire order.(cur))
            node_resources.(node)
      | Some (elapsed, n_retries, paused) ->
          fired.(node) <- true;
          incr events_fired;
          if n_retries > 0 then begin
            retries := !retries + n_retries;
            backoff_time := !backoff_time +. paused;
            for _ = 1 to n_retries do
              Obs.Counters.retry ()
            done;
            Obs.Counters.backoff paused
          end;
          let finish = start +. elapsed in
          (match task_of node with
          | None -> ()
          | Some v ->
              if nd = 0 then begin
                task_starts.(v) <- start;
                if finish > !makespan then makespan := finish
              end
              else begin
                if start < task_starts.(v) then task_starts.(v) <- start;
                if finish < task_fin.(v) then task_fin.(v) <- finish
              end);
          List.iter
            (fun r ->
              Hashtbl.find free_at r := finish;
              incr (Hashtbl.find cursor r))
            node_resources.(node);
          Prelude.Pqueue.add running (finish, node);
          List.iter
            (fun r ->
              let cur = !(Hashtbl.find cursor r) in
              let order = Hashtbl.find fifo r in
              if cur < Array.length order then try_fire order.(cur))
            node_resources.(node)
    end
  in
  for node = 0 to total - 1 do
    try_fire node
  done;
  let rec step () =
    match Prelude.Pqueue.pop running with
    | None -> ()
    | Some (finish, node) ->
        List.iter
          (fun b ->
            deps_remaining.(b) <- deps_remaining.(b) - 1;
            if ready_time.(b) < finish then ready_time.(b) <- finish)
          dependents.(node);
        List.iter try_fire dependents.(node);
        step ()
  in
  step ();
  let stats =
    { retries = !retries; backoff_time = !backoff_time; deferred = !deferred }
  in
  if nd > 0 then
    Array.iter
      (fun f -> if f < infinity && f > !makespan then makespan := f)
      task_fin;
  (* A task completes when any of its copies does; on single-copy
     schedules "every event fired live" is the same condition. *)
  let task_completed v =
    if nd = 0 then fired.(v) && not dead.(v) else task_fin.(v) < infinity
  in
  let completed =
    if nd = 0 then !events_fired = total
    else begin
      let ok = ref true in
      for v = 0 to n - 1 do
        if not (task_completed v) then ok := false
      done;
      !ok
    end
  in
  if completed then
    Completed
      {
        trace =
          {
            Executor.makespan = !makespan;
            task_starts;
            events_fired = !events_fired;
          };
        stats;
      }
  else begin
    let stranded = ref [] in
    for v = n - 1 downto 0 do
      if not (task_completed v) then stranded := v :: !stranded
    done;
    Stranded
      {
        stranded = !stranded;
        events_fired = !events_fired;
        total_events = total;
        partial_makespan = !makespan;
        stats;
      }
  end
