(** Discrete-event execution of a schedule's decisions under injected
    faults.

    The same machinery as {!Executor} — keep only the schedule's
    decisions (allocation, per-processor task order, per-port message
    order) and fire events as soon as their data dependencies complete
    and every resource they occupy is free and reaches them in FIFO
    order — but each dispatch first consults the fault scenario:

    - a {!Fault.Crash}ed processor executes no task dispatched at or
      beyond the crash instant, and a task still running when the crash
      hits is lost; completed outputs are durable and remain fetchable
      through the dead node's ports (checkpoint-on-completion — see
      [doc/robustness.md]).  A later {!Fault.Rejoin} of the same
      processor closes the down window for {e new} work only: anything
      the plan dispatched inside [[crash, rejoin)] stays lost and never
      silently resumes — recovering it takes an explicit repair
      decision ({!Heuristics.Repair}, [lib/online]);
    - a {!Fault.Outage} window delays any dispatch (task or hop) on the
      blacked-out processor to the window's end; in-flight work rides
      through;
    - {!Fault.Degrade} stretches every hop touching the processor by
      its factor (factors multiply when both endpoints are degraded);
    - {!Fault.Flaky} makes each hop attempt fail independently with the
      given probability; failed attempts are re-executed after
      exponential backoff ([backoff * 2^i] after the [i]-th failure) up
      to [max_retries] times, occupying their ports the whole while.  A
      hop that exhausts its budget is lost.

    Lost work is {e cancelled}: it vacates its position in every
    resource FIFO (so unrelated traffic keeps flowing) but never
    completes, leaving every transitive dependent stranded.  Execution
    then drains as far as it can; the outcome reports either a complete
    trace or the stranded task set.

    With an empty scenario, no jitter and any valid schedule, [run]
    reproduces {!Executor.run} exactly (property-tested), so the fault
    path adds nothing to the fault-free semantics. *)

type stats = {
  retries : int;  (** failed hop attempts that were re-executed *)
  backoff_time : float;
      (** total simulated time spent waiting between retry attempts *)
  deferred : int;  (** dispatches delayed by an outage window *)
}

type outcome =
  | Completed of { trace : Executor.trace; stats : stats }
  | Stranded of {
      stranded : int list;
          (** tasks that never executed (killed or transitively blocked),
              ascending *)
      events_fired : int;
      total_events : int;
      partial_makespan : float;
          (** last completion among the events that did run *)
      stats : stats;
    }

(** [run ?rng ?task_jitter ?comm_jitter ~faults s] — execute under the
    scenario.  [rng] drives flaky-hop draws and jitter (default: a fresh
    seed-0 generator); [task_jitter]/[comm_jitter] additionally scale
    each event's duration by an independent uniform factor in
    [[1, 1 + jitter]] (default 0: durations are exactly the recorded
    ones).  Deterministic for a given [rng] seed.
    @raise Invalid_argument if a fault references a processor the
    platform does not have ({!Fault.validate}). *)
val run :
  ?rng:Prelude.Rng.t ->
  ?task_jitter:float ->
  ?comm_jitter:float ->
  faults:Fault.t list ->
  Sched.Schedule.t ->
  outcome
