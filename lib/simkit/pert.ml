module Graph = Taskgraph.Graph
module Schedule = Sched.Schedule
module Comm_model = Commmodel.Comm_model

type event = Task of int | Hop of Schedule.comm

type t = {
  events : event array;
      (* tasks 0..n-1, hops in commit order, then duplicate copies *)
  succs : int list array; (* dependency edges between event nodes *)
  durations : float array; (* original event durations *)
  n_tasks : int;
  copy_task : int array;
      (* for nodes >= n + k: the task each duplicate copy replicates;
         empty on single-copy schedules *)
  original_makespan : float;
}

(* Resources an event occupies, as comparable keys. *)
type resource = Compute of int | Send of int | Recv of int | Link of int * int

let feed_eps = 1e-9

let build sched =
  let g = Schedule.graph sched in
  let model = Schedule.model sched in
  let n = Graph.n_tasks g in
  let comms = Array.of_list (Schedule.comms sched) in
  let k = Array.length comms in
  let nd = Schedule.n_dup_copies sched in
  (* Duplicate copies become event nodes after the hops; the primary copy
     of every task keeps its historical node id. *)
  let copy_task = if nd = 0 then [||] else Array.make nd 0 in
  let copy_pl = Array.make (max nd 1) { Schedule.task = 0; proc = 0; start = 0.; finish = 0. } in
  let copy_ix = Hashtbl.create 16 in
  if nd > 0 then begin
    let j = ref 0 in
    for v = 0 to n - 1 do
      List.iter
        (fun (c : Schedule.placement) ->
          copy_task.(!j) <- v;
          copy_pl.(!j) <- c;
          Hashtbl.add copy_ix (v, c.proc) (n + k + !j);
          incr j)
        (Schedule.dup_copies sched v)
    done
  end;
  (* The node running task [v]'s copy on [q]; the primary maps to [v]. *)
  let copy_node v q =
    if (Schedule.placement_exn sched v).proc = q then v
    else match Hashtbl.find_opt copy_ix (v, q) with Some node -> node | None -> v
  in
  let total = n + k + nd in
  let events =
    Array.init total (fun i ->
        if i < n then Task i
        else if i < n + k then Hop comms.(i - n)
        else Task copy_task.(i - n - k))
  in
  let succs = Array.make total [] in
  let add_edge a b = if a <> b then succs.(a) <- b :: succs.(a) in
  (* Data dependencies. *)
  if nd = 0 then begin
    let per_edge = Array.make (max (Graph.n_edges g) 1) [] in
    Array.iteri
      (fun i (c : Schedule.comm) ->
        per_edge.(c.edge) <- (n + i) :: per_edge.(c.edge))
      comms;
    List.iter
      (fun (e : Graph.edge) ->
        match List.rev per_edge.(e.id) with
        | [] -> add_edge e.src e.dst
        | hops ->
            let last =
              List.fold_left
                (fun prev hop ->
                  add_edge prev hop;
                  hop)
                e.src hops
            in
            add_edge last e.dst)
      (Graph.edges g)
  end
  else begin
    (* Copy-set wiring: an edge carries one provenance chain per remote
       delivery; each chain runs source copy -> hops -> destination copy,
       and every consumer copy additionally picks up its local /
       zero-data feed. *)
    let per_edge = Array.make (max (Graph.n_edges g) 1) [] in
    Array.iteri
      (fun i (c : Schedule.comm) ->
        per_edge.(c.edge) <-
          (n + i, Schedule.comm_head_at sched i) :: per_edge.(c.edge))
      comms;
    let chains_of e =
      List.fold_left
        (fun acc (node, head) ->
          match acc with
          | cur :: rest when not head -> (node :: cur) :: rest
          | _ -> [ node ] :: acc)
        []
        (List.rev per_edge.(e))
      |> List.rev_map List.rev
    in
    List.iter
      (fun (e : Graph.edge) ->
        List.iter
          (fun chain ->
            let first = comms.(List.hd chain - n) in
            let last_node = List.nth chain (List.length chain - 1) in
            let last = comms.(last_node - n) in
            add_edge (copy_node e.src first.Schedule.src_proc) (List.hd chain);
            let rec seq = function
              | a :: (b :: _ as rest) ->
                  add_edge a b;
                  seq rest
              | [ _ ] | [] -> ()
            in
            seq chain;
            add_edge last_node (copy_node e.dst last.Schedule.dst_proc))
          (chains_of e.id);
        (* local and zero-data feeds per consumer copy *)
        let data = Graph.edge_data g e.id in
        List.iter
          (fun (cv : Schedule.placement) ->
            if data = 0. then begin
              (* representative (earliest-finishing) copy of the source *)
              let rep =
                match Schedule.copies sched e.src with
                | c :: rest ->
                    List.fold_left
                      (fun (b : Schedule.placement) (c : Schedule.placement) ->
                        if
                          c.finish < b.finish
                          || (c.finish = b.finish && c.proc < b.proc)
                        then c
                        else b)
                      c rest
                | [] -> Schedule.placement_exn sched e.src
              in
              add_edge (copy_node e.src rep.proc) (copy_node e.dst cv.proc)
            end
            else
              match Schedule.copy_on sched ~task:e.src ~proc:cv.proc with
              | Some cu when cu.finish <= cv.start +. feed_eps ->
                  add_edge (copy_node e.src cu.proc) (copy_node e.dst cv.proc)
              | _ -> ())
          (Schedule.copies sched e.dst))
      (Graph.edges g)
  end;
  (* Resource streams: every event occupying one resource is ordered by its
     recorded start (ties by node id — only zero-duration events can tie). *)
  let streams = Hashtbl.create 64 in
  let occupy resource node start =
    let key = resource in
    let old = try Hashtbl.find streams key with Not_found -> [] in
    Hashtbl.replace streams key ((start, node) :: old)
  in
  for v = 0 to n - 1 do
    let pl = Schedule.placement_exn sched v in
    occupy (Compute pl.proc) v pl.start
  done;
  for j = 0 to nd - 1 do
    occupy (Compute copy_pl.(j).proc) (n + k + j) copy_pl.(j).start
  done;
  (* Only port-regime events occupy whole-span resources.  BSP and
     latency+overhead events carry partial or no occupancy over their
     span, so chaining them on port streams would force compaction
     {e above} the scheduled times; they stay pure dependency events. *)
  (match model.Comm_model.regime with
  | Comm_model.Bsp _ | Comm_model.Latency_overhead _ -> ()
  | Comm_model.Port ->
      Array.iteri
        (fun i (c : Schedule.comm) ->
          let node = n + i in
          (match model.Comm_model.ports with
          | Comm_model.Unlimited -> ()
          | Comm_model.One_port_bidirectional ->
              occupy (Send c.src_proc) node c.start;
              occupy (Recv c.dst_proc) node c.start
          | Comm_model.One_port_unidirectional ->
              (* one physical port per processor: pool both directions *)
              occupy (Send c.src_proc) node c.start;
              occupy (Send c.dst_proc) node c.start);
          if model.Comm_model.link_contention then
            occupy
              (Link (min c.src_proc c.dst_proc, max c.src_proc c.dst_proc))
              node c.start;
          if not model.Comm_model.overlap then begin
            occupy (Compute c.src_proc) node c.start;
            occupy (Compute c.dst_proc) node c.start
          end)
        comms);
  Hashtbl.iter
    (fun _ stream ->
      let sorted = List.sort compare stream in
      let rec chain = function
        | (_, a) :: ((_, b) :: _ as rest) ->
            add_edge a b;
            chain rest
        | [ _ ] | [] -> ()
      in
      chain sorted)
    streams;
  let durations =
    Array.init total (fun i ->
        if i < n then
          let pl = Schedule.placement_exn sched i in
          pl.finish -. pl.start
        else if i < n + k then comms.(i - n).finish -. comms.(i - n).start
        else
          let pl = copy_pl.(i - n - k) in
          pl.Schedule.finish -. pl.Schedule.start)
  in
  {
    events;
    succs;
    durations;
    n_tasks = n;
    copy_task;
    original_makespan = Schedule.makespan sched;
  }

let n_events t = Array.length t.events

let retime t ~task_duration ~hop_duration =
  let m = Array.length t.events in
  let duration node =
    match t.events.(node) with
    | Task v -> task_duration v t.durations.(node)
    | Hop c -> hop_duration c t.durations.(node)
  in
  let indeg = Array.make m 0 in
  Array.iter (List.iter (fun b -> indeg.(b) <- indeg.(b) + 1)) t.succs;
  let start = Array.make m 0. in
  let queue = Queue.create () in
  Array.iteri (fun node d -> if d = 0 then Queue.add node queue) indeg;
  let processed = ref 0 in
  (* A duplicated task completes at its earliest copy's finish, so the
     makespan is max over tasks of min over copies; with no duplicates
     this degenerates to the historical max over task finishes. *)
  let dups = Array.length t.copy_task > 0 in
  let task_fin = if dups then Array.make t.n_tasks infinity else [||] in
  let makespan = ref 0. in
  let record node finish =
    match t.events.(node) with
    | Hop _ -> ()
    | Task v ->
        if dups then begin
          if finish < task_fin.(v) then task_fin.(v) <- finish
        end
        else if finish > !makespan then makespan := finish
  in
  while not (Queue.is_empty queue) do
    let node = Queue.pop queue in
    incr processed;
    let finish = start.(node) +. duration node in
    record node finish;
    List.iter
      (fun b ->
        if finish > start.(b) then start.(b) <- finish;
        indeg.(b) <- indeg.(b) - 1;
        if indeg.(b) = 0 then Queue.add b queue)
      t.succs.(node)
  done;
  if !processed <> m then
    invalid_arg "Pert.retime: cyclic event order (corrupt schedule)";
  if dups then
    Array.iter (fun f -> if f > !makespan then makespan := f) task_fin;
  !makespan

let compacted_makespan t =
  retime t ~task_duration:(fun _ d -> d) ~hop_duration:(fun _ d -> d)
