module Graph = Taskgraph.Graph
module Schedule = Sched.Schedule
module Comm_model = Commmodel.Comm_model

type event = Task of int | Hop of Schedule.comm

type t = {
  events : event array; (* tasks 0..n-1, then hops in commit order *)
  succs : int list array; (* dependency edges between event nodes *)
  durations : float array; (* original event durations *)
  n_tasks : int;
  original_makespan : float;
}

(* Resources an event occupies, as comparable keys. *)
type resource = Compute of int | Send of int | Recv of int | Link of int * int

let build sched =
  let g = Schedule.graph sched in
  let model = Schedule.model sched in
  let n = Graph.n_tasks g in
  let comms = Array.of_list (Schedule.comms sched) in
  let k = Array.length comms in
  let events =
    Array.init (n + k) (fun i -> if i < n then Task i else Hop comms.(i - n))
  in
  let succs = Array.make (n + k) [] in
  let add_edge a b = if a <> b then succs.(a) <- b :: succs.(a) in
  (* Data dependencies. *)
  let per_edge = Array.make (max (Graph.n_edges g) 1) [] in
  Array.iteri
    (fun i (c : Schedule.comm) -> per_edge.(c.edge) <- (n + i) :: per_edge.(c.edge))
    comms;
  List.iter
    (fun (e : Graph.edge) ->
      match List.rev per_edge.(e.id) with
      | [] -> add_edge e.src e.dst
      | hops ->
          let last =
            List.fold_left
              (fun prev hop ->
                add_edge prev hop;
                hop)
              e.src hops
          in
          add_edge last e.dst)
    (Graph.edges g);
  (* Resource streams: every event occupying one resource is ordered by its
     recorded start (ties by node id — only zero-duration events can tie). *)
  let streams = Hashtbl.create 64 in
  let occupy resource node start =
    let key = resource in
    let old = try Hashtbl.find streams key with Not_found -> [] in
    Hashtbl.replace streams key ((start, node) :: old)
  in
  for v = 0 to n - 1 do
    let pl = Schedule.placement_exn sched v in
    occupy (Compute pl.proc) v pl.start
  done;
  (* Only port-regime events occupy whole-span resources.  BSP and
     latency+overhead events carry partial or no occupancy over their
     span, so chaining them on port streams would force compaction
     {e above} the scheduled times; they stay pure dependency events. *)
  (match model.Comm_model.regime with
  | Comm_model.Bsp _ | Comm_model.Latency_overhead _ -> ()
  | Comm_model.Port ->
      Array.iteri
        (fun i (c : Schedule.comm) ->
          let node = n + i in
          (match model.Comm_model.ports with
          | Comm_model.Unlimited -> ()
          | Comm_model.One_port_bidirectional ->
              occupy (Send c.src_proc) node c.start;
              occupy (Recv c.dst_proc) node c.start
          | Comm_model.One_port_unidirectional ->
              (* one physical port per processor: pool both directions *)
              occupy (Send c.src_proc) node c.start;
              occupy (Send c.dst_proc) node c.start);
          if model.Comm_model.link_contention then
            occupy
              (Link (min c.src_proc c.dst_proc, max c.src_proc c.dst_proc))
              node c.start;
          if not model.Comm_model.overlap then begin
            occupy (Compute c.src_proc) node c.start;
            occupy (Compute c.dst_proc) node c.start
          end)
        comms);
  Hashtbl.iter
    (fun _ stream ->
      let sorted = List.sort compare stream in
      let rec chain = function
        | (_, a) :: ((_, b) :: _ as rest) ->
            add_edge a b;
            chain rest
        | [ _ ] | [] -> ()
      in
      chain sorted)
    streams;
  let durations =
    Array.init (n + k) (fun i ->
        if i < n then
          let pl = Schedule.placement_exn sched i in
          pl.finish -. pl.start
        else comms.(i - n).finish -. comms.(i - n).start)
  in
  { events; succs; durations; n_tasks = n; original_makespan = Schedule.makespan sched }

let n_events t = Array.length t.events

let retime t ~task_duration ~hop_duration =
  let m = Array.length t.events in
  let duration node =
    match t.events.(node) with
    | Task v -> task_duration v t.durations.(node)
    | Hop c -> hop_duration c t.durations.(node)
  in
  let indeg = Array.make m 0 in
  Array.iter (List.iter (fun b -> indeg.(b) <- indeg.(b) + 1)) t.succs;
  let start = Array.make m 0. in
  let queue = Queue.create () in
  Array.iteri (fun node d -> if d = 0 then Queue.add node queue) indeg;
  let processed = ref 0 in
  let makespan = ref 0. in
  while not (Queue.is_empty queue) do
    let node = Queue.pop queue in
    incr processed;
    let finish = start.(node) +. duration node in
    (match t.events.(node) with
    | Task _ -> if finish > !makespan then makespan := finish
    | Hop _ -> ());
    List.iter
      (fun b ->
        if finish > start.(b) then start.(b) <- finish;
        indeg.(b) <- indeg.(b) - 1;
        if indeg.(b) = 0 then Queue.add b queue)
      t.succs.(node)
  done;
  if !processed <> m then
    invalid_arg "Pert.retime: cyclic event order (corrupt schedule)";
  !makespan

let compacted_makespan t =
  retime t ~task_duration:(fun _ d -> d) ~hop_duration:(fun _ d -> d)
