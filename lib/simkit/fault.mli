(** Fault scenarios injected into schedule execution.

    Static schedules assume the platform of §2.1 behaves: every processor
    survives, every message arrives.  A fault scenario breaks exactly one
    of those assumptions and {!Faulty_executor} replays a schedule's
    decisions under it:

    - {!Crash}: a fail-stop processor crash — the compute element dies
      at time [at] and never recovers.  Tasks that finish strictly
      before the crash are durable (outputs checkpointed on completion),
      so the dead node's data can still be {e fetched} through its
      ports; anything computing at or after [at] is lost;
    - {!Outage}: a transient blackout [[from_, until)] — work already
      running rides through, but nothing new is dispatched on the
      processor (compute or ports) inside the window;
    - {!Degrade}: every communication touching the processor's ports is
      slowed by a multiplicative [factor] (a flaky NIC, a congested
      uplink);
    - {!Flaky}: each communication hop independently fails with
      probability [prob] per attempt and is retried with exponential
      backoff ([backoff], [2*backoff], [4*backoff], …) up to
      [max_retries] times; a hop that exhausts its retries is lost for
      good and strands its dependents;
    - {!Rejoin}: a previously crashed processor comes back at time [at]
      with empty state.  Work stranded by the crash does {e not} resume
      silently — a rejoined processor only receives work through an
      explicit repair or re-plan decision (see [lib/online]).

    Specs are parsed from compact strings (the [--fault] grammar of
    [schedcli robustness], see [doc/robustness.md]):

    {v
    crash:2@120        processor 2 dies at t = 120
    crash:2@25%        … at 25% of the schedule's nominal makespan
    outage:0@50-80     processor 0 blacks out over [50, 80)
    degrade:1x2.5      communications touching processor 1 take 2.5x
    flaky:0.05         hops fail with probability 5% (3 retries, backoff 1)
    flaky:0.05:6:0.5   … with 6 retries starting at backoff 0.5
    rejoin:2@180       processor 2 comes back at t = 180
    v}

    Times may be absolute or makespan-relative ([25%]); a {!spec} holds
    the unresolved form and {!resolve} pins it against a concrete
    nominal makespan. *)

type t =
  | Crash of { proc : int; at : float }
  | Outage of { proc : int; from_ : float; until : float }
  | Degrade of { proc : int; factor : float }
  | Flaky of { prob : float; max_retries : int; backoff : float }
  | Rejoin of { proc : int; at : float }

(** A fault whose times may still be makespan-relative. *)
type spec

(** [of_string s] parses the [--fault] grammar above.
    @raise Invalid_argument with a grammar reminder on malformed input. *)
val of_string : string -> spec

(** [resolve ~makespan spec] pins relative times ([25%] of [makespan])
    to absolute ones.
    @raise Invalid_argument if [makespan <= 0] and the spec is
    relative. *)
val resolve : makespan:float -> spec -> t

(** [crash ~proc ~at], [flaky ?max_retries ?backoff prob] — direct
    constructors for programmatic use ([max_retries] defaults to 3,
    [backoff] to 1 simulated time unit). *)
val crash : proc:int -> at:float -> t

val flaky : ?max_retries:int -> ?backoff:float -> float -> t

(** [validate ~p fault] checks processor indices against a platform of
    [p] processors and value ranges (probabilities in [0, 1], factors
    and windows positive).
    @raise Invalid_argument on the first violation. *)
val validate : p:int -> t -> unit

(** Round-trips through {!of_string} for absolute-time faults. *)
val to_string : t -> string

(** Prints the unresolved form — relative times keep their [%] suffix —
    such that [of_string (spec_to_string s)] parses back to [s]. *)
val spec_to_string : spec -> string

val pp : Format.formatter -> t -> unit
