(** Robustness of a static schedule to execution-time noise (failure
    injection).

    Static schedules are computed from nominal costs; at run time tasks
    and transfers slip.  Keeping every decision of the schedule (mapping,
    per-processor order, per-port order) and re-timing the event DAG with
    inflated durations measures how gracefully a heuristic's output
    degrades — a cheap stand-in for executing on a real contended
    network.  For injected {e faults} (crashes, outages, lossy links)
    rather than mere slippage, see {!Faulty_executor}. *)

type stats = {
  nominal : float;  (** compacted makespan with original durations *)
  mean : float;
  stddev : float;
  worst : float;
  p95 : float;
  p99 : float;
  trials : int;
  task_jitter : float;
  comm_jitter : float;
}

(** [degraded_makespan pert rng ~task_jitter ~comm_jitter] — one draw:
    every duration is scaled by an independent uniform factor in
    [[1, 1 + jitter]]. *)
val degraded_makespan :
  Pert.t -> Prelude.Rng.t -> task_jitter:float -> comm_jitter:float -> float

(** [monte_carlo sched rng ~jitter ~trials] — summary over [trials]
    independent draws.  [jitter] is the default for both noise sources;
    [task_jitter]/[comm_jitter] override it per source (e.g.
    [~task_jitter:0. ~jitter:0.5] isolates communication noise).

    [jobs > 1] replays the trials in parallel on a {!Prelude.Pool}.
    Trial [i] draws from the [i]-th {!Prelude.Rng.split} of [rng],
    taken up front in trial order, so every statistic is bit-identical
    for any [jobs] (default 1). *)
val monte_carlo :
  ?task_jitter:float ->
  ?comm_jitter:float ->
  ?jobs:int ->
  Sched.Schedule.t ->
  Prelude.Rng.t ->
  jitter:float ->
  trials:int ->
  stats

val pp_stats : Format.formatter -> stats -> unit
