(** Communication-resource models — a ladder of increasingly detailed
    regimes.

    The paper contrasts the classical {e macro-dataflow} model — where a
    processor may exchange any number of messages simultaneously — with the
    {e bi-directional one-port} model (§2.3): at any time-step a processor
    sends to at most one processor and receives from at most one, with
    sending and receiving independent of each other and overlappable with
    computation.  §2.3 also names the variants we expose: uni-directional
    ports (send and receive share the single port) and the removal of
    communication/computation overlap.

    The field has kept climbing that ladder, so the model family is open
    along a second {!regime} dimension:

    - {!Port} — the paper's per-message rungs above; a message occupies
      ports/links for [data × hop_cost].
    - {!Bsp} — superstep scheduling in the BSP tradition: communication is
      deferred to barrier phases between compute supersteps, and a phase
      on which an h-relation of volume [h] is exchanged costs [g·h + L]
      on {e every} processor.
    - {!Latency_overhead} — a LogP-style refinement of the one-port rung:
      each message pays a fixed overhead [o] on the sender's port, flies
      for [data × hop_cost + L] occupying no resource, then pays [o] on
      the receiver's port. *)

type port_discipline =
  | Unlimited  (** macro-dataflow: no port resource is ever busy *)
  | One_port_bidirectional
      (** one send port and one independent receive port per processor *)
  | One_port_unidirectional
      (** a single port serving both directions: a processor either sends
          or receives at any time-step *)

type regime =
  | Port  (** per-message port/link occupancy — the paper's regimes *)
  | Bsp of { g : float; l : float }
      (** barrier-synchronous supersteps: a comm phase moving [h] units
          costs [g·h + l] and excludes computation platform-wide *)
  | Latency_overhead of { o : float; l : float }
      (** per-message endpoint overhead [o] plus resource-free latency
          [l], on top of the one-port discipline *)

type t = private {
  ports : port_discipline;
  overlap : bool;
      (** [true]: communication overlaps computation (the paper's default);
          [false]: a communication also occupies the processor's compute
          resource on both ends. *)
  link_contention : bool;
      (** [true]: each {e direct link} carries at most one message at a
          time (half-duplex), the §2.2 Sinnen–Sousa restriction; matters
          on sparse routed topologies where several routes share a link.
          Orthogonal to the port discipline. *)
  regime : regime;
}

(** The standard macro-dataflow model (§2.1). *)
val macro_dataflow : t

(** The paper's model: bi-directional one-port with overlap (§2.3). *)
val one_port : t

(** Uni-directional one-port with overlap (the Hollermann/Hsu-style variant
    discussed in §2.2). *)
val one_port_unidirectional : t

(** The §2.2 contention model of Sinnen & Sousa: unrestricted ports but
    one message per link at a time over a statically-routed network. *)
val link_contention : t

(** [bsp ~g ~l] is the barrier-synchronous rung: unlimited ports, comm
    deferred to phases costing [g·h + l].
    @raise Invalid_argument on a negative parameter. *)
val bsp : g:float -> l:float -> t

(** [latency_overhead ~o ~l] is the LogP-style rung: bi-directional
    one-port with per-message endpoint overhead [o] and latency [l].
    @raise Invalid_argument on a negative parameter. *)
val latency_overhead : o:float -> l:float -> t

(** [no_overlap m] switches off communication/computation overlap.
    @raise Invalid_argument on a non-{!Port} regime. *)
val no_overlap : t -> t

(** [with_link_contention m] adds the per-link restriction.
    @raise Invalid_argument on a non-{!Port} regime. *)
val with_link_contention : t -> t

(** [restricts_ports m] is [false] exactly for {!Unlimited} disciplines. *)
val restricts_ports : t -> bool

(** [hop_span m ~data ~hop_cost] is the wall-clock span of one hop's
    communication event: [data·hop_cost] under {!Port},
    [2o + data·hop_cost + l] under {!Latency_overhead}.
    @raise Invalid_argument under {!Bsp}, whose communications are priced
    per phase, not per hop. *)
val hop_span : t -> data:float -> hop_cost:float -> float

(** [name m] is comma-free (batch CSV and the CI's [cut -d,] split model
    columns on commas): port rungs keep their historical names;
    parameterized rungs render as [bsp:g=<g>:L=<L>] / [logp:o=<o>:L=<L>]. *)
val name : t -> string

val pp : Format.formatter -> t -> unit
val equal : t -> t -> bool

(** All rungs, for registries and sweeps: the seven port-regime models
    plus one representative BSP and one latency+overhead rung. *)
val all : t list

(** [of_name s] inverts {!name}, accepting every fixed name in {!all} and
    arbitrary-parameter [bsp:g=…:L=…] / [logp:o=…:L=…] forms.
    @raise Invalid_argument on an unknown name, listing the valid ones. *)
val of_name : string -> t
