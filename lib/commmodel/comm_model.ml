type port_discipline =
  | Unlimited
  | One_port_bidirectional
  | One_port_unidirectional

type regime =
  | Port
  | Bsp of { g : float; l : float }
  | Latency_overhead of { o : float; l : float }

type t = {
  ports : port_discipline;
  overlap : bool;
  link_contention : bool;
  regime : regime;
}

let macro_dataflow =
  { ports = Unlimited; overlap = true; link_contention = false; regime = Port }

let one_port = { macro_dataflow with ports = One_port_bidirectional }
let one_port_unidirectional = { macro_dataflow with ports = One_port_unidirectional }
let link_contention = { macro_dataflow with link_contention = true }

let require_port ~what m =
  match m.regime with
  | Port -> ()
  | Bsp _ | Latency_overhead _ ->
      invalid_arg
        (Printf.sprintf "Comm_model.%s: only meaningful on port-regime models"
           what)

let no_overlap m =
  require_port ~what:"no_overlap" m;
  { m with overlap = false }

let with_link_contention m =
  require_port ~what:"with_link_contention" m;
  { m with link_contention = true }

let bsp ~g ~l =
  if g < 0. || l < 0. then invalid_arg "Comm_model.bsp: negative parameter";
  { macro_dataflow with regime = Bsp { g; l } }

let latency_overhead ~o ~l =
  if o < 0. || l < 0. then
    invalid_arg "Comm_model.latency_overhead: negative parameter";
  { one_port with regime = Latency_overhead { o; l } }

let restricts_ports m = m.ports <> Unlimited

(* Names must stay comma-free: batch CSV rows and the CI's [cut -d,]
   both split model names on commas. *)
let name m =
  match m.regime with
  | Bsp { g; l } -> Printf.sprintf "bsp:g=%g:L=%g" g l
  | Latency_overhead { o; l } -> Printf.sprintf "logp:o=%g:L=%g" o l
  | Port ->
      let base =
        match m.ports with
        | Unlimited -> "macro-dataflow"
        | One_port_bidirectional -> "one-port"
        | One_port_unidirectional -> "one-port-unidir"
      in
      let base = if m.link_contention then
          (match m.ports with Unlimited -> "link-contention" | _ -> base ^ "+links")
        else base
      in
      if m.overlap then base else base ^ "-no-overlap"

let pp fmt m = Format.pp_print_string fmt (name m)
let equal a b = a = b

let all =
  [
    macro_dataflow;
    one_port;
    one_port_unidirectional;
    link_contention;
    with_link_contention one_port;
    no_overlap one_port;
    no_overlap one_port_unidirectional;
    bsp ~g:1. ~l:5.;
    latency_overhead ~o:1. ~l:2.;
  ]

(* [hop_span] is the wall-clock span of one hop's communication event.
   BSP hops are scheduled inside an explicit superstep window, never
   priced per hop. *)
let hop_span m ~data ~hop_cost =
  match m.regime with
  | Port -> data *. hop_cost
  | Latency_overhead { o; l } -> (2. *. o) +. (data *. hop_cost) +. l
  | Bsp _ ->
      invalid_arg "Comm_model.hop_span: BSP communications are priced per phase"

let parse_two ~head ~k1 ~k2 s =
  (* "<head>:<k1>=<float>:<k2>=<float>" -> Some (v1, v2) *)
  match String.split_on_char ':' s with
  | [ h; a; b ] when h = head -> (
      let field key part =
        match String.split_on_char '=' part with
        | [ k; v ] when k = key -> float_of_string_opt v
        | _ -> None
      in
      match (field k1 a, field k2 b) with
      | Some v1, Some v2 -> Some (v1, v2)
      | _ -> None)
  | _ -> None

let of_name s =
  match List.find_opt (fun m -> name m = s) all with
  | Some m -> Some m
  | None -> (
      match parse_two ~head:"bsp" ~k1:"g" ~k2:"L" s with
      | Some (g, l) when g >= 0. && l >= 0. -> Some (bsp ~g ~l)
      | _ -> (
          match parse_two ~head:"logp" ~k1:"o" ~k2:"L" s with
          | Some (o, l) when o >= 0. && l >= 0. -> Some (latency_overhead ~o ~l)
          | _ -> None))

let of_name s =
  match of_name s with
  | Some m -> m
  | None ->
      invalid_arg
        (Printf.sprintf
           "Comm_model.of_name: unknown model %S (valid: %s, bsp:g=<g>:L=<L>, \
            logp:o=<o>:L=<L>)"
           s
           (String.concat ", "
              (List.filter_map
                 (fun m -> match m.regime with Port -> Some (name m) | _ -> None)
                 all)))
