(** [scheduld] — the scheduler-as-a-service daemon.

    The paper's heuristic prices one placement decision in microseconds,
    so a long-running service can afford to re-plan on every request
    burst.  This module packages the library as such a service: clients
    submit whole task graphs over a newline-delimited JSON protocol
    ({!Proto}), the daemon schedules them on warm per-platform state and
    streams placement/completion events back.

    The implementation is split in two layers:

    - a {e pure core} ({!t}): a deterministic state machine fed one
      protocol line at a time ({!input}) and advanced by explicit batch
      {!flush}es, with all output collected through {!take_outputs}.
      Time only enters through the injectable [clock], so tests drive
      the whole daemon in-memory over a loopback with zero sockets and
      byte-reproducible transcripts;
    - a {e transport shell} ({!serve}): a single-threaded
      [Unix.select] event loop owning the listening socket, per-client
      line buffering and the batching timer.  Single-threaded on
      purpose — requests are serialized into a deterministic order, and
      the parallelism lives inside a batch flush, where a persistent
      {!Prelude.Pool.Team} schedules the batch's jobs across domains
      (one whole job per worker, statically sharded, so placements are
      byte-identical at any [jobs]; worker counters merge at the
      barrier).

    {b Batching.}  Submissions are queued, not scheduled inline: the
    shell coalesces every submission that arrives within
    [batch_window] seconds of the first pending one into a single
    re-plan ({!flush}), which prices up to [max_batch] jobs in one
    parallel pass.  Admission control mirrors the PR 7 online driver:
    a full queue sheds the lowest-priority queued job strictly below
    the newcomer (newest among equals) rather than refusing, a
    [replan_budget] caps the number of batches, and drain mode refuses
    new work while finishing the backlog.

    Protocol grammar, failure replies and the determinism contract are
    documented in [doc/scheduld.md]. *)

type config = {
  params : Heuristics.Params.t;  (** default scheduling parameters *)
  heuristic : string;  (** registry default when a submit names none *)
  jobs : int;  (** domains for a batch flush (1 = serial, no team) *)
  max_batch : int;  (** jobs coalesced into one re-plan *)
  queue_cap : int;  (** backlog bound; beyond it, shed or refuse *)
  replan_budget : int;  (** max batches before [Budget] errors *)
  batch_window : float;  (** seconds the shell waits to coalesce *)
  validate : bool;  (** run {!Sched.Validate} on every schedule *)
}

(** heft, one-port, serial, [max_batch = 16], [queue_cap = 64],
    unlimited budget, 20 ms window, validation on. *)
val default_config : config

(** {1 The pure core} *)

type t

(** [create ?config ?clock platform] — warm state for one platform.
    [clock] (default [Unix.gettimeofday]) timestamps submissions for
    the service-latency percentiles; inject a fake for deterministic
    stats.
    @raise Invalid_argument on a nonsensical config (non-positive
    [jobs], [max_batch], [queue_cap] or [batch_window], or an unknown
    [heuristic]). *)
val create : ?config:config -> ?clock:(unit -> float) -> Platform.t -> t

val config : t -> config

(** [connect t] registers a client and returns its id. *)
val connect : t -> int

(** [disconnect t client] — the client's queued jobs keep running;
    their events are dropped. *)
val disconnect : t -> int -> unit

(** [input t ~client line] feeds one protocol line.  Total: malformed
    input produces an [Error] reply in the outbox, never an
    exception. *)
val input : t -> client:int -> string -> unit

(** [flush t] runs one batch re-plan over up to [max_batch] queued
    jobs and emits their [Placed]/[Done] (or [Failed]) events; when
    draining and the backlog is empty it broadcasts [Bye] and stops
    the core.  Returns the number of jobs scheduled. *)
val flush : t -> int

(** Queued jobs awaiting a flush. *)
val pending : t -> int

(** [drain t] — refuse new submissions; the next {!flush}es finish
    the backlog and stop the core (idempotent; what a [Drain] request
    or SIGINT/SIGTERM triggers). *)
val drain : t -> unit

val draining : t -> bool
val stopped : t -> bool

(** Drain the outbox: [(client, line)] in emission order. *)
val take_outputs : t -> (int * string) list

(** Current {!Proto.stats_view} (what a [Stats] request replies). *)
val stats : t -> Proto.stats_view

(** Stop the helper team (idempotent).  The core is unusable after. *)
val shutdown : t -> unit

(** {1 The transport shell} *)

type endpoint = Unix_path of string | Tcp of int  (** loopback TCP *)

val endpoint_to_string : endpoint -> string

(** [serve ?config ?clock ?ready endpoint platform] — bind, call
    [ready ()] once listening, and run the select loop until a [Drain]
    request or SIGINT/SIGTERM drains the backlog.  Returns the final
    {!Proto.stats_view}.
    @raise Failure when the endpoint is already bound by a live daemon
    (a stale Unix-socket file left by a crash is unlinked and
    reclaimed). *)
val serve :
  ?config:config ->
  ?clock:(unit -> float) ->
  ?ready:(unit -> unit) ->
  endpoint ->
  Platform.t ->
  Proto.stats_view
