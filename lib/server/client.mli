(** Blocking line-oriented client for a running [scheduld] daemon.

    Thin by design: the CLI's [schedcli client] subcommands and the CI
    smoke test drive one request/reply (or request/event-stream)
    exchange at a time over a single connection.  {!connect} retries
    while the daemon is still starting up, so
    [schedcli serve & schedcli client ping] races are safe in scripts. *)

type t

(** [connect ?retries ?delay endpoint] — retry a refused/absent
    endpoint [retries] times (default 100), sleeping [delay] seconds
    (default 0.05) between attempts, to cover daemon start-up.
    @raise Failure when the daemon never comes up. *)
val connect : ?retries:int -> ?delay:float -> Scheduld.endpoint -> t

val send : t -> Proto.request -> unit

(** Next response line (blocking).
    @raise End_of_file when the daemon closed the connection;
    @raise Failure on a line that does not parse as a response. *)
val recv : t -> Proto.response

(** [request t r] = [send] then [recv]. *)
val request : t -> Proto.request -> Proto.response

val close : t -> unit
