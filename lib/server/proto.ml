type spec = Testbed of string | Inline of string

type submit = {
  spec : spec;
  heuristic : string option;
  model : string option;
  priority : int;
  deadline : float option;
  placements : bool;
}

type request =
  | Submit of submit
  | Status of int option
  | Cancel of int
  | Watch
  | Drain
  | Stats
  | Ping

type error_code =
  | Parse
  | Bad_request
  | Unknown_id
  | Draining
  | Queue_full
  | Budget

type job_state =
  | Queued
  | Placed_state
  | Done_state
  | Cancelled
  | Shed_state
  | Failed_state

type job_view = {
  id : int;
  state : job_state;
  spec : string;
  priority : int;
  makespan : float option;
}

type stats_view = {
  requests : int;
  submitted : int;
  completed : int;
  cancelled : int;
  shed : int;
  failed : int;
  errors : int;
  batches : int;
  queue_depth : int;
  queue_peak : int;
  clients : int;
  p50_ms : float option;
  p99_ms : float option;
}

type placement_row = { task : int; proc : int; start : float; finish : float }

type response =
  | Accepted of { id : int; queued : int }
  | Placed of {
      id : int;
      makespan : float;
      tasks : int;
      valid : bool;
      fingerprint : string;
      batch : int;
      placements : placement_row list option;
    }
  | Done of { id : int; makespan : float; missed : bool }
  | Failed of { id : int; msg : string }
  | Shed of { id : int; by : int }
  | Cancelled_reply of { id : int }
  | Status_reply of job_view list
  | Stats_reply of stats_view
  | Draining_reply of { pending : int }
  | Watching
  | Bye
  | Pong
  | Error of { code : error_code; msg : string }

let error_code_to_string = function
  | Parse -> "parse"
  | Bad_request -> "bad-request"
  | Unknown_id -> "unknown-id"
  | Draining -> "draining"
  | Queue_full -> "queue-full"
  | Budget -> "budget"

let error_code_of_string = function
  | "parse" -> Some Parse
  | "bad-request" -> Some Bad_request
  | "unknown-id" -> Some Unknown_id
  | "draining" -> Some Draining
  | "queue-full" -> Some Queue_full
  | "budget" -> Some Budget
  | _ -> None

let job_state_to_string = function
  | Queued -> "queued"
  | Placed_state -> "placed"
  | Done_state -> "done"
  | Cancelled -> "cancelled"
  | Shed_state -> "shed"
  | Failed_state -> "failed"

let job_state_of_string = function
  | "queued" -> Some Queued
  | "placed" -> Some Placed_state
  | "done" -> Some Done_state
  | "cancelled" -> Some Cancelled
  | "shed" -> Some Shed_state
  | "failed" -> Some Failed_state
  | _ -> None

(* ------------------------------------------------------------------ *)
(* encoding                                                            *)
(* ------------------------------------------------------------------ *)

(* Defaulted fields are omitted when they hold the default, so the
   common messages stay short; decoding restores the default, which
   keeps parse ∘ print = id. *)

let num i = Wire.Num (float_of_int i)
let opt k f = function None -> [] | Some v -> [ (k, f v) ]

let print_request r =
  Wire.print
    (match r with
    | Submit s ->
        Wire.Obj
          (("op", Wire.Str "submit")
           :: (match s.spec with
              | Testbed spec -> [ ("job", Wire.Str spec) ]
              | Inline text -> [ ("graph", Wire.Str text) ])
          @ opt "heuristic" (fun h -> Wire.Str h) s.heuristic
          @ opt "model" (fun m -> Wire.Str m) s.model
          @ (if s.priority = 0 then [] else [ ("prio", num s.priority) ])
          @ opt "deadline" (fun d -> Wire.Num d) s.deadline
          @ if s.placements then [ ("placements", Wire.Bool true) ] else [])
    | Status id -> Wire.Obj (("op", Wire.Str "status") :: opt "id" num id)
    | Cancel id -> Wire.Obj [ ("op", Wire.Str "cancel"); ("id", num id) ]
    | Watch -> Wire.Obj [ ("op", Wire.Str "watch") ]
    | Drain -> Wire.Obj [ ("op", Wire.Str "drain") ]
    | Stats -> Wire.Obj [ ("op", Wire.Str "stats") ]
    | Ping -> Wire.Obj [ ("op", Wire.Str "ping") ])

let placement_to_wire p =
  Wire.Arr [ num p.task; num p.proc; Wire.Num p.start; Wire.Num p.finish ]

let job_view_to_wire v =
  Wire.Obj
    ([
       ("id", num v.id);
       ("state", Wire.Str (job_state_to_string v.state));
       ("job", Wire.Str v.spec);
     ]
    @ (if v.priority = 0 then [] else [ ("prio", num v.priority) ])
    @ opt "makespan" (fun m -> Wire.Num m) v.makespan)

let print_response r =
  Wire.print
    (match r with
    | Accepted { id; queued } ->
        Wire.Obj
          [ ("ev", Wire.Str "accepted"); ("id", num id); ("queued", num queued) ]
    | Placed { id; makespan; tasks; valid; fingerprint; batch; placements } ->
        Wire.Obj
          ([
             ("ev", Wire.Str "placed");
             ("id", num id);
             ("makespan", Wire.Num makespan);
             ("tasks", num tasks);
             ("valid", Wire.Bool valid);
             ("fingerprint", Wire.Str fingerprint);
             ("batch", num batch);
           ]
          @ opt "placements"
              (fun rows -> Wire.Arr (List.map placement_to_wire rows))
              placements)
    | Done { id; makespan; missed } ->
        Wire.Obj
          ([
             ("ev", Wire.Str "done");
             ("id", num id);
             ("makespan", Wire.Num makespan);
           ]
          @ if missed then [ ("missed", Wire.Bool true) ] else [])
    | Failed { id; msg } ->
        Wire.Obj
          [ ("ev", Wire.Str "failed"); ("id", num id); ("msg", Wire.Str msg) ]
    | Shed { id; by } ->
        Wire.Obj [ ("ev", Wire.Str "shed"); ("id", num id); ("by", num by) ]
    | Cancelled_reply { id } ->
        Wire.Obj [ ("ev", Wire.Str "cancelled"); ("id", num id) ]
    | Status_reply jobs ->
        Wire.Obj
          [
            ("ev", Wire.Str "status");
            ("jobs", Wire.Arr (List.map job_view_to_wire jobs));
          ]
    | Stats_reply s ->
        let onum = function None -> Wire.Null | Some x -> Wire.Num x in
        Wire.Obj
          [
            ("ev", Wire.Str "stats");
            ("requests", num s.requests);
            ("submitted", num s.submitted);
            ("completed", num s.completed);
            ("cancelled", num s.cancelled);
            ("shed", num s.shed);
            ("failed", num s.failed);
            ("errors", num s.errors);
            ("batches", num s.batches);
            ("queue_depth", num s.queue_depth);
            ("queue_peak", num s.queue_peak);
            ("clients", num s.clients);
            ("p50_ms", onum s.p50_ms);
            ("p99_ms", onum s.p99_ms);
          ]
    | Draining_reply { pending } ->
        Wire.Obj [ ("ev", Wire.Str "draining"); ("pending", num pending) ]
    | Watching -> Wire.Obj [ ("ev", Wire.Str "watching") ]
    | Bye -> Wire.Obj [ ("ev", Wire.Str "bye") ]
    | Pong -> Wire.Obj [ ("ev", Wire.Str "pong") ]
    | Error { code; msg } ->
        Wire.Obj
          [
            ("ev", Wire.Str "error");
            ("code", Wire.Str (error_code_to_string code));
            ("msg", Wire.Str msg);
          ])

(* ------------------------------------------------------------------ *)
(* decoding                                                            *)
(* ------------------------------------------------------------------ *)

exception Bad of string

let bad fmt = Printf.ksprintf (fun m -> raise (Bad m)) fmt

let field v k conv what =
  match Option.bind (Wire.member k v) conv with
  | Some x -> x
  | None -> bad "missing or invalid %S (%s)" k what

let opt_field v k conv what =
  match Wire.member k v with
  | None | Some Wire.Null -> None
  | Some w -> (
      match conv w with
      | Some x -> Some x
      | None -> bad "invalid %S (%s)" k what)

let flag v k = Option.value ~default:false (opt_field v k Wire.to_bool "bool")
let int0 v k = Option.value ~default:0 (opt_field v k Wire.to_int "int")

let decode_request v =
  match Option.bind (Wire.member "op" v) Wire.to_str with
  | None -> bad "missing %S" "op"
  | Some "submit" ->
      let spec =
        match
          ( opt_field v "job" Wire.to_str "string",
            opt_field v "graph" Wire.to_str "string" )
        with
        | Some j, None -> Testbed j
        | None, Some g -> Inline g
        | Some _, Some _ -> bad "submit takes %S or %S, not both" "job" "graph"
        | None, None -> bad "submit needs a %S spec or an inline %S" "job" "graph"
      in
      Submit
        {
          spec;
          heuristic = opt_field v "heuristic" Wire.to_str "string";
          model = opt_field v "model" Wire.to_str "string";
          priority = int0 v "prio";
          deadline = opt_field v "deadline" Wire.to_float "number";
          placements = flag v "placements";
        }
  | Some "status" -> Status (opt_field v "id" Wire.to_int "int")
  | Some "cancel" -> Cancel (field v "id" Wire.to_int "int")
  | Some "watch" -> Watch
  | Some "drain" -> Drain
  | Some "stats" -> Stats
  | Some "ping" -> Ping
  | Some op -> bad "unknown op %S" op

let decode_placement w =
  match Option.map (List.map Wire.to_float) (Wire.to_list w) with
  | Some [ Some task; Some proc; Some start; Some finish ]
    when Float.is_integer task && Float.is_integer proc ->
      { task = int_of_float task; proc = int_of_float proc; start; finish }
  | _ -> bad "invalid placement row"

let decode_job_view w =
  {
    id = field w "id" Wire.to_int "int";
    state =
      (let s = field w "state" Wire.to_str "string" in
       match job_state_of_string s with
       | Some st -> st
       | None -> bad "unknown job state %S" s);
    spec = field w "job" Wire.to_str "string";
    priority = int0 w "prio";
    makespan = opt_field w "makespan" Wire.to_float "number";
  }

let decode_response v =
  match Option.bind (Wire.member "ev" v) Wire.to_str with
  | None -> bad "missing %S" "ev"
  | Some "accepted" ->
      Accepted
        {
          id = field v "id" Wire.to_int "int";
          queued = field v "queued" Wire.to_int "int";
        }
  | Some "placed" ->
      Placed
        {
          id = field v "id" Wire.to_int "int";
          makespan = field v "makespan" Wire.to_float "number";
          tasks = field v "tasks" Wire.to_int "int";
          valid = field v "valid" Wire.to_bool "bool";
          fingerprint = field v "fingerprint" Wire.to_str "string";
          batch = field v "batch" Wire.to_int "int";
          placements =
            Option.map (List.map decode_placement)
              (opt_field v "placements" Wire.to_list "array");
        }
  | Some "done" ->
      Done
        {
          id = field v "id" Wire.to_int "int";
          makespan = field v "makespan" Wire.to_float "number";
          missed = flag v "missed";
        }
  | Some "failed" ->
      Failed
        {
          id = field v "id" Wire.to_int "int";
          msg = field v "msg" Wire.to_str "string";
        }
  | Some "shed" ->
      Shed
        { id = field v "id" Wire.to_int "int"; by = field v "by" Wire.to_int "int" }
  | Some "cancelled" -> Cancelled_reply { id = field v "id" Wire.to_int "int" }
  | Some "status" ->
      Status_reply
        (List.map decode_job_view (field v "jobs" Wire.to_list "array"))
  | Some "stats" ->
      Stats_reply
        {
          requests = field v "requests" Wire.to_int "int";
          submitted = field v "submitted" Wire.to_int "int";
          completed = field v "completed" Wire.to_int "int";
          cancelled = field v "cancelled" Wire.to_int "int";
          shed = field v "shed" Wire.to_int "int";
          failed = field v "failed" Wire.to_int "int";
          errors = field v "errors" Wire.to_int "int";
          batches = field v "batches" Wire.to_int "int";
          queue_depth = field v "queue_depth" Wire.to_int "int";
          queue_peak = field v "queue_peak" Wire.to_int "int";
          clients = field v "clients" Wire.to_int "int";
          p50_ms = opt_field v "p50_ms" Wire.to_float "number";
          p99_ms = opt_field v "p99_ms" Wire.to_float "number";
        }
  | Some "draining" ->
      Draining_reply { pending = field v "pending" Wire.to_int "int" }
  | Some "watching" -> Watching
  | Some "bye" -> Bye
  | Some "pong" -> Pong
  | Some "error" ->
      Error
        {
          code =
            (let c = field v "code" Wire.to_str "string" in
             match error_code_of_string c with
             | Some code -> code
             | None -> bad "unknown error code %S" c);
          msg = field v "msg" Wire.to_str "string";
        }
  | Some ev -> bad "unknown event %S" ev

let of_line decode line =
  match Wire.parse line with
  | Stdlib.Error msg -> Stdlib.Error msg
  | Stdlib.Ok v -> ( try Stdlib.Ok (decode v) with Bad msg -> Stdlib.Error msg)

let request_of_line line = of_line decode_request line
let response_of_line line = of_line decode_response line
