(** The scheduld wire protocol: typed messages over newline-delimited
    JSON.

    One request or response per line.  Clients speak {!request}s, the
    daemon answers with {!response}s; some responses ([Placed], [Done],
    [Shed], [Failed], [Bye]) are {e events} that can also reach clients
    that registered as watchers ([Watch]).  The full grammar, batching
    semantics and failure replies are documented in [doc/scheduld.md].

    Round trip: [request_of_line (print_request r) = Ok r] and likewise
    for responses — for {e every} constructor, including error replies;
    property-tested in [test_scheduld.ml]. *)

(** What a submission schedules: a job spec in the online trace grammar
    ([TESTBED:N[:CCR]], including [layered:L:W:N[:CCR]]), or an inline
    DAG in the {!Taskgraph.Io} text format. *)
type spec = Testbed of string | Inline of string

type submit = {
  spec : spec;
  heuristic : string option;  (** registry name; [None] = server default *)
  model : string option;  (** {!Commmodel.Comm_model.of_name}; server default *)
  priority : int;  (** shedding rank, higher = more important (default 0) *)
  deadline : float option;  (** makespan bound; misses are reported, not fatal *)
  placements : bool;  (** stream the per-task placement table back *)
}

type request =
  | Submit of submit
  | Status of int option  (** all jobs, or one id *)
  | Cancel of int  (** queued jobs only *)
  | Watch  (** subscribe this connection to every job's events *)
  | Drain  (** stop admitting, finish the backlog, then shut down *)
  | Stats
  | Ping

type error_code =
  | Parse  (** the line was not a well-formed request *)
  | Bad_request  (** well-formed but unsatisfiable (unknown name, bad spec) *)
  | Unknown_id
  | Draining  (** submission refused: the daemon is shutting down *)
  | Queue_full  (** admission control: backlog at capacity, nothing sheddable *)
  | Budget  (** the re-plan budget is exhausted *)

type job_state = Queued | Placed_state | Done_state | Cancelled | Shed_state | Failed_state

type job_view = {
  id : int;
  state : job_state;
  spec : string;
  priority : int;
  makespan : float option;
}

type stats_view = {
  requests : int;
  submitted : int;
  completed : int;
  cancelled : int;
  shed : int;
  failed : int;
  errors : int;
  batches : int;  (** coalesced re-plans run so far *)
  queue_depth : int;
  queue_peak : int;
  clients : int;
  p50_ms : float option;  (** submit-to-first-placement service latency *)
  p99_ms : float option;
}

type placement_row = { task : int; proc : int; start : float; finish : float }

type response =
  | Accepted of { id : int; queued : int }
  | Placed of {
      id : int;
      makespan : float;
      tasks : int;
      valid : bool;
      fingerprint : string;  (** {!Sched.Export.fingerprint} of the plan *)
      batch : int;  (** jobs coalesced into the re-plan that served this *)
      placements : placement_row list option;
    }
  | Done of { id : int; makespan : float; missed : bool }
  | Failed of { id : int; msg : string }
  | Shed of { id : int; by : int }  (** dropped in favour of job [by] *)
  | Cancelled_reply of { id : int }
  | Status_reply of job_view list
  | Stats_reply of stats_view
  | Draining_reply of { pending : int }
  | Watching
  | Bye  (** the daemon is gone; sent to every client on shutdown *)
  | Pong
  | Error of { code : error_code; msg : string }

val error_code_to_string : error_code -> string
val error_code_of_string : string -> error_code option
val job_state_to_string : job_state -> string
val job_state_of_string : string -> job_state option

(** Single line, no trailing newline. *)
val print_request : request -> string

val print_response : response -> string

(** Total — malformed input is an [Error] description, never an
    exception. *)
val request_of_line : string -> (request, string) result

val response_of_line : string -> (response, string) result
