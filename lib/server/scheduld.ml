module Counters = Obs.Counters
module Graph = Taskgraph.Graph
module Graph_io = Taskgraph.Io
module Schedule = Sched.Schedule
module Validate = Sched.Validate
module Export = Sched.Export
module Params = Heuristics.Params
module Registry = Heuristics.Registry
module Suite = Testbeds.Suite
module Event = Online.Event
module Team = Prelude.Pool.Team

type config = {
  params : Params.t;
  heuristic : string;
  jobs : int;
  max_batch : int;
  queue_cap : int;
  replan_budget : int;
  batch_window : float;
  validate : bool;
}

let default_config =
  {
    params = Params.default;
    heuristic = "heft";
    jobs = 1;
    max_batch = 16;
    queue_cap = 64;
    replan_budget = max_int;
    batch_window = 0.02;
    validate = true;
  }

(* ------------------------------------------------------------------ *)
(* the pure core                                                       *)
(* ------------------------------------------------------------------ *)

type job = {
  jid : int;
  owner : int;
  jspec : string;  (** canonical display spec *)
  run : unit -> Schedule.t;  (** captures graph, params and scheduler *)
  jgraph : Graph.t;
  jpriority : int;
  jdeadline : float option;
  want_placements : bool;
  submitted_at : float;
  mutable jstate : Proto.job_state;
  mutable jmakespan : float option;
}

type client = { mutable watcher : bool; mutable gone : bool }

type t = {
  cfg : config;
  platform : Platform.t;
  clock : unit -> float;
  graphs : (string, Graph.t) Hashtbl.t;  (** warm testbed-graph cache *)
  team : Team.t option;
  clients : (int, client) Hashtbl.t;
  mutable next_client : int;
  mutable next_job : int;
  jobs_tbl : (int, job) Hashtbl.t;
  mutable order : int list;  (** submission order, newest first *)
  mutable queue : job list;  (** backlog, arrival order *)
  outbox : (int * string) Queue.t;
  mutable is_draining : bool;
  mutable is_stopped : bool;
  mutable n_requests : int;
  mutable n_errors : int;
  mutable n_batches : int;
  mutable n_submitted : int;
  mutable n_completed : int;
  mutable n_cancelled : int;
  mutable n_shed : int;
  mutable n_failed : int;
  mutable queue_peak : int;
  mutable latencies_ms : float list;
}

let config t = t.cfg

let create ?(config = default_config) ?(clock = Unix.gettimeofday) platform =
  if config.jobs < 1 then invalid_arg "Scheduld.create: jobs must be >= 1";
  if config.max_batch < 1 then
    invalid_arg "Scheduld.create: max_batch must be >= 1";
  if config.queue_cap < 1 then
    invalid_arg "Scheduld.create: queue_cap must be >= 1";
  if config.batch_window < 0. then
    invalid_arg "Scheduld.create: negative batch_window";
  ignore (Registry.find config.heuristic);
  {
    cfg = config;
    platform;
    clock;
    graphs = Hashtbl.create 16;
    team =
      (if config.jobs > 1 then Some (Team.create ~helpers:(config.jobs - 1))
       else None);
    clients = Hashtbl.create 16;
    next_client = 0;
    next_job = 0;
    jobs_tbl = Hashtbl.create 64;
    order = [];
    queue = [];
    outbox = Queue.create ();
    is_draining = false;
    is_stopped = false;
    n_requests = 0;
    n_errors = 0;
    n_batches = 0;
    n_submitted = 0;
    n_completed = 0;
    n_cancelled = 0;
    n_shed = 0;
    n_failed = 0;
    queue_peak = 0;
    latencies_ms = [];
  }

let connect t =
  let cid = t.next_client in
  t.next_client <- cid + 1;
  Hashtbl.replace t.clients cid { watcher = false; gone = false };
  cid

let disconnect t cid =
  match Hashtbl.find_opt t.clients cid with
  | Some c -> c.gone <- true
  | None -> ()

let live_clients t =
  Hashtbl.fold (fun cid c acc -> if c.gone then acc else cid :: acc) t.clients []
  |> List.sort compare

let emit t cid resp =
  match Hashtbl.find_opt t.clients cid with
  | Some c when not c.gone ->
      Queue.add (cid, Proto.print_response resp) t.outbox
  | _ -> ()

let emit_error t cid code msg =
  t.n_errors <- t.n_errors + 1;
  emit t cid (Proto.Error { code; msg })

(* Job events go to the owner and then to every watcher, in client-id
   order — a deterministic fan-out whatever the Hashtbl layout. *)
let broadcast t ~owner resp =
  emit t owner resp;
  List.iter
    (fun cid ->
      if cid <> owner then
        match Hashtbl.find_opt t.clients cid with
        | Some c when c.watcher && not c.gone -> emit t cid resp
        | _ -> ())
    (live_clients t)

let pending t = List.length t.queue
let draining t = t.is_draining
let stopped t = t.is_stopped

let take_outputs t =
  let out = List.rev (Queue.fold (fun acc x -> x :: acc) [] t.outbox) in
  Queue.clear t.outbox;
  out

let stats t : Proto.stats_view =
  let pct p =
    match t.latencies_ms with
    | [] -> None
    | xs -> Some (Prelude.Stats.percentile p xs)
  in
  {
    requests = t.n_requests;
    submitted = t.n_submitted;
    completed = t.n_completed;
    cancelled = t.n_cancelled;
    shed = t.n_shed;
    failed = t.n_failed;
    errors = t.n_errors;
    batches = t.n_batches;
    queue_depth = pending t;
    queue_peak = t.queue_peak;
    clients = List.length (live_clients t);
    p50_ms = pct 50.;
    p99_ms = pct 99.;
  }

let job_view (j : job) : Proto.job_view =
  {
    id = j.jid;
    state = j.jstate;
    spec = j.jspec;
    priority = j.jpriority;
    makespan = j.jmakespan;
  }

(* ---------------- submission ---------------- *)

let resolve_graph t (spec : Proto.spec) =
  match spec with
  | Proto.Inline text ->
      let g = Graph_io.of_string text in
      (Printf.sprintf "inline:%d" (Graph.n_tasks g), g)
  | Proto.Testbed spec ->
      let job = Event.job_of_spec spec in
      let canonical = Event.spec_of_job job in
      let g =
        match Hashtbl.find_opt t.graphs canonical with
        | Some g -> g
        | None ->
            let suite = Suite.find job.testbed in
            let g =
              suite.Suite.build
                ~n:(max job.Event.n suite.Suite.min_n)
                ~ccr:job.Event.ccr
            in
            Hashtbl.replace t.graphs canonical g;
            g
      in
      (canonical, g)

(* Admission control mirrors the online driver: a full backlog sheds the
   lowest-priority queued job strictly below the newcomer — the newest
   among equals — before refusing outright. *)
let try_shed t ~for_id ~priority =
  let victim =
    List.fold_left
      (fun best j ->
        if j.jpriority >= priority then best
        else
          match best with
          | Some b when b.jpriority < j.jpriority -> best
          | Some b when b.jpriority = j.jpriority && b.jid > j.jid -> best
          | _ -> Some j)
      None t.queue
  in
  match victim with
  | None -> false
  | Some v ->
      t.queue <- List.filter (fun j -> j.jid <> v.jid) t.queue;
      v.jstate <- Proto.Shed_state;
      t.n_shed <- t.n_shed + 1;
      Counters.shed_job ();
      if v.jdeadline <> None then Counters.deadline_miss ();
      broadcast t ~owner:v.owner (Proto.Shed { id = v.jid; by = for_id });
      true

let handle_submit t ~client (s : Proto.submit) =
  if t.is_draining then
    emit_error t client Proto.Draining "daemon is draining; submission refused"
  else if t.n_batches >= t.cfg.replan_budget then
    emit_error t client Proto.Budget "re-plan budget exhausted"
  else
    match
      let heuristic =
        Option.value ~default:t.cfg.heuristic s.Proto.heuristic
      in
      let entry = Registry.find heuristic in
      let params =
        match s.Proto.model with
        | None -> t.cfg.params
        | Some m ->
            Params.with_model t.cfg.params (Commmodel.Comm_model.of_name m)
      in
      let spec, graph = resolve_graph t s.Proto.spec in
      (entry, params, spec, graph)
    with
    | exception Invalid_argument msg -> emit_error t client Proto.Bad_request msg
    | entry, params, spec, graph ->
        let id = t.next_job in
        if
          List.length t.queue >= t.cfg.queue_cap
          && not (try_shed t ~for_id:id ~priority:s.Proto.priority)
        then
          emit_error t client Proto.Queue_full
            (Printf.sprintf "backlog full (%d jobs) and nothing sheddable"
               t.cfg.queue_cap)
        else begin
          t.next_job <- id + 1;
          let job =
            {
              jid = id;
              owner = client;
              jspec = spec;
              run = (fun () -> entry.Registry.scheduler params t.platform graph);
              jgraph = graph;
              jpriority = s.Proto.priority;
              jdeadline = s.Proto.deadline;
              want_placements = s.Proto.placements;
              submitted_at = t.clock ();
              jstate = Proto.Queued;
              jmakespan = None;
            }
          in
          Hashtbl.replace t.jobs_tbl id job;
          t.order <- id :: t.order;
          t.queue <- t.queue @ [ job ];
          t.n_submitted <- t.n_submitted + 1;
          Counters.queued_job ();
          t.queue_peak <- max t.queue_peak (List.length t.queue);
          emit t client
            (Proto.Accepted { id; queued = List.length t.queue })
        end

(* ---------------- the other requests ---------------- *)

let handle_status t ~client = function
  | Some id -> (
      match Hashtbl.find_opt t.jobs_tbl id with
      | None ->
          emit_error t client Proto.Unknown_id
            (Printf.sprintf "no such job %d" id)
      | Some j -> emit t client (Proto.Status_reply [ job_view j ]))
  | None ->
      let views =
        List.rev_map
          (fun id -> job_view (Hashtbl.find t.jobs_tbl id))
          t.order
      in
      emit t client (Proto.Status_reply views)

let handle_cancel t ~client id =
  match Hashtbl.find_opt t.jobs_tbl id with
  | None ->
      emit_error t client Proto.Unknown_id (Printf.sprintf "no such job %d" id)
  | Some j when j.jstate = Proto.Queued ->
      t.queue <- List.filter (fun q -> q.jid <> id) t.queue;
      j.jstate <- Proto.Cancelled;
      t.n_cancelled <- t.n_cancelled + 1;
      emit t client (Proto.Cancelled_reply { id })
  | Some j ->
      emit_error t client Proto.Bad_request
        (Printf.sprintf "job %d is %s; only queued jobs can be cancelled" id
           (Proto.job_state_to_string j.jstate))

let drain t = t.is_draining <- true

let input t ~client line =
  if not t.is_stopped then begin
    t.n_requests <- t.n_requests + 1;
    Counters.server_request ();
    match Proto.request_of_line line with
    | Error msg -> emit_error t client Proto.Parse msg
    | Ok (Proto.Submit s) -> handle_submit t ~client s
    | Ok (Proto.Status id) -> handle_status t ~client id
    | Ok (Proto.Cancel id) -> handle_cancel t ~client id
    | Ok Proto.Watch ->
        (match Hashtbl.find_opt t.clients client with
        | Some c -> c.watcher <- true
        | None -> ());
        emit t client Proto.Watching
    | Ok Proto.Drain ->
        drain t;
        emit t client (Proto.Draining_reply { pending = pending t })
    | Ok Proto.Stats -> emit t client (Proto.Stats_reply (stats t))
    | Ok Proto.Ping -> emit t client Proto.Pong
  end

(* ---------------- batch flush ---------------- *)

let placement_rows sched g =
  List.init (Graph.n_tasks g) (fun v ->
      let pl = Schedule.placement_exn sched v in
      {
        Proto.task = v;
        proc = pl.Schedule.proc;
        start = pl.Schedule.start;
        finish = pl.Schedule.finish;
      })

let split_batch t =
  let rec take k acc rest =
    match rest with
    | j :: tl when k > 0 -> take (k - 1) (j :: acc) tl
    | _ -> (Array.of_list (List.rev acc), rest)
  in
  let batch, rest = take t.cfg.max_batch [] t.queue in
  t.queue <- rest;
  batch

let maybe_finish t =
  if t.is_draining && t.queue = [] && not t.is_stopped then begin
    List.iter (fun cid -> emit t cid Proto.Bye) (live_clients t);
    t.is_stopped <- true
  end

let flush t =
  let batch = split_batch t in
  let n = Array.length batch in
  if n > 0 then begin
    t.n_batches <- t.n_batches + 1;
    Counters.batched_replan ();
    (* Workers never raise: each slot holds the job's own verdict. *)
    let results = Array.make n (Error "not scheduled") in
    let run_one i =
      let j = batch.(i) in
      results.(i) <-
        (try Ok (j.run ()) with
        | Invalid_argument msg | Failure msg -> Error msg
        | exn -> Error (Printexc.to_string exn))
    in
    (match t.team with
    | Some team when n > 1 ->
        Team.run team ~jobs:t.cfg.jobs ~n (fun ~worker:_ i -> run_one i)
    | _ ->
        for i = 0 to n - 1 do
          run_one i
        done);
    Array.iteri
      (fun i j ->
        match results.(i) with
        | Error msg ->
            j.jstate <- Proto.Failed_state;
            t.n_failed <- t.n_failed + 1;
            broadcast t ~owner:j.owner (Proto.Failed { id = j.jid; msg })
        | Ok sched ->
            let makespan = Schedule.makespan sched in
            let valid =
              if t.cfg.validate then Validate.is_valid sched else true
            in
            let missed =
              match j.jdeadline with
              | Some d when makespan > d ->
                  Counters.deadline_miss ();
                  true
              | _ -> false
            in
            j.jstate <- Proto.Done_state;
            j.jmakespan <- Some makespan;
            t.n_completed <- t.n_completed + 1;
            t.latencies_ms <-
              ((t.clock () -. j.submitted_at) *. 1000.) :: t.latencies_ms;
            broadcast t ~owner:j.owner
              (Proto.Placed
                 {
                   id = j.jid;
                   makespan;
                   tasks = Graph.n_tasks j.jgraph;
                   valid;
                   fingerprint = Export.fingerprint sched;
                   batch = n;
                   placements =
                     (if j.want_placements then
                        Some (placement_rows sched j.jgraph)
                      else None);
                 });
            broadcast t ~owner:j.owner
              (Proto.Done { id = j.jid; makespan; missed }))
      batch
  end;
  maybe_finish t;
  n

let shutdown t = match t.team with Some team -> Team.stop team | None -> ()

(* ------------------------------------------------------------------ *)
(* the transport shell                                                 *)
(* ------------------------------------------------------------------ *)

type endpoint = Unix_path of string | Tcp of int

let endpoint_to_string = function
  | Unix_path path -> path
  | Tcp port -> Printf.sprintf "tcp:%d" port

(* A stale socket file from a crashed daemon must not block restarts,
   but a live daemon must: probe with a connect before unlinking. *)
let claim_unix_path path =
  if Sys.file_exists path then begin
    let probe = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    let live =
      try
        Unix.connect probe (Unix.ADDR_UNIX path);
        true
      with Unix.Unix_error (_, _, _) -> false
    in
    Unix.close probe;
    if live then
      failwith (Printf.sprintf "already listening on %s" path)
    else try Unix.unlink path with Unix.Unix_error (_, _, _) -> ()
  end

let bind_endpoint endpoint =
  match endpoint with
  | Unix_path path ->
      claim_unix_path path;
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.bind fd (Unix.ADDR_UNIX path);
      fd
  | Tcp port ->
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.setsockopt fd Unix.SO_REUSEADDR true;
      (try Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port))
       with Unix.Unix_error (Unix.EADDRINUSE, _, _) ->
         Unix.close fd;
         failwith (Printf.sprintf "already listening on tcp:%d" port));
      fd

type conn = {
  fd : Unix.file_descr;
  cid : int;
  rbuf : Buffer.t;  (** partial line carried between reads *)
  mutable wbuf : string;  (** bytes not yet written *)
}

let drain_signal = ref false

let serve ?config ?clock ?(ready = fun () -> ()) endpoint platform =
  let core = create ?config ?clock platform in
  let window = core.cfg.batch_window in
  let listen_fd = bind_endpoint endpoint in
  Unix.listen listen_fd 64;
  Unix.set_nonblock listen_fd;
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  drain_signal := false;
  let on_signal = Sys.Signal_handle (fun _ -> drain_signal := true) in
  Sys.set_signal Sys.sigint on_signal;
  Sys.set_signal Sys.sigterm on_signal;
  ready ();
  let conns : (Unix.file_descr, conn) Hashtbl.t = Hashtbl.create 64 in
  let by_cid : (int, conn) Hashtbl.t = Hashtbl.create 64 in
  let scratch = Bytes.create 4096 in
  let batch_deadline = ref None in
  let close_conn c =
    disconnect core c.cid;
    Hashtbl.remove conns c.fd;
    Hashtbl.remove by_cid c.cid;
    try Unix.close c.fd with Unix.Unix_error (_, _, _) -> ()
  in
  let accept_all () =
    let continue = ref true in
    while !continue do
      match Unix.accept listen_fd with
      | fd, _ ->
          Unix.set_nonblock fd;
          let cid = connect core in
          let c = { fd; cid; rbuf = Buffer.create 256; wbuf = "" } in
          Hashtbl.replace conns fd c;
          Hashtbl.replace by_cid cid c
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
          continue := false
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    done
  in
  let feed_lines c =
    (* split complete lines out of the connection buffer; a trailing
       partial line stays buffered for the next read *)
    let data = Buffer.contents c.rbuf in
    Buffer.clear c.rbuf;
    let n = String.length data in
    let start = ref 0 in
    for i = 0 to n - 1 do
      if data.[i] = '\n' then begin
        let line = String.sub data !start (i - !start) in
        let line =
          let k = String.length line in
          if k > 0 && line.[k - 1] = '\r' then String.sub line 0 (k - 1)
          else line
        in
        if line <> "" then input core ~client:c.cid line;
        start := i + 1
      end
    done;
    if !start < n then Buffer.add_substring c.rbuf data !start (n - !start)
  in
  let read_conn c =
    match Unix.read c.fd scratch 0 (Bytes.length scratch) with
    | 0 -> close_conn c
    | k ->
        Buffer.add_subbytes c.rbuf scratch 0 k;
        feed_lines c
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
    | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) ->
        close_conn c
  in
  let try_write c =
    if c.wbuf <> "" then
      match
        Unix.write_substring c.fd c.wbuf 0 (String.length c.wbuf)
      with
      | k ->
          c.wbuf <- String.sub c.wbuf k (String.length c.wbuf - k)
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
          ()
      | exception Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) ->
          close_conn c
  in
  let ship_outputs () =
    List.iter
      (fun (cid, line) ->
        match Hashtbl.find_opt by_cid cid with
        | Some c -> c.wbuf <- c.wbuf ^ line ^ "\n"
        | None -> ())
      (take_outputs core);
    Hashtbl.iter (fun _ c -> try_write c) conns
  in
  let all_conns () = Hashtbl.fold (fun _ c acc -> c :: acc) conns [] in
  while not (stopped core) do
    if !drain_signal && not (draining core) then drain core;
    (* first pending submission arms the coalescing timer; the batch
       runs when the window closes (immediately while draining) *)
    (if pending core > 0 then begin
       if !batch_deadline = None then
         batch_deadline := Some (Unix.gettimeofday () +. window)
     end
     else batch_deadline := None);
    let timeout =
      if draining core then 0.05
      else
        match !batch_deadline with
        | Some d -> Float.max 0. (d -. Unix.gettimeofday ())
        | None -> 0.5
    in
    let rds = listen_fd :: List.map (fun c -> c.fd) (all_conns ()) in
    let wrs =
      List.filter_map
        (fun c -> if c.wbuf <> "" then Some c.fd else None)
        (all_conns ())
    in
    (match Unix.select rds wrs [] timeout with
    | rready, wready, _ ->
        if List.mem listen_fd rready then accept_all ();
        List.iter
          (fun fd ->
            if fd <> listen_fd then
              match Hashtbl.find_opt conns fd with
              | Some c -> read_conn c
              | None -> ())
          rready;
        List.iter
          (fun fd ->
            match Hashtbl.find_opt conns fd with
            | Some c -> try_write c
            | None -> ())
          wready
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
    let due =
      draining core
      || match !batch_deadline with
         | Some d -> Unix.gettimeofday () >= d
         | None -> false
    in
    if due then begin
      while pending core > 0 do
        ignore (flush core)
      done;
      batch_deadline := None
    end;
    if draining core && pending core = 0 then ignore (flush core);
    ship_outputs ()
  done;
  (* best-effort delivery of the goodbye lines before closing *)
  let rounds = ref 0 in
  while
    !rounds < 100
    && List.exists (fun c -> c.wbuf <> "") (all_conns ())
  do
    incr rounds;
    let wrs =
      List.filter_map
        (fun c -> if c.wbuf <> "" then Some c.fd else None)
        (all_conns ())
    in
    (match Unix.select [] wrs [] 0.05 with
    | _, wready, _ ->
        List.iter
          (fun fd ->
            match Hashtbl.find_opt conns fd with
            | Some c -> try_write c
            | None -> ())
          wready
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ())
  done;
  List.iter close_conn (all_conns ());
  (try Unix.close listen_fd with Unix.Unix_error (_, _, _) -> ());
  (match endpoint with
  | Unix_path path -> (
      try Unix.unlink path with Unix.Unix_error (_, _, _) -> ())
  | Tcp _ -> ());
  let final = stats core in
  shutdown core;
  final
