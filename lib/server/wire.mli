(** Minimal newline-delimited JSON for the scheduld wire protocol.

    The repo carries no JSON dependency, and the daemon only needs a
    tiny, {e total} reader: every byte string either parses to a value
    or returns [Error] — malformed input must become a structured
    protocol error, never an exception (the fuzz harness in
    [test_scheduld.ml] feeds random junk and asserts the daemon
    survives).  The printer emits a single line (no raw newlines can
    escape a string, they are [\n]-encoded), so one message = one line
    holds by construction.

    Round trip: [parse (print v) = Ok v] for every value, including
    arbitrary bytes inside strings (control characters are emitted as
    [\u00XX] escapes and decoded back to the same byte) — property
    tested. *)

type t =
  | Null
  | Bool of bool
  | Num of float  (** finite; integers print without a decimal point *)
  | Str of string  (** arbitrary bytes *)
  | Arr of t list
  | Obj of (string * t) list  (** field order is preserved *)

(** One line, no trailing newline. *)
val print : t -> string

(** Total: never raises, never loops.  Rejects trailing garbage,
    unterminated literals and nesting deeper than 64 levels. *)
val parse : string -> (t, string) result

(** {2 Accessors} — all return [None] on a shape mismatch. *)

val member : string -> t -> t option

val to_float : t -> float option

(** Integral [Num]s only. *)
val to_int : t -> int option

val to_str : t -> string option
val to_bool : t -> bool option
val to_list : t -> t list option
