type t = { ic : in_channel; oc : out_channel }

let addr_of_endpoint = function
  | Scheduld.Unix_path path -> Unix.ADDR_UNIX path
  | Scheduld.Tcp port -> Unix.ADDR_INET (Unix.inet_addr_loopback, port)

let connect ?(retries = 100) ?(delay = 0.05) endpoint =
  let addr = addr_of_endpoint endpoint in
  let rec attempt left =
    let fd = Unix.socket (Unix.domain_of_sockaddr addr) Unix.SOCK_STREAM 0 in
    match Unix.connect fd addr with
    | () -> { ic = Unix.in_channel_of_descr fd; oc = Unix.out_channel_of_descr fd }
    | exception
        Unix.Unix_error
          ((Unix.ECONNREFUSED | Unix.ENOENT | Unix.ECONNRESET), _, _)
      when left > 0 ->
        Unix.close fd;
        Unix.sleepf delay;
        attempt (left - 1)
    | exception e ->
        Unix.close fd;
        raise e
  in
  try attempt retries
  with Unix.Unix_error ((Unix.ECONNREFUSED | Unix.ENOENT), _, _) ->
    failwith
      (Printf.sprintf "no scheduld daemon at %s"
         (Scheduld.endpoint_to_string endpoint))

let send t req =
  output_string t.oc (Proto.print_request req);
  output_char t.oc '\n';
  flush t.oc

let recv t =
  let line = input_line t.ic in
  match Proto.response_of_line line with
  | Ok resp -> resp
  | Error msg -> failwith (Printf.sprintf "bad response line: %s" msg)

let request t req =
  send t req;
  recv t

let close t =
  try close_out t.oc with Sys_error _ -> ()
