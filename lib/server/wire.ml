type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* printing                                                            *)
(* ------------------------------------------------------------------ *)

(* Shortest decimal that round-trips: ids and counts print as "3", not
   "3.000000", while any finite float survives parse ∘ print exactly. *)
let num_to_string x =
  if Float.is_integer x && Float.abs x < 1e15 then Printf.sprintf "%.0f" x
  else
    let s = Printf.sprintf "%.15g" x in
    if float_of_string s = x then s
    else
      let s = Printf.sprintf "%.16g" x in
      if float_of_string s = x then s else Printf.sprintf "%.17g" x

let add_escaped buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let print v =
  let buf = Buffer.create 256 in
  let rec go = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Num x -> Buffer.add_string buf (num_to_string x)
    | Str s -> add_escaped buf s
    | Arr l ->
        Buffer.add_char buf '[';
        List.iteri
          (fun i x ->
            if i > 0 then Buffer.add_char buf ',';
            go x)
          l;
        Buffer.add_char buf ']'
    | Obj fields ->
        Buffer.add_char buf '{';
        List.iteri
          (fun i (k, x) ->
            if i > 0 then Buffer.add_char buf ',';
            add_escaped buf k;
            Buffer.add_char buf ':';
            go x)
          fields;
        Buffer.add_char buf '}'
  in
  go v;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* parsing                                                             *)
(* ------------------------------------------------------------------ *)

exception Bad of string

let max_depth = 64

let parse text =
  let n = String.length text in
  let pos = ref 0 in
  let peek () = if !pos < n then Some text.[!pos] else None in
  let fail msg = raise (Bad (Printf.sprintf "%s at byte %d" msg !pos)) in
  let skip_ws () =
    while
      !pos < n
      && match text.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
    do
      incr pos
    done
  in
  let expect c =
    if !pos < n && text.[!pos] = c then incr pos
    else fail (Printf.sprintf "expected %c" c)
  in
  let literal word v =
    let m = String.length word in
    if !pos + m <= n && String.sub text !pos m = word then begin
      pos := !pos + m;
      v
    end
    else fail (Printf.sprintf "bad literal (expected %s)" word)
  in
  let parse_number () =
    let start = !pos in
    while
      !pos < n
      &&
      match text.[!pos] with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    do
      incr pos
    done;
    match float_of_string_opt (String.sub text start (!pos - start)) with
    | Some x when Float.is_finite x -> Num x
    | _ -> fail "bad number"
  in
  let hex c =
    match c with
    | '0' .. '9' -> Char.code c - Char.code '0'
    | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
    | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
    | _ -> fail "bad \\u escape"
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 32 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      let c = text.[!pos] in
      incr pos;
      if c = '"' then Buffer.contents buf
      else if c <> '\\' then begin
        Buffer.add_char buf c;
        go ()
      end
      else begin
        (if !pos >= n then fail "unterminated escape";
         let e = text.[!pos] in
         incr pos;
         match e with
         | '"' -> Buffer.add_char buf '"'
         | '\\' -> Buffer.add_char buf '\\'
         | '/' -> Buffer.add_char buf '/'
         | 'b' -> Buffer.add_char buf '\b'
         | 'f' -> Buffer.add_char buf '\012'
         | 'n' -> Buffer.add_char buf '\n'
         | 'r' -> Buffer.add_char buf '\r'
         | 't' -> Buffer.add_char buf '\t'
         | 'u' ->
             if !pos + 4 > n then fail "truncated \\u escape";
             let code =
               (hex text.[!pos] lsl 12)
               lor (hex text.[!pos + 1] lsl 8)
               lor (hex text.[!pos + 2] lsl 4)
               lor hex text.[!pos + 3]
             in
             pos := !pos + 4;
             (* byte-oriented: code points above 255 are replaced, which
                keeps the reader total; the printer only emits \u00XX *)
             Buffer.add_char buf
               (if code < 256 then Char.chr code else '?')
         | _ -> fail "bad escape");
        go ()
      end
    in
    go ()
  in
  let rec parse_value depth =
    if depth > max_depth then fail "nesting too deep";
    skip_ws ();
    match peek () with
    | None -> fail "empty input"
    | Some '{' ->
        incr pos;
        skip_ws ();
        if peek () = Some '}' then begin
          incr pos;
          Obj []
        end
        else
          let rec fields acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value (depth + 1) in
            skip_ws ();
            match peek () with
            | Some ',' ->
                incr pos;
                fields ((k, v) :: acc)
            | Some '}' ->
                incr pos;
                Obj (List.rev ((k, v) :: acc))
            | _ -> fail "expected , or }"
          in
          fields []
    | Some '[' ->
        incr pos;
        skip_ws ();
        if peek () = Some ']' then begin
          incr pos;
          Arr []
        end
        else
          let rec elems acc =
            let v = parse_value (depth + 1) in
            skip_ws ();
            match peek () with
            | Some ',' ->
                incr pos;
                elems (v :: acc)
            | Some ']' ->
                incr pos;
                Arr (List.rev (v :: acc))
            | _ -> fail "expected , or ]"
          in
          elems []
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail (Printf.sprintf "unexpected %C" c)
  in
  match
    let v = parse_value 0 in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Bad msg -> Error msg

(* ------------------------------------------------------------------ *)
(* accessors                                                           *)
(* ------------------------------------------------------------------ *)

let member key = function Obj fields -> List.assoc_opt key fields | _ -> None
let to_float = function Num x -> Some x | _ -> None

let to_int = function
  | Num x when Float.is_integer x && Float.abs x <= 1e15 ->
      Some (int_of_float x)
  | _ -> None

let to_str = function Str s -> Some s | _ -> None
let to_bool = function Bool b -> Some b | _ -> None
let to_list = function Arr l -> Some l | _ -> None
