type edge = { id : int; src : int; dst : int; data : float }

type t = {
  name : string;
  weights : float array;
  edge_srcs : int array;
  edge_dsts : int array;
  edge_datas : float array;
  (* CSR adjacency: edge ids of successors of task v are
     [succ_ids.(succ_off.(v) .. succ_off.(v+1) - 1)]; same for preds. *)
  succ_off : int array;
  succ_ids : int array;
  pred_off : int array;
  pred_ids : int array;
  topo : int array;
}

let name g = g.name
let n_tasks g = Array.length g.weights
let n_edges g = Array.length g.edge_srcs
let weight g v = g.weights.(v)
let total_weight g = Array.fold_left ( +. ) 0. g.weights
let edge_src g e = g.edge_srcs.(e)
let edge_dst g e = g.edge_dsts.(e)
let edge_data g e = g.edge_datas.(e)

let edge g e =
  { id = e; src = g.edge_srcs.(e); dst = g.edge_dsts.(e); data = g.edge_datas.(e) }

let in_degree g v = g.pred_off.(v + 1) - g.pred_off.(v)
let out_degree g v = g.succ_off.(v + 1) - g.succ_off.(v)

let fold_pred_edges g v ~init ~f =
  let acc = ref init in
  for i = g.pred_off.(v) to g.pred_off.(v + 1) - 1 do
    acc := f !acc g.pred_ids.(i)
  done;
  !acc

let fold_succ_edges g v ~init ~f =
  let acc = ref init in
  for i = g.succ_off.(v) to g.succ_off.(v + 1) - 1 do
    acc := f !acc g.succ_ids.(i)
  done;
  !acc

let iter_pred_edges g v ~f =
  for i = g.pred_off.(v) to g.pred_off.(v + 1) - 1 do
    f g.pred_ids.(i)
  done

let iter_succ_edges g v ~f =
  for i = g.succ_off.(v) to g.succ_off.(v + 1) - 1 do
    f g.succ_ids.(i)
  done

let preds g v =
  List.rev (fold_pred_edges g v ~init:[] ~f:(fun acc e -> g.edge_srcs.(e) :: acc))

let succs g v =
  List.rev (fold_succ_edges g v ~init:[] ~f:(fun acc e -> g.edge_dsts.(e) :: acc))

let find_edge g ~src ~dst =
  let found = ref None in
  iter_succ_edges g src ~f:(fun e ->
      if g.edge_dsts.(e) = dst && !found = None then found := Some (edge g e));
  !found

let entry_tasks g =
  let acc = ref [] in
  for v = n_tasks g - 1 downto 0 do
    if in_degree g v = 0 then acc := v :: !acc
  done;
  !acc

let exit_tasks g =
  let acc = ref [] in
  for v = n_tasks g - 1 downto 0 do
    if out_degree g v = 0 then acc := v :: !acc
  done;
  !acc

let topological_order g = Array.copy g.topo

let edges g =
  List.init (n_edges g) (fun e -> edge g e)

(* Kahn's algorithm with a min-heap on task id: deterministic order, and a
   cycle check (fewer than n tasks emitted means a cycle). *)
let compute_topo ~n ~in_degree ~iter_succ =
  let order = Array.make n 0 in
  let remaining = Array.init n in_degree in
  let heap = Prelude.Pqueue.Int_heap.create () in
  for v = 0 to n - 1 do
    if remaining.(v) = 0 then Prelude.Pqueue.Int_heap.add heap v
  done;
  let count = ref 0 in
  let rec drain () =
    match Prelude.Pqueue.Int_heap.pop heap with
    | None -> ()
    | Some v ->
        order.(!count) <- v;
        incr count;
        iter_succ v (fun u ->
            remaining.(u) <- remaining.(u) - 1;
            if remaining.(u) = 0 then Prelude.Pqueue.Int_heap.add heap u);
        drain ()
  in
  drain ();
  if !count <> n then invalid_arg "Graph.create: cycle detected";
  order

let of_arrays ?(name = "graph") ~weights ~edge_srcs ~edge_dsts ~edge_datas () =
  let n = Array.length weights in
  Array.iteri
    (fun v w ->
      if w < 0. || Float.is_nan w then
        invalid_arg (Printf.sprintf "Graph.create: negative weight on task %d" v))
    weights;
  let m = Array.length edge_srcs in
  if Array.length edge_dsts <> m || Array.length edge_datas <> m then
    invalid_arg "Graph.of_arrays: edge array length mismatch";
  for i = 0 to m - 1 do
    let src = edge_srcs.(i) and dst = edge_dsts.(i) and data = edge_datas.(i) in
    if src < 0 || src >= n || dst < 0 || dst >= n then
      invalid_arg "Graph.create: edge endpoint out of range";
    if src = dst then invalid_arg "Graph.create: self-loop";
    if data < 0. || Float.is_nan data then
      invalid_arg "Graph.create: negative edge data"
  done;
  (* Duplicate-edge detection via sorting packed (src, dst) keys: endpoints
     fit an int pair in one word for any graph that fits in memory. *)
  (let keys = Array.init m (fun i -> (edge_srcs.(i) * n) + edge_dsts.(i)) in
   Array.sort Int.compare keys;
   for i = 1 to m - 1 do
     if keys.(i) = keys.(i - 1) then invalid_arg "Graph.create: duplicate edge"
   done);
  let build_csr ~endpoint =
    let off = Array.make (n + 1) 0 in
    for e = 0 to m - 1 do
      off.(endpoint e + 1) <- off.(endpoint e + 1) + 1
    done;
    for v = 1 to n do
      off.(v) <- off.(v) + off.(v - 1)
    done;
    let ids = Array.make m 0 in
    let cursor = Array.copy off in
    for e = 0 to m - 1 do
      ids.(cursor.(endpoint e)) <- e;
      cursor.(endpoint e) <- cursor.(endpoint e) + 1
    done;
    (off, ids)
  in
  let succ_off, succ_ids = build_csr ~endpoint:(fun e -> edge_srcs.(e)) in
  let pred_off, pred_ids = build_csr ~endpoint:(fun e -> edge_dsts.(e)) in
  let topo =
    compute_topo ~n
      ~in_degree:(fun v -> pred_off.(v + 1) - pred_off.(v))
      ~iter_succ:(fun v f ->
        for i = succ_off.(v) to succ_off.(v + 1) - 1 do
          f edge_dsts.(succ_ids.(i))
        done)
  in
  { name; weights; edge_srcs; edge_dsts; edge_datas; succ_off; succ_ids;
    pred_off; pred_ids; topo }

let create ?name ~weights ~edges () =
  let m = List.length edges in
  let edge_srcs = Array.make m 0
  and edge_dsts = Array.make m 0
  and edge_datas = Array.make m 0. in
  List.iteri
    (fun i (src, dst, data) ->
      edge_srcs.(i) <- src;
      edge_dsts.(i) <- dst;
      edge_datas.(i) <- data)
    edges;
  of_arrays ?name ~weights ~edge_srcs ~edge_dsts ~edge_datas ()

let with_data g ~f =
  let datas =
    Array.init (n_edges g) (fun e ->
        let d = f (edge g e) in
        if d < 0. || Float.is_nan d then
          invalid_arg "Graph.with_data: negative data";
        d)
  in
  { g with edge_datas = datas }

let disjoint_union gs =
  if gs = [] then invalid_arg "Graph.disjoint_union: empty list";
  let offsets = Array.make (List.length gs) 0 in
  let total =
    List.fold_left
      (fun (i, acc) g ->
        offsets.(i) <- acc;
        (i + 1, acc + n_tasks g))
      (0, 0) gs
    |> snd
  in
  let weights = Array.make (max total 1) 0. in
  let edge_acc = ref [] in
  List.iteri
    (fun i g ->
      let off = offsets.(i) in
      for v = 0 to n_tasks g - 1 do
        weights.(off + v) <- weight g v
      done;
      List.iter
        (fun (e : edge) ->
          edge_acc := (off + e.src, off + e.dst, e.data) :: !edge_acc)
        (edges g))
    gs;
  let name = String.concat "+" (List.map (fun g -> g.name) gs) in
  ( create ~name ~weights:(Array.sub weights 0 total) ~edges:(List.rev !edge_acc) (),
    offsets )

let check_invariants g =
  let n = n_tasks g and m = n_edges g in
  if Array.length g.succ_off <> n + 1 || Array.length g.pred_off <> n + 1 then
    invalid_arg "Graph: bad CSR offsets";
  if g.succ_off.(n) <> m || g.pred_off.(n) <> m then
    invalid_arg "Graph: CSR does not cover all edges";
  Array.iter (fun w -> if w < 0. then invalid_arg "Graph: negative weight") g.weights;
  for e = 0 to m - 1 do
    if g.edge_srcs.(e) = g.edge_dsts.(e) then invalid_arg "Graph: self-loop";
    if g.edge_datas.(e) < 0. then invalid_arg "Graph: negative data"
  done;
  (* The stored topological order must be a permutation respecting edges. *)
  let pos = Array.make n (-1) in
  Array.iteri (fun i v -> pos.(v) <- i) g.topo;
  Array.iter (fun p -> if p < 0 then invalid_arg "Graph: topo not a permutation") pos;
  for e = 0 to m - 1 do
    if pos.(g.edge_srcs.(e)) >= pos.(g.edge_dsts.(e)) then
      invalid_arg "Graph: topo order violates an edge"
  done

let pp fmt g =
  Format.fprintf fmt "@[<v>graph %S: %d tasks, %d edges, total weight %g@]"
    g.name (n_tasks g) (n_edges g) (total_weight g)
