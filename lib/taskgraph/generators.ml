open Prelude

let rand_weight rng max_weight = float_of_int (Rng.int_in rng 1 (max max_weight 1))
let rand_data rng max_data = float_of_int (Rng.int_in rng 0 (max max_data 0))

let layered rng ~layers ~width ~edge_prob ~max_weight ~max_data =
  if layers < 1 || width < 1 then invalid_arg "Generators.layered";
  let layer_sizes = Array.init layers (fun _ -> Rng.int_in rng 1 width) in
  let offsets = Array.make (layers + 1) 0 in
  for l = 0 to layers - 1 do
    offsets.(l + 1) <- offsets.(l) + layer_sizes.(l)
  done;
  let n = offsets.(layers) in
  let weights = Array.init n (fun _ -> rand_weight rng max_weight) in
  (* Edge columns grow in flat vectors and go straight to the CSR
     constructor — at 10^6 tasks an association list of boxed triples
     would dominate generation time. *)
  let srcs = Vec.create () and dsts = Vec.create () and datas = Vec.create () in
  let add i j =
    Vec.push srcs i;
    Vec.push dsts j;
    Vec.push datas (rand_data rng max_data)
  in
  for l = 1 to layers - 1 do
    for j = offsets.(l) to offsets.(l + 1) - 1 do
      let linked = ref false in
      for i = offsets.(l - 1) to offsets.(l) - 1 do
        if Rng.float rng 1. < edge_prob then begin
          add i j;
          linked := true
        end
      done;
      if not !linked then add (Rng.int_in rng offsets.(l - 1) (offsets.(l) - 1)) j
    done
  done;
  Graph.of_arrays ~name:"random-layered" ~weights ~edge_srcs:(Vec.to_array srcs)
    ~edge_dsts:(Vec.to_array dsts) ~edge_datas:(Vec.to_array datas) ()

let erdos_renyi rng ~n ~edge_prob ~max_weight ~max_data =
  if n < 1 then invalid_arg "Generators.erdos_renyi";
  let weights = Array.init n (fun _ -> rand_weight rng max_weight) in
  let edges = ref [] in
  for i = 0 to n - 2 do
    for j = i + 1 to n - 1 do
      if Rng.float rng 1. < edge_prob then
        edges := (i, j, rand_data rng max_data) :: !edges
    done
  done;
  Graph.create ~name:"random-dag" ~weights ~edges:(List.rev !edges) ()

let out_tree rng ~n ~max_arity ~max_weight ~max_data =
  if n < 1 || max_arity < 1 then invalid_arg "Generators.out_tree";
  let weights = Array.init n (fun _ -> rand_weight rng max_weight) in
  let arity = Array.make n 0 in
  let edges = ref [] in
  for j = 1 to n - 1 do
    let candidates =
      List.filter (fun i -> arity.(i) < max_arity) (List.init j Fun.id)
    in
    let parent =
      match candidates with
      | [] -> j - 1 (* all saturated: chain off the previous task *)
      | l -> List.nth l (Rng.int rng (List.length l))
    in
    arity.(parent) <- arity.(parent) + 1;
    edges := (parent, j, rand_data rng max_data) :: !edges
  done;
  Graph.create ~name:"random-out-tree" ~weights ~edges:(List.rev !edges) ()

(* Series-parallel: build recursively as nested compositions, returning the
   number of tasks and the edges over a local id space. *)
let series_parallel rng ~depth ~max_weight ~max_data =
  let tasks = Vec.create () in
  let edges = ref [] in
  let new_task () =
    Vec.push tasks (rand_weight rng max_weight);
    Vec.length tasks - 1
  in
  let connect a b = edges := (a, b, rand_data rng max_data) :: !edges in
  (* Returns (source, sink) of the generated component. *)
  let rec build d =
    if d <= 0 then begin
      let v = new_task () in
      (v, v)
    end
    else if Rng.bool rng then begin
      (* series composition *)
      let s1, t1 = build (d - 1) in
      let s2, t2 = build (d - 1) in
      connect t1 s2;
      (s1, t2)
    end
    else begin
      (* parallel composition between fresh terminals *)
      let src = new_task () and branches = Rng.int_in rng 2 3 in
      let snk = new_task () in
      for _ = 1 to branches do
        let s, t = build (d - 1) in
        connect src s;
        connect t snk
      done;
      (src, snk)
    end
  in
  let _ = build depth in
  Graph.create ~name:"random-series-parallel" ~weights:(Vec.to_array tasks)
    ~edges:(List.rev !edges) ()
