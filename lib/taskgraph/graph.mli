(** Directed acyclic task graphs (the macro-dataflow application model).

    A graph [G = (V, E, w, data)] carries a non-negative computation cost
    [w(v)] per task and a non-negative communication volume [data(e)] per
    precedence edge, exactly as in §2.1 of the paper.  Graphs are immutable
    once built; adjacency is stored in CSR form so the schedulers can walk
    predecessor/successor edges without allocation. *)

type t

type edge = { id : int; src : int; dst : int; data : float }

(** [create ?name ~weights ~edges ()] builds and validates a graph.
    [edges] are [(src, dst, data)] triples.
    @raise Invalid_argument on: negative weight or data, out-of-range
    endpoint, self-loop, duplicate edge, or a cycle. *)
val create :
  ?name:string -> weights:float array -> edges:(int * int * float) list -> unit -> t

(** [of_arrays ?name ~weights ~edge_srcs ~edge_dsts ~edge_datas ()] builds the
    same validated graph from parallel edge arrays, taking ownership of all
    four arrays (callers must not mutate them afterwards).  This is the
    constructor the large-instance generators use: no intermediate edge
    lists, so a 10⁶-task graph costs only its CSR footprint.
    @raise Invalid_argument as {!create}, plus on edge-array length
    mismatch. *)
val of_arrays :
  ?name:string ->
  weights:float array ->
  edge_srcs:int array ->
  edge_dsts:int array ->
  edge_datas:float array ->
  unit ->
  t

val name : t -> string
val n_tasks : t -> int
val n_edges : t -> int
val weight : t -> int -> float

(** Sum of all task weights (the sequential work [W]). *)
val total_weight : t -> float

val edge : t -> int -> edge
val edge_src : t -> int -> int
val edge_dst : t -> int -> int
val edge_data : t -> int -> float

(** [find_edge g ~src ~dst] is the connecting edge, if any. *)
val find_edge : t -> src:int -> dst:int -> edge option

val in_degree : t -> int -> int
val out_degree : t -> int -> int

(** Edge-id folds, allocation-free; the order is deterministic (edge
    insertion order). *)
val fold_pred_edges : t -> int -> init:'a -> f:('a -> int -> 'a) -> 'a

val fold_succ_edges : t -> int -> init:'a -> f:('a -> int -> 'a) -> 'a
val iter_pred_edges : t -> int -> f:(int -> unit) -> unit
val iter_succ_edges : t -> int -> f:(int -> unit) -> unit

(** Predecessor/successor task lists (allocating; for tests and tools). *)
val preds : t -> int -> int list

val succs : t -> int -> int list

(** Tasks with no predecessors / no successors, ascending. *)
val entry_tasks : t -> int list

val exit_tasks : t -> int list

(** A topological order (deterministic: Kahn's algorithm with a min-heap on
    task id). *)
val topological_order : t -> int array

(** [edges g] lists all edges in id order. *)
val edges : t -> edge list

(** [with_data g ~f] replaces each edge's volume by [f edge]; used to apply
    the paper's communication-to-computation ratio [data(e) = c * w(src e)]
    (§5.2). *)
val with_data : t -> f:(edge -> float) -> t

(** [disjoint_union gs] — one graph holding every input side by side (task
    ids are offset in list order); scheduling it runs the applications
    concurrently on a shared platform, which is how a batch of independent
    jobs is expressed.  Returns the offsets at which each input's tasks
    start.
    @raise Invalid_argument on an empty list. *)
val disjoint_union : t list -> t * int array

(** [check_invariants g] re-verifies every structural invariant; used by
    property tests.
    @raise Invalid_argument when an invariant is broken. *)
val check_invariants : t -> unit

val pp : Format.formatter -> t -> unit
