module Registry = Heuristics.Registry
module Suite = Testbeds.Suite

type spec = {
  heuristics : Registry.entry list;
  testbeds : Suite.t list;
  sizes : int list;
  use_paper_b : bool;
}

let default_spec (cfg : Config.t) =
  {
    heuristics = List.filter (fun e -> e.Registry.scalable) Registry.all;
    testbeds = Suite.all;
    sizes = cfg.sizes;
    use_paper_b = true;
  }

(* Only the plain ILHA entry takes the per-testbed paper B; parameterised
   variants (ilha[...]) and ilha-auto keep their own chunk logic. *)
let is_ilha entry = entry.Registry.name = "ilha"

let run cfg spec =
  List.concat_map
    (fun testbed ->
      List.concat_map
        (fun n ->
          let n = max n testbed.Suite.min_n in
          List.map
            (fun entry ->
              let params =
                if spec.use_paper_b && is_ilha entry then
                  Some
                    (Heuristics.Params.with_b cfg.Config.params
                       (Some testbed.Suite.paper_b))
                else None
              in
              Runner.run cfg ~testbed ~n ~heuristic:entry ?params ())
            spec.heuristics)
        spec.sizes)
    spec.testbeds

let to_csv rows =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    "testbed,n,heuristic,model,b,makespan,speedup,comms,comm_time,wall_s,valid\n";
  List.iter
    (fun (r : Runner.row) ->
      Buffer.add_string buf
        (Printf.sprintf "%s,%d,%s,%s,%s,%.17g,%.6f,%d,%.17g,%.4f,%b\n"
           r.Runner.testbed r.Runner.n r.Runner.heuristic r.Runner.model
           (match r.Runner.b with Some b -> string_of_int b | None -> "")
           r.Runner.makespan r.Runner.speedup r.Runner.n_comms
           r.Runner.comm_time r.Runner.wall_s r.Runner.valid))
    rows;
  Buffer.contents buf
