module Registry = Heuristics.Registry
module Suite = Testbeds.Suite

type spec = {
  heuristics : Registry.entry list;
  testbeds : Suite.t list;
  sizes : int list;
  models : Commmodel.Comm_model.t list;
  use_paper_b : bool;
}

let default_spec (cfg : Config.t) =
  {
    heuristics = List.filter (fun e -> e.Registry.scalable) Registry.all;
    testbeds = Suite.all;
    sizes = cfg.sizes;
    models = [ Config.model cfg ];
    use_paper_b = true;
  }

(* Only the plain ILHA entry takes the per-testbed paper B; parameterised
   variants (ilha[...]) and ilha-auto keep their own chunk logic. *)
let is_ilha entry = entry.Registry.name = "ilha"

(* The grid flattened testbed-major (testbed, then size, then model,
   then heuristic) — the row order of the serial sweep, which the
   parallel sweep must reproduce exactly.  With the default singleton
   model list the order degenerates to the historical one. *)
let cells spec =
  List.concat_map
    (fun testbed ->
      List.concat_map
        (fun n ->
          List.concat_map
            (fun model ->
              List.map (fun entry -> (testbed, n, model, entry)) spec.heuristics)
            spec.models)
        spec.sizes)
    spec.testbeds

let run ?(jobs = 1) cfg spec =
  let cells = Array.of_list (cells spec) in
  (* Pre-sized result slots indexed by cell: whichever domain runs cell
     [i], the row lands in slot [i], so row order is identical to the
     serial sweep regardless of [jobs]. *)
  let rows = Array.make (Array.length cells) None in
  Prelude.Pool.iter ~jobs (Array.length cells) (fun i ->
      let testbed, n, model, entry = cells.(i) in
      let n = max n testbed.Suite.min_n in
      let params =
        let base = Heuristics.Params.with_model cfg.Config.params model in
        if spec.use_paper_b && is_ilha entry then
          Heuristics.Params.with_b base (Some testbed.Suite.paper_b)
        else base
      in
      rows.(i) <- Some (Runner.run cfg ~testbed ~n ~heuristic:entry ~params ()));
  List.filter_map Fun.id (Array.to_list rows)

let csv_header =
  "testbed,n,heuristic,model,b,makespan,speedup,comms,comm_time,wall_s,valid"

let to_csv rows =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf csv_header;
  Buffer.add_char buf '\n';
  List.iter
    (fun (r : Runner.row) ->
      Buffer.add_string buf
        (Printf.sprintf "%s,%d,%s,%s,%s,%.17g,%.6f,%d,%.17g,%.4f,%b\n"
           r.Runner.testbed r.Runner.n r.Runner.heuristic r.Runner.model
           (match r.Runner.b with Some b -> string_of_int b | None -> "")
           r.Runner.makespan r.Runner.speedup r.Runner.n_comms
           r.Runner.comm_time r.Runner.wall_s r.Runner.valid))
    rows;
  Buffer.contents buf

(* Inverse of [to_csv] for the core columns (survival/obs payloads are
   not serialised).  Field order mirrors the header; [%.17g] columns
   (makespan, comm_time) re-parse to the exact float. *)
let of_csv s =
  let parse_line lineno line =
    match String.split_on_char ',' line with
    | [ testbed; n; heuristic; model; b; makespan; speedup; comms; comm_time;
        wall_s; valid ] -> (
        try
          {
            Runner.testbed;
            n = int_of_string n;
            heuristic;
            model;
            b = (if b = "" then None else Some (int_of_string b));
            makespan = float_of_string makespan;
            speedup = float_of_string speedup;
            n_comms = int_of_string comms;
            comm_time = float_of_string comm_time;
            wall_s = float_of_string wall_s;
            valid = bool_of_string valid;
            survival = None;
            obs = None;
          }
        with _ ->
          invalid_arg
            (Printf.sprintf "Batch.of_csv: unparsable field on line %d: %s"
               lineno line))
    | _ ->
        invalid_arg
          (Printf.sprintf "Batch.of_csv: expected 11 fields on line %d: %s"
             lineno line)
  in
  match String.split_on_char '\n' s with
  | [] -> []
  | header :: lines ->
      if String.trim header <> csv_header then
        invalid_arg
          (Printf.sprintf "Batch.of_csv: unexpected header %S" header);
      List.filter (fun l -> String.trim l <> "") lines
      |> List.mapi (fun i l -> parse_line (i + 2) l)
