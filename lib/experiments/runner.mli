(** Running heuristics on testbeds and collecting the paper's measurements. *)

type row = {
  testbed : string;
  n : int;
  heuristic : string;
      (** registry name, with non-default parameters appended
          (e.g. ["ilha[b=4]"]) *)
  model : string;
  b : int option;  (** the run's [params.b] (chunk size, for ILHA) *)
  makespan : float;
  speedup : float;  (** fastest-processor sequential time / makespan *)
  n_comms : int;
  comm_time : float;
  wall_s : float;  (** CPU seconds spent scheduling *)
  valid : bool;  (** independent {!Sched.Validate} verdict *)
  obs : Obs.Report.t option;
      (** counter deltas and phase timings for this run; [Some] only
          while {!Obs.Counters} or {!Obs.Span} recording is enabled *)
}

(** [run_graph cfg ?params ~heuristic g] — schedule [g] under the
    configuration; [params] overrides [cfg.params] for this run. *)
val run_graph :
  Config.t ->
  ?params:Heuristics.Params.t ->
  heuristic:Heuristics.Registry.entry ->
  Taskgraph.Graph.t ->
  row

(** [run cfg ~testbed ~n ~heuristic ?params ()] builds the testbed at
    size [n] with the configuration's ccr and runs it. *)
val run :
  Config.t ->
  testbed:Testbeds.Suite.t ->
  n:int ->
  heuristic:Heuristics.Registry.entry ->
  ?params:Heuristics.Params.t ->
  unit ->
  row

(** Render rows as an aligned table (columns: testbed, n, heuristic, model,
    B, makespan, speedup, comms, valid). *)
val table : row list -> Prelude.Table.t
