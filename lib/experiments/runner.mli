(** Running heuristics on testbeds and collecting the paper's measurements. *)

(** Outcome of the optional crash-survival drill: after scheduling, crash
    one processor at a fraction of the nominal makespan, repair online
    ({!Heuristics.Repair}), validate the repaired schedule and re-execute
    it under the same crash in {!Simkit.Faulty_executor}. *)
type survival = {
  crash_proc : int;
  crash_time : float;  (** absolute crash instant ([frac * makespan]) *)
  remapped : int;  (** tasks moved onto survivors *)
  repaired_makespan : float;
  overhead : float;  (** (repaired - nominal) / nominal *)
  repaired_valid : bool;  (** {!Sched.Validate} verdict on the repair *)
  completed : bool;  (** repaired schedule executes to completion *)
}

type row = {
  testbed : string;
  n : int;
  heuristic : string;
      (** registry name, with non-default parameters appended
          (e.g. ["ilha[b=4]"]) *)
  model : string;
  b : int option;  (** the run's [params.b] (chunk size, for ILHA) *)
  makespan : float;
  speedup : float;  (** fastest-processor sequential time / makespan *)
  n_comms : int;
  comm_time : float;
  wall_s : float;  (** CPU seconds spent scheduling *)
  valid : bool;  (** independent {!Sched.Validate} verdict *)
  survival : survival option;
      (** [Some] only when the run was asked to drill a crash *)
  obs : Obs.Report.t option;
      (** counter deltas and phase timings for this run; [Some] only
          while {!Obs.Counters} or {!Obs.Span} recording is enabled *)
}

(** [run_graph cfg ?params ?crash ~heuristic g] — schedule [g] under the
    configuration; [params] overrides [cfg.params] for this run.
    [crash = (proc, frac)] additionally drills a crash of [proc] at
    [frac] of the nominal makespan and fills [survival]. *)
val run_graph :
  Config.t ->
  ?params:Heuristics.Params.t ->
  ?crash:int * float ->
  heuristic:Heuristics.Registry.entry ->
  Taskgraph.Graph.t ->
  row

(** [run cfg ~testbed ~n ~heuristic ?params ?crash ()] builds the testbed
    at size [n] with the configuration's ccr and runs it. *)
val run :
  Config.t ->
  testbed:Testbeds.Suite.t ->
  n:int ->
  heuristic:Heuristics.Registry.entry ->
  ?params:Heuristics.Params.t ->
  ?crash:int * float ->
  unit ->
  row

(** Render rows as an aligned table (columns: testbed, n, heuristic, model,
    B, makespan, speedup, comms, valid — plus survives/overhead when any
    row carries a {!survival}). *)
val table : row list -> Prelude.Table.t
