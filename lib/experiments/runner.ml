module Registry = Heuristics.Registry
module Params = Heuristics.Params
module Schedule = Sched.Schedule

type survival = {
  crash_proc : int;
  crash_time : float;
  remapped : int;
  repaired_makespan : float;
  overhead : float;
  repaired_valid : bool;
  completed : bool;
}

type row = {
  testbed : string;
  n : int;
  heuristic : string;
  model : string;
  b : int option;
  makespan : float;
  speedup : float;
  n_comms : int;
  comm_time : float;
  wall_s : float;
  valid : bool;
  survival : survival option;
  obs : Obs.Report.t option;
}

(* The non-default parameters, model excluded (it has its own column). *)
let params_label params =
  Params.to_string (Params.with_model params Params.default.Params.model)

(* Crash-survival drill: repair after a fail-stop crash, validate the
   repaired schedule independently, and re-execute it under the same
   crash to confirm it runs to completion. *)
let survive ~params ~crash sched =
  let crash_proc, frac = crash in
  let nominal = Schedule.makespan sched in
  let at = frac *. nominal in
  let r = Heuristics.Repair.crash ~params ~proc:crash_proc ~at sched in
  let repaired = r.Heuristics.Repair.schedule in
  let completed =
    match
      Simkit.Faulty_executor.run
        ~faults:[ Simkit.Fault.crash ~proc:crash_proc ~at ]
        repaired
    with
    | Simkit.Faulty_executor.Completed _ -> true
    | Simkit.Faulty_executor.Stranded _ -> false
  in
  {
    crash_proc;
    crash_time = at;
    remapped = List.length r.Heuristics.Repair.remapped;
    repaired_makespan = r.Heuristics.Repair.repaired_makespan;
    overhead =
      (if nominal > 0. then
         (r.Heuristics.Repair.repaired_makespan -. nominal) /. nominal
       else 0.);
    repaired_valid = Sched.Validate.is_valid repaired;
    completed;
  }

let run_graph (cfg : Config.t) ?params ?crash ~heuristic g =
  let params =
    match params with Some p -> p | None -> cfg.Config.params
  in
  let t0 = Sys.time () in
  let sched, report =
    Obs.Report.capture (fun () ->
        heuristic.Registry.scheduler params cfg.Config.platform g)
  in
  let wall_s = Sys.time () -. t0 in
  let metrics = Sched.Metrics.compute sched in
  let name =
    match params_label params with
    | "" -> heuristic.Registry.name
    | l -> Printf.sprintf "%s[%s]" heuristic.Registry.name l
  in
  {
    testbed = Taskgraph.Graph.name g;
    n = Taskgraph.Graph.n_tasks g;
    heuristic = name;
    model = Commmodel.Comm_model.name params.Params.model;
    b = params.Params.b;
    makespan = metrics.Sched.Metrics.makespan;
    speedup = metrics.Sched.Metrics.speedup;
    n_comms = metrics.Sched.Metrics.n_comm_events;
    comm_time = metrics.Sched.Metrics.total_comm_time;
    wall_s;
    valid = Sched.Validate.is_valid sched;
    survival = Option.map (fun crash -> survive ~params ~crash sched) crash;
    obs =
      (if Obs.Counters.enabled () || Obs.Span.enabled () then Some report
       else None);
  }

let run cfg ~testbed ~n ~heuristic ?params ?crash () =
  let g = testbed.Testbeds.Suite.build ~n ~ccr:cfg.Config.ccr in
  let row = run_graph cfg ?params ?crash ~heuristic g in
  { row with testbed = testbed.Testbeds.Suite.name; n }

let table rows =
  let with_survival = List.exists (fun r -> r.survival <> None) rows in
  let columns =
    [ "testbed"; "n"; "heuristic"; "model"; "B"; "makespan"; "speedup";
      "comms"; "valid" ]
    @ if with_survival then [ "survives"; "overhead" ] else []
  in
  let t = Prelude.Table.create ~columns in
  List.iter
    (fun r ->
      Prelude.Table.add_row t
        ([
           r.testbed;
           string_of_int r.n;
           r.heuristic;
           r.model;
           (match r.b with Some b -> string_of_int b | None -> "-");
           Printf.sprintf "%.0f" r.makespan;
           Printf.sprintf "%.3f" r.speedup;
           string_of_int r.n_comms;
           (if r.valid then "yes" else "NO");
         ]
        @
        if not with_survival then []
        else
          match r.survival with
          | None -> [ "-"; "-" ]
          | Some s ->
              [
                (if s.repaired_valid && s.completed then "yes" else "NO");
                Printf.sprintf "+%.1f%%" (100. *. s.overhead);
              ]))
    rows;
  t
