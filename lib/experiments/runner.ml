module Registry = Heuristics.Registry
module Params = Heuristics.Params
module Schedule = Sched.Schedule

type row = {
  testbed : string;
  n : int;
  heuristic : string;
  model : string;
  b : int option;
  makespan : float;
  speedup : float;
  n_comms : int;
  comm_time : float;
  wall_s : float;
  valid : bool;
  obs : Obs.Report.t option;
}

(* The non-default parameters, model excluded (it has its own column). *)
let params_label params =
  Params.to_string (Params.with_model params Params.default.Params.model)

let run_graph (cfg : Config.t) ?params ~heuristic g =
  let params =
    match params with Some p -> p | None -> cfg.Config.params
  in
  let t0 = Sys.time () in
  let sched, report =
    Obs.Report.capture (fun () ->
        heuristic.Registry.scheduler params cfg.Config.platform g)
  in
  let wall_s = Sys.time () -. t0 in
  let metrics = Sched.Metrics.compute sched in
  let name =
    match params_label params with
    | "" -> heuristic.Registry.name
    | l -> Printf.sprintf "%s[%s]" heuristic.Registry.name l
  in
  {
    testbed = Taskgraph.Graph.name g;
    n = Taskgraph.Graph.n_tasks g;
    heuristic = name;
    model = Commmodel.Comm_model.name params.Params.model;
    b = params.Params.b;
    makespan = metrics.Sched.Metrics.makespan;
    speedup = metrics.Sched.Metrics.speedup;
    n_comms = metrics.Sched.Metrics.n_comm_events;
    comm_time = metrics.Sched.Metrics.total_comm_time;
    wall_s;
    valid = Sched.Validate.is_valid sched;
    obs =
      (if Obs.Counters.enabled () || Obs.Span.enabled () then Some report
       else None);
  }

let run cfg ~testbed ~n ~heuristic ?params () =
  let g = testbed.Testbeds.Suite.build ~n ~ccr:cfg.Config.ccr in
  let row = run_graph cfg ?params ~heuristic g in
  { row with testbed = testbed.Testbeds.Suite.name; n }

let table rows =
  let t =
    Prelude.Table.create
      ~columns:
        [ "testbed"; "n"; "heuristic"; "model"; "B"; "makespan"; "speedup";
          "comms"; "valid" ]
  in
  List.iter
    (fun r ->
      Prelude.Table.add_row t
        [
          r.testbed;
          string_of_int r.n;
          r.heuristic;
          r.model;
          (match r.b with Some b -> string_of_int b | None -> "-");
          Printf.sprintf "%.0f" r.makespan;
          Printf.sprintf "%.3f" r.speedup;
          string_of_int r.n_comms;
          (if r.valid then "yes" else "NO");
        ])
    rows;
  t
