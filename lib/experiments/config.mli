(** Experiment configuration.

    [paper ()] is §5.2's setting: the 10-processor platform (5×t=6, 3×t=10,
    2×t=15, unit links), communication-to-computation ratio [c = 10], and
    problem sizes 100–500, with {!Heuristics.Params.default} scheduler
    parameters (bi-directional one-port, insertion-based slot search).
    [scale] shrinks the sizes proportionally for quick runs (e.g.
    [~scale:0.2] turns 100–500 into 20–100). *)

type t = {
  platform : Platform.t;
  params : Heuristics.Params.t;
      (** scheduler parameters every run uses unless overridden per call *)
  ccr : float;
  sizes : int list;
  seed : int;  (** randomised experiments derive their RNG from this *)
}

val paper : ?scale:float -> unit -> t

(** The configuration's communication model ([t.params.model]). *)
val model : t -> Commmodel.Comm_model.t

(** Field updates; [with_model] rewrites [params.model]. *)
val with_params : t -> Heuristics.Params.t -> t

val with_model : t -> Commmodel.Comm_model.t -> t
val with_sizes : t -> int list -> t
