(** Batch grids: run (heuristic × testbed × size) sweeps and collect rows
    for CSV export — the bulk-data companion to the curated {!Figures}
    (plotting scripts consume the CSV; the figures print curated views). *)

type spec = {
  heuristics : Heuristics.Registry.entry list;
  testbeds : Testbeds.Suite.t list;
  sizes : int list;
  models : Commmodel.Comm_model.t list;
      (** communication-model rungs to sweep (default: the config's
          model, so the grid shape matches the historical sweep) *)
  use_paper_b : bool;
      (** give ILHA each testbed's §5.3 chunk size (default true) *)
}

(** Everything at the configuration's sizes, under the configuration's
    communication model. *)
val default_spec : Config.t -> spec

(** [run ?jobs cfg spec] — rows in deterministic order (testbed-major,
    then size, then model, then heuristic).  [jobs > 1] shards the grid cells over a
    {!Prelude.Pool} of that many domains; rows land in pre-sized
    cell-indexed slots, so the result — order included — is identical
    to the serial ([jobs = 1], the default) sweep. *)
val run : ?jobs:int -> Config.t -> spec -> Runner.row list

(** CSV with a header row; columns match {!Runner.row}. *)
val to_csv : Runner.row list -> string

(** The header line [to_csv] emits (no trailing newline); the field
    order is part of the format and pinned by the round-trip test. *)
val csv_header : string

(** [of_csv s] parses [to_csv] output back into rows.  The [survival]
    and [obs] payloads are not serialised and come back as [None];
    [makespan]/[comm_time] ([%.17g]) re-parse exactly, [speedup]/
    [wall_s] at their printed precision.
    @raise Invalid_argument on a malformed header or line. *)
val of_csv : string -> Runner.row list
