type t = {
  platform : Platform.t;
  params : Heuristics.Params.t;
  ccr : float;
  sizes : int list;
  seed : int;
}

let paper ?(scale = 1.) () =
  let size s = max 2 (int_of_float (Float.round (scale *. float_of_int s))) in
  {
    platform = Platform.paper_platform ();
    params = Heuristics.Params.default;
    ccr = 10.;
    sizes = List.map size [ 100; 200; 300; 400; 500 ];
    seed = 42;
  }

let model t = t.params.Heuristics.Params.model
let with_params t params = { t with params }

let with_model t model =
  { t with params = Heuristics.Params.with_model t.params model }

let with_sizes t sizes = { t with sizes }
