open Prelude
module Registry = Heuristics.Registry
module Params = Heuristics.Params
module Suite = Testbeds.Suite
module Schedule = Sched.Schedule
module Comm_model = Commmodel.Comm_model

type t = {
  id : string;
  title : string;
  paper_claim : string;
  render : Config.t -> string;
}

let heft = Registry.find "heft"

let section title body =
  Printf.sprintf "%s\n%s\n%s" title (String.make (String.length title) '=') body

(* ------------------------------------------------------------------ *)
(* E1: the serialization example of §2.3 (Figure 1)                     *)
(* ------------------------------------------------------------------ *)

let e1_render (cfg : Config.t) =
  let g = Testbeds.Fork.example_fig1 () in
  let plat = Platform.homogeneous ~p:5 ~link_cost:1. in
  let heft_makespan model =
    Schedule.makespan
      (Heuristics.Heft.schedule ~params:(Params.with_model cfg.params model)
         plat g)
  in
  (* The paper's "same allocation" argument: keep the macro-dataflow
     mapping (v0, v1, v2 on P0; one remaining child per processor) under
     the one-port model. *)
  let same_alloc_makespan =
    let sched =
      Schedule.create ~graph:g ~platform:plat ~model:Comm_model.one_port ()
    in
    let engine =
      Heuristics.Engine.create ~policy:cfg.params.Params.policy sched
    in
    List.iteri
      (fun i (task, proc) ->
        ignore i;
        Heuristics.Engine.schedule_on engine ~task ~proc)
      [ (0, 0); (1, 0); (2, 0); (3, 1); (4, 2); (5, 3); (6, 4) ];
    Schedule.makespan sched
  in
  let optimal_one_port =
    match Heuristics.Fork_exact.of_graph g with
    | Some inst -> Heuristics.Fork_exact.optimal_makespan ~max_procs:5 inst
    | None -> nan
  in
  let table =
    Table.create ~columns:[ "scenario"; "makespan"; "paper" ]
  in
  Table.add_row table
    [ "macro-dataflow, HEFT"; Printf.sprintf "%g" (heft_makespan Comm_model.macro_dataflow); "3" ];
  Table.add_row table
    [ "one-port, macro-dataflow allocation"; Printf.sprintf "%g" same_alloc_makespan; ">= 6" ];
  Table.add_row table
    [ "one-port, HEFT"; Printf.sprintf "%g" (heft_makespan (Config.model cfg)); "-" ];
  Table.add_row table
    [ "one-port, exact optimum"; Printf.sprintf "%g" optimal_one_port; "5" ];
  Table.to_string table

(* ------------------------------------------------------------------ *)
(* E2: the toy example of §4.4 (Figures 3-4)                            *)
(* ------------------------------------------------------------------ *)

let e2_render (cfg : Config.t) =
  let g = Testbeds.Toy.graph () in
  let plat = Platform.homogeneous ~p:2 ~link_cost:1. in
  let model = Comm_model.one_port in
  let run name sched buf =
    let m = Sched.Metrics.compute sched in
    Buffer.add_string buf
      (Printf.sprintf "%s: makespan %g, %d communications\n%s\n" name
         m.Sched.Metrics.makespan m.Sched.Metrics.n_comm_events
         (Sched.Gantt.render ~width:60 sched))
  in
  let buf = Buffer.create 1024 in
  let base = Params.with_model cfg.params model in
  run "HEFT" (Heuristics.Heft.schedule ~params:base plat g) buf;
  run "ILHA (B=8)"
    (Heuristics.Ilha.schedule ~params:(Params.with_b base (Some 8)) plat g)
    buf;
  Buffer.add_string buf
    "paper (Fig. 4): ILHA ends earlier than HEFT and sends 2 messages \
     instead of 4\n";
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* E3: the speedup bound of §5.2                                        *)
(* ------------------------------------------------------------------ *)

let e3_render (cfg : Config.t) =
  let plat = cfg.platform in
  let chunk = Heuristics.Load_balance.perfect_chunk plat in
  let counts = Heuristics.Load_balance.distribute plat ~n:chunk in
  let table = Table.create ~columns:[ "quantity"; "measured"; "paper" ] in
  Table.add_row table
    [ "perfect-balance chunk M"; string_of_int chunk; "38" ];
  Table.add_row table
    [
      "distribution of 38 tasks";
      String.concat "," (Array.to_list (Array.map string_of_int counts));
      "5,5,5,5,5,3,3,3,2,2";
    ];
  Table.add_row table
    [
      "round time of that distribution";
      Printf.sprintf "%g" (Heuristics.Load_balance.round_time plat counts);
      "30";
    ];
  Table.add_row table
    [
      "speedup bound";
      Printf.sprintf "%.2f" (Platform.speedup_bound plat);
      "7.60 (= 228/30)";
    ];
  Table.to_string table

(* ------------------------------------------------------------------ *)
(* Figures 7-12: HEFT vs ILHA on the six testbeds                       *)
(* ------------------------------------------------------------------ *)

let series_render (cfg : Config.t) ~testbed =
  let suite = Suite.find testbed in
  let b = suite.Suite.paper_b in
  let table =
    Table.create
      ~columns:
        [ "n"; "tasks"; "HEFT speedup"; "ILHA speedup"; "gain %";
          "HEFT comms"; "ILHA comms" ]
  in
  let heft_curve = ref [] and ilha_curve = ref [] in
  List.iter
    (fun n ->
      let n = max n suite.Suite.min_n in
      let h = Runner.run cfg ~testbed:suite ~n ~heuristic:heft () in
      let i =
        Runner.run cfg ~testbed:suite ~n ~heuristic:(Registry.find "ilha")
          ~params:(Params.with_b cfg.params (Some b))
          ()
      in
      heft_curve := (float_of_int n, h.Runner.speedup) :: !heft_curve;
      ilha_curve := (float_of_int n, i.Runner.speedup) :: !ilha_curve;
      Table.add_row table
        [
          string_of_int n;
          string_of_int
            (Taskgraph.Graph.n_tasks
               (suite.Suite.build ~n ~ccr:cfg.Config.ccr));
          Printf.sprintf "%.3f" h.Runner.speedup;
          Printf.sprintf "%.3f" i.Runner.speedup;
          Printf.sprintf "%+.1f"
            (100. *. ((i.Runner.speedup /. h.Runner.speedup) -. 1.));
          string_of_int h.Runner.n_comms;
          string_of_int i.Runner.n_comms;
        ])
    cfg.sizes;
  let chart =
    if List.length !heft_curve >= 2 then
      Plot.render ~y_from_zero:false ~x_label:"problem size n"
        ~y_label:"speedup"
        [ ("Heft", List.rev !heft_curve); ("Ilha", List.rev !ilha_curve) ]
    else ""
  in
  Printf.sprintf "testbed %s, B = %d, c = %g, model = %s\n%s\n%s" testbed b
    cfg.ccr
    (Comm_model.name (Config.model cfg))
    (Table.to_string table)
    chart

(* ------------------------------------------------------------------ *)
(* Ablations                                                            *)
(* ------------------------------------------------------------------ *)

let smallest_size (cfg : Config.t) suite =
  max (List.fold_left min max_int cfg.sizes) suite.Suite.min_n

let sweep_b_render (cfg : Config.t) =
  let bs = [ 1; 2; 4; 8; 10; 20; 38; 76 ] in
  let table =
    Table.create
      ~columns:("testbed" :: "n" :: List.map (fun b -> Printf.sprintf "B=%d" b) bs)
  in
  List.iter
    (fun suite ->
      let n = smallest_size cfg suite in
      let cells =
        List.map
          (fun b ->
            let r =
              Runner.run cfg ~testbed:suite ~n ~heuristic:(Registry.find "ilha")
                ~params:(Params.with_b cfg.params (Some b))
                ()
            in
            Printf.sprintf "%.3f" r.Runner.speedup)
          bs
      in
      Table.add_row table (suite.Suite.name :: string_of_int n :: cells))
    Suite.all;
  "ILHA speedup as a function of the chunk size B\n" ^ Table.to_string table

let models_render (cfg : Config.t) =
  let suite = Suite.find "lu" in
  let n = smallest_size cfg suite in
  let table =
    Table.create ~columns:[ "model"; "heuristic"; "makespan"; "speedup"; "comms" ]
  in
  List.iter
    (fun model ->
      List.iter
        (fun (entry, b) ->
          let params =
            Params.with_b (Params.with_model cfg.params model) b
          in
          let r =
            Runner.run cfg ~testbed:suite ~n ~heuristic:entry ~params ()
          in
          Table.add_row table
            [
              Comm_model.name model;
              r.Runner.heuristic;
              Printf.sprintf "%.0f" r.Runner.makespan;
              Printf.sprintf "%.3f" r.Runner.speedup;
              string_of_int r.Runner.n_comms;
            ])
        [ (heft, None); (Registry.find "ilha", Some suite.Suite.paper_b) ])
    Comm_model.all;
  Printf.sprintf "communication-model ablation (LU, n = %d)\n%s" n
    (Table.to_string table)

let insertion_render (cfg : Config.t) =
  let table =
    Table.create
      ~columns:[ "testbed"; "n"; "insertion speedup"; "append speedup" ]
  in
  List.iter
    (fun suite ->
      let n = smallest_size cfg suite in
      let run policy =
        Runner.run cfg ~testbed:suite ~n ~heuristic:heft
          ~params:(Params.with_policy cfg.Config.params policy)
          ()
      in
      let ins = run Heuristics.Engine.Insertion in
      let app = run Heuristics.Engine.Append in
      Table.add_row table
        [
          suite.Suite.name;
          string_of_int n;
          Printf.sprintf "%.3f" ins.Runner.speedup;
          Printf.sprintf "%.3f" app.Runner.speedup;
        ])
    Suite.all;
  "HEFT slot policy ablation (one-port model)\n" ^ Table.to_string table

let tournament_render (cfg : Config.t) =
  let table =
    Table.create
      ~columns:("heuristic" :: List.map (fun s -> s.Suite.name) Suite.all)
  in
  List.iter
    (fun entry ->
      let cells =
        List.map
          (fun suite ->
            let n = min 50 (smallest_size cfg suite) in
            let n = max n suite.Suite.min_n in
            if (not entry.Registry.scalable) && n > 60 then "skip"
            else begin
              let r = Runner.run cfg ~testbed:suite ~n ~heuristic:entry () in
              Printf.sprintf "%.3f" r.Runner.speedup
            end)
          Suite.all
      in
      Table.add_row table (entry.Registry.name :: cells))
    Registry.all;
  "speedups of all heuristics, one-port model (sizes capped at 50)\n"
  ^ Table.to_string table

let robustness_render (cfg : Config.t) =
  (* DOOLITTLE is where HEFT and ILHA pick visibly different schedules, so
     the degradation comparison is informative. *)
  let suite = Suite.find "doolittle" in
  let n = smallest_size cfg suite in
  let g = suite.Suite.build ~n ~ccr:cfg.ccr in
  let table =
    Table.create
      ~columns:[ "heuristic"; "jitter"; "nominal"; "mean"; "p95"; "worst" ]
  in
  List.iter
    (fun (entry, params) ->
      let sched = entry.Registry.scheduler params cfg.platform g in
      List.iter
        (fun jitter ->
          let rng = Rng.create ~seed:cfg.seed in
          let s = Simkit.Robustness.monte_carlo sched rng ~jitter ~trials:50 in
          Table.add_row table
            [
              entry.Registry.name;
              Printf.sprintf "%.0f%%" (100. *. jitter);
              Printf.sprintf "%.0f" s.Simkit.Robustness.nominal;
              Printf.sprintf "%.0f" s.Simkit.Robustness.mean;
              Printf.sprintf "%.0f" s.Simkit.Robustness.p95;
              Printf.sprintf "%.0f" s.Simkit.Robustness.worst;
            ])
        [ 0.1; 0.3; 0.5 ])
    [
      (heft, cfg.params);
      ( Registry.find "ilha",
        Params.with_b cfg.params (Some suite.Suite.paper_b) );
    ];
  Printf.sprintf
    "schedule robustness under execution-time jitter (DOOLITTLE, n = %d)\n%s"
    n (Table.to_string table)

let ranking_render (cfg : Config.t) =
  (* §4.1 derives a specific averaging rule for ranks; measure it against
     the classic arithmetic mean and an optimistic fastest-processor
     pricing, with mapping decisions held identical (min EFT). *)
  let table =
    Table.create
      ~columns:[ "testbed"; "n"; "balanced (par.4.1)"; "arithmetic"; "optimistic" ]
  in
  List.iter
    (fun suite ->
      let n = max suite.Suite.min_n (min 60 (smallest_size cfg suite)) in
      let g = suite.Suite.build ~n ~ccr:cfg.ccr in
      let speedup averaging =
        let sched =
          Heuristics.Heft.schedule
            ~params:(Params.with_averaging cfg.params averaging)
            cfg.platform g
        in
        (Sched.Metrics.compute sched).Sched.Metrics.speedup
      in
      Table.add_row table
        [
          suite.Suite.name;
          string_of_int n;
          Printf.sprintf "%.3f" (speedup Heuristics.Ranking.Balanced);
          Printf.sprintf "%.3f" (speedup Heuristics.Ranking.Arithmetic);
          Printf.sprintf "%.3f" (speedup Heuristics.Ranking.Optimistic);
        ])
    Suite.all;
  "HEFT speedup under different rank-averaging rules (par.4.1)\n"
  ^ Table.to_string table

let contention_render (cfg : Config.t) =
  (* §2.2 vs §2.3 made measurable: on sparse routed topologies, link
     contention (Sinnen-Sousa) and port contention (one-port) both bite;
     on the paper's fully-connected platform only ports do. *)
  (* cheap communication (c = 1) so placements spread across the machine
     and routes actually share links *)
  let suite = Suite.find "laplace" in
  let n = smallest_size cfg suite in
  let g = suite.Suite.build ~n ~ccr:1. in
  let platforms =
    [
      ("fully-connected-8", Platform.homogeneous ~p:8 ~link_cost:1.);
      ("star-8", Platform.star ~cycle_times:(Array.make 8 1.) ~spoke_cost:1. ());
      ("ring-8", Platform.ring ~cycle_times:(Array.make 8 1.) ~link_cost:1. ());
      ( "grid-2x4",
        Platform.grid2d ~rows:2 ~cols:4 ~cycle_time:1. ~link_cost:1. () );
    ]
  in
  let models =
    [
      Comm_model.macro_dataflow;
      Comm_model.link_contention;
      Comm_model.one_port;
      Comm_model.with_link_contention Comm_model.one_port;
    ]
  in
  let table =
    Table.create
      ~columns:("platform" :: List.map Comm_model.name models)
  in
  List.iter
    (fun (name, plat) ->
      let cells =
        List.map
          (fun model ->
            let sched =
              Heuristics.Heft.schedule
                ~params:(Params.with_model cfg.params model)
                plat g
            in
            Printf.sprintf "%.0f" (Schedule.makespan sched))
          models
      in
      Table.add_row table (name :: cells))
    platforms;
  Printf.sprintf
    "HEFT makespans for %s (n = %d, c = 1) across topologies and contention \
     models\n%s"
    suite.Suite.name n (Table.to_string table)

let random_render (cfg : Config.t) =
  (* §6 asks for "more extensive experimental validation": speedups over
     random layered DAGs rather than the six structured kernels. *)
  let rng = Rng.create ~seed:cfg.seed in
  let trials = 12 in
  let graphs =
    List.init trials (fun i ->
        let rng = Rng.split rng in
        ignore i;
        let g =
          Taskgraph.Generators.layered rng ~layers:12 ~width:12 ~edge_prob:0.35
            ~max_weight:9 ~max_data:0
        in
        (* apply the paper's ccr rule to the random weights *)
        Taskgraph.Graph.with_data g ~f:(fun e ->
            cfg.ccr *. Taskgraph.Graph.weight g e.Taskgraph.Graph.src))
  in
  let entries =
    [ heft; Registry.find "ilha"; Registry.find "cpop"; Registry.find "bil";
      Registry.find "pct" ]
  in
  let table =
    Table.create ~columns:[ "heuristic"; "mean speedup"; "stdev"; "best"; "worst"; "wins" ]
  in
  let speedups =
    List.map
      (fun entry ->
        ( entry.Registry.name,
          List.map
            (fun g -> (Runner.run_graph cfg ~heuristic:entry g).Runner.speedup)
            graphs ))
      entries
  in
  let wins name =
    (* count graphs where this heuristic achieves the maximum speedup *)
    List.length
      (List.filteri
         (fun i _ ->
           let mine = List.nth (List.assoc name speedups) i in
           List.for_all (fun (_, l) -> List.nth l i <= mine +. 1e-9) speedups)
         graphs)
  in
  List.iter
    (fun (name, l) ->
      Table.add_row table
        [
          name;
          Printf.sprintf "%.3f" (Stats.mean l);
          Printf.sprintf "%.3f" (Stats.stdev l);
          Printf.sprintf "%.3f" (Stats.maximum l);
          Printf.sprintf "%.3f" (Stats.minimum l);
          string_of_int (wins name);
        ])
    speedups;
  Printf.sprintf
    "speedups over %d random layered DAGs (12 levels x <=12 tasks, c = %g, \
     one-port, paper platform)\n%s"
    trials cfg.ccr (Table.to_string table)

let refine_render (cfg : Config.t) =
  let table =
    Table.create
      ~columns:
        [ "testbed"; "n"; "heuristic"; "makespan"; "hill-climbed"; "annealed";
          "best gain %" ]
  in
  List.iter
    (fun suite ->
      (* improvers rebuild the whole schedule per move, so cap the size
         regardless of the configured scale *)
      let n = max suite.Suite.min_n (min 30 (smallest_size cfg suite)) in
      let g = suite.Suite.build ~n ~ccr:cfg.ccr in
      List.iter
        (fun (entry, params) ->
          let sched = entry.Registry.scheduler params cfg.platform g in
          let hill = Heuristics.Refine.improve ~max_rounds:2 ~max_moves:10 sched in
          let annealed =
            Heuristics.Anneal.improve
              ~params:
                { Heuristics.Anneal.default_params with
                  Heuristics.Anneal.steps = 150; seed = cfg.seed }
              sched
          in
          let initial = hill.Heuristics.Refine.initial_makespan in
          let best =
            min hill.Heuristics.Refine.final_makespan
              annealed.Heuristics.Anneal.final_makespan
          in
          Table.add_row table
            [
              suite.Suite.name;
              string_of_int n;
              entry.Registry.name;
              Printf.sprintf "%.0f" initial;
              Printf.sprintf "%.0f" hill.Heuristics.Refine.final_makespan;
              Printf.sprintf "%.0f" annealed.Heuristics.Anneal.final_makespan;
              Printf.sprintf "%+.1f" (100. *. (1. -. (best /. initial)));
            ])
        [
          (heft, cfg.params);
          ( Registry.find "ilha",
            Params.with_b cfg.params (Some suite.Suite.paper_b) );
        ])
    Suite.all;
  "allocation improvers on top of each heuristic (§6's improvement \
   direction): hill climbing vs simulated annealing\n"
  ^ Table.to_string table

let reductions_render (cfg : Config.t) =
  let rng = Rng.create ~seed:cfg.seed in
  let trials = 30 in
  let fork_agree = ref 0 and fork_constructive = ref 0 and fork_yes = ref 0 in
  let comm_agree = ref 0 and comm_constructive = ref 0 and comm_yes = ref 0 in
  for _ = 1 to trials do
    let inst =
      Complexity.Two_partition.random rng ~n:(2 * Rng.int_in rng 1 2)
        ~max_item:9
    in
    (* Theorem 1: FORK-SCHED.  The exact equivalence is with the SHIFTED
       items M + a_i + 1 (see Fork_sched); a balanced solution of the
       original instance is one sufficient certificate. *)
    let red = Complexity.Fork_sched.reduce inst in
    let balanced = Complexity.Two_partition.solve_balanced inst in
    let decided = Complexity.Fork_sched.decide red in
    if
      decided
      = Complexity.Two_partition.is_solvable
          (Complexity.Fork_sched.shifted_instance red)
    then incr fork_agree;
    if decided then incr fork_yes;
    (match balanced with
    | Some a1 ->
        let sched = Complexity.Fork_sched.schedule_of_partition red ~a1 in
        if
          Sched.Validate.is_valid sched
          && Schedule.makespan sched <= red.Complexity.Fork_sched.time_bound +. 1e-6
        then incr fork_constructive
    | None -> ());
    (* Theorem 2: COMM-SCHED *)
    let red2 = Complexity.Comm_sched.reduce inst in
    let solution = Complexity.Two_partition.solve inst in
    let decided2 = Complexity.Comm_sched.decide red2 in
    if decided2 = (solution <> None) then incr comm_agree;
    if decided2 then incr comm_yes;
    match solution with
    | Some a1 ->
        let sched = Complexity.Comm_sched.schedule_of_partition red2 ~a1 in
        if
          Sched.Validate.is_valid sched
          && Schedule.makespan sched <= red2.Complexity.Comm_sched.time_bound +. 1e-6
        then incr comm_constructive
    | None -> ()
  done;
  let table =
    Table.create
      ~columns:[ "reduction"; "instances"; "yes"; "decide agrees"; "constructions valid" ]
  in
  Table.add_row table
    [
      "Thm 1 (2-PART -> FORK-SCHED)";
      string_of_int trials;
      string_of_int !fork_yes;
      string_of_int !fork_agree;
      string_of_int !fork_constructive;
    ];
  Table.add_row table
    [
      "Thm 2 (2-PART -> COMM-SCHED)";
      string_of_int trials;
      string_of_int !comm_yes;
      string_of_int !comm_agree;
      string_of_int !comm_constructive;
    ];
  "NP-hardness reduction checks (decide via exact enumeration; Thm 1's \
   literal construction encodes 2-PARTITION of the SHIFTED items M+a_i+1 \
   — see EXPERIMENTS.md)\n"
  ^ Table.to_string table

(* ------------------------------------------------------------------ *)
(* Registry                                                             *)
(* ------------------------------------------------------------------ *)

let figure ~id ~title ~paper_claim render = { id; title; paper_claim; render }

let series_claims =
  [
    ("fig7", "fork-join", "HEFT = ILHA; speedup ~1.58, near the wt/c+1 = 1.6 bound");
    ("fig8", "lu", "ILHA ~5.0 vs HEFT ~4.5 at n=500; gap widens with n (B=4)");
    ("fig9", "laplace", "ILHA ~5.6; ~10% over HEFT (B=38)");
    ("fig10", "ldmt", "ILHA ~4.9; ~10% over HEFT (B=20)");
    ("fig11", "doolittle", "ILHA ~4.4; ~10% over HEFT (B=20)");
    ("fig12", "stencil", "speedup decreases with n; ILHA ~2.7 vs HEFT ~2.4 (B=38)");
  ]

let all =
  [
    figure ~id:"e1" ~title:"Serialization example (§2.3, Fig. 1)"
      ~paper_claim:"macro-dataflow 3; one-port with that allocation >= 6; optimum 5"
      e1_render;
    figure ~id:"e2" ~title:"Toy example (§4.4, Figs. 3-4)"
      ~paper_claim:"ILHA beats HEFT and cuts communications from 4 to 2"
      e2_render;
    figure ~id:"e3" ~title:"Load balance and speedup bound (§5.2)"
      ~paper_claim:"M = 38; 38 tasks in 30 time units; bound 228/30 = 7.6"
      e3_render;
  ]
  @ List.map
      (fun (id, testbed, claim) ->
        figure ~id
          ~title:(Printf.sprintf "HEFT vs ILHA on %s (%s)" testbed id)
          ~paper_claim:claim
          (fun cfg -> series_render cfg ~testbed))
      series_claims
  @ [
      figure ~id:"sweep-b" ~title:"Chunk-size sweep (§5.3)"
        ~paper_claim:"best B: LU 4, LAPLACE/STENCIL/FORK-JOIN 38, DOOLITTLE/LDMt 20"
        sweep_b_render;
      figure ~id:"models" ~title:"Communication-model ablation (§2.3 variants)"
        ~paper_claim:"one-port variants are harder than macro-dataflow"
        models_render;
      figure ~id:"insertion" ~title:"Slot-policy ablation (§4.3)"
        ~paper_claim:"insertion-based slots never hurt"
        insertion_render;
      figure ~id:"tournament" ~title:"All heuristics (§4.2 comparison set)"
        ~paper_claim:"HEFT and ILHA give the best results"
        tournament_render;
      figure ~id:"robustness" ~title:"Jitter robustness (extension)"
        ~paper_claim:"(not in paper; extension)"
        robustness_render;
      figure ~id:"refine" ~title:"Allocation local search (extension, §6)"
        ~paper_claim:"(not in paper; §6 notes room for improvement)"
        refine_render;
      figure ~id:"ranking" ~title:"Rank-averaging ablation (§4.1)"
        ~paper_claim:"ranks average execution at p/sum(1/t) and links harmonically"
        ranking_render;
      figure ~id:"contention" ~title:"Topology & contention (§2.2 vs §2.3)"
        ~paper_claim:"communication-aware models diverge once links are shared"
        contention_render;
      figure ~id:"random" ~title:"Random-DAG validation (extension, §6)"
        ~paper_claim:"(§6 calls for more extensive experimental validation)"
        random_render;
      figure ~id:"reductions" ~title:"NP-hardness reductions (§3, Appendix)"
        ~paper_claim:"schedule exists iff 2-PARTITION solvable (Thm 1's construction actually encodes the shifted items)"
        reductions_render;
    ]

let ids = List.map (fun f -> f.id) all

let find id =
  match List.find_opt (fun f -> f.id = id) all with
  | Some f -> f
  | None ->
      invalid_arg
        (Printf.sprintf "Figures.find: unknown experiment %S (known: %s)" id
           (String.concat ", " ids))

let render_all cfg =
  String.concat "\n"
    (List.map
       (fun f ->
         section
           (Printf.sprintf "[%s] %s" f.id f.title)
           (Printf.sprintf "paper: %s\n\n%s" f.paper_claim (f.render cfg)))
       all)
