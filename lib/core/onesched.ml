(** One-port task-graph scheduling with heterogeneous processors.

    Umbrella module re-exporting the public API of the whole library —
    the reproduction of Beaumont, Boudet & Robert, "A Realistic Model and
    an Efficient Heuristic for Scheduling with Heterogeneous Processors"
    (IPDPS 2002).  Typical use:

    {[
      let graph = Onesched.Kernels.lu ~n:100 ~ccr:10. in
      let platform = Onesched.Platform.paper_platform () in
      let params = Onesched.Params.make ~b:4 () in
      let sched = Onesched.Ilha.schedule ~params platform graph in
      Format.printf "%a@." Onesched.Metrics.pp (Onesched.Metrics.compute sched)
    ]}

    Layers (bottom to top):
    - application model: {!Graph}, {!Levels}, {!Analysis}, {!Generators},
      {!Dot};
    - target model: {!Platform}, {!Comm_model};
    - schedules: {!Schedule}, {!Resource}, {!Validate}, {!Gantt},
      {!Metrics}, {!Bounds}, {!Export};
    - heuristics: {!Params}, {!Ranking}, {!Load_balance}, {!Engine}, {!Heft},
      {!Heft_dup}, {!Ilha}, {!Cpop}, {!Pct}, {!Bil}, {!Gdl}, {!Etf}, {!Auto_b},
      {!Prefix_replay}, {!Refine}, {!Anneal}, {!Fork_exact}, {!Search},
      {!Registry};
    - testbeds: {!Kernels}, {!Fork}, {!Toy}, {!Suite};
    - complexity: {!Two_partition}, {!Fork_sched}, {!Comm_sched};
    - analysis/robustness: {!Pert}, {!Robustness}, {!Utilization},
      {!Executor}, {!Fault}, {!Faulty_executor}, {!Repair};
    - online scheduling: {!Online_event}, {!Online_driver};
    - service daemon: {!Scheduld}, {!Scheduld_proto}, {!Scheduld_client},
      {!Scheduld_wire};
    - experiments: {!Config}, {!Runner}, {!Figures};
    - observability: {!Obs_counters}, {!Obs_span}, {!Obs_report},
      {!Obs_trace}. *)

(* Application model *)
module Graph = Taskgraph.Graph
module Levels = Taskgraph.Levels
module Analysis = Taskgraph.Analysis
module Generators = Taskgraph.Generators
module Dot = Taskgraph.Dot
module Graph_io = Taskgraph.Io

(* Target model *)
module Platform = Platform
module Comm_model = Commmodel.Comm_model

(* Schedules *)
module Schedule = Sched.Schedule
module Resource = Sched.Resource
module Validate = Sched.Validate
module Gantt = Sched.Gantt
module Metrics = Sched.Metrics
module Bounds = Sched.Bounds
module Compare = Sched.Compare
module Export = Sched.Export
module Svg = Sched.Svg

(* Heuristics *)
module Params = Heuristics.Params
module Ranking = Heuristics.Ranking
module Load_balance = Heuristics.Load_balance
module Engine = Heuristics.Engine
module Heft = Heuristics.Heft
module Heft_dup = Heuristics.Heft_dup
module Ilha = Heuristics.Ilha
module Cpop = Heuristics.Cpop
module Pct = Heuristics.Pct
module Bil = Heuristics.Bil
module Gdl = Heuristics.Gdl
module Etf = Heuristics.Etf
module Auto_b = Heuristics.Auto_b
module Prefix_replay = Heuristics.Prefix_replay
module Refine = Heuristics.Refine
module Fork_exact = Heuristics.Fork_exact
module Anneal = Heuristics.Anneal
module Unrelated = Heuristics.Unrelated
module Search = Heuristics.Search
module Repair = Heuristics.Repair
module Registry = Heuristics.Registry

(* Testbeds *)
module Kernels = Testbeds.Kernels
module Fork = Testbeds.Fork
module Toy = Testbeds.Toy
module Suite = Testbeds.Suite

(* Complexity *)
module Two_partition = Complexity.Two_partition
module Fork_sched = Complexity.Fork_sched
module Comm_sched = Complexity.Comm_sched

(* Replay and robustness *)
module Pert = Simkit.Pert
module Robustness = Simkit.Robustness
module Utilization = Simkit.Utilization
module Executor = Simkit.Executor
module Fault = Simkit.Fault
module Faulty_executor = Simkit.Faulty_executor

(* Rolling-horizon online scheduling *)
module Online_event = Online.Event
module Online_driver = Online.Driver

(* Scheduler-as-a-service daemon *)
module Scheduld = Server.Scheduld
module Scheduld_proto = Server.Proto
module Scheduld_client = Server.Client
module Scheduld_wire = Server.Wire

(* Experiments *)
module Config = Experiments.Config
module Runner = Experiments.Runner
module Figures = Experiments.Figures
module Batch = Experiments.Batch
module Plot = Experiments.Plot

(* Observability *)
module Obs_counters = Obs.Counters
module Obs_span = Obs.Span
module Obs_report = Obs.Report
module Obs_trace = Obs.Trace_export

(* Supporting containers and parallelism *)
module Timeline = Prelude.Timeline
module Rng = Prelude.Rng
module Stats = Prelude.Stats
module Table = Prelude.Table
module Pool = Prelude.Pool
module Pqueue = Prelude.Pqueue
