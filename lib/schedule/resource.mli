(** Per-processor resource state under a communication model.

    Each processor owns a compute timeline plus port timelines whose
    meaning depends on the model's port discipline:

    - {e macro-dataflow}: ports are never busy — a message occupies no
      resource;
    - {e bi-directional one-port}: a send port and an independent receive
      port;
    - {e uni-directional one-port}: one physical port serves both
      directions.

    The [*_busy] functions return exactly the set of distinct timelines a
    message must find jointly free (and that a commit must mark busy), so
    heuristics and the schedule builder share one source of truth for the
    port rules — including the no-overlap variants, where the compute
    timeline joins the set.

    Every distinct timeline additionally carries a {e stable resource
    id}: a small integer, unique per physical timeline, fixed for the
    life of the resource set (and preserved by {!copy}).  Two timelines
    are physically equal iff their ids are equal — under the
    uni-directional discipline a processor's send and receive port share
    one id.  The scheduling engine keys its tentative-interval arena by
    these ids instead of scanning for physical equality. *)

type t

val create : model:Commmodel.Comm_model.t -> p:int -> t
val model : t -> Commmodel.Comm_model.t
val p : t -> int

(** The compute timeline of processor [i] (tasks, plus communications under
    no-overlap models). *)
val compute : t -> int -> Prelude.Timeline.t

(** Stable id of processor [i]'s compute timeline. *)
val compute_id : t -> int -> int

(** Exclusive upper bound on every id handed out so far; grows as
    link-contention timelines are lazily created, so an id-indexed cache
    sized to [id_bound] must be prepared to grow. *)
val id_bound : t -> int

(** Distinct timelines the {e sending} side of a message out of processor
    [i] occupies (possibly empty under macro-dataflow). *)
val send_busy : t -> int -> Prelude.Timeline.t list

(** Distinct timelines the {e receiving} side of a message into processor
    [i] occupies. *)
val recv_busy : t -> int -> Prelude.Timeline.t list

(** {!send_busy} / {!recv_busy} with each timeline paired with its stable
    resource id — the form the engine's caches store. *)
val send_busy_ids : t -> int -> (Prelude.Timeline.t * int) list

val recv_busy_ids : t -> int -> (Prelude.Timeline.t * int) list

(** The joint busy set of a BSP communication phase: the platform-wide
    barrier timeline plus {e every} processor's compute timeline — a
    phase excludes computation everywhere and phases never overlap.
    @raise Invalid_argument outside the BSP regime. *)
val phase_busy : t -> Prelude.Timeline.t list

(** {!phase_busy} with stable resource ids (barrier first). *)
val phase_busy_ids : t -> (Prelude.Timeline.t * int) list

(** [commit_phase t ~start ~finish] marks a BSP comm phase busy on
    {!phase_busy}; [retract_phase] is its exact inverse.
    @raise Invalid_argument outside the BSP regime, or (like
    {!commit_comm}) on an overlapping or absent interval. *)
val commit_phase : t -> start:float -> finish:float -> unit

val retract_phase : t -> start:float -> finish:float -> unit

(** [link t ~src ~dst] — the shared timeline of the {e undirected direct
    link} between [src] and [dst], lazily created; only meaningful (and
    only occupied) under link-contention models, where a link carries one
    message at a time regardless of direction. *)
val link : t -> src:int -> dst:int -> Prelude.Timeline.t

(** [comm_busy t ~src ~dst] is the union of {!send_busy} on [src] and
    {!recv_busy} on [dst] — plus the {!link} timeline under
    link-contention models — the joint busy set of a direct hop. *)
val comm_busy : t -> src:int -> dst:int -> Prelude.Timeline.t list

(** [comm_busy_ids t ~src ~dst] is {!comm_busy} with each timeline paired
    with its stable resource id — the form the engine's route cache
    stores.  Under link-contention models this (like {!comm_busy})
    lazily creates the link timeline, which may advance {!id_bound}. *)
val comm_busy_ids :
  t -> src:int -> dst:int -> (Prelude.Timeline.t * int) list

(** [commit_comm t ~src ~dst ~start ~finish] marks a hop's {e occupancy}
    busy, which depends on the model's regime: the whole span on
    [comm_busy] under the port regimes; nothing under BSP (the enclosing
    phase owns the resources); only the endpoint overhead sub-intervals
    — [\[start, start+o)] on the sender's ports, [\[finish-o, finish)] on
    the receiver's — under latency+overhead.
    @raise Invalid_argument if any timeline already overlaps (a scheduling
    bug — slots must come from gap search over the same busy set). *)
val commit_comm : t -> src:int -> dst:int -> start:float -> finish:float -> unit

(** [commit_task t ~proc ~start ~finish] marks the compute timeline busy. *)
val commit_task : t -> proc:int -> start:float -> finish:float -> unit

(** [retract_comm t ~src ~dst ~start ~finish] is the exact inverse of
    {!commit_comm}: the hop's interval is removed from every timeline of
    [comm_busy].
    @raise Invalid_argument if the interval is not present (retracting
    something that was never committed is a scheduling bug). *)
val retract_comm :
  t -> src:int -> dst:int -> start:float -> finish:float -> unit

(** [retract_task t ~proc ~start ~finish] is the exact inverse of
    {!commit_task}. *)
val retract_task : t -> proc:int -> start:float -> finish:float -> unit

(** A whole-resource-set checkpoint: one {!Prelude.Timeline.checkpoint}
    per distinct timeline.  O(p) to take, independent of how many
    intervals are committed. *)
type snapshot

val snapshot : t -> snapshot

(** [restore t s] rolls every timeline back to its state at [snapshot];
    the cost is proportional to the number of intervals committed since.
    Timeline ids (and lazily created link entries) are preserved, so
    id-keyed caches stay valid across a restore. *)
val restore : t -> snapshot -> unit

(** Deep copy (preserving the send/recv port sharing of uni-directional
    models); mutating the copy leaves the original untouched. *)
val copy : t -> t
