(** Independent schedule validity checking.

    Re-derives every constraint of §2.1 and §2.3 directly from the recorded
    events — never from the builder's internal timelines — so that a bug in
    the gap-search machinery cannot hide a bug in a heuristic:

    - every task placed exactly once, with the correct duration
      [w(v) * t_alloc(v)];
    - processor exclusivity: one task at a time per processor;
    - precedence: local edges wait for the source's finish; remote edges
      carry a complete chain of hop events following the platform route,
      each hop starting no earlier than the previous one ends, with the
      correct duration [data * hop_cost], and the destination task starts
      no earlier than the final arrival (zero-volume edges may omit
      events);
    - port discipline: under one-port models, the send (resp. receive)
      events of a processor are pairwise disjoint — bi-directional keeps
      the two directions independent, uni-directional pools them;
    - no-overlap variants: communication events are also disjoint from
      task executions on both endpoint processors. *)

(** [check s] is [Ok ()] or [Error messages] listing every violation found
    (human-readable, deterministic order).

    The checker streams: occupancy constraints bucket packed int event
    tags per resource and run one sorted sweep each, with labels
    formatted only for offending pairs, so validating a clean
    million-task schedule allocates O(events) ints and no strings. *)
val check : Schedule.t -> (unit, string list) result

(** @raise Failure with the first violations when invalid. *)
val check_exn : Schedule.t -> unit

val is_valid : Schedule.t -> bool

(** The original list-based checker — the executable specification the
    streaming sweep is property-tested against.  Same verdicts on every
    schedule; materializes per-resource labelled interval lists, so it
    stays off the large-instance paths. *)
module Reference : sig
  val check : Schedule.t -> (unit, string list) result
end
