module Graph = Taskgraph.Graph

let json_escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* Chrome trace "complete" event, appended straight to [buf]. *)
let add_complete_event buf ~name ~pid ~tid ~ts ~dur ~args =
  Buffer.add_string buf
    (Printf.sprintf
       {|{"name":"%s","ph":"X","ts":%g,"dur":%g,"pid":%d,"tid":%d,"args":{%s}}|}
       (json_escape name) ts dur pid tid args)

(* Thread ids inside a processor's trace group. *)
let tid_cpu = 0
let tid_send = 1
let tid_recv = 2

(* Body events are ordered by start time.  Rather than materializing
   (ts, line) pairs and sorting them, events are packed int tags —
   [v] for task v, [n + 2i] / [n + 2i + 1] for the send/recv views of
   comm [i] — and an index sort orders them before a single formatting
   pass into the output buffer.  Ties keep the historical order of the
   previous implementation (a stable sort over a prepend-built list):
   reverse emission order, i.e. descending tag. *)
let to_chrome_trace ?(time_unit = 1.0) s =
  let g = Schedule.graph s in
  let n = Graph.n_tasks g in
  let nc = Schedule.n_comms s in
  (* duplicate copies (if any) pack after the task and comm tags *)
  let dups =
    Array.of_list
      (List.concat_map
         (fun v ->
           List.map
             (fun (c : Schedule.placement) -> (v, c))
             (Schedule.dup_copies s v))
         (List.init n Fun.id))
  in
  let nd = Array.length dups in
  let total = n + (2 * nc) + nd in
  let ts_of tag =
    if tag < n then (Schedule.placement_exn s tag).Schedule.start
    else if tag < n + (2 * nc) then
      (Schedule.comm_at s ((tag - n) / 2)).Schedule.start
    else (snd dups.(tag - n - (2 * nc))).Schedule.start
  in
  let order = Array.init total Fun.id in
  Array.sort
    (fun a b ->
      match compare (ts_of a) (ts_of b) with
      | 0 -> Int.compare b a
      | c -> c)
    order;
  let p = Platform.p (Schedule.platform s) in
  let buf = Buffer.create (256 + (total * 96)) in
  Buffer.add_char buf '[';
  (* Thread name metadata makes the ports readable in the viewer. *)
  let first = ref true in
  let sep () =
    if !first then first := false else Buffer.add_string buf ",\n"
  in
  for q = 0 to p - 1 do
    List.iter
      (fun (tid, label) ->
        sep ();
        Buffer.add_string buf
          (Printf.sprintf
             {|{"name":"thread_name","ph":"M","pid":%d,"tid":%d,"args":{"name":"%s"}}|}
             q tid label))
      [ (tid_cpu, "cpu"); (tid_send, "send port"); (tid_recv, "recv port") ]
  done;
  Array.iter
    (fun tag ->
      sep ();
      if tag < n then begin
        let pl = Schedule.placement_exn s tag in
        add_complete_event buf
          ~name:(Printf.sprintf "v%d" tag)
          ~pid:pl.Schedule.proc ~tid:tid_cpu
          ~ts:(time_unit *. pl.Schedule.start)
          ~dur:(time_unit *. (pl.Schedule.finish -. pl.Schedule.start))
          ~args:
            (Printf.sprintf {|"task":%d,"weight":%g|} tag (Graph.weight g tag))
      end
      else if tag >= n + (2 * nc) then begin
        let v, pl = dups.(tag - n - (2 * nc)) in
        add_complete_event buf
          ~name:(Printf.sprintf "v%d'" v)
          ~pid:pl.Schedule.proc ~tid:tid_cpu
          ~ts:(time_unit *. pl.Schedule.start)
          ~dur:(time_unit *. (pl.Schedule.finish -. pl.Schedule.start))
          ~args:
            (Printf.sprintf {|"task":%d,"weight":%g,"copy":true|} v
               (Graph.weight g v))
      end
      else begin
        let c = Schedule.comm_at s ((tag - n) / 2) in
        let recv = (tag - n) land 1 = 1 in
        add_complete_event buf
          ~name:(Printf.sprintf "e%d:%d->%d" c.edge c.src_proc c.dst_proc)
          ~pid:(if recv then c.dst_proc else c.src_proc)
          ~tid:(if recv then tid_recv else tid_send)
          ~ts:(time_unit *. c.start)
          ~dur:(time_unit *. (c.finish -. c.start))
          ~args:
            (Printf.sprintf {|"edge":%d,"src":%d,"dst":%d|} c.edge c.src_proc
               c.dst_proc)
      end)
    order;
  Buffer.add_string buf "]\n";
  Buffer.contents buf

let to_csv s =
  let g = Schedule.graph s in
  let buf = Buffer.create (1024 + ((Graph.n_tasks g + Schedule.n_comms s) * 48)) in
  Buffer.add_string buf "kind,name,processor,resource,start,finish,duration\n";
  let row kind name proc resource start finish =
    Buffer.add_string buf
      (Printf.sprintf "%s,%s,%d,%s,%g,%g,%g\n" kind name proc resource start
         finish (finish -. start))
  in
  for v = 0 to Graph.n_tasks g - 1 do
    let pl = Schedule.placement_exn s v in
    row "task" (Printf.sprintf "v%d" v) pl.Schedule.proc "cpu" pl.Schedule.start
      pl.Schedule.finish;
    List.iter
      (fun (c : Schedule.placement) ->
        row "copy" (Printf.sprintf "v%d" v) c.proc "cpu" c.start c.finish)
      (Schedule.dup_copies s v)
  done;
  Schedule.iter_comms s ~f:(fun (c : Schedule.comm) ->
      let name = Printf.sprintf "e%d" c.edge in
      row "comm" name c.src_proc "send" c.start c.finish;
      row "comm" name c.dst_proc "recv" c.start c.finish);
  Buffer.contents buf

let write_file path contents =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc contents)

let fingerprint s =
  let g = Schedule.graph s in
  let buf = Buffer.create (64 + ((Graph.n_tasks g + Schedule.n_comms s) * 32)) in
  (if Schedule.all_placed s then
     Buffer.add_string buf (Printf.sprintf "m=%h" (Schedule.makespan s))
   else Buffer.add_string buf "m=-");
  for v = 0 to Graph.n_tasks g - 1 do
    match Schedule.placement s v with
    | None -> Buffer.add_string buf (Printf.sprintf ";t%d=-" v)
    | Some pl ->
        Buffer.add_string buf
          (Printf.sprintf ";t%d=%d:%h:%h" v pl.Schedule.proc pl.Schedule.start
             pl.Schedule.finish)
  done;
  (* copy lines appear only on duplicated schedules, so single-copy
     fingerprints are bit-identical to the pre-duplication era *)
  if Schedule.has_dups s then
    for v = 0 to Graph.n_tasks g - 1 do
      List.iter
        (fun (c : Schedule.placement) ->
          Buffer.add_string buf
            (Printf.sprintf ";d%d=%d:%h:%h" v c.Schedule.proc c.Schedule.start
               c.Schedule.finish))
        (Schedule.dup_copies s v)
    done;
  Schedule.iter_comms s ~f:(fun (c : Schedule.comm) ->
      Buffer.add_string buf
        (Printf.sprintf ";c%d=%d>%d:%h:%h" c.Schedule.edge c.Schedule.src_proc
           c.Schedule.dst_proc c.Schedule.start c.Schedule.finish));
  Schedule.iter_phases s ~f:(fun start finish ->
      Buffer.add_string buf (Printf.sprintf ";p=%h:%h" start finish));
  Digest.to_hex (Digest.string (Buffer.contents buf))
