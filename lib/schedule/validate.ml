module Graph = Taskgraph.Graph

module Comm_model = Commmodel.Comm_model

let eps = 1e-9

let feq a b = Prelude.Stats.fequal ~eps a b
let fle a b = a <= b +. (eps *. max 1. (max (abs_float a) (abs_float b)))

(* Check that sorted-by-start intervals are pairwise disjoint; report via
   [on_overlap a b] with both full intervals. *)
let check_disjoint intervals ~on_overlap =
  let sorted =
    List.sort (fun (s1, _, _) (s2, _, _) -> compare s1 s2) intervals
  in
  let rec walk = function
    | (s1, f1, l1) :: ((s2, f2, l2) :: _ as rest) ->
        if s2 < f1 -. eps then on_overlap (s1, f1, l1) (s2, f2, l2);
        walk rest
    | [ _ ] | [] -> ()
  in
  walk sorted

let pp_route route =
  String.concat ", "
    (List.map (fun (a, b) -> Printf.sprintf "%d->%d" a b) route)

let check s =
  let g = Schedule.graph s in
  let plat = Schedule.platform s in
  let model = Schedule.model s in
  let errors = ref [] in
  let err fmt = Printf.ksprintf (fun m -> errors := m :: !errors) fmt in
  let n = Graph.n_tasks g in
  (* 1. placements and durations *)
  for v = 0 to n - 1 do
    match Schedule.placement s v with
    | None -> err "task %d is not placed" v
    | Some p ->
        if p.start < -.eps then
          err "task %d on processor %d starts at negative time %g" v p.proc
            p.start;
        let expect = Schedule.exec_duration s ~task:v ~proc:p.proc in
        if not (feq (p.finish -. p.start) expect) then
          err "task %d on processor %d has duration %g over [%g,%g), expected %g"
            v p.proc (p.finish -. p.start) p.start p.finish expect
  done;
  if !errors <> [] then Error (List.rev !errors)
  else begin
    (* 2. processor exclusivity (tasks; comms join under no-overlap; BSP
       phases exclude computation on every processor) *)
    let p_count = Platform.p plat in
    let compute_intervals = Array.make p_count [] in
    for v = 0 to n - 1 do
      let pl = Schedule.placement_exn s v in
      if pl.finish > pl.start then
        compute_intervals.(pl.proc) <-
          (pl.start, pl.finish, Printf.sprintf "task %d" v)
          :: compute_intervals.(pl.proc)
    done;
    let all_comms = Schedule.comms s in
    let phases = Schedule.phases s in
    if not model.Comm_model.overlap then
      List.iter
        (fun (c : Schedule.comm) ->
          if c.finish > c.start then begin
            let label = Printf.sprintf "comm e%d" c.edge in
            compute_intervals.(c.src_proc) <-
              (c.start, c.finish, label) :: compute_intervals.(c.src_proc);
            compute_intervals.(c.dst_proc) <-
              (c.start, c.finish, label) :: compute_intervals.(c.dst_proc)
          end)
        all_comms;
    List.iteri
      (fun i (ps, pf) ->
        if pf > ps then begin
          let label = Printf.sprintf "comm phase %d" i in
          for q = 0 to p_count - 1 do
            compute_intervals.(q) <- (ps, pf, label) :: compute_intervals.(q)
          done
        end)
      phases;
    Array.iteri
      (fun q intervals ->
        check_disjoint intervals ~on_overlap:(fun (s1, f1, l1) (s2, f2, l2) ->
            err "processor %d: %s [%g,%g) overlaps %s [%g,%g)" q l1 s1 f1 l2 s2
              f2))
      compute_intervals;
    (* 3. precedence and communication chains *)
    let expected_hop_span ~data ~cost =
      match model.Comm_model.regime with
      | Comm_model.Latency_overhead { o; l } -> (2. *. o) +. (data *. cost) +. l
      | Comm_model.Port | Comm_model.Bsp _ -> data *. cost
    in
    let in_phase (c : Schedule.comm) =
      List.exists (fun (ps, pf) -> feq ps c.start && feq pf c.finish) phases
    in
    let is_bsp =
      match model.Comm_model.regime with
      | Comm_model.Bsp _ -> true
      | Comm_model.Port | Comm_model.Latency_overhead _ -> false
    in
    List.iter
      (fun (e : Graph.edge) ->
        let src = Schedule.placement_exn s e.src in
        let dst = Schedule.placement_exn s e.dst in
        let hops = Schedule.comms_of_edge s e.id in
        if src.proc = dst.proc then begin
          if hops <> [] then
            err "edge %d: local edge on processor %d carries communication \
                 events" e.id src.proc;
          if not (fle src.finish dst.start) then
            err "edge %d: task %d on processor %d starts at %g before its \
                 local predecessor %d finishes at %g"
              e.id e.dst dst.proc dst.start e.src src.finish
        end
        else if is_bsp then begin
          (* BSP: a remote data edge travels in exactly one comm phase
             between the source's finish and the destination's start;
             zero-data edges need no event. *)
          if e.data = 0. then begin
            if hops <> [] then
              err "edge %d: zero-data edge carries communication events" e.id;
            if not (fle src.finish dst.start) then
              err "edge %d: zero-data edge violates precedence (task %d \
                   starts at %g, predecessor finishes at %g)"
                e.id e.dst dst.start src.finish
          end
          else begin
            (match hops with
            | [ c ] ->
                if not (in_phase c) then
                  err "edge %d: event [%g,%g) matches no recorded comm phase"
                    e.id c.start c.finish;
                if not (fle src.finish c.start) then
                  err "edge %d: phase starts at %g before source finishes at %g"
                    e.id c.start src.finish;
                if not (fle c.finish dst.start) then
                  err "edge %d: task %d starts at %g before its phase ends at \
                       %g"
                    e.id e.dst dst.start c.finish
            | [] ->
                err "edge %d: remote edge %d->%d has no communication event"
                  e.id src.proc dst.proc
            | _ ->
                err "edge %d: remote edge has %d events, BSP expects exactly \
                     one"
                  e.id (List.length hops))
          end
        end
        else begin
          let route = Platform.route plat ~src:src.proc ~dst:dst.proc in
          if e.data = 0. && hops = [] then begin
            (* zero-volume edges may omit events but still wait for source *)
            if not (fle src.finish dst.start) then
              err "edge %d: zero-data edge violates precedence (task %d on \
                   processor %d starts at %g, predecessor %d on processor %d \
                   finishes at %g)"
                e.id e.dst dst.proc dst.start e.src src.proc src.finish
          end
          else begin
            let hop_pairs = List.map (fun (c : Schedule.comm) -> (c.src_proc, c.dst_proc)) hops in
            if hop_pairs <> route then
              err "edge %d: communication hops [%s] do not follow the \
                   platform route %d->%d [%s]"
                e.id (pp_route hop_pairs) src.proc dst.proc (pp_route route);
            let arrival =
              List.fold_left
                (fun prev (c : Schedule.comm) ->
                  let expect =
                    expected_hop_span ~data:e.data
                      ~cost:(Platform.hop_cost plat ~src:c.src_proc ~dst:c.dst_proc)
                  in
                  if not (feq (c.finish -. c.start) expect) then
                    err "edge %d: hop %d->%d has duration %g over [%g,%g), \
                         expected %g"
                      e.id c.src_proc c.dst_proc (c.finish -. c.start) c.start
                      c.finish expect;
                  if not (fle prev c.start) then
                    err "edge %d: hop %d->%d starts at %g before data is ready at %g"
                      e.id c.src_proc c.dst_proc c.start prev;
                  c.finish)
                src.finish hops
            in
            if not (fle arrival dst.start) then
              err "edge %d: task %d on processor %d starts at %g before data \
                   arrives at %g"
                e.id e.dst dst.proc dst.start arrival
          end
        end)
      (Graph.edges g);
    (* 3b. BSP phase pricing: a phase moving an h-relation of volume [h]
       must span at least g·h + L.  Phases that lost events to
       [filter_comms] may be over-provisioned; never under. *)
    (match model.Comm_model.regime with
    | Comm_model.Bsp { g = gp; l = lp } ->
        List.iteri
          (fun i (ps, pf) ->
            let h =
              List.fold_left
                (fun acc (c : Schedule.comm) ->
                  if feq ps c.start && feq pf c.finish then
                    acc +. Graph.edge_data g c.edge
                  else acc)
                0. all_comms
            in
            let need = (gp *. h) +. lp in
            if not (fle need (pf -. ps)) then
              err "comm phase %d [%g,%g): spans %g but its h-relation of %g \
                   needs g*h+L = %g"
                i ps pf (pf -. ps) h need)
          phases
    | Comm_model.Port | Comm_model.Latency_overhead _ ->
        if phases <> [] then
          err "schedule records %d comm phases outside the BSP regime"
            (List.length phases));
    (* 4b. link contention: one message per undirected direct link *)
    if model.Comm_model.link_contention then begin
      let by_link = Hashtbl.create 16 in
      List.iter
        (fun (c : Schedule.comm) ->
          if c.finish > c.start then begin
            let key = (min c.src_proc c.dst_proc, max c.src_proc c.dst_proc) in
            let label = Printf.sprintf "e%d %d->%d" c.edge c.src_proc c.dst_proc in
            let old = Option.value ~default:[] (Hashtbl.find_opt by_link key) in
            Hashtbl.replace by_link key ((c.start, c.finish, label) :: old)
          end)
        all_comms;
      Hashtbl.iter
        (fun (a, b) intervals ->
          check_disjoint intervals ~on_overlap:(fun (s1, f1, l1) (s2, f2, l2) ->
              err "link %d-%d: %s [%g,%g) overlaps %s [%g,%g)" a b l1 s1 f1 l2
                s2 f2))
        by_link
    end;
    (* 4. port discipline; under latency+overhead only the endpoint
       overhead sub-windows occupy the ports *)
    (match model.Comm_model.ports with
    | Comm_model.Unlimited -> ()
    | Comm_model.One_port_bidirectional | Comm_model.One_port_unidirectional ->
        let port_windows (c : Schedule.comm) =
          match model.Comm_model.regime with
          | Comm_model.Latency_overhead { o; _ } ->
              ( (c.start, min (c.start +. o) c.finish),
                (max (c.finish -. o) c.start, c.finish) )
          | Comm_model.Port | Comm_model.Bsp _ ->
              ((c.start, c.finish), (c.start, c.finish))
        in
        let sends = Array.make p_count [] in
        let recvs = Array.make p_count [] in
        List.iter
          (fun (c : Schedule.comm) ->
            let (ss, sf), (rs, rf) = port_windows c in
            let label =
              Printf.sprintf "e%d %d->%d" c.edge c.src_proc c.dst_proc
            in
            if sf > ss then
              sends.(c.src_proc) <- (ss, sf, label) :: sends.(c.src_proc);
            if rf > rs then
              recvs.(c.dst_proc) <- (rs, rf, label) :: recvs.(c.dst_proc))
          all_comms;
        let report kind q (s1, f1, l1) (s2, f2, l2) =
          err "processor %d: %s port conflict: %s [%g,%g) overlaps %s [%g,%g)"
            q kind l1 s1 f1 l2 s2 f2
        in
        for q = 0 to p_count - 1 do
          match model.Comm_model.ports with
          | Comm_model.One_port_bidirectional ->
              check_disjoint sends.(q) ~on_overlap:(report "send" q);
              check_disjoint recvs.(q) ~on_overlap:(report "recv" q)
          | Comm_model.One_port_unidirectional ->
              check_disjoint (sends.(q) @ recvs.(q)) ~on_overlap:(report "uni" q)
          | Comm_model.Unlimited -> ()
        done);
    match List.rev !errors with [] -> Ok () | es -> Error es
  end

let check_exn s =
  match check s with
  | Ok () -> ()
  | Error es ->
      failwith
        (Printf.sprintf "invalid schedule: %s"
           (String.concat "; " (List.filteri (fun i _ -> i < 5) es)))

let is_valid s = match check s with Ok () -> true | Error _ -> false
