module Graph = Taskgraph.Graph

module Comm_model = Commmodel.Comm_model

let eps = 1e-9

let feq a b = Prelude.Stats.fequal ~eps a b
let fle a b = a <= b +. (eps *. max 1. (max (abs_float a) (abs_float b)))

let pp_route route =
  String.concat ", "
    (List.map (fun (a, b) -> Printf.sprintf "%d->%d" a b) route)

(* ------------------------------------------------------------------ *)
(* The streaming checker.                                              *)
(*                                                                     *)
(* Occupancy constraints (processor exclusivity, link contention, port *)
(* discipline) all reduce to "intervals on a resource are pairwise     *)
(* disjoint".  Instead of materializing per-resource lists of labelled *)
(* intervals — one tuple and one formatted string per event, even on   *)
(* success — events are packed int tags bucketed per resource id in    *)
(* CSR form, one permutation is sorted by (resource, start), and a     *)
(* single linear sweep compares adjacent events; labels are formatted  *)
(* only for offending pairs.                                           *)
(* ------------------------------------------------------------------ *)

(* [sweep ~n_res ~emit ~start_of ~finish_of ~on_overlap] — [emit yield]
   must produce the same (resource, tag) sequence on both calls: the
   first sizes the buckets, the second fills them. *)
let sweep ~n_res ~emit ~start_of ~finish_of ~on_overlap =
  if n_res > 0 then begin
    let off = Array.make (n_res + 1) 0 in
    emit (fun res _tag -> off.(res + 1) <- off.(res + 1) + 1);
    for r = 0 to n_res - 1 do
      off.(r + 1) <- off.(r + 1) + off.(r)
    done;
    let total = off.(n_res) in
    if total > 1 then begin
      let tags = Array.make total 0 in
      let res_of = Array.make total 0 in
      let cursor = Array.sub off 0 n_res in
      emit (fun res tag ->
          let i = cursor.(res) in
          tags.(i) <- tag;
          res_of.(i) <- res;
          cursor.(res) <- i + 1);
      let idx = Array.init total Fun.id in
      Array.sort
        (fun a b ->
          match Int.compare res_of.(a) res_of.(b) with
          | 0 -> Float.compare (start_of tags.(a)) (start_of tags.(b))
          | c -> c)
        idx;
      for k = 0 to total - 2 do
        let a = idx.(k) and b = idx.(k + 1) in
        if
          res_of.(a) = res_of.(b)
          && start_of tags.(b) < finish_of tags.(a) -. eps
        then on_overlap res_of.(a) tags.(a) tags.(b)
      done
    end
  end

(* Sorted-interval disjointness on labelled lists — shared by the
   copy-aware checker and the list-based [Reference]. *)
module Reference_disjoint = struct
  (* Check that sorted-by-start intervals are pairwise disjoint; report via
     [on_overlap a b] with both full intervals. *)
  let check_disjoint intervals ~on_overlap =
    let sorted =
      List.sort (fun (s1, _, _) (s2, _, _) -> compare s1 s2) intervals
    in
    let rec walk = function
      | (s1, f1, l1) :: ((s2, f2, l2) :: _ as rest) ->
          if s2 < f1 -. eps then on_overlap (s1, f1, l1) (s2, f2, l2);
          walk rest
      | [ _ ] | [] -> ()
    in
    walk sorted
end

(* ------------------------------------------------------------------ *)
(* The copy-aware checker.                                             *)
(*                                                                     *)
(* Once a task runs as several copies the per-edge story changes: an   *)
(* edge may carry several provenance chains (one route-following       *)
(* delivery per remote destination, split by the chain-head flags),    *)
(* and the precedence rule becomes per consumer copy — every copy of   *)
(* the destination must be fed by a local source copy, a completed     *)
(* chain arriving at its processor, or (zero-data) any completed       *)
(* source copy.  Duplication is port-regime only, so BSP phases never  *)
(* mix with copies.  Both [check] and [Reference.check] dispatch here  *)
(* when [Schedule.has_dups]; the list-based style is fine because      *)
(* duplicated schedules are engine-built and moderate-sized.           *)
(* ------------------------------------------------------------------ *)
let check_copies s =
  let g = Schedule.graph s in
  let plat = Schedule.platform s in
  let model = Schedule.model s in
  let errors = ref [] in
  let err fmt = Printf.ksprintf (fun m -> errors := m :: !errors) fmt in
  let n = Graph.n_tasks g in
  (* 1. every copy of every task: placed, non-negative, right duration,
     distinct processors *)
  for v = 0 to n - 1 do
    match Schedule.copies s v with
    | [] -> err "task %d is not placed" v
    | cs ->
        let seen = ref [] in
        List.iter
          (fun (c : Schedule.placement) ->
            if List.mem c.proc !seen then
              err "task %d has two copies on processor %d" v c.proc;
            seen := c.proc :: !seen;
            if c.start < -.eps then
              err "task %d on processor %d starts at negative time %g" v
                c.proc c.start;
            let expect = Schedule.exec_duration s ~task:v ~proc:c.proc in
            if not (feq (c.finish -. c.start) expect) then
              err
                "task %d on processor %d has duration %g over [%g,%g), \
                 expected %g"
                v c.proc (c.finish -. c.start) c.start c.finish expect)
          cs
  done;
  if !errors <> [] then Error (List.rev !errors)
  else begin
    let p_count = Platform.p plat in
    let all_comms = Schedule.comms s in
    if Schedule.n_phases s > 0 then
      err "schedule records %d comm phases outside the BSP regime"
        (Schedule.n_phases s);
    (* 2. processor exclusivity over copies (comms join under no-overlap) *)
    let compute_intervals = Array.make p_count [] in
    for v = 0 to n - 1 do
      List.iter
        (fun (c : Schedule.placement) ->
          if c.finish > c.start then
            compute_intervals.(c.proc) <-
              (c.start, c.finish, Printf.sprintf "task %d" v)
              :: compute_intervals.(c.proc))
        (Schedule.copies s v)
    done;
    if not model.Comm_model.overlap then
      List.iter
        (fun (c : Schedule.comm) ->
          if c.finish > c.start then begin
            let label = Printf.sprintf "comm e%d" c.edge in
            compute_intervals.(c.src_proc) <-
              (c.start, c.finish, label) :: compute_intervals.(c.src_proc);
            compute_intervals.(c.dst_proc) <-
              (c.start, c.finish, label) :: compute_intervals.(c.dst_proc)
          end)
        all_comms;
    Array.iteri
      (fun q intervals ->
        Reference_disjoint.check_disjoint intervals
          ~on_overlap:(fun (s1, f1, l1) (s2, f2, l2) ->
            err "processor %d: %s [%g,%g) overlaps %s [%g,%g)" q l1 s1 f1 l2
              s2 f2))
      compute_intervals;
    (* 3. provenance chains and per-copy precedence *)
    let n_edges = Graph.n_edges g in
    let per_edge = Array.make (max n_edges 1) [] in
    for i = Schedule.n_comms s - 1 downto 0 do
      let c = Schedule.comm_at s i in
      per_edge.(c.Schedule.edge) <-
        (Schedule.comm_head_at s i, c) :: per_edge.(c.Schedule.edge)
    done;
    for e = 0 to n_edges - 1 do
      let u = Graph.edge_src g e and v = Graph.edge_dst g e in
      let data = Graph.edge_data g e in
      (* split the edge's events into chains at the head flags *)
      let chains =
        List.fold_left
          (fun chains (head, (c : Schedule.comm)) ->
            match chains with
            | cur :: rest when not head -> (c :: cur) :: rest
            | _ -> [ c ] :: chains)
          [] per_edge.(e)
        |> List.rev_map List.rev
      in
      (* each chain: departs a completed copy of [u], follows the
         platform route, prices every hop, sequences hop by hop *)
      let arrivals =
        List.filter_map
          (fun chain ->
            let first = List.hd chain in
            let last = List.nth chain (List.length chain - 1) in
            (match
               Schedule.copy_on s ~task:u ~proc:first.Schedule.src_proc
             with
            | None ->
                err
                  "edge %d: chain departs processor %d where task %d has no \
                   copy"
                  e first.Schedule.src_proc u
            | Some cu ->
                if not (fle cu.finish first.Schedule.start) then
                  err
                    "edge %d: hop %d->%d starts at %g before its source copy \
                     finishes at %g"
                    e first.Schedule.src_proc first.Schedule.dst_proc
                    first.Schedule.start cu.finish);
            let route =
              Platform.route plat ~src:first.Schedule.src_proc
                ~dst:last.Schedule.dst_proc
            in
            let hop_pairs =
              List.map
                (fun (c : Schedule.comm) -> (c.src_proc, c.dst_proc))
                chain
            in
            if hop_pairs <> route then
              err
                "edge %d: communication hops [%s] do not follow the platform \
                 route %d->%d [%s]"
                e (pp_route hop_pairs) first.Schedule.src_proc
                last.Schedule.dst_proc (pp_route route);
            let arrival =
              List.fold_left
                (fun prev (c : Schedule.comm) ->
                  let expect =
                    data *. Platform.hop_cost plat ~src:c.src_proc ~dst:c.dst_proc
                  in
                  if not (feq (c.finish -. c.start) expect) then
                    err
                      "edge %d: hop %d->%d has duration %g over [%g,%g), \
                       expected %g"
                      e c.src_proc c.dst_proc (c.finish -. c.start) c.start
                      c.finish expect;
                  if not (fle prev c.start) then
                    err
                      "edge %d: hop %d->%d starts at %g before data is ready \
                       at %g"
                      e c.src_proc c.dst_proc c.start prev;
                  c.finish)
                first.Schedule.start chain
            in
            Some (last.Schedule.dst_proc, arrival))
          chains
      in
      (* every copy of the consumer must be fed by something completed *)
      List.iter
        (fun (cv : Schedule.placement) ->
          let fed_locally =
            match Schedule.copy_on s ~task:u ~proc:cv.proc with
            | Some cu -> fle cu.finish cv.start
            | None -> false
          in
          let fed_zero_data =
            data = 0.
            && List.exists
                 (fun (cu : Schedule.placement) -> fle cu.finish cv.start)
                 (Schedule.copies s u)
          in
          let fed_by_chain =
            List.exists
              (fun (dst, arrival) -> dst = cv.proc && fle arrival cv.start)
              arrivals
          in
          if not (fed_locally || fed_zero_data || fed_by_chain) then
            err
              "edge %d: copy of task %d on processor %d starts at %g but no \
               completed copy of task %d feeds it"
              e v cv.proc cv.start u)
        (Schedule.copies s v)
    done;
    (* 4b. link contention: one message per undirected direct link *)
    if model.Comm_model.link_contention then begin
      let by_link = Hashtbl.create 16 in
      List.iter
        (fun (c : Schedule.comm) ->
          if c.finish > c.start then begin
            let key = (min c.src_proc c.dst_proc, max c.src_proc c.dst_proc) in
            let label =
              Printf.sprintf "e%d %d->%d" c.edge c.src_proc c.dst_proc
            in
            let old =
              Option.value ~default:[] (Hashtbl.find_opt by_link key)
            in
            Hashtbl.replace by_link key ((c.start, c.finish, label) :: old)
          end)
        all_comms;
      Hashtbl.iter
        (fun (a, b) intervals ->
          Reference_disjoint.check_disjoint intervals
            ~on_overlap:(fun (s1, f1, l1) (s2, f2, l2) ->
              err "link %d-%d: %s [%g,%g) overlaps %s [%g,%g)" a b l1 s1 f1 l2
                s2 f2))
        by_link
    end;
    (* 4. port discipline *)
    (match model.Comm_model.ports with
    | Comm_model.Unlimited -> ()
    | Comm_model.One_port_bidirectional | Comm_model.One_port_unidirectional
      ->
        let sends = Array.make p_count [] in
        let recvs = Array.make p_count [] in
        List.iter
          (fun (c : Schedule.comm) ->
            if c.finish > c.start then begin
              let label =
                Printf.sprintf "e%d %d->%d" c.edge c.src_proc c.dst_proc
              in
              sends.(c.src_proc) <-
                (c.start, c.finish, label) :: sends.(c.src_proc);
              recvs.(c.dst_proc) <-
                (c.start, c.finish, label) :: recvs.(c.dst_proc)
            end)
          all_comms;
        let report kind q (s1, f1, l1) (s2, f2, l2) =
          err "processor %d: %s port conflict: %s [%g,%g) overlaps %s [%g,%g)"
            q kind l1 s1 f1 l2 s2 f2
        in
        for q = 0 to p_count - 1 do
          match model.Comm_model.ports with
          | Comm_model.One_port_bidirectional ->
              Reference_disjoint.check_disjoint sends.(q)
                ~on_overlap:(report "send" q);
              Reference_disjoint.check_disjoint recvs.(q)
                ~on_overlap:(report "recv" q)
          | Comm_model.One_port_unidirectional ->
              Reference_disjoint.check_disjoint
                (sends.(q) @ recvs.(q))
                ~on_overlap:(report "uni" q)
          | Comm_model.Unlimited -> ()
        done);
    match List.rev !errors with [] -> Ok () | es -> Error es
  end

let check s =
  if Schedule.has_dups s then check_copies s
  else begin
  let g = Schedule.graph s in
  let plat = Schedule.platform s in
  let model = Schedule.model s in
  let errors = ref [] in
  let err fmt = Printf.ksprintf (fun m -> errors := m :: !errors) fmt in
  let n = Graph.n_tasks g in
  (* 1. placements and durations *)
  for v = 0 to n - 1 do
    if not (Schedule.is_placed s v) then err "task %d is not placed" v
    else begin
      let proc = Schedule.proc_of_exn s v in
      let start = Schedule.start_of_exn s v in
      let finish = Schedule.finish_of_exn s v in
      if start < -.eps then
        err "task %d on processor %d starts at negative time %g" v proc start;
      let expect = Schedule.exec_duration s ~task:v ~proc in
      if not (feq (finish -. start) expect) then
        err "task %d on processor %d has duration %g over [%g,%g), expected %g"
          v proc (finish -. start) start finish expect
    end
  done;
  if !errors <> [] then Error (List.rev !errors)
  else begin
    let p_count = Platform.p plat in
    let nc = Schedule.n_comms s in
    let nph = Schedule.n_phases s in
    (* 2. processor exclusivity (tasks; comms join under no-overlap; BSP
       phases exclude computation on every processor).  Tag encoding:
       [0, n) tasks, [n, n+nc) comm events, [n+nc, n+nc+nph) phases. *)
    let start_of tag =
      if tag < n then Schedule.start_of_exn s tag
      else if tag < n + nc then (Schedule.comm_at s (tag - n)).Schedule.start
      else fst (Schedule.phase_at s (tag - n - nc))
    in
    let finish_of tag =
      if tag < n then Schedule.finish_of_exn s tag
      else if tag < n + nc then (Schedule.comm_at s (tag - n)).Schedule.finish
      else snd (Schedule.phase_at s (tag - n - nc))
    in
    let label_of tag =
      if tag < n then Printf.sprintf "task %d" tag
      else if tag < n + nc then
        Printf.sprintf "comm e%d" (Schedule.comm_at s (tag - n)).Schedule.edge
      else Printf.sprintf "comm phase %d" (tag - n - nc)
    in
    let emit yield =
      for v = 0 to n - 1 do
        if Schedule.finish_of_exn s v > Schedule.start_of_exn s v then
          yield (Schedule.proc_of_exn s v) v
      done;
      if not model.Comm_model.overlap then
        for i = 0 to nc - 1 do
          let c = Schedule.comm_at s i in
          if c.Schedule.finish > c.Schedule.start then begin
            yield c.Schedule.src_proc (n + i);
            yield c.Schedule.dst_proc (n + i)
          end
        done;
      for i = 0 to nph - 1 do
        let ps, pf = Schedule.phase_at s i in
        if pf > ps then
          for q = 0 to p_count - 1 do
            yield q (n + nc + i)
          done
      done
    in
    sweep ~n_res:p_count ~emit ~start_of ~finish_of
      ~on_overlap:(fun q a b ->
        err "processor %d: %s [%g,%g) overlaps %s [%g,%g)" q (label_of a)
          (start_of a) (finish_of a) (label_of b) (start_of b) (finish_of b));
    (* Phase lookup by start for BSP: phase indices sorted by start.
       Every phase whose start is [feq] to [x] lies within the band
       [x ± 2·eps·(1+|x|)], so a binary search plus a short scan visits
       (a superset of) the candidates the old linear [List.exists] did;
       the exact [feq] test runs inside the callback's caller. *)
    let ph_starts = Array.init nph (fun i -> fst (Schedule.phase_at s i)) in
    let ph_order = Array.init nph Fun.id in
    Array.sort (fun a b -> Float.compare ph_starts.(a) ph_starts.(b)) ph_order;
    let iter_phases_matching x ~f =
      let band = eps *. 2. *. (1. +. abs_float x) in
      let lo = ref 0 and hi = ref nph in
      while !lo < !hi do
        let mid = (!lo + !hi) / 2 in
        if ph_starts.(ph_order.(mid)) < x -. band then lo := mid + 1
        else hi := mid
      done;
      let k = ref !lo in
      while !k < nph && ph_starts.(ph_order.(!k)) <= x +. band do
        f ph_order.(!k);
        incr k
      done
    in
    let in_phase (c : Schedule.comm) =
      let found = ref false in
      iter_phases_matching c.start ~f:(fun i ->
          let ps, pf = Schedule.phase_at s i in
          if feq ps c.start && feq pf c.finish then found := true);
      !found
    in
    (* 3. precedence and communication chains *)
    let expected_hop_span ~data ~cost =
      match model.Comm_model.regime with
      | Comm_model.Latency_overhead { o; l } -> (2. *. o) +. (data *. cost) +. l
      | Comm_model.Port | Comm_model.Bsp _ -> data *. cost
    in
    let is_bsp =
      match model.Comm_model.regime with
      | Comm_model.Bsp _ -> true
      | Comm_model.Port | Comm_model.Latency_overhead _ -> false
    in
    for e = 0 to Graph.n_edges g - 1 do
      let u = Graph.edge_src g e and v = Graph.edge_dst g e in
      let data = Graph.edge_data g e in
      let up = Schedule.proc_of_exn s u and vp = Schedule.proc_of_exn s v in
      let ufin = Schedule.finish_of_exn s u in
      let vstart = Schedule.start_of_exn s v in
      let hop_count = Schedule.n_comms_of_edge s e in
      if up = vp then begin
        if hop_count > 0 then
          err "edge %d: local edge on processor %d carries communication \
               events" e up;
        if not (fle ufin vstart) then
          err "edge %d: task %d on processor %d starts at %g before its \
               local predecessor %d finishes at %g"
            e v vp vstart u ufin
      end
      else if is_bsp then begin
        (* BSP: a remote data edge travels in exactly one comm phase
           between the source's finish and the destination's start;
           zero-data edges need no event. *)
        if data = 0. then begin
          if hop_count > 0 then
            err "edge %d: zero-data edge carries communication events" e;
          if not (fle ufin vstart) then
            err "edge %d: zero-data edge violates precedence (task %d \
                 starts at %g, predecessor finishes at %g)"
              e v vstart ufin
        end
        else if hop_count = 0 then
          err "edge %d: remote edge %d->%d has no communication event" e up vp
        else if hop_count > 1 then
          err "edge %d: remote edge has %d events, BSP expects exactly one" e
            hop_count
        else begin
          let c =
            Schedule.fold_comms_of_edge s e ~init:None ~f:(fun _ c -> Some c)
            |> Option.get
          in
          if not (in_phase c) then
            err "edge %d: event [%g,%g) matches no recorded comm phase" e
              c.start c.finish;
          if not (fle ufin c.start) then
            err "edge %d: phase starts at %g before source finishes at %g" e
              c.start ufin;
          if not (fle c.finish vstart) then
            err "edge %d: task %d starts at %g before its phase ends at %g" e
              v vstart c.finish
        end
      end
      else if data = 0. && hop_count = 0 then begin
        (* zero-volume edges may omit events but still wait for source *)
        if not (fle ufin vstart) then
          err "edge %d: zero-data edge violates precedence (task %d on \
               processor %d starts at %g, predecessor %d on processor %d \
               finishes at %g)"
            e v vp vstart u up ufin
      end
      else begin
        (* Route conformance, streamed: walk the platform route alongside
           the hop fold; the hop list is only materialized on error. *)
        let route = Platform.route plat ~src:up ~dst:vp in
        let rest, ok =
          Schedule.fold_comms_of_edge s e ~init:(route, true)
            ~f:(fun (rest, ok) (c : Schedule.comm) ->
              match rest with
              | (a, b) :: tl when a = c.src_proc && b = c.dst_proc -> (tl, ok)
              | _ -> ([], false))
        in
        if (not ok) || rest <> [] then begin
          let hop_pairs =
            List.map
              (fun (c : Schedule.comm) -> (c.src_proc, c.dst_proc))
              (Schedule.comms_of_edge s e)
          in
          err "edge %d: communication hops [%s] do not follow the platform \
               route %d->%d [%s]"
            e (pp_route hop_pairs) up vp (pp_route route)
        end;
        let arrival =
          Schedule.fold_comms_of_edge s e ~init:ufin
            ~f:(fun prev (c : Schedule.comm) ->
              let expect =
                expected_hop_span ~data
                  ~cost:
                    (Platform.hop_cost plat ~src:c.src_proc ~dst:c.dst_proc)
              in
              if not (feq (c.finish -. c.start) expect) then
                err "edge %d: hop %d->%d has duration %g over [%g,%g), \
                     expected %g"
                  e c.src_proc c.dst_proc (c.finish -. c.start) c.start
                  c.finish expect;
              if not (fle prev c.start) then
                err
                  "edge %d: hop %d->%d starts at %g before data is ready at %g"
                  e c.src_proc c.dst_proc c.start prev;
              c.finish)
        in
        if not (fle arrival vstart) then
          err "edge %d: task %d on processor %d starts at %g before data \
               arrives at %g"
            e v vp vstart arrival
      end
    done;
    (* 3b. BSP phase pricing: a phase moving an h-relation of volume [h]
       must span at least g·h + L.  Phases that lost events to
       [filter_comms] may be over-provisioned; never under. *)
    (match model.Comm_model.regime with
    | Comm_model.Bsp { g = gp; l = lp } ->
        let h = Array.make (max 1 nph) 0. in
        Schedule.iter_comms s ~f:(fun (c : Schedule.comm) ->
            iter_phases_matching c.start ~f:(fun i ->
                let ps, pf = Schedule.phase_at s i in
                if feq ps c.start && feq pf c.finish then
                  h.(i) <- h.(i) +. Graph.edge_data g c.edge));
        for i = 0 to nph - 1 do
          let ps, pf = Schedule.phase_at s i in
          let need = (gp *. h.(i)) +. lp in
          if not (fle need (pf -. ps)) then
            err "comm phase %d [%g,%g): spans %g but its h-relation of %g \
                 needs g*h+L = %g"
              i ps pf (pf -. ps) h.(i) need
        done
    | Comm_model.Port | Comm_model.Latency_overhead _ ->
        if nph > 0 then
          err "schedule records %d comm phases outside the BSP regime" nph);
    (* 4b. link contention: one message per undirected direct link.
       Links get dense resource ids in first-seen order. *)
    if model.Comm_model.link_contention then begin
      let link_ids = Hashtbl.create 16 in
      let link_pairs = Prelude.Vec.create () in
      let id_of a b =
        let key = (min a b * p_count) + max a b in
        match Hashtbl.find_opt link_ids key with
        | Some id -> id
        | None ->
            let id = Prelude.Vec.length link_pairs in
            Hashtbl.add link_ids key id;
            Prelude.Vec.push link_pairs (min a b, max a b);
            id
      in
      Schedule.iter_comms s ~f:(fun (c : Schedule.comm) ->
          if c.finish > c.start then
            ignore (id_of c.src_proc c.dst_proc : int));
      let cstart tag = (Schedule.comm_at s tag).Schedule.start in
      let cfinish tag = (Schedule.comm_at s tag).Schedule.finish in
      let clabel tag =
        let c = Schedule.comm_at s tag in
        Printf.sprintf "e%d %d->%d" c.edge c.src_proc c.dst_proc
      in
      sweep
        ~n_res:(Prelude.Vec.length link_pairs)
        ~emit:(fun yield ->
          for i = 0 to nc - 1 do
            let c = Schedule.comm_at s i in
            if c.Schedule.finish > c.Schedule.start then
              yield (id_of c.Schedule.src_proc c.Schedule.dst_proc) i
          done)
        ~start_of:cstart ~finish_of:cfinish
        ~on_overlap:(fun r t1 t2 ->
          let a, b = Prelude.Vec.get link_pairs r in
          err "link %d-%d: %s [%g,%g) overlaps %s [%g,%g)" a b (clabel t1)
            (cstart t1) (cfinish t1) (clabel t2) (cstart t2) (cfinish t2))
    end;
    (* 4. port discipline; under latency+overhead only the endpoint
       overhead sub-windows occupy the ports.  Tag encoding: [2i] the
       send window of comm [i], [2i+1] its receive window.  Resources:
       bidirectional keeps send port [q] and receive port [p+q]
       independent; unidirectional pools both on [q]. *)
    (match model.Comm_model.ports with
    | Comm_model.Unlimited -> ()
    | Comm_model.One_port_bidirectional | Comm_model.One_port_unidirectional
      ->
        let bidir =
          model.Comm_model.ports = Comm_model.One_port_bidirectional
        in
        let window tag =
          let c = Schedule.comm_at s (tag / 2) in
          match model.Comm_model.regime with
          | Comm_model.Latency_overhead { o; _ } ->
              if tag land 1 = 0 then
                (c.Schedule.start, min (c.Schedule.start +. o) c.Schedule.finish)
              else
                ( max (c.Schedule.finish -. o) c.Schedule.start,
                  c.Schedule.finish )
          | Comm_model.Port | Comm_model.Bsp _ ->
              (c.Schedule.start, c.Schedule.finish)
        in
        let wstart tag = fst (window tag) in
        let wfinish tag = snd (window tag) in
        let wlabel tag =
          let c = Schedule.comm_at s (tag / 2) in
          Printf.sprintf "e%d %d->%d" c.Schedule.edge c.Schedule.src_proc
            c.Schedule.dst_proc
        in
        sweep
          ~n_res:(if bidir then 2 * p_count else p_count)
          ~emit:(fun yield ->
            for i = 0 to nc - 1 do
              let c = Schedule.comm_at s i in
              let ss, sf = window (2 * i) in
              if sf > ss then yield c.Schedule.src_proc (2 * i);
              let rs, rf = window ((2 * i) + 1) in
              if rf > rs then
                yield
                  (if bidir then p_count + c.Schedule.dst_proc
                   else c.Schedule.dst_proc)
                  ((2 * i) + 1)
            done)
          ~start_of:wstart ~finish_of:wfinish
          ~on_overlap:(fun r t1 t2 ->
            let q = if bidir && r >= p_count then r - p_count else r in
            let kind =
              if not bidir then "uni"
              else if r < p_count then "send"
              else "recv"
            in
            err "processor %d: %s port conflict: %s [%g,%g) overlaps %s \
                 [%g,%g)"
              q kind (wlabel t1) (wstart t1) (wfinish t1) (wlabel t2)
              (wstart t2) (wfinish t2)));
    match List.rev !errors with [] -> Ok () | es -> Error es
  end
  end

(* ------------------------------------------------------------------ *)
(* The original list-based checker — the executable specification the  *)
(* streaming sweep is tested against.  Same verdicts; it materializes  *)
(* labelled interval lists per resource and is O(phases·comms) under   *)
(* BSP, so it stays off the million-task path.                         *)
(* ------------------------------------------------------------------ *)
module Reference = struct
  let check_disjoint = Reference_disjoint.check_disjoint

  let check s =
    if Schedule.has_dups s then check_copies s
    else
    let g = Schedule.graph s in
    let plat = Schedule.platform s in
    let model = Schedule.model s in
    let errors = ref [] in
    let err fmt = Printf.ksprintf (fun m -> errors := m :: !errors) fmt in
    let n = Graph.n_tasks g in
    (* 1. placements and durations *)
    for v = 0 to n - 1 do
      match Schedule.placement s v with
      | None -> err "task %d is not placed" v
      | Some p ->
          if p.start < -.eps then
            err "task %d on processor %d starts at negative time %g" v p.proc
              p.start;
          let expect = Schedule.exec_duration s ~task:v ~proc:p.proc in
          if not (feq (p.finish -. p.start) expect) then
            err
              "task %d on processor %d has duration %g over [%g,%g), \
               expected %g"
              v p.proc (p.finish -. p.start) p.start p.finish expect
    done;
    if !errors <> [] then Error (List.rev !errors)
    else begin
      (* 2. processor exclusivity (tasks; comms join under no-overlap; BSP
         phases exclude computation on every processor) *)
      let p_count = Platform.p plat in
      let compute_intervals = Array.make p_count [] in
      for v = 0 to n - 1 do
        let pl = Schedule.placement_exn s v in
        if pl.finish > pl.start then
          compute_intervals.(pl.proc) <-
            (pl.start, pl.finish, Printf.sprintf "task %d" v)
            :: compute_intervals.(pl.proc)
      done;
      let all_comms = Schedule.comms s in
      let phases = Schedule.phases s in
      if not model.Comm_model.overlap then
        List.iter
          (fun (c : Schedule.comm) ->
            if c.finish > c.start then begin
              let label = Printf.sprintf "comm e%d" c.edge in
              compute_intervals.(c.src_proc) <-
                (c.start, c.finish, label) :: compute_intervals.(c.src_proc);
              compute_intervals.(c.dst_proc) <-
                (c.start, c.finish, label) :: compute_intervals.(c.dst_proc)
            end)
          all_comms;
      List.iteri
        (fun i (ps, pf) ->
          if pf > ps then begin
            let label = Printf.sprintf "comm phase %d" i in
            for q = 0 to p_count - 1 do
              compute_intervals.(q) <- (ps, pf, label) :: compute_intervals.(q)
            done
          end)
        phases;
      Array.iteri
        (fun q intervals ->
          check_disjoint intervals ~on_overlap:(fun (s1, f1, l1) (s2, f2, l2) ->
              err "processor %d: %s [%g,%g) overlaps %s [%g,%g)" q l1 s1 f1 l2
                s2 f2))
        compute_intervals;
      (* 3. precedence and communication chains *)
      let expected_hop_span ~data ~cost =
        match model.Comm_model.regime with
        | Comm_model.Latency_overhead { o; l } ->
            (2. *. o) +. (data *. cost) +. l
        | Comm_model.Port | Comm_model.Bsp _ -> data *. cost
      in
      let in_phase (c : Schedule.comm) =
        List.exists (fun (ps, pf) -> feq ps c.start && feq pf c.finish) phases
      in
      let is_bsp =
        match model.Comm_model.regime with
        | Comm_model.Bsp _ -> true
        | Comm_model.Port | Comm_model.Latency_overhead _ -> false
      in
      List.iter
        (fun (e : Graph.edge) ->
          let src = Schedule.placement_exn s e.src in
          let dst = Schedule.placement_exn s e.dst in
          let hops = Schedule.comms_of_edge s e.id in
          if src.proc = dst.proc then begin
            if hops <> [] then
              err
                "edge %d: local edge on processor %d carries communication \
                 events"
                e.id src.proc;
            if not (fle src.finish dst.start) then
              err
                "edge %d: task %d on processor %d starts at %g before its \
                 local predecessor %d finishes at %g"
                e.id e.dst dst.proc dst.start e.src src.finish
          end
          else if is_bsp then begin
            (* BSP: a remote data edge travels in exactly one comm phase
               between the source's finish and the destination's start;
               zero-data edges need no event. *)
            if e.data = 0. then begin
              if hops <> [] then
                err "edge %d: zero-data edge carries communication events" e.id;
              if not (fle src.finish dst.start) then
                err
                  "edge %d: zero-data edge violates precedence (task %d \
                   starts at %g, predecessor finishes at %g)"
                  e.id e.dst dst.start src.finish
            end
            else begin
              match hops with
              | [ c ] ->
                  if not (in_phase c) then
                    err "edge %d: event [%g,%g) matches no recorded comm phase"
                      e.id c.start c.finish;
                  if not (fle src.finish c.start) then
                    err
                      "edge %d: phase starts at %g before source finishes at \
                       %g"
                      e.id c.start src.finish;
                  if not (fle c.finish dst.start) then
                    err
                      "edge %d: task %d starts at %g before its phase ends \
                       at %g"
                      e.id e.dst dst.start c.finish
              | [] ->
                  err "edge %d: remote edge %d->%d has no communication event"
                    e.id src.proc dst.proc
              | _ ->
                  err
                    "edge %d: remote edge has %d events, BSP expects exactly \
                     one"
                    e.id (List.length hops)
            end
          end
          else begin
            let route = Platform.route plat ~src:src.proc ~dst:dst.proc in
            if e.data = 0. && hops = [] then begin
              (* zero-volume edges may omit events but still wait for source *)
              if not (fle src.finish dst.start) then
                err
                  "edge %d: zero-data edge violates precedence (task %d on \
                   processor %d starts at %g, predecessor %d on processor %d \
                   finishes at %g)"
                  e.id e.dst dst.proc dst.start e.src src.proc src.finish
            end
            else begin
              let hop_pairs =
                List.map
                  (fun (c : Schedule.comm) -> (c.src_proc, c.dst_proc))
                  hops
              in
              if hop_pairs <> route then
                err
                  "edge %d: communication hops [%s] do not follow the \
                   platform route %d->%d [%s]"
                  e.id (pp_route hop_pairs) src.proc dst.proc (pp_route route);
              let arrival =
                List.fold_left
                  (fun prev (c : Schedule.comm) ->
                    let expect =
                      expected_hop_span ~data:e.data
                        ~cost:
                          (Platform.hop_cost plat ~src:c.src_proc
                             ~dst:c.dst_proc)
                    in
                    if not (feq (c.finish -. c.start) expect) then
                      err
                        "edge %d: hop %d->%d has duration %g over [%g,%g), \
                         expected %g"
                        e.id c.src_proc c.dst_proc (c.finish -. c.start)
                        c.start c.finish expect;
                    if not (fle prev c.start) then
                      err
                        "edge %d: hop %d->%d starts at %g before data is \
                         ready at %g"
                        e.id c.src_proc c.dst_proc c.start prev;
                    c.finish)
                  src.finish hops
              in
              if not (fle arrival dst.start) then
                err
                  "edge %d: task %d on processor %d starts at %g before data \
                   arrives at %g"
                  e.id e.dst dst.proc dst.start arrival
            end
          end)
        (Graph.edges g);
      (* 3b. BSP phase pricing: a phase moving an h-relation of volume [h]
         must span at least g·h + L.  Phases that lost events to
         [filter_comms] may be over-provisioned; never under. *)
      (match model.Comm_model.regime with
      | Comm_model.Bsp { g = gp; l = lp } ->
          List.iteri
            (fun i (ps, pf) ->
              let h =
                List.fold_left
                  (fun acc (c : Schedule.comm) ->
                    if feq ps c.start && feq pf c.finish then
                      acc +. Graph.edge_data g c.edge
                    else acc)
                  0. all_comms
              in
              let need = (gp *. h) +. lp in
              if not (fle need (pf -. ps)) then
                err
                  "comm phase %d [%g,%g): spans %g but its h-relation of %g \
                   needs g*h+L = %g"
                  i ps pf (pf -. ps) h need)
            phases
      | Comm_model.Port | Comm_model.Latency_overhead _ ->
          if phases <> [] then
            err "schedule records %d comm phases outside the BSP regime"
              (List.length phases));
      (* 4b. link contention: one message per undirected direct link *)
      if model.Comm_model.link_contention then begin
        let by_link = Hashtbl.create 16 in
        List.iter
          (fun (c : Schedule.comm) ->
            if c.finish > c.start then begin
              let key =
                (min c.src_proc c.dst_proc, max c.src_proc c.dst_proc)
              in
              let label =
                Printf.sprintf "e%d %d->%d" c.edge c.src_proc c.dst_proc
              in
              let old =
                Option.value ~default:[] (Hashtbl.find_opt by_link key)
              in
              Hashtbl.replace by_link key ((c.start, c.finish, label) :: old)
            end)
          all_comms;
        Hashtbl.iter
          (fun (a, b) intervals ->
            check_disjoint intervals
              ~on_overlap:(fun (s1, f1, l1) (s2, f2, l2) ->
                err "link %d-%d: %s [%g,%g) overlaps %s [%g,%g)" a b l1 s1 f1
                  l2 s2 f2))
          by_link
      end;
      (* 4. port discipline; under latency+overhead only the endpoint
         overhead sub-windows occupy the ports *)
      (match model.Comm_model.ports with
      | Comm_model.Unlimited -> ()
      | Comm_model.One_port_bidirectional | Comm_model.One_port_unidirectional
        ->
          let port_windows (c : Schedule.comm) =
            match model.Comm_model.regime with
            | Comm_model.Latency_overhead { o; _ } ->
                ( (c.start, min (c.start +. o) c.finish),
                  (max (c.finish -. o) c.start, c.finish) )
            | Comm_model.Port | Comm_model.Bsp _ ->
                ((c.start, c.finish), (c.start, c.finish))
          in
          let sends = Array.make p_count [] in
          let recvs = Array.make p_count [] in
          List.iter
            (fun (c : Schedule.comm) ->
              let (ss, sf), (rs, rf) = port_windows c in
              let label =
                Printf.sprintf "e%d %d->%d" c.edge c.src_proc c.dst_proc
              in
              if sf > ss then
                sends.(c.src_proc) <- (ss, sf, label) :: sends.(c.src_proc);
              if rf > rs then
                recvs.(c.dst_proc) <- (rs, rf, label) :: recvs.(c.dst_proc))
            all_comms;
          let report kind q (s1, f1, l1) (s2, f2, l2) =
            err
              "processor %d: %s port conflict: %s [%g,%g) overlaps %s [%g,%g)"
              q kind l1 s1 f1 l2 s2 f2
          in
          for q = 0 to p_count - 1 do
            match model.Comm_model.ports with
            | Comm_model.One_port_bidirectional ->
                check_disjoint sends.(q) ~on_overlap:(report "send" q);
                check_disjoint recvs.(q) ~on_overlap:(report "recv" q)
            | Comm_model.One_port_unidirectional ->
                check_disjoint
                  (sends.(q) @ recvs.(q))
                  ~on_overlap:(report "uni" q)
            | Comm_model.Unlimited -> ()
          done);
      match List.rev !errors with [] -> Ok () | es -> Error es
    end
end

let check_exn s =
  match check s with
  | Ok () -> ()
  | Error es ->
      failwith
        (Printf.sprintf "invalid schedule: %s"
           (String.concat "; " (List.filteri (fun i _ -> i < 5) es)))

let is_valid s = match check s with Ok () -> true | Error _ -> false
