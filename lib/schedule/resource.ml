open Prelude
module Comm_model = Commmodel.Comm_model

type proc_state = {
  compute : Timeline.t;
  send : Timeline.t;
  recv : Timeline.t;
      (* Physically equal to [send] under the uni-directional discipline. *)
  compute_id : int;
  send_id : int;
  recv_id : int;
      (* Ids mirror the physical sharing: [recv_id = send_id] iff
         [recv == send]. *)
}

type t = {
  model : Comm_model.t;
  procs : proc_state array;
  (* The platform-wide barrier timeline of BSP comm phases, with its
     stable id; [None] outside the BSP regime. *)
  barrier : (Timeline.t * int) option;
  (* Undirected-link timelines keyed by (min, max) processor pair; lazily
     created, only populated under link-contention models.  Each carries
     its stable id, handed out from [next_id]. *)
  links : (int * int, Timeline.t * int) Hashtbl.t;
  mutable next_id : int;
}

let create ~model ~p =
  let make_proc i =
    let compute = Timeline.create () in
    let send = Timeline.create () in
    let recv, recv_id =
      match model.Comm_model.ports with
      | Comm_model.One_port_unidirectional -> (send, (3 * i) + 1)
      | Comm_model.Unlimited | Comm_model.One_port_bidirectional ->
          (Timeline.create (), (3 * i) + 2)
    in
    {
      compute;
      send;
      recv;
      compute_id = 3 * i;
      send_id = (3 * i) + 1;
      recv_id;
    }
  in
  let barrier, next_id =
    match model.Comm_model.regime with
    | Comm_model.Bsp _ -> (Some (Timeline.create (), 3 * p), (3 * p) + 1)
    | Comm_model.Port | Comm_model.Latency_overhead _ -> (None, 3 * p)
  in
  {
    model;
    procs = Array.init p make_proc;
    barrier;
    links = Hashtbl.create 16;
    next_id;
  }

let model t = t.model
let p t = Array.length t.procs
let compute t i = t.procs.(i).compute
let compute_id t i = t.procs.(i).compute_id
let id_bound t = t.next_id

let with_compute_if_no_overlap t i rest =
  if t.model.Comm_model.overlap then rest else t.procs.(i).compute :: rest

let send_busy t i =
  match t.model.Comm_model.ports with
  | Comm_model.Unlimited -> with_compute_if_no_overlap t i []
  | Comm_model.One_port_bidirectional | Comm_model.One_port_unidirectional ->
      with_compute_if_no_overlap t i [ t.procs.(i).send ]

let recv_busy t i =
  match t.model.Comm_model.ports with
  | Comm_model.Unlimited -> with_compute_if_no_overlap t i []
  | Comm_model.One_port_bidirectional -> with_compute_if_no_overlap t i [ t.procs.(i).recv ]
  | Comm_model.One_port_unidirectional ->
      (* recv is physically the send port *)
      with_compute_if_no_overlap t i [ t.procs.(i).recv ]

let send_busy_ids t i =
  let with_compute_id rest =
    if t.model.Comm_model.overlap then rest
    else (t.procs.(i).compute, t.procs.(i).compute_id) :: rest
  in
  match t.model.Comm_model.ports with
  | Comm_model.Unlimited -> with_compute_id []
  | Comm_model.One_port_bidirectional | Comm_model.One_port_unidirectional ->
      with_compute_id [ (t.procs.(i).send, t.procs.(i).send_id) ]

let recv_busy_ids t i =
  let with_compute_id rest =
    if t.model.Comm_model.overlap then rest
    else (t.procs.(i).compute, t.procs.(i).compute_id) :: rest
  in
  match t.model.Comm_model.ports with
  | Comm_model.Unlimited -> with_compute_id []
  | Comm_model.One_port_bidirectional | Comm_model.One_port_unidirectional ->
      with_compute_id [ (t.procs.(i).recv, t.procs.(i).recv_id) ]

(* A BSP comm phase excludes computation platform-wide and phases never
   overlap each other: the joint busy set is the barrier timeline plus
   every processor's compute timeline. *)
let phase_busy t =
  match t.barrier with
  | None -> invalid_arg "Resource.phase_busy: not a BSP resource set"
  | Some (tl, _) ->
      tl :: Array.fold_right (fun ps acc -> ps.compute :: acc) t.procs []

let phase_busy_ids t =
  match t.barrier with
  | None -> invalid_arg "Resource.phase_busy_ids: not a BSP resource set"
  | Some (tl, id) ->
      (tl, id)
      :: Array.fold_right
           (fun ps acc -> (ps.compute, ps.compute_id) :: acc)
           t.procs []

let commit_phase t ~start ~finish =
  List.iter (fun tl -> Timeline.add tl ~start ~finish) (phase_busy t)

let retract_phase t ~start ~finish =
  List.iter (fun tl -> Timeline.remove tl ~start ~finish) (phase_busy t)

let link_with_id t ~src ~dst =
  let key = (min src dst, max src dst) in
  match Hashtbl.find_opt t.links key with
  | Some entry -> entry
  | None ->
      let tl = Timeline.create () in
      let id = t.next_id in
      t.next_id <- id + 1;
      Hashtbl.add t.links key (tl, id);
      (tl, id)

let link t ~src ~dst = fst (link_with_id t ~src ~dst)

let comm_busy t ~src ~dst =
  let base = send_busy t src @ recv_busy t dst in
  if t.model.Comm_model.link_contention then link t ~src ~dst :: base else base

let comm_busy_ids t ~src ~dst =
  let with_compute_id i rest =
    if t.model.Comm_model.overlap then rest
    else (t.procs.(i).compute, t.procs.(i).compute_id) :: rest
  in
  let side busy i id =
    match t.model.Comm_model.ports with
    | Comm_model.Unlimited -> with_compute_id i []
    | Comm_model.One_port_bidirectional | Comm_model.One_port_unidirectional ->
        with_compute_id i [ (busy, id) ]
  in
  let base =
    side t.procs.(src).send src t.procs.(src).send_id
    @ side t.procs.(dst).recv dst t.procs.(dst).recv_id
  in
  if t.model.Comm_model.link_contention then link_with_id t ~src ~dst :: base
  else base

(* What a committed communication event actually occupies depends on the
   regime:
   - Port: the whole [start, finish) span on the joint busy set;
   - Bsp: nothing — the enclosing phase owns the resources, so events
     commit and retract freely as the phase's contents change;
   - Latency_overhead: only the endpoint overheads — [o] on the sender's
     ports at the front of the event, [o] on the receiver's at the back;
     the flight in between occupies no resource. *)
let comm_occupancy t ~src ~dst ~start ~finish =
  match t.model.Comm_model.regime with
  | Comm_model.Port ->
      List.map (fun tl -> (tl, start, finish)) (comm_busy t ~src ~dst)
  | Comm_model.Bsp _ -> []
  | Comm_model.Latency_overhead { o; _ } ->
      let s1 = min (start +. o) finish and r0 = max (finish -. o) start in
      List.map (fun tl -> (tl, start, s1)) (send_busy t src)
      @ List.map (fun tl -> (tl, r0, finish)) (recv_busy t dst)

let commit_comm t ~src ~dst ~start ~finish =
  List.iter
    (fun (tl, start, finish) ->
      if finish > start then Timeline.add tl ~start ~finish)
    (comm_occupancy t ~src ~dst ~start ~finish)

let commit_task t ~proc ~start ~finish =
  Timeline.add t.procs.(proc).compute ~start ~finish

let retract_comm t ~src ~dst ~start ~finish =
  List.iter
    (fun (tl, start, finish) ->
      if finish > start then Timeline.remove tl ~start ~finish)
    (comm_occupancy t ~src ~dst ~start ~finish)

let retract_task t ~proc ~start ~finish =
  Timeline.remove t.procs.(proc).compute ~start ~finish

(* A snapshot is one Timeline mark per distinct timeline alive at capture
   time: 3 slots per processor (recv slot unused when it shares the send
   port) plus one per existing link.  Links created after the snapshot are
   rolled back to empty on restore; their hash-table entries and ids stay,
   which is harmless — ids only need to remain stable. *)
type snapshot = {
  proc_marks : Timeline.mark array;
  barrier_mark : Timeline.mark;
  link_marks : ((int * int) * Timeline.mark) list;
}

let snapshot t =
  let p = Array.length t.procs in
  let proc_marks = Array.make (3 * p) Timeline.origin in
  Array.iteri
    (fun i ps ->
      proc_marks.((3 * i) + 0) <- Timeline.checkpoint ps.compute;
      proc_marks.((3 * i) + 1) <- Timeline.checkpoint ps.send;
      if ps.recv != ps.send then
        proc_marks.((3 * i) + 2) <- Timeline.checkpoint ps.recv)
    t.procs;
  let barrier_mark =
    match t.barrier with
    | Some (tl, _) -> Timeline.checkpoint tl
    | None -> Timeline.origin
  in
  let link_marks =
    Hashtbl.fold
      (fun key (tl, _id) acc -> (key, Timeline.checkpoint tl) :: acc)
      t.links []
  in
  { proc_marks; barrier_mark; link_marks }

let restore t s =
  Array.iteri
    (fun i ps ->
      Timeline.rollback ps.compute s.proc_marks.((3 * i) + 0);
      Timeline.rollback ps.send s.proc_marks.((3 * i) + 1);
      if ps.recv != ps.send then
        Timeline.rollback ps.recv s.proc_marks.((3 * i) + 2))
    t.procs;
  (match t.barrier with
  | Some (tl, _) -> Timeline.rollback tl s.barrier_mark
  | None -> ());
  Hashtbl.iter
    (fun key (tl, _id) ->
      match List.assoc_opt key s.link_marks with
      | Some m -> Timeline.rollback tl m
      | None -> Timeline.rollback tl Timeline.origin)
    t.links

let copy t =
  let copy_proc ps =
    let send = Timeline.copy ps.send in
    let recv = if ps.recv == ps.send then send else Timeline.copy ps.recv in
    { ps with compute = Timeline.copy ps.compute; send; recv }
  in
  let barrier =
    Option.map (fun (tl, id) -> (Timeline.copy tl, id)) t.barrier
  in
  let links = Hashtbl.create (Hashtbl.length t.links) in
  Hashtbl.iter
    (fun key (tl, id) -> Hashtbl.add links key (Timeline.copy tl, id))
    t.links;
  { t with procs = Array.map copy_proc t.procs; barrier; links }
