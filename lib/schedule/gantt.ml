module Graph = Taskgraph.Graph

module Comm_model = Commmodel.Comm_model

(* Paint [label] over columns [c0, c1) of [row], clipping to length. *)
let paint row c0 c1 label =
  let len = Bytes.length row in
  let c0 = max 0 c0 and c1 = min len c1 in
  for c = c0 to c1 - 1 do
    Bytes.set row c '#'
  done;
  let lbl = label in
  let avail = c1 - c0 in
  if avail >= String.length lbl && avail > 0 then
    Bytes.blit_string lbl 0 row (c0 + ((avail - String.length lbl) / 2))
      (String.length lbl)

(* All rows are painted in two passes — one over tasks, one over the
   comm events — instead of rescanning every event list per processor. *)
let render ?(width = 72) ?show_ports s =
  let plat = Schedule.platform s in
  let model = Schedule.model s in
  let show_ports =
    match show_ports with
    | Some b -> b
    | None -> Comm_model.restricts_ports model
  in
  let span = max (Schedule.makespan s) 1e-9 in
  let col t = int_of_float (float_of_int width *. t /. span) in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "makespan = %g   (one column = %g time units)\n" span
       (span /. float_of_int width));
  let p = Platform.p plat in
  let cpu_rows = Array.init p (fun _ -> Bytes.make width '.') in
  for v = 0 to Graph.n_tasks (Schedule.graph s) - 1 do
    (match Schedule.placement s v with
    | Some pl when pl.finish > pl.start ->
        paint cpu_rows.(pl.proc) (col pl.start)
          (max (col pl.finish) (col pl.start + 1))
          (string_of_int v)
    | Some _ | None -> ());
    (* duplicate copies are labelled with a trailing prime *)
    List.iter
      (fun (c : Schedule.placement) ->
        if c.finish > c.start then
          paint cpu_rows.(c.proc) (col c.start)
            (max (col c.finish) (col c.start + 1))
            (string_of_int v ^ "'"))
      (Schedule.dup_copies s v)
  done;
  let send_rows, recv_rows =
    if not show_ports then ([||], [||])
    else begin
      let sends = Array.init p (fun _ -> Bytes.make width '.') in
      let recvs = Array.init p (fun _ -> Bytes.make width '.') in
      Schedule.iter_comms s ~f:(fun (c : Schedule.comm) ->
          if c.finish > c.start then begin
            paint sends.(c.src_proc) (col c.start)
              (max (col c.finish) (col c.start + 1))
              (Printf.sprintf ">%d" c.dst_proc);
            paint recvs.(c.dst_proc) (col c.start)
              (max (col c.finish) (col c.start + 1))
              (Printf.sprintf "<%d" c.src_proc)
          end);
      (sends, recvs)
    end
  in
  for q = 0 to p - 1 do
    Buffer.add_string buf
      (Printf.sprintf "P%-2d cpu  |%s|\n" q (Bytes.to_string cpu_rows.(q)));
    if show_ports then begin
      Buffer.add_string buf
        (Printf.sprintf "    send |%s|\n" (Bytes.to_string send_rows.(q)));
      Buffer.add_string buf
        (Printf.sprintf "    recv |%s|\n" (Bytes.to_string recv_rows.(q)))
    end
  done;
  Buffer.contents buf

let listing s =
  let n = Graph.n_tasks (Schedule.graph s) in
  let nc = Schedule.n_comms s in
  let dups =
    List.concat_map
      (fun v ->
        List.map
          (fun (c : Schedule.placement) -> (v, c))
          (Schedule.dup_copies s v))
      (List.init n Fun.id)
  in
  let nd = List.length dups in
  let events = Array.make (n + nc + nd) (0., "") in
  List.iteri
    (fun i ((v : int), (c : Schedule.placement)) ->
      events.(n + nc + i) <-
        ( c.start,
          Printf.sprintf "[%10.3f, %10.3f) P%d  exec v%d (copy)" c.start
            c.finish c.proc v ))
    dups;
  for v = 0 to n - 1 do
    events.(v) <-
      (match Schedule.placement s v with
      | Some pl ->
          ( pl.start,
            Printf.sprintf "[%10.3f, %10.3f) P%d  exec v%d" pl.start pl.finish
              pl.proc v )
      | None -> (infinity, Printf.sprintf "unplaced v%d" v))
  done;
  for i = 0 to nc - 1 do
    let c = Schedule.comm_at s i in
    events.(n + i) <-
      ( c.start,
        Printf.sprintf "[%10.3f, %10.3f) P%d->P%d  comm e%d" c.start c.finish
          c.src_proc c.dst_proc c.edge )
  done;
  (* Same order as the historical list sort: polymorphic compare on
     (start, line) pairs — equal starts tie-break on the line text. *)
  Array.sort compare events;
  let buf = Buffer.create (64 * (n + nc)) in
  Array.iter
    (fun (_, line) ->
      Buffer.add_string buf line;
      Buffer.add_char buf '\n')
    events;
  Buffer.contents buf
