module Graph = Taskgraph.Graph


type t = {
  makespan : float;
  sequential_time : float;
  speedup : float;
  speedup_bound : float;
  efficiency : float;
  n_comm_events : int;
  total_comm_time : float;
  n_phases : int;
  total_phase_time : float;
  n_duplicates : int;
  total_dup_time : float;
  total_busy_time : float;
  mean_utilization : float;
  proc_loads : float array;
  max_load_imbalance : float;
}

let compute s =
  let g = Schedule.graph s in
  let plat = Schedule.platform s in
  let p = Platform.p plat in
  let makespan = Schedule.makespan s in
  let sequential_time = Graph.total_weight g *. Platform.min_cycle_time plat in
  let proc_loads = Array.make p 0. in
  let n_duplicates = ref 0 in
  let total_dup_time = ref 0. in
  for v = 0 to Graph.n_tasks g - 1 do
    let pl = Schedule.placement_exn s v in
    proc_loads.(pl.proc) <- proc_loads.(pl.proc) +. (pl.finish -. pl.start);
    (* duplicate copies burn real processor time too *)
    List.iter
      (fun (c : Schedule.placement) ->
        incr n_duplicates;
        total_dup_time := !total_dup_time +. (c.finish -. c.start);
        proc_loads.(c.proc) <- proc_loads.(c.proc) +. (c.finish -. c.start))
      (Schedule.dup_copies s v)
  done;
  let total_busy_time = Array.fold_left ( +. ) 0. proc_loads in
  let speedup = if makespan > 0. then sequential_time /. makespan else 0. in
  let speedup_bound = Platform.speedup_bound plat in
  let max_load_imbalance =
    if makespan <= 0. then 0.
    else begin
      let worst = ref 0. in
      for q = 0 to p - 1 do
        (* Balanced share of the actually-executed time, weighted by speed. *)
        let share = Platform.balanced_fraction plat q *. total_busy_time in
        worst := max !worst (abs_float (proc_loads.(q) -. share) /. makespan)
      done;
      !worst
    end
  in
  {
    makespan;
    sequential_time;
    speedup;
    speedup_bound;
    efficiency = (if speedup_bound > 0. then speedup /. speedup_bound else 0.);
    n_comm_events = Schedule.n_comm_events s;
    total_comm_time = Schedule.total_comm_time s;
    n_phases = Schedule.n_phases s;
    total_phase_time = Schedule.total_phase_time s;
    n_duplicates = !n_duplicates;
    total_dup_time = !total_dup_time;
    total_busy_time;
    mean_utilization =
      (if makespan > 0. then total_busy_time /. (float_of_int p *. makespan)
       else 0.);
    proc_loads;
    max_load_imbalance;
  }

(* The phases line only appears when phases exist, so output under the
   seven port-regime models is byte-identical to before the BSP rung. *)
let pp fmt m =
  Format.fprintf fmt
    "@[<v>makespan: %g@ sequential: %g@ speedup: %.3f (bound %.2f, efficiency \
     %.1f%%)@ comm events: %d (total time %g)"
    m.makespan m.sequential_time m.speedup m.speedup_bound
    (100. *. m.efficiency) m.n_comm_events m.total_comm_time;
  if m.n_phases > 0 then
    Format.fprintf fmt "@ comm phases: %d (total time %g)" m.n_phases
      m.total_phase_time;
  (* like the phases line, only duplicated schedules show it *)
  if m.n_duplicates > 0 then
    Format.fprintf fmt "@ duplicates: %d (total time %g)" m.n_duplicates
      m.total_dup_time;
  Format.fprintf fmt "@ mean utilization: %.1f%%@]"
    (100. *. m.mean_utilization)

let to_compact_string m =
  Printf.sprintf "makespan=%g speedup=%.3f comms=%d util=%.1f%%" m.makespan
    m.speedup m.n_comm_events (100. *. m.mean_utilization)
