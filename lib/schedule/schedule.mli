(** Schedules: task placements plus per-hop communication events.

    A [Schedule.t] is the mutable object a heuristic builds and the
    immutable-once-finished result the evaluator consumes.  It records, for
    every task, the processor and start time chosen ([σ] and [alloc] of
    §2.1), and, for every remote edge, the communication events hop by hop.
    Commits keep the underlying {!Resource} timelines in sync, so builders
    can keep querying gap searches as they go. *)

type placement = { task : int; proc : int; start : float; finish : float }

type comm = {
  edge : int;  (** edge id in the task graph *)
  src_proc : int;
  dst_proc : int;
  start : float;
  finish : float;
}

type t

(** [create ?exec_time ~graph ~platform ~model] — [exec_time task proc]
    overrides the execution-time rule: by default a task runs for
    [w(task) * cycle_time(proc)] (the paper's related-machines model);
    supplying a matrix-backed function yields the {e unrelated} model of
    the original HEFT paper.  The override must be total and
    non-negative. *)
val create :
  ?exec_time:(int -> int -> float) ->
  graph:Taskgraph.Graph.t ->
  platform:Platform.t ->
  model:Commmodel.Comm_model.t ->
  unit ->
  t

(** The effective execution-time rule of this schedule. *)
val exec_duration : t -> task:int -> proc:int -> float

val graph : t -> Taskgraph.Graph.t
val platform : t -> Platform.t
val model : t -> Commmodel.Comm_model.t
val resource : t -> Resource.t

(** [place_task t ~task ~proc ~start] — the finish time is
    [start + w(task) * cycle_time(proc)]; marks the compute timeline busy.
    @raise Invalid_argument if the task is already placed or the slot
    overlaps committed work. *)
val place_task : t -> task:int -> proc:int -> start:float -> unit

(** [add_comm t ~edge ~src_proc ~dst_proc ~start] appends one hop of the
    edge's route; duration is
    [Comm_model.hop_span ~data:(data edge) ~hop_cost:(hop_cost src dst)]
    — [data × hop_cost] under the port regimes.  Hops must be added in
    route order.  Marks port timelines busy per the model.  Returns the
    hop finish time.

    [head] marks the hop as the first of a {e provenance chain} — one
    route-following delivery of the edge's data from a source copy to a
    destination processor (an edge carries several chains once tasks are
    duplicated).  When omitted, the hop is inferred to start a chain
    unless it extends the edge's previous hop ([prev.dst = src]); pass it
    explicitly when a chain legitimately begins where another ended. *)
val add_comm :
  ?head:bool -> t -> edge:int -> src_proc:int -> dst_proc:int -> start:float -> float

(** [add_comm_in_window t ~edge ~src_proc ~dst_proc ~start ~finish]
    records a communication event with an explicitly chosen window — the
    form BSP scheduling uses, where an edge's event spans its enclosing
    comm phase rather than a per-hop price.  Occupancy is still committed
    per the model's regime ({!Resource.commit_comm}). *)
val add_comm_in_window :
  ?head:bool ->
  t ->
  edge:int ->
  src_proc:int ->
  dst_proc:int ->
  start:float ->
  finish:float ->
  float

(** [add_phase t ~start ~finish] records a BSP communication phase and
    commits it on the phase busy set ({!Resource.commit_phase}).
    @raise Invalid_argument outside the BSP regime or on a negative
    duration. *)
val add_phase : t -> start:float -> finish:float -> unit

(** {2 Task duplication}

    A task may be placed as several {e copies} on distinct processors;
    it completes when its earliest copy does.  The classic single-copy
    accessors ({!placement}, {!proc_of_exn}, …) keep reporting one
    distinguished {e primary} copy — the first one committed — so
    singleton schedules behave bit-identically to the pre-duplication
    representation. *)

(** [place_copy t ~task ~proc ~start] places a copy of [task] on [proc].
    The first copy is exactly {!place_task}; later copies commit on the
    processor's compute timeline and are recorded alongside the primary.
    @raise Invalid_argument on a second copy on the same processor, or on
    an extra copy outside the port regime (BSP/latency phase accounting
    has no provenance rule for replicated producers). *)
val place_copy : t -> task:int -> proc:int -> start:float -> unit

(** [unplace_copy t ~task ~proc] retracts the copy of [task] on [proc] —
    the exact inverse of {!place_copy}.  Removing the primary while
    duplicates remain promotes the surviving copy with the earliest
    finish (ties to the lowest processor).
    @raise Invalid_argument if no copy of [task] runs on [proc]. *)
val unplace_copy : t -> task:int -> proc:int -> unit

(** Whether any task currently has more than one copy.  [false] on every
    schedule built by the single-copy heuristics — the cheap dispatch all
    copy-aware consumers use to stay on the historical code path. *)
val has_dups : t -> bool

(** Number of extra copies beyond the primaries, summed over tasks. *)
val n_dup_copies : t -> int

(** All copies of a task, primary first then duplicates in commit order;
    [[]] if unplaced. *)
val copies : t -> int -> placement list

(** Extra copies only (commit order) — empty for single-copy tasks. *)
val dup_copies : t -> int -> placement list

(** The copy of [task] running on [proc], if any. *)
val copy_on : t -> task:int -> proc:int -> placement option

(** Earliest finish over the task's copies — the task's completion time.
    Equals [finish_of_exn] for single-copy tasks.
    @raise Invalid_argument when the task is not placed. *)
val earliest_finish : t -> int -> float

val is_placed : t -> int -> bool
val placement : t -> int -> placement option

(** @raise Invalid_argument when the task is not placed. *)
val placement_exn : t -> int -> placement

(** Non-allocating placement reads; same [Invalid_argument] as
    {!placement_exn} on unplaced tasks. *)
val proc_of_exn : t -> int -> int

val start_of_exn : t -> int -> float
val finish_of_exn : t -> int -> float
val n_placed : t -> int
val all_placed : t -> bool

(** All communication events in commit order.  O(events) allocation —
    million-task consumers should stream with {!iter_comms} /
    {!comm_at} instead. *)
val comms : t -> comm list

(** [comm_at t i] is the [i]-th communication event in commit order,
    [0 <= i < n_comms t]. *)
val comm_at : t -> int -> comm

(** Whether the [i]-th communication event starts a provenance chain
    (see {!add_comm}).  Chain structure only matters to copy-aware
    consumers; single-copy edges carry exactly one chain. *)
val comm_head_at : t -> int -> bool

(** [iter_comms t ~f] applies [f] to every communication event in commit
    order without materializing the list. *)
val iter_comms : t -> f:(comm -> unit) -> unit

(** Hops recorded for one edge, in route order. *)
val comms_of_edge : t -> int -> comm list

(** [fold_comms_of_edge t edge ~init ~f] folds over the edge's hops in
    route order without building the list. *)
val fold_comms_of_edge : t -> int -> init:'a -> f:('a -> comm -> 'a) -> 'a

val n_comms_of_edge : t -> int -> int
val n_comm_events : t -> int

(** Alias of {!n_comm_events}. *)
val n_comms : t -> int

(** Total time during which at least the given edge hop occupies a port
    (sum of hop durations over all events). *)
val total_comm_time : t -> float

(** BSP communication phases in commit order (empty outside BSP). *)
val phases : t -> (float * float) list

(** [phase_at t i] is the [i]-th phase in commit order. *)
val phase_at : t -> int -> float * float

(** [iter_phases t ~f] applies [f start finish] to every phase in commit
    order. *)
val iter_phases : t -> f:(float -> float -> unit) -> unit

val n_phases : t -> int

(** Sum of phase durations. *)
val total_phase_time : t -> float

(** Completion time of the last task (0 for an empty schedule).  A
    duplicated task completes at its {e earliest} copy's finish.
    @raise Invalid_argument if some task is unplaced. *)
val makespan : t -> float

(** Ready time of edge data on a processor, i.e. when the dst may start as
    far as this edge is concerned: source finish for local edges, last hop
    arrival for remote ones. *)
val edge_available_at : t -> edge:int -> float

(** [unplace_task t task] retracts the task's placement — the exact
    inverse of {!place_task}.  The caller is responsible for first
    retracting anything that depended on the placement (successor
    placements, outgoing communications); the schedule does not check.
    @raise Invalid_argument if the task is not placed or still has
    duplicate copies ({!unplace_copy} them first). *)
val unplace_task : t -> int -> unit

(** [truncate_comms t ~down_to] retracts communication events newest-first
    until only the first [down_to] remain — the exact inverse of the
    {!add_comm}s that created them. *)
val truncate_comms : t -> down_to:int -> unit

(** [filter_comms t ~keep] retracts every communication event [c] with
    [not (keep c)], preserving the relative commit order (and therefore
    the per-edge route order) of the kept events.  Phases are left
    untouched — under BSP a phase may end up with fewer events than its
    [g·h + L] price accounts for, which the validator allows. *)
val filter_comms : t -> keep:(comm -> bool) -> unit

(** [filter_commsi] is {!filter_comms} with the commit-order index passed
    to [keep] — lets callers drop events identified positionally (e.g. a
    whole provenance chain) rather than by content. *)
val filter_commsi : t -> keep:(int -> comm -> bool) -> unit

(** [truncate_phases t ~down_to] retracts BSP phases newest-first until
    only the first [down_to] remain. *)
val truncate_phases : t -> down_to:int -> unit

(** A whole-schedule checkpoint: placement arrays plus one
    {!Resource.snapshot}.  O(n_tasks + p) to take — no timeline contents
    are copied, unlike {!copy}. *)
type snapshot

val snapshot : t -> snapshot

(** [restore t s] rewinds the schedule to its state at [snapshot]: every
    placement and communication committed since is retracted, in time
    proportional to the amount of work being undone.  Only additions are
    undone — restoring across an intervening {!unplace_task} /
    {!truncate_comms} of {e pre-snapshot} state is unsupported.  Bumps the
    [rollbacks] counter. *)
val restore : t -> snapshot -> unit

(** Deep copy: committing to the copy leaves the original untouched (the
    immutable graph and platform are shared). *)
val copy : t -> t

val pp : Format.formatter -> t -> unit
