open Prelude
module Graph = Taskgraph.Graph

module Comm_model = Commmodel.Comm_model

type placement = { task : int; proc : int; start : float; finish : float }

type comm = {
  edge : int;
  src_proc : int;
  dst_proc : int;
  start : float;
  finish : float;
}

type t = {
  graph : Graph.t;
  platform : Platform.t;
  model : Comm_model.t;
  exec_time : (int -> int -> float) option;
  resource : Resource.t;
  procs : int array; (* -1 = unplaced *)
  starts : float array;
  finishes : float array;
  comms : comm Vec.t;
  edge_comms : int list array; (* comm indices per edge, reverse order *)
  phases : (float * float) Vec.t; (* BSP comm phases, commit order *)
  mutable n_placed : int;
}

let create ?exec_time ~graph ~platform ~model () =
  let n = Graph.n_tasks graph in
  {
    graph;
    platform;
    model;
    exec_time;
    resource = Resource.create ~model ~p:(Platform.p platform);
    procs = Array.make n (-1);
    starts = Array.make n 0.;
    finishes = Array.make n 0.;
    comms = Vec.create ();
    edge_comms = Array.make (max (Graph.n_edges graph) 1) [];
    phases = Vec.create ();
    n_placed = 0;
  }

let exec_duration t ~task ~proc =
  match t.exec_time with
  | Some f ->
      let d = f task proc in
      if d < 0. || Float.is_nan d then
        invalid_arg "Schedule.exec_duration: negative execution time";
      d
  | None -> Graph.weight t.graph task *. Platform.cycle_time t.platform proc

let graph t = t.graph
let platform t = t.platform
let model t = t.model
let resource t = t.resource

let place_task t ~task ~proc ~start =
  if task < 0 || task >= Graph.n_tasks t.graph then
    invalid_arg "Schedule.place_task: bad task";
  if proc < 0 || proc >= Platform.p t.platform then
    invalid_arg "Schedule.place_task: bad processor";
  if t.procs.(task) >= 0 then invalid_arg "Schedule.place_task: already placed";
  if start < 0. then invalid_arg "Schedule.place_task: negative start";
  let finish = start +. exec_duration t ~task ~proc in
  Resource.commit_task t.resource ~proc ~start ~finish;
  t.procs.(task) <- proc;
  t.starts.(task) <- start;
  t.finishes.(task) <- finish;
  t.n_placed <- t.n_placed + 1

let add_comm_in_window t ~edge ~src_proc ~dst_proc ~start ~finish =
  if src_proc = dst_proc then invalid_arg "Schedule.add_comm: src = dst";
  Resource.commit_comm t.resource ~src:src_proc ~dst:dst_proc ~start ~finish;
  Vec.push t.comms { edge; src_proc; dst_proc; start; finish };
  t.edge_comms.(edge) <- (Vec.length t.comms - 1) :: t.edge_comms.(edge);
  finish

let add_comm t ~edge ~src_proc ~dst_proc ~start =
  let data = Graph.edge_data t.graph edge in
  let hop_cost = Platform.hop_cost t.platform ~src:src_proc ~dst:dst_proc in
  let finish = start +. Comm_model.hop_span t.model ~data ~hop_cost in
  add_comm_in_window t ~edge ~src_proc ~dst_proc ~start ~finish

let add_phase t ~start ~finish =
  if finish < start then invalid_arg "Schedule.add_phase: negative duration";
  Resource.commit_phase t.resource ~start ~finish;
  Vec.push t.phases (start, finish)

let is_placed t task = t.procs.(task) >= 0

let placement t task =
  if is_placed t task then
    Some { task; proc = t.procs.(task); start = t.starts.(task); finish = t.finishes.(task) }
  else None

let placement_exn t task =
  match placement t task with
  | Some p -> p
  | None -> invalid_arg (Printf.sprintf "Schedule: task %d not placed" task)

let check_placed t task =
  if task < 0 || task >= Graph.n_tasks t.graph || t.procs.(task) < 0 then
    invalid_arg (Printf.sprintf "Schedule: task %d not placed" task)

let proc_of_exn t task =
  check_placed t task;
  t.procs.(task)

let start_of_exn t task =
  check_placed t task;
  t.starts.(task)

let finish_of_exn t task =
  check_placed t task;
  t.finishes.(task)

let n_placed t = t.n_placed
let all_placed t = t.n_placed = Graph.n_tasks t.graph
let comms t = Vec.to_list t.comms

let comms_of_edge t edge =
  List.rev_map (fun i -> Vec.get t.comms i) t.edge_comms.(edge)

let n_comm_events t = Vec.length t.comms
let n_comms = n_comm_events
let comm_at t i = Vec.get t.comms i
let iter_comms t ~f = Vec.iter f t.comms

let n_comms_of_edge t edge = List.length t.edge_comms.(edge)

let fold_comms_of_edge t edge ~init ~f =
  (* [edge_comms] keeps indices newest-first; fold right restores route
     order without materializing the hop list. *)
  List.fold_right (fun i acc -> f acc (Vec.get t.comms i)) t.edge_comms.(edge) init

let phase_at t i = Vec.get t.phases i
let iter_phases t ~f = Vec.iter (fun (s, fin) -> f s fin) t.phases

let total_comm_time t =
  Vec.fold (fun acc (c : comm) -> acc +. (c.finish -. c.start)) 0. t.comms

let phases t = Vec.to_list t.phases
let n_phases t = Vec.length t.phases

let total_phase_time t =
  Vec.fold (fun acc (s, f) -> acc +. (f -. s)) 0. t.phases

let makespan t =
  if not (all_placed t) then invalid_arg "Schedule.makespan: unplaced tasks";
  Array.fold_left max 0. t.finishes

let edge_available_at t ~edge =
  let src = Graph.edge_src t.graph edge in
  match comms_of_edge t edge with
  | [] -> finish_of_exn t src
  | hops -> (List.nth hops (List.length hops - 1)).finish

let unplace_task t task =
  if task < 0 || task >= Graph.n_tasks t.graph then
    invalid_arg "Schedule.unplace_task: bad task";
  if t.procs.(task) < 0 then invalid_arg "Schedule.unplace_task: not placed";
  Resource.retract_task t.resource ~proc:t.procs.(task) ~start:t.starts.(task)
    ~finish:t.finishes.(task);
  t.procs.(task) <- -1;
  t.n_placed <- t.n_placed - 1

(* Drop the most recent comm.  Its index is necessarily the head of its
   edge's (reverse-order) index list. *)
let pop_comm t ~retract =
  let c = Vec.pop t.comms in
  if retract then
    Resource.retract_comm t.resource ~src:c.src_proc ~dst:c.dst_proc
      ~start:c.start ~finish:c.finish;
  match t.edge_comms.(c.edge) with
  | _ :: rest -> t.edge_comms.(c.edge) <- rest
  | [] -> assert false

let truncate_comms t ~down_to =
  if down_to < 0 || down_to > Vec.length t.comms then
    invalid_arg "Schedule.truncate_comms: bad length";
  while Vec.length t.comms > down_to do
    pop_comm t ~retract:true
  done

let pop_phase t ~retract =
  let start, finish = Vec.pop t.phases in
  if retract then Resource.retract_phase t.resource ~start ~finish

let truncate_phases t ~down_to =
  if down_to < 0 || down_to > Vec.length t.phases then
    invalid_arg "Schedule.truncate_phases: bad length";
  while Vec.length t.phases > down_to do
    pop_phase t ~retract:true
  done

let filter_comms t ~keep =
  let kept =
    Vec.fold
      (fun acc (c : comm) ->
        if keep c then c :: acc
        else begin
          Resource.retract_comm t.resource ~src:c.src_proc ~dst:c.dst_proc
            ~start:c.start ~finish:c.finish;
          acc
        end)
      [] t.comms
  in
  Vec.clear t.comms;
  Array.fill t.edge_comms 0 (Array.length t.edge_comms) [];
  List.iter
    (fun (c : comm) ->
      Vec.push t.comms c;
      t.edge_comms.(c.edge) <- (Vec.length t.comms - 1) :: t.edge_comms.(c.edge))
    (List.rev kept)

type snapshot = {
  res : Resource.snapshot;
  s_procs : int array;
  s_starts : float array;
  s_finishes : float array;
  s_n_placed : int;
  s_n_comms : int;
  s_n_phases : int;
}

let snapshot t =
  {
    res = Resource.snapshot t.resource;
    s_procs = Array.copy t.procs;
    s_starts = Array.copy t.starts;
    s_finishes = Array.copy t.finishes;
    s_n_placed = t.n_placed;
    s_n_comms = Vec.length t.comms;
    s_n_phases = Vec.length t.phases;
  }

let restore t s =
  if Vec.length t.comms < s.s_n_comms then
    invalid_arg "Schedule.restore: comms were truncated past the snapshot";
  if Vec.length t.phases < s.s_n_phases then
    invalid_arg "Schedule.restore: phases were truncated past the snapshot";
  Obs.Counters.rollback ();
  (* The resource restore already removes every post-snapshot interval, so
     the comm events are popped without retracting them a second time. *)
  Resource.restore t.resource s.res;
  Array.blit s.s_procs 0 t.procs 0 (Array.length t.procs);
  Array.blit s.s_starts 0 t.starts 0 (Array.length t.starts);
  Array.blit s.s_finishes 0 t.finishes 0 (Array.length t.finishes);
  t.n_placed <- s.s_n_placed;
  while Vec.length t.comms > s.s_n_comms do
    pop_comm t ~retract:false
  done;
  while Vec.length t.phases > s.s_n_phases do
    pop_phase t ~retract:false
  done

let copy t =
  Obs.Counters.copy ();
  {
    t with
    resource = Resource.copy t.resource;
    procs = Array.copy t.procs;
    starts = Array.copy t.starts;
    finishes = Array.copy t.finishes;
    comms = Vec.copy t.comms;
    edge_comms = Array.copy t.edge_comms;
    phases = Vec.copy t.phases;
  }

let pp fmt t =
  Format.fprintf fmt "@[<v>schedule of %s on %s (%s): %d/%d tasks placed, %d comms@]"
    (Graph.name t.graph) (Platform.name t.platform) (Comm_model.name t.model)
    t.n_placed (Graph.n_tasks t.graph) (Vec.length t.comms)
