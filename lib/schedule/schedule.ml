open Prelude
module Graph = Taskgraph.Graph

module Comm_model = Commmodel.Comm_model

type placement = { task : int; proc : int; start : float; finish : float }

type comm = {
  edge : int;
  src_proc : int;
  dst_proc : int;
  start : float;
  finish : float;
}

type t = {
  graph : Graph.t;
  platform : Platform.t;
  model : Comm_model.t;
  exec_time : (int -> int -> float) option;
  resource : Resource.t;
  procs : int array; (* -1 = unplaced *)
  starts : float array;
  finishes : float array;
  comms : comm Vec.t;
  heads : bool Vec.t; (* parallel to [comms]: chain-head flags *)
  edge_comms : int list array; (* comm indices per edge, reverse order *)
  phases : (float * float) Vec.t; (* BSP comm phases, commit order *)
  mutable n_placed : int;
  dups : placement list array; (* duplicate copies beyond the primary, newest first *)
  mutable n_dups : int;
}

let create ?exec_time ~graph ~platform ~model () =
  let n = Graph.n_tasks graph in
  {
    graph;
    platform;
    model;
    exec_time;
    resource = Resource.create ~model ~p:(Platform.p platform);
    procs = Array.make n (-1);
    starts = Array.make n 0.;
    finishes = Array.make n 0.;
    comms = Vec.create ();
    heads = Vec.create ();
    edge_comms = Array.make (max (Graph.n_edges graph) 1) [];
    phases = Vec.create ();
    n_placed = 0;
    dups = Array.make n [];
    n_dups = 0;
  }

let exec_duration t ~task ~proc =
  match t.exec_time with
  | Some f ->
      let d = f task proc in
      if d < 0. || Float.is_nan d then
        invalid_arg "Schedule.exec_duration: negative execution time";
      d
  | None -> Graph.weight t.graph task *. Platform.cycle_time t.platform proc

let graph t = t.graph
let platform t = t.platform
let model t = t.model
let resource t = t.resource

let place_task t ~task ~proc ~start =
  if task < 0 || task >= Graph.n_tasks t.graph then
    invalid_arg "Schedule.place_task: bad task";
  if proc < 0 || proc >= Platform.p t.platform then
    invalid_arg "Schedule.place_task: bad processor";
  if t.procs.(task) >= 0 then invalid_arg "Schedule.place_task: already placed";
  if start < 0. then invalid_arg "Schedule.place_task: negative start";
  let finish = start +. exec_duration t ~task ~proc in
  Resource.commit_task t.resource ~proc ~start ~finish;
  t.procs.(task) <- proc;
  t.starts.(task) <- start;
  t.finishes.(task) <- finish;
  t.n_placed <- t.n_placed + 1

let add_comm_in_window ?head t ~edge ~src_proc ~dst_proc ~start ~finish =
  if src_proc = dst_proc then invalid_arg "Schedule.add_comm: src = dst";
  (* A hop starts a new provenance chain unless it extends the edge's
     previous hop; explicit [head] overrides the inference (duplication
     can legitimately start a chain where another one ended). *)
  let head =
    match head with
    | Some h -> h
    | None -> (
        match t.edge_comms.(edge) with
        | [] -> true
        | i :: _ -> (Vec.get t.comms i).dst_proc <> src_proc)
  in
  Resource.commit_comm t.resource ~src:src_proc ~dst:dst_proc ~start ~finish;
  Vec.push t.comms { edge; src_proc; dst_proc; start; finish };
  Vec.push t.heads head;
  t.edge_comms.(edge) <- (Vec.length t.comms - 1) :: t.edge_comms.(edge);
  finish

let add_comm ?head t ~edge ~src_proc ~dst_proc ~start =
  let data = Graph.edge_data t.graph edge in
  let hop_cost = Platform.hop_cost t.platform ~src:src_proc ~dst:dst_proc in
  let finish = start +. Comm_model.hop_span t.model ~data ~hop_cost in
  add_comm_in_window ?head t ~edge ~src_proc ~dst_proc ~start ~finish

let add_phase t ~start ~finish =
  if finish < start then invalid_arg "Schedule.add_phase: negative duration";
  Resource.commit_phase t.resource ~start ~finish;
  Vec.push t.phases (start, finish)

let is_placed t task = t.procs.(task) >= 0

let placement t task =
  if is_placed t task then
    Some { task; proc = t.procs.(task); start = t.starts.(task); finish = t.finishes.(task) }
  else None

let placement_exn t task =
  match placement t task with
  | Some p -> p
  | None -> invalid_arg (Printf.sprintf "Schedule: task %d not placed" task)

let check_placed t task =
  if task < 0 || task >= Graph.n_tasks t.graph || t.procs.(task) < 0 then
    invalid_arg (Printf.sprintf "Schedule: task %d not placed" task)

let proc_of_exn t task =
  check_placed t task;
  t.procs.(task)

let start_of_exn t task =
  check_placed t task;
  t.starts.(task)

let finish_of_exn t task =
  check_placed t task;
  t.finishes.(task)

(* Duplication: a task may run as several copies on distinct processors.
   The arrays above keep holding one distinguished {e primary} copy so that
   every single-copy consumer (and the bit-pinned goldens) sees exactly the
   historical representation; extra copies live in [dups].  Duplication is a
   port-regime notion here — BSP/latency phase accounting has no provenance
   story for replicated producers. *)

let place_copy t ~task ~proc ~start =
  if t.procs.(task) < 0 then place_task t ~task ~proc ~start
  else begin
    if t.model.Comm_model.regime <> Comm_model.Port then
      invalid_arg "Schedule.place_copy: duplication requires a port-regime model";
    if proc < 0 || proc >= Platform.p t.platform then
      invalid_arg "Schedule.place_copy: bad processor";
    if start < 0. then invalid_arg "Schedule.place_copy: negative start";
    if
      t.procs.(task) = proc
      || List.exists (fun (c : placement) -> c.proc = proc) t.dups.(task)
    then invalid_arg "Schedule.place_copy: copy already on this processor";
    let finish = start +. exec_duration t ~task ~proc in
    Resource.commit_task t.resource ~proc ~start ~finish;
    t.dups.(task) <- { task; proc; start; finish } :: t.dups.(task);
    t.n_dups <- t.n_dups + 1
  end

let has_dups t = t.n_dups > 0
let n_dup_copies t = t.n_dups

(* Extra copies of [task] in commit order (oldest first). *)
let dup_copies t task = List.rev t.dups.(task)

let copies t task =
  match placement t task with
  | None -> []
  | Some pl -> pl :: dup_copies t task

let copy_on t ~task ~proc =
  if t.procs.(task) = proc then placement t task
  else List.find_opt (fun (c : placement) -> c.proc = proc) t.dups.(task)

let earliest_finish t task =
  check_placed t task;
  List.fold_left
    (fun acc (c : placement) -> if c.finish < acc then c.finish else acc)
    t.finishes.(task) t.dups.(task)

let unplace_copy t ~task ~proc =
  check_placed t task;
  if t.procs.(task) = proc then begin
    Resource.retract_task t.resource ~proc ~start:t.starts.(task)
      ~finish:t.finishes.(task);
    match t.dups.(task) with
    | [] ->
        t.procs.(task) <- -1;
        t.n_placed <- t.n_placed - 1
    | l ->
        (* Promote the surviving copy with the earliest finish (ties to the
           lowest processor) so [placement] stays meaningful. *)
        let best =
          List.fold_left
            (fun (b : placement) (c : placement) ->
              if c.finish < b.finish || (c.finish = b.finish && c.proc < b.proc)
              then c
              else b)
            (List.hd l) (List.tl l)
        in
        t.procs.(task) <- best.proc;
        t.starts.(task) <- best.start;
        t.finishes.(task) <- best.finish;
        t.dups.(task) <- List.filter (fun (c : placement) -> c != best) l;
        t.n_dups <- t.n_dups - 1
  end
  else
    match
      List.find_opt (fun (c : placement) -> c.proc = proc) t.dups.(task)
    with
    | None ->
        invalid_arg
          (Printf.sprintf "Schedule.unplace_copy: task %d has no copy on %d"
             task proc)
    | Some c ->
        Resource.retract_task t.resource ~proc ~start:c.start ~finish:c.finish;
        t.dups.(task) <-
          List.filter (fun (d : placement) -> d != c) t.dups.(task);
        t.n_dups <- t.n_dups - 1

let n_placed t = t.n_placed
let all_placed t = t.n_placed = Graph.n_tasks t.graph
let comms t = Vec.to_list t.comms

let comms_of_edge t edge =
  List.rev_map (fun i -> Vec.get t.comms i) t.edge_comms.(edge)

let n_comm_events t = Vec.length t.comms
let n_comms = n_comm_events
let comm_at t i = Vec.get t.comms i
let comm_head_at t i = Vec.get t.heads i
let iter_comms t ~f = Vec.iter f t.comms

let n_comms_of_edge t edge = List.length t.edge_comms.(edge)

let fold_comms_of_edge t edge ~init ~f =
  (* [edge_comms] keeps indices newest-first; fold right restores route
     order without materializing the hop list. *)
  List.fold_right (fun i acc -> f acc (Vec.get t.comms i)) t.edge_comms.(edge) init

let phase_at t i = Vec.get t.phases i
let iter_phases t ~f = Vec.iter (fun (s, fin) -> f s fin) t.phases

let total_comm_time t =
  Vec.fold (fun acc (c : comm) -> acc +. (c.finish -. c.start)) 0. t.comms

let phases t = Vec.to_list t.phases
let n_phases t = Vec.length t.phases

let total_phase_time t =
  Vec.fold (fun acc (s, f) -> acc +. (f -. s)) 0. t.phases

let makespan t =
  if not (all_placed t) then invalid_arg "Schedule.makespan: unplaced tasks";
  if t.n_dups = 0 then Array.fold_left max 0. t.finishes
  else begin
    (* A duplicated task completes when its earliest copy does. *)
    let m = ref 0. in
    for v = 0 to Array.length t.finishes - 1 do
      let f = earliest_finish t v in
      if f > !m then m := f
    done;
    !m
  end

let edge_available_at t ~edge =
  let src = Graph.edge_src t.graph edge in
  match comms_of_edge t edge with
  | [] -> finish_of_exn t src
  | hops -> (List.nth hops (List.length hops - 1)).finish

let unplace_task t task =
  if task < 0 || task >= Graph.n_tasks t.graph then
    invalid_arg "Schedule.unplace_task: bad task";
  if t.procs.(task) < 0 then invalid_arg "Schedule.unplace_task: not placed";
  if t.dups.(task) <> [] then
    invalid_arg
      "Schedule.unplace_task: task has duplicate copies (unplace_copy them \
       first)";
  Resource.retract_task t.resource ~proc:t.procs.(task) ~start:t.starts.(task)
    ~finish:t.finishes.(task);
  t.procs.(task) <- -1;
  t.n_placed <- t.n_placed - 1

(* Drop the most recent comm.  Its index is necessarily the head of its
   edge's (reverse-order) index list. *)
let pop_comm t ~retract =
  let c = Vec.pop t.comms in
  let (_ : bool) = Vec.pop t.heads in
  if retract then
    Resource.retract_comm t.resource ~src:c.src_proc ~dst:c.dst_proc
      ~start:c.start ~finish:c.finish;
  match t.edge_comms.(c.edge) with
  | _ :: rest -> t.edge_comms.(c.edge) <- rest
  | [] -> assert false

let truncate_comms t ~down_to =
  if down_to < 0 || down_to > Vec.length t.comms then
    invalid_arg "Schedule.truncate_comms: bad length";
  while Vec.length t.comms > down_to do
    pop_comm t ~retract:true
  done

let pop_phase t ~retract =
  let start, finish = Vec.pop t.phases in
  if retract then Resource.retract_phase t.resource ~start ~finish

let truncate_phases t ~down_to =
  if down_to < 0 || down_to > Vec.length t.phases then
    invalid_arg "Schedule.truncate_phases: bad length";
  while Vec.length t.phases > down_to do
    pop_phase t ~retract:true
  done

let filter_commsi t ~keep =
  let kept = ref [] in
  for i = Vec.length t.comms - 1 downto 0 do
    let c = Vec.get t.comms i in
    if keep i c then kept := (c, Vec.get t.heads i) :: !kept
    else
      Resource.retract_comm t.resource ~src:c.src_proc ~dst:c.dst_proc
        ~start:c.start ~finish:c.finish
  done;
  Vec.clear t.comms;
  Vec.clear t.heads;
  Array.fill t.edge_comms 0 (Array.length t.edge_comms) [];
  List.iter
    (fun ((c : comm), head) ->
      Vec.push t.comms c;
      Vec.push t.heads head;
      t.edge_comms.(c.edge) <- (Vec.length t.comms - 1) :: t.edge_comms.(c.edge))
    !kept

let filter_comms t ~keep = filter_commsi t ~keep:(fun _ c -> keep c)

type snapshot = {
  res : Resource.snapshot;
  s_procs : int array;
  s_starts : float array;
  s_finishes : float array;
  s_n_placed : int;
  s_n_comms : int;
  s_n_phases : int;
  s_dups : placement list array;
  s_n_dups : int;
}

let snapshot t =
  {
    res = Resource.snapshot t.resource;
    s_procs = Array.copy t.procs;
    s_starts = Array.copy t.starts;
    s_finishes = Array.copy t.finishes;
    s_n_placed = t.n_placed;
    s_n_comms = Vec.length t.comms;
    s_n_phases = Vec.length t.phases;
    s_dups = Array.copy t.dups;
    s_n_dups = t.n_dups;
  }

let restore t s =
  if Vec.length t.comms < s.s_n_comms then
    invalid_arg "Schedule.restore: comms were truncated past the snapshot";
  if Vec.length t.phases < s.s_n_phases then
    invalid_arg "Schedule.restore: phases were truncated past the snapshot";
  Obs.Counters.rollback ();
  (* The resource restore already removes every post-snapshot interval, so
     the comm events are popped without retracting them a second time. *)
  Resource.restore t.resource s.res;
  Array.blit s.s_procs 0 t.procs 0 (Array.length t.procs);
  Array.blit s.s_starts 0 t.starts 0 (Array.length t.starts);
  Array.blit s.s_finishes 0 t.finishes 0 (Array.length t.finishes);
  Array.blit s.s_dups 0 t.dups 0 (Array.length t.dups);
  t.n_dups <- s.s_n_dups;
  t.n_placed <- s.s_n_placed;
  while Vec.length t.comms > s.s_n_comms do
    pop_comm t ~retract:false
  done;
  while Vec.length t.phases > s.s_n_phases do
    pop_phase t ~retract:false
  done

let copy t =
  Obs.Counters.copy ();
  {
    t with
    resource = Resource.copy t.resource;
    procs = Array.copy t.procs;
    starts = Array.copy t.starts;
    finishes = Array.copy t.finishes;
    comms = Vec.copy t.comms;
    heads = Vec.copy t.heads;
    edge_comms = Array.copy t.edge_comms;
    phases = Vec.copy t.phases;
    dups = Array.copy t.dups;
  }

let pp fmt t =
  Format.fprintf fmt "@[<v>schedule of %s on %s (%s): %d/%d tasks placed, %d comms@]"
    (Graph.name t.graph) (Platform.name t.platform) (Comm_model.name t.model)
    t.n_placed (Graph.n_tasks t.graph) (Vec.length t.comms)
