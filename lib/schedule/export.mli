(** Schedule export for external tooling.

    Two formats:

    - {e Chrome trace} (the [chrome://tracing] / Perfetto JSON array
      format): each task execution and each communication hop becomes a
      complete event ([ph = "X"]), with one trace process per processor
      and threads for compute / send port / receive port, so the one-port
      serialisation is directly visible on the timeline;
    - {e CSV}: one row per event, for spreadsheets and plotting scripts. *)

(** [to_chrome_trace ?time_unit s] — JSON string.  Events are emitted in
    chronological order; [time_unit] scales schedule time to microseconds
    (default 1.0, i.e. one schedule time unit = 1 µs). *)
val to_chrome_trace : ?time_unit:float -> Schedule.t -> string

(** Columns: [kind,name,processor,resource,start,finish,duration] where
    [kind] is [task] or [comm] and [resource] is [cpu], [send] or [recv]
    (communications appear twice: once per endpoint port). *)
val to_csv : Schedule.t -> string

(** [write_file path contents] — tiny convenience used by the CLI. *)
val write_file : string -> string -> unit

(** MD5 hex digest of the complete plan: makespan, every placement
    ([%h], so bit-exact), every communication hop in commit order and
    every BSP phase.  Two schedules fingerprint equal iff they are the
    same plan bit for bit — the determinism and offline-equivalence
    contract of [scheduld] (see [doc/scheduld.md]) and of
    [schedcli run --fingerprint] compare on this.  Unplaced tasks
    render as ["-"], so partial schedules are fingerprintable too. *)
val fingerprint : Schedule.t -> string
