(** Schedule quality metrics.

    The paper's figures plot the speedup over the fastest processor's
    sequential time (§5.2); this module computes that ratio along with the
    supporting quantities the analysis discusses (communication counts,
    load balance, idle time). *)

type t = {
  makespan : float;
  sequential_time : float;
      (** total weight executed on the fastest processor *)
  speedup : float;  (** sequential_time / makespan *)
  speedup_bound : float;
      (** the platform's perfect-balance bound (7.6 on the paper platform) *)
  efficiency : float;  (** speedup / speedup_bound *)
  n_comm_events : int;
  total_comm_time : float;
  n_phases : int;  (** BSP comm phases (0 outside the BSP regime) *)
  total_phase_time : float;  (** sum of phase durations *)
  n_duplicates : int;  (** duplicate task copies (0 on single-copy schedules) *)
  total_dup_time : float;  (** execution time spent on duplicate copies *)
  total_busy_time : float;
      (** sum over processors of task execution time, duplicates included *)
  mean_utilization : float;
      (** total_busy_time / (p * makespan) *)
  proc_loads : float array;
      (** per-processor total execution time *)
  max_load_imbalance : float;
      (** max over processors of |load - balanced share| / makespan *)
}

val compute : Schedule.t -> t
val pp : Format.formatter -> t -> unit

(** One-line summary used by the CLI. *)
val to_compact_string : t -> string
