(** Registry of the §5 testbeds, keyed by the names used in the paper. *)

type t = {
  name : string;
  build : n:int -> ccr:float -> Taskgraph.Graph.t;
  paper_b : int;
      (** the experimentally best chunk size B reported in §5.3 *)
  min_n : int;  (** smallest meaningful problem size *)
}

(** The six testbeds in the paper's presentation order:
    LU (B=4), LAPLACE (B=38), STENCIL (B=38), FORK-JOIN (B=38),
    DOOLITTLE (B=20), LDMt (B=20). *)
val all : t list

val names : string list

(** Case-insensitive lookup.  Besides the six paper testbeds, accepts
    synthetic specs of the form ["layered:<layers>:<width>"] — a random
    layered DAG seeded deterministically from the two integers, whose
    [build] ignores [~n] (the spec fixes the size) and scales edge
    volumes by [~ccr].
    @raise Invalid_argument on an unknown name or a malformed layered
    spec. *)
val find : string -> t
