module Graph = Taskgraph.Graph

(* Every kernel communicates the data its source task just produced, so
   the edge volume is always [ccr * w(src)] (§5.2). *)
let build ~name ~weights ~links ~ccr =
  let edges = List.map (fun (src, dst) -> (src, dst, ccr *. weights.(src))) links in
  Graph.create ~name ~weights ~edges ()

(* The large-instance kernels (lu / laplace / stencil are the testbeds
   the scale bench pushes to 10^6 tasks) fill flat edge arrays in a
   count-then-fill pass and hand them to [Graph.of_arrays] — no
   association lists, no per-edge boxing.  [emit] must yield exactly
   [n_edges] (src, dst) pairs. *)
let build_arrays ~name ~weights ~n_edges ~emit ~ccr =
  let edge_srcs = Array.make n_edges 0 in
  let edge_dsts = Array.make n_edges 0 in
  let edge_datas = Array.make n_edges 0. in
  let k = ref 0 in
  emit (fun src dst ->
      edge_srcs.(!k) <- src;
      edge_dsts.(!k) <- dst;
      edge_datas.(!k) <- ccr *. weights.(src);
      incr k);
  assert (!k = n_edges);
  Graph.of_arrays ~name ~weights ~edge_srcs ~edge_dsts ~edge_datas ()

let fork_join ~n ~ccr =
  if n < 1 then invalid_arg "Kernels.fork_join: n < 1";
  (* task 0 = source, 1..n = intermediate, n+1 = sink *)
  let weights = Array.make (n + 2) 1. in
  let links =
    List.init n (fun i -> (0, i + 1)) @ List.init n (fun i -> (i + 1, n + 1))
  in
  build ~name:(Printf.sprintf "fork-join-%d" n) ~weights ~links ~ccr

let grid_id ~n i j = (i * n) + j

let laplace ~n ~ccr =
  if n < 1 then invalid_arg "Kernels.laplace: n < 1";
  let weights = Array.make (n * n) 1. in
  build_arrays
    ~name:(Printf.sprintf "laplace-%d" n)
    ~weights
    ~n_edges:(2 * n * (n - 1))
    ~emit:(fun add ->
      for i = 0 to n - 1 do
        for j = 0 to n - 1 do
          if i > 0 then add (grid_id ~n (i - 1) j) (grid_id ~n i j);
          if j > 0 then add (grid_id ~n i (j - 1)) (grid_id ~n i j)
        done
      done)
    ~ccr

let stencil ~n ~ccr =
  if n < 1 then invalid_arg "Kernels.stencil: n < 1";
  let weights = Array.make (n * n) 1. in
  build_arrays
    ~name:(Printf.sprintf "stencil-%d" n)
    ~weights
    ~n_edges:(if n = 1 then 0 else (n - 1) * ((3 * n) - 2))
    ~emit:(fun add ->
      for i = 1 to n - 1 do
        for j = 0 to n - 1 do
          for dj = -1 to 1 do
            let j' = j + dj in
            if j' >= 0 && j' < n then add (grid_id ~n (i - 1) j') (grid_id ~n i j)
          done
        done
      done)
    ~ccr

(* Triangular update family over tasks (k, j), 1 <= k < j <= n: level k
   updates columns k+1..n.  The pivot information travels as a pipeline
   along the level ((k, j) -> (k, j+1)) rather than as a single broadcast —
   the fan-out form would serialise p-1 large messages through one send
   port every level and no one-port schedule could stay parallel (the
   classical systolic Gaussian-elimination DAGs are pipelined for exactly
   this reason).  Columns flow down between levels ((k, j) -> (k+1, j)). *)
let triangular ~name ~n ~level_weight ~ccr =
  if n < 2 then invalid_arg (name ^ ": n < 2");
  (* id (k, j): levels k = 1..n-1, j = k+1..n *)
  let offset = Array.make n 0 in
  let count = ref 0 in
  for k = 1 to n - 1 do
    offset.(k) <- !count;
    count := !count + (n - k)
  done;
  let id k j = offset.(k) + (j - k - 1) in
  let weights = Array.make !count 0. in
  for k = 1 to n - 1 do
    for j = k + 1 to n do
      weights.(id k j) <- level_weight k
    done
  done;
  let n_edges = ref 0 in
  for k = 1 to n - 1 do
    for j = k + 1 to n do
      if j + 1 <= n then incr n_edges;
      if k + 1 < j then incr n_edges
    done
  done;
  build_arrays
    ~name:(Printf.sprintf "%s-%d" name n)
    ~weights ~n_edges:!n_edges
    ~emit:(fun add ->
      for k = 1 to n - 1 do
        for j = k + 1 to n do
          if j + 1 <= n then add (id k j) (id k (j + 1));
          if k + 1 < j then add (id k j) (id (k + 1) j)
        done
      done)
    ~ccr

let lu ~n ~ccr =
  triangular ~name:"lu" ~n ~level_weight:(fun k -> float_of_int (n - k)) ~ccr

(* DOOLITTLE: same triangle but the work grows with the level (w = k) and
   a task consumes the two previous-level updates it overlaps (columns
   j-1 and j), so every level is immediately wide (row-oriented reduction). *)
let doolittle ~n ~ccr =
  if n < 2 then invalid_arg "Kernels.doolittle: n < 2";
  let offset = Array.make n 0 in
  let count = ref 0 in
  for k = 1 to n - 1 do
    offset.(k) <- !count;
    count := !count + (n - k)
  done;
  let id k j = offset.(k) + (j - k - 1) in
  let weights = Array.make !count 0. in
  for k = 1 to n - 1 do
    for j = k + 1 to n do
      weights.(id k j) <- float_of_int k
    done
  done;
  let links = ref [] in
  for k = 2 to n - 1 do
    for j = k + 1 to n do
      links := (id (k - 1) j, id k j) :: !links;
      links := (id (k - 1) (j - 1), id k j) :: !links
    done
  done;
  build ~name:(Printf.sprintf "doolittle-%d" n) ~weights
    ~links:(List.sort_uniq compare !links) ~ccr

(* Same pipelined triangle as [triangular] but the weight depends on the
   column distance j - k, not just the level, so it cannot reuse
   [level_weight]. *)
let cholesky ~n ~ccr =
  if n < 2 then invalid_arg "Kernels.cholesky: n < 2";
  let offset = Array.make n 0 in
  let count = ref 0 in
  for k = 1 to n - 1 do
    offset.(k) <- !count;
    count := !count + (n - k)
  done;
  let id k j = offset.(k) + (j - k - 1) in
  let weights = Array.make !count 0. in
  for k = 1 to n - 1 do
    for j = k + 1 to n do
      weights.(id k j) <- float_of_int (j - k)
    done
  done;
  let links = ref [] in
  for k = 1 to n - 1 do
    for j = k + 1 to n do
      if j + 1 <= n then links := (id k j, id k (j + 1)) :: !links;
      if k + 1 < j then links := (id k j, id (k + 1) j) :: !links
    done
  done;
  build ~name:(Printf.sprintf "cholesky-%d" n) ~weights ~links:(List.rev !links)
    ~ccr

(* LDMt: the wavefront triangle including the diagonal tasks (k, k) that
   compute D, with growing weights (w = k): (k, j) -> (k, j+1) pipelines
   the row of M^t, (k, j) -> (k+1, j) passes the updated column down. *)
let ldmt ~n ~ccr =
  if n < 2 then invalid_arg "Kernels.ldmt: n < 2";
  (* ids: levels k = 1..n-1, j = k..n (diagonal included) *)
  let offset = Array.make n 0 in
  let count = ref 0 in
  for k = 1 to n - 1 do
    offset.(k) <- !count;
    count := !count + (n - k + 1)
  done;
  let id k j = offset.(k) + (j - k) in
  let weights = Array.make !count 0. in
  for k = 1 to n - 1 do
    for j = k to n do
      weights.(id k j) <- float_of_int k
    done
  done;
  let links = ref [] in
  for k = 1 to n - 1 do
    for j = k to n do
      if j + 1 <= n then links := (id k j, id k (j + 1)) :: !links;
      if k + 1 <= n - 1 && j >= k + 1 then
        links := (id k j, id (k + 1) j) :: !links
    done
  done;
  build ~name:(Printf.sprintf "ldmt-%d" n) ~weights ~links:(List.rev !links) ~ccr
