type t = {
  name : string;
  build : n:int -> ccr:float -> Taskgraph.Graph.t;
  paper_b : int;
  min_n : int;
}

let all =
  [
    { name = "lu"; build = (fun ~n ~ccr -> Kernels.lu ~n ~ccr); paper_b = 4; min_n = 2 };
    {
      name = "laplace";
      build = (fun ~n ~ccr -> Kernels.laplace ~n ~ccr);
      paper_b = 38;
      min_n = 1;
    };
    {
      name = "stencil";
      build = (fun ~n ~ccr -> Kernels.stencil ~n ~ccr);
      paper_b = 38;
      min_n = 1;
    };
    {
      name = "fork-join";
      build = (fun ~n ~ccr -> Kernels.fork_join ~n ~ccr);
      paper_b = 38;
      min_n = 1;
    };
    {
      name = "doolittle";
      build = (fun ~n ~ccr -> Kernels.doolittle ~n ~ccr);
      paper_b = 20;
      min_n = 2;
    };
    {
      name = "ldmt";
      build = (fun ~n ~ccr -> Kernels.ldmt ~n ~ccr);
      paper_b = 20;
      min_n = 2;
    };
  ]

let names = List.map (fun t -> t.name) all

(* "layered:L:W" — a random layered DAG with L layers of up to W tasks,
   seeded deterministically from (L, W) so the same spec always builds
   the same graph.  [~n] is ignored (the spec fixes the size); [~ccr]
   scales the edge volumes.  The edge probability shrinks with the
   width so the expected in-degree stays bounded and 10^6-task
   instances stay schedulable. *)
let layered_of_spec spec l w =
  let bad reason =
    invalid_arg
      (Printf.sprintf
         "Suite.find: malformed layered spec %S (%s); expected \
          layered:<layers>:<width> with positive integers"
         spec reason)
  in
  let layers =
    match int_of_string_opt l with
    | Some k when k >= 1 -> k
    | Some _ -> bad "layers must be >= 1"
    | None -> bad (Printf.sprintf "bad layer count %S" l)
  in
  let width =
    match int_of_string_opt w with
    | Some k when k >= 1 -> k
    | Some _ -> bad "width must be >= 1"
    | None -> bad (Printf.sprintf "bad width %S" w)
  in
  let max_weight = 9 in
  {
    name = String.lowercase_ascii spec;
    build =
      (fun ~n:_ ~ccr ->
        let rng = Prelude.Rng.create ~seed:((layers * 1_000_003) + width) in
        let edge_prob = min 0.4 (8. /. float_of_int width) in
        let max_data =
          int_of_float (Float.ceil (ccr *. float_of_int (max_weight + 1)))
        in
        Taskgraph.Generators.layered rng ~layers ~width ~edge_prob ~max_weight ~max_data);
    paper_b = 20;
    min_n = 1;
  }

let find name =
  let lower = String.lowercase_ascii name in
  match String.split_on_char ':' lower with
  | [ "layered"; l; w ] -> layered_of_spec name l w
  | "layered" :: _ ->
      invalid_arg
        (Printf.sprintf
           "Suite.find: malformed layered spec %S; expected \
            layered:<layers>:<width> with positive integers"
           name)
  | _ -> (
      match List.find_opt (fun t -> t.name = lower) all with
      | Some t -> t
      | None ->
          invalid_arg
            (Printf.sprintf
               "Suite.find: unknown testbed %S (known: %s, layered:<layers>:<width>)"
               name
               (String.concat ", " names)))
