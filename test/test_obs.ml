(* Observability layer: counters, span tracing, reports and the Chrome
   trace export.  The cardinal property is non-interference — turning
   observability on must not change any schedule. *)

module O = Onesched
open Util

(* Leave the global obs switches the way we found them. *)
let with_obs_off f =
  O.Obs_counters.disable ();
  O.Obs_span.disable ();
  Fun.protect
    ~finally:(fun () ->
      O.Obs_counters.disable ();
      O.Obs_span.disable ())
    f

let with_obs_on f =
  O.Obs_counters.enable ();
  O.Obs_counters.reset ();
  O.Obs_span.enable ();
  O.Obs_span.reset ();
  Fun.protect
    ~finally:(fun () ->
      O.Obs_counters.disable ();
      O.Obs_span.disable ())
    f

let counter_tests =
  [
    Alcotest.test_case "disabled bumps are no-ops" `Quick (fun () ->
        with_obs_off @@ fun () ->
        O.Obs_counters.reset ();
        O.Obs_counters.evaluation ();
        O.Obs_counters.gap_probe ();
        O.Obs_counters.commit ();
        check_bool "still zero" true
          (O.Obs_counters.snapshot () = O.Obs_counters.zero));
    Alcotest.test_case "enabled bumps accumulate and reset zeroes" `Quick
      (fun () ->
        with_obs_on @@ fun () ->
        O.Obs_counters.evaluation ();
        O.Obs_counters.evaluation ();
        O.Obs_counters.pruned_evaluation ();
        O.Obs_counters.route_cache_hit ();
        O.Obs_counters.gap_probe ();
        O.Obs_counters.joint_gap_probe ();
        O.Obs_counters.tentative_hop ();
        O.Obs_counters.commit ();
        O.Obs_counters.copy ();
        let c = O.Obs_counters.snapshot () in
        check_int "evaluations" 2 c.O.Obs_counters.evaluations;
        check_int "pruned evaluations" 1 c.O.Obs_counters.pruned_evaluations;
        check_int "route cache hits" 1 c.O.Obs_counters.route_cache_hits;
        check_int "gap probes" 1 c.O.Obs_counters.gap_probes;
        check_int "joint gap probes" 1 c.O.Obs_counters.joint_gap_probes;
        check_int "tentative hops" 1 c.O.Obs_counters.tentative_hops;
        check_int "commits" 1 c.O.Obs_counters.commits;
        check_int "copies" 1 c.O.Obs_counters.copies;
        O.Obs_counters.reset ();
        check_bool "reset zeroes" true
          (O.Obs_counters.snapshot () = O.Obs_counters.zero));
    Alcotest.test_case "diff is per-field subtraction" `Quick (fun () ->
        with_obs_on @@ fun () ->
        O.Obs_counters.evaluation ();
        let before = O.Obs_counters.snapshot () in
        O.Obs_counters.evaluation ();
        O.Obs_counters.commit ();
        let after = O.Obs_counters.snapshot () in
        let d = O.Obs_counters.diff before after in
        check_int "evaluations delta" 1 d.O.Obs_counters.evaluations;
        check_int "commits delta" 1 d.O.Obs_counters.commits;
        check_int "copies delta" 0 d.O.Obs_counters.copies);
    Alcotest.test_case "a real schedule drives every hot counter" `Quick
      (fun () ->
        with_obs_on @@ fun () ->
        let plat = O.Platform.paper_platform () in
        let g = O.Kernels.lu ~n:15 ~ccr:10. in
        ignore (O.Heft.schedule plat g : O.Schedule.t);
        let c = O.Obs_counters.snapshot () in
        let tasks = O.Graph.n_tasks g in
        check_bool "one evaluation per (task, proc) at least" true
          (c.O.Obs_counters.evaluations >= tasks);
        check_int "one commit per task" tasks c.O.Obs_counters.commits;
        check_bool "gap probes outnumber commits" true
          (c.O.Obs_counters.gap_probes + c.O.Obs_counters.joint_gap_probes
          > c.O.Obs_counters.commits);
        check_bool "candidate pruning fires" true
          (c.O.Obs_counters.pruned_evaluations > 0);
        check_bool "route cache is reused" true
          (c.O.Obs_counters.route_cache_hits > 0));
  ]

let span_tests =
  [
    Alcotest.test_case "with_ brackets and nests" `Quick (fun () ->
        with_obs_on @@ fun () ->
        let r =
          O.Obs_span.with_ "outer" (fun () ->
              O.Obs_span.with_ "inner" (fun () -> 42))
        in
        check_int "result threaded" 42 r;
        let names =
          List.map
            (fun (e : O.Obs_span.event) ->
              ( e.O.Obs_span.name,
                match e.O.Obs_span.kind with
                | O.Obs_span.Begin -> "B"
                | O.Obs_span.End -> "E" ))
            (O.Obs_span.events ())
        in
        check_bool "B/E properly nested" true
          (names
          = [
              ("outer", "B"); ("inner", "B"); ("inner", "E"); ("outer", "E");
            ]));
    Alcotest.test_case "end event survives an exception" `Quick (fun () ->
        with_obs_on @@ fun () ->
        (try O.Obs_span.with_ "boom" (fun () -> failwith "x") with
        | Failure _ -> ());
        let kinds =
          List.map (fun (e : O.Obs_span.event) -> e.O.Obs_span.kind)
            (O.Obs_span.events ())
        in
        check_bool "begin then end" true
          (kinds = [ O.Obs_span.Begin; O.Obs_span.End ]));
    Alcotest.test_case "timestamps never run backwards" `Quick (fun () ->
        with_obs_on @@ fun () ->
        let plat = O.Platform.paper_platform () in
        let g = O.Kernels.stencil ~n:20 ~ccr:10. in
        ignore (O.Ilha.schedule plat g : O.Schedule.t);
        let rec monotone last = function
          | [] -> true
          | (e : O.Obs_span.event) :: rest ->
              e.O.Obs_span.ts >= last && monotone e.O.Obs_span.ts rest
        in
        check_bool "monotone" true (monotone 0. (O.Obs_span.events ())));
    Alcotest.test_case "ring overwrites oldest and counts drops" `Quick
      (fun () ->
        O.Obs_span.enable ~capacity:8 ();
        O.Obs_span.reset ();
        Fun.protect ~finally:(fun () ->
            O.Obs_span.disable ();
            (* restore the default ring for later suites *)
            O.Obs_span.enable ();
            O.Obs_span.disable ())
        @@ fun () ->
        for i = 0 to 9 do
          O.Obs_span.with_ (string_of_int i) (fun () -> ())
        done;
        check_int "ring holds capacity" 8
          (List.length (O.Obs_span.events ()));
        check_int "drops counted" 12 (O.Obs_span.dropped ()));
  ]

(* The whole point: observability must not perturb scheduling. *)
let non_interference_tests =
  [
    Alcotest.test_case "tracing on/off yields identical makespans" `Quick
      (fun () ->
        let plat = O.Platform.paper_platform () in
        let g = O.Kernels.doolittle ~n:20 ~ccr:10. in
        List.iter
          (fun (entry : O.Registry.entry) ->
            let off =
              with_obs_off (fun () ->
                  O.Schedule.makespan
                    (entry.O.Registry.scheduler O.Params.default plat g))
            in
            let on =
              with_obs_on (fun () ->
                  O.Schedule.makespan
                    (entry.O.Registry.scheduler O.Params.default plat g))
            in
            check_float (entry.O.Registry.name ^ " unchanged") off on)
          O.Registry.all);
  ]

let report_tests =
  [
    Alcotest.test_case "capture with obs disabled is empty" `Quick (fun () ->
        with_obs_off @@ fun () ->
        let x, report = O.Obs_report.capture (fun () -> 7) in
        check_int "value threaded" 7 x;
        check_bool "empty report" true (report = O.Obs_report.empty));
    Alcotest.test_case "capture scopes counters and phases" `Quick (fun () ->
        with_obs_on @@ fun () ->
        let plat = O.Platform.paper_platform () in
        let g = O.Kernels.lu ~n:10 ~ccr:10. in
        (* pollute before the window: capture must not see this *)
        ignore (O.Heft.schedule plat g : O.Schedule.t);
        let before = O.Obs_counters.snapshot () in
        let _, report =
          O.Obs_report.capture (fun () ->
              ignore (O.Heft.schedule plat g : O.Schedule.t))
        in
        let c = report.O.Obs_report.counters in
        check_int "window commits = one run" (O.Graph.n_tasks g)
          c.O.Obs_counters.commits;
        check_int "pre-window commits excluded"
          before.O.Obs_counters.commits c.O.Obs_counters.commits;
        check_bool "heft phase reported" true
          (List.mem_assoc "heft" report.O.Obs_report.phases);
        check_bool "rank phase reported" true
          (List.mem_assoc "rank" report.O.Obs_report.phases));
  ]

(* A hand-rolled structural check of the Chrome trace: we do not have a
   JSON parser in the test closure, so scan the flat event array the
   exporter emits (one object per line, known key order). *)
let trace_lines json =
  check_bool "array-shaped" true
    (String.length json > 2 && json.[0] = '[' && contains json "]");
  String.split_on_char '\n' json
  |> List.filter (fun l -> contains l {|"ph":|})

let field line key =
  (* extract the value of "key": up to the next , or } *)
  let tag = Printf.sprintf {|"%s":|} key in
  let n = String.length line and m = String.length tag in
  let rec find i =
    if i + m > n then None
    else if String.sub line i m = tag then
      let stop = ref (i + m) in
      while !stop < n && line.[!stop] <> ',' && line.[!stop] <> '}' do
        incr stop
      done;
      Some (String.sub line (i + m) (!stop - i - m))
    else find (i + 1)
  in
  find 0

let export_tests =
  [
    Alcotest.test_case "chrome export is balanced and monotone" `Quick
      (fun () ->
        let json =
          with_obs_on (fun () ->
              let plat = O.Platform.paper_platform () in
              let g = O.Kernels.lu ~n:15 ~ccr:10. in
              ignore (O.Ilha.schedule plat g : O.Schedule.t);
              let c = O.Obs_counters.snapshot () in
              O.Obs_trace.to_chrome ~counters:c (O.Obs_span.events ()))
        in
        let lines = trace_lines json in
        let depth = ref 0 and last_ts = ref neg_infinity and ok = ref true in
        let n_durations = ref 0 in
        List.iter
          (fun line ->
            (match field line "ph" with
            | Some {|"B"|} ->
                incr depth;
                incr n_durations
            | Some {|"E"|} ->
                decr depth;
                incr n_durations;
                if !depth < 0 then ok := false
            | _ -> ());
            match field line "ts" with
            | Some ts ->
                let ts = float_of_string ts in
                if ts < !last_ts then ok := false;
                last_ts := ts
            | None -> ())
          lines;
        check_bool "has duration events" true (!n_durations > 0);
        check_int "spans balanced" 0 !depth;
        check_bool "no orphan end, monotone ts" true !ok;
        check_bool "metadata present" true
          (contains json {|"ph":"M"|} && contains json "scheduler");
        check_bool "counter track present" true
          (contains json {|"ph":"C"|} && contains json "evaluations"));
    Alcotest.test_case "orphan events are repaired on export" `Quick
      (fun () ->
        with_obs_on @@ fun () ->
        (* an End with no Begin, then a Begin never closed *)
        O.Obs_span.end_ "orphan-end";
        O.Obs_span.begin_ "left-open";
        let json = O.Obs_trace.to_chrome (O.Obs_span.events ()) in
        check_bool "orphan end dropped" true
          (not (contains json "orphan-end"));
        let lines = trace_lines json in
        let opens =
          List.filter (fun l -> field l "ph" = Some {|"B"|}) lines
        and closes =
          List.filter (fun l -> field l "ph" = Some {|"E"|}) lines
        in
        check_int "synthesized closer" (List.length opens)
          (List.length closes));
  ]

let runner_obs_tests =
  [
    Alcotest.test_case "runner rows carry obs only when enabled" `Quick
      (fun () ->
        let cfg = O.Config.with_sizes (O.Config.paper ()) [ 10 ] in
        let run () =
          O.Runner.run cfg ~testbed:(O.Suite.find "lu") ~n:10
            ~heuristic:(O.Registry.find "heft") ()
        in
        let row_off = with_obs_off run in
        check_bool "no payload when disabled" true
          (row_off.O.Runner.obs = None);
        let row_on = with_obs_on run in
        match row_on.O.Runner.obs with
        | None -> Alcotest.fail "expected an obs payload"
        | Some report ->
            check_bool "counted the run" true
              (report.O.Obs_report.counters.O.Obs_counters.commits > 0));
  ]

(* deterministic: List.iter over the first line of the exporter output
   keeps field order stable; see lib/obs/trace_export.ml *)

let suite =
  counter_tests @ span_tests @ non_interference_tests @ report_tests
  @ export_tests @ runner_obs_tests
