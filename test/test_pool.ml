(* The determinism-proving harness for the domain-parallel sweeps.

   The contract under test: for any job count, (1) Pool.map is a plain
   order-preserving map that propagates worker exceptions, (2)
   Batch.run produces the very same rows in the very same order, (3)
   monte_carlo produces bit-identical statistics, and (4) the Obs
   counter totals merged at the pool barrier equal the serial totals.
   Everything runs at jobs ∈ {1, 2, 4, 8} against the jobs = 1
   baseline. *)

module O = Onesched
open Util

let jobs_axis = [ 2; 4; 8 ]

(* ---------------- Pool.map / Pool.iter ---------------- *)

let pool_unit_tests =
  [
    Alcotest.test_case "iter covers every index exactly once" `Quick (fun () ->
        List.iter
          (fun jobs ->
            let n = 1013 in
            let hits = Array.make n 0 in
            O.Pool.iter ~jobs n (fun i -> hits.(i) <- hits.(i) + 1);
            Array.iteri
              (fun i h -> check_int (Printf.sprintf "index %d" i) 1 h)
              hits)
          (1 :: jobs_axis));
    Alcotest.test_case "iter on an empty and singleton range" `Quick (fun () ->
        O.Pool.iter ~jobs:4 0 (fun _ -> Alcotest.fail "called on empty");
        let hit = ref 0 in
        O.Pool.iter ~jobs:4 1 (fun i ->
            check_int "index" 0 i;
            incr hit);
        check_int "single call" 1 !hit);
    Alcotest.test_case "exceptions propagate from any worker" `Quick (fun () ->
        List.iter
          (fun jobs ->
            match O.Pool.iter ~jobs 256 (fun i -> if i = 97 then failwith "boom")
            with
            | () -> Alcotest.fail "exception swallowed"
            | exception Failure msg -> Alcotest.(check string) "msg" "boom" msg)
          (1 :: jobs_axis));
    Alcotest.test_case "invalid arguments are rejected" `Quick (fun () ->
        Alcotest.check_raises "jobs = 0" (Invalid_argument "Pool.iter: jobs < 1")
          (fun () -> O.Pool.iter ~jobs:0 4 ignore);
        Alcotest.check_raises "negative count"
          (Invalid_argument "Pool.iter: negative count") (fun () ->
            O.Pool.iter ~jobs:2 (-1) ignore));
    Alcotest.test_case "default_jobs is positive and capped" `Quick (fun () ->
        let j = O.Pool.default_jobs () in
        check_bool "positive" true (j >= 1);
        check_bool "capped" true (j <= 8));
  ]

let pool_map_tests =
  [
    qtest ~count:50 "map preserves order and values for every jobs"
      QCheck2.Gen.(list_size (int_bound 200) (int_bound 10_000))
      (fun l ->
        let expect = List.map (fun x -> (2 * x) + 1) l in
        List.for_all
          (fun jobs -> O.Pool.map ~jobs (fun x -> (2 * x) + 1) l = expect)
          (1 :: jobs_axis));
    qtest ~count:20 "map propagates the failing element's exception"
      QCheck2.Gen.(int_range 0 99)
      (fun bad ->
        List.for_all
          (fun jobs ->
            match
              O.Pool.map ~jobs
                (fun i -> if i = bad then raise Exit else i)
                (List.init 100 Fun.id)
            with
            | _ -> false
            | exception Exit -> true)
          jobs_axis);
  ]

(* ---------------- Batch.run rows ---------------- *)

(* Zero the one timing field so equality is over the deterministic
   payload — the CSV-diff cram test does the same with cut(1). *)
let strip_row (r : O.Runner.row) = { r with O.Runner.wall_s = 0.; obs = None }

(* Small random slices of the real grid: 1-2 testbeds, 1-2 sizes, a
   random subset of the scalable heuristics. *)
let spec_gen =
  QCheck2.Gen.(
    let* tb_mask = int_range 1 63 in
    let* size_a = int_range 4 10 in
    let* size_b = int_range 4 10 in
    let* heur_mask = int_range 1 31 in
    return (tb_mask, size_a, size_b, heur_mask))

let build_spec (tb_mask, size_a, size_b, heur_mask) =
  let mask_filter mask l =
    List.filteri (fun i _ -> (mask lsr (i mod 6)) land 1 = 1 || i = mask mod List.length l) l
  in
  let cfg = O.Config.with_sizes (O.Config.paper ()) [ size_a; size_b ] in
  let scalable =
    List.filter (fun e -> e.O.Registry.scalable) O.Registry.all
  in
  let spec =
    {
      O.Batch.heuristics = mask_filter heur_mask scalable;
      testbeds = mask_filter tb_mask O.Suite.all;
      sizes = cfg.O.Config.sizes;
      models = [ O.Config.model cfg ];
      use_paper_b = true;
    }
  in
  (cfg, spec)

let batch_tests =
  [
    qtest ~count:8 "Batch.run rows are jobs-independent" spec_gen
      (fun params ->
        let cfg, spec = build_spec params in
        let baseline = List.map strip_row (O.Batch.run ~jobs:1 cfg spec) in
        List.for_all
          (fun jobs ->
            List.map strip_row (O.Batch.run ~jobs cfg spec) = baseline)
          jobs_axis);
    qtest ~count:6 "Batch.run CSV is byte-identical modulo wall_s" spec_gen
      (fun params ->
        let cfg, spec = build_spec params in
        let csv jobs =
          O.Batch.to_csv (List.map strip_row (O.Batch.run ~jobs cfg spec))
        in
        let baseline = csv 1 in
        List.for_all (fun jobs -> csv jobs = baseline) jobs_axis);
  ]

(* ---------------- monte_carlo statistics ---------------- *)

let mc_gen =
  QCheck2.Gen.(
    let* seed = int_bound 10_000 in
    let* trials = int_range 1 60 in
    let* jitter10 = int_range 0 8 in
    return (seed, trials, jitter10))

let mc_tests =
  [
    qtest ~count:10 "monte_carlo stats are jobs-independent" mc_gen
      (fun (seed, trials, jitter10) ->
        let g = O.Kernels.lu ~n:8 ~ccr:5. in
        let plat = O.Platform.paper_platform () in
        let sched = O.Heft.schedule plat g in
        let jitter = float_of_int jitter10 /. 10. in
        let run jobs =
          O.Robustness.monte_carlo ~jobs sched (O.Rng.create ~seed) ~jitter
            ~trials
        in
        let baseline = run 1 in
        List.for_all (fun jobs -> run jobs = baseline) jobs_axis);
  ]

(* ---------------- merged Obs counter totals ---------------- *)

let obs_tests =
  [
    qtest ~count:6 "merged counter totals equal the serial totals" spec_gen
      (fun params ->
        let cfg, spec = build_spec params in
        let totals jobs =
          O.Obs_counters.enable ();
          O.Obs_counters.reset ();
          ignore (O.Batch.run ~jobs cfg spec : O.Runner.row list);
          let s = O.Obs_counters.snapshot () in
          O.Obs_counters.disable ();
          s
        in
        let baseline = totals 1 in
        (* a real workload bumps something — guard against a vacuous pass *)
        baseline.O.Obs_counters.evaluations > 0
        && List.for_all (fun jobs -> totals jobs = baseline) jobs_axis);
    Alcotest.test_case "counter merge is the per-domain sum" `Quick (fun () ->
        O.Obs_counters.enable ();
        O.Obs_counters.reset ();
        O.Pool.iter ~jobs:4 777 (fun _ -> O.Obs_counters.commit ());
        let s = O.Obs_counters.snapshot () in
        O.Obs_counters.disable ();
        check_int "commits" 777 s.O.Obs_counters.commits);
  ]

let suite =
  pool_unit_tests @ pool_map_tests @ batch_tests @ mc_tests @ obs_tests
