(* Fault model, fault-injecting executor and online crash repair. *)

open Util
module O = Util.O

let default_sched plat g = O.Heft.schedule plat g

(* --- fault spec grammar --- *)

let spec_grammar () =
  let resolved s makespan =
    O.Fault.resolve ~makespan (O.Fault.of_string s)
  in
  (match resolved "crash:3@120" 1000. with
  | O.Fault.Crash { proc; at } ->
      check_int "crash proc" 3 proc;
      check_float "crash at" 120. at
  | _ -> Alcotest.fail "expected a crash");
  (match resolved "crash:0@25%" 400. with
  | O.Fault.Crash { at; _ } -> check_float "relative crash at" 100. at
  | _ -> Alcotest.fail "expected a crash");
  (match resolved "outage:1@10-50%" 200. with
  | O.Fault.Outage { proc; from_; until } ->
      check_int "outage proc" 1 proc;
      check_float "outage from" 10. from_;
      check_float "outage until" 100. until
  | _ -> Alcotest.fail "expected an outage");
  (match resolved "degrade:2x1.5" 1. with
  | O.Fault.Degrade { proc; factor } ->
      check_int "degrade proc" 2 proc;
      check_float "degrade factor" 1.5 factor
  | _ -> Alcotest.fail "expected a degrade");
  (match resolved "flaky:0.25" 1. with
  | O.Fault.Flaky { prob; max_retries; backoff } ->
      check_float "flaky prob" 0.25 prob;
      check_int "default retries" 3 max_retries;
      check_float "default backoff" 1. backoff
  | _ -> Alcotest.fail "expected a flaky");
  (match resolved "flaky:0.5:7:0.25" 1. with
  | O.Fault.Flaky { max_retries; backoff; _ } ->
      check_int "explicit retries" 7 max_retries;
      check_float "explicit backoff" 0.25 backoff
  | _ -> Alcotest.fail "expected a flaky");
  (match resolved "rejoin:2@180" 1. with
  | O.Fault.Rejoin { proc; at } ->
      check_int "rejoin proc" 2 proc;
      check_float "rejoin at" 180. at
  | _ -> Alcotest.fail "expected a rejoin");
  (match resolved "rejoin:1@25%" 400. with
  | O.Fault.Rejoin { at; _ } -> check_float "relative rejoin at" 100. at
  | _ -> Alcotest.fail "expected a rejoin");
  List.iter
    (fun bad ->
      match O.Fault.of_string bad with
      | _ -> Alcotest.failf "accepted %S" bad
      | exception Invalid_argument _ -> ())
    [ ""; "crash"; "crash:x@3"; "crash:1@-5"; "outage:1@9"; "degrade:1x0.5";
      "flaky:1.5"; "meteor:1@2"; "rejoin"; "rejoin:1"; "rejoin:x@3";
      "rejoin:1@-5" ]

let spec_roundtrip () =
  List.iter
    (fun s ->
      let f = O.Fault.resolve ~makespan:1. (O.Fault.of_string s) in
      Alcotest.(check string) s s (O.Fault.to_string f))
    [ "crash:3@120"; "outage:1@10-50"; "degrade:2x1.5"; "flaky:0.25:3:1";
      "rejoin:2@180" ]

(* Unresolved specs — including makespan-relative times — survive
   print -> parse -> print unchanged (quarter-integer times and integer
   percentages print exactly under %g). *)
let spec_print_roundtrip =
  qtest "fault specs print/parse round-trip"
    QCheck2.Gen.(
      tup4 (int_bound 5) (int_bound 9)
        (tup2 (int_bound 400) (int_bound 99))
        (tup2 (int_bound 400) (int_bound 6)))
    (fun (kind, proc, (t1i, pct), (t2i, retries)) ->
      let q x = float_of_int x /. 4. in
      let s =
        match kind with
        | 0 -> Printf.sprintf "crash:%d@%g" proc (q t1i)
        | 1 -> Printf.sprintf "crash:%d@%d%%" proc pct
        | 2 ->
            Printf.sprintf "outage:%d@%g-%g" proc (q t1i)
              (q t1i +. q t2i +. 1.)
        | 3 -> Printf.sprintf "rejoin:%d@%g" proc (q t1i)
        | 4 -> Printf.sprintf "degrade:%dx%g" proc (q t2i +. 1.25)
        | _ ->
            Printf.sprintf "flaky:%g:%d:%g"
              (0.25 +. q (t2i mod 3))
              retries
              (q t1i +. 0.25)
      in
      O.Fault.spec_to_string (O.Fault.of_string s) = s)

(* --- faulty executor --- *)

let makespan_of = function
  | O.Faulty_executor.Completed { trace; _ } -> trace.O.Executor.makespan
  | O.Faulty_executor.Stranded _ -> Alcotest.fail "unexpectedly stranded"

(* The tentpole property: with no faults and no jitter, the faulty
   executor IS the plain executor, bit for bit. *)
let empty_scenario_matches =
  qtest "empty scenario reproduces Executor.run exactly"
    QCheck2.Gen.(tup3 graph_gen platform_gen model_gen)
    (fun (gd, plat, model) ->
      let g = build_graph gd in
      let params = O.Params.of_model model in
      let sched = O.Heft.schedule ~params plat g in
      let reference = O.Executor.run sched in
      match O.Faulty_executor.run ~faults:[] sched with
      | O.Faulty_executor.Completed { trace; stats } ->
          trace.O.Executor.makespan = reference.O.Executor.makespan
          && trace.O.Executor.task_starts = reference.O.Executor.task_starts
          && trace.O.Executor.events_fired = reference.O.Executor.events_fired
          && stats = { O.Faulty_executor.retries = 0; backoff_time = 0.; deferred = 0 }
      | O.Faulty_executor.Stranded _ -> false)

let crash_strands () =
  let plat = O.Platform.homogeneous ~p:3 ~link_cost:1. in
  let g = build_graph (7, 1, 16) in
  let sched = default_sched plat g in
  let nominal = O.Schedule.makespan sched in
  (* crash every processor at time 0: nothing can run *)
  let faults = List.init 3 (fun q -> O.Fault.crash ~proc:q ~at:0.) in
  (match O.Faulty_executor.run ~faults sched with
  | O.Faulty_executor.Stranded { stranded; _ } ->
      check_int "everything stranded" (O.Graph.n_tasks g) (List.length stranded)
  | O.Faulty_executor.Completed _ -> Alcotest.fail "completed under total loss");
  (* crash past the makespan: harmless *)
  let faults = [ O.Fault.crash ~proc:0 ~at:(nominal *. 2.) ] in
  check_float "late crash is harmless" nominal
    (makespan_of (O.Faulty_executor.run ~faults sched))

let outage_defers () =
  let plat = O.Platform.homogeneous ~p:2 ~link_cost:1. in
  let g = build_graph (11, 0, 12) in
  let sched = default_sched plat g in
  let nominal = O.Schedule.makespan sched in
  let faults =
    [ O.Fault.resolve ~makespan:nominal
        (O.Fault.of_string "outage:0@0-50%") ]
  in
  match O.Faulty_executor.run ~faults sched with
  | O.Faulty_executor.Completed { trace; stats } ->
      check_bool "outage can only delay" true
        (trace.O.Executor.makespan >= nominal);
      check_bool "dispatches were deferred" true
        (stats.O.Faulty_executor.deferred > 0)
  | O.Faulty_executor.Stranded _ -> Alcotest.fail "outage must not strand"

let degrade_stretches () =
  let plat = O.Platform.homogeneous ~p:2 ~link_cost:2. in
  let g = build_graph (3, 1, 14) in
  let sched = default_sched plat g in
  let nominal = makespan_of (O.Faulty_executor.run ~faults:[] sched) in
  let degraded =
    makespan_of
      (O.Faulty_executor.run
         ~faults:[ O.Fault.resolve ~makespan:1. (O.Fault.of_string "degrade:0x4") ]
         sched)
  in
  check_bool "degraded links can only lengthen" true (degraded >= nominal);
  if O.Schedule.comms sched <> [] then
    check_bool "a x4 link visibly stretches execution" true (degraded > nominal)

let flaky_retries () =
  let plat = O.Platform.homogeneous ~p:2 ~link_cost:2. in
  let g = build_graph (5, 1, 14) in
  let sched = default_sched plat g in
  if O.Schedule.comms sched = [] then Alcotest.fail "testbed has no comms";
  (* certain failure, zero retries: every hop is lost *)
  (match
     O.Faulty_executor.run
       ~faults:[ O.Fault.flaky ~max_retries:0 1.0 ]
       sched
   with
  | O.Faulty_executor.Stranded _ -> ()
  | O.Faulty_executor.Completed _ ->
      Alcotest.fail "all hops lost yet execution completed");
  (* a deep retry budget absorbs even highly lossy links; some seed in a
     small deterministic pool must observe at least one retry *)
  let saw_retry = ref false in
  for seed = 1 to 20 do
    let rng = O.Rng.create ~seed in
    match
      O.Faulty_executor.run ~rng
        ~faults:[ O.Fault.flaky ~max_retries:50 ~backoff:0.5 0.9 ]
        sched
    with
    | O.Faulty_executor.Completed { stats; _ } ->
        if stats.O.Faulty_executor.retries > 0 then begin
          saw_retry := true;
          check_bool "backoff time accumulated" true
            (stats.O.Faulty_executor.backoff_time > 0.)
        end
    | O.Faulty_executor.Stranded _ ->
        Alcotest.fail "50-deep retry budget should absorb p=0.9 failures"
  done;
  check_bool "retries happened" true !saw_retry

(* --- crash + rejoin windows --- *)

let outcome_of faults sched =
  match O.Faulty_executor.run ~faults sched with
  | O.Faulty_executor.Completed { trace; _ } ->
      `Completed trace.O.Executor.makespan
  | O.Faulty_executor.Stranded { stranded; events_fired; _ } ->
      `Stranded (List.sort compare stranded, events_fired)

let rejoin_closes_the_window () =
  let plat = O.Platform.homogeneous ~p:3 ~link_cost:1. in
  let g = build_graph (7, 1, 16) in
  let sched = default_sched plat g in
  let nominal = O.Schedule.makespan sched in
  let crash at = O.Fault.Crash { proc = 0; at } in
  let rejoin at = O.Fault.Rejoin { proc = 0; at } in
  (* a down window entirely past the makespan is harmless *)
  check_bool "late window is harmless" true
    (outcome_of [ crash (2. *. nominal); rejoin (3. *. nominal) ] sched
    = `Completed nominal);
  (* killed work must not silently resume: a rejoin after the last start
     changes nothing about what the crash stranded *)
  check_bool "stranded work stays stranded" true
    (outcome_of [ crash 0. ] sched
    = outcome_of [ crash 0.; rejoin (2. *. nominal) ] sched);
  (* closing the window earlier can only let more of the schedule fire *)
  let fired = function
    | `Completed _ -> max_int
    | `Stranded (_, events) -> events
  in
  check_bool "an earlier rejoin only helps" true
    (fired (outcome_of [ crash 0.; rejoin (0.5 *. nominal) ] sched)
    >= fired (outcome_of [ crash 0. ] sched))

(* The window kills exactly the work inside it: crash at the last task's
   start, rejoin at its finish — only that task is lost, everything
   before it (and any work planned after the rejoin) runs. *)
let rejoin_window_is_precise () =
  let plat = O.Platform.homogeneous ~p:2 ~link_cost:1. in
  let g = build_graph (11, 0, 12) in
  let sched = default_sched plat g in
  let victim =
    let best = ref (O.Schedule.placement_exn sched 0) in
    for t = 1 to O.Graph.n_tasks g - 1 do
      let pl = O.Schedule.placement_exn sched t in
      if pl.O.Schedule.start > !best.O.Schedule.start then best := pl
    done;
    !best
  in
  let faults =
    [
      O.Fault.Crash
        { proc = victim.O.Schedule.proc; at = victim.O.Schedule.start };
      O.Fault.Rejoin
        { proc = victim.O.Schedule.proc; at = victim.O.Schedule.finish };
    ]
  in
  match O.Faulty_executor.run ~faults sched with
  | O.Faulty_executor.Stranded { stranded; _ } ->
      check_bool "exactly the victim is lost" true
        (stranded = [ victim.O.Schedule.task ])
  | O.Faulty_executor.Completed _ ->
      Alcotest.fail "the victim's window must strand it"

(* --- online repair --- *)

(* Satellite property: a repaired schedule is a schedule — it passes the
   full independent validator, and it executes to completion under the
   very crash it repairs. *)
let repair_validates =
  qtest "repaired schedules validate and survive the crash"
    QCheck2.Gen.(
      tup4 graph_gen platform_gen (float_range 0.05 0.95) (int_bound 1000))
    (fun (gd, plat, frac, procpick) ->
      let g = build_graph gd in
      let sched = default_sched plat g in
      let nominal = O.Schedule.makespan sched in
      let proc = procpick mod O.Platform.p plat in
      let at = frac *. nominal in
      let r = O.Repair.crash ~proc ~at sched in
      let repaired = r.O.Repair.schedule in
      (match O.Validate.check repaired with
      | Ok () -> ()
      | Error es ->
          QCheck2.Test.fail_reportf "invalid repair: %s" (List.hd es));
      (match
         O.Faulty_executor.run
           ~faults:[ O.Fault.crash ~proc ~at ]
           repaired
       with
      | O.Faulty_executor.Completed _ -> ()
      | O.Faulty_executor.Stranded { stranded; _ } ->
          QCheck2.Test.fail_reportf "repair stranded %d tasks"
            (List.length stranded));
      (* the nominal schedule's decisions are untouched *)
      O.Schedule.makespan sched = nominal)

let repair_is_noop_after_makespan () =
  let plat = O.Platform.paper_platform () in
  let g = build_graph (13, 2, 15) in
  let sched = default_sched plat g in
  let nominal = O.Schedule.makespan sched in
  let r = O.Repair.crash ~proc:0 ~at:(nominal +. 1.) sched in
  check_int "nothing to re-map" 0 (List.length r.O.Repair.remapped);
  check_float "makespan unchanged" nominal r.O.Repair.repaired_makespan

let repair_rejects_bad_input () =
  let plat = O.Platform.homogeneous ~p:2 ~link_cost:1. in
  let g = build_graph (1, 0, 8) in
  let sched = default_sched plat g in
  Alcotest.check_raises "bad proc" (Invalid_argument
    "Repair.crash: processor 9 out of range (platform has 2)")
    (fun () -> ignore (O.Repair.crash ~proc:9 ~at:1. sched));
  Alcotest.check_raises "negative time"
    (Invalid_argument "Repair.crash: negative crash time") (fun () ->
      ignore (O.Repair.crash ~proc:0 ~at:(-1.) sched))

let registry_repair_agrees () =
  let plat = O.Platform.paper_platform () in
  let g = build_graph (21, 1, 16) in
  let sched = default_sched plat g in
  let at = 0.3 *. O.Schedule.makespan sched in
  let a = O.Registry.repair ~proc:1 ~at sched in
  let b = O.Repair.crash ~proc:1 ~at sched in
  check_float "same repaired makespan" b.O.Repair.repaired_makespan
    a.O.Repair.repaired_makespan

let runner_survival () =
  let cfg = O.Config.paper ~scale:0.2 () in
  let row =
    O.Runner.run cfg ~testbed:(O.Suite.find "lu") ~n:20
      ~heuristic:(O.Registry.find "heft") ~crash:(2, 0.25) ()
  in
  match row.O.Runner.survival with
  | None -> Alcotest.fail "crash drill produced no survival stats"
  | Some s ->
      check_int "crashed proc recorded" 2 s.O.Runner.crash_proc;
      check_bool "repair validated" true s.O.Runner.repaired_valid;
      check_bool "repair executed to completion" true s.O.Runner.completed;
      check_bool "some tasks re-mapped" true (s.O.Runner.remapped > 0);
      let rendered = O.Table.to_string (O.Runner.table [ row ]) in
      check_bool "table grows a survives column" true
        (contains rendered "survives")

(* --- the ISSUE's acceptance drill --- *)

(* Every registered heuristic, every paper testbed (n=100, ccr=10, paper
   platform), one crash at 25% of the nominal makespan: the repaired
   schedule validates and executes to completion under the crash. *)
let acceptance () =
  let plat = O.Platform.paper_platform () in
  List.iter
    (fun (tb : O.Suite.t) ->
      let g = tb.O.Suite.build ~n:100 ~ccr:10. in
      List.iter
        (fun (e : O.Registry.entry) ->
          let sched = e.O.Registry.scheduler O.Params.default plat g in
          let at = 0.25 *. O.Schedule.makespan sched in
          let r = O.Repair.crash ~proc:2 ~at sched in
          let repaired = r.O.Repair.schedule in
          let label = Printf.sprintf "%s/%s" tb.O.Suite.name e.O.Registry.name in
          (match O.Validate.check repaired with
          | Ok () -> ()
          | Error es ->
              Alcotest.failf "%s: invalid repair: %s" label (List.hd es));
          match
            O.Faulty_executor.run
              ~faults:[ O.Fault.crash ~proc:2 ~at ]
              repaired
          with
          | O.Faulty_executor.Completed _ -> ()
          | O.Faulty_executor.Stranded { stranded; _ } ->
              Alcotest.failf "%s: %d tasks stranded after repair" label
                (List.length stranded))
        O.Registry.all)
    O.Suite.all

let suite =
  [
    Alcotest.test_case "fault spec grammar parses and rejects" `Quick
      spec_grammar;
    Alcotest.test_case "fault specs round-trip through to_string" `Quick
      spec_roundtrip;
    spec_print_roundtrip;
    empty_scenario_matches;
    Alcotest.test_case "crashes strand dependents; late crashes are harmless"
      `Quick crash_strands;
    Alcotest.test_case "rejoins close crash windows without resuming work"
      `Quick rejoin_closes_the_window;
    Alcotest.test_case "a crash-rejoin window kills exactly the work inside"
      `Quick rejoin_window_is_precise;
    Alcotest.test_case "outages defer dispatches" `Quick outage_defers;
    Alcotest.test_case "degraded links stretch execution" `Quick
      degrade_stretches;
    Alcotest.test_case "flaky hops retry with backoff, then strand" `Quick
      flaky_retries;
    repair_validates;
    Alcotest.test_case "repair after the makespan is a no-op" `Quick
      repair_is_noop_after_makespan;
    Alcotest.test_case "repair rejects bad input" `Quick
      repair_rejects_bad_input;
    Alcotest.test_case "Registry.repair is Repair.crash" `Quick
      registry_repair_agrees;
    Alcotest.test_case "runner rows carry crash-survival stats" `Quick
      runner_survival;
    Alcotest.test_case "acceptance: crash at 25% on all testbeds x heuristics"
      `Slow acceptance;
  ]
