(* scheduld protocol + daemon-core tests, all in-memory over the pure
   loopback (no sockets):

   - qcheck round-trips: Wire parse ∘ print = id on arbitrary values
     (including raw-byte strings), Proto request/response round-trips
     covering every constructor, and generative fuzz — random byte junk
     and well-formed-but-wrong JSON must each produce exactly one
     structured reply and leave the daemon alive;
   - offline equivalence: a submission over the loopback fingerprints
     bit-identical to calling the registry scheduler directly, for every
     registry heuristic x one-port + macro-dataflow;
   - concurrency determinism: a fixed multi-client job mix produces a
     byte-identical transcript and identical merged obs counters at
     --jobs 1, 2 and 4 (the Pool.Team contract, same style as
     test_pool/test_scale);
   - admission control: shedding, queue-full, budget, cancel, drain,
     watch, deadline misses and inline-DAG submissions. *)

module O = Onesched
module Wire = O.Scheduld_wire
module P = O.Scheduld_proto
open Util

(* ---------------- generators ---------------- *)

let byte_string =
  QCheck2.Gen.(string_size ~gen:(map Char.chr (int_bound 255)) (int_bound 16))

let finite_float =
  QCheck2.Gen.(map (fun f -> if Float.is_finite f then f else 0.) float)

let wire_gen =
  QCheck2.Gen.(
    sized
    @@ fix (fun self n ->
           let leaf =
             oneof
               [
                 return Wire.Null;
                 map (fun b -> Wire.Bool b) bool;
                 map (fun f -> Wire.Num f) finite_float;
                 map (fun s -> Wire.Str s) byte_string;
               ]
           in
           if n <= 0 then leaf
           else
             frequency
               [
                 (3, leaf);
                 ( 1,
                   map (fun l -> Wire.Arr l)
                     (list_size (int_bound 4) (self (n / 2))) );
                 ( 1,
                   map (fun l -> Wire.Obj l)
                     (list_size (int_bound 4)
                        (pair byte_string (self (n / 2)))) );
               ]))

let opt_gen g = QCheck2.Gen.(oneof [ return None; map Option.some g ])

let spec_gen =
  QCheck2.Gen.(
    oneof
      [
        map (fun s -> P.Testbed s) byte_string;
        map (fun s -> P.Inline s) byte_string;
      ])

let submit_gen =
  QCheck2.Gen.(
    let* spec = spec_gen in
    let* heuristic = opt_gen byte_string in
    let* model = opt_gen byte_string in
    let* priority = int_range (-4) 9 in
    let* deadline = opt_gen finite_float in
    let* placements = bool in
    return { P.spec; heuristic; model; priority; deadline; placements })

let request_gen =
  QCheck2.Gen.(
    oneof
      [
        map (fun s -> P.Submit s) submit_gen;
        map (fun id -> P.Status id) (opt_gen nat);
        map (fun id -> P.Cancel id) nat;
        return P.Watch;
        return P.Drain;
        return P.Stats;
        return P.Ping;
      ])

let error_code_gen =
  QCheck2.Gen.oneofl
    [ P.Parse; P.Bad_request; P.Unknown_id; P.Draining; P.Queue_full; P.Budget ]

let job_state_gen =
  QCheck2.Gen.oneofl
    [
      P.Queued; P.Placed_state; P.Done_state; P.Cancelled; P.Shed_state;
      P.Failed_state;
    ]

let placement_row_gen =
  QCheck2.Gen.(
    let* task = nat in
    let* proc = nat in
    let* start = finite_float in
    let* finish = finite_float in
    return { P.task; proc; start; finish })

let job_view_gen =
  QCheck2.Gen.(
    let* id = nat in
    let* state = job_state_gen in
    let* spec = byte_string in
    let* priority = int_range (-4) 9 in
    let* makespan = opt_gen finite_float in
    return { P.id; state; spec; priority; makespan })

let stats_view_gen =
  QCheck2.Gen.(
    let* requests = nat in
    let* submitted = nat in
    let* completed = nat in
    let* cancelled = nat in
    let* shed = nat in
    let* failed = nat in
    let* errors = nat in
    let* batches = nat in
    let* queue_depth = nat in
    let* queue_peak = nat in
    let* clients = nat in
    let* p50_ms = opt_gen finite_float in
    let* p99_ms = opt_gen finite_float in
    return
      {
        P.requests; submitted; completed; cancelled; shed; failed; errors;
        batches; queue_depth; queue_peak; clients; p50_ms; p99_ms;
      })

let response_gen =
  QCheck2.Gen.(
    oneof
      [
        (let* id = nat in
         let* queued = nat in
         return (P.Accepted { id; queued }));
        (let* id = nat in
         let* makespan = finite_float in
         let* tasks = nat in
         let* valid = bool in
         let* fingerprint = byte_string in
         let* batch = nat in
         let* placements =
           opt_gen (list_size (int_bound 4) placement_row_gen)
         in
         return
           (P.Placed
              { id; makespan; tasks; valid; fingerprint; batch; placements }));
        (let* id = nat in
         let* makespan = finite_float in
         let* missed = bool in
         return (P.Done { id; makespan; missed }));
        (let* id = nat in
         let* msg = byte_string in
         return (P.Failed { id; msg }));
        (let* id = nat in
         let* by = nat in
         return (P.Shed { id; by }));
        map (fun id -> P.Cancelled_reply { id }) nat;
        map (fun jobs -> P.Status_reply jobs)
          (list_size (int_bound 4) job_view_gen);
        map (fun s -> P.Stats_reply s) stats_view_gen;
        map (fun pending -> P.Draining_reply { pending }) nat;
        return P.Watching;
        return P.Bye;
        return P.Pong;
        (let* code = error_code_gen in
         let* msg = byte_string in
         return (P.Error { code; msg }));
      ])

(* ---------------- loopback helpers ---------------- *)

let plat = lazy (O.Platform.paper_platform ())

let mk ?(config = O.Scheduld.default_config) () =
  O.Scheduld.create ~config ~clock:(fun () -> 0.) (Lazy.force plat)

let req core ~client r = O.Scheduld.input core ~client (P.print_request r)

let submit ?heuristic ?model ?(priority = 0) ?deadline ?(placements = false)
    core ~client spec =
  req core ~client
    (P.Submit
       { spec = P.Testbed spec; heuristic; model; priority; deadline;
         placements })

let replies core =
  List.map
    (fun (cid, line) ->
      match P.response_of_line line with
      | Ok r -> (cid, r)
      | Error msg -> Alcotest.failf "unparseable reply %S: %s" line msg)
    (O.Scheduld.take_outputs core)

let flush_all core =
  while O.Scheduld.pending core > 0 do
    ignore (O.Scheduld.flush core)
  done

(* ---------------- round-trip properties ---------------- *)

let wire_roundtrip =
  qtest ~count:500 "wire: parse (print v) = Ok v" wire_gen (fun v ->
      Wire.parse (Wire.print v) = Ok v)

let wire_one_line =
  qtest ~count:500 "wire: print emits a single line" wire_gen (fun v ->
      not (String.contains (Wire.print v) '\n'))

let request_roundtrip =
  qtest ~count:500 "proto: request round-trips" request_gen (fun r ->
      P.request_of_line (P.print_request r) = Ok r)

let response_roundtrip =
  qtest ~count:500 "proto: response round-trips" response_gen (fun r ->
      P.response_of_line (P.print_response r) = Ok r)

let parse_total =
  qtest ~count:500 "proto: arbitrary bytes never raise"
    QCheck2.Gen.(string_size ~gen:(map Char.chr (int_bound 255)) (int_bound 64))
    (fun junk ->
      (match P.request_of_line junk with Ok _ | Error _ -> true)
      && match P.response_of_line junk with Ok _ | Error _ -> true)

(* ---------------- fuzz: the daemon survives junk ---------------- *)

let fuzz_survives name gen render =
  qtest ~count:300 name gen (fun junk ->
      let core = mk () in
      let client = O.Scheduld.connect core in
      O.Scheduld.input core ~client (render junk);
      let out = replies core in
      (* exactly one structured reply, and the daemon still answers *)
      let replied_once = List.length out = 1 in
      req core ~client P.Ping;
      let alive =
        match replies core with [ (_, P.Pong) ] -> true | _ -> false
      in
      O.Scheduld.shutdown core;
      replied_once && alive && not (O.Scheduld.stopped core))

let fuzz_bytes =
  fuzz_survives "fuzz: random bytes get a structured error"
    QCheck2.Gen.(string_size ~gen:(map Char.chr (int_bound 255)) (int_bound 64))
    Fun.id

let fuzz_json =
  fuzz_survives "fuzz: well-formed JSON junk gets a structured reply" wire_gen
    Wire.print

let junk_is_parse_error () =
  let core = mk () in
  let client = O.Scheduld.connect core in
  O.Scheduld.input core ~client "]]not json[[";
  (match replies core with
  | [ (_, P.Error { code = P.Parse; _ }) ] -> ()
  | _ -> Alcotest.fail "expected a parse error reply");
  O.Scheduld.input core ~client {|{"op":"warp"}|};
  (match replies core with
  | [ (_, P.Error { code = P.Parse; _ }) ] -> ()
  | _ -> Alcotest.fail "expected a parse error for an unknown op");
  submit core ~client "not-a-testbed:5";
  (match replies core with
  | [ (_, P.Error { code = P.Bad_request; _ }) ] -> ()
  | _ -> Alcotest.fail "expected bad-request for an unknown testbed");
  let s = O.Scheduld.stats core in
  check_int "requests counted" 3 s.P.requests;
  check_int "errors counted" 3 s.P.errors;
  O.Scheduld.shutdown core

(* ---------------- offline equivalence ---------------- *)

let offline_equivalence () =
  let models = [ O.Comm_model.one_port; O.Comm_model.macro_dataflow ] in
  let suite = O.Suite.find "lu" in
  let n = max 12 suite.O.Suite.min_n in
  let g = suite.O.Suite.build ~n ~ccr:1. in
  List.iter
    (fun (entry : O.Registry.entry) ->
      List.iter
        (fun model ->
          let direct =
            O.Export.fingerprint
              (entry.O.Registry.scheduler
                 (O.Params.of_model model)
                 (Lazy.force plat) g)
          in
          let core = mk () in
          let client = O.Scheduld.connect core in
          submit core ~client
            (Printf.sprintf "lu:%d" n)
            ~heuristic:entry.O.Registry.name
            ~model:(O.Comm_model.name model);
          flush_all core;
          let served =
            List.find_map
              (function
                | _, P.Placed { fingerprint; valid; _ } ->
                    Alcotest.(check bool)
                      (entry.O.Registry.name ^ " valid over the wire")
                      true valid;
                    Some fingerprint
                | _ -> None)
              (replies core)
          in
          O.Scheduld.shutdown core;
          Alcotest.(check (option string))
            (Printf.sprintf "%s/%s fingerprint" entry.O.Registry.name
               (O.Comm_model.name model))
            (Some direct) served)
        models)
    O.Registry.all

(* ---------------- concurrency determinism ---------------- *)

let job_mix =
  [ "lu:10"; "stencil:9"; "layered:4:6:30"; "lu:8:0.5"; "doolittle:8";
    "laplace:9"; "fork-join:10"; "layered:3:5:20:2" ]

let transcript ~jobs =
  let config =
    { O.Scheduld.default_config with O.Scheduld.jobs; max_batch = 4 }
  in
  let core = mk ~config () in
  O.Obs_counters.enable ();
  O.Obs_counters.reset ();
  let clients = List.init 4 (fun _ -> O.Scheduld.connect core) in
  (* deterministic interleaving: client k submits mix elements k, k+4, … *)
  List.iteri
    (fun i spec ->
      let client = List.nth clients (i mod 4) in
      submit core ~client spec)
    job_mix;
  flush_all core;
  let lines =
    List.map
      (fun (cid, line) -> Printf.sprintf "%d %s" cid line)
      (O.Scheduld.take_outputs core)
  in
  let counters = O.Obs_counters.snapshot () in
  O.Obs_counters.disable ();
  O.Scheduld.shutdown core;
  (String.concat "\n" lines, counters)

let concurrency_determinism () =
  let base_t, base_c = transcript ~jobs:1 in
  Util.check_bool "baseline transcript mentions every job" true
    (List.for_all
       (fun i -> Util.contains base_t (Printf.sprintf "\"id\":%d" i))
       (List.init (List.length job_mix) Fun.id));
  List.iter
    (fun jobs ->
      let t, c = transcript ~jobs in
      Alcotest.(check string)
        (Printf.sprintf "transcript identical at jobs=%d" jobs)
        base_t t;
      Util.check_bool
        (Printf.sprintf "merged counters identical at jobs=%d" jobs)
        true (c = base_c))
    [ 2; 4 ]

(* ---------------- admission control and lifecycle ---------------- *)

let shedding () =
  let config = { O.Scheduld.default_config with O.Scheduld.queue_cap = 2 } in
  let core = mk ~config () in
  let client = O.Scheduld.connect core in
  submit core ~client "lu:8";
  submit core ~client "lu:9";
  ignore (replies core);
  (* a higher-priority arrival sheds the newest lowest-priority job *)
  submit core ~client "lu:10" ~priority:5;
  (match replies core with
  | [ (_, P.Shed { id = 1; by = 2 }); (_, P.Accepted { id = 2; _ }) ] -> ()
  | rs ->
      Alcotest.failf "expected shed(1 by 2) + accepted(2), got %d replies"
        (List.length rs));
  (* equal priority has nothing to shed: the backlog refuses *)
  submit core ~client "lu:11";
  (match replies core with
  | [ (_, P.Error { code = P.Queue_full; _ }) ] -> ()
  | _ -> Alcotest.fail "expected queue-full");
  flush_all core;
  let s = O.Scheduld.stats core in
  check_int "completed" 2 s.P.completed;
  check_int "shed" 1 s.P.shed;
  O.Scheduld.shutdown core

let budget () =
  let config = { O.Scheduld.default_config with O.Scheduld.replan_budget = 1 } in
  let core = mk ~config () in
  let client = O.Scheduld.connect core in
  submit core ~client "lu:8";
  flush_all core;
  ignore (replies core);
  submit core ~client "lu:8";
  (match replies core with
  | [ (_, P.Error { code = P.Budget; _ }) ] -> ()
  | _ -> Alcotest.fail "expected budget error");
  O.Scheduld.shutdown core

let cancel () =
  let core = mk () in
  let client = O.Scheduld.connect core in
  submit core ~client "lu:8";
  ignore (replies core);
  req core ~client (P.Cancel 0);
  (match replies core with
  | [ (_, P.Cancelled_reply { id = 0 }) ] -> ()
  | _ -> Alcotest.fail "expected cancelled");
  req core ~client (P.Cancel 0);
  (match replies core with
  | [ (_, P.Error { code = P.Bad_request; _ }) ] -> ()
  | _ -> Alcotest.fail "cancelling a cancelled job is a bad request");
  req core ~client (P.Cancel 99);
  (match replies core with
  | [ (_, P.Error { code = P.Unknown_id; _ }) ] -> ()
  | _ -> Alcotest.fail "expected unknown-id");
  check_int "nothing left to flush" 0 (O.Scheduld.flush core);
  req core ~client (P.Status None);
  (match replies core with
  | [ (_, P.Status_reply [ { P.state = P.Cancelled; _ } ]) ] -> ()
  | _ -> Alcotest.fail "status shows the cancelled job");
  O.Scheduld.shutdown core

let drain_lifecycle () =
  let core = mk () in
  let a = O.Scheduld.connect core in
  let b = O.Scheduld.connect core in
  submit core ~client:a "lu:8";
  req core ~client:b P.Drain;
  (match replies core with
  | [ (_, P.Accepted _); (1, P.Draining_reply { pending = 1 }) ] -> ()
  | _ -> Alcotest.fail "expected accepted then draining(1)");
  submit core ~client:b "lu:8";
  (match replies core with
  | [ (_, P.Error { code = P.Draining; _ }) ] -> ()
  | _ -> Alcotest.fail "submissions while draining are refused");
  flush_all core;
  Util.check_bool "stopped after draining the backlog" true
    (O.Scheduld.stopped core);
  let out = replies core in
  let byes =
    List.filter (function _, P.Bye -> true | _ -> false) out
  in
  check_int "both clients get bye" 2 (List.length byes);
  O.Scheduld.shutdown core

let watch_events () =
  let core = mk () in
  let watcher = O.Scheduld.connect core in
  let owner = O.Scheduld.connect core in
  req core ~client:watcher P.Watch;
  submit core ~client:owner "lu:8";
  flush_all core;
  let out = replies core in
  let placed_for cid =
    List.exists
      (function c, P.Placed _ when c = cid -> true | _ -> false)
      out
  in
  Util.check_bool "owner sees placed" true (placed_for owner);
  Util.check_bool "watcher sees placed" true (placed_for watcher);
  O.Scheduld.shutdown core

let deadline_missed () =
  let core = mk () in
  let client = O.Scheduld.connect core in
  submit core ~client "lu:8" ~deadline:0.5;
  flush_all core;
  (match
     List.find_map
       (function _, P.Done { missed; _ } -> Some missed | _ -> None)
       (replies core)
   with
  | Some true -> ()
  | _ -> Alcotest.fail "a 0.5-unit deadline on lu:8 must be missed");
  O.Scheduld.shutdown core

let inline_graph () =
  let g = build_graph (7, 1, 10) in
  let text = O.Graph_io.to_string g in
  let core = mk () in
  let client = O.Scheduld.connect core in
  req core ~client
    (P.Submit
       {
         spec = P.Inline text;
         heuristic = None;
         model = None;
         priority = 0;
         deadline = None;
         placements = true;
       });
  flush_all core;
  let direct =
    O.Export.fingerprint
      ((O.Registry.find (O.Scheduld.default_config.O.Scheduld.heuristic))
         .O.Registry.scheduler O.Params.default (Lazy.force plat) g)
  in
  (match
     List.find_map
       (function
         | _, P.Placed { fingerprint; valid; placements; _ } ->
             Some (fingerprint, valid, placements)
         | _ -> None)
       (replies core)
   with
  | Some (fp, valid, Some rows) ->
      Alcotest.(check string) "inline fingerprint matches direct" direct fp;
      Util.check_bool "inline schedule valid" true valid;
      check_int "one placement row per task" (O.Graph.n_tasks g)
        (List.length rows)
  | _ -> Alcotest.fail "expected a placed event with placements");
  O.Scheduld.shutdown core

let server_counters () =
  let core = mk () in
  O.Obs_counters.enable ();
  O.Obs_counters.reset ();
  let client = O.Scheduld.connect core in
  submit core ~client "lu:8";
  submit core ~client "lu:9";
  req core ~client P.Ping;
  flush_all core;
  let c = O.Obs_counters.snapshot () in
  O.Obs_counters.disable ();
  check_int "requests" 3 c.O.Obs_counters.requests;
  check_int "queued jobs" 2 c.O.Obs_counters.queued_jobs;
  check_int "batched replans" 1 c.O.Obs_counters.batched_replans;
  Util.check_bool "pp shows the scheduld block" true
    (Util.contains
       (Format.asprintf "%a" O.Obs_counters.pp c)
       "batched replans:  1");
  O.Scheduld.shutdown core

let suite =
  [
    wire_roundtrip;
    wire_one_line;
    request_roundtrip;
    response_roundtrip;
    parse_total;
    fuzz_bytes;
    fuzz_json;
    Alcotest.test_case "fuzz: junk classifies as parse/bad-request" `Quick
      junk_is_parse_error;
    Alcotest.test_case "offline equivalence: all heuristics x 2 models" `Slow
      offline_equivalence;
    Alcotest.test_case "concurrency determinism at jobs 1/2/4" `Slow
      concurrency_determinism;
    Alcotest.test_case "admission: priority shedding + queue-full" `Quick
      shedding;
    Alcotest.test_case "admission: replan budget" `Quick budget;
    Alcotest.test_case "cancel lifecycle" `Quick cancel;
    Alcotest.test_case "drain broadcasts bye and stops" `Quick drain_lifecycle;
    Alcotest.test_case "watchers receive every job's events" `Quick
      watch_events;
    Alcotest.test_case "deadline misses are reported" `Quick deadline_missed;
    Alcotest.test_case "inline DAG submission" `Quick inline_graph;
    Alcotest.test_case "scheduld obs counters" `Quick server_counters;
  ]
