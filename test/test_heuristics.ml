(* The schedulers: paper regressions (Fig. 1 example, Fig. 4 toy), ranking
   and load-balance algebra, and the central integration property — every
   heuristic produces an independently-valid schedule on random graphs ×
   platforms × models. *)

module O = Onesched
open Util

let one_port = O.Comm_model.one_port
let macro = O.Comm_model.macro_dataflow

(* ---------------- paper regressions ---------------- *)

let fig1_tests =
  [
    Alcotest.test_case "Fig 1: macro-dataflow reaches makespan 3" `Quick
      (fun () ->
        let g = O.Fork.example_fig1 () in
        let plat = O.Platform.homogeneous ~p:5 ~link_cost:1. in
        let sched = O.Heft.schedule ~params:(O.Params.of_model macro) plat g in
        O.Validate.check_exn sched;
        check_float "makespan" 3. (O.Schedule.makespan sched));
    Alcotest.test_case "Fig 1: one-port optimum is 5" `Quick (fun () ->
        let g = O.Fork.example_fig1 () in
        match O.Fork_exact.of_graph g with
        | None -> Alcotest.fail "not recognised as a fork"
        | Some inst ->
            check_float "exact" 5. (O.Fork_exact.optimal_makespan ~max_procs:5 inst));
    Alcotest.test_case "Fig 1: one-port HEFT achieves the optimum" `Quick
      (fun () ->
        let g = O.Fork.example_fig1 () in
        let plat = O.Platform.homogeneous ~p:5 ~link_cost:1. in
        let sched = O.Heft.schedule plat g in
        O.Validate.check_exn sched;
        check_float "makespan" 5. (O.Schedule.makespan sched));
    Alcotest.test_case "Fig 1: macro allocation costs >= 6 under one-port"
      `Quick (fun () ->
        let g = O.Fork.example_fig1 () in
        let plat = O.Platform.homogeneous ~p:5 ~link_cost:1. in
        let sched = O.Schedule.create ~graph:g ~platform:plat ~model:one_port () in
        let engine = O.Engine.create sched in
        List.iter
          (fun (task, proc) -> O.Engine.schedule_on engine ~task ~proc)
          [ (0, 0); (1, 0); (2, 0); (3, 1); (4, 2); (5, 3); (6, 4) ];
        O.Validate.check_exn sched;
        check_bool "at least 6" true (O.Schedule.makespan sched >= 6.));
  ]

let toy_tests =
  [
    Alcotest.test_case "Fig 4: HEFT mapping matches the paper" `Quick (fun () ->
        let g = O.Toy.graph () in
        let plat = O.Platform.homogeneous ~p:2 ~link_cost:1. in
        let sched = O.Heft.schedule plat g in
        O.Validate.check_exn sched;
        (* a0 -> P0, b0 -> P1, then a1 a2 on P0, a3 on P1, ... (Fig. 4) *)
        let proc v = (O.Schedule.placement_exn sched v).O.Schedule.proc in
        check_int "a0 on P0" 0 (proc 0);
        check_int "b0 on P1" 1 (proc 1);
        check_int "a1 on P0" 0 (proc 2);
        check_int "a2 on P0" 0 (proc 3);
        check_int "a3 on P1" 1 (proc 4);
        check_float "HEFT makespan 5" 5. (O.Schedule.makespan sched);
        check_int "HEFT sends 4 messages" 4 (O.Schedule.n_comm_events sched));
    Alcotest.test_case "Fig 4: ILHA halves the communications" `Quick (fun () ->
        let g = O.Toy.graph () in
        let plat = O.Platform.homogeneous ~p:2 ~link_cost:1. in
        let sched = O.Ilha.schedule ~params:(O.Params.make ~b:8 ()) plat g in
        O.Validate.check_exn sched;
        let proc v = (O.Schedule.placement_exn sched v).O.Schedule.proc in
        (* zero-comm scan: a1 a2 a3 with P0, b3 b2 b1 with P1 *)
        List.iter (fun v -> check_int "a-child on P0" 0 (proc v)) [ 2; 3; 4 ];
        List.iter (fun v -> check_int "b-child on P1" 1 (proc v)) [ 7; 8; 9 ];
        check_int "ILHA sends 2 messages" 2 (O.Schedule.n_comm_events sched);
        check_bool "no worse than HEFT" true (O.Schedule.makespan sched <= 5.));
  ]

(* ---------------- ranking and load balance ---------------- *)

let ranking_tests =
  [
    qtest ~count:100 "upward rank decreases along edges" graph_gen (fun params ->
        let g = build_graph params in
        let plat = O.Platform.paper_platform () in
        let rank = O.Ranking.upward g plat in
        List.for_all
          (fun (e : O.Graph.edge) -> rank.(e.src) > rank.(e.dst) -. 1e-9)
          (O.Graph.edges g));
    qtest ~count:100 "downward rank increases along edges" graph_gen
      (fun params ->
        let g = build_graph params in
        let plat = O.Platform.paper_platform () in
        let rank = O.Ranking.downward g plat in
        List.for_all
          (fun (e : O.Graph.edge) -> rank.(e.dst) > rank.(e.src) -. 1e-9)
          (O.Graph.edges g));
    Alcotest.test_case "upward rank of a unit task on the paper platform"
      `Quick (fun () ->
        let g = O.Graph.create ~weights:[| 1. |] ~edges:[] () in
        let plat = O.Platform.paper_platform () in
        check_float "avg execution" (150. /. 19.)
          (O.Ranking.upward g plat).(0));
  ]

let load_balance_tests =
  [
    Alcotest.test_case "paper chunk size and distribution" `Quick (fun () ->
        let plat = O.Platform.paper_platform () in
        check_int "M = 38" 38 (O.Load_balance.perfect_chunk plat);
        let counts = O.Load_balance.distribute plat ~n:38 in
        Alcotest.(check (array int))
          "5,5,5,5,5,3,3,3,2,2"
          [| 5; 5; 5; 5; 5; 3; 3; 3; 2; 2 |]
          counts;
        check_float "round time 30" 30. (O.Load_balance.round_time plat counts));
    Alcotest.test_case "fractions sum to one" `Quick (fun () ->
        let plat = O.Platform.paper_platform () in
        check_float "sum" 1.
          (Array.fold_left ( +. ) 0. (O.Load_balance.fractions plat)));
    qtest ~count:200 "distribution is optimal vs brute force"
      QCheck2.Gen.(tup2 (int_range 0 12) (int_bound 3))
      (fun (n, which) ->
        let plat =
          match which with
          | 0 -> O.Platform.homogeneous ~p:3 ~link_cost:1.
          | 1 -> O.Platform.fully_connected ~cycle_times:[| 1.; 2. |] ~link_cost:1. ()
          | 2 -> O.Platform.fully_connected ~cycle_times:[| 2.; 3.; 5. |] ~link_cost:1. ()
          | _ -> O.Platform.fully_connected ~cycle_times:[| 1.; 1.; 4. |] ~link_cost:1. ()
        in
        let p = O.Platform.p plat in
        let counts = O.Load_balance.distribute plat ~n in
        (* brute force: all compositions of n over p processors *)
        let best = ref infinity in
        let rec go i remaining acc =
          if i = p - 1 then begin
            let counts = Array.of_list (List.rev (remaining :: acc)) in
            best := min !best (O.Load_balance.round_time plat counts)
          end
          else
            for c = 0 to remaining do
              go (i + 1) (remaining - c) (c :: acc)
            done
        in
        go 0 n [];
        Array.fold_left ( + ) 0 counts = n
        && Prelude.Stats.fequal (O.Load_balance.round_time plat counts) !best);
    qtest ~count:100 "is_optimal accepts its own output" QCheck2.Gen.(int_bound 50)
      (fun n ->
        let plat = O.Platform.paper_platform () in
        O.Load_balance.is_optimal plat (O.Load_balance.distribute plat ~n));
  ]

(* ---------------- the central integration property ---------------- *)

let all_schedulers =
  List.map
    (fun e -> (e.O.Registry.name, e.O.Registry.scheduler))
    O.Registry.all
  @ [
      ( "ilha[scan=1comm]",
        fun params plat g ->
          O.Ilha.schedule
            ~params:(O.Params.with_scan params O.Params.Scan_one_comm)
            plat g );
      ( "ilha[resched]",
        fun params plat g ->
          O.Ilha.schedule
            ~params:(O.Params.with_reschedule params true)
            plat g );
      ( "heft[append]",
        fun params plat g ->
          O.Heft.schedule
            ~params:(O.Params.with_policy params O.Engine.Append)
            plat g );
    ]

let validity_tests =
  List.map
    (fun (name, scheduler) ->
      qtest ~count:60
        (Printf.sprintf "%s always yields a valid schedule" name)
        QCheck2.Gen.(tup3 graph_gen platform_gen model_gen)
        (fun (params, plat, model) ->
          let g = build_graph params in
          scheduler_checks_out ~params:(O.Params.of_model model) plat g
            scheduler))
    all_schedulers

let determinism_tests =
  [
    qtest ~count:30 "HEFT and ILHA are deterministic"
      QCheck2.Gen.(tup2 graph_gen platform_gen)
      (fun (params, plat) ->
        let g = build_graph params in
        let once () =
          let s = O.Ilha.schedule plat g in
          ( O.Schedule.makespan s,
            List.map
              (fun v -> (O.Schedule.placement_exn s v).O.Schedule.proc)
              (List.init (O.Graph.n_tasks g) Fun.id) )
        in
        once () = once ());
  ]

(* ---------------- optimality cross-checks on tiny instances ----------- *)

let tiny_graph_gen =
  QCheck2.Gen.(
    let* seed = int_bound 100_000 in
    let* size = int_range 2 6 in
    return (seed, size))

let optimality_tests =
  [
    qtest ~count:25 "exhaustive search never beats the validator"
      tiny_graph_gen
      (fun (seed, size) ->
        let rng = O.Rng.create ~seed in
        let g =
          O.Generators.erdos_renyi rng ~n:size ~edge_prob:0.4 ~max_weight:3
            ~max_data:3
        in
        let plat = O.Platform.homogeneous ~p:2 ~link_cost:1. in
        let best = O.Search.best_schedule plat g in
        O.Validate.check_exn best;
        true);
    qtest ~count:25 "search lower-bounds every list heuristic" tiny_graph_gen
      (fun (seed, size) ->
        let rng = O.Rng.create ~seed in
        let g =
          O.Generators.erdos_renyi rng ~n:size ~edge_prob:0.4 ~max_weight:3
            ~max_data:3
        in
        let plat = O.Platform.fully_connected ~cycle_times:[| 1.; 2. |] ~link_cost:1. () in
        let bound = O.Search.best_makespan plat g in
        List.for_all
          (fun ((_, scheduler) : string * O.Registry.scheduler) ->
            let s = scheduler O.Params.default plat g in
            O.Schedule.makespan s >= bound -. 1e-9)
          all_schedulers);
    qtest ~count:40 "Fork_exact agrees with exhaustive search on forks"
      QCheck2.Gen.(tup2 (int_bound 100_000) (int_range 1 4))
      (fun (seed, children) ->
        let rng = O.Rng.create ~seed in
        let child_weights =
          Array.init children (fun _ -> float_of_int (O.Rng.int_in rng 1 4))
        in
        let child_data =
          Array.init children (fun _ -> float_of_int (O.Rng.int_in rng 0 4))
        in
        let g =
          O.Fork.of_weights ~parent_weight:(float_of_int (O.Rng.int_in rng 0 3))
            ~child_weights ~child_data
        in
        let p = children + 1 in
        let plat = O.Platform.homogeneous ~p ~link_cost:1. in
        let inst = Option.get (O.Fork_exact.of_graph g) in
        let exact = O.Fork_exact.optimal_makespan ~max_procs:p inst in
        let search = O.Search.best_makespan plat g in
        Prelude.Stats.fequal exact search);
  ]

let suite =
  fig1_tests @ toy_tests @ ranking_tests @ load_balance_tests @ validity_tests
  @ determinism_tests @ optimality_tests
