(* SVG rendering, plot rendering, and the extension kernel. *)

module O = Onesched
open Util

let svg_tests =
  [
    Alcotest.test_case "svg is well-formed and complete" `Quick (fun () ->
        let g = O.Kernels.fork_join ~n:4 ~ccr:2. in
        let plat = O.Platform.homogeneous ~p:3 ~link_cost:1. in
        let sched = O.Heft.schedule plat g in
        let svg = O.Svg.render sched in
        check_bool "opens" true (contains svg "<svg");
        check_bool "closes" true (contains svg "</svg>");
        (* every task appears as a label or title *)
        for v = 0 to O.Graph.n_tasks g - 1 do
          check_bool
            (Printf.sprintf "task v%d drawn" v)
            true
            (contains svg (Printf.sprintf "v%d" v))
        done;
        (* every comm appears with its endpoints *)
        List.iter
          (fun (c : O.Schedule.comm) ->
            check_bool "comm drawn" true
              (contains svg (Printf.sprintf "e%d: P%d -&gt; P%d" c.O.Schedule.edge
                               c.O.Schedule.src_proc c.O.Schedule.dst_proc)
              || contains svg (Printf.sprintf "e%d" c.O.Schedule.edge)))
          (O.Schedule.comms sched);
        check_bool "processor lanes" true (contains svg ">P0<"));
    Alcotest.test_case "macro-dataflow hides port lanes" `Quick (fun () ->
        let g = O.Kernels.fork_join ~n:3 ~ccr:2. in
        let plat = O.Platform.homogeneous ~p:2 ~link_cost:1. in
        let sched = O.Heft.schedule ~params:(O.Params.of_model O.Comm_model.macro_dataflow) plat g in
        let default = O.Svg.render sched in
        let forced = O.Svg.render ~show_ports:true sched in
        check_bool "smaller without ports" true
          (String.length default < String.length forced));
    Alcotest.test_case "escapes xml metacharacters" `Quick (fun () ->
        let g =
          O.Graph.create ~name:"a<b&c" ~weights:[| 1. |] ~edges:[] ()
        in
        let plat = O.Platform.homogeneous ~p:1 ~link_cost:1. in
        let sched = O.Heft.schedule plat g in
        let svg = O.Svg.render sched in
        check_bool "escaped" true (contains svg "a&lt;b&amp;c"));
  ]

let plot_tests =
  [
    Alcotest.test_case "plot places markers for every series" `Quick (fun () ->
        let out =
          O.Plot.render ~x_label:"n" ~y_label:"speedup"
            [
              ("Heft", [ (100., 4.5); (200., 5.0) ]);
              ("Ilha", [ (100., 5.0); (200., 5.5) ]);
            ]
        in
        check_bool "H marker" true (contains out "H");
        check_bool "I marker" true (contains out "I");
        check_bool "legend" true (contains out "H=Heft"));
    Alcotest.test_case "overlapping points print a star" `Quick (fun () ->
        let out =
          O.Plot.render ~x_label:"x" ~y_label:"y"
            [ ("a", [ (1., 1.) ]); ("b", [ (1., 1.) ]) ]
        in
        check_bool "star" true (contains out "*"));
    Alcotest.test_case "empty input rejected" `Quick (fun () ->
        check_bool "raises" true
          (try
             ignore (O.Plot.render ~x_label:"x" ~y_label:"y" [ ("a", []) ]);
             false
           with Invalid_argument _ -> true));
  ]

let cholesky_tests =
  [
    Alcotest.test_case "cholesky shape and weights" `Quick (fun () ->
        let n = 8 in
        let g = O.Kernels.cholesky ~n ~ccr:1. in
        check_int "triangle size" (n * (n - 1) / 2) (O.Graph.n_tasks g);
        O.Graph.check_invariants g;
        (* first task (1,2) has weight 1; the far corner (1,n) has n-1 *)
        check_float "near diagonal" 1. (O.Graph.weight g 0);
        check_float "far corner" (float_of_int (n - 1)) (O.Graph.weight g (n - 2)));
    qtest ~count:20 "cholesky schedules validate"
      QCheck2.Gen.(int_range 3 12)
      (fun n ->
        let g = O.Kernels.cholesky ~n ~ccr:10. in
        let plat = O.Platform.paper_platform () in
        let sched = O.Ilha.schedule plat g in
        O.Validate.is_valid sched);
  ]

let suite = svg_tests @ plot_tests @ cholesky_tests
