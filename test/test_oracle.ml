(* Exhaustive tiny-instance oracle.

   On instances small enough to brute-force (≤ 6 tasks, 2-3 processors,
   one-port model) the repo can check its heuristics against ground
   truth rather than against each other:

   - the oracle is {!Search.best_makespan}, which explores every
     interleaving of (ready-task × processor) choices — a superset of
     the schedules any allocation can induce under the engine's greedy
     communication rule;
   - enumerating all p^n allocations and committing each in topological
     order must always produce a Validate-clean schedule and never beat
     the oracle (topological orders are among the interleavings the
     oracle explores);
   - every registered heuristic must produce a valid schedule with
     makespan ≥ the oracle's;
   - on fork graphs over a homogeneous unit platform, {!Fork_exact}'s
     closed-form enumeration must agree with the oracle exactly. *)

module O = Onesched
open Util

let eps = 1e-9

let tiny_gen =
  QCheck2.Gen.(
    let* seed = int_bound 100_000 in
    let* n = int_range 2 6 in
    let* p = int_range 2 3 in
    let* hetero = bool in
    return (seed, n, p, hetero))

let build_tiny (seed, n, p, hetero) =
  let rng = O.Rng.create ~seed in
  let g =
    O.Generators.erdos_renyi rng ~n ~edge_prob:0.4 ~max_weight:3 ~max_data:3
  in
  let plat =
    if hetero then
      O.Platform.fully_connected
        ~cycle_times:(Array.init p (fun i -> float_of_int (i + 1)))
        ~link_cost:1. ()
    else O.Platform.homogeneous ~p ~link_cost:1.
  in
  (g, plat)

let print_tiny (seed, n, p, hetero) =
  Printf.sprintf "tiny(seed=%d,n=%d,p=%d,hetero=%b)" seed n p hetero

(* Commit every task in deterministic topological order onto a fixed
   allocation; communications place greedily exactly as in every
   heuristic. *)
let schedule_allocation ?(model = O.Comm_model.one_port) g plat alloc =
  let sched = O.Schedule.create ~graph:g ~platform:plat ~model () in
  let engine = O.Engine.create sched in
  Array.iter
    (fun v -> O.Engine.schedule_on engine ~task:v ~proc:alloc.(v))
    (O.Graph.topological_order g);
  sched

(* All p^n allocations as digit vectors. *)
let iter_allocations ~n ~p f =
  let alloc = Array.make n 0 in
  let rec go v = if v = n then f alloc
    else
      for q = 0 to p - 1 do
        alloc.(v) <- q;
        go (v + 1)
      done
  in
  go 0

let allocation_tests =
  [
    QCheck_alcotest.to_alcotest ~rand:(qcheck_rand ())
      (QCheck2.Test.make ~count:20
         ~name:"every allocation is valid and none beats the oracle"
         ~print:print_tiny tiny_gen (fun params ->
           let g, plat = build_tiny params in
           let n = O.Graph.n_tasks g and p = O.Platform.p plat in
           let oracle = O.Search.best_makespan plat g in
           let ok = ref true in
           iter_allocations ~n ~p (fun alloc ->
               let sched = schedule_allocation g plat alloc in
               (match O.Validate.check sched with
               | Ok () -> ()
               | Error es ->
                   Printf.printf "INVALID allocation: %s\n" (List.hd es);
                   ok := false);
               if O.Schedule.makespan sched < oracle -. eps then begin
                 Printf.printf "allocation beats oracle: %g < %g\n"
                   (O.Schedule.makespan sched) oracle;
                 ok := false
               end);
           !ok));
  ]

let heuristic_tests =
  [
    QCheck_alcotest.to_alcotest ~rand:(qcheck_rand ())
      (QCheck2.Test.make ~count:25
         ~name:"every registered heuristic is valid and ≥ the oracle"
         ~print:print_tiny tiny_gen (fun params ->
           let g, plat = build_tiny params in
           let oracle = O.Search.best_makespan plat g in
           List.for_all
             (fun (e : O.Registry.entry) ->
               let sched = e.O.Registry.scheduler O.Params.default plat g in
               match O.Validate.check sched with
               | Error es ->
                   Printf.printf "%s INVALID: %s\n" e.O.Registry.name
                     (List.hd es);
                   false
               | Ok () ->
                   let m = O.Schedule.makespan sched in
                   if O.Schedule.has_dups sched then begin
                     (* duplication may legitimately beat the single-copy
                        oracle, but must never lose to plain HEFT *)
                     let heft = O.Heft.schedule plat g in
                     if m > O.Schedule.makespan heft +. eps then begin
                       Printf.printf "%s loses to plain HEFT: %g > %g\n"
                         e.O.Registry.name m (O.Schedule.makespan heft);
                       false
                     end
                     else true
                   end
                   else if m < oracle -. eps then begin
                     Printf.printf "%s beats the oracle: %g < %g\n"
                       e.O.Registry.name m oracle;
                     false
                   end
                   else true)
             O.Registry.all));
  ]

(* The oracle argument carries over to the new regimes unchanged: both
   the brute-force search and every heuristic drive the same engine, so
   on BSP and latency+overhead rungs too the search's makespan lower
   bounds anything an allocation or a heuristic can produce. *)
let regime_models =
  [ O.Comm_model.bsp ~g:1. ~l:2.; O.Comm_model.latency_overhead ~o:1. ~l:1. ]

let regime_tests =
  [
    QCheck_alcotest.to_alcotest ~rand:(qcheck_rand ())
      (QCheck2.Test.make ~count:10
         ~name:"BSP/latency rungs: allocations and heuristics respect the oracle"
         ~print:print_tiny tiny_gen (fun tparams ->
           let g, plat = build_tiny tparams in
           let n = O.Graph.n_tasks g and p = O.Platform.p plat in
           List.for_all
             (fun model ->
               let params = O.Params.of_model model in
               let oracle = O.Search.best_makespan ~params plat g in
               let ok = ref true in
               iter_allocations ~n ~p (fun alloc ->
                   let sched = schedule_allocation ~model g plat alloc in
                   (match O.Validate.check sched with
                   | Ok () -> ()
                   | Error es ->
                       Printf.printf "INVALID allocation under %s: %s\n"
                         (O.Comm_model.name model) (List.hd es);
                       ok := false);
                   if O.Schedule.makespan sched < oracle -. eps then begin
                     Printf.printf "allocation beats oracle under %s: %g < %g\n"
                       (O.Comm_model.name model)
                       (O.Schedule.makespan sched) oracle;
                     ok := false
                   end);
               List.iter
                 (fun (e : O.Registry.entry) ->
                   let sched = e.O.Registry.scheduler params plat g in
                   match O.Validate.check sched with
                   | Error es ->
                       Printf.printf "%s INVALID under %s: %s\n"
                         e.O.Registry.name (O.Comm_model.name model)
                         (List.hd es);
                       ok := false
                   | Ok () ->
                       let m = O.Schedule.makespan sched in
                       if m < oracle -. eps then begin
                         Printf.printf "%s beats the oracle under %s: %g < %g\n"
                           e.O.Registry.name (O.Comm_model.name model) m oracle;
                         ok := false
                       end)
                 O.Registry.all;
               !ok)
             regime_models));
  ]

let fork_gen =
  QCheck2.Gen.(
    let* seed = int_bound 100_000 in
    let* children = int_range 1 4 in
    let* p = int_range 2 3 in
    return (seed, children, p))

let fork_tests =
  [
    QCheck_alcotest.to_alcotest ~rand:(qcheck_rand ())
      (QCheck2.Test.make ~count:40
         ~name:"fork_exact matches the oracle on fork graphs"
         ~print:(fun (seed, c, p) -> Printf.sprintf "fork(seed=%d,c=%d,p=%d)" seed c p)
         fork_gen (fun (seed, children, p) ->
           let rng = O.Rng.create ~seed in
           let child_weights =
             Array.init children (fun _ -> float_of_int (O.Rng.int_in rng 1 4))
           in
           let child_data =
             Array.init children (fun _ -> float_of_int (O.Rng.int_in rng 0 4))
           in
           let g =
             O.Fork.of_weights
               ~parent_weight:(float_of_int (O.Rng.int_in rng 0 3))
               ~child_weights ~child_data
           in
           let plat = O.Platform.homogeneous ~p ~link_cost:1. in
           let inst = Option.get (O.Fork_exact.of_graph g) in
           let exact = O.Fork_exact.optimal_makespan ~max_procs:p inst in
           let oracle = O.Search.best_makespan plat g in
           Prelude.Stats.fequal exact oracle));
  ]

(* The undo-based DFS widened the guard from 8 to 10 tasks and counts
   bound-pruned nodes. Chains keep the ready set narrow, so a 10-task
   instance near the guard stays fast. *)
let search_tests =
  [
    Alcotest.test_case "search accepts a 10-task chain" `Quick (fun () ->
        let g =
          O.Graph.create ~name:"chain10" ~weights:(Array.make 10 1.)
            ~edges:(List.init 9 (fun i -> (i, i + 1, 1.)))
            ()
        in
        let plat = O.Platform.homogeneous ~p:2 ~link_cost:1. in
        let sched = O.Search.best_schedule plat g in
        (match O.Validate.check sched with
        | Ok () -> ()
        | Error es -> Alcotest.fail (List.hd es));
        (* a unit chain on a homogeneous platform runs sequentially *)
        check_float "optimal chain makespan" 10. (O.Schedule.makespan sched));
    Alcotest.test_case "search rejects 11 tasks" `Quick (fun () ->
        let g =
          O.Graph.create ~name:"chain11" ~weights:(Array.make 11 1.)
            ~edges:(List.init 10 (fun i -> (i, i + 1, 1.)))
            ()
        in
        let plat = O.Platform.homogeneous ~p:2 ~link_cost:1. in
        Alcotest.check_raises "guard"
          (Invalid_argument "Search.best_schedule: more than 10 tasks")
          (fun () -> ignore (O.Search.best_makespan plat g)));
    Alcotest.test_case "bound pruning is counted" `Quick (fun () ->
        let tb = O.Suite.find "fork-join" in
        let g = tb.O.Suite.build ~n:4 ~ccr:0.5 in
        let plat = O.Platform.homogeneous ~p:3 ~link_cost:1. in
        O.Obs_counters.enable ();
        O.Obs_counters.reset ();
        Fun.protect ~finally:O.Obs_counters.disable (fun () ->
            ignore (O.Search.best_makespan plat g);
            check_bool "search_pruned_nodes > 0" true
              ((O.Obs_counters.snapshot ()).O.Obs_counters.search_pruned_nodes
              > 0)));
  ]

let suite =
  allocation_tests @ heuristic_tests @ regime_tests @ fork_tests @ search_tests
