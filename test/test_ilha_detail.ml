(* ILHA's chunk mechanics in isolation: quotas, scans, chunk boundaries,
   the reschedule variant, plus engine no-overlap semantics. *)

module O = Onesched
open Util

let one_port = O.Comm_model.one_port

let quota_tests =
  [
    Alcotest.test_case "zero-comm scan respects the quota" `Quick (fun () ->
        (* 6 unit children of one parent, cheap messages (0.5), B = 6:
           the chunk weighs 6, each of the two same-speed processors gets
           quota 3, so Step 1 may place exactly 3 children with the parent
           (zero communications); the other 3 are EFT-placed, costing at
           most 3 messages. *)
        let weights = Array.make 8 1. in
        let edges = List.init 6 (fun i -> (0, 2 + i, 0.5)) in
        let g = O.Graph.create ~name:"quota" ~weights ~edges () in
        let plat = O.Platform.homogeneous ~p:2 ~link_cost:1. in
        let sched = O.Ilha.schedule ~params:(O.Params.make ~b:6 ()) plat g in
        O.Validate.check_exn sched;
        let p0 = O.Schedule.proc_of_exn sched 0 in
        let on_p0 =
          List.length
            (List.filter
               (fun v -> O.Schedule.proc_of_exn sched v = p0)
               (List.init 6 (fun i -> 2 + i)))
        in
        check_bool "at least the quota stays local" true (on_p0 >= 3);
        check_bool "at most the step-2 tasks communicate" true
          (O.Schedule.n_comm_events sched <= 3));
    Alcotest.test_case "one-comm scan accepts single-crossing placements"
      `Quick (fun () ->
        (* toy graph: ab1/ab2 have parents on both processors; the
           one-comm scan may place them where only one message crosses,
           under quota, instead of falling to HEFT *)
        let g = O.Toy.graph () in
        let plat = O.Platform.homogeneous ~p:2 ~link_cost:1. in
        let sched =
          O.Ilha.schedule ~params:(O.Params.make ~b:8 ~scan:O.Params.Scan_one_comm ()) plat g
        in
        O.Validate.check_exn sched;
        check_bool "no more comms than the zero-comm variant" true
          (O.Schedule.n_comm_events sched <= 2));
    Alcotest.test_case "chunking processes high ranks first" `Quick (fun () ->
        (* B = 1 degenerates ILHA to HEFT exactly *)
        let g = O.Kernels.doolittle ~n:12 ~ccr:10. in
        let plat = O.Platform.paper_platform () in
        let heft = O.Heft.schedule plat g in
        let ilha1 = O.Ilha.schedule ~params:(O.Params.make ~b:1 ()) plat g in
        check_float "identical makespans"
          (O.Schedule.makespan heft) (O.Schedule.makespan ilha1);
        for v = 0 to O.Graph.n_tasks g - 1 do
          check_int "identical mapping"
            (O.Schedule.proc_of_exn heft v)
            (O.Schedule.proc_of_exn ilha1 v)
        done);
    qtest ~count:30 "reschedule variant stays valid and complete"
      QCheck2.Gen.(tup2 graph_gen platform_gen)
      (fun (params, plat) ->
        let g = build_graph params in
        let sched = O.Ilha.schedule ~params:(O.Params.make ~reschedule:true ()) plat g in
        O.Schedule.all_placed sched && O.Validate.is_valid sched);
    qtest ~count:30 "any B >= 1 yields complete valid schedules"
      QCheck2.Gen.(tup2 graph_gen (int_range 1 60))
      (fun (params, b) ->
        let g = build_graph params in
        let plat = O.Platform.paper_platform () in
        let sched = O.Ilha.schedule ~params:(O.Params.make ~b ()) plat g in
        O.Schedule.all_placed sched && O.Validate.is_valid sched);
    Alcotest.test_case "B < 1 is rejected" `Quick (fun () ->
        let g = O.Toy.graph () in
        let plat = O.Platform.homogeneous ~p:2 ~link_cost:1. in
        Alcotest.check_raises "b=0" (Invalid_argument "Ilha.schedule: b < 1")
          (fun () -> ignore (O.Ilha.schedule ~params:(O.Params.make ~b:0 ()) plat g)));
    Alcotest.test_case "default B is the perfect chunk when integral" `Quick
      (fun () ->
        check_int "paper platform" 38 (O.Ilha.default_b (O.Platform.paper_platform ()));
        let fractional =
          O.Platform.fully_connected ~cycle_times:[| 1.5; 2.5 |] ~link_cost:1. ()
        in
        check_int "falls back to p" 2 (O.Ilha.default_b fractional));
  ]

let no_overlap_tests =
  [
    Alcotest.test_case "no-overlap comm waits for the sender's computation"
      `Quick (fun () ->
        let g =
          O.Graph.create ~weights:[| 2.; 1.; 1. |]
            ~edges:[ (0, 2, 3.) ]
            ()
        in
        let plat = O.Platform.homogeneous ~p:2 ~link_cost:1. in
        let model = O.Comm_model.no_overlap one_port in
        let sched = O.Schedule.create ~graph:g ~platform:plat ~model () in
        let engine = O.Engine.create sched in
        O.Engine.schedule_on engine ~task:0 ~proc:0;
        (* task 1 also on P0, right after task 0: [2, 3) *)
        O.Engine.schedule_on engine ~task:1 ~proc:0;
        (* now evaluate task 2 on P1: the message (3 units) cannot overlap
           P0's computation, so it starts at 3 and arrives at 6 *)
        let ev = O.Engine.evaluate engine ~task:2 ~proc:1 in
        check_float "est = 6" 6. ev.O.Engine.est;
        O.Engine.commit engine ~task:2 ev;
        O.Validate.check_exn sched);
    Alcotest.test_case "with overlap the same message leaves at 2" `Quick
      (fun () ->
        let g =
          O.Graph.create ~weights:[| 2.; 1.; 1. |]
            ~edges:[ (0, 2, 3.) ]
            ()
        in
        let plat = O.Platform.homogeneous ~p:2 ~link_cost:1. in
        let sched = O.Schedule.create ~graph:g ~platform:plat ~model:one_port () in
        let engine = O.Engine.create sched in
        O.Engine.schedule_on engine ~task:0 ~proc:0;
        O.Engine.schedule_on engine ~task:1 ~proc:0;
        let ev = O.Engine.evaluate engine ~task:2 ~proc:1 in
        check_float "est = 5" 5. ev.O.Engine.est);
  ]

let metrics_tests =
  [
    Alcotest.test_case "load imbalance is zero for a perfectly balanced run"
      `Quick (fun () ->
        let g = O.Graph.create ~weights:[| 2.; 2. |] ~edges:[] () in
        let plat = O.Platform.homogeneous ~p:2 ~link_cost:1. in
        let sched = O.Heft.schedule plat g in
        let m = O.Metrics.compute sched in
        check_float "balanced" 0. m.O.Metrics.max_load_imbalance;
        check_float "speedup 2" 2. m.O.Metrics.speedup);
    Alcotest.test_case "gantt hides port rows under macro-dataflow" `Quick
      (fun () ->
        let g = O.Kernels.fork_join ~n:3 ~ccr:2. in
        let plat = O.Platform.homogeneous ~p:2 ~link_cost:1. in
        let sched = O.Heft.schedule ~params:(O.Params.of_model O.Comm_model.macro_dataflow) plat g in
        let out = O.Gantt.render sched in
        check_bool "no send row" false (contains out "send");
        let out' = O.Gantt.render ~show_ports:true sched in
        check_bool "forced send row" true (contains out' "send"));
  ]

let suite = quota_tests @ no_overlap_tests @ metrics_tests
