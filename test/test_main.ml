let () =
  Alcotest.run "onesched"
    [
      ("prelude", Test_prelude.suite);
      ("timeline", Test_timeline.suite);
      ("graph", Test_graph.suite);
      ("platform", Test_platform.suite);
      ("schedule", Test_schedule.suite);
      ("engine", Test_engine.suite);
      ("heuristics", Test_heuristics.suite);
      ("complexity", Test_complexity.suite);
      ("simkit", Test_simkit.suite);
      ("kernels", Test_kernels.suite);
      ("experiments", Test_experiments.suite);
      ("extensions", Test_extensions.suite);
      ("link-contention", Test_link_contention.suite);
      ("executor-io", Test_simkit2.suite);
      ("improvers", Test_improvers.suite);
      ("ilha-detail", Test_ilha_detail.suite);
      ("unrelated", Test_unrelated.suite);
      ("rendering", Test_svg.suite);
      ("obs", Test_obs.suite);
      ("duplication", Test_duplication.suite);
      ("faults", Test_faults.suite);
      ("online", Test_online.suite);
      ("pool", Test_pool.suite);
      ("oracle", Test_oracle.suite);
      ("models", Test_models.suite);
      ("scale", Test_scale.suite);
      ("scheduld", Test_scheduld.suite);
    ]
