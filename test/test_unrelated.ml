(* Unrelated-machines layer, anchored to the original HEFT paper's
   published worked example (Topcuoglu, Hariri, Wu — Fig. 2 and Table 2
   there): the upward ranks and the schedule length 80 are documented
   values, so this is a regression test against the literature itself. *)

module O = Onesched
open Util

let unrelated_tests =
  [
    Alcotest.test_case "Topcuoglu ranks match the published table" `Quick
      (fun () ->
        let g, plat, costs = O.Unrelated.topcuoglu_example () in
        let ranks = O.Unrelated.ranks costs g plat in
        List.iteri
          (fun v expected ->
            Alcotest.(check (float 0.05))
              (Printf.sprintf "rank of task %d" (v + 1))
              expected ranks.(v))
          [ 108.; 77.; 80.; 80.; 69.; 63.33; 42.67; 35.67; 44.33; 14.67 ]);
    Alcotest.test_case "Topcuoglu HEFT schedule length is 80" `Quick (fun () ->
        let g, plat, costs = O.Unrelated.topcuoglu_example () in
        let sched =
          O.Unrelated.heft ~params:(O.Params.of_model O.Comm_model.macro_dataflow) ~costs plat g
        in
        O.Validate.check_exn sched;
        check_float "published makespan" 80. (O.Schedule.makespan sched));
    Alcotest.test_case "one-port can only lengthen the example" `Quick
      (fun () ->
        let g, plat, costs = O.Unrelated.topcuoglu_example () in
        let one_port =
          O.Schedule.makespan
            (O.Unrelated.heft ~costs plat g)
        in
        check_bool "80 <= one-port result" true (one_port >= 80. -. 1e-9));
    Alcotest.test_case "cost matrix shape is checked" `Quick (fun () ->
        let g, plat, _ = O.Unrelated.topcuoglu_example () in
        check_bool "bad shape rejected" true
          (try
             ignore (O.Unrelated.ranks [| [| 1. |] |] g plat);
             false
           with Invalid_argument _ -> true));
    qtest ~count:40 "matrix-backed schedules validate on random graphs"
      QCheck2.Gen.(tup2 graph_gen (int_bound 10_000))
      (fun (params, seed) ->
        let g = build_graph params in
        let plat = O.Platform.homogeneous ~p:3 ~link_cost:1. in
        let rng = O.Rng.create ~seed in
        let costs =
          Array.init (O.Graph.n_tasks g) (fun _ ->
              Array.init 3 (fun _ -> float_of_int (O.Rng.int_in rng 1 20)))
        in
        let sched = O.Unrelated.heft ~costs plat g in
        O.Validate.is_valid sched);
    Alcotest.test_case "related machines are the degenerate matrix" `Quick
      (fun () ->
        (* exec_time w*t as an explicit matrix must reproduce plain HEFT *)
        let g = O.Kernels.doolittle ~n:10 ~ccr:10. in
        let plat = O.Platform.paper_platform () in
        let costs =
          Array.init (O.Graph.n_tasks g) (fun v ->
              Array.init 10 (fun q ->
                  O.Graph.weight g v *. O.Platform.cycle_time plat q))
        in
        let plain = O.Heft.schedule plat g in
        let matrix =
          O.Unrelated.heft ~costs plat g
        in
        (* ranks differ (arithmetic vs harmonic averaging), so schedules
           may differ; but the degenerate matrix through the SAME rank
           function as plain HEFT must agree exactly.  Check the weaker,
           exact invariant: per-(task, proc) durations agree. *)
        for v = 0 to O.Graph.n_tasks g - 1 do
          let p1 = O.Schedule.placement_exn plain v in
          check_float "duration rule agrees"
            (O.Schedule.exec_duration matrix ~task:v ~proc:p1.O.Schedule.proc)
            (p1.O.Schedule.finish -. p1.O.Schedule.start)
        done);
  ]

let suite = unrelated_tests
