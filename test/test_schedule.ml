(* Schedule builder, resource state, metrics, Gantt, and — crucially — the
   independent validator: every violation class must be detected. *)

module O = Onesched
open Util

let chain_graph () =
  O.Graph.create ~name:"chain" ~weights:[| 1.; 2. |] ~edges:[ (0, 1, 3.) ] ()

let plat2 () = O.Platform.homogeneous ~p:2 ~link_cost:1.

let make_sched ?(model = O.Comm_model.one_port) g =
  O.Schedule.create ~graph:g ~platform:(plat2 ()) ~model ()

let builder_tests =
  [
    Alcotest.test_case "placement bookkeeping" `Quick (fun () ->
        let g = chain_graph () in
        let s = make_sched g in
        check_bool "not placed" false (O.Schedule.is_placed s 0);
        O.Schedule.place_task s ~task:0 ~proc:0 ~start:0.;
        check_bool "placed" true (O.Schedule.is_placed s 0);
        let p = O.Schedule.placement_exn s 0 in
        check_float "finish = start + w*t" 1. p.O.Schedule.finish;
        check_int "n_placed" 1 (O.Schedule.n_placed s);
        check_bool "all placed" false (O.Schedule.all_placed s));
    Alcotest.test_case "double placement rejected" `Quick (fun () ->
        let s = make_sched (chain_graph ()) in
        O.Schedule.place_task s ~task:0 ~proc:0 ~start:0.;
        Alcotest.check_raises "double"
          (Invalid_argument "Schedule.place_task: already placed") (fun () ->
            O.Schedule.place_task s ~task:0 ~proc:1 ~start:5.));
    Alcotest.test_case "comm recording and availability" `Quick (fun () ->
        let g = chain_graph () in
        let s = make_sched g in
        O.Schedule.place_task s ~task:0 ~proc:0 ~start:0.;
        let arrival = O.Schedule.add_comm s ~edge:0 ~src_proc:0 ~dst_proc:1 ~start:1. in
        check_float "arrival = start + data*link" 4. arrival;
        check_float "edge availability" 4. (O.Schedule.edge_available_at s ~edge:0);
        check_int "events" 1 (O.Schedule.n_comm_events s);
        check_float "comm time" 3. (O.Schedule.total_comm_time s);
        O.Schedule.place_task s ~task:1 ~proc:1 ~start:4.;
        check_float "makespan" 6. (O.Schedule.makespan s));
    Alcotest.test_case "copy is independent" `Quick (fun () ->
        let g = chain_graph () in
        let s = make_sched g in
        O.Schedule.place_task s ~task:0 ~proc:0 ~start:0.;
        let c = O.Schedule.copy s in
        O.Schedule.place_task c ~task:1 ~proc:0 ~start:1.;
        check_int "copy advanced" 2 (O.Schedule.n_placed c);
        check_int "original untouched" 1 (O.Schedule.n_placed s));
    Alcotest.test_case "makespan demands completeness" `Quick (fun () ->
        let s = make_sched (chain_graph ()) in
        Alcotest.check_raises "incomplete"
          (Invalid_argument "Schedule.makespan: unplaced tasks") (fun () ->
            ignore (O.Schedule.makespan s)));
  ]

(* Build a correct two-processor schedule for the chain, then break it in
   every way the validator must catch. *)
let valid_chain () =
  let g = chain_graph () in
  let s = make_sched g in
  O.Schedule.place_task s ~task:0 ~proc:0 ~start:0.;
  let arrival = O.Schedule.add_comm s ~edge:0 ~src_proc:0 ~dst_proc:1 ~start:1. in
  O.Schedule.place_task s ~task:1 ~proc:1 ~start:arrival;
  s

let expect_violation name build =
  Alcotest.test_case name `Quick (fun () ->
      let s = build () in
      match O.Validate.check s with
      | Ok () -> Alcotest.fail "validator accepted a broken schedule"
      | Error _ -> ())

let validator_tests =
  [
    Alcotest.test_case "accepts a correct schedule" `Quick (fun () ->
        match O.Validate.check (valid_chain ()) with
        | Ok () -> ()
        | Error es -> Alcotest.fail (String.concat "; " es));
    expect_violation "catches unplaced tasks" (fun () ->
        let s = make_sched (chain_graph ()) in
        O.Schedule.place_task s ~task:0 ~proc:0 ~start:0.;
        s);
    expect_violation "catches precedence violation (local)" (fun () ->
        let g = chain_graph () in
        let s = make_sched g in
        (* disjoint slots, but the successor runs first *)
        O.Schedule.place_task s ~task:1 ~proc:0 ~start:0.;
        O.Schedule.place_task s ~task:0 ~proc:0 ~start:3.;
        s);
    expect_violation "catches missing communication" (fun () ->
        let g = chain_graph () in
        let s = make_sched g in
        O.Schedule.place_task s ~task:0 ~proc:0 ~start:0.;
        O.Schedule.place_task s ~task:1 ~proc:1 ~start:1.;
        s);
    expect_violation "catches start before arrival" (fun () ->
        let g = chain_graph () in
        let s = make_sched g in
        O.Schedule.place_task s ~task:0 ~proc:0 ~start:0.;
        let _ = O.Schedule.add_comm s ~edge:0 ~src_proc:0 ~dst_proc:1 ~start:1. in
        O.Schedule.place_task s ~task:1 ~proc:1 ~start:2.;
        s);
    expect_violation "catches comm before data ready" (fun () ->
        let g = chain_graph () in
        let s = make_sched g in
        O.Schedule.place_task s ~task:0 ~proc:0 ~start:0.;
        (* task 0 finishes at 1 but the message leaves at 0.5 *)
        let a = O.Schedule.add_comm s ~edge:0 ~src_proc:0 ~dst_proc:1 ~start:0.5 in
        O.Schedule.place_task s ~task:1 ~proc:1 ~start:a;
        s);
  ]

(* Port conflicts cannot reach the validator through the public API: the
   builder itself rejects them when committing to the port timelines.
   These tests pin down that enforcement for each discipline. *)
let fork2 () =
  O.Graph.create ~name:"fork2" ~weights:[| 1.; 1.; 1. |]
    ~edges:[ (0, 1, 4.); (0, 2, 4.) ]
    ()

let chain3 () =
  O.Graph.create ~name:"chain3" ~weights:[| 1.; 1.; 1. |]
    ~edges:[ (0, 1, 4.); (1, 2, 4.) ]
    ()

let port_tests =
  [
    Alcotest.test_case "one-port rejects overlapping sends" `Quick (fun () ->
        let plat = O.Platform.homogeneous ~p:3 ~link_cost:1. in
        let s =
          O.Schedule.create ~graph:(fork2 ()) ~platform:plat
            ~model:O.Comm_model.one_port ()
        in
        O.Schedule.place_task s ~task:0 ~proc:0 ~start:0.;
        let _ = O.Schedule.add_comm s ~edge:0 ~src_proc:0 ~dst_proc:1 ~start:1. in
        check_bool "second simultaneous send rejected" true
          (try
             ignore (O.Schedule.add_comm s ~edge:1 ~src_proc:0 ~dst_proc:2 ~start:2.);
             false
           with Invalid_argument _ -> true));
    Alcotest.test_case "macro-dataflow allows overlapping sends" `Quick (fun () ->
        let plat = O.Platform.homogeneous ~p:3 ~link_cost:1. in
        let s =
          O.Schedule.create ~graph:(fork2 ()) ~platform:plat
            ~model:O.Comm_model.macro_dataflow ()
        in
        O.Schedule.place_task s ~task:0 ~proc:0 ~start:0.;
        let _ = O.Schedule.add_comm s ~edge:0 ~src_proc:0 ~dst_proc:1 ~start:1. in
        let _ = O.Schedule.add_comm s ~edge:1 ~src_proc:0 ~dst_proc:2 ~start:1. in
        check_int "both committed" 2 (O.Schedule.n_comm_events s));
    Alcotest.test_case "bidirectional allows send during receive" `Quick (fun () ->
        let plat = O.Platform.homogeneous ~p:3 ~link_cost:1. in
        let s =
          O.Schedule.create ~graph:(chain3 ()) ~platform:plat
            ~model:O.Comm_model.one_port ()
        in
        (* P1 receives e0 during [1,5) and sends e1 during [2,6):
           legal under the bi-directional discipline. *)
        let _ = O.Schedule.add_comm s ~edge:0 ~src_proc:0 ~dst_proc:1 ~start:1. in
        let _ = O.Schedule.add_comm s ~edge:1 ~src_proc:1 ~dst_proc:2 ~start:2. in
        check_int "both committed" 2 (O.Schedule.n_comm_events s));
    Alcotest.test_case "unidirectional pools send and receive" `Quick (fun () ->
        let plat = O.Platform.homogeneous ~p:3 ~link_cost:1. in
        let s =
          O.Schedule.create ~graph:(chain3 ()) ~platform:plat
            ~model:O.Comm_model.one_port_unidirectional ()
        in
        let _ = O.Schedule.add_comm s ~edge:0 ~src_proc:0 ~dst_proc:1 ~start:1. in
        check_bool "send during receive rejected" true
          (try
             ignore (O.Schedule.add_comm s ~edge:1 ~src_proc:1 ~dst_proc:2 ~start:2.);
             false
           with Invalid_argument _ -> true));
    Alcotest.test_case "no-overlap couples comm and compute" `Quick (fun () ->
        let plat = O.Platform.homogeneous ~p:3 ~link_cost:1. in
        let s =
          O.Schedule.create ~graph:(fork2 ()) ~platform:plat
            ~model:(O.Comm_model.no_overlap O.Comm_model.one_port) ()
        in
        O.Schedule.place_task s ~task:0 ~proc:0 ~start:0.;
        check_bool "comm during execution rejected" true
          (try
             ignore (O.Schedule.add_comm s ~edge:0 ~src_proc:0 ~dst_proc:1 ~start:0.5);
             false
           with Invalid_argument _ -> true));
  ]

let metrics_tests =
  [
    Alcotest.test_case "metrics of the chain schedule" `Quick (fun () ->
        let s = valid_chain () in
        let m = O.Metrics.compute s in
        check_float "makespan" 6. m.O.Metrics.makespan;
        check_float "sequential" 3. m.O.Metrics.sequential_time;
        check_float "speedup" 0.5 m.O.Metrics.speedup;
        check_int "comms" 1 m.O.Metrics.n_comm_events;
        check_float "busy" 3. m.O.Metrics.total_busy_time);
    Alcotest.test_case "gantt and listing mention every task" `Quick (fun () ->
        let s = valid_chain () in
        let gantt = O.Gantt.render s in
        let listing = O.Gantt.listing s in
        check_bool "gantt rows" true (contains gantt "P0" && contains gantt "P1");
        check_bool "listing execs" true
          (contains listing "exec v0" && contains listing "exec v1");
        check_bool "listing comm" true (contains listing "comm e0"));
  ]

(* Snapshot / restore and in-place retraction — the schedule half of the
   incremental kernel. *)
let snapshot_tests =
  [
    Alcotest.test_case "snapshot/restore undoes placements and comms" `Quick
      (fun () ->
        let g = chain_graph () in
        let s = make_sched g in
        O.Schedule.place_task s ~task:0 ~proc:0 ~start:0.;
        let snap = O.Schedule.snapshot s in
        let a = O.Schedule.add_comm s ~edge:0 ~src_proc:0 ~dst_proc:1 ~start:1. in
        O.Schedule.place_task s ~task:1 ~proc:1 ~start:a;
        check_int "two placed" 2 (O.Schedule.n_placed s);
        O.Schedule.restore s snap;
        check_int "one placed" 1 (O.Schedule.n_placed s);
        check_int "comm gone" 0 (O.Schedule.n_comm_events s);
        check_bool "task 1 unplaced" false (O.Schedule.is_placed s 1);
        (* the undone work can be redone — ports and procs are free again *)
        let a = O.Schedule.add_comm s ~edge:0 ~src_proc:0 ~dst_proc:1 ~start:1. in
        O.Schedule.place_task s ~task:1 ~proc:1 ~start:a;
        (match O.Validate.check s with
        | Ok () -> ()
        | Error es -> Alcotest.fail (String.concat "; " es)));
    Alcotest.test_case "unplace_task frees the compute slot" `Quick (fun () ->
        let g = chain_graph () in
        let s = make_sched g in
        O.Schedule.place_task s ~task:0 ~proc:0 ~start:0.;
        O.Schedule.unplace_task s 0;
        check_bool "unplaced" false (O.Schedule.is_placed s 0);
        check_int "none placed" 0 (O.Schedule.n_placed s);
        (* the slot is genuinely free: the same placement goes back in *)
        O.Schedule.place_task s ~task:0 ~proc:0 ~start:0.);
    Alcotest.test_case "unplace_task rejects unplaced tasks" `Quick (fun () ->
        let s = make_sched (chain_graph ()) in
        Alcotest.check_raises "not placed"
          (Invalid_argument "Schedule.unplace_task: not placed")
          (fun () -> O.Schedule.unplace_task s 0));
    Alcotest.test_case "truncate_comms retracts port reservations" `Quick
      (fun () ->
        let plat = O.Platform.homogeneous ~p:3 ~link_cost:1. in
        let s =
          O.Schedule.create ~graph:(fork2 ()) ~platform:plat
            ~model:O.Comm_model.one_port ()
        in
        O.Schedule.place_task s ~task:0 ~proc:0 ~start:0.;
        let _ = O.Schedule.add_comm s ~edge:0 ~src_proc:0 ~dst_proc:1 ~start:1. in
        (* the send port is busy: an overlapping second send is illegal *)
        check_bool "port busy" true
          (try
             ignore
               (O.Schedule.add_comm s ~edge:1 ~src_proc:0 ~dst_proc:2 ~start:2.);
             false
           with Invalid_argument _ -> true);
        O.Schedule.truncate_comms s ~down_to:0;
        check_int "comm gone" 0 (O.Schedule.n_comm_events s);
        (* ... and the port is free again *)
        let _ = O.Schedule.add_comm s ~edge:1 ~src_proc:0 ~dst_proc:2 ~start:2. in
        check_int "second send accepted" 1 (O.Schedule.n_comm_events s));
    Alcotest.test_case "restore rejects a snapshot whose comms were truncated"
      `Quick (fun () ->
        let g = chain_graph () in
        let s = make_sched g in
        O.Schedule.place_task s ~task:0 ~proc:0 ~start:0.;
        let _ = O.Schedule.add_comm s ~edge:0 ~src_proc:0 ~dst_proc:1 ~start:1. in
        let snap = O.Schedule.snapshot s in
        O.Schedule.truncate_comms s ~down_to:0;
        Alcotest.check_raises "stale snapshot"
          (Invalid_argument
             "Schedule.restore: comms were truncated past the snapshot")
          (fun () -> O.Schedule.restore s snap));
  ]

let suite =
  builder_tests @ validator_tests @ port_tests @ metrics_tests
  @ snapshot_tests
