Domain-parallel sweeps are byte-identical to serial.  The only column
allowed to differ is wall_s (field 10, per-row CPU seconds), so the
diffs below cut it out and everything else must match exactly:

  $ ../../bin/schedcli.exe batch --scale 0.05 --jobs 1 | cut -d, -f1-9,11 > serial.csv
  $ ../../bin/schedcli.exe batch --scale 0.05 --jobs 4 | cut -d, -f1-9,11 > par4.csv
  $ diff serial.csv par4.csv && echo identical
  identical

`grid` is the historical name of the same sweep and takes --jobs too:

  $ ../../bin/schedcli.exe grid --scale 0.05 --jobs 2 | cut -d, -f1-9,11 > grid2.csv
  $ diff serial.csv grid2.csv && echo identical
  identical

--stats appends the engine counters merged across all worker domains at
the pool barrier; the totals and their report order are independent of
--jobs (the order is the Obs.Counters.pp contract):

  $ ../../bin/schedcli.exe batch --scale 0.05 --jobs 1 --stats | grep -E "evaluations|hits|probes|hops|commits|copies" > stats1.txt
  $ cat stats1.txt
  evaluations:      748682
  pruned evaluations: 123024
  route-cache hits: 1354419
  gap probes:       0
  joint gap probes: 2126751
  tentative hops:   1378069
  commits:          130821
  copies:           0

  $ ../../bin/schedcli.exe batch --scale 0.05 --jobs 4 --stats | grep -E "evaluations|hits|probes|hops|commits|copies" > stats4.txt
  $ diff stats1.txt stats4.txt && echo jobs-independent
  jobs-independent

The jitter Monte-Carlo splits the RNG per trial, so its statistics are
bit-identical whatever the job count:

  $ ../../bin/schedcli.exe robustness -t lu -n 12 --trials 40 --jitter 0.3 --jobs 1 > mc1.txt
  $ ../../bin/schedcli.exe robustness -t lu -n 12 --trials 40 --jitter 0.3 --jobs 4 > mc4.txt
  $ diff mc1.txt mc4.txt && echo jobs-independent
  jobs-independent
