The model ladder: `list` enumerates all nine rungs — the seven
port-regime models plus the BSP and latency+overhead representatives
(names are comma-free so CSV consumers can split on commas):

  $ ../../bin/schedcli.exe list | sed -n '/models:/,/experiments:/p' | head -10
  models:
    macro-dataflow
    one-port
    one-port-unidir
    link-contention
    one-port+links
    one-port-no-overlap
    one-port-unidir-no-overlap
    bsp:g=1:L=5
    logp:o=1:L=2

BSP supersteps defer communication to barrier phases costing g·h + L;
the metrics grow a phases line (absent under every port rung) and the
validator checks the phase windows:

  $ ../../bin/schedcli.exe run -t stencil -n 10 -H heft --model bsp:g=1:L=5 2>&1 | grep -v "scheduled in"
  makespan: 1061
  sequential: 600
  speedup: 0.566 (bound 7.60, efficiency 7.4%)
  comm events: 41 (total time 935)
  comm phases: 25 (total time 535)
  mean utilization: 5.8%
  lower-bound quality: 13.439x (1.0 = provably optimal)
  schedule: VALID

The latency+overhead rung prices a hop at 2o + data·cost + L, with only
the o-windows occupying the endpoint ports:

  $ ../../bin/schedcli.exe run -t lu -n 10 -H heft --model logp:o=1:L=2 2>&1 | grep -v "scheduled in"
  makespan: 1242
  sequential: 1710
  speedup: 1.377 (bound 7.60, efficiency 18.1%)
  comm events: 15 (total time 1010)
  mean utilization: 13.8%
  lower-bound quality: 1.769x (1.0 = provably optimal)
  schedule: VALID

Engine counters stay deterministic on the new rungs (times vary, so
only counter lines are checked):

  $ ../../bin/schedcli.exe run -t lu -n 10 -H heft --model bsp:g=1:L=5 --stats 2>&1 | grep -E "evaluations|commits|copies"
  evaluations:      370
  pruned evaluations: 80
  commits:          45
  copies:           0

Arbitrary parameters parse through the bsp:g=…:L=… / logp:o=…:L=… forms
and flow into the batch sweep's model column (wall_s cut: it varies):

  $ ../../bin/schedcli.exe batch --scale 0.05 --model logp:o=1:L=2 -t stencil -H heft | cut -d, -f1-9,11
  testbed,n,heuristic,model,b,makespan,speedup,comms,comm_time,valid
  stencil,5,heft,logp:o=1:L=2,,90,1.666667,34,476,true
  stencil,10,heft,logp:o=1:L=2,,201,2.985075,176,2464,true
  stencil,15,heft,logp:o=1:L=2,,312,4.326923,437,6118,true
  stencil,20,heft,logp:o=1:L=2,,476,5.042017,756,10584,true
  stencil,25,heft,logp:o=1:L=2,,623,6.019262,1195,16730,true

Unknown model names fail with the full ladder in the message:

  $ ../../bin/schedcli.exe run -t lu -n 10 --model bogus
  schedcli: option '--model': Comm_model.of_name: unknown model "bogus" (valid:
            macro-dataflow, one-port, one-port-unidir, link-contention,
            one-port+links, one-port-no-overlap, one-port-unidir-no-overlap,
            bsp:g=<g>:L=<L>, logp:o=<o>:L=<L>)
  Usage: schedcli run [OPTION]…
  Try 'schedcli run --help' or 'schedcli --help' for more information.
  [124]
