The CLI lists everything it knows about:

  $ ../../bin/schedcli.exe list | head -8
  testbeds:
    lu
    laplace
    stencil
    fork-join
    doolittle
    ldmt
  heuristics:

Structural analysis is deterministic:

  $ ../../bin/schedcli.exe analyze -t lu -n 10
  graph "lu-10": 45 tasks, 72 edges, total weight 285
  tasks: 45
  edges: 72
  total weight: 285
  total data: 4800
  depth: 17
  width: 5
  max in-degree: 2
  max out-degree: 2
  critical path weight: 117
  ccr: 16.842

E3 reproduces the paper's numbers exactly:

  $ ../../bin/schedcli.exe figures --only e3
  [e3] Load balance and speedup bound (§5.2)
  paper: M = 38; 38 tasks in 30 time units; bound 228/30 = 7.6
  
  quantity                         measured             paper              
  -------------------------------  -------------------  -------------------
  perfect-balance chunk M                           38                   38
  distribution of 38 tasks         5,5,5,5,5,3,3,3,2,2  5,5,5,5,5,3,3,3,2,2
  round time of that distribution                   30                   30
  speedup bound                                   7.60  7.60 (= 228/30)    
  

A run on a user-supplied graph and platform, with the validator verdict:

  $ cat > app.tg <<'TG'
  > graph demo
  > task 0 1
  > task 1 2
  > task 2 2
  > edge 0 1 3
  > edge 0 2 3
  > TG
  $ cat > duo.plat <<'PLAT'
  > platform duo
  > cycle-times 1 1
  > link-cost 1
  > PLAT
  $ ../../bin/schedcli.exe run --graph app.tg --platform duo.plat -H heft 2>&1 | grep -v "scheduled in"
  makespan: 5
  sequential: 5
  speedup: 1.000 (bound 2.00, efficiency 50.0%)
  comm events: 0 (total time 0)
  mean utilization: 50.0%
  lower-bound quality: 1.000x (1.0 = provably optimal)
  schedule: VALID

Exports are well-formed:

  $ ../../bin/schedcli.exe export -t fork-join -n 3 --format csv | head -3
  kind,name,processor,resource,start,finish,duration
  task,v0,0,cpu,0,6,6
  task,v1,0,cpu,6,12,6

Observability: --stats prints deterministic counters (times vary, so
only the counter lines are checked), --trace writes a balanced Chrome
trace:

  $ ../../bin/schedcli.exe run -t lu -n 10 --stats 2>&1 | grep -E "evaluations|commits|copies"
  evaluations:      263
  pruned evaluations: 187
  commits:          45
  copies:           0

The improvers run inside the observed scope, so --stats accounts for
their rollback/replay work; the incremental-kernel counter block only
prints when one of its counters is nonzero (it is absent above):

  $ ../../bin/schedcli.exe run -t lu -n 10 --refine --stats 2>&1 | grep -E "refine:|rollbacks|replayed|search pruned"
  refine: 1228 -> 1228 (0 moves, 244 evaluations)
  rollbacks:        246
  replayed tasks:   2448
  search pruned:    0

Annealing is deterministic per seed:

  $ ../../bin/schedcli.exe run -t lu -n 10 --anneal --anneal-steps 50 --seed 42 2>&1 | grep "anneal:"
  anneal: 1228 -> 1228 (12 accepted, 0 improved)

  $ ../../bin/schedcli.exe run -t lu -n 10 -H ilha --trace lu.trace.json > /dev/null
  $ grep -c '"ph":"B"' lu.trace.json > begins
  $ grep -c '"ph":"E"' lu.trace.json > ends
  $ diff begins ends && echo balanced
  balanced
  $ grep -o '"ph":"C"' lu.trace.json
  "ph":"C"

The layered:<layers>:<width> synthetic testbed is accepted everywhere a
paper testbed is, is deterministic per spec, and malformed specs fail
at option parsing with a pointed message:

  $ ../../bin/schedcli.exe analyze -t layered:6:4 -n 1 | head -3
  graph "random-layered": 15 tasks, 13 edges, total weight 71
  tasks: 15
  edges: 13
  $ ../../bin/schedcli.exe run -t layered:6:4 -n 1 -H heft 2>&1 | grep -E "makespan|schedule:"
  makespan: 240
  schedule: VALID
  $ ../../bin/schedcli.exe robustness -t layered:6:4 -n 1 --trials 5 2>&1 | head -2
  nominal: 312
  mean: 364.554
  $ ../../bin/schedcli.exe run -t layered:abc -n 1 2>&1 | head -2
  schedcli: option '-t': Suite.find: malformed layered spec "layered:abc";
            expected layered:<layers>:<width> with positive integers
  $ ../../bin/schedcli.exe run -t layered:0:5 -n 1 2>&1 | head -3
  schedcli: option '-t': Suite.find: malformed layered spec "layered:0:5"
            (layers must be >= 1); expected layered:<layers>:<width> with
            positive integers
