scheduld end to end on a temp Unix socket: the daemon in the
background, the client subcommands against it.  Everything below is
deterministic — the plan, its fingerprint and the service counters are
pinned (the socket lives in the cram sandbox cwd, so the path stays
under the AF_UNIX length limit).

  $ ../../bin/schedcli.exe serve -s s.sock -H heft --stats > server.log 2>&1 &
  $ ../../bin/schedcli.exe client ping -s s.sock
  pong

A watcher subscribed before the submission sees the job's events too:

  $ ../../bin/schedcli.exe client watch -s s.sock > watch.out &
  $ sleep 0.5

Submit lu:20 (job-spec ccr defaults to 1) and wait for its events:

  $ ../../bin/schedcli.exe client submit -s s.sock --job lu:20
  accepted job 0 (queued 1)
  placed job 0: makespan 3393 tasks 190 valid (batch of 1)
  fingerprint: 46c8f0fbc7770eda88bfd06c883c350e
  done job 0: makespan 3393

Offline equivalence: the same spec through `run` is bit-identical:

  $ ../../bin/schedcli.exe run -t lu -n 20 -c 1 -H heft --fingerprint | grep fingerprint
  fingerprint: 46c8f0fbc7770eda88bfd06c883c350e

  $ ../../bin/schedcli.exe client status -s s.sock
  job 0: done lu:20 makespan 3393

A second daemon on the same socket must refuse, not steal it:

  $ ../../bin/schedcli.exe serve -s s.sock
  schedcli: already listening on s.sock
  [2]

Drain finishes the backlog, says goodbye to every connected client and
shuts the daemon down:

  $ ../../bin/schedcli.exe client drain -s s.sock
  draining (0 pending)
  bye
  $ wait

  $ cat watch.out
  watching
  placed job 0: makespan 3393 tasks 190 valid (batch of 1)
  fingerprint: 46c8f0fbc7770eda88bfd06c883c350e
  done job 0: makespan 3393
  bye

The daemon's exit summary and --stats counters, including the scheduld
block (requests counts ping + watch + submit + status + drain; the one
submission was one queued job served by one batched re-plan):

  $ cat server.log
  scheduld: listening on s.sock (heuristic heft, 1 jobs)
  scheduld: served 1 jobs in 1 batches (1 submitted, 0 shed, 0 failed, 0 cancelled, 0 errors)
  evaluations:      878
  pruned evaluations: 1022
  route-cache hits: 1252
  gap probes:       0
  joint gap probes: 2186
  tentative hops:   1308
  commits:          190
  copies:           0
  requests:         5
  batched replans:  1
  queued jobs:      1
