Task duplication end to end.  The registry lists the duplication-aware
HEFT variant:

  $ ../../bin/schedcli.exe list | grep heft-dup
    heft-dup HEFT with task duplication (Wang-Sinnen style)

On FORK-JOIN at ccr 1 the fork root's copies remove the bottleneck
communications: heft-dup beats plain HEFT, the metrics grow a
duplicates line, and the copy-set schedule validates:

  $ ../../bin/schedcli.exe run -t fork-join -n 100 --ccr 1 -H heft 2>/dev/null | grep -E "^makespan|^duplicates"
  makespan: 110
  $ ../../bin/schedcli.exe run -t fork-join -n 100 --ccr 1 -H heft-dup --duplication --fingerprint 2>/dev/null | grep -E "^makespan|^duplicates|VALID|fingerprint"
  makespan: 104
  duplicates: 5 (total time 30)
  schedule: VALID
  fingerprint: 0c9a8c60f6c412bb631a7516c3f8ea58

The allocation improvers move whole tasks and sit out duplicated
schedules:

  $ ../../bin/schedcli.exe run -t fork-join -n 100 --ccr 1 -H heft-dup --duplication --refine --anneal 2>/dev/null | head -2
  refine: skipped (schedule holds duplicate copies)
  anneal: skipped (schedule holds duplicate copies)

--duplication rejects junk and negative limits at parse time:

  $ ../../bin/schedcli.exe run -t lu -H heft-dup --duplication=banana 2>&1 | head -2
  schedcli: option '--duplication': invalid duplication limit "banana"
            (expected a non-negative integer)

  $ ../../bin/schedcli.exe run -t lu -H heft-dup --duplication=-1 2>&1 | head -2
  schedcli: option '--duplication': invalid duplication limit "-1" (expected a
            non-negative integer)

A surviving replica satisfies a crashed task.  On this fork, plain HEFT
parks one child remotely; a crash at t=7 strands it and repair must
re-map it, stretching the makespan:

  $ cat > dup-pin.txt << EOF
  > graph dup-pin
  > task 0 2
  > task 1 4
  > task 2 4
  > task 3 4
  > edge 0 1 6
  > edge 0 2 6
  > edge 0 3 6
  > EOF

  $ ../../bin/schedcli.exe robustness --graph dup-pin.txt --homogeneous 2 -H heft --fault crash:1@7 --trials 1 | head -8
  nominal makespan: 12
  faults:           crash:1@7
  without repair: STRANDED 1 tasks (4/5 events fired, partial makespan 10)
  crash:            proc 1 @ 7
  frozen tasks:     3
  re-mapped tasks:  1
  nominal makespan: 12
  repaired makespan:14 (+16.7%)

heft-dup duplicated the root next to its children, so by t=7 the
crashed processor holds only finished work — the crash costs zero
re-plans and the makespan keeps its duplication win:

  $ ../../bin/schedcli.exe robustness --graph dup-pin.txt --homogeneous 2 -H heft-dup --duplication --fault crash:1@7 --trials 1 | head -8
  nominal makespan: 10
  faults:           crash:1@7
  without repair: completed, makespan 10
  crash:            proc 1 @ 7
  frozen tasks:     4
  re-mapped tasks:  0
  nominal makespan: 10
  repaired makespan:10 (+0.0%)
