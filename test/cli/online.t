Rolling-horizon online scheduling end to end.  A quiet trace — one job,
no faults — is just the offline heuristic; everything above the latency
line is deterministic:

  $ ../../bin/schedcli.exe online -t lu -n 20 -H heft | sed 's/latency:.*/latency:   (wall clock)/'
  events processed: 1
  jobs:             1 (1 completed, 0 shed, 0 rejected)
  replans:          1
  deadline misses:  0
  retries:          0
  final makespan:   6090
  validator:        ok (1 replans checked)
  replan latency:   (wall clock)

A crash mid-run triggers a suffix re-plan; an outage is retried with
exponential backoff until the retry budget gives the processor up, and
the rejoin at the window's end triggers a catch-up re-plan.  Every
re-plan is validated and the executed prefix is frozen bit for bit (the
driver aborts otherwise):

  $ ../../bin/schedcli.exe online -t lu -n 20 -H heft --fault crash:1@2000 --fault outage:2@3000-4000 | sed 's/latency:.*/latency:   (wall clock)/'
  events processed: 4
  jobs:             1 (1 completed, 0 shed, 0 rejected)
  replans:          4
  deadline misses:  0
  retries:          3
  final makespan:   8940
  validator:        ok (4 replans checked)
  replan latency:   (wall clock)

The same trace re-planned from scratch lands on the same schedule — the
commit-log rewind is a pure speedup:

  $ ../../bin/schedcli.exe online -t lu -n 20 -H heft --fault crash:1@2000 --fault outage:2@3000-4000 --from-scratch | grep makespan
  final makespan:   8940

Traces can come from a file (arrivals, priorities and deadlines
included); graceful degradation sheds the low-priority job rather than
miss the impossible deadline on the high-priority one:

  $ cat > trace.txt <<'EOF'
  > # two competing jobs
  > arrive 0 lu:12 prio=0
  > arrive 0 stencil:12 prio=5 deadline=1
  > EOF
  $ ../../bin/schedcli.exe online --trace-file trace.txt | sed 's/latency:.*/latency:   (wall clock)/'
  events processed: 2
  jobs:             2 (1 completed, 1 shed, 0 rejected)
  replans:          3
  deadline misses:  1
  retries:          0
  final makespan:   144
  validator:        ok (3 replans checked)
  replan latency:   (wall clock)

Generated arrivals are deterministic per seed:

  $ ../../bin/schedcli.exe online -t lu -n 12 --arrival poisson:0.001:3 --seed 9 | head -2
  events processed: 3
  jobs:             3 (3 completed, 0 shed, 0 rejected)
  $ ../../bin/schedcli.exe online -t lu -n 12 --arrival poisson:0.001:3 --seed 9 | head -2
  events processed: 3
  jobs:             3 (3 completed, 0 shed, 0 rejected)

Online fault times have no nominal makespan to anchor against, so
relative times are rejected, as are malformed arrival specs:

  $ ../../bin/schedcli.exe online -t lu -n 12 --fault 'crash:1@25%'
  schedcli: --fault: online fault times must be absolute, got "crash:1@25%"
  [2]

  $ ../../bin/schedcli.exe online -t lu -n 12 --arrival 'poisson'
  schedcli: --arrival: expected poisson:RATE[:COUNT] or bursty:RATE:BURST[:COUNT], got "poisson"
  [2]

The layered generator's colon-ridden job specs parse in traces
(layered:LAYERS:WIDTH:N, with an optional :CCR), and malformed ones
report the expected shape:

  $ cat > layered.txt <<'EOF2'
  > arrive 0 layered:6:4:1
  > EOF2
  $ ../../bin/schedcli.exe online --trace-file layered.txt | head -2
  events processed: 1
  jobs:             1 (1 completed, 0 shed, 0 rejected)
  $ cat > badlayered.txt <<'EOF2'
  > arrive 0 layered:6
  > EOF2
  $ ../../bin/schedcli.exe online --trace-file badlayered.txt | head -2
  schedcli: Online.Event.of_string: "arrive 0 layered:6": expected layered:L:W:N[:CCR], got "layered:6" (grammar: arrive T TESTBED:N[:CCR] [prio=K] [deadline=D] | crash T P | down T P | rejoin T P (# starts a comment line))
