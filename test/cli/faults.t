Fault injection end to end: a crash at 25% of the nominal makespan
strands the nominal schedule, online repair re-maps the unstarted tasks
onto the survivors, and the repaired schedule validates and executes to
completion under the very same crash (seed 42 throughout — every line
below is deterministic):

  $ ../../bin/schedcli.exe robustness -t lu -n 20 -c 10 -H heft --fault 'crash:3@25%' --trials 20
  nominal makespan: 6090
  faults:           crash:3@1522.5
  without repair: STRANDED 91 tasks (140/261 events fired, partial makespan 5004)
  crash:            proc 3 @ 1522.5
  frozen tasks:     20
  re-mapped tasks:  170
  nominal makespan: 6090
  repaired makespan:6090 (+0.0%)
  repaired schedule: valid
  with repair: completed, makespan 6090
  monte-carlo:      20 trials, survived 20 (unschedulable rate 0%)
  makespan:         mean 6090  p95 6090  worst 6090

Outages defer dispatches into the window's end and degraded links
stretch every hop they touch — neither loses work:

  $ ../../bin/schedcli.exe robustness -t stencil -n 16 -c 10 -H ilha --fault 'outage:0@10-30%' --fault 'degrade:1x2' --trials 10
  nominal makespan: 786
  faults:           outage:0@10-235.8 degrade:1x2
  without repair: completed, makespan 1661.8 (3 dispatches deferred)
  monte-carlo:      10 trials, survived 10 (unschedulable rate 0%)
  makespan:         mean 1661.8  p95 1661.8  worst 1661.8

Flaky links retry with exponential backoff; the Monte-Carlo sweep
reports the makespan distribution and the retry/backoff totals:

  $ ../../bin/schedcli.exe robustness -t fork-join -n 24 -c 10 -H heft --fault 'flaky:0.2:8:0.5' --trials 25
  nominal makespan: 108
  faults:           flaky:0.2:8:0.5
  without repair: completed, makespan 139.5 (retries 3, backoff time 1.5)
  monte-carlo:      25 trials, survived 25 (unschedulable rate 0%)
  makespan:         mean 142.56  p95 173  worst 184
  retries:          96 total, backoff time 62 total

Without --fault the subcommand is the jitter Monte-Carlo, now with
split task/comm jitter and stddev/p99:

  $ ../../bin/schedcli.exe robustness -t lu -n 12 --trials 40 --jitter 0.2 --comm-jitter 0.5
  nominal: 2006
  mean: 2328.99
  stddev: 25.5671
  p95: 2365.78
  p99: 2378.98
  worst: 2381.88
  (40 trials, task jitter 20%, comm jitter 50%)

The Monte-Carlo seed defaults to 42 — spelling it out changes nothing —
and --seed pins any other draw just as deterministically:

  $ ../../bin/schedcli.exe robustness -t lu -n 12 --trials 40 --jitter 0.2 --comm-jitter 0.5 --seed 42
  nominal: 2006
  mean: 2328.99
  stddev: 25.5671
  p95: 2365.78
  p99: 2378.98
  worst: 2381.88
  (40 trials, task jitter 20%, comm jitter 50%)

  $ ../../bin/schedcli.exe robustness -t lu -n 12 --trials 40 --jitter 0.2 --comm-jitter 0.5 --seed 7
  nominal: 2006
  mean: 2317.33
  stddev: 35.1772
  p95: 2368.69
  p99: 2392.16
  worst: 2402.71
  (40 trials, task jitter 20%, comm jitter 50%)

Malformed specs are rejected at the command line with the grammar:

  $ ../../bin/schedcli.exe robustness -t lu -n 12 --fault 'meteor:1@2'
  schedcli: option '--fault': Fault.of_string: "meteor:1@2": unknown fault kind
            "meteor" (grammar: crash:P@T | outage:P@T1-T2 | degrade:PxF |
            flaky:PROB[:RETRIES[:BACKOFF]] | rejoin:P@T (times: absolute like
            120, or a percentage of the nominal makespan like 25%))
  Usage: schedcli robustness [OPTION]…
  Try 'schedcli robustness --help' or 'schedcli --help' for more information.
  [124]

Processor indices are checked against the platform:

  $ ../../bin/schedcli.exe robustness -t lu -n 12 --fault 'crash:99@10'
  schedcli: Fault.validate: processor 99 out of range (platform has 10)
  [2]
