(* The determinism contract of in-decision parallelism, and the
   supporting structures of the million-task path.

   [Params.eval_jobs] shards the candidate scan of one scheduling
   decision over the persistent domain team; the contract mirrors the
   sweep-level pool's: makespan, every placement and every communication
   event are bit-identical at any job count (only the pruning counters
   may differ, since each shard prunes against its own incumbent).  The
   suite proves it on every testbed x HEFT/ILHA (both scans, with and
   without reschedule) x one-port + macro-dataflow.

   Also here: the int-keyed ready heap against the generic Pqueue, and
   [Graph.of_arrays] against the list-based constructor. *)

module O = Onesched
open Util

let jobs_axis = [ 2; 4; 8 ]

let fingerprint sched =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf (Printf.sprintf "m=%h" (O.Schedule.makespan sched));
  let g = O.Schedule.graph sched in
  for v = 0 to O.Graph.n_tasks g - 1 do
    let pl = O.Schedule.placement_exn sched v in
    Buffer.add_string buf
      (Printf.sprintf ";t%d=%d:%h:%h" v pl.O.Schedule.proc pl.O.Schedule.start
         pl.O.Schedule.finish)
  done;
  List.iter
    (fun (c : O.Schedule.comm) ->
      Buffer.add_string buf
        (Printf.sprintf ";c%d=%d>%d:%h:%h" c.edge c.src_proc c.dst_proc c.start
           c.finish))
    (O.Schedule.comms sched);
  Digest.to_hex (Digest.string (Buffer.contents buf))

(* ---------------- eval_jobs determinism ---------------- *)

let models = [ O.Comm_model.one_port; O.Comm_model.macro_dataflow ]

let heuristics =
  [
    ("heft", fun params plat g -> O.Heft.schedule ~params plat g);
    ("ilha", fun params plat g -> O.Ilha.schedule ~params plat g);
    ( "ilha-resched",
      fun params plat g ->
        let params =
          O.Params.with_scan
            (O.Params.with_reschedule params true)
            O.Params.Scan_one_comm
        in
        O.Ilha.schedule ~params plat g );
  ]

let eval_jobs_tests =
  [
    Alcotest.test_case
      "eval_jobs is bit-identical on every testbed x heuristic x model"
      `Slow
      (fun () ->
        let plat = O.Platform.paper_platform () in
        List.iter
          (fun suite ->
            let n = max 8 suite.O.Suite.min_n in
            let g = suite.O.Suite.build ~n ~ccr:0.5 in
            List.iter
              (fun model ->
                List.iter
                  (fun (hname, run) ->
                    let schedule jobs =
                      let params =
                        O.Params.with_eval_jobs (O.Params.of_model model) jobs
                      in
                      fingerprint (run params plat g)
                    in
                    let baseline = schedule 1 in
                    List.iter
                      (fun jobs ->
                        Alcotest.(check string)
                          (Printf.sprintf "%s/%s/%s jobs=%d"
                             suite.O.Suite.name
                             (O.Comm_model.name model)
                             hname jobs)
                          baseline (schedule jobs))
                      jobs_axis)
                  heuristics)
              models)
          O.Suite.all);
    qtest ~count:12 "eval_jobs is bit-identical on random layered graphs"
      QCheck2.Gen.(
        let* seed = int_bound 10_000 in
        let* layers = int_range 2 6 in
        let* width = int_range 2 8 in
        let* jobs = QCheck2.Gen.oneofl [ 2; 4; 8 ] in
        return (seed, layers, width, jobs))
      (fun (seed, layers, width, jobs) ->
        let rng = O.Rng.create ~seed in
        let g =
          O.Generators.layered rng ~layers ~width ~edge_prob:0.4 ~max_weight:9
            ~max_data:20
        in
        let plat = O.Platform.paper_platform () in
        let run j =
          let params =
            O.Params.with_eval_jobs
              (O.Params.with_reschedule O.Params.default true)
              j
          in
          fingerprint (O.Ilha.schedule ~params plat g)
        in
        run 1 = run jobs);
  ]

(* ---------------- int-keyed ready heap ---------------- *)

let int_heap_tests =
  [
    qtest ~count:200 "Int_heap drains in Ranking.compare_priority order"
      QCheck2.Gen.(list_size (int_range 1 64) (int_bound 30))
      (fun ranks_l ->
        (* small int range forces rank ties, exercising the id tie-break *)
        let ranks = Array.of_list (List.map float_of_int ranks_l) in
        let n = Array.length ranks in
        let ord = O.Ranking.priority_order ranks in
        let heap = Prelude.Pqueue.Int_heap.create ~rank:ord () in
        for v = 0 to n - 1 do
          Prelude.Pqueue.Int_heap.add heap v
        done;
        let drained = ref [] in
        let rec drain () =
          match Prelude.Pqueue.Int_heap.pop heap with
          | None -> ()
          | Some v ->
              drained := v :: !drained;
              drain ()
        in
        drain ();
        let got = List.rev !drained in
        let expected =
          List.sort (O.Ranking.compare_priority ranks) (List.init n Fun.id)
        in
        got = expected);
    Alcotest.test_case "Int_heap without keys serves ascending ints" `Quick
      (fun () ->
        let heap = Prelude.Pqueue.Int_heap.create () in
        List.iter (Prelude.Pqueue.Int_heap.add heap) [ 5; 1; 4; 1 + 2; 2 ];
        let out = ref [] in
        let rec drain () =
          match Prelude.Pqueue.Int_heap.pop heap with
          | None -> ()
          | Some v ->
              out := v :: !out;
              drain ()
        in
        drain ();
        Alcotest.(check (list int)) "sorted" [ 1; 2; 3; 4; 5 ] (List.rev !out))
  ]

(* ---------------- Graph.of_arrays ---------------- *)

let graph_arrays_tests =
  [
    qtest ~count:100 "of_arrays builds the same graph as create"
      QCheck2.Gen.(
        let* seed = int_bound 10_000 in
        let* layers = int_range 1 5 in
        let* width = int_range 1 6 in
        return (seed, layers, width))
      (fun (seed, layers, width) ->
        let rng = O.Rng.create ~seed in
        let g =
          O.Generators.layered rng ~layers ~width ~edge_prob:0.5 ~max_weight:9
            ~max_data:20
        in
        let n = O.Graph.n_tasks g and m = O.Graph.n_edges g in
        let weights = Array.init n (O.Graph.weight g) in
        let edge_srcs = Array.init m (O.Graph.edge_src g) in
        let edge_dsts = Array.init m (O.Graph.edge_dst g) in
        let edge_datas = Array.init m (O.Graph.edge_data g) in
        let g' =
          O.Graph.of_arrays ~weights ~edge_srcs ~edge_dsts ~edge_datas ()
        in
        O.Graph.check_invariants g';
        O.Graph.edges g' = O.Graph.edges g
        && O.Graph.topological_order g' = O.Graph.topological_order g);
    Alcotest.test_case "of_arrays rejects mismatched arrays" `Quick (fun () ->
        Alcotest.check_raises "mismatch"
          (Invalid_argument "Graph.of_arrays: edge array length mismatch")
          (fun () ->
            ignore
              (O.Graph.of_arrays ~weights:[| 1.; 1. |] ~edge_srcs:[| 0 |]
                 ~edge_dsts:[||] ~edge_datas:[||] ())))
  ]

(* ---------------- streaming Validate vs Reference ---------------- *)

(* The two checkers word their messages differently (and may report a
   different witness pair for the same overlap), so equivalence means
   verdict agreement. *)
let verdicts_agree sched =
  let streaming = Result.is_ok (O.Validate.check sched) in
  let reference = Result.is_ok (O.Validate.Reference.check sched) in
  streaming = reference

let validate_tests =
  [
    qtest ~count:40 "streaming validator agrees with Reference"
      QCheck2.Gen.(
        let* seed = int_bound 10_000 in
        let* layers = int_range 2 6 in
        let* width = int_range 2 8 in
        let* model_i = int_bound (List.length O.Comm_model.all - 1) in
        let* heft = bool in
        let* mutation = int_bound 2 in
        return (seed, layers, width, model_i, heft, mutation))
      (fun (seed, layers, width, model_i, heft, mutation) ->
        let rng = O.Rng.create ~seed in
        let g =
          O.Generators.layered rng ~layers ~width ~edge_prob:0.4 ~max_weight:9
            ~max_data:20
        in
        let plat = O.Platform.paper_platform () in
        let model = List.nth O.Comm_model.all model_i in
        let params = O.Params.of_model model in
        let sched =
          if heft then O.Heft.schedule ~params plat g
          else O.Ilha.schedule ~params plat g
        in
        match mutation with
        | 0 ->
            (* pristine: both checkers must accept *)
            Result.is_ok (O.Validate.check sched) && verdicts_agree sched
        | 1 ->
            (* drop one communication event (when any): a remote edge
               loses a hop, or a BSP phase loses its event *)
            let nc = O.Schedule.n_comms sched in
            if nc = 0 then true
            else begin
              let victim = seed mod nc in
              let i = ref (-1) in
              O.Schedule.filter_comms sched ~keep:(fun _ ->
                  incr i;
                  !i <> victim);
              verdicts_agree sched
            end
        | _ ->
            (* unplace one task: both must flag it *)
            O.Schedule.unplace_task sched (seed mod O.Graph.n_tasks g);
            verdicts_agree sched);
    Alcotest.test_case "streaming validator catches handmade violations"
      `Quick
      (fun () ->
        (* the broken-schedule constructions of test_schedule, re-checked
           against both implementations *)
        let g =
          O.Graph.create ~name:"chain"
            ~weights:[| 1.; 1. |]
            ~edges:[ (0, 1, 2.) ]
            ()
        in
        let make () =
          O.Schedule.create ~graph:g
            ~platform:(O.Platform.homogeneous ~p:2 ~link_cost:1.)
            ~model:O.Comm_model.one_port ()
        in
        let check_both name s expect_ok =
          Alcotest.(check bool)
            (name ^ " (streaming)") expect_ok
            (Result.is_ok (O.Validate.check s));
          Alcotest.(check bool)
            (name ^ " (reference)") expect_ok
            (Result.is_ok (O.Validate.Reference.check s))
        in
        let s = make () in
        O.Schedule.place_task s ~task:0 ~proc:0 ~start:0.;
        let a = O.Schedule.add_comm s ~edge:0 ~src_proc:0 ~dst_proc:1 ~start:1. in
        O.Schedule.place_task s ~task:1 ~proc:1 ~start:a;
        check_both "valid chain" s true;
        let s = make () in
        O.Schedule.place_task s ~task:1 ~proc:0 ~start:0.;
        O.Schedule.place_task s ~task:0 ~proc:0 ~start:3.;
        check_both "local precedence violation" s false;
        let s = make () in
        O.Schedule.place_task s ~task:0 ~proc:0 ~start:0.;
        O.Schedule.place_task s ~task:1 ~proc:1 ~start:1.;
        check_both "missing communication" s false;
        let s = make () in
        O.Schedule.place_task s ~task:0 ~proc:0 ~start:0.;
        let _ = O.Schedule.add_comm s ~edge:0 ~src_proc:0 ~dst_proc:1 ~start:1. in
        O.Schedule.place_task s ~task:1 ~proc:1 ~start:2.;
        check_both "start before arrival" s false);
  ]

let suite =
  eval_jobs_tests @ int_heap_tests @ graph_arrays_tests @ validate_tests
