(* The shared EFT engine: slot choices, tie-breaking, tentative evaluation
   purity, policies, and routed communications. *)

module O = Onesched
open Util

let chain_graph () =
  O.Graph.create ~name:"chain" ~weights:[| 1.; 2. |] ~edges:[ (0, 1, 3.) ] ()

let engine_for ?(model = O.Comm_model.one_port) ?policy ?(p = 2) g =
  let plat = O.Platform.homogeneous ~p ~link_cost:1. in
  let sched = O.Schedule.create ~graph:g ~platform:plat ~model () in
  O.Engine.create ?policy sched

let basic_tests =
  [
    Alcotest.test_case "local placement has no comms" `Quick (fun () ->
        let engine = engine_for (chain_graph ()) in
        O.Engine.schedule_on engine ~task:0 ~proc:0;
        let ev = O.Engine.evaluate engine ~task:1 ~proc:0 in
        check_float "est" 1. ev.O.Engine.est;
        check_float "eft" 3. ev.O.Engine.eft;
        check_bool "no hops" true (ev.O.Engine.hops = []));
    Alcotest.test_case "remote placement schedules the message" `Quick (fun () ->
        let engine = engine_for (chain_graph ()) in
        O.Engine.schedule_on engine ~task:0 ~proc:0;
        let ev = O.Engine.evaluate engine ~task:1 ~proc:1 in
        check_float "est = finish + comm" 4. ev.O.Engine.est;
        check_int "one hop" 1 (List.length ev.O.Engine.hops);
        let hop = List.hd ev.O.Engine.hops in
        check_float "hop starts when data ready" 1. hop.O.Engine.start);
    Alcotest.test_case "evaluation does not mutate state" `Quick (fun () ->
        let engine = engine_for (chain_graph ()) in
        O.Engine.schedule_on engine ~task:0 ~proc:0;
        let ev1 = O.Engine.evaluate engine ~task:1 ~proc:1 in
        let ev2 = O.Engine.evaluate engine ~task:1 ~proc:1 in
        check_float "same est twice" ev1.O.Engine.est ev2.O.Engine.est;
        check_int "no comm committed" 0
          (O.Schedule.n_comm_events (O.Engine.schedule engine)));
    Alcotest.test_case "best_proc prefers local, ties to lowest index" `Quick
      (fun () ->
        let engine = engine_for (chain_graph ()) in
        O.Engine.schedule_on engine ~task:0 ~proc:0;
        let ev = O.Engine.best_proc engine ~task:1 in
        check_int "local wins (eft 3 vs 6)" 0 ev.O.Engine.proc;
        (* On a fresh engine, every processor gives the same EFT for the
           entry task: the tie must go to processor 0. *)
        let engine2 = engine_for ~p:4 (chain_graph ()) in
        let ev2 = O.Engine.best_proc engine2 ~task:0 in
        check_int "tie to lowest" 0 ev2.O.Engine.proc);
    Alcotest.test_case "best_proc_among respects the candidate list" `Quick
      (fun () ->
        let engine = engine_for ~p:4 (chain_graph ()) in
        let ev = O.Engine.best_proc_among engine ~task:0 [ 2; 3 ] in
        check_int "restricted" 2 ev.O.Engine.proc);
  ]

(* Two tasks feeding one sink from different processors: the sink's
   incoming messages must serialise on its receive port under one-port but
   not under macro-dataflow. *)
let join_graph () =
  O.Graph.create ~name:"join" ~weights:[| 1.; 1.; 1. |]
    ~edges:[ (0, 2, 2.); (1, 2, 2.) ]
    ()

let serialization_tests =
  [
    Alcotest.test_case "incoming messages serialise at the receiver" `Quick
      (fun () ->
        let engine = engine_for ~p:3 (join_graph ()) in
        O.Engine.schedule_on engine ~task:0 ~proc:0;
        O.Engine.schedule_on engine ~task:1 ~proc:1;
        let ev = O.Engine.evaluate engine ~task:2 ~proc:2 in
        (* both messages ready at t=1, each lasting 2: arrivals 3 and 5 *)
        check_float "est after both arrivals" 5. ev.O.Engine.est);
    Alcotest.test_case "macro-dataflow lets them overlap" `Quick (fun () ->
        let engine =
          engine_for ~model:O.Comm_model.macro_dataflow ~p:3 (join_graph ())
        in
        O.Engine.schedule_on engine ~task:0 ~proc:0;
        O.Engine.schedule_on engine ~task:1 ~proc:1;
        let ev = O.Engine.evaluate engine ~task:2 ~proc:2 in
        check_float "est after parallel arrivals" 3. ev.O.Engine.est);
    Alcotest.test_case "append policy never uses gaps" `Quick (fun () ->
        (* Occupy [0,1) and [5,6) on P0's compute; a 2-long task fits in
           the gap under Insertion but must go after 6 under Append. *)
        let g =
          O.Graph.create ~name:"three"
            ~weights:[| 1.; 1.; 2. |]
            ~edges:[]
            ()
        in
        let probe policy =
          let engine = engine_for ~policy ~p:1 g in
          let sched = O.Engine.schedule engine in
          O.Schedule.place_task sched ~task:0 ~proc:0 ~start:0.;
          O.Schedule.place_task sched ~task:1 ~proc:0 ~start:5.;
          (O.Engine.evaluate engine ~task:2 ~proc:0).O.Engine.est
        in
        check_float "insertion fills the gap" 1. (probe O.Engine.Insertion);
        check_float "append goes last" 6. (probe O.Engine.Append));
  ]

let routing_tests =
  [
    Alcotest.test_case "messages are routed hop by hop" `Quick (fun () ->
        let plat =
          O.Platform.with_topology ~cycle_times:[| 1.; 1.; 1. |]
            ~links:[ (0, 1, 1.); (1, 2, 1.) ]
            ()
        in
        let g = chain_graph () in
        let sched = O.Schedule.create ~graph:g ~platform:plat ~model:O.Comm_model.one_port () in
        let engine = O.Engine.create sched in
        O.Engine.schedule_on engine ~task:0 ~proc:0;
        let ev = O.Engine.evaluate engine ~task:1 ~proc:2 in
        check_int "two hops" 2 (List.length ev.O.Engine.hops);
        (* data volume 3, unit hops: leave at 1, relay arrives 4, final 7 *)
        check_float "est after relay" 7. ev.O.Engine.est;
        O.Engine.commit engine ~task:1 ev;
        O.Validate.check_exn sched);
  ]

(* ------------------------------------------------------------------ *)
(* Optimized engine = Reference engine, bit for bit                    *)
(* ------------------------------------------------------------------ *)

(* Everything a schedule decided: makespan, every placement (proc and
   start), and every communication hop (edge, endpoints, start).  Both
   engines commit in the same deterministic order, so plain structural
   equality is the right comparison — any drift in a tie-break or a gap
   search shows up here. *)
let fingerprint sched =
  let g = O.Schedule.graph sched in
  let placements =
    List.init (O.Graph.n_tasks g) (fun t -> O.Schedule.placement_exn sched t)
  in
  (O.Schedule.makespan sched, placements, O.Schedule.comms sched)

let equivalence_tests =
  let models =
    [ ("one-port", O.Comm_model.one_port);
      ("macro-dataflow", O.Comm_model.macro_dataflow);
      ("bsp", O.Comm_model.bsp ~g:1. ~l:5.);
      ("logp", O.Comm_model.latency_overhead ~o:1. ~l:2.) ]
  in
  List.concat_map
    (fun (mname, model) ->
      List.map
        (fun (tb : O.Suite.t) ->
          Alcotest.test_case
            (Printf.sprintf "optimized = reference: %s, %s" tb.O.Suite.name
               mname)
            `Quick
            (fun () ->
              let n = max 3 tb.O.Suite.min_n in
              let plat = O.Platform.paper_platform () in
              let params = O.Params.of_model model in
              List.iter
                (fun (e : O.Registry.entry) ->
                  let g = tb.O.Suite.build ~n ~ccr:0.5 in
                  let fast = e.O.Registry.scheduler params plat g in
                  let slow =
                    O.Engine.with_reference (fun () ->
                        e.O.Registry.scheduler params plat g)
                  in
                  check_bool
                    (Printf.sprintf "%s schedules agree" e.O.Registry.name)
                    true
                    (fingerprint fast = fingerprint slow))
                O.Registry.all))
        O.Suite.all)
    models

let equivalence_property_tests =
  [
    qtest ~count:120 "optimized = reference on random instances"
      QCheck2.Gen.(tup4 graph_gen platform_gen model_gen (int_bound 7))
      (fun (gspec, plat, model, hi) ->
        let e = List.nth O.Registry.all hi in
        let params = O.Params.of_model model in
        let fast = e.O.Registry.scheduler params plat (build_graph gspec) in
        let slow =
          O.Engine.with_reference (fun () ->
              e.O.Registry.scheduler params plat (build_graph gspec))
        in
        fingerprint fast = fingerprint slow);
    qtest ~count:150 "single evaluations agree mid-schedule"
      QCheck2.Gen.(tup3 graph_gen platform_gen model_gen)
      (fun (gspec, plat, model) ->
        (* Place a topological prefix of the tasks, then price the next
           task on every processor with both engines. *)
        let g = build_graph gspec in
        let n = O.Graph.n_tasks g in
        let order =
          (* Kahn's algorithm, lowest task id first. *)
          let remaining = Array.init n (O.Graph.in_degree g) in
          let acc = ref [] in
          let placed = Array.make n false in
          for _ = 1 to n do
            let v = ref (-1) in
            for u = n - 1 downto 0 do
              if (not placed.(u)) && remaining.(u) = 0 then v := u
            done;
            placed.(!v) <- true;
            acc := !v :: !acc;
            O.Graph.iter_succ_edges g !v ~f:(fun e ->
                let u = O.Graph.edge_dst g e in
                remaining.(u) <- remaining.(u) - 1)
          done;
          List.rev !acc
        in
        let sched = O.Schedule.create ~graph:g ~platform:plat ~model () in
        let engine = O.Engine.create sched in
        let split = max 1 (n / 2) in
        List.iteri
          (fun i task ->
            if i < split then ignore (O.Engine.schedule_best engine ~task))
          order;
        let next = List.filteri (fun i _ -> i = split) order in
        List.for_all
          (fun task ->
            List.for_all
              (fun proc ->
                let fast = O.Engine.evaluate engine ~task ~proc in
                let slow = O.Engine.Reference.evaluate engine ~task ~proc in
                fast = slow)
              (List.init (O.Platform.p plat) Fun.id))
          next);
  ]

let reference_mode_tests =
  [
    Alcotest.test_case "with_reference restores the mode on exceptions" `Quick
      (fun () ->
        (try
           O.Engine.with_reference (fun () -> failwith "boom")
         with Failure _ -> ());
        (* Back in optimized mode: pruning fires on a real grid. *)
        let g = chain_graph () in
        let engine = engine_for ~p:4 g in
        O.Engine.schedule_on engine ~task:0 ~proc:0;
        ignore (O.Engine.best_proc engine ~task:1));
    Alcotest.test_case "pruning is counted and exact" `Quick (fun () ->
        let tb = O.Suite.find "lu" in
        let g = tb.O.Suite.build ~n:6 ~ccr:0.5 in
        let plat = O.Platform.paper_platform () in
        let params = O.Params.default in
        let count f =
          O.Obs_counters.enable ();
          O.Obs_counters.reset ();
          Fun.protect ~finally:O.Obs_counters.disable (fun () ->
              let sched = f () in
              (O.Schedule.makespan sched, O.Obs_counters.snapshot ()))
        in
        let mk_fast, fast =
          count (fun () -> O.Heft.schedule ~params plat g)
        in
        let mk_slow, slow =
          count (fun () ->
              O.Engine.with_reference (fun () -> O.Heft.schedule ~params plat g))
        in
        check_float "same makespan" mk_slow mk_fast;
        check_bool "pruning fired" true
          (fast.O.Obs_counters.pruned_evaluations > 0);
        check_bool "route cache hit" true
          (fast.O.Obs_counters.route_cache_hits > 0);
        (* Every candidate is either evaluated or pruned — none vanish. *)
        check_int "evaluated + pruned = reference evaluations"
          slow.O.Obs_counters.evaluations
          (fast.O.Obs_counters.evaluations
          + fast.O.Obs_counters.pruned_evaluations);
        check_int "reference never prunes" 0
          slow.O.Obs_counters.pruned_evaluations);
  ]

(* ------------------------------------------------------------------ *)
(* Commit log and rewind                                                *)
(* ------------------------------------------------------------------ *)

(* Kahn's algorithm, lowest task id first — any fixed topological order
   works for exercising the commit log. *)
let topo_order g =
  let n = O.Graph.n_tasks g in
  let remaining = Array.init n (O.Graph.in_degree g) in
  let acc = ref [] in
  let placed = Array.make n false in
  for _ = 1 to n do
    let v = ref (-1) in
    for u = n - 1 downto 0 do
      if (not placed.(u)) && remaining.(u) = 0 then v := u
    done;
    placed.(!v) <- true;
    acc := !v :: !acc;
    O.Graph.iter_succ_edges g !v ~f:(fun e ->
        let u = O.Graph.edge_dst g e in
        remaining.(u) <- remaining.(u) - 1)
  done;
  List.rev !acc

let rewind_tests =
  [
    Alcotest.test_case "rewind to zero empties the schedule" `Quick (fun () ->
        let tb = O.Suite.find "lu" in
        let g = tb.O.Suite.build ~n:6 ~ccr:0.5 in
        let plat = O.Platform.paper_platform () in
        let sched =
          O.Schedule.create ~graph:g ~platform:plat
            ~model:O.Comm_model.one_port ()
        in
        let engine = O.Engine.create sched in
        List.iter
          (fun task -> ignore (O.Engine.schedule_best engine ~task))
          (topo_order g);
        check_bool "fully placed" true (O.Schedule.all_placed sched);
        O.Engine.rewind engine ~to_:0;
        check_int "no task placed" 0
          (List.length
             (List.filter
                (O.Schedule.is_placed sched)
                (List.init (O.Graph.n_tasks g) Fun.id)));
        check_int "no comm left" 0 (O.Schedule.n_comm_events sched));
    qtest ~count:120 "rewind + identical replay = original, bit for bit"
      QCheck2.Gen.(tup3 graph_gen platform_gen model_gen)
      (fun (gspec, plat, model) ->
        let g = build_graph gspec in
        let n = O.Graph.n_tasks g in
        let order = topo_order g in
        let sched = O.Schedule.create ~graph:g ~platform:plat ~model () in
        let engine = O.Engine.create sched in
        let procs = Array.make n 0 in
        let marks = Array.make n 0 in
        List.iteri
          (fun i task ->
            marks.(i) <- O.Engine.n_commits engine;
            procs.(i) <- (O.Engine.schedule_best engine ~task).O.Engine.proc)
          order;
        let full = fingerprint sched in
        (* Rewind to several prefixes; replaying the same decisions must
           land on the identical schedule every time. *)
        List.for_all
          (fun k ->
            O.Engine.rewind engine ~to_:marks.(k);
            List.iteri
              (fun i task ->
                if i >= k then
                  O.Engine.schedule_on engine ~task ~proc:procs.(i))
              order;
            fingerprint sched = full)
          [ n / 2; 0; n - 1 ]);
  ]

let suite =
  basic_tests @ serialization_tests @ routing_tests @ equivalence_tests
  @ equivalence_property_tests @ reference_mode_tests @ rewind_tests
