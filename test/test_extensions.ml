(* The extension modules: ETF, Auto_b, Refine, Bounds, Export,
   Utilization, and the extra platform topologies. *)

module O = Onesched
open Util

let one_port = O.Comm_model.one_port

let etf_tests =
  [
    qtest ~count:40 "ETF yields valid schedules"
      QCheck2.Gen.(tup3 graph_gen platform_gen model_gen)
      (fun (params, plat, model) ->
        let g = build_graph params in
        scheduler_checks_out ~params:(O.Params.of_model model) plat g
          (fun params plat g -> O.Etf.schedule ~params plat g));
    Alcotest.test_case "ETF starts the globally earliest pair" `Quick (fun () ->
        (* two entry tasks of different weight on two same-speed procs:
           both can start at 0; the higher static level (heavier path)
           must win the tie *)
        let g =
          O.Graph.create ~weights:[| 1.; 5. |] ~edges:[] ()
        in
        let plat = O.Platform.homogeneous ~p:2 ~link_cost:1. in
        let sched = O.Etf.schedule plat g in
        let pl = O.Schedule.placement_exn sched 1 in
        check_float "heavy task starts at 0" 0. pl.O.Schedule.start);
  ]

let auto_b_tests =
  [
    Alcotest.test_case "candidate ladder covers the landmarks" `Quick (fun () ->
        let plat = O.Platform.paper_platform () in
        let cands = O.Auto_b.candidates plat in
        check_bool "has p" true (List.mem 10 cands);
        check_bool "has M" true (List.mem 38 cands);
        check_bool "has 1" true (List.mem 1 cands);
        check_bool "sorted"
          true
          (List.sort compare cands = cands));
    Alcotest.test_case "search returns the best trial" `Quick (fun () ->
        let plat = O.Platform.paper_platform () in
        let g = O.Kernels.doolittle ~n:20 ~ccr:10. in
        let r = O.Auto_b.search plat g in
        check_bool "best is min of trials" true
          (List.for_all (fun (_, m) -> r.O.Auto_b.best_makespan <= m +. 1e-9)
             r.O.Auto_b.trials);
        let direct =
          O.Schedule.makespan (O.Ilha.schedule ~params:(O.Params.make ~b:r.O.Auto_b.best_b ()) plat g)
        in
        check_float "schedule at best_b reproduces" r.O.Auto_b.best_makespan direct);
    qtest ~count:20 "auto-B never loses to default ILHA"
      QCheck2.Gen.(tup2 graph_gen platform_gen)
      (fun (params, plat) ->
        let g = build_graph params in
        let auto = O.Auto_b.search plat g in
        let default = O.Schedule.makespan (O.Ilha.schedule plat g) in
        (* the default B is one of the sampled candidates *)
        auto.O.Auto_b.best_makespan <= default +. 1e-9);
  ]

let refine_tests =
  [
    qtest ~count:25 "refined schedules stay valid and never regress"
      QCheck2.Gen.(tup2 graph_gen platform_gen)
      (fun (params, plat) ->
        let g = build_graph params in
        let sched = O.Heft.schedule plat g in
        let r = O.Refine.improve ~max_rounds:2 ~max_moves:5 sched in
        O.Validate.is_valid r.O.Refine.schedule
        && r.O.Refine.final_makespan <= r.O.Refine.initial_makespan +. 1e-9
        && Prelude.Stats.fequal
             (O.Schedule.makespan r.O.Refine.schedule)
             r.O.Refine.final_makespan);
    Alcotest.test_case "rebuild honours a forced allocation" `Quick (fun () ->
        let g = O.Kernels.fork_join ~n:4 ~ccr:1. in
        let plat = O.Platform.homogeneous ~p:3 ~link_cost:1. in
        let alloc v = v mod 3 in
        let sched = O.Refine.rebuild ~alloc plat g in
        O.Validate.check_exn sched;
        for v = 0 to O.Graph.n_tasks g - 1 do
          check_int "placed as forced" (alloc v) (O.Schedule.proc_of_exn sched v)
        done);
    Alcotest.test_case "refinement can actually improve a bad allocation"
      `Quick (fun () ->
        (* all independent tasks dumped on one processor: moving any to the
           idle processor improves, and refine must find at least one *)
        let g =
          O.Graph.create ~weights:(Array.make 6 4.) ~edges:[] ()
        in
        let plat = O.Platform.homogeneous ~p:2 ~link_cost:1. in
        let sched = O.Refine.rebuild ~alloc:(fun _ -> 0) plat g in
        let r = O.Refine.improve sched in
        check_bool "improved" true
          (r.O.Refine.final_makespan < r.O.Refine.initial_makespan -. 1e-9);
        check_bool "some moves accepted" true (r.O.Refine.accepted_moves > 0));
  ]

let bounds_tests =
  [
    qtest ~count:60 "every schedule respects the lower bounds"
      QCheck2.Gen.(tup3 graph_gen platform_gen model_gen)
      (fun (params, plat, model) ->
        let g = build_graph params in
        let sched = O.Heft.schedule ~params:(O.Params.of_model model) plat g in
        let makespan = O.Schedule.makespan sched in
        let bound =
          if O.Comm_model.restricts_ports model then O.Bounds.one_port_fork g plat
          else O.Bounds.combined g plat
        in
        makespan >= bound -. 1e-9 && O.Bounds.quality sched >= 1. -. 1e-9);
    Alcotest.test_case "bounds on the Fig 1 fork" `Quick (fun () ->
        let g = O.Fork.example_fig1 () in
        let plat = O.Platform.homogeneous ~p:5 ~link_cost:1. in
        check_float "critical path 2" 2. (O.Bounds.critical_path g plat);
        check_float "total work 7/5" (7. /. 5.) (O.Bounds.total_work g plat);
        (* one-port: parent 1 + min over c of max(c local, (6-c) msgs + 1)
           = 1 + max(3, 4) = 5 — the bound is TIGHT on this instance *)
        check_float "one-port fork bound" 5. (O.Bounds.one_port_fork g plat));
    Alcotest.test_case "fork bound is tight on the example" `Quick (fun () ->
        (* optimal is 5 and the bound certifies exactly 5: quality 1.0 —
           the §2.3 example's makespan is provably optimal *)
        let g = O.Fork.example_fig1 () in
        let plat = O.Platform.homogeneous ~p:5 ~link_cost:1. in
        let sched = O.Heft.schedule plat g in
        check_float "quality 1.0" 1.0 (O.Bounds.quality sched));
  ]

let export_tests =
  [
    Alcotest.test_case "chrome trace is well-formed" `Quick (fun () ->
        let g = O.Kernels.fork_join ~n:3 ~ccr:2. in
        let plat = O.Platform.homogeneous ~p:2 ~link_cost:1. in
        let sched = O.Heft.schedule plat g in
        let trace = O.Export.to_chrome_trace sched in
        check_bool "array" true
          (String.length trace > 2 && trace.[0] = '[');
        check_bool "has tasks" true (contains trace {|"name":"v0"|});
        check_bool "has thread metadata" true (contains trace "thread_name");
        check_bool "balanced braces" true
          (let opens = ref 0 and closes = ref 0 in
           String.iter
             (fun c ->
               if c = '{' then incr opens else if c = '}' then incr closes)
             trace;
           !opens = !closes && !opens > 0));
    Alcotest.test_case "csv has a row per event occurrence" `Quick (fun () ->
        let g = O.Kernels.fork_join ~n:3 ~ccr:2. in
        let plat = O.Platform.homogeneous ~p:2 ~link_cost:1. in
        let sched = O.Heft.schedule plat g in
        let csv = O.Export.to_csv sched in
        let lines =
          List.filter (fun l -> l <> "") (String.split_on_char '\n' csv)
        in
        (* header + tasks + 2 rows per comm *)
        check_int "rows" (1 + O.Graph.n_tasks g + (2 * O.Schedule.n_comm_events sched))
          (List.length lines));
  ]

let utilization_tests =
  [
    Alcotest.test_case "fractions are consistent with metrics" `Quick (fun () ->
        let g = O.Kernels.laplace ~n:8 ~ccr:5. in
        let plat = O.Platform.paper_platform () in
        let sched = O.Ilha.schedule plat g in
        let fracs = O.Utilization.compute_fractions sched in
        let metrics = O.Metrics.compute sched in
        check_float "mean matches metrics" metrics.O.Metrics.mean_utilization
          (Array.fold_left ( +. ) 0. fracs /. float_of_int (Array.length fracs)));
    Alcotest.test_case "profile buckets stay in [0,1] and cover busy time"
      `Quick (fun () ->
        let g = O.Kernels.stencil ~n:6 ~ccr:3. in
        let plat = O.Platform.homogeneous ~p:4 ~link_cost:1. in
        let sched = O.Heft.schedule plat g in
        let p = O.Utilization.profile ~buckets:20 sched in
        Array.iter
          (Array.iter (fun v -> check_bool "in range" true (v >= 0. && v <= 1.0 +. 1e-9)))
          p.O.Utilization.compute;
        (* bucket mass sums back to total busy fraction *)
        let fracs = O.Utilization.compute_fractions sched in
        Array.iteri
          (fun q row ->
            let mass =
              Array.fold_left ( +. ) 0. row /. float_of_int p.O.Utilization.buckets
            in
            check_bool "mass matches" true (Prelude.Stats.fequal ~eps:1e-6 mass fracs.(q)))
          p.O.Utilization.compute);
    Alcotest.test_case "port fractions are 0 without communications" `Quick
      (fun () ->
        let g = O.Graph.create ~weights:[| 1.; 1. |] ~edges:[] () in
        let plat = O.Platform.homogeneous ~p:2 ~link_cost:1. in
        let sched = O.Heft.schedule plat g in
        Array.iter (fun f -> check_float "zero" 0. f)
          (O.Utilization.port_fractions sched));
    Alcotest.test_case "render shows every processor" `Quick (fun () ->
        let g = O.Kernels.fork_join ~n:5 ~ccr:2. in
        let plat = O.Platform.homogeneous ~p:3 ~link_cost:1. in
        let sched = O.Heft.schedule plat g in
        let out = O.Utilization.render (O.Utilization.profile sched) in
        check_bool "P0..P2" true
          (contains out "P0" && contains out "P1" && contains out "P2"));
  ]

let topology_tests =
  [
    Alcotest.test_case "ring routes around the shorter arc" `Quick (fun () ->
        let plat =
          O.Platform.ring ~cycle_times:(Array.make 6 1.) ~link_cost:1. ()
        in
        check_float "opposite side" 3. (O.Platform.link plat ~src:0 ~dst:3);
        check_float "neighbour" 1. (O.Platform.link plat ~src:0 ~dst:5));
    Alcotest.test_case "star routes through the hub" `Quick (fun () ->
        let plat =
          O.Platform.star ~cycle_times:(Array.make 4 1.) ~spoke_cost:2. ()
        in
        Alcotest.(check (list (pair int int)))
          "two hops" [ (1, 0); (0, 3) ]
          (O.Platform.route plat ~src:1 ~dst:3);
        check_float "cost" 4. (O.Platform.link plat ~src:1 ~dst:3));
    Alcotest.test_case "grid2d has mesh distances" `Quick (fun () ->
        let plat = O.Platform.grid2d ~rows:3 ~cols:3 ~cycle_time:1. ~link_cost:1. () in
        check_int "9 processors" 9 (O.Platform.p plat);
        check_float "manhattan" 4. (O.Platform.link plat ~src:0 ~dst:8));
    qtest ~count:30 "random platforms are well-formed"
      QCheck2.Gen.(int_bound 10_000)
      (fun seed ->
        let rng = O.Rng.create ~seed in
        let plat =
          O.Platform.random_heterogeneous rng ~p:6 ~min_cycle:2 ~max_cycle:9
            ~link_cost:1.
        in
        O.Platform.p plat = 6
        && O.Platform.min_cycle_time plat >= 2.
        && O.Load_balance.perfect_chunk plat >= 6);
  ]

let suite =
  etf_tests @ auto_b_tests @ refine_tests @ bounds_tests @ export_tests
  @ utilization_tests @ topology_tests
