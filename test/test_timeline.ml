(* Timeline: unit tests on hand cases plus property tests against a naive
   reference implementation of earliest-gap search. *)

module O = Onesched
open Util

(* Naive reference: scan candidate starts; candidates are [after] and every
   busy-interval finish. *)
let ref_earliest_gap busy ~after ~duration =
  if duration <= 0. then after
  else begin
    let blocks s =
      List.exists (fun (b0, b1) -> b0 < s +. duration && b1 > s) busy
    in
    let candidates =
      after :: List.filter_map (fun (_, f) -> if f >= after then Some f else None) busy
    in
    List.fold_left
      (fun best c -> if c >= after && (not (blocks c)) && c < best then c else best)
      infinity candidates
  end

let timeline_of intervals =
  let t = O.Timeline.create () in
  List.iter (fun (s, f) -> O.Timeline.add t ~start:s ~finish:f) intervals;
  t

(* Generate disjoint intervals by splitting a walk. *)
let intervals_gen =
  QCheck2.Gen.(
    let* n = int_bound 12 in
    let* gaps = list_size (return (2 * n)) (int_bound 5) in
    let rec build at acc = function
      | len :: gap :: rest ->
          let s = at and f = at +. float_of_int (1 + len) in
          build (f +. float_of_int gap) ((s, f) :: acc) rest
      | _ -> List.rev acc
    in
    return (build 0. [] gaps))

let unit_tests =
  [
    Alcotest.test_case "empty timeline" `Quick (fun () ->
        let t = O.Timeline.create () in
        check_float "gap at after" 3.
          (O.Timeline.earliest_gap t ~after:3. ~duration:5.);
        check_float "last finish" 0. (O.Timeline.last_finish t);
        check_int "intervals" 0 (O.Timeline.n_intervals t));
    Alcotest.test_case "fills gaps in order" `Quick (fun () ->
        let t = timeline_of [ (0., 2.); (4., 6.); (10., 12.) ] in
        check_float "fits in first hole" 2.
          (O.Timeline.earliest_gap t ~after:0. ~duration:2.);
        check_float "skips small hole" 6.
          (O.Timeline.earliest_gap t ~after:0. ~duration:3.);
        check_float "after everything" 12.
          (O.Timeline.earliest_gap t ~after:0. ~duration:10.);
        check_float "respects after inside busy" 6.
          (O.Timeline.earliest_gap t ~after:5. ~duration:2.));
    Alcotest.test_case "touching intervals allowed" `Quick (fun () ->
        let t = timeline_of [ (0., 2.) ] in
        O.Timeline.add t ~start:2. ~finish:4.;
        check_int "two intervals" 2 (O.Timeline.n_intervals t);
        check_float "busy" 4. (O.Timeline.total_busy t));
    Alcotest.test_case "overlap rejected" `Quick (fun () ->
        let t = timeline_of [ (0., 4.) ] in
        Alcotest.check_raises "overlap"
          (Invalid_argument "Timeline.add: overlapping busy interval")
          (fun () -> O.Timeline.add t ~start:3. ~finish:5.));
    Alcotest.test_case "zero-length add ignored" `Quick (fun () ->
        let t = O.Timeline.create () in
        O.Timeline.add t ~start:5. ~finish:5.;
        check_int "no interval" 0 (O.Timeline.n_intervals t));
    Alcotest.test_case "extra intervals constrain" `Quick (fun () ->
        let t = timeline_of [ (0., 2.) ] in
        check_float "without extra" 2.
          (O.Timeline.earliest_gap t ~after:0. ~duration:2.);
        check_float "with extra" 6.
          (O.Timeline.earliest_gap ~extra:[ (2., 6.) ] t ~after:0. ~duration:2.));
    Alcotest.test_case "joint gap over two timelines" `Quick (fun () ->
        let a = timeline_of [ (0., 3.) ] and b = timeline_of [ (4., 6.) ] in
        check_float "must avoid both" 6.
          (O.Timeline.earliest_gap_joint [ a; b ] ~after:0. ~duration:2.);
        check_float "fits between" 3.
          (O.Timeline.earliest_gap_joint [ a; b ] ~after:0. ~duration:1.));
    Alcotest.test_case "free_at" `Quick (fun () ->
        let t = timeline_of [ (2., 4.) ] in
        check_bool "before" true (O.Timeline.free_at t ~start:0. ~finish:2.);
        check_bool "inside" false (O.Timeline.free_at t ~start:3. ~finish:3.5);
        check_bool "straddle" false (O.Timeline.free_at t ~start:1. ~finish:3.);
        check_bool "after" true (O.Timeline.free_at t ~start:4. ~finish:9.));
    Alcotest.test_case "copy is independent" `Quick (fun () ->
        let t = timeline_of [ (0., 1.) ] in
        let c = O.Timeline.copy t in
        O.Timeline.add c ~start:5. ~finish:6.;
        check_int "original untouched" 1 (O.Timeline.n_intervals t);
        check_int "copy grew" 2 (O.Timeline.n_intervals c));
  ]

let edge_case_tests =
  [
    Alcotest.test_case "extras entirely beyond the window are inert" `Quick
      (fun () ->
        let t = timeline_of [ (0., 2.) ] in
        (* The gap closes at 2; extras starting at 10 never matter. *)
        check_float "far extra ignored" 2.
          (O.Timeline.earliest_gap ~extra:[ (10., 12.) ] t ~after:0.
             ~duration:3.);
        check_float "joint far extra ignored" 2.
          (O.Timeline.earliest_gap_joint ~extra:[ (10., 12.) ] [ t ] ~after:0.
             ~duration:3.));
    Alcotest.test_case "touching endpoints leave the gap open" `Quick
      (fun () ->
        (* busy [0,2) and extra [4,6): [2,4) is exactly big enough. *)
        let t = timeline_of [ (0., 2.) ] in
        check_float "slides in between" 2.
          (O.Timeline.earliest_gap ~extra:[ (4., 6.) ] t ~after:0. ~duration:2.);
        (* an extra touching the committed finish does not re-block it *)
        check_float "contiguous extra pushes past" 4.
          (O.Timeline.earliest_gap ~extra:[ (2., 4.) ] t ~after:0. ~duration:2.));
    Alcotest.test_case "zero-length extras block nothing" `Quick (fun () ->
        let t = O.Timeline.create () in
        check_float "ahead of after" 0.
          (O.Timeline.earliest_gap ~extra:[ (3., 3.) ] t ~after:0. ~duration:5.);
        check_float "joint, several" 1.
          (O.Timeline.earliest_gap_joint
             ~extra:[ (2., 2.); (3., 3.); (4., 4.) ]
             [ timeline_of [ (0., 1.) ] ]
             ~after:0. ~duration:5.);
        (* mixed with a real blocker: only the real one counts *)
        check_float "mixed" 4.
          (O.Timeline.earliest_gap ~extra:[ (1., 1.); (2., 4.) ] t ~after:0.
             ~duration:3.));
    Alcotest.test_case "interleaved committed and extra intervals" `Quick
      (fun () ->
        (* committed [0,1) [4,5), extras [1,2) [5,6): the only 2-wide gap
           before 6 is [2,4). *)
        let t = timeline_of [ (0., 1.); (4., 5.) ] in
        check_float "weaves through" 2.
          (O.Timeline.earliest_gap ~extra:[ (1., 2.); (5., 6.) ] t ~after:0.
             ~duration:2.);
        check_float "forced past both" 6.
          (O.Timeline.earliest_gap ~extra:[ (1., 2.); (5., 6.) ] t ~after:0.
             ~duration:3.));
    Alcotest.test_case "array core agrees on hand cases" `Quick (fun () ->
        let a = timeline_of [ (0., 3.) ] and b = timeline_of [ (4., 6.) ] in
        let probe ~extra ~after ~duration =
          let extra = List.filter (fun (s, f) -> f > s) extra in
          let extra =
            List.sort (fun (s1, _) (s2, _) -> compare s1 s2) extra
          in
          let n = List.length extra in
          let extra_s = Array.make (max n 1) 0. in
          let extra_f = Array.make (max n 1) 0. in
          List.iteri
            (fun i (s, f) ->
              extra_s.(i) <- s;
              extra_f.(i) <- f)
            extra;
          O.Timeline.earliest_gap_joint_arr [| a; b |] ~k:2 ~extra_s ~extra_f
            ~extra_len:n ~idx:(Array.make 2 0) ~after ~duration
        in
        check_float "no extras" 6. (probe ~extra:[] ~after:0. ~duration:2.);
        check_float "fits between" 3. (probe ~extra:[] ~after:0. ~duration:1.);
        check_float "extra closes the slot" 6.
          (probe ~extra:[ (3., 4.) ] ~after:0. ~duration:1.);
        check_float "zero duration is after" 5.
          (probe ~extra:[] ~after:5. ~duration:0.));
  ]

let property_tests =
  [
    qtest ~count:500 "earliest_gap matches naive reference"
      QCheck2.Gen.(tup3 intervals_gen (int_bound 20) (int_range 1 8))
      (fun (busy, after, duration) ->
        let t = timeline_of busy in
        let after = float_of_int after and duration = float_of_int duration in
        let got = O.Timeline.earliest_gap t ~after ~duration in
        let expect = ref_earliest_gap busy ~after ~duration in
        got = expect);
    qtest ~count:500 "earliest_gap with extra = gap of union"
      QCheck2.Gen.(tup3 intervals_gen (int_bound 20) (int_range 1 8))
      (fun (busy, after, duration) ->
        (* Split the busy set arbitrarily: half committed, half extra. *)
        let committed, extra =
          List.partition (fun (s, _) -> int_of_float s mod 2 = 0) busy
        in
        let t = timeline_of committed in
        let after = float_of_int after and duration = float_of_int duration in
        O.Timeline.earliest_gap ~extra t ~after ~duration
        = ref_earliest_gap busy ~after ~duration);
    qtest ~count:500 "joint gap = gap of merged busy sets"
      QCheck2.Gen.(tup3 intervals_gen (int_bound 20) (int_range 1 8))
      (fun (busy, after, duration) ->
        let evens, odds =
          List.partition (fun (s, _) -> int_of_float s mod 2 = 0) busy
        in
        let after = float_of_int after and duration = float_of_int duration in
        O.Timeline.earliest_gap_joint
          [ timeline_of evens; timeline_of odds ]
          ~after ~duration
        = ref_earliest_gap busy ~after ~duration);
    qtest ~count:300 "three-way joint gap = gap of merged busy sets"
      QCheck2.Gen.(tup3 intervals_gen (int_bound 20) (int_range 1 8))
      (fun (busy, after, duration) ->
        (* deal intervals round-robin over three timelines *)
        let parts = [| []; []; [] |] in
        List.iteri (fun i iv -> parts.(i mod 3) <- iv :: parts.(i mod 3)) busy;
        let after = float_of_int after and duration = float_of_int duration in
        O.Timeline.earliest_gap_joint
          (List.map timeline_of (Array.to_list parts))
          ~after ~duration
        = ref_earliest_gap busy ~after ~duration);
    qtest ~count:400 "array core matches naive reference with extras"
      QCheck2.Gen.(tup3 intervals_gen (int_bound 20) (int_range 1 8))
      (fun (busy, after, duration) ->
        (* Deal round-robin: two committed timelines plus flat extras —
           exactly the shape the engine's arena feeds the core. *)
        let parts = [| []; []; [] |] in
        List.iteri (fun i iv -> parts.(i mod 3) <- iv :: parts.(i mod 3)) busy;
        let extra =
          List.sort (fun (s1, _) (s2, _) -> compare s1 s2) parts.(2)
        in
        let n = List.length extra in
        let extra_s = Array.make (max n 1) 0. in
        let extra_f = Array.make (max n 1) 0. in
        List.iteri
          (fun i (s, f) ->
            extra_s.(i) <- s;
            extra_f.(i) <- f)
          extra;
        let ts = [| timeline_of parts.(0); timeline_of parts.(1) |] in
        let after = float_of_int after and duration = float_of_int duration in
        O.Timeline.earliest_gap_joint_arr ts ~k:2 ~extra_s ~extra_f
          ~extra_len:n ~idx:(Array.make 2 0) ~after ~duration
        = ref_earliest_gap busy ~after ~duration);
    qtest ~count:300 "zero-length extras never change the answer"
      QCheck2.Gen.(tup3 intervals_gen (int_bound 20) (int_range 1 8))
      (fun (busy, after, duration) ->
        let t = timeline_of busy in
        let after = float_of_int after and duration = float_of_int duration in
        let zeros =
          List.concat_map (fun (s, f) -> [ (s, s); (f, f) ]) busy
          @ [ (after +. 1., after +. 1.) ]
        in
        O.Timeline.earliest_gap ~extra:zeros t ~after ~duration
        = O.Timeline.earliest_gap t ~after ~duration
        && O.Timeline.earliest_gap_joint ~extra:zeros [ t ] ~after ~duration
           = O.Timeline.earliest_gap_joint [ t ] ~after ~duration);
    qtest ~count:300 "returned gap is actually free and minimal"
      QCheck2.Gen.(tup3 intervals_gen (int_bound 20) (int_range 1 8))
      (fun (busy, after, duration) ->
        let t = timeline_of busy in
        let after = float_of_int after and duration = float_of_int duration in
        let s = O.Timeline.earliest_gap t ~after ~duration in
        s >= after
        && O.Timeline.free_at t ~start:s ~finish:(s +. duration)
        && (s = after
           || not (O.Timeline.free_at t ~start:(s -. 0.5) ~finish:(s -. 0.5 +. duration))
           ));
  ]

(* Checkpoint / rollback: unit cases plus a random-interleaving harness
   comparing the journaled timeline against a twin rebuilt from scratch. *)

let checkpoint_tests =
  [
    Alcotest.test_case "rollback drops journaled adds" `Quick (fun () ->
        let t = timeline_of [ (0., 2.) ] in
        let m = O.Timeline.checkpoint t in
        O.Timeline.add t ~start:4. ~finish:6.;
        O.Timeline.add t ~start:2. ~finish:3.;
        check_int "three intervals" 3 (O.Timeline.n_intervals t);
        O.Timeline.rollback t m;
        check_int "back to one" 1 (O.Timeline.n_intervals t);
        check_float "busy" 2. (O.Timeline.total_busy t);
        (* the freed space is genuinely reusable *)
        O.Timeline.add t ~start:2. ~finish:6.;
        check_float "busy again" 6. (O.Timeline.total_busy t));
    Alcotest.test_case "rollback to origin empties" `Quick (fun () ->
        let t = timeline_of [ (0., 2.); (5., 7.) ] in
        O.Timeline.rollback t O.Timeline.origin;
        check_int "empty" 0 (O.Timeline.n_intervals t);
        check_float "last finish" 0. (O.Timeline.last_finish t));
    Alcotest.test_case "checkpoints nest" `Quick (fun () ->
        let t = O.Timeline.create () in
        let m0 = O.Timeline.checkpoint t in
        O.Timeline.add t ~start:0. ~finish:1.;
        let m1 = O.Timeline.checkpoint t in
        O.Timeline.add t ~start:2. ~finish:3.;
        O.Timeline.rollback t m1;
        check_int "inner undone" 1 (O.Timeline.n_intervals t);
        O.Timeline.rollback t m0;
        check_int "outer undone" 0 (O.Timeline.n_intervals t));
    Alcotest.test_case "remove composes with rollback" `Quick (fun () ->
        let t = O.Timeline.create () in
        let m = O.Timeline.checkpoint t in
        O.Timeline.add t ~start:0. ~finish:2.;
        O.Timeline.add t ~start:4. ~finish:6.;
        O.Timeline.remove t ~start:0. ~finish:2.;
        check_int "one left" 1 (O.Timeline.n_intervals t);
        (* rollback must undo the surviving add but not resurrect the
           removed interval *)
        O.Timeline.rollback t m;
        check_int "empty" 0 (O.Timeline.n_intervals t));
    Alcotest.test_case "remove rejects partial matches" `Quick (fun () ->
        let t = timeline_of [ (0., 4.) ] in
        Alcotest.check_raises "wrong finish"
          (Invalid_argument
             "Timeline.remove: finish does not match the busy interval")
          (fun () -> O.Timeline.remove t ~start:0. ~finish:3.));
    Alcotest.test_case "stale mark rejected" `Quick (fun () ->
        let t = O.Timeline.create () in
        O.Timeline.add t ~start:0. ~finish:1.;
        let stale = O.Timeline.checkpoint t in
        O.Timeline.rollback t O.Timeline.origin;
        Alcotest.check_raises "invalidated mark"
          (Invalid_argument "Timeline.rollback: bad mark") (fun () ->
            O.Timeline.rollback t stale));
  ]

(* Random interleavings of add / checkpoint / rollback, checked against a
   twin rebuilt from scratch out of the model's surviving intervals.  The
   model mirrors the LIFO mark discipline: a rollback pops the most recent
   checkpoint and restores the interval set saved with it. *)
let checkpoint_property_tests =
  [
    qtest ~count:400 "random add/checkpoint/rollback matches rebuilt twin"
      QCheck2.Gen.(
        list_size (int_bound 40)
          (tup3 (int_bound 6) (int_bound 40) (int_range 1 5)))
      (fun ops ->
        let t = O.Timeline.create () in
        let current = ref [] in
        let stack = ref [] in
        List.iter
          (fun (tag, s, len) ->
            match tag with
            | 5 -> stack := (O.Timeline.checkpoint t, !current) :: !stack
            | 6 -> (
                match !stack with
                | [] -> ()
                | (m, saved) :: rest ->
                    O.Timeline.rollback t m;
                    current := saved;
                    stack := rest)
            | _ ->
                let start = float_of_int s in
                let finish = float_of_int (s + len) in
                let blocked =
                  List.exists
                    (fun (b0, b1) -> b0 < finish && b1 > start)
                    !current
                in
                if not blocked then begin
                  O.Timeline.add t ~start ~finish;
                  current := (start, finish) :: !current
                end)
          ops;
        let twin =
          timeline_of
            (List.sort (fun (s1, _) (s2, _) -> compare s1 s2) !current)
        in
        O.Timeline.intervals t = O.Timeline.intervals twin
        && O.Timeline.total_busy t = O.Timeline.total_busy twin
        && O.Timeline.last_finish t = O.Timeline.last_finish twin
        && List.for_all
             (fun (after, duration) ->
               O.Timeline.earliest_gap t ~after ~duration
               = O.Timeline.earliest_gap twin ~after ~duration)
             [ (0., 1.); (0., 4.); (7., 2.); (20., 3.) ]);
  ]

let suite =
  unit_tests @ edge_case_tests @ property_tests @ checkpoint_tests
  @ checkpoint_property_tests
