(* The §2.2 Sinnen-Sousa link-contention model: one message per direct
   link at a time, orthogonal to port disciplines, visible only when
   routes share links. *)

module O = Onesched
open Util

let ss = O.Comm_model.link_contention

(* Two independent producer->consumer pairs; under macro-dataflow the two
   messages overlap freely; under link contention they serialise exactly
   when they cross the same link. *)
let two_pairs () =
  O.Graph.create ~name:"two-pairs" ~weights:[| 1.; 1.; 1.; 1. |]
    ~edges:[ (0, 2, 4.); (1, 3, 4.) ]
    ()

let behaviour_tests =
  [
    Alcotest.test_case "same link serialises, distinct links overlap" `Quick
      (fun () ->
        let g = two_pairs () in
        let plat = O.Platform.homogeneous ~p:4 ~link_cost:1. in
        let sched = O.Schedule.create ~graph:g ~platform:plat ~model:ss () in
        (* both messages on the SAME link 0-1 must serialise *)
        let _ = O.Schedule.add_comm sched ~edge:0 ~src_proc:0 ~dst_proc:1 ~start:1. in
        check_bool "same link busy" true
          (try
             ignore (O.Schedule.add_comm sched ~edge:1 ~src_proc:1 ~dst_proc:0 ~start:2.);
             false
           with Invalid_argument _ -> true);
        (* a message on a different link at the same instant is fine *)
        let _ = O.Schedule.add_comm sched ~edge:1 ~src_proc:2 ~dst_proc:3 ~start:2. in
        check_int "two comms" 2 (O.Schedule.n_comm_events sched));
    Alcotest.test_case "ports stay unrestricted under pure link contention"
      `Quick (fun () ->
        (* one sender, two receivers over distinct links: overlapping sends
           are legal (Sinnen-Sousa does not restrict ports) *)
        let g =
          O.Graph.create ~name:"fan" ~weights:[| 1.; 1.; 1. |]
            ~edges:[ (0, 1, 4.); (0, 2, 4.) ]
            ()
        in
        let plat = O.Platform.homogeneous ~p:3 ~link_cost:1. in
        let sched = O.Schedule.create ~graph:g ~platform:plat ~model:ss () in
        O.Schedule.place_task sched ~task:0 ~proc:0 ~start:0.;
        let _ = O.Schedule.add_comm sched ~edge:0 ~src_proc:0 ~dst_proc:1 ~start:1. in
        let _ = O.Schedule.add_comm sched ~edge:1 ~src_proc:0 ~dst_proc:2 ~start:1. in
        check_int "parallel sends allowed" 2 (O.Schedule.n_comm_events sched));
    Alcotest.test_case "routed star contends on shared spokes" `Quick (fun () ->
        (* peripheral->peripheral routes share the hub's spokes: messages
           1->2 and 3->2 both traverse link 0-2 and must serialise there *)
        let plat =
          O.Platform.star ~cycle_times:(Array.make 4 1.) ~spoke_cost:1. ()
        in
        let g =
          O.Graph.create ~name:"converge" ~weights:[| 1.; 1.; 1. |]
            ~edges:[ (0, 2, 3.); (1, 2, 3.) ]
            ()
        in
        let sched = O.Schedule.create ~graph:g ~platform:plat ~model:ss () in
        let engine = O.Engine.create sched in
        O.Engine.schedule_on engine ~task:0 ~proc:1;
        O.Engine.schedule_on engine ~task:1 ~proc:3;
        let ev = O.Engine.evaluate engine ~task:2 ~proc:2 in
        (* each message: 2 hops of 3; ready at 1; hub->2 segments share a
           link, so the second arrival is pushed past the first *)
        check_int "four hops" 4 (List.length ev.O.Engine.hops);
        O.Engine.commit engine ~task:2 ev;
        O.Validate.check_exn sched;
        let makespan_ss = O.Schedule.makespan sched in
        (* same story without link contention finishes strictly earlier *)
        let sched2 =
          O.Schedule.create ~graph:g ~platform:plat
            ~model:O.Comm_model.macro_dataflow ()
        in
        let engine2 = O.Engine.create sched2 in
        O.Engine.schedule_on engine2 ~task:0 ~proc:1;
        O.Engine.schedule_on engine2 ~task:1 ~proc:3;
        let ev2 = O.Engine.evaluate engine2 ~task:2 ~proc:2 in
        O.Engine.commit engine2 ~task:2 ev2;
        check_bool "contention costs time" true
          (makespan_ss > O.Schedule.makespan sched2 +. 1e-9));
    Alcotest.test_case "model naming" `Quick (fun () ->
        Alcotest.(check string) "ss" "link-contention" (O.Comm_model.name ss);
        Alcotest.(check string)
          "combined" "one-port+links"
          (O.Comm_model.name (O.Comm_model.with_link_contention O.Comm_model.one_port));
        check_bool "roundtrip" true
          (O.Comm_model.equal ss (O.Comm_model.of_name "link-contention")));
  ]

let property_tests =
  [
    qtest ~count:60 "heuristics stay valid under link contention"
      QCheck2.Gen.(tup2 graph_gen platform_gen)
      (fun (params, plat) ->
        let g = build_graph params in
        scheduler_checks_out ~params:(O.Params.of_model ss) plat g
          (fun params plat g -> O.Heft.schedule ~params plat g)
        && scheduler_checks_out
             ~params:
               (O.Params.of_model
                  (O.Comm_model.with_link_contention O.Comm_model.one_port))
             plat g
             (fun params plat g -> O.Ilha.schedule ~params plat g));
    qtest ~count:40 "single-evaluation slots are delayed by contention"
      QCheck2.Gen.(int_bound 10_000)
      (fun seed ->
        (* identical committed state, one candidate evaluation: adding the
           link restriction can only push the start later (scheduling
           anomalies need diverging decision histories, which a single
           evaluation excludes) *)
        let rng = O.Rng.create ~seed in
        let g =
          O.Generators.layered rng ~layers:3 ~width:3 ~edge_prob:0.6
            ~max_weight:4 ~max_data:5
        in
        let plat = O.Platform.star ~cycle_times:(Array.make 4 1.) ~spoke_cost:1. () in
        let order = O.Graph.topological_order g in
        let est model =
          let sched = O.Schedule.create ~graph:g ~platform:plat ~model () in
          let engine = O.Engine.create sched in
          (* identical deterministic placements for every prefix *)
          Array.iteri
            (fun i v ->
              if i < Array.length order - 1 then
                O.Engine.schedule_on engine ~task:v ~proc:(i mod 4))
            order;
          let last = order.(Array.length order - 1) in
          (O.Engine.evaluate engine ~task:last ~proc:2).O.Engine.est
        in
        est ss >= est O.Comm_model.macro_dataflow -. 1e-9);
    qtest ~count:40 "pert compaction stays valid under link contention"
      QCheck2.Gen.(tup2 graph_gen platform_gen)
      (fun (params, plat) ->
        let g = build_graph params in
        let sched = O.Heft.schedule ~params:(O.Params.of_model ss) plat g in
        let pert = O.Pert.build sched in
        O.Pert.compacted_makespan pert <= O.Schedule.makespan sched +. 1e-9);
  ]

let suite = behaviour_tests @ property_tests
