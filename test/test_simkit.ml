(* PERT replay and robustness: compaction never worsens a schedule,
   zero jitter is exact, inflation is monotone. *)

module O = Onesched
open Util

let schedule_of params plat model =
  let g = build_graph params in
  O.Ilha.schedule ~params:(O.Params.of_model model) plat g

let pert_tests =
  [
    qtest ~count:60 "compacted makespan never exceeds the original"
      QCheck2.Gen.(tup3 graph_gen platform_gen model_gen)
      (fun (params, plat, model) ->
        let sched = schedule_of params plat model in
        let pert = O.Pert.build sched in
        O.Pert.compacted_makespan pert <= O.Schedule.makespan sched +. 1e-9);
    qtest ~count:60 "identity retime equals compaction"
      QCheck2.Gen.(tup2 graph_gen platform_gen)
      (fun (params, plat) ->
        let sched = schedule_of params plat O.Comm_model.one_port in
        let pert = O.Pert.build sched in
        Prelude.Stats.fequal
          (O.Pert.retime pert
             ~task_duration:(fun _ d -> d)
             ~hop_duration:(fun _ d -> d))
          (O.Pert.compacted_makespan pert));
    qtest ~count:40 "uniform inflation scales at most linearly"
      QCheck2.Gen.(tup2 graph_gen platform_gen)
      (fun (params, plat) ->
        let sched = schedule_of params plat O.Comm_model.one_port in
        let pert = O.Pert.build sched in
        let nominal = O.Pert.compacted_makespan pert in
        let doubled =
          O.Pert.retime pert
            ~task_duration:(fun _ d -> 2. *. d)
            ~hop_duration:(fun _ d -> 2. *. d)
        in
        (* uniform doubling doubles every path exactly *)
        Prelude.Stats.fequal doubled (2. *. nominal));
    qtest ~count:40 "inflation is monotone"
      QCheck2.Gen.(tup2 graph_gen platform_gen)
      (fun (params, plat) ->
        let sched = schedule_of params plat O.Comm_model.one_port in
        let pert = O.Pert.build sched in
        let at factor =
          O.Pert.retime pert
            ~task_duration:(fun _ d -> factor *. d)
            ~hop_duration:(fun _ d -> d)
        in
        at 1.3 <= at 1.7 +. 1e-9);
    Alcotest.test_case "event count is tasks + hops" `Quick (fun () ->
        let g = O.Kernels.fork_join ~n:6 ~ccr:2. in
        let plat = O.Platform.homogeneous ~p:3 ~link_cost:1. in
        let sched = O.Heft.schedule plat g in
        let pert = O.Pert.build sched in
        check_int "events" (O.Graph.n_tasks g + O.Schedule.n_comm_events sched)
          (O.Pert.n_events pert));
  ]

let robustness_tests =
  [
    Alcotest.test_case "monte carlo stats are ordered" `Quick (fun () ->
        let g = O.Kernels.laplace ~n:8 ~ccr:5. in
        let plat = O.Platform.paper_platform () in
        let sched = O.Heft.schedule plat g in
        let rng = O.Rng.create ~seed:1 in
        let s = O.Robustness.monte_carlo sched rng ~jitter:0.4 ~trials:50 in
        check_bool "nominal <= mean" true (s.O.Robustness.nominal <= s.O.Robustness.mean);
        check_bool "mean <= worst" true (s.O.Robustness.mean <= s.O.Robustness.worst);
        check_bool "p95 <= worst" true (s.O.Robustness.p95 <= s.O.Robustness.worst);
        check_int "trials recorded" 50 s.O.Robustness.trials);
    Alcotest.test_case "zero jitter reproduces the compacted makespan" `Quick
      (fun () ->
        let g = O.Kernels.stencil ~n:6 ~ccr:3. in
        let plat = O.Platform.homogeneous ~p:4 ~link_cost:1. in
        let sched = O.Ilha.schedule plat g in
        let rng = O.Rng.create ~seed:3 in
        let s = O.Robustness.monte_carlo sched rng ~jitter:0. ~trials:5 in
        check_float "mean = nominal" s.O.Robustness.nominal s.O.Robustness.mean);
    Alcotest.test_case "degradation is deterministic per seed" `Quick (fun () ->
        let g = O.Kernels.ldmt ~n:6 ~ccr:3. in
        let plat = O.Platform.paper_platform () in
        let sched = O.Heft.schedule plat g in
        let pert = O.Pert.build sched in
        let draw () =
          O.Robustness.degraded_makespan pert (O.Rng.create ~seed:9)
            ~task_jitter:0.3 ~comm_jitter:0.2
        in
        check_float "same draw" (draw ()) (draw ()));
  ]

let suite = pert_tests @ robustness_tests
