(* Executor and I/O round-trips: the discrete-event executor must agree
   with the PERT longest-path view on every model; the text formats must
   invert. *)

module O = Onesched
open Util

let executor_tests =
  [
    qtest ~count:80 "executor agrees with PERT compaction"
      QCheck2.Gen.(tup3 graph_gen platform_gen model_gen)
      (fun (params, plat, model) ->
        let g = build_graph params in
        let sched = O.Heft.schedule ~params:(O.Params.of_model model) plat g in
        let pert = O.Pert.build sched in
        let trace = O.Executor.run sched in
        Prelude.Stats.fequal trace.O.Executor.makespan
          (O.Pert.compacted_makespan pert));
    qtest ~count:40 "executor fires every event exactly once"
      QCheck2.Gen.(tup2 graph_gen platform_gen)
      (fun (params, plat) ->
        let g = build_graph params in
        let sched = O.Ilha.schedule plat g in
        let trace = O.Executor.run sched in
        trace.O.Executor.events_fired
        = O.Graph.n_tasks g + O.Schedule.n_comm_events sched);
    Alcotest.test_case "executor start times respect dependencies" `Quick
      (fun () ->
        let g =
          O.Graph.create ~weights:[| 1.; 2. |] ~edges:[ (0, 1, 3.) ] ()
        in
        let plat = O.Platform.homogeneous ~p:2 ~link_cost:1. in
        let sched = O.Heft.schedule plat g in
        let trace = O.Executor.run sched in
        check_float "chain start" 0. trace.O.Executor.task_starts.(0);
        check_bool "successor waits" true
          (trace.O.Executor.task_starts.(1) >= 1.));
  ]

let graph_io_tests =
  [
    qtest ~count:100 "graph text format round-trips" graph_gen (fun params ->
        let g = build_graph params in
        let g' = O.Graph_io.of_string (O.Graph_io.to_string g) in
        O.Graph.n_tasks g' = O.Graph.n_tasks g
        && O.Graph.n_edges g' = O.Graph.n_edges g
        && List.for_all
             (fun v -> O.Graph.weight g' v = O.Graph.weight g v)
             (List.init (O.Graph.n_tasks g) Fun.id)
        && List.for_all2
             (fun (a : O.Graph.edge) (b : O.Graph.edge) ->
               a.src = b.src && a.dst = b.dst && a.data = b.data)
             (O.Graph.edges g) (O.Graph.edges g'));
    Alcotest.test_case "parses the documented example" `Quick (fun () ->
        let g =
          O.Graph_io.of_string
            "# my application\ngraph my-app\ntask 0 2.5\ntask 1 4\nedge 0 1 10\n"
        in
        Alcotest.(check string) "name" "my-app" (O.Graph.name g);
        check_float "weight" 2.5 (O.Graph.weight g 0);
        check_int "edges" 1 (O.Graph.n_edges g));
    Alcotest.test_case "rejects malformed input with line numbers" `Quick
      (fun () ->
        let expect_fail text fragment =
          match O.Graph_io.of_string text with
          | exception Invalid_argument msg ->
              check_bool
                (Printf.sprintf "%S mentions %S" msg fragment)
                true (contains msg fragment)
          | _ -> Alcotest.fail "accepted malformed input"
        in
        expect_fail "task 0 oops\n" "line 1";
        expect_fail "task 0 1\ntask 0 2\n" "duplicate";
        expect_fail "bogus stuff\n" "unknown directive";
        expect_fail "task 1 1\n" "missing task 0");
    Alcotest.test_case "file save/load round-trip" `Quick (fun () ->
        let g = O.Kernels.fork_join ~n:4 ~ccr:2. in
        let path = Filename.temp_file "onesched" ".tg" in
        Fun.protect
          ~finally:(fun () -> Sys.remove path)
          (fun () ->
            O.Graph_io.save g path;
            let g' = O.Graph_io.load path in
            check_int "tasks" (O.Graph.n_tasks g) (O.Graph.n_tasks g')));
  ]

let platform_io_tests =
  [
    Alcotest.test_case "parses the three interconnect forms" `Quick (fun () ->
        let full =
          O.Platform.of_description "cycle-times 1 2 3\nlink-cost 2\n"
        in
        check_float "uniform" 2. (O.Platform.link full ~src:0 ~dst:2);
        let topo =
          O.Platform.of_description
            "cycle-times 1 1 1\nlink 0 1 1\nlink 1 2 1\n"
        in
        check_float "routed" 2. (O.Platform.link topo ~src:0 ~dst:2);
        let matrix =
          O.Platform.of_description
            "cycle-times 1 1\nrow 0 5\nrow 3 0\n"
        in
        check_float "asymmetric" 5. (O.Platform.link matrix ~src:0 ~dst:1);
        check_float "asymmetric back" 3. (O.Platform.link matrix ~src:1 ~dst:0));
    Alcotest.test_case "description round-trips pairwise costs" `Quick
      (fun () ->
        List.iter
          (fun plat ->
            let plat' = O.Platform.of_description (O.Platform.to_description plat) in
            check_int "p" (O.Platform.p plat) (O.Platform.p plat');
            for q = 0 to O.Platform.p plat - 1 do
              check_float "cycle" (O.Platform.cycle_time plat q)
                (O.Platform.cycle_time plat' q);
              for r = 0 to O.Platform.p plat - 1 do
                check_float "cost"
                  (O.Platform.link plat ~src:q ~dst:r)
                  (O.Platform.link plat' ~src:q ~dst:r)
              done
            done)
          [
            O.Platform.paper_platform ();
            O.Platform.star ~cycle_times:[| 1.; 2.; 3. |] ~spoke_cost:2. ();
            O.Platform.ring ~cycle_times:(Array.make 4 1.) ~link_cost:3. ();
          ]);
    Alcotest.test_case "rejects inconsistent descriptions" `Quick (fun () ->
        let expect_fail text =
          match O.Platform.of_description text with
          | exception Invalid_argument _ -> ()
          | _ -> Alcotest.fail "accepted malformed description"
        in
        expect_fail "link-cost 1\n";
        expect_fail "cycle-times 1 1\n";
        expect_fail "cycle-times 1 1\nlink-cost 1\nlink 0 1 1\n";
        expect_fail "cycle-times 1 1\nwhatever\n");
  ]

let suite = executor_tests @ graph_io_tests @ platform_io_tests
