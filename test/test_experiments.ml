(* Experiment harness: configs, runner rows, and the paper-number anchors
   that must hold exactly (E1/E3) or qualitatively (toy, figure shapes). *)

module O = Onesched
open Util

let tiny_cfg () = O.Config.with_sizes (O.Config.paper ()) [ 10 ]

let runner_tests =
  [
    Alcotest.test_case "runner rows are self-consistent" `Quick (fun () ->
        let cfg = tiny_cfg () in
        let row =
          O.Runner.run cfg ~testbed:(O.Suite.find "laplace") ~n:10
            ~heuristic:(O.Registry.find "heft") ()
        in
        check_bool "valid" true row.O.Runner.valid;
        check_bool "speedup sane" true
          (row.O.Runner.speedup > 0. && row.O.Runner.speedup <= 7.6);
        check_int "n recorded" 10 row.O.Runner.n;
        check_bool "makespan * speedup = sequential" true
          (Prelude.Stats.fequal
             (row.O.Runner.makespan *. row.O.Runner.speedup)
             (60000. /. 100.)));
    Alcotest.test_case "runner honours ILHA's b" `Quick (fun () ->
        let cfg = tiny_cfg () in
        let row =
          O.Runner.run cfg ~testbed:(O.Suite.find "lu") ~n:10
            ~heuristic:(O.Registry.find "ilha")
            ~params:(O.Params.make ~b:4 ())
            ()
        in
        check_bool "b recorded" true (row.O.Runner.b = Some 4);
        check_bool "named" true (contains row.O.Runner.heuristic "b=4"));
    Alcotest.test_case "table renders every row" `Quick (fun () ->
        let cfg = tiny_cfg () in
        let rows =
          List.map
            (fun name ->
              O.Runner.run cfg ~testbed:(O.Suite.find "stencil") ~n:6
                ~heuristic:(O.Registry.find name) ())
            [ "heft"; "ilha"; "cpop" ]
        in
        let t = O.Runner.table rows in
        check_int "3 rows" 3 (O.Table.n_rows t));
  ]

let figure_tests =
  [
    Alcotest.test_case "experiment registry is closed" `Quick (fun () ->
        check_int "19 experiments" 19 (List.length O.Figures.all);
        List.iter
          (fun id ->
            check_bool id true ((O.Figures.find id).O.Figures.id = id))
          O.Figures.ids;
        check_bool "unknown id rejected" true
          (try
             ignore (O.Figures.find "fig99");
             false
           with Invalid_argument _ -> true));
    Alcotest.test_case "E1 renders the paper's numbers" `Quick (fun () ->
        let out = (O.Figures.find "e1").O.Figures.render (tiny_cfg ()) in
        check_bool "macro 3" true (contains out "macro-dataflow, HEFT");
        check_bool "optimum 5" true (contains out "one-port, exact optimum");
        (* exact cell values *)
        check_bool "value 3" true (contains out "3");
        check_bool "value 5" true (contains out "5");
        check_bool "value 6" true (contains out "6"));
    Alcotest.test_case "E3 reproduces M = 38 and the 7.6 bound" `Quick
      (fun () ->
        let out = (O.Figures.find "e3").O.Figures.render (tiny_cfg ()) in
        check_bool "38" true (contains out "38");
        check_bool "distribution" true (contains out "5,5,5,5,5,3,3,3,2,2");
        check_bool "7.60" true (contains out "7.60"));
    Alcotest.test_case "E2 shows ILHA sending fewer messages" `Quick (fun () ->
        let out = (O.Figures.find "e2").O.Figures.render (tiny_cfg ()) in
        check_bool "HEFT 4 comms" true (contains out "makespan 5, 4 communications");
        check_bool "ILHA 2 comms" true (contains out "makespan 5, 2 communications"));
    Alcotest.test_case "figure series render a row per size" `Quick (fun () ->
        let cfg = O.Config.with_sizes (O.Config.paper ()) [ 6; 8 ] in
        let out = (O.Figures.find "fig7").O.Figures.render cfg in
        check_bool "has gain column" true (contains out "gain %");
        (* one data line per configured size *)
        let lines = String.split_on_char '\n' out in
        let data_lines =
          List.filter
            (fun l ->
              String.length l > 0 && (l.[0] = '6' || l.[0] = '8'))
            lines
        in
        check_int "two rows" 2 (List.length data_lines));
  ]

(* The CSV contract guards the parallel writer: rows are filled
   out-of-order into cell-indexed slots, so the only thing keeping the
   file coherent is the header/field-order pin and the float formats. *)
let csv_tests =
  let grid_rows () =
    let cfg = O.Config.with_sizes (O.Config.paper ()) [ 6; 10 ] in
    let spec =
      {
        (O.Batch.default_spec cfg) with
        O.Batch.testbeds = [ O.Suite.find "lu"; O.Suite.find "stencil" ];
      }
    in
    O.Batch.run cfg spec
  in
  [
    Alcotest.test_case "header matches the row field order" `Quick (fun () ->
        Alcotest.(check string) "header"
          "testbed,n,heuristic,model,b,makespan,speedup,comms,comm_time,wall_s,valid"
          O.Batch.csv_header;
        let csv = O.Batch.to_csv (grid_rows ()) in
        let first_line =
          List.hd (String.split_on_char '\n' csv)
        in
        Alcotest.(check string) "emitted header" O.Batch.csv_header first_line);
    Alcotest.test_case "to_csv / of_csv round-trips every row" `Quick
      (fun () ->
        let rows = grid_rows () in
        let parsed = O.Batch.of_csv (O.Batch.to_csv rows) in
        check_int "row count" (List.length rows) (List.length parsed);
        List.iter2
          (fun (r : O.Runner.row) (p : O.Runner.row) ->
            Alcotest.(check string) "testbed" r.O.Runner.testbed p.O.Runner.testbed;
            check_int "n" r.O.Runner.n p.O.Runner.n;
            Alcotest.(check string) "heuristic" r.O.Runner.heuristic
              p.O.Runner.heuristic;
            Alcotest.(check string) "model" r.O.Runner.model p.O.Runner.model;
            check_bool "b" true (r.O.Runner.b = p.O.Runner.b);
            (* %.17g columns re-parse to the exact float *)
            check_bool "makespan exact" true
              (r.O.Runner.makespan = p.O.Runner.makespan);
            check_bool "comm_time exact" true
              (r.O.Runner.comm_time = p.O.Runner.comm_time);
            check_int "comms" r.O.Runner.n_comms p.O.Runner.n_comms;
            check_bool "valid" r.O.Runner.valid p.O.Runner.valid)
          rows parsed;
        (* after one print the text representation is a fixed point *)
        let once = O.Batch.to_csv parsed in
        Alcotest.(check string) "print . parse . print = print" once
          (O.Batch.to_csv (O.Batch.of_csv once)));
    Alcotest.test_case "of_csv rejects malformed input" `Quick (fun () ->
        check_bool "bad header" true
          (try
             ignore (O.Batch.of_csv "a,b,c\n1,2,3\n");
             false
           with Invalid_argument _ -> true);
        check_bool "short line" true
          (try
             ignore (O.Batch.of_csv (O.Batch.csv_header ^ "\nlu,10\n"));
             false
           with Invalid_argument _ -> true));
  ]

let config_tests =
  [
    Alcotest.test_case "paper config matches §5.2" `Quick (fun () ->
        let cfg = O.Config.paper () in
        check_float "ccr 10" 10. cfg.O.Config.ccr;
        check_int "10 processors" 10 (O.Platform.p cfg.O.Config.platform);
        Alcotest.(check (list int)) "sizes" [ 100; 200; 300; 400; 500 ]
          cfg.O.Config.sizes;
        check_bool "one-port" true
          (O.Comm_model.equal (O.Config.model cfg) O.Comm_model.one_port));
    Alcotest.test_case "scaling shrinks sizes" `Quick (fun () ->
        let cfg = O.Config.paper ~scale:0.2 () in
        Alcotest.(check (list int)) "scaled" [ 20; 40; 60; 80; 100 ]
          cfg.O.Config.sizes);
  ]

let suite = runner_tests @ figure_tests @ csv_tests @ config_tests
