(* Task duplication: copy-set semantics across the stack.

   Three angles: single-copy schedules must round-trip through the
   copy-set API bit-identically (the representation change is invisible
   until someone duplicates), the validator must reject malformed
   copy-sets, and heft-dup must actually win somewhere — on a pinned
   FORK-JOIN instance where replicating the fork root removes the
   bottleneck communications. *)

module O = Onesched
open Util

let eps = 1e-9

(* ---- round-trip: every heuristic x testbed x model stays single-copy
   and survives copy/snapshot/place_copy/unplace_copy unchanged ---- *)

let roundtrip_models = [ O.Comm_model.one_port; O.Comm_model.macro_dataflow ]

let roundtrip () =
  let plat = O.Platform.paper_platform () in
  List.iter
    (fun model ->
      let params = O.Params.of_model model in
      List.iter
        (fun tb_name ->
          let tb = O.Suite.find tb_name in
          let g = tb.O.Suite.build ~n:(max 20 tb.O.Suite.min_n) ~ccr:10. in
          List.iter
            (fun hname ->
              let ctx =
                Printf.sprintf "%s/%s/%s" hname tb_name
                  (O.Comm_model.name model)
              in
              let entry = O.Registry.find hname in
              let sched = entry.O.Registry.scheduler params plat g in
              let fp = O.Export.fingerprint sched in
              (* heft-dup may legitimately duplicate; everyone else must
                 stay single-copy *)
              if hname <> "heft-dup" then begin
              check_bool (ctx ^ ": single-copy") false
                (O.Schedule.has_dups sched);
              check_int (ctx ^ ": no dup copies") 0
                (O.Schedule.n_dup_copies sched);
              for v = 0 to O.Graph.n_tasks g - 1 do
                let pl = O.Schedule.placement_exn sched v in
                (match O.Schedule.copies sched v with
                | [ c ] -> check_bool (ctx ^ ": copies = [primary]") true (c = pl)
                | _ -> Alcotest.failf "%s: task %d has several copies" ctx v);
                check_float
                  (ctx ^ ": earliest = primary finish")
                  pl.O.Schedule.finish
                  (O.Schedule.earliest_finish sched v)
              done
              end;
              (* a deep copy fingerprints identically *)
              Alcotest.(check string)
                (ctx ^ ": copy round-trip") fp
                (O.Export.fingerprint (O.Schedule.copy sched));
              (* placing and retracting a duplicate copy restores the
                 original fingerprint exactly (port regime only) *)
              if
                model.O.Comm_model.regime = O.Comm_model.Port
                && not (O.Schedule.has_dups sched)
              then begin
                let pl = O.Schedule.placement_exn sched 0 in
                let q = (pl.O.Schedule.proc + 1) mod O.Platform.p plat in
                let far = O.Schedule.makespan sched +. 10. in
                O.Schedule.place_copy sched ~task:0 ~proc:q ~start:far;
                check_bool (ctx ^ ": dup visible") true
                  (O.Schedule.has_dups sched);
                O.Schedule.unplace_copy sched ~task:0 ~proc:q;
                Alcotest.(check string)
                  (ctx ^ ": place/unplace round-trip") fp
                  (O.Export.fingerprint sched)
              end)
            O.Registry.names)
        O.Suite.names)
    roundtrip_models

(* ---- validator: malformed copy-sets are rejected ---- *)

(* An unfed duplicate: a copy of the join task parked on a processor
   where no predecessor copy lives and no chain arrives. *)
let validate_unfed_copy () =
  let plat = O.Platform.paper_platform () in
  let tb = O.Suite.find "fork-join" in
  let g = tb.O.Suite.build ~n:20 ~ccr:10. in
  let sched = O.Heft.schedule plat g in
  (match O.Validate.check sched with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "baseline HEFT schedule should be valid");
  let n = O.Graph.n_tasks g in
  let sink = n - 1 in
  (* a processor holding no copy of any of the sink's predecessors *)
  let pred_procs = ref [] in
  O.Graph.iter_pred_edges g sink ~f:(fun e ->
      let u = O.Graph.edge_src g e in
      pred_procs := (O.Schedule.placement_exn sched u).O.Schedule.proc
                    :: !pred_procs);
  let sink_proc = (O.Schedule.placement_exn sched sink).O.Schedule.proc in
  let q =
    List.find
      (fun q -> q <> sink_proc && not (List.mem q !pred_procs))
      (List.init (O.Platform.p plat) Fun.id)
  in
  O.Schedule.place_copy sched ~task:sink ~proc:q
    ~start:(O.Schedule.makespan sched +. 5.);
  match O.Validate.check sched with
  | Ok () -> Alcotest.fail "an unfed duplicate copy must not validate"
  | Error msgs ->
      check_bool "mentions the unfed copy" true
        (List.exists (fun m -> contains m "no completed copy") msgs)

(* An orphan chain: a communication departing a processor where the
   source task has no copy at all. *)
let validate_orphan_chain () =
  let plat = O.Platform.homogeneous ~p:3 ~link_cost:1. in
  let g =
    O.Graph.create ~weights:[| 1.; 1. |] ~edges:[ (0, 1, 1.) ] ()
  in
  let model = O.Comm_model.one_port in
  let sched = O.Schedule.create ~graph:g ~platform:plat ~model () in
  O.Schedule.place_task sched ~task:0 ~proc:0 ~start:0.;
  (* the chain leaves processor 2 — task 0 never ran there *)
  let (_ : float) =
    O.Schedule.add_comm sched ~edge:0 ~src_proc:2 ~dst_proc:1 ~start:1.
  in
  O.Schedule.place_task sched ~task:1 ~proc:1 ~start:2.;
  (* make it a copy-set schedule so the copy-aware checker runs *)
  O.Schedule.place_copy sched ~task:0 ~proc:1 ~start:10.;
  match O.Validate.check sched with
  | Ok () -> Alcotest.fail "an orphan chain must not validate"
  | Error msgs ->
      check_bool "mentions the orphan departure" true
        (List.exists (fun m -> contains m "has no copy") msgs)

(* ---- the pinned win: FORK-JOIN, paper platform, one-port, ccr 1 ---- *)

let pinned_win () =
  let plat = O.Platform.paper_platform () in
  let tb = O.Suite.find "fork-join" in
  let g = tb.O.Suite.build ~n:100 ~ccr:1. in
  let params = O.Params.with_dup_limit O.Params.default 1 in
  let heft = O.Heft.schedule ~params plat g in
  let dup = O.Heft_dup.schedule ~params plat g in
  let mh = O.Schedule.makespan heft in
  let md = O.Schedule.makespan dup in
  check_bool
    (Printf.sprintf "heft-dup strictly beats heft (%g < %g)" md mh)
    true (md < mh -. eps);
  check_bool "the win comes from real duplicates" true
    (O.Schedule.has_dups dup);
  (match O.Validate.check dup with
  | Ok () -> ()
  | Error msgs ->
      Alcotest.failf "duplicated schedule invalid: %s" (List.hd msgs));
  (* the discrete-event executor reproduces the duplicated plan *)
  let trace = O.Executor.run dup in
  check_float "executor reproduces the makespan" md
    trace.O.Executor.makespan;
  (* and the PERT view can retime it without stretching *)
  let pert = O.Pert.build dup in
  check_bool "compaction never worsens" true
    (O.Pert.compacted_makespan pert <= md +. eps)

(* dup_limit 0 still duplicates at most once per candidate (the knob
   floors at one exploratory copy), and higher limits stay valid *)
let limits () =
  let plat = O.Platform.paper_platform () in
  let tb = O.Suite.find "fork-join" in
  let g = tb.O.Suite.build ~n:60 ~ccr:1. in
  List.iter
    (fun limit ->
      let params = O.Params.with_dup_limit O.Params.default limit in
      let s = O.Heft_dup.schedule ~params plat g in
      match O.Validate.check s with
      | Ok () -> ()
      | Error msgs ->
          Alcotest.failf "dup_limit %d invalid: %s" limit (List.hd msgs))
    [ 0; 1; 2; 3 ]

(* ---- online: a crash replays surviving replicas instead of
   re-planning their tasks ---- *)

let online_crash_keeps_replicas () =
  let module E = O.Online_event in
  let module D = O.Online_driver in
  let plat = O.Platform.paper_platform () in
  let job = E.job ~ccr:1. "fork-join" 100 in
  let config = { D.default_config with D.heuristic = "heft-dup" } in
  let arrive at j = { E.at; kind = E.Arrive j } in
  let probe = D.run ~config plat [ arrive 0. job ] in
  (match probe.D.schedule with
  | Some s ->
      check_bool "the initial plan duplicates" true (O.Schedule.has_dups s)
  | None -> Alcotest.fail "no plan");
  let m = probe.D.makespan in
  let o =
    D.run ~config plat
      [ arrive 0. job; { E.at = 0.5 *. m; kind = E.Crash 1 } ]
  in
  check_int "the job still completes" 1 o.D.completed;
  match o.D.schedule with
  | Some s ->
      check_bool "surviving replicas are replayed" true
        (O.Schedule.has_dups s);
      (match O.Validate.check s with
      | Ok () -> ()
      | Error msgs ->
          Alcotest.failf "post-crash plan invalid: %s" (List.hd msgs))
  | None -> Alcotest.fail "no post-crash plan"

let suite =
  [
    Alcotest.test_case "round-trip: single-copy schedules are unchanged"
      `Quick roundtrip;
    Alcotest.test_case "validate: unfed duplicate copy is rejected" `Quick
      validate_unfed_copy;
    Alcotest.test_case "validate: orphan chain is rejected" `Quick
      validate_orphan_chain;
    Alcotest.test_case "pinned FORK-JOIN: heft-dup beats heft" `Quick
      pinned_win;
    Alcotest.test_case "dup_limit knob: every setting stays valid" `Quick
      limits;
    Alcotest.test_case "online: a crash keeps surviving replicas" `Quick
      online_crash_keeps_replicas;
  ]
