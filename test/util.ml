(* Shared helpers for the test suites. *)

module O = Onesched

let check_float = Alcotest.(check (float 1e-9))
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec at i = i + m <= n && (String.sub s i m = sub || at (i + 1)) in
  m = 0 || at 0

(* Property tests run from a pinned seed so the suite is reproducible
   run to run (and in CI) — the repo's determinism rule applies to its
   own tests too.  Explore fresh seeds with QCHECK_SEED=$RANDOM. *)
let qcheck_rand () =
  let seed =
    match Sys.getenv_opt "QCHECK_SEED" with
    | Some s -> ( match int_of_string_opt s with Some i -> i | None -> 20020422)
    | None -> 20020422
  in
  Random.State.make [| seed |]

let qtest ?(count = 100) name gen prop =
  QCheck_alcotest.to_alcotest ~rand:(qcheck_rand ())
    (QCheck2.Test.make ~count ~name gen prop)

(* Deterministic random graphs: generate a seed and shape parameters, build
   with the library's own generators. *)
let graph_gen =
  QCheck2.Gen.(
    let* seed = int_bound 1_000_000 in
    let* shape = int_bound 3 in
    let* size = int_range 2 18 in
    return (seed, shape, size))

let build_graph (seed, shape, size) =
  let rng = O.Rng.create ~seed in
  match shape with
  | 0 ->
      O.Generators.erdos_renyi rng ~n:size ~edge_prob:0.3 ~max_weight:5
        ~max_data:6
  | 1 ->
      O.Generators.layered rng ~layers:(1 + (size / 4)) ~width:4 ~edge_prob:0.4
        ~max_weight:5 ~max_data:6
  | 2 -> O.Generators.out_tree rng ~n:size ~max_arity:3 ~max_weight:5 ~max_data:6
  | _ -> O.Generators.series_parallel rng ~depth:3 ~max_weight:5 ~max_data:6

let print_graph (seed, shape, size) =
  Printf.sprintf "graph(seed=%d,shape=%d,size=%d)" seed shape size

(* A pool of small platforms exercising hetero/homo and odd link costs. *)
let platforms =
  lazy
    [
      O.Platform.homogeneous ~p:2 ~link_cost:1.;
      O.Platform.homogeneous ~p:4 ~link_cost:3.;
      O.Platform.fully_connected ~cycle_times:[| 1.; 2.; 5. |] ~link_cost:2. ();
      O.Platform.paper_platform ();
      O.Platform.with_topology ~cycle_times:[| 1.; 1.; 2.; 3. |]
        ~links:[ (0, 1, 1.); (1, 2, 2.); (2, 3, 1.) ]
        ();
    ]

let platform_gen =
  QCheck2.Gen.(map (fun i -> List.nth (Lazy.force platforms) i) (int_bound 4))

let model_gen =
  QCheck2.Gen.(
    map (fun i -> List.nth O.Comm_model.all i)
      (int_bound (List.length O.Comm_model.all - 1)))

let scheduler_checks_out ?(params = O.Params.default) plat g scheduler =
  let sched = scheduler params plat g in
  match O.Validate.check sched with
  | Ok () -> true
  | Error es ->
      Printf.printf "INVALID: %s\n" (String.concat "; " es);
      false
