(* Anneal, Compare, Batch. *)

module O = Onesched
open Util

let one_port = O.Comm_model.one_port

let anneal_tests =
  [
    qtest ~count:15 "annealing stays valid and never regresses"
      QCheck2.Gen.(tup2 graph_gen platform_gen)
      (fun (params, plat) ->
        let g = build_graph params in
        let sched = O.Heft.schedule plat g in
        let r =
          O.Anneal.improve
            ~params:{ O.Anneal.default_params with O.Anneal.steps = 60 }
            sched
        in
        O.Validate.is_valid r.O.Anneal.schedule
        && r.O.Anneal.final_makespan <= r.O.Anneal.initial_makespan +. 1e-9
        && Prelude.Stats.fequal
             (O.Schedule.makespan r.O.Anneal.schedule)
             r.O.Anneal.final_makespan);
    Alcotest.test_case "annealing is deterministic per seed" `Quick (fun () ->
        let g = O.Kernels.doolittle ~n:10 ~ccr:10. in
        let plat = O.Platform.paper_platform () in
        let sched = O.Heft.schedule plat g in
        let run () =
          (O.Anneal.improve
             ~params:{ O.Anneal.default_params with O.Anneal.steps = 100 }
             sched)
            .O.Anneal.final_makespan
        in
        check_float "same outcome" (run ()) (run ()));
    Alcotest.test_case "annealing escapes a pathological allocation" `Quick
      (fun () ->
        (* independent equal tasks all on one processor *)
        let g = O.Graph.create ~weights:(Array.make 8 4.) ~edges:[] () in
        let plat = O.Platform.homogeneous ~p:4 ~link_cost:1. in
        let sched = O.Refine.rebuild ~alloc:(fun _ -> 0) plat g in
        let r = O.Anneal.improve sched in
        check_bool "improved substantially" true
          (r.O.Anneal.final_makespan < r.O.Anneal.initial_makespan /. 2.));
    Alcotest.test_case "zero steps keeps the incumbent" `Quick (fun () ->
        let g = O.Kernels.fork_join ~n:5 ~ccr:2. in
        let plat = O.Platform.homogeneous ~p:2 ~link_cost:1. in
        let sched = O.Heft.schedule plat g in
        let r =
          O.Anneal.improve
            ~params:{ O.Anneal.default_params with O.Anneal.steps = 0 }
            sched
        in
        check_bool "no worse" true
          (r.O.Anneal.final_makespan <= O.Schedule.makespan sched +. 1e-9));
  ]

let compare_tests =
  [
    Alcotest.test_case "self-diff is the identity" `Quick (fun () ->
        let g = O.Kernels.laplace ~n:6 ~ccr:5. in
        let plat = O.Platform.paper_platform () in
        let sched = O.Heft.schedule plat g in
        let d = O.Compare.diff sched sched in
        check_float "ratio 1" 1. d.O.Compare.makespan_ratio;
        check_float "agreement 1" 1. d.O.Compare.allocation_agreement;
        check_bool "no moves" true (d.O.Compare.moved_tasks = []));
    Alcotest.test_case "diff counts moved tasks" `Quick (fun () ->
        let g = O.Graph.create ~weights:[| 1.; 1. |] ~edges:[] () in
        let plat = O.Platform.homogeneous ~p:2 ~link_cost:1. in
        let a = O.Refine.rebuild ~alloc:(fun _ -> 0) plat g in
        let b = O.Refine.rebuild ~alloc:(fun v -> v) plat g in
        let d = O.Compare.diff a b in
        check_int "one moved" 1 (List.length d.O.Compare.moved_tasks);
        check_int "one same" 1 d.O.Compare.same_allocation);
    Alcotest.test_case "rejects mismatched inputs" `Quick (fun () ->
        let plat = O.Platform.homogeneous ~p:2 ~link_cost:1. in
        let s1 =
          O.Heft.schedule plat (O.Kernels.fork_join ~n:3 ~ccr:1.)
        in
        let s2 =
          O.Heft.schedule plat (O.Kernels.fork_join ~n:4 ~ccr:1.)
        in
        check_bool "raises" true
          (try
             ignore (O.Compare.diff s1 s2);
             false
           with Invalid_argument _ -> true));
  ]

let batch_tests =
  [
    Alcotest.test_case "grid covers the full cross product" `Quick (fun () ->
        let cfg = O.Config.with_sizes (O.Config.paper ()) [ 6; 8 ] in
        let spec = O.Batch.default_spec cfg in
        let rows = O.Batch.run cfg spec in
        check_int "rows"
          (List.length spec.O.Batch.heuristics
          * List.length spec.O.Batch.testbeds
          * List.length spec.O.Batch.sizes)
          (List.length rows);
        check_bool "all valid" true
          (List.for_all (fun r -> r.O.Runner.valid) rows));
    Alcotest.test_case "csv shape" `Quick (fun () ->
        let cfg = O.Config.with_sizes (O.Config.paper ()) [ 6 ] in
        let spec =
          { (O.Batch.default_spec cfg) with
            O.Batch.testbeds = [ O.Suite.find "lu" ];
            O.Batch.heuristics = [ O.Registry.find "heft" ];
          }
        in
        let csv = O.Batch.to_csv (O.Batch.run cfg spec) in
        let lines = List.filter (( <> ) "") (String.split_on_char '\n' csv) in
        check_int "header + 1 row" 2 (List.length lines);
        check_bool "header" true
          (contains (List.hd lines) "testbed,n,heuristic"));
  ]

let suite = anneal_tests @ compare_tests @ batch_tests
