(* Anneal, Compare, Batch. *)

module O = Onesched
open Util

let one_port = O.Comm_model.one_port

let anneal_tests =
  [
    qtest ~count:15 "annealing stays valid and never regresses"
      QCheck2.Gen.(tup2 graph_gen platform_gen)
      (fun (params, plat) ->
        let g = build_graph params in
        let sched = O.Heft.schedule plat g in
        let r =
          O.Anneal.improve
            ~params:{ O.Anneal.default_params with O.Anneal.steps = 60 }
            sched
        in
        O.Validate.is_valid r.O.Anneal.schedule
        && r.O.Anneal.final_makespan <= r.O.Anneal.initial_makespan +. 1e-9
        && Prelude.Stats.fequal
             (O.Schedule.makespan r.O.Anneal.schedule)
             r.O.Anneal.final_makespan);
    Alcotest.test_case "annealing is deterministic per seed" `Quick (fun () ->
        let g = O.Kernels.doolittle ~n:10 ~ccr:10. in
        let plat = O.Platform.paper_platform () in
        let sched = O.Heft.schedule plat g in
        let run () =
          (O.Anneal.improve
             ~params:{ O.Anneal.default_params with O.Anneal.steps = 100 }
             sched)
            .O.Anneal.final_makespan
        in
        check_float "same outcome" (run ()) (run ()));
    Alcotest.test_case "annealing escapes a pathological allocation" `Quick
      (fun () ->
        (* independent equal tasks all on one processor *)
        let g = O.Graph.create ~weights:(Array.make 8 4.) ~edges:[] () in
        let plat = O.Platform.homogeneous ~p:4 ~link_cost:1. in
        let sched = O.Refine.rebuild ~alloc:(fun _ -> 0) plat g in
        let r = O.Anneal.improve sched in
        check_bool "improved substantially" true
          (r.O.Anneal.final_makespan < r.O.Anneal.initial_makespan /. 2.));
    Alcotest.test_case "zero steps keeps the incumbent" `Quick (fun () ->
        let g = O.Kernels.fork_join ~n:5 ~ccr:2. in
        let plat = O.Platform.homogeneous ~p:2 ~link_cost:1. in
        let sched = O.Heft.schedule plat g in
        let r =
          O.Anneal.improve
            ~params:{ O.Anneal.default_params with O.Anneal.steps = 0 }
            sched
        in
        check_bool "no worse" true
          (r.O.Anneal.final_makespan <= O.Schedule.makespan sched +. 1e-9));
  ]

let compare_tests =
  [
    Alcotest.test_case "self-diff is the identity" `Quick (fun () ->
        let g = O.Kernels.laplace ~n:6 ~ccr:5. in
        let plat = O.Platform.paper_platform () in
        let sched = O.Heft.schedule plat g in
        let d = O.Compare.diff sched sched in
        check_float "ratio 1" 1. d.O.Compare.makespan_ratio;
        check_float "agreement 1" 1. d.O.Compare.allocation_agreement;
        check_bool "no moves" true (d.O.Compare.moved_tasks = []));
    Alcotest.test_case "diff counts moved tasks" `Quick (fun () ->
        let g = O.Graph.create ~weights:[| 1.; 1. |] ~edges:[] () in
        let plat = O.Platform.homogeneous ~p:2 ~link_cost:1. in
        let a = O.Refine.rebuild ~alloc:(fun _ -> 0) plat g in
        let b = O.Refine.rebuild ~alloc:(fun v -> v) plat g in
        let d = O.Compare.diff a b in
        check_int "one moved" 1 (List.length d.O.Compare.moved_tasks);
        check_int "one same" 1 d.O.Compare.same_allocation);
    Alcotest.test_case "rejects mismatched inputs" `Quick (fun () ->
        let plat = O.Platform.homogeneous ~p:2 ~link_cost:1. in
        let s1 =
          O.Heft.schedule plat (O.Kernels.fork_join ~n:3 ~ccr:1.)
        in
        let s2 =
          O.Heft.schedule plat (O.Kernels.fork_join ~n:4 ~ccr:1.)
        in
        check_bool "raises" true
          (try
             ignore (O.Compare.diff s1 s2);
             false
           with Invalid_argument _ -> true));
  ]

let batch_tests =
  [
    Alcotest.test_case "grid covers the full cross product" `Quick (fun () ->
        let cfg = O.Config.with_sizes (O.Config.paper ()) [ 6; 8 ] in
        let spec = O.Batch.default_spec cfg in
        let rows = O.Batch.run cfg spec in
        check_int "rows"
          (List.length spec.O.Batch.heuristics
          * List.length spec.O.Batch.testbeds
          * List.length spec.O.Batch.sizes)
          (List.length rows);
        check_bool "all valid" true
          (List.for_all (fun r -> r.O.Runner.valid) rows));
    Alcotest.test_case "csv shape" `Quick (fun () ->
        let cfg = O.Config.with_sizes (O.Config.paper ()) [ 6 ] in
        let spec =
          { (O.Batch.default_spec cfg) with
            O.Batch.testbeds = [ O.Suite.find "lu" ];
            O.Batch.heuristics = [ O.Registry.find "heft" ];
          }
        in
        let csv = O.Batch.to_csv (O.Batch.run cfg spec) in
        let lines = List.filter (( <> ) "") (String.split_on_char '\n' csv) in
        check_int "header + 1 row" 2 (List.length lines);
        check_bool "header" true
          (contains (List.hd lines) "testbed,n,heuristic"));
  ]

(* ------------------------------------------------------------------ *)
(* Incremental kernel ≡ from-scratch Reference                         *)
(* ------------------------------------------------------------------ *)

let fingerprint sched =
  let g = O.Schedule.graph sched in
  let placements =
    List.init (O.Graph.n_tasks g) (fun t -> O.Schedule.placement_exn sched t)
  in
  (O.Schedule.makespan sched, placements, O.Schedule.comms sched)

(* Everything observable must match bit for bit: the incumbent trace
   (moves), every count, and the final schedule. *)
let refine_agrees sched =
  let inc = O.Refine.improve ~max_rounds:2 ~max_moves:4 sched in
  let ref_ = O.Refine.Reference.improve ~max_rounds:2 ~max_moves:4 sched in
  inc.O.Refine.initial_makespan = ref_.O.Refine.initial_makespan
  && inc.O.Refine.final_makespan = ref_.O.Refine.final_makespan
  && inc.O.Refine.accepted_moves = ref_.O.Refine.accepted_moves
  && inc.O.Refine.evaluations = ref_.O.Refine.evaluations
  && inc.O.Refine.moves = ref_.O.Refine.moves
  && fingerprint inc.O.Refine.schedule = fingerprint ref_.O.Refine.schedule

let anneal_agrees ~steps sched =
  let params = { O.Anneal.default_params with O.Anneal.steps } in
  let inc = O.Anneal.improve ~params sched in
  let ref_ = O.Anneal.Reference.improve ~params sched in
  inc.O.Anneal.initial_makespan = ref_.O.Anneal.initial_makespan
  && inc.O.Anneal.final_makespan = ref_.O.Anneal.final_makespan
  && inc.O.Anneal.accepted = ref_.O.Anneal.accepted
  && inc.O.Anneal.improved = ref_.O.Anneal.improved
  && inc.O.Anneal.moves = ref_.O.Anneal.moves
  && fingerprint inc.O.Anneal.schedule = fingerprint ref_.O.Anneal.schedule

(* All six testbeds × every registered heuristic × one-port and
   macro-dataflow: the PR 3-style bit-identity contract, now for the
   prefix-replay improvers. *)
let equivalence_tests =
  let models =
    [ ("one-port", O.Comm_model.one_port);
      ("macro-dataflow", O.Comm_model.macro_dataflow) ]
  in
  List.concat_map
    (fun (mname, model) ->
      List.map
        (fun (tb : O.Suite.t) ->
          Alcotest.test_case
            (Printf.sprintf "incremental = reference: %s, %s" tb.O.Suite.name
               mname)
            `Quick
            (fun () ->
              let n = max 3 tb.O.Suite.min_n in
              let plat = O.Platform.paper_platform () in
              let params = O.Params.of_model model in
              List.iter
                (fun (e : O.Registry.entry) ->
                  let g = tb.O.Suite.build ~n ~ccr:0.5 in
                  let sched = e.O.Registry.scheduler params plat g in
                  check_bool
                    (Printf.sprintf "%s refine agrees" e.O.Registry.name)
                    true (refine_agrees sched);
                  check_bool
                    (Printf.sprintf "%s anneal agrees" e.O.Registry.name)
                    true
                    (anneal_agrees ~steps:25 sched))
                O.Registry.all))
        O.Suite.all)
    models

let equivalence_property_tests =
  [
    qtest ~count:40 "refine incremental = reference on random instances"
      QCheck2.Gen.(tup3 graph_gen platform_gen model_gen)
      (fun (gspec, plat, model) ->
        let g = build_graph gspec in
        let sched = O.Heft.schedule ~params:(O.Params.of_model model) plat g in
        refine_agrees sched);
    qtest ~count:40 "anneal incremental = reference on random instances"
      QCheck2.Gen.(tup3 graph_gen platform_gen model_gen)
      (fun (gspec, plat, model) ->
        let g = build_graph gspec in
        let sched = O.Heft.schedule ~params:(O.Params.of_model model) plat g in
        anneal_agrees ~steps:30 sched);
  ]

let suite =
  anneal_tests @ compare_tests @ batch_tests @ equivalence_tests
  @ equivalence_property_tests
