(* The model-ladder tests.

   The redesign of {!Comm_model} from a closed port-variant record into a
   regime family must not move a single bit of any port-rung schedule:
   the [goldens] below were fingerprinted from the pre-ladder code
   (paper platform, ccr 0.5, every registered heuristic, two sizes per
   testbed) and pin makespan, every placement and every communication
   event down to the float bit pattern ([%h]).

   The rest of the suite covers the new surface: [name]/[of_name]
   totality on everything [name] emits (including arbitrary-parameter
   BSP / latency rungs), smart-constructor guards, and a full
   heuristic x rung x testbed sweep that must come back Validate-clean. *)

module O = Onesched
open Util

let fingerprint sched =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf (Printf.sprintf "m=%h" (O.Schedule.makespan sched));
  let g = O.Schedule.graph sched in
  for v = 0 to O.Graph.n_tasks g - 1 do
    let pl = O.Schedule.placement_exn sched v in
    Buffer.add_string buf
      (Printf.sprintf ";t%d=%d:%h:%h" v pl.O.Schedule.proc pl.O.Schedule.start
         pl.O.Schedule.finish)
  done;
  List.iter
    (fun (c : O.Schedule.comm) ->
      Buffer.add_string buf
        (Printf.sprintf ";c%d=%d>%d:%h:%h" c.edge c.src_proc c.dst_proc c.start
           c.finish))
    (O.Schedule.comms sched);
  Digest.to_hex (Digest.string (Buffer.contents buf))

(* (testbed, n, model, heuristic, MD5 of the fingerprint) captured from
   the pre-ladder code.  [n] is already clamped to the testbed's
   [min_n], so rows repeat the same instance where the clamp bites. *)
let goldens =
  [
    ("lu", 3, "macro-dataflow", "heft", "8757107570652ae062cfde505411b149");
    ("lu", 3, "macro-dataflow", "ilha", "8757107570652ae062cfde505411b149");
    ("lu", 3, "macro-dataflow", "cpop", "8757107570652ae062cfde505411b149");
    ("lu", 3, "macro-dataflow", "pct", "8757107570652ae062cfde505411b149");
    ("lu", 3, "macro-dataflow", "bil", "8757107570652ae062cfde505411b149");
    ("lu", 3, "macro-dataflow", "gdl", "8757107570652ae062cfde505411b149");
    ("lu", 3, "macro-dataflow", "etf", "8757107570652ae062cfde505411b149");
    ("lu", 3, "macro-dataflow", "ilha-auto", "8757107570652ae062cfde505411b149");
    ("lu", 3, "one-port", "heft", "8757107570652ae062cfde505411b149");
    ("lu", 3, "one-port", "ilha", "8757107570652ae062cfde505411b149");
    ("lu", 3, "one-port", "cpop", "8757107570652ae062cfde505411b149");
    ("lu", 3, "one-port", "pct", "8757107570652ae062cfde505411b149");
    ("lu", 3, "one-port", "bil", "8757107570652ae062cfde505411b149");
    ("lu", 3, "one-port", "gdl", "8757107570652ae062cfde505411b149");
    ("lu", 3, "one-port", "etf", "8757107570652ae062cfde505411b149");
    ("lu", 3, "one-port", "ilha-auto", "8757107570652ae062cfde505411b149");
    ("lu", 9, "macro-dataflow", "heft", "10b935bf3578b15249f4812c88769060");
    ("lu", 9, "macro-dataflow", "ilha", "96a0b9b0845feb1fa5cdee2d5143fc36");
    ("lu", 9, "macro-dataflow", "cpop", "ee134faccf878b87e71e145295abdcb3");
    ("lu", 9, "macro-dataflow", "pct", "10b935bf3578b15249f4812c88769060");
    ("lu", 9, "macro-dataflow", "bil", "10b935bf3578b15249f4812c88769060");
    ("lu", 9, "macro-dataflow", "gdl", "591c335fbc765b57838afba3eb963a09");
    ("lu", 9, "macro-dataflow", "etf", "b85118fbf834c3f0f7734c9ed1cf01e3");
    ("lu", 9, "macro-dataflow", "ilha-auto", "10b935bf3578b15249f4812c88769060");
    ("lu", 9, "one-port", "heft", "10b935bf3578b15249f4812c88769060");
    ("lu", 9, "one-port", "ilha", "96a0b9b0845feb1fa5cdee2d5143fc36");
    ("lu", 9, "one-port", "cpop", "ee134faccf878b87e71e145295abdcb3");
    ("lu", 9, "one-port", "pct", "10b935bf3578b15249f4812c88769060");
    ("lu", 9, "one-port", "bil", "10b935bf3578b15249f4812c88769060");
    ("lu", 9, "one-port", "gdl", "591c335fbc765b57838afba3eb963a09");
    ("lu", 9, "one-port", "etf", "0e6501ca53930ecb57c9a71d0a694716");
    ("lu", 9, "one-port", "ilha-auto", "10b935bf3578b15249f4812c88769060");
    ("laplace", 3, "macro-dataflow", "heft", "f1be46eb25b2a4eaa903cdde7e7c2efc");
    ("laplace", 3, "macro-dataflow", "ilha", "f1be46eb25b2a4eaa903cdde7e7c2efc");
    ("laplace", 3, "macro-dataflow", "cpop", "c7a6d3fd007757d1b6269fb02d886fe4");
    ("laplace", 3, "macro-dataflow", "pct", "f1be46eb25b2a4eaa903cdde7e7c2efc");
    ("laplace", 3, "macro-dataflow", "bil", "f1be46eb25b2a4eaa903cdde7e7c2efc");
    ("laplace", 3, "macro-dataflow", "gdl", "f1be46eb25b2a4eaa903cdde7e7c2efc");
    ("laplace", 3, "macro-dataflow", "etf", "f1be46eb25b2a4eaa903cdde7e7c2efc");
    ("laplace", 3, "macro-dataflow", "ilha-auto", "f1be46eb25b2a4eaa903cdde7e7c2efc");
    ("laplace", 3, "one-port", "heft", "f1be46eb25b2a4eaa903cdde7e7c2efc");
    ("laplace", 3, "one-port", "ilha", "f1be46eb25b2a4eaa903cdde7e7c2efc");
    ("laplace", 3, "one-port", "cpop", "8b35ffaf8f2a274a3f5b0a195103615d");
    ("laplace", 3, "one-port", "pct", "f1be46eb25b2a4eaa903cdde7e7c2efc");
    ("laplace", 3, "one-port", "bil", "f1be46eb25b2a4eaa903cdde7e7c2efc");
    ("laplace", 3, "one-port", "gdl", "f1be46eb25b2a4eaa903cdde7e7c2efc");
    ("laplace", 3, "one-port", "etf", "f1be46eb25b2a4eaa903cdde7e7c2efc");
    ("laplace", 3, "one-port", "ilha-auto", "f1be46eb25b2a4eaa903cdde7e7c2efc");
    ("laplace", 9, "macro-dataflow", "heft", "211810f81605c6c7a09c7b3013132f35");
    ("laplace", 9, "macro-dataflow", "ilha", "2c26662ce59b820ae55117566ad0346f");
    ("laplace", 9, "macro-dataflow", "cpop", "9e59a53d9d8bc706939d78733948a9d1");
    ("laplace", 9, "macro-dataflow", "pct", "211810f81605c6c7a09c7b3013132f35");
    ("laplace", 9, "macro-dataflow", "bil", "c48ed09aa789e7689e3ad3ab7697300a");
    ("laplace", 9, "macro-dataflow", "gdl", "211810f81605c6c7a09c7b3013132f35");
    ("laplace", 9, "macro-dataflow", "etf", "a68f6aa781f944d9b48ffc98e6fbfa47");
    ("laplace", 9, "macro-dataflow", "ilha-auto", "cf5ec0f5c2cc111c722b145de81cd879");
    ("laplace", 9, "one-port", "heft", "de9cf0eb2eced08d17e06e04e2fa34a4");
    ("laplace", 9, "one-port", "ilha", "1f719f32f0ef95b7f6e8b80f39c4d6b1");
    ("laplace", 9, "one-port", "cpop", "eeb27e2f7afbfb48c26edaca31cb5644");
    ("laplace", 9, "one-port", "pct", "de9cf0eb2eced08d17e06e04e2fa34a4");
    ("laplace", 9, "one-port", "bil", "e85547f0eb5b365dbd6111460aed8e6b");
    ("laplace", 9, "one-port", "gdl", "1f87e213fce3a1af215959be306da825");
    ("laplace", 9, "one-port", "etf", "8d51be754d189c4086f23bbddec26c72");
    ("laplace", 9, "one-port", "ilha-auto", "de9cf0eb2eced08d17e06e04e2fa34a4");
    ("stencil", 3, "macro-dataflow", "heft", "4d52cf596ad416c2aab3c781f9428d37");
    ("stencil", 3, "macro-dataflow", "ilha", "4d52cf596ad416c2aab3c781f9428d37");
    ("stencil", 3, "macro-dataflow", "cpop", "4d52cf596ad416c2aab3c781f9428d37");
    ("stencil", 3, "macro-dataflow", "pct", "4d52cf596ad416c2aab3c781f9428d37");
    ("stencil", 3, "macro-dataflow", "bil", "4d52cf596ad416c2aab3c781f9428d37");
    ("stencil", 3, "macro-dataflow", "gdl", "4d52cf596ad416c2aab3c781f9428d37");
    ("stencil", 3, "macro-dataflow", "etf", "4d52cf596ad416c2aab3c781f9428d37");
    ("stencil", 3, "macro-dataflow", "ilha-auto", "4d52cf596ad416c2aab3c781f9428d37");
    ("stencil", 3, "one-port", "heft", "d2a92a186cf94a9718927fc45d96ceca");
    ("stencil", 3, "one-port", "ilha", "d2a92a186cf94a9718927fc45d96ceca");
    ("stencil", 3, "one-port", "cpop", "f3d2ce2d84b198b8874059448e47a47b");
    ("stencil", 3, "one-port", "pct", "d2a92a186cf94a9718927fc45d96ceca");
    ("stencil", 3, "one-port", "bil", "d2a92a186cf94a9718927fc45d96ceca");
    ("stencil", 3, "one-port", "gdl", "aafde29fbdb25dfdec7866d2cb228ad1");
    ("stencil", 3, "one-port", "etf", "aafde29fbdb25dfdec7866d2cb228ad1");
    ("stencil", 3, "one-port", "ilha-auto", "d2a92a186cf94a9718927fc45d96ceca");
    ("stencil", 9, "macro-dataflow", "heft", "f7d7c263cebd5775b91d823492a38625");
    ("stencil", 9, "macro-dataflow", "ilha", "f7d7c263cebd5775b91d823492a38625");
    ("stencil", 9, "macro-dataflow", "cpop", "3a03430b52d49862218b66b0556837a9");
    ("stencil", 9, "macro-dataflow", "pct", "f7d7c263cebd5775b91d823492a38625");
    ("stencil", 9, "macro-dataflow", "bil", "327f6b685a3da4972ac2c175a937468d");
    ("stencil", 9, "macro-dataflow", "gdl", "f7d7c263cebd5775b91d823492a38625");
    ("stencil", 9, "macro-dataflow", "etf", "ebc66e7ad339861c12667ca9ac2332e1");
    ("stencil", 9, "macro-dataflow", "ilha-auto", "f7d7c263cebd5775b91d823492a38625");
    ("stencil", 9, "one-port", "heft", "c82d255b436847d2a0a1cfe85425711f");
    ("stencil", 9, "one-port", "ilha", "c82d255b436847d2a0a1cfe85425711f");
    ("stencil", 9, "one-port", "cpop", "f35ae031b6c55cd98134b561e4eba9be");
    ("stencil", 9, "one-port", "pct", "c82d255b436847d2a0a1cfe85425711f");
    ("stencil", 9, "one-port", "bil", "57c53580c97a98f85f6c67bb70a559e9");
    ("stencil", 9, "one-port", "gdl", "cbd13e153c76841f82da15b788719d63");
    ("stencil", 9, "one-port", "etf", "dbfed7106e644f04459af3199cfa9b83");
    ("stencil", 9, "one-port", "ilha-auto", "c82d255b436847d2a0a1cfe85425711f");
    ("fork-join", 3, "macro-dataflow", "heft", "345d9a58e7e285870444b9578df9054a");
    ("fork-join", 3, "macro-dataflow", "ilha", "345d9a58e7e285870444b9578df9054a");
    ("fork-join", 3, "macro-dataflow", "cpop", "345d9a58e7e285870444b9578df9054a");
    ("fork-join", 3, "macro-dataflow", "pct", "345d9a58e7e285870444b9578df9054a");
    ("fork-join", 3, "macro-dataflow", "bil", "345d9a58e7e285870444b9578df9054a");
    ("fork-join", 3, "macro-dataflow", "gdl", "345d9a58e7e285870444b9578df9054a");
    ("fork-join", 3, "macro-dataflow", "etf", "345d9a58e7e285870444b9578df9054a");
    ("fork-join", 3, "macro-dataflow", "ilha-auto", "345d9a58e7e285870444b9578df9054a");
    ("fork-join", 3, "one-port", "heft", "bfbd5fc182cab288a44ed95b70520a46");
    ("fork-join", 3, "one-port", "ilha", "bfbd5fc182cab288a44ed95b70520a46");
    ("fork-join", 3, "one-port", "cpop", "e7cdfd863558f4f9b27329e179efe113");
    ("fork-join", 3, "one-port", "pct", "bfbd5fc182cab288a44ed95b70520a46");
    ("fork-join", 3, "one-port", "bil", "bfbd5fc182cab288a44ed95b70520a46");
    ("fork-join", 3, "one-port", "gdl", "bfbd5fc182cab288a44ed95b70520a46");
    ("fork-join", 3, "one-port", "etf", "bfbd5fc182cab288a44ed95b70520a46");
    ("fork-join", 3, "one-port", "ilha-auto", "bfbd5fc182cab288a44ed95b70520a46");
    ("fork-join", 9, "macro-dataflow", "heft", "87a890d37a478f20869bf69391ab2eb0");
    ("fork-join", 9, "macro-dataflow", "ilha", "87a890d37a478f20869bf69391ab2eb0");
    ("fork-join", 9, "macro-dataflow", "cpop", "87a890d37a478f20869bf69391ab2eb0");
    ("fork-join", 9, "macro-dataflow", "pct", "87a890d37a478f20869bf69391ab2eb0");
    ("fork-join", 9, "macro-dataflow", "bil", "87a890d37a478f20869bf69391ab2eb0");
    ("fork-join", 9, "macro-dataflow", "gdl", "87a890d37a478f20869bf69391ab2eb0");
    ("fork-join", 9, "macro-dataflow", "etf", "9038fba31a9374adda8dcfa5b4eab80e");
    ("fork-join", 9, "macro-dataflow", "ilha-auto", "87a890d37a478f20869bf69391ab2eb0");
    ("fork-join", 9, "one-port", "heft", "68bd9603aee594197e0a61d51016cdcf");
    ("fork-join", 9, "one-port", "ilha", "68bd9603aee594197e0a61d51016cdcf");
    ("fork-join", 9, "one-port", "cpop", "c50dc205b169d510a76f5a9ae44e6315");
    ("fork-join", 9, "one-port", "pct", "68bd9603aee594197e0a61d51016cdcf");
    ("fork-join", 9, "one-port", "bil", "68bd9603aee594197e0a61d51016cdcf");
    ("fork-join", 9, "one-port", "gdl", "68bd9603aee594197e0a61d51016cdcf");
    ("fork-join", 9, "one-port", "etf", "c5eb774429d986e690beffd95f143c56");
    ("fork-join", 9, "one-port", "ilha-auto", "68bd9603aee594197e0a61d51016cdcf");
    ("doolittle", 3, "macro-dataflow", "heft", "a7d5297c2d6d88044049d0860f2b1f1a");
    ("doolittle", 3, "macro-dataflow", "ilha", "a7d5297c2d6d88044049d0860f2b1f1a");
    ("doolittle", 3, "macro-dataflow", "cpop", "a7d5297c2d6d88044049d0860f2b1f1a");
    ("doolittle", 3, "macro-dataflow", "pct", "a7d5297c2d6d88044049d0860f2b1f1a");
    ("doolittle", 3, "macro-dataflow", "bil", "a7d5297c2d6d88044049d0860f2b1f1a");
    ("doolittle", 3, "macro-dataflow", "gdl", "a7d5297c2d6d88044049d0860f2b1f1a");
    ("doolittle", 3, "macro-dataflow", "etf", "a7d5297c2d6d88044049d0860f2b1f1a");
    ("doolittle", 3, "macro-dataflow", "ilha-auto", "a7d5297c2d6d88044049d0860f2b1f1a");
    ("doolittle", 3, "one-port", "heft", "a7d5297c2d6d88044049d0860f2b1f1a");
    ("doolittle", 3, "one-port", "ilha", "a7d5297c2d6d88044049d0860f2b1f1a");
    ("doolittle", 3, "one-port", "cpop", "a7d5297c2d6d88044049d0860f2b1f1a");
    ("doolittle", 3, "one-port", "pct", "a7d5297c2d6d88044049d0860f2b1f1a");
    ("doolittle", 3, "one-port", "bil", "a7d5297c2d6d88044049d0860f2b1f1a");
    ("doolittle", 3, "one-port", "gdl", "a7d5297c2d6d88044049d0860f2b1f1a");
    ("doolittle", 3, "one-port", "etf", "a7d5297c2d6d88044049d0860f2b1f1a");
    ("doolittle", 3, "one-port", "ilha-auto", "a7d5297c2d6d88044049d0860f2b1f1a");
    ("doolittle", 9, "macro-dataflow", "heft", "426fae21bdf2f92230318d370e3bc4cf");
    ("doolittle", 9, "macro-dataflow", "ilha", "426fae21bdf2f92230318d370e3bc4cf");
    ("doolittle", 9, "macro-dataflow", "cpop", "fddee4106b8b66e491aea315116a0500");
    ("doolittle", 9, "macro-dataflow", "pct", "426fae21bdf2f92230318d370e3bc4cf");
    ("doolittle", 9, "macro-dataflow", "bil", "426fae21bdf2f92230318d370e3bc4cf");
    ("doolittle", 9, "macro-dataflow", "gdl", "426fae21bdf2f92230318d370e3bc4cf");
    ("doolittle", 9, "macro-dataflow", "etf", "a9b73a3f6f044e45ec18a687f845de33");
    ("doolittle", 9, "macro-dataflow", "ilha-auto", "426fae21bdf2f92230318d370e3bc4cf");
    ("doolittle", 9, "one-port", "heft", "10f542036bfdf98fbe03f8bb74673b8f");
    ("doolittle", 9, "one-port", "ilha", "10f542036bfdf98fbe03f8bb74673b8f");
    ("doolittle", 9, "one-port", "cpop", "254cea21267b5a5a263b00b54004948b");
    ("doolittle", 9, "one-port", "pct", "10f542036bfdf98fbe03f8bb74673b8f");
    ("doolittle", 9, "one-port", "bil", "10f542036bfdf98fbe03f8bb74673b8f");
    ("doolittle", 9, "one-port", "gdl", "bc0b015a95aa0a9c5c7ae9cc46b7d1c4");
    ("doolittle", 9, "one-port", "etf", "93700517db0938696b340a38d20851e2");
    ("doolittle", 9, "one-port", "ilha-auto", "10f542036bfdf98fbe03f8bb74673b8f");
    ("ldmt", 3, "macro-dataflow", "heft", "2836512ef6cbe2d1735ccf334b28b865");
    ("ldmt", 3, "macro-dataflow", "ilha", "2836512ef6cbe2d1735ccf334b28b865");
    ("ldmt", 3, "macro-dataflow", "cpop", "2836512ef6cbe2d1735ccf334b28b865");
    ("ldmt", 3, "macro-dataflow", "pct", "2836512ef6cbe2d1735ccf334b28b865");
    ("ldmt", 3, "macro-dataflow", "bil", "2836512ef6cbe2d1735ccf334b28b865");
    ("ldmt", 3, "macro-dataflow", "gdl", "2836512ef6cbe2d1735ccf334b28b865");
    ("ldmt", 3, "macro-dataflow", "etf", "2836512ef6cbe2d1735ccf334b28b865");
    ("ldmt", 3, "macro-dataflow", "ilha-auto", "2836512ef6cbe2d1735ccf334b28b865");
    ("ldmt", 3, "one-port", "heft", "2836512ef6cbe2d1735ccf334b28b865");
    ("ldmt", 3, "one-port", "ilha", "2836512ef6cbe2d1735ccf334b28b865");
    ("ldmt", 3, "one-port", "cpop", "2836512ef6cbe2d1735ccf334b28b865");
    ("ldmt", 3, "one-port", "pct", "2836512ef6cbe2d1735ccf334b28b865");
    ("ldmt", 3, "one-port", "bil", "2836512ef6cbe2d1735ccf334b28b865");
    ("ldmt", 3, "one-port", "gdl", "2836512ef6cbe2d1735ccf334b28b865");
    ("ldmt", 3, "one-port", "etf", "2836512ef6cbe2d1735ccf334b28b865");
    ("ldmt", 3, "one-port", "ilha-auto", "2836512ef6cbe2d1735ccf334b28b865");
    ("ldmt", 9, "macro-dataflow", "heft", "b7a5ada595fb290b174acc90de6e4bb6");
    ("ldmt", 9, "macro-dataflow", "ilha", "3f7315361dd660af29a8745a26651dee");
    ("ldmt", 9, "macro-dataflow", "cpop", "29e3c475b80bed734ab7df9539732db2");
    ("ldmt", 9, "macro-dataflow", "pct", "b7a5ada595fb290b174acc90de6e4bb6");
    ("ldmt", 9, "macro-dataflow", "bil", "b7a5ada595fb290b174acc90de6e4bb6");
    ("ldmt", 9, "macro-dataflow", "gdl", "6a6c49fd45ecfc9567050a126dfd2ede");
    ("ldmt", 9, "macro-dataflow", "etf", "e46357de92234f6efcd597da153d2c61");
    ("ldmt", 9, "macro-dataflow", "ilha-auto", "b7a5ada595fb290b174acc90de6e4bb6");
    ("ldmt", 9, "one-port", "heft", "b7a5ada595fb290b174acc90de6e4bb6");
    ("ldmt", 9, "one-port", "ilha", "3f7315361dd660af29a8745a26651dee");
    ("ldmt", 9, "one-port", "cpop", "29e3c475b80bed734ab7df9539732db2");
    ("ldmt", 9, "one-port", "pct", "b7a5ada595fb290b174acc90de6e4bb6");
    ("ldmt", 9, "one-port", "bil", "b7a5ada595fb290b174acc90de6e4bb6");
    ("ldmt", 9, "one-port", "gdl", "6a6c49fd45ecfc9567050a126dfd2ede");
    ("ldmt", 9, "one-port", "etf", "42c98ba4393bc5a24a7ccc29d550ba0b");
    ("ldmt", 9, "one-port", "ilha-auto", "b7a5ada595fb290b174acc90de6e4bb6");
  ]

let golden_tests =
  [
    Alcotest.test_case "port-rung schedules are bit-identical to the goldens"
      `Quick (fun () ->
        let plat = O.Platform.paper_platform () in
        let cache = Hashtbl.create 16 in
        List.iter
          (fun (tb_name, n, mname, hname, expect) ->
            let g =
              match Hashtbl.find_opt cache (tb_name, n) with
              | Some g -> g
              | None ->
                  let tb = O.Suite.find tb_name in
                  let g = tb.O.Suite.build ~n ~ccr:0.5 in
                  Hashtbl.add cache (tb_name, n) g;
                  g
            in
            let params = O.Params.of_model (O.Comm_model.of_name mname) in
            let entry = O.Registry.find hname in
            let sched = entry.O.Registry.scheduler params plat g in
            Alcotest.(check string)
              (Printf.sprintf "%s n=%d %s %s" tb_name n mname hname)
              expect (fingerprint sched))
          goldens);
  ]

let name_tests =
  [
    Alcotest.test_case "of_name inverts name over the whole ladder" `Quick
      (fun () ->
        List.iter
          (fun m ->
            let m' = O.Comm_model.of_name (O.Comm_model.name m) in
            check_bool (O.Comm_model.name m) true (O.Comm_model.equal m m'))
          O.Comm_model.all);
    (* Quarter-integer parameters survive a %g round-trip exactly, so the
       property can demand structural equality rather than epsilon. *)
    qtest ~count:200 "of_name inverts name for arbitrary-parameter rungs"
      QCheck2.Gen.(
        let* a = int_range 0 1000 in
        let* b = int_range 0 1000 in
        let* bsp = bool in
        return (a, b, bsp))
      (fun (a, b, bsp) ->
        let q i = float_of_int i /. 4. in
        let m =
          if bsp then O.Comm_model.bsp ~g:(q a) ~l:(q b)
          else O.Comm_model.latency_overhead ~o:(q a) ~l:(q b)
        in
        O.Comm_model.equal m (O.Comm_model.of_name (O.Comm_model.name m)));
    Alcotest.test_case "of_name rejects unknown names with the valid ones"
      `Quick (fun () ->
        (match O.Comm_model.of_name "bogus" with
        | _ -> Alcotest.fail "of_name accepted \"bogus\""
        | exception Invalid_argument msg ->
            check_bool "lists macro-dataflow" true (contains msg "macro-dataflow");
            check_bool "lists the bsp form" true (contains msg "bsp:g=");
            check_bool "lists the logp form" true (contains msg "logp:o="));
        match O.Comm_model.of_name "bsp:g=-1:L=2" with
        | _ -> Alcotest.fail "of_name accepted a negative g"
        | exception Invalid_argument _ -> ());
    Alcotest.test_case "model names are comma-free (CSV safety)" `Quick
      (fun () ->
        List.iter
          (fun m ->
            check_bool (O.Comm_model.name m) false
              (String.contains (O.Comm_model.name m) ','))
          O.Comm_model.all);
  ]

let constructor_tests =
  [
    Alcotest.test_case "smart constructors reject invalid requests" `Quick
      (fun () ->
        let raises f =
          match f () with
          | (_ : O.Comm_model.t) -> false
          | exception Invalid_argument _ -> true
        in
        check_bool "bsp ~g:(-1.)" true
          (raises (fun () -> O.Comm_model.bsp ~g:(-1.) ~l:0.));
        check_bool "latency_overhead ~l:(-0.5)" true
          (raises (fun () -> O.Comm_model.latency_overhead ~o:1. ~l:(-0.5)));
        check_bool "no_overlap on a BSP rung" true
          (raises (fun () -> O.Comm_model.no_overlap (O.Comm_model.bsp ~g:1. ~l:1.)));
        check_bool "with_link_contention on a latency rung" true
          (raises (fun () ->
               O.Comm_model.with_link_contention
                 (O.Comm_model.latency_overhead ~o:1. ~l:1.)));
        match
          O.Comm_model.hop_span (O.Comm_model.bsp ~g:1. ~l:1.) ~data:1.
            ~hop_cost:1.
        with
        | (_ : float) -> Alcotest.fail "hop_span priced a BSP hop"
        | exception Invalid_argument _ -> ());
  ]

(* Every heuristic, on every rung of the ladder, must schedule every
   testbed to a Validate-clean schedule — the ladder's acceptance sweep. *)
let ladder_tests =
  [
    Alcotest.test_case "every heuristic x rung x testbed validates" `Quick
      (fun () ->
        let plat = O.Platform.paper_platform () in
        List.iter
          (fun (tb : O.Suite.t) ->
            let n = max 6 tb.O.Suite.min_n in
            let g = tb.O.Suite.build ~n ~ccr:0.5 in
            List.iter
              (fun model ->
                let params = O.Params.of_model model in
                List.iter
                  (fun (e : O.Registry.entry) ->
                    let sched = e.O.Registry.scheduler params plat g in
                    match O.Validate.check sched with
                    | Ok () -> ()
                    | Error es ->
                        Alcotest.failf "%s on %s under %s: %s"
                          e.O.Registry.name tb.O.Suite.name
                          (O.Comm_model.name model) (List.hd es))
                  O.Registry.all)
              O.Comm_model.all)
          O.Suite.all);
  ]

let suite = golden_tests @ name_tests @ constructor_tests @ ladder_tests
