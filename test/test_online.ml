(* Rolling-horizon online scheduling: the event grammar and the driver. *)

open Util
module O = Util.O
module E = O.Online_event
module D = O.Online_driver

let plat () = O.Platform.paper_platform ()
let ev at kind = { E.at; kind }
let arrive at job = ev at (E.Arrive job)

(* --- the trace grammar --- *)

let trace_parses () =
  (match E.of_string "arrive 0 lu:100:0.5 prio=2 deadline=300" with
  | { E.at = 0.; kind = E.Arrive j } ->
      Alcotest.(check string) "testbed" "lu" j.E.testbed;
      check_int "n" 100 j.E.n;
      check_float "ccr" 0.5 j.E.ccr;
      check_int "priority" 2 j.E.priority;
      check_float "deadline" 300. (Option.get j.E.deadline)
  | _ -> Alcotest.fail "expected an arrival");
  (match E.of_string "crash 120 1" with
  | { E.at = 120.; kind = E.Crash 1 } -> ()
  | _ -> Alcotest.fail "expected a crash");
  (match E.of_string "down 200 2" with
  | { E.kind = E.Down 2; _ } -> ()
  | _ -> Alcotest.fail "expected a down");
  (match E.of_string "rejoin 260 2" with
  | { E.kind = E.Rejoin 2; _ } -> ()
  | _ -> Alcotest.fail "expected a rejoin");
  List.iter
    (fun bad ->
      match E.of_string bad with
      | _ -> Alcotest.failf "accepted %S" bad
      | exception Invalid_argument _ -> ())
    [
      ""; "arrive"; "arrive x lu:10"; "arrive 0 lu"; "arrive 0 lu:0";
      "arrive -1 lu:10"; "arrive 0 lu:10 deadline=0"; "crash 1"; "crash 1 x";
      "explode 0 1";
    ]

(* Quarter-integer times print exactly under %g, so a structured trace
   must survive print -> parse -> print unchanged. *)
let trace_roundtrip =
  qtest "event traces print/parse round-trip"
    QCheck2.Gen.(
      small_list
        (tup4 (int_bound 4000) (int_bound 3) (int_bound 9)
           (tup3 (int_bound 5) (int_bound 40) (int_bound 5))))
    (fun raw ->
      let evs =
        List.map
          (fun (ti, kind, proc, (tbi, ni, extra)) ->
            let at = float_of_int ti /. 4. in
            let kind =
              match kind with
              | 0 ->
                  let tb =
                    List.nth O.Suite.names (tbi mod List.length O.Suite.names)
                  in
                  let ccr = float_of_int (1 + extra) /. 2. in
                  let deadline =
                    if extra = 0 then None else Some (float_of_int ni +. 0.5)
                  in
                  E.Arrive (E.job ~ccr ~priority:extra ?deadline tb (ni + 1))
              | 1 -> E.Crash proc
              | 2 -> E.Down proc
              | _ -> E.Rejoin proc
            in
            { E.at; kind })
          raw
      in
      let text = E.to_trace_string evs in
      E.of_trace_string text = evs
      && E.to_trace_string (E.of_trace_string text) = text)

let trace_files_skip_comments () =
  let text = "# a comment\n\narrive 0 lu:20\ncrash 10 1  \n" in
  match E.of_trace_string text with
  | [ { E.kind = E.Arrive _; _ }; { E.kind = E.Crash 1; at = 10. } ] -> ()
  | evs -> Alcotest.failf "parsed %d events" (List.length evs)

let generators_deterministic () =
  let job = E.job "lu" 20 in
  let mk () =
    E.poisson ~rng:(O.Rng.create ~seed:7) ~rate:0.01 ~count:10 job
  in
  Alcotest.(check string)
    "same seed, same trace"
    (E.to_trace_string (mk ()))
    (E.to_trace_string (mk ()));
  check_int "count respected" 10 (List.length (mk ()));
  let rec mono = function
    | a :: b :: tl -> a.E.at <= b.E.at && mono (b :: tl)
    | _ -> true
  in
  check_bool "times nondecreasing" true (mono (mk ()));
  let bursts =
    E.bursty ~rng:(O.Rng.create ~seed:7) ~rate:0.01 ~burst:3 ~count:8 job
  in
  check_int "bursty count" 8 (List.length bursts)

let of_fault_translates () =
  (match E.of_fault (O.Fault.crash ~proc:1 ~at:5.) with
  | [ { E.at; kind = E.Crash 1 } ] -> check_float "crash time" 5. at
  | _ -> Alcotest.fail "expected one crash event");
  (match
     E.of_fault
       (O.Fault.resolve ~makespan:1. (O.Fault.of_string "outage:2@10-40"))
   with
  | [ { E.kind = E.Down 2; at = a }; { E.kind = E.Rejoin 2; at = b } ] ->
      check_float "down at" 10. a;
      check_float "rejoin at" 40. b
  | _ -> Alcotest.fail "expected down + rejoin");
  (match
     E.of_fault
       (O.Fault.resolve ~makespan:1. (O.Fault.of_string "rejoin:2@7"))
   with
  | [ { E.kind = E.Rejoin 2; _ } ] -> ()
  | _ -> Alcotest.fail "expected one rejoin event");
  match E.of_fault (O.Fault.resolve ~makespan:1. (O.Fault.of_string "flaky:0.5")) with
  | _ -> Alcotest.fail "flaky has no event-trace counterpart"
  | exception Invalid_argument _ -> ()

(* --- the driver --- *)

(* Per-task (proc, start, finish) of the final schedule: the driver's
   bit-identity claims are checked against this. *)
let fingerprint (o : D.outcome) =
  match (o.D.schedule, o.D.graph) with
  | Some sched, Some g ->
      List.init (O.Graph.n_tasks g) (fun t ->
          match O.Schedule.placement sched t with
          | Some pl ->
              (t, pl.O.Schedule.proc, pl.O.Schedule.start, pl.O.Schedule.finish)
          | None -> (t, -1, 0., 0.))
  | _ -> []

let summary o = Format.asprintf "%a" D.pp_outcome o

let single_job_matches_offline () =
  let g = O.Kernels.lu ~n:20 ~ccr:10. in
  let offline = O.Heft.schedule (plat ()) g in
  let o = D.run (plat ()) [ arrive 0. (E.job ~ccr:10. "lu" 20) ] in
  check_float "quiet trace = offline heft" (O.Schedule.makespan offline)
    o.D.makespan;
  check_int "one replan (the initial plan)" 1 (List.length o.D.replans);
  check_int "completed" 1 o.D.completed

(* The ISSUE's acceptance drill: every registry heuristic x every
   testbed under a crash + arrival + rejoin trace.  The driver itself
   enforces validation and the frozen-prefix ledger on every re-plan
   (config defaults), so a run that returns at all certifies both; on
   top we check determinism and incremental = from-scratch, bit for
   bit. *)
let acceptance () =
  List.iter
    (fun (tb : O.Suite.t) ->
      let n = max 15 tb.O.Suite.min_n in
      let job = E.job ~ccr:5. tb.O.Suite.name n in
      List.iter
        (fun (e : O.Registry.entry) ->
          let label =
            Printf.sprintf "%s/%s" tb.O.Suite.name e.O.Registry.name
          in
          let config = { D.default_config with D.heuristic = e.O.Registry.name } in
          let probe = D.run ~config (plat ()) [ arrive 0. job ] in
          let m = probe.D.makespan in
          let trace =
            [
              arrive 0. job;
              ev (0.35 *. m) (E.Crash 1);
              arrive (0.45 *. m) job;
              ev (0.6 *. m) (E.Rejoin 1);
            ]
          in
          let a = D.run ~config (plat ()) trace in
          let b = D.run ~config (plat ()) trace in
          if fingerprint a <> fingerprint b || summary a <> summary b then
            Alcotest.failf "%s: not deterministic" label;
          let c =
            D.run ~config:{ config with D.incremental = false } (plat ()) trace
          in
          if fingerprint a <> fingerprint c then
            Alcotest.failf "%s: incremental and from-scratch disagree" label;
          if a.D.completed <> 2 then
            Alcotest.failf "%s: %d/2 jobs completed" label a.D.completed)
        O.Registry.all)
    O.Suite.all

let shedding_protects_deadlines () =
  let low = E.job ~priority:0 "lu" 12 in
  let high = E.job ~priority:5 ~deadline:1. "stencil" 12 in
  let o = D.run (plat ()) [ arrive 0. low; arrive 0. high ] in
  check_int "low-priority job shed" 1 o.D.shed;
  check_int "impossible deadline still missed" 1 o.D.deadline_misses;
  (match o.D.jobs with
  | [ a; b ] ->
      check_bool "job 0 shed" true (a.D.state = D.Shed);
      check_bool "job 1 completed late" true
        (b.D.state = D.Completed && b.D.missed)
  | _ -> Alcotest.fail "expected two job reports");
  check_bool "a shed replan ran" true
    (List.exists (fun r -> r.D.trigger = "shed") o.D.replans)

let admission_control () =
  let job = E.job "fork-join" 12 in
  let config = { D.default_config with D.max_active = 1; queue_cap = 1 } in
  let o = D.run ~config (plat ()) (List.init 3 (fun _ -> arrive 0. job)) in
  check_int "one rejected" 1 o.D.rejected;
  check_int "queued job drained" 2 o.D.completed;
  match List.map (fun (j : D.job_report) -> j.D.state) o.D.jobs with
  | [ D.Completed; D.Completed; D.Rejected ] -> ()
  | _ -> Alcotest.fail "unexpected job states"

let give_up_after_retries () =
  let config = { D.default_config with D.backoff = 5.; max_retries = 4 } in
  let o =
    D.run ~config (plat ())
      [ arrive 0. (E.job "lu" 15); ev 10. (E.Down 2) ]
  in
  check_int "every probe failed" 4 o.D.retries;
  check_bool "backoff time accumulated" true (o.D.backoff_s > 0.);
  check_int "job still completes" 1 o.D.completed;
  check_bool "give-up replan ran" true
    (List.exists (fun r -> r.D.trigger = "give-up") o.D.replans)

let budget_rejects_arrivals () =
  let job = E.job "lu" 12 in
  let config = { D.default_config with D.replan_budget = 1 } in
  let o = D.run ~config (plat ()) [ arrive 0. job; arrive 1. job ] in
  check_bool "budget exhausted" true o.D.budget_exhausted;
  check_int "late arrival rejected" 1 o.D.rejected;
  check_int "first job completed" 1 o.D.completed

let rejects_bad_input () =
  let raises f = match f () with _ -> false | exception Invalid_argument _ -> true in
  check_bool "negative time" true
    (raises (fun () -> D.run (plat ()) [ arrive (-1.) (E.job "lu" 12) ]));
  check_bool "bad processor" true
    (raises (fun () -> D.run (plat ()) [ ev 0. (E.Crash 99) ]));
  check_bool "unknown heuristic" true
    (raises (fun () ->
         D.run
           ~config:{ D.default_config with D.heuristic = "nope" }
           (plat ()) []));
  check_bool "non-port model" true
    (raises (fun () ->
         let params = O.Params.of_model (O.Comm_model.bsp ~g:1. ~l:1.) in
         D.run ~config:{ D.default_config with D.params } (plat ()) []))

let suite =
  [
    Alcotest.test_case "trace grammar parses and rejects" `Quick trace_parses;
    trace_roundtrip;
    Alcotest.test_case "trace files skip comments and blanks" `Quick
      trace_files_skip_comments;
    Alcotest.test_case "arrival generators are deterministic" `Quick
      generators_deterministic;
    Alcotest.test_case "faults translate to trace events" `Quick
      of_fault_translates;
    Alcotest.test_case "a quiet trace reproduces the offline schedule" `Quick
      single_job_matches_offline;
    Alcotest.test_case
      "acceptance: crash + arrival + rejoin on all testbeds x heuristics"
      `Slow acceptance;
    Alcotest.test_case "graceful degradation sheds by priority" `Quick
      shedding_protects_deadlines;
    Alcotest.test_case "admission control queues then rejects" `Quick
      admission_control;
    Alcotest.test_case "down processors are retried then given up" `Quick
      give_up_after_retries;
    Alcotest.test_case "the replan budget rejects late arrivals" `Quick
      budget_rejects_arrivals;
    Alcotest.test_case "driver rejects bad input" `Quick rejects_bad_input;
  ]
